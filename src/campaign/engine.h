/// \file engine.h
/// \brief The campaign engine: schedules an expanded task grid over worker
///        threads and streams results into a resumable JSONL store.
///
/// Execution model:
///   1. expand() the spec into the netlist × condition × analysis grid;
///   2. drop every task whose hash is already in the store (resume) — the
///      store is sharded by task-hash prefix (spec.shards files; see
///      store.h), and loading merges every shard plus the legacy base file;
///   3. run the remainder in fixed-size batches over common::parallel_for,
///      i.e. on the process-wide shared work pool (common/pool.h) — each
///      task writes its own result slot, and each finished batch is
///      appended *in task order* (ordered reduction), batched per shard, so
///      every shard file is byte-identical for every n_threads and a killed
///      run leaves a clean resumable prefix in each shard;
///   4. summarize() aggregates the merged shards into a report::Table.
///
/// Dispatch goes through analysis::AnalysisRegistry: a task's analysis name
/// resolves to an Analysis implementation, which consumes an
/// analysis::EvalContext handed out by one per-run analysis::ContextPool —
/// tasks that share a grid cell's (netlist, condition) reuse one
/// AgingAnalyzer (the dominant cost: signal statistics + stress-descriptor
/// builds), and tasks sharing (netlist, T_standby) reuse one
/// LeakageAnalyzer. Inner engines default to the shared pool (n_threads =
/// 0): run inside a scheduler worker they execute serially — a pool task
/// never spawns a nested team, so a k-worker campaign uses k threads, not
/// k² — while a task executed on the caller (serial campaign) may fan its
/// inner loops over the idle pool. Every inner engine is bit-identical for
/// any thread count (see docs/USAGE.md "Threading model"), so all of this
/// is purely a scheduling choice, not a results one.
#pragma once

#include <iosfwd>
#include <string>

#include "campaign/spec.h"
#include "campaign/store.h"
#include "netlist/netlist.h"
#include "report/report.h"

namespace nbtisim::campaign {

/// Outcome of one run_campaign() invocation.
struct RunStats {
  int total = 0;     ///< grid size
  int skipped = 0;   ///< tasks already present in the store
  int executed = 0;  ///< tasks executed by this invocation
  int stale = 0;     ///< store rows whose hash matches no current task —
                     ///< results invalidated by a spec/parameter change
  double elapsed_ms = 0.0;
};

/// Outcome of one summarize() pass over a store.
struct SummaryStats {
  int stored = 0;      ///< rows in the store
  int summarized = 0;  ///< rows matching a current grid task
  int stale = 0;       ///< rows invalidated by a spec/parameter change
};

/// Runs (or resumes) \p spec against the store at \p store_path; progress
/// lines go to \p progress when non-null. See the file comment for the
/// execution model.
/// \throws std::runtime_error / std::invalid_argument on bad specs,
///         unloadable netlists, or store I/O failures
RunStats run_campaign(const CampaignSpec& spec, const std::string& store_path,
                      std::ostream* progress = nullptr);

/// Aggregates the store into one table row per task: the grid-coordinate
/// columns followed by the union of metric names (in first-appearance
/// order); tasks missing a metric get an empty cell. Rows follow the spec's
/// grid order; rows of tasks no longer in the grid (stale hashes) are
/// dropped — and counted in \p stats when non-null, so resumed campaigns
/// can surface how much of the store a parameter change invalidated.
/// \throws std::runtime_error on store I/O failures
report::Table summarize(const CampaignSpec& spec,
                        const std::string& store_path,
                        SummaryStats* stats = nullptr);

/// Loads a netlist from a campaign netlist spec string: a built-in ISCAS85
/// name, a .bench / .v path, or the generator form
/// "dag:<inputs>x<gates>@<seed>". (Thin wrapper over
/// analysis::load_netlist_spec, kept for API stability.)
/// \throws std::invalid_argument / std::runtime_error on bad specs or files
netlist::Netlist load_campaign_netlist(const std::string& spec,
                                       bool cut_dffs);

}  // namespace nbtisim::campaign
