/// \file store.h
/// \brief Resumable JSONL result store for campaign runs.
///
/// One result row per line, each a compact JSON object carrying the task
/// hash, the grid coordinates, and a flat metrics object. Append-only: a
/// crashed or killed run leaves a valid prefix (plus at most one truncated
/// line, which load() discards), and the next run re-executes exactly the
/// tasks whose hashes are missing. Because rows are appended in task order
/// within every run and each row's serialization is deterministic, a
/// campaign executed with any thread count produces byte-identical files.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/json.h"

namespace nbtisim::campaign {

/// Append-only JSONL file keyed by the "hash" member of each row.
class ResultStore {
 public:
  /// Binds to \p path and loads any existing rows. A missing file is an
  /// empty store; a truncated or corrupt *final* line is discarded (the
  /// interrupted task simply re-runs). Corruption earlier in the file
  /// throws — that is data loss, not an interrupted append.
  /// \throws std::runtime_error on non-trailing corruption
  explicit ResultStore(std::string path);

  const std::string& path() const { return path_; }
  std::size_t size() const { return rows_.size(); }
  const std::vector<common::json::Value>& rows() const { return rows_; }
  bool contains(const std::string& hash) const {
    return hashes_.contains(hash);
  }

  /// Appends rows (each must be an object with a string "hash" member) and
  /// flushes them to disk as one write.
  /// \throws std::invalid_argument on a malformed or duplicate row
  /// \throws std::runtime_error when the file cannot be written
  void append(std::span<const common::json::Value> new_rows);

 private:
  std::string path_;
  std::vector<common::json::Value> rows_;
  std::unordered_set<std::string> hashes_;
};

}  // namespace nbtisim::campaign
