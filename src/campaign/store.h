/// \file store.h
/// \brief Resumable JSONL result stores for campaign runs — one file
///        (ResultStore) and the task-hash-prefix sharded layout on top
///        (ShardedStore).
///
/// One result row per line, each a compact JSON object carrying the task
/// hash, the grid coordinates, and a flat metrics object. Append-only: a
/// crashed or killed run leaves a valid prefix (plus at most one truncated
/// line, which load() discards), and the next run re-executes exactly the
/// tasks whose hashes are missing. Because rows are appended in task order
/// within every run and each row's serialization is deterministic, a
/// campaign executed with any thread count produces byte-identical files.
///
/// Sharding: a campaign of 10^5+ rows should not funnel every append
/// through one file. ShardedStore splits the store by the first hex nibble
/// of the task hash — `store.jsonl` becomes `store.0.jsonl` …
/// `store.f.jsonl` (for fewer than 16 shards, nibble % n_shards). Appends
/// are batched per shard; loading is shard-*aware* rather than
/// shard-*count*-aware: the base file and every prefix shard file present
/// on disk are all merged, so a store written under one shard count (or the
/// legacy single-file layout) resumes and summarizes correctly under
/// another. The per-file determinism contract carries over shard by shard.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/json.h"

namespace nbtisim::campaign {

/// Append-only JSONL file keyed by the "hash" member of each row.
class ResultStore {
 public:
  /// Binds to \p path and loads any existing rows. A missing file is an
  /// empty store; a truncated or corrupt *final* line is discarded with a
  /// warning naming the path and byte offset (the interrupted task simply
  /// re-runs). Corruption earlier in the file throws — that is data loss,
  /// not an interrupted append.
  /// \param warnings sink for the truncated-tail warning; nullptr means
  ///        std::cerr
  /// \throws std::runtime_error on non-trailing corruption, or when the
  ///         damaged tail cannot be truncated (message names the path)
  explicit ResultStore(std::string path, std::ostream* warnings = nullptr);

  const std::string& path() const { return path_; }
  std::size_t size() const { return rows_.size(); }
  const std::vector<common::json::Value>& rows() const { return rows_; }
  bool contains(const std::string& hash) const {
    return hashes_.contains(hash);
  }

  /// Appends rows (each must be an object with a string "hash" member) and
  /// flushes them to disk as one write. The in-memory index is updated only
  /// after the flush succeeds: a failed append (ENOSPC, unwritable path)
  /// leaves the store exactly as it was, so retrying the same rows works.
  /// Matching entries are appended to the sidecar index (campaign/index.h)
  /// best-effort after the row flush — a failed sidecar write never fails
  /// the append (load_index() rebuilds later).
  /// \throws std::invalid_argument on a malformed or duplicate row
  /// \throws std::runtime_error when the file cannot be written
  void append(std::span<const common::json::Value> new_rows);

 private:
  std::string path_;
  std::vector<common::json::Value> rows_;
  std::unordered_set<std::string> hashes_;
  std::uint64_t end_offset_ = 0;  ///< file size = offset of the next append
};

/// The sharded store layout: up to 16 ResultStore shards selected by the
/// first hex nibble of each row's task hash, plus the base (legacy
/// single-file) store merged in read-only when present.
class ShardedStore {
 public:
  static constexpr int kMaxShards = 16;

  /// Opens the store rooted at \p path with \p n_shards append shards
  /// (1, 2, 4, 8 or 16). n_shards == 1 appends to \p path itself — the
  /// legacy layout, byte-for-byte. Independently of n_shards, every
  /// existing shard file (and the base file) is loaded, so resume works
  /// across layout changes.
  /// \param warnings truncated-tail warning sink, forwarded to every
  ///        ResultStore shard; nullptr means std::cerr
  /// \throws std::invalid_argument on a bad shard count
  /// \throws std::runtime_error on non-trailing corruption in any file
  ShardedStore(std::string path, int n_shards,
               std::ostream* warnings = nullptr);

  /// True when the base file or any prefix shard file exists on disk.
  static bool exists(const std::string& path);

  /// The file of shard \p shard (0..15): "store.jsonl" -> "store.3.jsonl".
  static std::string shard_path(const std::string& base, int shard);

  const std::string& path() const { return path_; }
  int n_shards() const { return n_shards_; }

  /// Total rows across the base file and all loaded shards.
  std::size_t size() const;
  bool contains(const std::string& hash) const {
    return hashes_.contains(hash);
  }

  /// The append shard a hash routes to: first hex nibble % n_shards.
  int shard_of(std::string_view hash) const;

  /// Validates the whole batch against the union index, then appends it
  /// grouped by shard — one batched write per shard, shards in ascending
  /// order. A failed shard write leaves that shard (and all later ones)
  /// untouched on disk and in memory, so a retry after the fault resumes
  /// exactly the missing rows.
  /// \throws std::invalid_argument on a malformed or duplicate row
  /// \throws std::runtime_error when a shard file cannot be written
  void append(std::span<const common::json::Value> new_rows);

  /// Every row, merged deterministically: base-file rows first, then
  /// shards 0..f, file order within each.
  std::vector<const common::json::Value*> all_rows() const;

 private:
  std::string path_;
  int n_shards_ = 1;
  std::unique_ptr<ResultStore> base_;
  std::array<std::unique_ptr<ResultStore>, kMaxShards> shards_;
  std::unordered_set<std::string> hashes_;  ///< union over all files
};

}  // namespace nbtisim::campaign
