#include "campaign/store.h"

#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace nbtisim::campaign {

ResultStore::ResultStore(std::string path) : path_(std::move(path)) {
  std::ifstream f(path_);
  if (!f) return;  // no store yet: fresh campaign
  std::string line;
  std::size_t line_no = 0;
  std::uintmax_t good_end = 0;  // bytes up to the last intact row
  bool truncated = false;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) {
      good_end += 1;
      continue;
    }
    common::json::Value row;
    try {
      row = common::json::parse(line);
      if (!row.is_object()) throw std::runtime_error("row is not an object");
      rows_.push_back(std::move(row));
      hashes_.insert(rows_.back().at("hash").as_string());
      good_end += line.size() + 1;
    } catch (const std::exception& e) {
      // A bad *last* line is the signature of a killed append: drop it and
      // let the task re-run. Anything earlier means the file is damaged.
      if (f.peek() == std::ifstream::traits_type::eof()) {
        truncated = true;
        break;
      }
      throw std::runtime_error(path_ + ":" + std::to_string(line_no) + ": " +
                               e.what());
    }
  }
  if (truncated) {
    // Cut the partial bytes off the file too, so the re-appended row does
    // not land glued onto them.
    f.close();
    std::filesystem::resize_file(path_, good_end);
  }
}

void ResultStore::append(std::span<const common::json::Value> new_rows) {
  if (new_rows.empty()) return;
  std::string block;
  for (const common::json::Value& row : new_rows) {
    const std::string& hash = row.at("hash").as_string();
    if (hashes_.contains(hash)) {
      throw std::invalid_argument("ResultStore: duplicate row hash " + hash);
    }
    hashes_.insert(hash);
    block += common::json::dump(row);
    block += '\n';
  }
  std::ofstream f(path_, std::ios::app);
  if (!f) throw std::runtime_error("ResultStore: cannot open " + path_);
  f << block;
  f.flush();
  if (!f) throw std::runtime_error("ResultStore: write failed for " + path_);
  for (const common::json::Value& row : new_rows) rows_.push_back(row);
}

}  // namespace nbtisim::campaign
