#include "campaign/store.h"

#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>

#include "campaign/index.h"

namespace nbtisim::campaign {

ResultStore::ResultStore(std::string path, std::ostream* warnings)
    : path_(std::move(path)) {
  std::ifstream f(path_);
  if (!f) return;  // no store yet: fresh campaign
  std::string line;
  std::size_t line_no = 0;
  std::uintmax_t good_end = 0;  // bytes up to the last intact row
  bool truncated = false;
  while (std::getline(f, line)) {
    ++line_no;
    if (line.empty()) {
      good_end += 1;
      continue;
    }
    common::json::Value row;
    try {
      row = common::json::parse(line);
      if (!row.is_object()) throw std::runtime_error("row is not an object");
      rows_.push_back(std::move(row));
      hashes_.insert(rows_.back().at("hash").as_string());
      good_end += line.size() + 1;
    } catch (const std::exception& e) {
      // A bad *last* line is the signature of a killed append: drop it and
      // let the task re-run. Anything earlier means the file is damaged.
      if (f.peek() == std::ifstream::traits_type::eof()) {
        truncated = true;
        break;
      }
      throw std::runtime_error(path_ + ":" + std::to_string(line_no) + ": " +
                               e.what());
    }
  }
  f.close();
  if (truncated) {
    // An interrupted append is expected, but never silent: the operator
    // should know which file lost a row and where, in case it was not a
    // crash but e.g. a concurrent writer.
    (warnings != nullptr ? *warnings : std::cerr)
        << "ResultStore: " << path_ << ": discarding truncated tail at byte "
        << good_end << " (interrupted append; the task will re-run)\n";
    // Cut the partial bytes off the file too, so the re-appended row does
    // not land glued onto them. On a read-only or contended file this is a
    // store-level failure, not a crash: rethrow with the path so the
    // operator knows which shard to fix.
    try {
      std::filesystem::resize_file(path_, good_end);
    } catch (const std::filesystem::filesystem_error& e) {
      throw std::runtime_error("ResultStore: cannot truncate damaged tail of " +
                               path_ + ": " + e.what());
    }
  }
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path_, ec);
  end_offset_ = ec ? 0 : static_cast<std::uint64_t>(size);
}

void ResultStore::append(std::span<const common::json::Value> new_rows) {
  if (new_rows.empty()) return;
  std::string block;
  std::vector<IndexEntry> entries;
  entries.reserve(new_rows.size());
  std::unordered_set<std::string_view> batch;  // duplicates within the batch
  for (const common::json::Value& row : new_rows) {
    const std::string& hash = row.at("hash").as_string();
    if (hashes_.contains(hash) || !batch.insert(hash).second) {
      throw std::invalid_argument("ResultStore: duplicate row hash " + hash);
    }
    const std::string dumped = common::json::dump(row);
    entries.push_back(
        entry_from_row(row, end_offset_ + block.size(), dumped.size()));
    block += dumped;
    block += '\n';
  }
  std::ofstream f(path_, std::ios::app);
  if (!f) throw std::runtime_error("ResultStore: cannot open " + path_);
  f << block;
  f.flush();
  if (!f) throw std::runtime_error("ResultStore: write failed for " + path_);
  // Mutate the in-memory index only after the bytes reached the stream: a
  // transient failure above must leave the store untouched, so the caller
  // can retry the very same rows without a spurious duplicate-hash error.
  for (const common::json::Value& row : new_rows) {
    hashes_.insert(row.at("hash").as_string());
    rows_.push_back(row);
  }
  end_offset_ += block.size();
  // Sidecar last, best-effort: if it cannot be written the index is merely
  // stale and load_index() will rebuild it.
  append_index_entries(path_, entries);
}

// ---------------------------------------------------------------------------
// ShardedStore

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  // Task hashes are 16 lowercase hex digits; anything else still routes
  // deterministically.
  return static_cast<unsigned char>(c) & 15;
}

}  // namespace

std::string ShardedStore::shard_path(const std::string& base, int shard) {
  const char digit = kHexDigits[shard & 15];
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  std::string out = base;
  if (dot != std::string::npos &&
      (slash == std::string::npos || dot > slash)) {
    out.insert(dot, {'.', digit});  // store.jsonl -> store.<digit>.jsonl
  } else {
    out += '.';
    out += digit;
  }
  return out;
}

bool ShardedStore::exists(const std::string& path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (fs::exists(path, ec)) return true;
  for (int h = 0; h < kMaxShards; ++h) {
    if (fs::exists(shard_path(path, h), ec)) return true;
  }
  return false;
}

ShardedStore::ShardedStore(std::string path, int n_shards,
                           std::ostream* warnings)
    : path_(std::move(path)), n_shards_(n_shards) {
  if (n_shards_ != 1 && n_shards_ != 2 && n_shards_ != 4 && n_shards_ != 8 &&
      n_shards_ != 16) {
    throw std::invalid_argument("ShardedStore: shards must be 1, 2, 4, 8 or "
                                "16 (got " + std::to_string(n_shards_) + ")");
  }
  namespace fs = std::filesystem;
  std::error_code ec;
  // The base file is the append target of the single-shard layout; under a
  // sharded layout it is merged read-only when a legacy store left it.
  if (n_shards_ == 1 || fs::exists(path_, ec)) {
    base_ = std::make_unique<ResultStore>(path_, warnings);
  }
  for (int h = 0; h < kMaxShards; ++h) {
    const std::string sp = shard_path(path_, h);
    const bool append_target = n_shards_ > 1 && h < n_shards_;
    if (append_target || fs::exists(sp, ec)) {
      shards_[h] = std::make_unique<ResultStore>(sp, warnings);
    }
  }
  if (base_) {
    for (const common::json::Value& row : base_->rows()) {
      hashes_.insert(row.at("hash").as_string());
    }
  }
  for (const auto& shard : shards_) {
    if (!shard) continue;
    for (const common::json::Value& row : shard->rows()) {
      hashes_.insert(row.at("hash").as_string());
    }
  }
}

std::size_t ShardedStore::size() const {
  std::size_t total = base_ ? base_->size() : 0;
  for (const auto& shard : shards_) {
    if (shard) total += shard->size();
  }
  return total;
}

int ShardedStore::shard_of(std::string_view hash) const {
  if (hash.empty()) return 0;
  return hex_nibble(hash.front()) % n_shards_;
}

void ShardedStore::append(std::span<const common::json::Value> new_rows) {
  if (new_rows.empty()) return;
  // Validate the whole batch against the union index up front, so the
  // per-shard writes below never start on a batch that would be rejected.
  std::unordered_set<std::string_view> batch;
  for (const common::json::Value& row : new_rows) {
    const std::string& hash = row.at("hash").as_string();
    if (hashes_.contains(hash) || !batch.insert(hash).second) {
      throw std::invalid_argument("ResultStore: duplicate row hash " + hash);
    }
  }
  if (n_shards_ == 1) {
    base_->append(new_rows);
    for (const common::json::Value& row : new_rows) {
      hashes_.insert(row.at("hash").as_string());
    }
    return;
  }
  std::array<std::vector<common::json::Value>, kMaxShards> groups;
  for (const common::json::Value& row : new_rows) {
    groups[shard_of(row.at("hash").as_string())].push_back(row);
  }
  for (int s = 0; s < n_shards_; ++s) {
    if (groups[s].empty()) continue;
    shards_[s]->append(groups[s]);
    // Record shard by shard: a failed write on shard s leaves shards > s
    // unrecorded on disk *and* in memory, so a retry appends exactly them.
    for (const common::json::Value& row : groups[s]) {
      hashes_.insert(row.at("hash").as_string());
    }
  }
}

std::vector<const common::json::Value*> ShardedStore::all_rows() const {
  std::vector<const common::json::Value*> out;
  out.reserve(size());
  if (base_) {
    for (const common::json::Value& row : base_->rows()) out.push_back(&row);
  }
  for (const auto& shard : shards_) {
    if (!shard) continue;
    for (const common::json::Value& row : shard->rows()) out.push_back(&row);
  }
  return out;
}

}  // namespace nbtisim::campaign
