/// \file spec.h
/// \brief Declarative campaign specifications and their task-grid expansion.
///
/// The paper's evaluation is a *grid*: benchmarks × (RAS, T_active,
/// T_standby) × standby techniques over a 10-year horizon — Table 1 sweeps
/// schedules, Table 3 sweeps circuits under IVC, Fig. 11 sweeps
/// sleep-transistor styles. A campaign spec captures such a grid
/// declaratively as JSON:
///
/// ```json
/// {
///   "name": "table3_ivc",
///   "netlists": ["c432", "c880", "designs/core.bench", "dag:16x200@7"],
///   "conditions": [
///     {"ras": "1:9", "t_active": 400, "t_standby": 330, "years": 10}
///   ],
///   "analyses": ["aging", "ivc", "st", "lifetime",
///                "sizing", "derate", "pareto", "criticality"],
///   "params": {"sp_vectors": 1024, "samples": 100, "seed": 7},
///   "n_threads": 0,
///   "shards": 16
/// }
/// ```
///
/// The analysis axis is open: any name in analysis::AnalysisRegistry is
/// valid (see src/analysis/analysis.h) — spec parsing validates names
/// against the registry, so a new self-registered technique becomes
/// sweepable without touching this layer.
///
/// expand() turns the spec into the full cross product of tasks, each with a
/// stable 64-bit FNV-1a content hash over (netlist, condition, analysis,
/// engine parameters). The hash keys the JSONL result store: re-running a
/// partially completed campaign skips every task whose hash is already
/// stored. Hashing is *per-analysis*: each Analysis::fingerprint covers
/// exactly the parameters it consumes, so changing e.g. a sizing knob
/// re-runs only the sizing rows while every other stored row stays valid —
/// and a stale row can never be mistaken for a current result.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analysis/analysis.h"
#include "common/json.h"

namespace nbtisim::campaign {

/// One operating scenario: stress schedule + lifetime horizon.
using Condition = analysis::Condition;

/// Engine knobs shared by every task of a campaign; each analysis hashes
/// the subset it consumes (see analysis::Analysis::fingerprint).
using CampaignParams = analysis::Params;

/// A parsed campaign specification.
struct CampaignSpec {
  std::string name;
  std::vector<std::string> netlists;  ///< built-in names, .bench/.v paths, or
                                      ///< "dag:<inputs>x<gates>@<seed>"
                                      ///< generator forms
  std::vector<Condition> conditions;
  std::vector<std::string> analyses;  ///< registry names ("aging", "sizing"…)
  CampaignParams params;
  int n_threads = 0;    ///< campaign-level workers; 0 = hardware
  int shards = 16;      ///< result-store shards (1, 2, 4, 8 or 16);
                        ///< 1 = legacy single-file layout
  bool cut_dffs = false;  ///< cut DFFs when loading .bench netlists
};

/// One cell of the expanded grid.
struct Task {
  int index = 0;  ///< position in grid order (netlist-major)
  std::string netlist;
  Condition condition;
  std::string analysis;  ///< registry name
  std::string hash;  ///< 16-hex-digit FNV-1a over key() — the store key

  /// Canonical task identity:
  /// "<netlist>|<condition>|<analysis>|<analysis fingerprint>".
  /// \throws std::invalid_argument when the analysis name is unknown
  std::string key(const CampaignParams& params) const;
};

/// Parses a spec document; analysis names are validated against the global
/// registry.
/// \throws std::runtime_error / std::invalid_argument on schema violations
CampaignSpec spec_from_json(const common::json::Value& doc);

/// Loads and parses a spec file.
/// \throws std::runtime_error when the file cannot be read or parsed
CampaignSpec load_spec(const std::string& path);

/// Expands the full netlist × condition × analysis grid, hashes assigned.
/// \throws std::invalid_argument when any grid axis is empty or an analysis
///         name is unknown
std::vector<Task> expand(const CampaignSpec& spec);

/// 64-bit FNV-1a of \p s as 16 lowercase hex digits.
std::string fnv1a_hex(std::string_view s);

}  // namespace nbtisim::campaign
