/// \file spec.h
/// \brief Declarative campaign specifications and their task-grid expansion.
///
/// The paper's evaluation is a *grid*: benchmarks × (RAS, T_active,
/// T_standby) × standby techniques over a 10-year horizon — Table 1 sweeps
/// schedules, Table 3 sweeps circuits under IVC, Fig. 11 sweeps
/// sleep-transistor styles. A campaign spec captures such a grid
/// declaratively as JSON:
///
/// ```json
/// {
///   "name": "table3_ivc",
///   "netlists": ["c432", "c880", "designs/core.bench", "dag:16x200@7"],
///   "conditions": [
///     {"ras": "1:9", "t_active": 400, "t_standby": 330, "years": 10}
///   ],
///   "analyses": ["aging", "ivc", "st", "lifetime"],
///   "params": {"sp_vectors": 1024, "samples": 100, "seed": 7},
///   "n_threads": 0
/// }
/// ```
///
/// expand() turns the spec into the full cross product of tasks, each with a
/// stable 64-bit FNV-1a content hash over (netlist, condition, analysis,
/// engine parameters). The hash keys the JSONL result store: re-running a
/// partially completed campaign skips every task whose hash is already
/// stored, and changing any engine parameter changes every hash — stale rows
/// can never be mistaken for current results.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.h"

namespace nbtisim::campaign {

/// The analysis kinds a task can request — one paper technique each.
enum class Analysis : unsigned char {
  Aging,     ///< degradation under the three standby policies + half-horizon
             ///< series point (Fig. 5 / Table 1 style)
  Ivc,       ///< MLV search + IVC/NBTI co-optimization (Table 3)
  St,        ///< sleep-transistor insertion + NBTI-aware sizing (Figs. 9/11)
  Lifetime,  ///< Monte-Carlo time-to-failure distribution (Fig. 12 inverse)
};

/// Canonical lowercase name ("aging", "ivc", "st", "lifetime").
std::string_view to_string(Analysis a);
/// \throws std::invalid_argument for unknown names
Analysis analysis_from_string(std::string_view name);

/// One operating scenario: stress schedule + lifetime horizon.
struct Condition {
  double ras_active = 1.0;
  double ras_standby = 9.0;
  double t_active = 400.0;   ///< [K]
  double t_standby = 330.0;  ///< [K]
  double years = 10.0;

  /// Stable human-readable form, e.g. "ras1:9,ta400,ts330,y10" — part of
  /// every task key.
  std::string label() const;
};

/// Engine knobs shared by every task of a campaign. All of them are part of
/// every task hash (see file comment).
struct CampaignParams {
  int sp_vectors = 1024;      ///< active-mode Monte-Carlo vectors
  std::uint64_t seed = 7;
  int samples = 100;          ///< lifetime Monte-Carlo samples
  double spec_margin = 5.0;   ///< lifetime failure margin [%]
  int population = 32;        ///< MLV search population
  int max_rounds = 8;         ///< MLV search rounds
  double st_sigma = 0.05;     ///< sleep-transistor time-0 penalty budget

  /// Canonical key fragment, e.g. "sp1024,seed7,mc100,margin5,pop32,r8,sig0.05".
  std::string fingerprint() const;
};

/// A parsed campaign specification.
struct CampaignSpec {
  std::string name;
  std::vector<std::string> netlists;  ///< built-in names, .bench/.v paths, or
                                      ///< "dag:<inputs>x<gates>@<seed>"
                                      ///< generator forms
  std::vector<Condition> conditions;
  std::vector<Analysis> analyses;
  CampaignParams params;
  int n_threads = 0;    ///< campaign-level workers; 0 = hardware
  bool cut_dffs = false;  ///< cut DFFs when loading .bench netlists
};

/// One cell of the expanded grid.
struct Task {
  int index = 0;  ///< position in grid order (netlist-major)
  std::string netlist;
  Condition condition;
  Analysis analysis;
  std::string hash;  ///< 16-hex-digit FNV-1a over key() — the store key

  /// Canonical task identity: "<netlist>|<condition>|<analysis>|<params>".
  std::string key(const CampaignParams& params) const;
};

/// Parses a spec document.
/// \throws std::runtime_error / std::invalid_argument on schema violations
CampaignSpec spec_from_json(const common::json::Value& doc);

/// Loads and parses a spec file.
/// \throws std::runtime_error when the file cannot be read or parsed
CampaignSpec load_spec(const std::string& path);

/// Expands the full netlist × condition × analysis grid, hashes assigned.
/// \throws std::invalid_argument when any grid axis is empty
std::vector<Task> expand(const CampaignSpec& spec);

/// 64-bit FNV-1a of \p s as 16 lowercase hex digits.
std::string fnv1a_hex(std::string_view s);

}  // namespace nbtisim::campaign
