#include "campaign/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "common/pool.h"

namespace nbtisim::campaign {
namespace {

using common::json::Value;

Value execute_task(const CampaignSpec& spec, const Task& task,
                   analysis::ContextPool& pool) {
  const analysis::Analysis& a =
      analysis::AnalysisRegistry::global().at(task.analysis);
  analysis::EvalContext ctx = pool.context(task.netlist, task.condition);
  analysis::Metrics metrics = a.run(ctx, spec.params);

  Value metrics_obj;
  for (auto& [name, value] : metrics) {
    metrics_obj.set(std::move(name), std::move(value));
  }

  // No timestamps or timings in the row: the file must be byte-identical
  // for every n_threads (and across re-runs of identical work).
  Value row;
  row.set("hash", task.hash);
  row.set("campaign", spec.name);
  row.set("netlist", ctx.netlist().name());
  row.set("netlist_spec", task.netlist);
  char ras[32];
  std::snprintf(ras, sizeof ras, "%g:%g", task.condition.ras_active,
                task.condition.ras_standby);
  row.set("ras", std::string(ras));
  row.set("t_active", task.condition.t_active);
  row.set("t_standby", task.condition.t_standby);
  row.set("years", task.condition.years);
  row.set("analysis", task.analysis);
  row.set("metrics", std::move(metrics_obj));
  return row;
}

}  // namespace

netlist::Netlist load_campaign_netlist(const std::string& spec,
                                       bool cut_dffs) {
  return analysis::load_netlist_spec(spec, cut_dffs);
}

RunStats run_campaign(const CampaignSpec& spec, const std::string& store_path,
                      std::ostream* progress) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Task> grid = expand(spec);
  ShardedStore store(store_path, spec.shards);

  std::unordered_set<std::string> grid_hashes;
  for (const Task& t : grid) grid_hashes.insert(t.hash);

  std::vector<const Task*> pending;
  for (const Task& t : grid) {
    if (!store.contains(t.hash)) pending.push_back(&t);
  }

  RunStats stats;
  stats.total = static_cast<int>(grid.size());
  stats.skipped = stats.total - static_cast<int>(pending.size());
  for (const Value* row : store.all_rows()) {
    if (!grid_hashes.contains(row->at("hash").as_string())) ++stats.stale;
  }
  if (progress != nullptr) {
    *progress << "campaign " << spec.name << ": " << stats.total << " tasks, "
              << stats.skipped << " already in " << store_path << "\n";
    if (stats.stale > 0) {
      *progress << "campaign " << spec.name << ": " << stats.stale
                << " stale store row" << (stats.stale == 1 ? "" : "s")
                << " (parameters changed; superseded results stay on disk "
                   "but are ignored)\n";
    }
  }

  analysis::ContextPool pool(spec.params, spec.cut_dffs);
  // Fixed batch size: big enough to keep any sane worker count busy, small
  // enough that a killed run loses little work. Batch boundaries never
  // affect file content — rows land in task order either way, routed to
  // their hash-prefix shard as one batched append per shard.
  constexpr int kBatch = 32;
  for (std::size_t begin = 0; begin < pending.size(); begin += kBatch) {
    const int count =
        static_cast<int>(std::min<std::size_t>(kBatch, pending.size() - begin));
    std::vector<Value> rows(count);
    common::parallel_for(count, spec.n_threads, [&](int i) {
      rows[i] = execute_task(spec, *pending[begin + i], pool);
    });
    store.append(rows);
    stats.executed += count;
    if (progress != nullptr) {
      *progress << "campaign " << spec.name << ": " << stats.executed << "/"
                << pending.size() << " executed\n";
    }
  }

  stats.elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return stats;
}

report::Table summarize(const CampaignSpec& spec,
                        const std::string& store_path, SummaryStats* stats) {
  const std::vector<Task> grid = expand(spec);
  const ShardedStore store(store_path, spec.shards);

  std::unordered_map<std::string, const Value*> by_hash;
  for (const Value* row : store.all_rows()) {
    by_hash.emplace(row->at("hash").as_string(), row);
  }

  // Column set: grid coordinates + metric names in first-appearance order
  // over the grid (not file order, so resumed stores summarize identically).
  std::vector<std::string> metric_names;
  int matched = 0;
  for (const Task& t : grid) {
    const auto it = by_hash.find(t.hash);
    if (it == by_hash.end()) continue;
    ++matched;
    for (const auto& [name, value] : it->second->at("metrics").as_object()) {
      if (!value.is_number()) continue;  // structured payloads have no column
      if (std::find(metric_names.begin(), metric_names.end(), name) ==
          metric_names.end()) {
        metric_names.push_back(name);
      }
    }
  }
  if (stats != nullptr) {
    stats->stored = static_cast<int>(store.size());
    stats->summarized = matched;
    stats->stale = static_cast<int>(store.size()) - matched;
  }

  report::Table table;
  table.headers = {"netlist", "ras", "t_active", "t_standby", "years",
                   "analysis"};
  table.headers.insert(table.headers.end(), metric_names.begin(),
                       metric_names.end());
  for (const Task& t : grid) {
    const auto it = by_hash.find(t.hash);
    if (it == by_hash.end()) continue;
    const Value& row = *it->second;
    std::vector<std::string> cells{
        row.at("netlist").as_string(),
        row.at("ras").as_string(),
        common::json::format_number(row.at("t_active").as_number()),
        common::json::format_number(row.at("t_standby").as_number()),
        common::json::format_number(row.at("years").as_number()),
        row.at("analysis").as_string()};
    const Value& metrics = row.at("metrics");
    for (const std::string& name : metric_names) {
      const Value* m = metrics.find(name);
      cells.push_back(m == nullptr || !m->is_number()
                          ? std::string()
                          : common::json::format_number(m->as_number()));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

}  // namespace nbtisim::campaign
