#include "campaign/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "aging/aging.h"
#include "common/parallel.h"
#include "leakage/leakage.h"
#include "netlist/bench_io.h"
#include "netlist/generators.h"
#include "netlist/verilog_io.h"
#include "opt/ivc.h"
#include "opt/sleep_transistor.h"
#include "tech/library.h"
#include "tech/units.h"
#include "variation/lifetime.h"

namespace nbtisim::campaign {
namespace {

using common::json::Value;

/// Flat, ordered metric list — the order is the JSONL member order, so it
/// must be deterministic per analysis kind.
using Metrics = std::vector<std::pair<std::string, double>>;

// ---------------------------------------------------------------------------
// Per-campaign shared state: library + lazily built netlists / analyzers.
//
// Construction runs under one mutex: concurrent tasks of the same cell then
// find the entry instead of duplicating the (expensive, deterministic)
// build. Serializing builds costs little — a cell's first task quickly
// yields to the evaluation phase, which dominates and runs unlocked.

class ContextCache {
 public:
  explicit ContextCache(const CampaignSpec& spec) : spec_(spec) {}

  const netlist::Netlist& netlist_for(const std::string& nl_spec) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = netlists_.try_emplace(nl_spec);
    if (inserted) {
      it->second = std::make_shared<netlist::Netlist>(
          load_campaign_netlist(nl_spec, spec_.cut_dffs));
    }
    return *it->second;
  }

  const aging::AgingAnalyzer& analyzer_for(const Task& task) {
    const std::string key = task.netlist + "|" + task.condition.label();
    const netlist::Netlist& nl = netlist_for(task.netlist);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = analyzers_.try_emplace(key);
    if (inserted) {
      aging::AgingConditions cond;
      cond.schedule = nbti::ModeSchedule::from_ras(
          task.condition.ras_active, task.condition.ras_standby, 1000.0,
          task.condition.t_active, task.condition.t_standby);
      cond.total_time = task.condition.years * kSecondsPerYear;
      cond.sp_vectors = spec_.params.sp_vectors;
      cond.seed = spec_.params.seed;
      cond.n_threads = 1;  // campaign parallelism is across tasks
      it->second = std::make_shared<aging::AgingAnalyzer>(nl, lib_, cond);
    }
    return *it->second;
  }

  const leakage::LeakageAnalyzer& leakage_for(const Task& task) {
    char key[64];
    std::snprintf(key, sizeof key, "|%g", task.condition.t_standby);
    const netlist::Netlist& nl = netlist_for(task.netlist);
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = leakages_.try_emplace(task.netlist + key);
    if (inserted) {
      it->second = std::make_shared<leakage::LeakageAnalyzer>(
          nl, lib_, task.condition.t_standby);
    }
    return *it->second;
  }

  const tech::Library& library() const { return lib_; }

 private:
  const CampaignSpec& spec_;
  tech::Library lib_;
  std::mutex mutex_;
  std::map<std::string, std::shared_ptr<netlist::Netlist>> netlists_;
  std::map<std::string, std::shared_ptr<aging::AgingAnalyzer>> analyzers_;
  std::map<std::string, std::shared_ptr<leakage::LeakageAnalyzer>> leakages_;
};

// ---------------------------------------------------------------------------
// Analysis executors: each maps one task to a flat metric list.

Metrics run_aging(const aging::AgingAnalyzer& an) {
  const auto worst = an.analyze(aging::StandbyPolicy::all_stressed());
  const auto best = an.analyze(aging::StandbyPolicy::all_relaxed());
  const std::vector<bool> zeros(an.sta().netlist().num_inputs(), false);
  const auto vec = an.analyze(aging::StandbyPolicy::from_vector(zeros));
  // One mid-horizon series point turns the row into a 2-point degradation
  // series (full curves stay the job of bench_fig5 etc.).
  const auto half = an.analyze(aging::StandbyPolicy::all_stressed(),
                               an.conditions().total_time / 2.0);
  return {{"fresh_ns", to_ns(worst.fresh_delay)},
          {"aged_worst_ns", to_ns(worst.aged_delay)},
          {"worst_pct", worst.percent()},
          {"worst_half_horizon_pct", half.percent()},
          {"vector0_pct", vec.percent()},
          {"best_pct", best.percent()}};
}

Metrics run_ivc(const CampaignSpec& spec, const aging::AgingAnalyzer& an,
                const leakage::LeakageAnalyzer& leak) {
  opt::MlvSearchParams p;
  p.population = spec.params.population;
  p.max_rounds = spec.params.max_rounds;
  p.seed = spec.params.seed;
  p.n_threads = 1;
  const opt::IvcResult r = opt::evaluate_ivc(an, leak, p, 4);
  return {{"worst_pct", r.worst_case_percent},
          {"best_mlv_pct", r.best().degradation_percent},
          {"best_mlv_leak_ua", 1e6 * r.best().leakage},
          {"mlv_spread_pct", r.mlv_spread_percent()},
          {"random_ref_pct", r.random_vector_percent},
          {"inc_bound_pct", r.best_case_percent},
          {"n_mlv", static_cast<double>(r.candidates.size())}};
}

Metrics run_st(const CampaignSpec& spec, const aging::AgingAnalyzer& an) {
  opt::StParams st;
  st.sigma = spec.params.st_sigma;
  const double horizon = an.conditions().total_time;
  const auto with_st = opt::st_circuit_degradation_series(
      an, opt::StStyle::Header, st, horizon, horizon * 1.01, 2);
  const auto without =
      opt::no_st_degradation_series(an, horizon, horizon * 1.01, 2);
  const opt::StSizing sizing = opt::size_sleep_transistor(
      an.conditions().rd, an.conditions().schedule, horizon, 1e-3, st);
  return {{"st_total_pct", with_st.front().total_percent},
          {"st_logic_pct", with_st.front().logic_percent},
          {"st_drop_pct", with_st.front().st_percent},
          {"no_st_pct", without.front().total_percent},
          {"wl_base", sizing.wl_base},
          {"wl_nbti_aware", sizing.wl_nbti_aware},
          {"wl_increase_pct", sizing.wl_increase_percent()},
          {"st_dvth_mv", to_mV(sizing.dvth_st)}};
}

Metrics run_lifetime(const CampaignSpec& spec,
                     const aging::AgingAnalyzer& an, const Task& task) {
  variation::LifetimeParams p;
  p.spec_margin_percent = spec.params.spec_margin;
  p.samples = spec.params.samples;
  p.seed = spec.params.seed;
  p.n_threads = 1;
  const variation::LifetimeResult r = variation::lifetime_distribution(
      an, aging::StandbyPolicy::all_stressed(), p);
  const double horizon = task.condition.years * kSecondsPerYear;
  return {{"median_years", r.quantile(0.5) / kSecondsPerYear},
          {"p01_years", r.quantile(0.01) / kSecondsPerYear},
          {"fail_at_horizon_pct", 100.0 * r.failure_fraction_at(horizon)},
          {"survivor_pct", 100.0 * r.survivor_fraction()}};
}

Value execute_task(const CampaignSpec& spec, const Task& task,
                   ContextCache& cache) {
  const aging::AgingAnalyzer& an = cache.analyzer_for(task);
  Metrics metrics;
  switch (task.analysis) {
    case Analysis::Aging:
      metrics = run_aging(an);
      break;
    case Analysis::Ivc:
      metrics = run_ivc(spec, an, cache.leakage_for(task));
      break;
    case Analysis::St:
      metrics = run_st(spec, an);
      break;
    case Analysis::Lifetime:
      metrics = run_lifetime(spec, an, task);
      break;
  }

  Value metrics_obj;
  for (auto& [name, value] : metrics) metrics_obj.set(std::move(name), value);

  // No timestamps or timings in the row: the file must be byte-identical
  // for every n_threads (and across re-runs of identical work).
  Value row;
  row.set("hash", task.hash);
  row.set("campaign", spec.name);
  row.set("netlist", cache.netlist_for(task.netlist).name());
  row.set("netlist_spec", task.netlist);
  char ras[32];
  std::snprintf(ras, sizeof ras, "%g:%g", task.condition.ras_active,
                task.condition.ras_standby);
  row.set("ras", std::string(ras));
  row.set("t_active", task.condition.t_active);
  row.set("t_standby", task.condition.t_standby);
  row.set("years", task.condition.years);
  row.set("analysis", std::string(to_string(task.analysis)));
  row.set("metrics", std::move(metrics_obj));
  return row;
}

}  // namespace

netlist::Netlist load_campaign_netlist(const std::string& spec,
                                       bool cut_dffs) {
  if (spec.starts_with("dag:")) {
    int n_inputs = 0, n_gates = 0;
    long long seed = 0;
    if (std::sscanf(spec.c_str(), "dag:%dx%d@%lld", &n_inputs, &n_gates,
                    &seed) != 3 ||
        n_inputs < 2 || n_gates < 1 || seed < 0) {
      throw std::invalid_argument(
          "campaign: bad generator spec \"" + spec +
          "\" (expected dag:<inputs>x<gates>@<seed>)");
    }
    std::string name = spec;
    for (char& c : name) {
      if (c == ':' || c == '@') c = '_';
    }
    return netlist::make_random_dag(
        name, {.n_inputs = n_inputs, .n_outputs = std::max(2, n_inputs / 2),
               .n_gates = n_gates, .seed = static_cast<std::uint64_t>(seed),
               .locality = 0.75});
  }
  if (spec.ends_with(".v")) return netlist::load_verilog(spec);
  if (spec.find('/') != std::string::npos || spec.ends_with(".bench")) {
    std::ifstream probe(spec);
    if (!probe) throw std::runtime_error("campaign: cannot open " + spec);
    std::ostringstream ss;
    ss << probe.rdbuf();
    std::string name = spec;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name.erase(0, slash + 1);
    return netlist::parse_bench(ss.str(), name, {.cut_dffs = cut_dffs});
  }
  return netlist::iscas85_like(spec);
}

RunStats run_campaign(const CampaignSpec& spec, const std::string& store_path,
                      std::ostream* progress) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<Task> grid = expand(spec);
  ResultStore store(store_path);

  std::vector<const Task*> pending;
  for (const Task& t : grid) {
    if (!store.contains(t.hash)) pending.push_back(&t);
  }

  RunStats stats;
  stats.total = static_cast<int>(grid.size());
  stats.skipped = stats.total - static_cast<int>(pending.size());
  if (progress != nullptr) {
    *progress << "campaign " << spec.name << ": " << stats.total << " tasks, "
              << stats.skipped << " already in " << store_path << "\n";
  }

  ContextCache cache(spec);
  // Fixed batch size: big enough to keep any sane worker count busy, small
  // enough that a killed run loses little work. Batch boundaries never
  // affect file content — rows land in task order either way.
  constexpr int kBatch = 32;
  for (std::size_t begin = 0; begin < pending.size(); begin += kBatch) {
    const int count =
        static_cast<int>(std::min<std::size_t>(kBatch, pending.size() - begin));
    std::vector<Value> rows(count);
    common::parallel_for(count, spec.n_threads, [&](int i) {
      rows[i] = execute_task(spec, *pending[begin + i], cache);
    });
    store.append(rows);
    stats.executed += count;
    if (progress != nullptr) {
      *progress << "campaign " << spec.name << ": " << stats.executed << "/"
                << pending.size() << " executed\n";
    }
  }

  stats.elapsed_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return stats;
}

report::Table summarize(const CampaignSpec& spec,
                        const std::string& store_path) {
  const std::vector<Task> grid = expand(spec);
  const ResultStore store(store_path);

  std::unordered_map<std::string, const Value*> by_hash;
  for (const Value& row : store.rows()) {
    by_hash.emplace(row.at("hash").as_string(), &row);
  }

  // Column set: grid coordinates + metric names in first-appearance order
  // over the grid (not file order, so resumed stores summarize identically).
  std::vector<std::string> metric_names;
  for (const Task& t : grid) {
    const auto it = by_hash.find(t.hash);
    if (it == by_hash.end()) continue;
    for (const auto& [name, value] : it->second->at("metrics").as_object()) {
      if (std::find(metric_names.begin(), metric_names.end(), name) ==
          metric_names.end()) {
        metric_names.push_back(name);
      }
    }
  }

  report::Table table;
  table.headers = {"netlist", "ras", "t_active", "t_standby", "years",
                   "analysis"};
  table.headers.insert(table.headers.end(), metric_names.begin(),
                       metric_names.end());
  for (const Task& t : grid) {
    const auto it = by_hash.find(t.hash);
    if (it == by_hash.end()) continue;
    const Value& row = *it->second;
    std::vector<std::string> cells{
        row.at("netlist").as_string(),
        row.at("ras").as_string(),
        common::json::format_number(row.at("t_active").as_number()),
        common::json::format_number(row.at("t_standby").as_number()),
        common::json::format_number(row.at("years").as_number()),
        row.at("analysis").as_string()};
    const Value& metrics = row.at("metrics");
    for (const std::string& name : metric_names) {
      const Value* m = metrics.find(name);
      cells.push_back(m == nullptr
                          ? std::string()
                          : common::json::format_number(m->as_number()));
    }
    table.add_row(std::move(cells));
  }
  return table;
}

}  // namespace nbtisim::campaign
