#include "campaign/spec.h"

#include <cstdio>
#include <stdexcept>

namespace nbtisim::campaign {
namespace {

Condition condition_from_json(const common::json::Value& doc) {
  Condition c;
  if (const common::json::Value* ras = doc.find("ras")) {
    const std::string& v = ras->as_string();
    const std::size_t colon = v.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("campaign: condition \"ras\" expects \"A:S\"");
    }
    c.ras_active = std::strtod(v.substr(0, colon).c_str(), nullptr);
    c.ras_standby = std::strtod(v.substr(colon + 1).c_str(), nullptr);
    if (c.ras_active <= 0.0 || c.ras_standby < 0.0) {
      throw std::invalid_argument("campaign: bad \"ras\" value " + v);
    }
  }
  c.t_active = doc.number_or("t_active", c.t_active);
  c.t_standby = doc.number_or("t_standby", c.t_standby);
  c.years = doc.number_or("years", c.years);
  if (c.t_active <= 0.0 || c.t_standby <= 0.0 || c.years <= 0.0) {
    throw std::invalid_argument("campaign: condition values must be positive");
  }
  return c;
}

void params_from_json(const common::json::Value& doc, CampaignParams& p) {
  p.sp_vectors = doc.int_or("sp_vectors", p.sp_vectors);
  p.seed = static_cast<std::uint64_t>(
      doc.number_or("seed", static_cast<double>(p.seed)));
  p.samples = doc.int_or("samples", p.samples);
  p.spec_margin = doc.number_or("spec_margin", p.spec_margin);
  p.population = doc.int_or("population", p.population);
  p.max_rounds = doc.int_or("max_rounds", p.max_rounds);
  p.st_sigma = doc.number_or("st_sigma", p.st_sigma);
  p.sizing_margin = doc.number_or("sizing_margin", p.sizing_margin);
  p.sizing_step = doc.number_or("sizing_step", p.sizing_step);
  p.sizing_max_size = doc.number_or("sizing_max_size", p.sizing_max_size);
  p.sizing_max_moves = doc.int_or("sizing_max_moves", p.sizing_max_moves);
  p.sizing_slack_window =
      doc.number_or("sizing_slack_window", p.sizing_slack_window);
  p.sizing_moves_per_round =
      doc.int_or("sizing_moves_per_round", p.sizing_moves_per_round);
  if (const common::json::Value* years = doc.find("derate_years")) {
    p.derate_years.clear();
    for (const common::json::Value& y : years->as_array()) {
      p.derate_years.push_back(y.as_number());
    }
  }
  p.pareto_samples = doc.int_or("pareto_samples", p.pareto_samples);
  p.pareto_rounds = doc.int_or("pareto_rounds", p.pareto_rounds);
  p.pareto_flips = doc.int_or("pareto_flips", p.pareto_flips);
  p.crit_samples = doc.int_or("crit_samples", p.crit_samples);
  p.crit_sigma = doc.number_or("crit_sigma", p.crit_sigma);
  p.clock_ghz = doc.number_or("clock_ghz", p.clock_ghz);
  p.pbti_ratio = doc.number_or("pbti_ratio", p.pbti_ratio);
  p.thermal_power = doc.number_or("thermal_power", p.thermal_power);
  p.thermal_replication =
      doc.number_or("thermal_replication", p.thermal_replication);
  p.thermal_runaway_k = doc.number_or("thermal_runaway_k", p.thermal_runaway_k);
  p.fail_dvth = doc.number_or("fail_dvth", p.fail_dvth);
  p.fail_max_years = doc.number_or("fail_max_years", p.fail_max_years);
  p.fail_points = doc.int_or("fail_points", p.fail_points);
  p.weibull_beta = doc.number_or("weibull_beta", p.weibull_beta);
  if (const common::json::Value* years = doc.find("fail_curve_years")) {
    p.fail_curve_years.clear();
    for (const common::json::Value& y : years->as_array()) {
      p.fail_curve_years.push_back(y.as_number());
    }
  }
  p.use_dvth_table = doc.bool_or("use_dvth_table", p.use_dvth_table);
  p.table_ppd = doc.int_or("table_ppd", p.table_ppd);

  if (p.sp_vectors < 64 || p.samples < 2 || p.spec_margin <= 0.0 ||
      p.population < 2 || p.max_rounds < 1 || p.st_sigma <= 0.0 ||
      p.st_sigma > 0.5) {
    throw std::invalid_argument("campaign: out-of-range \"params\" value");
  }
  if (p.sizing_margin <= 0.0 || p.sizing_step <= 0.0 ||
      p.sizing_max_size < 1.0 || p.sizing_max_moves < 1 ||
      p.sizing_slack_window < 0.0 || p.sizing_moves_per_round < 1) {
    throw std::invalid_argument("campaign: out-of-range sizing param");
  }
  if (p.derate_years.empty()) {
    throw std::invalid_argument("campaign: \"derate_years\" must be non-empty");
  }
  for (double y : p.derate_years) {
    if (y <= 0.0) {
      throw std::invalid_argument("campaign: \"derate_years\" must be > 0");
    }
  }
  if (p.pareto_samples < 2 || p.pareto_rounds < 0 || p.pareto_flips < 1 ||
      p.crit_samples < 2 || p.crit_sigma <= 0.0) {
    throw std::invalid_argument("campaign: out-of-range \"params\" value");
  }
  if (p.clock_ghz <= 0.0 || p.pbti_ratio < 0.0) {
    throw std::invalid_argument("campaign: out-of-range multi param");
  }
  if (p.thermal_power < 0.0 || p.thermal_replication <= 0.0 ||
      p.thermal_runaway_k <= 0.0) {
    throw std::invalid_argument("campaign: out-of-range thermal param");
  }
  if (p.fail_dvth <= 0.0 || p.fail_max_years <= 0.0 || p.fail_points < 2 ||
      p.weibull_beta <= 0.0) {
    throw std::invalid_argument("campaign: out-of-range failure param");
  }
  if (p.fail_curve_years.empty()) {
    throw std::invalid_argument(
        "campaign: \"fail_curve_years\" must be non-empty");
  }
  for (double y : p.fail_curve_years) {
    if (y <= 0.0) {
      throw std::invalid_argument("campaign: \"fail_curve_years\" must be > 0");
    }
  }
  if (p.table_ppd < 1) {
    throw std::invalid_argument("campaign: \"table_ppd\" must be >= 1");
  }
}

}  // namespace

std::string Task::key(const CampaignParams& params) const {
  const analysis::Analysis& a =
      analysis::AnalysisRegistry::global().at(analysis);
  return netlist + "|" + condition.label() + "|" + analysis + "|" +
         a.fingerprint(params);
}

CampaignSpec spec_from_json(const common::json::Value& doc) {
  CampaignSpec spec;
  spec.name = doc.string_or("name", "campaign");

  for (const common::json::Value& n : doc.at("netlists").as_array()) {
    spec.netlists.push_back(n.as_string());
  }

  const common::json::Value* conditions = doc.find("conditions");
  if (conditions == nullptr) {
    spec.conditions.push_back(Condition{});
  } else {
    for (const common::json::Value& c : conditions->as_array()) {
      spec.conditions.push_back(condition_from_json(c));
    }
  }

  for (const common::json::Value& a : doc.at("analyses").as_array()) {
    // at() throws invalid_argument listing the registered names.
    spec.analyses.emplace_back(
        analysis::AnalysisRegistry::global().at(a.as_string()).name());
  }

  if (const common::json::Value* params = doc.find("params")) {
    params_from_json(*params, spec.params);
  }

  spec.n_threads = doc.int_or("n_threads", 0);
  if (spec.n_threads < 0) {
    throw std::invalid_argument("campaign: n_threads must be >= 0");
  }
  spec.shards = doc.int_or("shards", 16);
  if (spec.shards != 1 && spec.shards != 2 && spec.shards != 4 &&
      spec.shards != 8 && spec.shards != 16) {
    throw std::invalid_argument("campaign: shards must be 1, 2, 4, 8 or 16");
  }
  spec.cut_dffs = doc.bool_or("cut_dffs", false);

  if (spec.netlists.empty() || spec.conditions.empty() ||
      spec.analyses.empty()) {
    throw std::invalid_argument(
        "campaign: netlists, conditions and analyses must all be non-empty");
  }
  return spec;
}

CampaignSpec load_spec(const std::string& path) {
  return spec_from_json(common::json::load_file(path));
}

std::string fnv1a_hex(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::vector<Task> expand(const CampaignSpec& spec) {
  if (spec.netlists.empty() || spec.conditions.empty() ||
      spec.analyses.empty()) {
    throw std::invalid_argument("campaign: cannot expand an empty grid axis");
  }
  std::vector<Task> tasks;
  tasks.reserve(spec.netlists.size() * spec.conditions.size() *
                spec.analyses.size());
  for (const std::string& nl : spec.netlists) {
    for (const Condition& cond : spec.conditions) {
      for (const std::string& a : spec.analyses) {
        Task t;
        t.index = static_cast<int>(tasks.size());
        t.netlist = nl;
        t.condition = cond;
        t.analysis = a;
        t.hash = fnv1a_hex(t.key(spec.params));
        tasks.push_back(std::move(t));
      }
    }
  }
  return tasks;
}

}  // namespace nbtisim::campaign
