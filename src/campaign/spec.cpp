#include "campaign/spec.h"

#include <cstdio>
#include <stdexcept>

namespace nbtisim::campaign {
namespace {

/// %g keeps condition/params labels short and stable ("330", "0.05").
std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

Condition condition_from_json(const common::json::Value& doc) {
  Condition c;
  if (const common::json::Value* ras = doc.find("ras")) {
    const std::string& v = ras->as_string();
    const std::size_t colon = v.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("campaign: condition \"ras\" expects \"A:S\"");
    }
    c.ras_active = std::strtod(v.substr(0, colon).c_str(), nullptr);
    c.ras_standby = std::strtod(v.substr(colon + 1).c_str(), nullptr);
    if (c.ras_active <= 0.0 || c.ras_standby < 0.0) {
      throw std::invalid_argument("campaign: bad \"ras\" value " + v);
    }
  }
  c.t_active = doc.number_or("t_active", c.t_active);
  c.t_standby = doc.number_or("t_standby", c.t_standby);
  c.years = doc.number_or("years", c.years);
  if (c.t_active <= 0.0 || c.t_standby <= 0.0 || c.years <= 0.0) {
    throw std::invalid_argument("campaign: condition values must be positive");
  }
  return c;
}

}  // namespace

std::string_view to_string(Analysis a) {
  switch (a) {
    case Analysis::Aging: return "aging";
    case Analysis::Ivc: return "ivc";
    case Analysis::St: return "st";
    case Analysis::Lifetime: return "lifetime";
  }
  return "?";
}

Analysis analysis_from_string(std::string_view name) {
  if (name == "aging") return Analysis::Aging;
  if (name == "ivc") return Analysis::Ivc;
  if (name == "st") return Analysis::St;
  if (name == "lifetime") return Analysis::Lifetime;
  throw std::invalid_argument("campaign: unknown analysis \"" +
                              std::string(name) +
                              "\" (expected aging|ivc|st|lifetime)");
}

std::string Condition::label() const {
  return "ras" + fmt(ras_active) + ":" + fmt(ras_standby) + ",ta" +
         fmt(t_active) + ",ts" + fmt(t_standby) + ",y" + fmt(years);
}

std::string CampaignParams::fingerprint() const {
  return "sp" + std::to_string(sp_vectors) + ",seed" + std::to_string(seed) +
         ",mc" + std::to_string(samples) + ",margin" + fmt(spec_margin) +
         ",pop" + std::to_string(population) + ",r" +
         std::to_string(max_rounds) + ",sig" + fmt(st_sigma);
}

std::string Task::key(const CampaignParams& params) const {
  return netlist + "|" + condition.label() + "|" +
         std::string(to_string(analysis)) + "|" + params.fingerprint();
}

CampaignSpec spec_from_json(const common::json::Value& doc) {
  CampaignSpec spec;
  spec.name = doc.string_or("name", "campaign");

  for (const common::json::Value& n : doc.at("netlists").as_array()) {
    spec.netlists.push_back(n.as_string());
  }

  const common::json::Value* conditions = doc.find("conditions");
  if (conditions == nullptr) {
    spec.conditions.push_back(Condition{});
  } else {
    for (const common::json::Value& c : conditions->as_array()) {
      spec.conditions.push_back(condition_from_json(c));
    }
  }

  for (const common::json::Value& a : doc.at("analyses").as_array()) {
    spec.analyses.push_back(analysis_from_string(a.as_string()));
  }

  if (const common::json::Value* params = doc.find("params")) {
    CampaignParams& p = spec.params;
    p.sp_vectors = params->int_or("sp_vectors", p.sp_vectors);
    p.seed = static_cast<std::uint64_t>(
        params->number_or("seed", static_cast<double>(p.seed)));
    p.samples = params->int_or("samples", p.samples);
    p.spec_margin = params->number_or("spec_margin", p.spec_margin);
    p.population = params->int_or("population", p.population);
    p.max_rounds = params->int_or("max_rounds", p.max_rounds);
    p.st_sigma = params->number_or("st_sigma", p.st_sigma);
    if (p.sp_vectors < 64 || p.samples < 2 || p.spec_margin <= 0.0 ||
        p.population < 2 || p.max_rounds < 1 || p.st_sigma <= 0.0 ||
        p.st_sigma > 0.5) {
      throw std::invalid_argument("campaign: out-of-range \"params\" value");
    }
  }

  spec.n_threads = doc.int_or("n_threads", 0);
  if (spec.n_threads < 0) {
    throw std::invalid_argument("campaign: n_threads must be >= 0");
  }
  spec.cut_dffs = doc.bool_or("cut_dffs", false);

  if (spec.netlists.empty() || spec.conditions.empty() ||
      spec.analyses.empty()) {
    throw std::invalid_argument(
        "campaign: netlists, conditions and analyses must all be non-empty");
  }
  return spec;
}

CampaignSpec load_spec(const std::string& path) {
  return spec_from_json(common::json::load_file(path));
}

std::string fnv1a_hex(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

std::vector<Task> expand(const CampaignSpec& spec) {
  if (spec.netlists.empty() || spec.conditions.empty() ||
      spec.analyses.empty()) {
    throw std::invalid_argument("campaign: cannot expand an empty grid axis");
  }
  std::vector<Task> tasks;
  tasks.reserve(spec.netlists.size() * spec.conditions.size() *
                spec.analyses.size());
  for (const std::string& nl : spec.netlists) {
    for (const Condition& cond : spec.conditions) {
      for (const Analysis a : spec.analyses) {
        Task t;
        t.index = static_cast<int>(tasks.size());
        t.netlist = nl;
        t.condition = cond;
        t.analysis = a;
        t.hash = fnv1a_hex(t.key(spec.params));
        tasks.push_back(std::move(t));
      }
    }
  }
  return tasks;
}

}  // namespace nbtisim::campaign
