/// \file index.h
/// \brief Sidecar index over one JSONL result-store file.
///
/// Every store file `store.<h>.jsonl` may carry a sidecar
/// `store.<h>.index.jsonl` with one compact entry per row: the task hash,
/// the row's byte extent in the store file, the grid coordinates, and the
/// names of the row's scalar (number) metrics. The query layer
/// (src/query) filters on index entries and seeks straight to the matching
/// rows — non-matching rows are never parsed.
///
/// The sidecar is a cache, never a source of truth:
///
///   - **Built incrementally.** `ResultStore::append` emits entries for the
///     rows it just flushed, best-effort — a failed sidecar write never
///     fails the append.
///   - **Validated on load.** load_index() checks the sidecar against the
///     store file (entries in file order, extents inside the file, nothing
///     but whitespace between consecutive extents). Any mismatch — a
///     hand-edited store, a sidecar from a crashed writer — triggers a
///     transparent rebuild from the store file, which is then rewritten
///     best-effort.
///   - **Caught up on load.** Rows beyond the validated sidecar (appended by
///     an older binary, or a legacy store with no sidecar at all) are
///     scanned from the first unindexed byte and appended to the sidecar.
///
/// Entry schema (one compact JSON object per line; short keys keep the
/// sidecar a fraction of the store):
///   {"h":hash,"o":offset,"l":length,"n":netlist,"r":ras,
///    "ta":t_active,"ts":t_standby,"y":years,"a":analysis,"m":[names...]}
/// Coordinate keys are omitted when the row lacks them, so rows outside
/// the campaign schema still index (hash + extent only).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/json.h"

namespace nbtisim::campaign {

/// One store row as seen by the index: identity, byte extent, coordinates.
struct IndexEntry {
  std::string hash;
  std::uint64_t offset = 0;  ///< first byte of the row line in the store file
  std::uint64_t length = 0;  ///< line length excluding the trailing newline
  // Grid coordinates; empty string / NaN when the row lacks the member.
  std::string netlist;
  std::string ras;
  double t_active = std::numeric_limits<double>::quiet_NaN();
  double t_standby = std::numeric_limits<double>::quiet_NaN();
  double years = std::numeric_limits<double>::quiet_NaN();
  std::string analysis;
  /// Names of the scalar (number) metrics, row order. Structured payloads
  /// (arrays/objects) are not listed — predicates on them require a parse.
  std::vector<std::string> metrics;
};

/// The sidecar of \p store_path: "store.3.jsonl" -> "store.3.index.jsonl".
std::string index_path(const std::string& store_path);

/// Builds the entry for one row about to land at \p offset spanning
/// \p length bytes (excluding the newline). Tolerates rows without
/// coordinates or metrics.
IndexEntry entry_from_row(const common::json::Value& row, std::uint64_t offset,
                          std::uint64_t length);

/// Serializes one entry exactly as the sidecar stores it (compact, one
/// line, no trailing newline) — shared by the writer and the tests.
std::string dump_entry(const IndexEntry& e);

/// Appends \p entries to the sidecar of \p store_path. Best-effort: returns
/// false (and leaves any partial state to load-time validation) instead of
/// throwing when the sidecar cannot be written.
bool append_index_entries(const std::string& store_path,
                          std::span<const IndexEntry> entries);

/// The result of load_index(): the validated entries plus how they were
/// obtained (for tests and stats).
struct StoreIndex {
  std::vector<IndexEntry> entries;
  bool rebuilt = false;    ///< sidecar was missing/stale: rebuilt from store
  bool caught_up = false;  ///< valid sidecar extended over unindexed rows
};

/// Loads the index of \p store_path, validating the sidecar against the
/// store file and rebuilding or catching up as documented in the file
/// comment. A missing store file yields an empty index. A truncated final
/// store line (killed append) is left unindexed; corruption earlier in the
/// store file throws, matching ResultStore's contract.
/// \throws std::runtime_error on non-trailing store corruption
StoreIndex load_index(const std::string& store_path);

}  // namespace nbtisim::campaign
