#include "campaign/index.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace nbtisim::campaign {
namespace {

using common::json::Value;

bool is_ws_only(std::string_view bytes) {
  for (char c : bytes) {
    if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return false;
  }
  return true;
}

/// Parses one sidecar line back into an entry. Throws on schema mismatch —
/// the caller treats that as a stale sidecar, not an error.
IndexEntry parse_entry(std::string_view line) {
  const Value v = common::json::parse(line);
  IndexEntry e;
  e.hash = v.at("h").as_string();
  e.offset = static_cast<std::uint64_t>(v.at("o").as_number());
  e.length = static_cast<std::uint64_t>(v.at("l").as_number());
  e.netlist = v.string_or("n", "");
  e.ras = v.string_or("r", "");
  e.t_active = v.number_or("ta", std::numeric_limits<double>::quiet_NaN());
  e.t_standby = v.number_or("ts", std::numeric_limits<double>::quiet_NaN());
  e.years = v.number_or("y", std::numeric_limits<double>::quiet_NaN());
  e.analysis = v.string_or("a", "");
  if (const Value* m = v.find("m")) {
    for (const Value& name : m->as_array()) {
      e.metrics.push_back(name.as_string());
    }
  }
  return e;
}

/// Scans store-file rows in [from, end-of-file) and appends their entries.
/// Stops silently on a truncated final line (killed append); throws on
/// corruption that is not the final line.
void scan_rows(const std::string& store_path, std::ifstream& f,
               std::uint64_t from, std::vector<IndexEntry>& out) {
  f.clear();
  f.seekg(static_cast<std::streamoff>(from));
  std::string line;
  std::uint64_t offset = from;
  while (std::getline(f, line)) {
    const std::uint64_t len = line.size();
    if (!is_ws_only(line)) {
      try {
        const Value row = common::json::parse(line);
        if (!row.is_object()) throw std::runtime_error("row is not an object");
        out.push_back(entry_from_row(row, offset, len));
      } catch (const std::exception& e) {
        if (f.peek() == std::ifstream::traits_type::eof()) return;
        throw std::runtime_error(store_path + ": byte " +
                                 std::to_string(offset) + ": " + e.what());
      }
    }
    offset += len + 1;
  }
}

}  // namespace

std::string index_path(const std::string& store_path) {
  const std::size_t slash = store_path.find_last_of('/');
  const std::size_t dot = store_path.find_last_of('.');
  std::string out = store_path;
  if (dot != std::string::npos &&
      (slash == std::string::npos || dot > slash)) {
    out.insert(dot, ".index");  // store.3.jsonl -> store.3.index.jsonl
  } else {
    out += ".index";
  }
  return out;
}

IndexEntry entry_from_row(const Value& row, std::uint64_t offset,
                          std::uint64_t length) {
  IndexEntry e;
  e.hash = row.at("hash").as_string();
  e.offset = offset;
  e.length = length;
  e.netlist = row.string_or("netlist", "");
  e.ras = row.string_or("ras", "");
  e.t_active =
      row.number_or("t_active", std::numeric_limits<double>::quiet_NaN());
  e.t_standby =
      row.number_or("t_standby", std::numeric_limits<double>::quiet_NaN());
  e.years = row.number_or("years", std::numeric_limits<double>::quiet_NaN());
  e.analysis = row.string_or("analysis", "");
  if (const Value* metrics = row.find("metrics")) {
    for (const auto& [name, value] : metrics->as_object()) {
      if (value.is_number()) e.metrics.push_back(name);
    }
  }
  return e;
}

std::string dump_entry(const IndexEntry& e) {
  Value v;
  v.set("h", e.hash);
  v.set("o", static_cast<double>(e.offset));
  v.set("l", static_cast<double>(e.length));
  if (!e.netlist.empty()) v.set("n", e.netlist);
  if (!e.ras.empty()) v.set("r", e.ras);
  if (!std::isnan(e.t_active)) v.set("ta", e.t_active);
  if (!std::isnan(e.t_standby)) v.set("ts", e.t_standby);
  if (!std::isnan(e.years)) v.set("y", e.years);
  if (!e.analysis.empty()) v.set("a", e.analysis);
  if (!e.metrics.empty()) {
    common::json::Array names;
    names.reserve(e.metrics.size());
    for (const std::string& name : e.metrics) names.emplace_back(name);
    v.set("m", std::move(names));
  }
  return common::json::dump(v);
}

bool append_index_entries(const std::string& store_path,
                          std::span<const IndexEntry> entries) {
  if (entries.empty()) return true;
  std::string block;
  for (const IndexEntry& e : entries) {
    block += dump_entry(e);
    block += '\n';
  }
  std::ofstream f(index_path(store_path), std::ios::app);
  if (!f) return false;
  f << block;
  f.flush();
  return static_cast<bool>(f);
}

StoreIndex load_index(const std::string& store_path) {
  namespace fs = std::filesystem;
  StoreIndex out;

  std::error_code ec;
  const std::uintmax_t raw_size = fs::file_size(store_path, ec);
  const std::uint64_t store_size =
      ec ? 0 : static_cast<std::uint64_t>(raw_size);
  if (ec) return out;  // no store file: empty index

  std::ifstream store(store_path, std::ios::binary);
  if (!store) return out;

  // Read the sidecar: a truncated final line is a killed writer (dropped);
  // anything else unparsable means the whole sidecar is stale.
  bool valid = true;
  {
    std::ifstream side(index_path(store_path), std::ios::binary);
    if (side) {
      std::string line;
      while (std::getline(side, line)) {
        if (is_ws_only(line)) continue;
        try {
          out.entries.push_back(parse_entry(line));
        } catch (const std::exception&) {
          if (side.peek() == std::ifstream::traits_type::eof()) break;
          valid = false;
          break;
        }
      }
    }
  }

  // Validate entries against the store file: strictly forward extents that
  // stay inside the file, with nothing but whitespace between them. Reading
  // the (normally empty) gaps is the cheap proof that no unindexed row
  // hides between two indexed ones.
  std::uint64_t covered = 0;  // bytes of the store accounted for so far
  for (const IndexEntry& e : out.entries) {
    if (!valid) break;
    const std::uint64_t end = e.offset + e.length;
    if (e.offset < covered || end > store_size || e.length == 0) {
      valid = false;
      break;
    }
    if (e.offset > covered) {
      std::string gap(e.offset - covered, '\0');
      store.seekg(static_cast<std::streamoff>(covered));
      store.read(gap.data(), static_cast<std::streamsize>(gap.size()));
      if (!store || !is_ws_only(gap)) {
        valid = false;
        break;
      }
    }
    covered = end + 1;  // +1 for the row's newline
  }

  if (!valid) {
    // Stale sidecar: rebuild from the store file and rewrite (best-effort —
    // a read-only directory still gets a correct in-memory index).
    out.entries.clear();
    out.rebuilt = true;
    scan_rows(store_path, store, 0, out.entries);
    std::ofstream side(index_path(store_path), std::ios::trunc);
    if (side) {
      for (const IndexEntry& e : out.entries) side << dump_entry(e) << '\n';
    }
    return out;
  }

  // Valid sidecar that ends before the store does: catch up over the rows
  // appended without index entries.
  if (covered < store_size) {
    std::vector<IndexEntry> fresh;
    scan_rows(store_path, store, covered, fresh);
    if (!fresh.empty()) {
      out.caught_up = true;
      append_index_entries(store_path, fresh);
      for (IndexEntry& e : fresh) out.entries.push_back(std::move(e));
    }
  }
  return out;
}

}  // namespace nbtisim::campaign
