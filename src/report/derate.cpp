#include "report/derate.h"

#include <stdexcept>

#include "common/pool.h"
#include "tech/units.h"

namespace nbtisim::report {

Table DerateTable::to_table(int precision) const {
  Table t;
  t.headers.push_back("years");
  for (const std::string& name : policy_names) t.headers.push_back(name);
  for (std::size_t y = 0; y < years.size(); ++y) {
    std::vector<double> row;
    for (std::size_t p = 0; p < factors.size(); ++p) {
      row.push_back(factors[p][y]);
    }
    char label[32];
    std::snprintf(label, sizeof label, "%g", years[y]);
    t.add_row(label, row, precision);
  }
  return t;
}

DerateTable aging_derate_table(const aging::AgingAnalyzer& analyzer,
                               std::vector<double> years, int n_threads) {
  if (years.empty()) {
    throw std::invalid_argument("aging_derate_table: no lifetimes");
  }
  for (double y : years) {
    if (y <= 0.0) {
      throw std::invalid_argument("aging_derate_table: non-positive lifetime");
    }
  }

  const netlist::Netlist& nl = analyzer.sta().netlist();
  DerateTable table;
  table.years = std::move(years);
  table.policy_names = {"worst_case", "inputs_all_zero", "best_case"};

  const std::vector<aging::StandbyPolicy> policies{
      aging::StandbyPolicy::all_stressed(),
      aging::StandbyPolicy::from_vector(
          std::vector<bool>(nl.num_inputs(), false)),
      aging::StandbyPolicy::all_relaxed(),
  };
  // One degradation_series-style pass per policy: the first year builds the
  // policy's stress descriptors, the rest reuse them.  Each pass fills only
  // its own column, so fanning the policies out over parallel_for keeps the
  // table bit-identical for every thread count.
  const double fresh = analyzer.fresh_critical_delay();
  table.factors.assign(policies.size(), {});
  common::parallel_for(
      static_cast<int>(policies.size()), n_threads, [&](int p) {
        std::vector<double>& col = table.factors[p];
        col.reserve(table.years.size());
        for (double y : table.years) {
          const double aged =
              analyzer.aged_critical_delay(policies[p], y * kSecondsPerYear);
          col.push_back(aged / fresh);
        }
      });
  return table;
}

}  // namespace nbtisim::report
