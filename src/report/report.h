/// \file report.h
/// \brief Plain-text report writers: CSV and Markdown tables/series.
///
/// Downstream consumers (plotting scripts, regression dashboards) want the
/// analysis results in machine-readable form; every CLI subcommand can emit
/// its table through these writers.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace nbtisim::report {

/// A rectangular table: column headers + string cells.
struct Table {
  std::vector<std::string> headers;
  std::vector<std::vector<std::string>> rows;

  /// Appends a row.
  /// \throws std::invalid_argument when the width does not match headers
  void add_row(std::vector<std::string> row);

  /// Convenience: formats a row of doubles with \p precision digits.
  void add_row(std::string label, std::span<const double> values,
               int precision = 4);
};

/// Serializes a table as RFC-4180-ish CSV (quotes cells containing commas,
/// quotes or newlines).
std::string to_csv(const Table& table);

/// Serializes a table as a GitHub-flavoured Markdown table.
std::string to_markdown(const Table& table);

/// Serializes an (x, y) series as two-column CSV.
std::string series_csv(std::span<const std::pair<double, double>> series,
                       std::string_view x_label, std::string_view y_label,
                       int precision = 6);

/// Writes \p content to \p path.
/// \throws std::runtime_error when the file cannot be written
void write_file(const std::string& path, std::string_view content);

}  // namespace nbtisim::report
