#include "report/report.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace nbtisim::report {
namespace {

bool needs_quoting(std::string_view cell) {
  return cell.find_first_of(",\"\n") != std::string_view::npos;
}

std::string csv_escape(const std::string& cell) {
  if (!needs_quoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss.precision(precision);
  ss << v;
  return ss.str();
}

}  // namespace

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != headers.size()) {
    throw std::invalid_argument("Table::add_row: width mismatch");
  }
  rows.push_back(std::move(row));
}

void Table::add_row(std::string label, std::span<const double> values,
                    int precision) {
  std::vector<std::string> row;
  row.push_back(std::move(label));
  for (double v : values) row.push_back(format_double(v, precision));
  add_row(std::move(row));
}

std::string to_csv(const Table& table) {
  std::ostringstream out;
  for (std::size_t i = 0; i < table.headers.size(); ++i) {
    if (i) out << ',';
    out << csv_escape(table.headers[i]);
  }
  out << '\n';
  for (const std::vector<std::string>& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

std::string to_markdown(const Table& table) {
  std::ostringstream out;
  out << '|';
  for (const std::string& h : table.headers) out << ' ' << h << " |";
  out << "\n|";
  for (std::size_t i = 0; i < table.headers.size(); ++i) out << "---|";
  out << '\n';
  for (const std::vector<std::string>& row : table.rows) {
    out << '|';
    for (const std::string& c : row) out << ' ' << c << " |";
    out << '\n';
  }
  return out.str();
}

std::string series_csv(std::span<const std::pair<double, double>> series,
                       std::string_view x_label, std::string_view y_label,
                       int precision) {
  std::ostringstream out;
  out << x_label << ',' << y_label << '\n';
  out.precision(precision);
  for (const auto& [x, y] : series) out << x << ',' << y << '\n';
  return out.str();
}

void write_file(const std::string& path, std::string_view content) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("report: cannot open " + path);
  f << content;
  if (!f) throw std::runtime_error("report: write failed for " + path);
}

}  // namespace nbtisim::report
