/// \file derate.h
/// \brief Aging derate tables: the signoff artifact downstream flows consume.
///
/// Commercial STA applies aging as per-corner *derate factors* (a liberty
/// `timing_derate`-style multiplier on every gate delay). This generator
/// turns the analyzer's physics into that artifact: for a schedule and a
/// standby policy, the circuit-level delay-degradation factor at a set of
/// lifetimes, ready to export as CSV/Markdown.
#pragma once

#include <vector>

#include "aging/aging.h"
#include "report/report.h"

namespace nbtisim::report {

/// One derate row.
struct DeratePoint {
  double years = 0.0;
  double factor = 1.0;  ///< aged_delay / fresh_delay at that lifetime
};

/// A labelled derate table (one column per standby policy).
struct DerateTable {
  std::vector<double> years;
  std::vector<std::string> policy_names;
  std::vector<std::vector<double>> factors;  ///< [policy][year index]

  /// Renders as a report::Table (years as rows, policies as columns).
  Table to_table(int precision = 5) const;
};

/// Computes circuit-level derate factors for the given lifetimes under the
/// worst-case, all-zero-inputs and best-case standby policies.
///
/// Horizon-batched: each policy runs one degradation_series-style pass —
/// the stress descriptors are built once and every year reuses them via
/// AgingAnalyzer::aged_critical_delay — instead of a fresh analyze() per
/// (policy, year) cell, and the per-policy passes fan out over
/// common::parallel_for.  Each pass writes only its own column and the
/// factors are pure per-cell values, so the table is bit-identical for
/// every \p n_threads (0 = hardware concurrency) and identical to the
/// naive per-cell evaluation (tests/test_differential.cpp).
/// \throws std::invalid_argument for an empty or non-positive lifetime list
DerateTable aging_derate_table(const aging::AgingAnalyzer& analyzer,
                               std::vector<double> years, int n_threads = 0);

}  // namespace nbtisim::report
