#include "sim/simulator.h"

#include <random>
#include <stdexcept>

namespace nbtisim::sim {

bool eval_gate(tech::GateFn fn, const std::vector<bool>& fanins) {
  using tech::GateFn;
  if (fanins.empty()) throw std::invalid_argument("eval_gate: no fanins");
  switch (fn) {
    case GateFn::Not:
      return !fanins[0];
    case GateFn::Buf:
      return fanins[0];
    case GateFn::And:
    case GateFn::Nand: {
      bool all = true;
      for (bool v : fanins) all = all && v;
      return fn == GateFn::And ? all : !all;
    }
    case GateFn::Or:
    case GateFn::Nor: {
      bool any = false;
      for (bool v : fanins) any = any || v;
      return fn == GateFn::Or ? any : !any;
    }
    case GateFn::Xor:
    case GateFn::Xnor: {
      bool acc = false;
      for (bool v : fanins) acc = acc != v;
      return fn == GateFn::Xor ? acc : !acc;
    }
  }
  throw std::logic_error("eval_gate: unknown function");
}

std::vector<bool> Simulator::evaluate(const std::vector<bool>& pi_values) const {
  return evaluate_forced(pi_values, {});
}

std::vector<bool> Simulator::evaluate_forced(
    const std::vector<bool>& pi_values,
    std::span<const std::pair<netlist::NodeId, bool>> forces) const {
  const netlist::Netlist& nl = *nl_;
  if (static_cast<int>(pi_values.size()) != nl.num_inputs()) {
    throw std::invalid_argument("Simulator::evaluate: PI count mismatch");
  }
  // Forced values are applied when the net's value is determined (input
  // assignment or gate evaluation), so they propagate downstream.
  std::vector<signed char> forced(nl.num_nodes(), -1);
  for (const auto& [node, v] : forces) {
    if (node < 0 || node >= nl.num_nodes()) {
      throw std::invalid_argument("Simulator::evaluate_forced: bad net id");
    }
    forced[node] = v ? 1 : 0;
  }

  std::vector<bool> value(nl.num_nodes(), false);
  for (int i = 0; i < nl.num_inputs(); ++i) {
    const netlist::NodeId n = nl.inputs()[i];
    value[n] = forced[n] < 0 ? pi_values[i] : forced[n] != 0;
  }
  std::vector<bool> ins;
  for (const netlist::Gate& g : nl.gates()) {
    if (forced[g.output] >= 0) {
      value[g.output] = forced[g.output] != 0;
      continue;
    }
    ins.clear();
    for (netlist::NodeId in : g.fanins) ins.push_back(value[in]);
    value[g.output] = eval_gate(g.fn, ins);
  }
  return value;
}

std::vector<std::uint64_t> Simulator::evaluate_words(
    std::span<const std::uint64_t> pi_words) const {
  using tech::GateFn;
  const netlist::Netlist& nl = *nl_;
  if (static_cast<int>(pi_words.size()) != nl.num_inputs()) {
    throw std::invalid_argument("Simulator::evaluate_words: PI count mismatch");
  }
  std::vector<std::uint64_t> value(nl.num_nodes(), 0);
  for (int i = 0; i < nl.num_inputs(); ++i) value[nl.inputs()[i]] = pi_words[i];
  for (const netlist::Gate& g : nl.gates()) {
    std::uint64_t acc;
    switch (g.fn) {
      case GateFn::Not:
        acc = ~value[g.fanins[0]];
        break;
      case GateFn::Buf:
        acc = value[g.fanins[0]];
        break;
      case GateFn::And:
      case GateFn::Nand:
        acc = ~0ull;
        for (netlist::NodeId in : g.fanins) acc &= value[in];
        if (g.fn == GateFn::Nand) acc = ~acc;
        break;
      case GateFn::Or:
      case GateFn::Nor:
        acc = 0;
        for (netlist::NodeId in : g.fanins) acc |= value[in];
        if (g.fn == GateFn::Nor) acc = ~acc;
        break;
      case GateFn::Xor:
      case GateFn::Xnor:
        acc = 0;
        for (netlist::NodeId in : g.fanins) acc ^= value[in];
        if (g.fn == GateFn::Xnor) acc = ~acc;
        break;
      default:
        throw std::logic_error("evaluate_words: unknown function");
    }
    value[g.output] = acc;
  }
  return value;
}

std::vector<bool> Simulator::outputs(const std::vector<bool>& pi_values) const {
  const std::vector<bool> value = evaluate(pi_values);
  std::vector<bool> out;
  out.reserve(nl_->num_outputs());
  for (netlist::NodeId po : nl_->outputs()) out.push_back(value[po]);
  return out;
}

SignalStats estimate_signal_stats(const netlist::Netlist& nl,
                                  std::span<const double> input_sp,
                                  int n_vectors, std::uint64_t seed) {
  if (static_cast<int>(input_sp.size()) != nl.num_inputs()) {
    throw std::invalid_argument("estimate_signal_stats: SP count mismatch");
  }
  if (n_vectors < 1) {
    throw std::invalid_argument("estimate_signal_stats: n_vectors < 1");
  }
  for (double sp : input_sp) {
    if (sp < 0.0 || sp > 1.0) {
      throw std::invalid_argument("estimate_signal_stats: SP outside [0,1]");
    }
  }

  Simulator sim(nl);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const int n_words = (n_vectors + 63) / 64;

  std::vector<std::uint64_t> ones(nl.num_nodes(), 0);
  std::vector<double> one_count(nl.num_nodes(), 0.0);
  std::vector<double> toggle_count(nl.num_nodes(), 0.0);
  std::vector<std::uint64_t> pi_words(nl.num_inputs());
  std::vector<std::uint64_t> prev;

  for (int w = 0; w < n_words; ++w) {
    for (int i = 0; i < nl.num_inputs(); ++i) {
      std::uint64_t word = 0;
      for (int b = 0; b < 64; ++b) {
        word |= (uni(rng) < input_sp[i]) ? (1ull << b) : 0ull;
      }
      pi_words[i] = word;
    }
    const std::vector<std::uint64_t> value = sim.evaluate_words(pi_words);
    for (int n = 0; n < nl.num_nodes(); ++n) {
      one_count[n] += static_cast<double>(std::popcount(value[n]));
      // Toggles within the word (bit b vs b+1) plus the seam to the
      // previous word's last bit.
      std::uint64_t t = value[n] ^ (value[n] >> 1);
      toggle_count[n] += static_cast<double>(std::popcount(t & ~(1ull << 63)));
      if (w > 0) {
        const bool last_prev = (prev[n] >> 63) & 1ull;
        const bool first_cur = value[n] & 1ull;
        if (last_prev != first_cur) toggle_count[n] += 1.0;
      }
    }
    prev = value;
  }
  (void)ones;

  const double total = static_cast<double>(n_words) * 64.0;
  SignalStats stats;
  stats.n_vectors = n_words * 64;
  stats.probability.resize(nl.num_nodes());
  stats.activity.resize(nl.num_nodes());
  for (int n = 0; n < nl.num_nodes(); ++n) {
    stats.probability[n] = one_count[n] / total;
    stats.activity[n] = toggle_count[n] / (total - 1.0);
  }
  return stats;
}

}  // namespace nbtisim::sim
