#include "sim/simulator.h"

#include <bit>
#include <random>
#include <stdexcept>

#include "common/pool.h"
#include "common/rng.h"

namespace nbtisim::sim {

bool eval_gate(tech::GateFn fn, const std::vector<bool>& fanins) {
  using tech::GateFn;
  if (fanins.empty()) throw std::invalid_argument("eval_gate: no fanins");
  switch (fn) {
    case GateFn::Not:
      return !fanins[0];
    case GateFn::Buf:
      return fanins[0];
    case GateFn::And:
    case GateFn::Nand: {
      bool all = true;
      for (bool v : fanins) all = all && v;
      return fn == GateFn::And ? all : !all;
    }
    case GateFn::Or:
    case GateFn::Nor: {
      bool any = false;
      for (bool v : fanins) any = any || v;
      return fn == GateFn::Or ? any : !any;
    }
    case GateFn::Xor:
    case GateFn::Xnor: {
      bool acc = false;
      for (bool v : fanins) acc = acc != v;
      return fn == GateFn::Xor ? acc : !acc;
    }
  }
  throw std::logic_error("eval_gate: unknown function");
}

std::vector<bool> Simulator::evaluate(const std::vector<bool>& pi_values) const {
  return evaluate_forced(pi_values, {});
}

std::vector<bool> Simulator::evaluate_forced(
    const std::vector<bool>& pi_values,
    std::span<const std::pair<netlist::NodeId, bool>> forces) const {
  const netlist::Netlist& nl = *nl_;
  if (static_cast<int>(pi_values.size()) != nl.num_inputs()) {
    throw std::invalid_argument("Simulator::evaluate: PI count mismatch");
  }
  // Forced values are applied when the net's value is determined (input
  // assignment or gate evaluation), so they propagate downstream.
  std::vector<signed char> forced(nl.num_nodes(), -1);
  for (const auto& [node, v] : forces) {
    if (node < 0 || node >= nl.num_nodes()) {
      throw std::invalid_argument("Simulator::evaluate_forced: bad net id");
    }
    forced[node] = v ? 1 : 0;
  }

  std::vector<bool> value(nl.num_nodes(), false);
  for (int i = 0; i < nl.num_inputs(); ++i) {
    const netlist::NodeId n = nl.inputs()[i];
    value[n] = forced[n] < 0 ? pi_values[i] : forced[n] != 0;
  }
  std::vector<bool> ins;
  for (const netlist::Gate& g : nl.gates()) {
    if (forced[g.output] >= 0) {
      value[g.output] = forced[g.output] != 0;
      continue;
    }
    ins.clear();
    for (netlist::NodeId in : g.fanins) ins.push_back(value[in]);
    value[g.output] = eval_gate(g.fn, ins);
  }
  return value;
}

std::vector<std::uint64_t> Simulator::evaluate_words(
    std::span<const std::uint64_t> pi_words) const {
  using tech::GateFn;
  const netlist::Netlist& nl = *nl_;
  if (static_cast<int>(pi_words.size()) != nl.num_inputs()) {
    throw std::invalid_argument("Simulator::evaluate_words: PI count mismatch");
  }
  std::vector<std::uint64_t> value(nl.num_nodes(), 0);
  for (int i = 0; i < nl.num_inputs(); ++i) value[nl.inputs()[i]] = pi_words[i];
  for (const netlist::Gate& g : nl.gates()) {
    std::uint64_t acc;
    switch (g.fn) {
      case GateFn::Not:
        acc = ~value[g.fanins[0]];
        break;
      case GateFn::Buf:
        acc = value[g.fanins[0]];
        break;
      case GateFn::And:
      case GateFn::Nand:
        acc = ~0ull;
        for (netlist::NodeId in : g.fanins) acc &= value[in];
        if (g.fn == GateFn::Nand) acc = ~acc;
        break;
      case GateFn::Or:
      case GateFn::Nor:
        acc = 0;
        for (netlist::NodeId in : g.fanins) acc |= value[in];
        if (g.fn == GateFn::Nor) acc = ~acc;
        break;
      case GateFn::Xor:
      case GateFn::Xnor:
        acc = 0;
        for (netlist::NodeId in : g.fanins) acc ^= value[in];
        if (g.fn == GateFn::Xnor) acc = ~acc;
        break;
      default:
        throw std::logic_error("evaluate_words: unknown function");
    }
    value[g.output] = acc;
  }
  return value;
}

std::vector<bool> Simulator::outputs(const std::vector<bool>& pi_values) const {
  const std::vector<bool> value = evaluate(pi_values);
  std::vector<bool> out;
  out.reserve(nl_->num_outputs());
  for (netlist::NodeId po : nl_->outputs()) out.push_back(value[po]);
  return out;
}

namespace {

// Words per RNG block. Fixed (not derived from the thread count) so the
// block decomposition — and with it each block's RNG stream — is the same
// for every n_threads, which is what makes parallel runs bit-identical to
// serial ones.
constexpr int kBlockWords = 4;  // 256 vectors per block

// Per-block accumulators plus the boundary bits needed to stitch toggle
// counts across block seams during the ordered reduction.
struct StatsBlock {
  std::vector<std::uint32_t> one_count;
  std::vector<std::uint32_t> toggle_count;
  std::vector<std::uint8_t> first_bit;  // bit 0 of the block's first word
  std::vector<std::uint8_t> last_bit;   // bit 63 of the block's last word
};

}  // namespace

SignalStats estimate_signal_stats(const netlist::Netlist& nl,
                                  std::span<const double> input_sp,
                                  int n_vectors, std::uint64_t seed,
                                  int n_threads) {
  if (static_cast<int>(input_sp.size()) != nl.num_inputs()) {
    throw std::invalid_argument("estimate_signal_stats: SP count mismatch");
  }
  if (n_vectors < 1) {
    throw std::invalid_argument("estimate_signal_stats: n_vectors < 1");
  }
  for (double sp : input_sp) {
    if (sp < 0.0 || sp > 1.0) {
      throw std::invalid_argument("estimate_signal_stats: SP outside [0,1]");
    }
  }

  const int n_nodes = nl.num_nodes();
  const int n_words = (n_vectors + 63) / 64;
  const int n_blocks = (n_words + kBlockWords - 1) / kBlockWords;
  // Valid bits of the final (possibly partial) word.
  const int tail_bits = n_vectors - 64 * (n_words - 1);
  const std::uint64_t tail_mask =
      tail_bits == 64 ? ~0ull : (1ull << tail_bits) - 1ull;

  std::vector<StatsBlock> blocks(n_blocks);
  common::parallel_for(n_blocks, n_threads, [&](int blk) {
    const Simulator sim(nl);
    std::mt19937_64 rng(common::stream_seed(seed, blk));
    std::uniform_real_distribution<double> uni(0.0, 1.0);

    StatsBlock& out = blocks[blk];
    out.one_count.assign(n_nodes, 0);
    out.toggle_count.assign(n_nodes, 0);
    out.first_bit.assign(n_nodes, 0);
    out.last_bit.assign(n_nodes, 0);

    std::vector<std::uint64_t> pi_words(nl.num_inputs());
    std::vector<std::uint64_t> prev;
    const int w_begin = blk * kBlockWords;
    const int w_end = std::min(n_words, w_begin + kBlockWords);
    for (int w = w_begin; w < w_end; ++w) {
      for (int i = 0; i < nl.num_inputs(); ++i) {
        std::uint64_t word = 0;
        for (int b = 0; b < 64; ++b) {
          word |= (uni(rng) < input_sp[i]) ? (1ull << b) : 0ull;
        }
        pi_words[i] = word;
      }
      const std::vector<std::uint64_t> value = sim.evaluate_words(pi_words);
      // Only n_vectors patterns were requested; the surplus bits of the
      // final word must not leak into the counts.
      const bool tail = w == n_words - 1;
      const std::uint64_t valid = tail ? tail_mask : ~0ull;
      const int bits = tail ? tail_bits : 64;
      // Transitions bit b -> b+1 exist for b in [0, bits - 1).
      const std::uint64_t intra =
          bits < 2 ? 0ull : (bits == 64 ? ~(1ull << 63) : (valid >> 1));
      if (w == w_begin) {
        for (int n = 0; n < n_nodes; ++n) out.first_bit[n] = value[n] & 1ull;
      }
      for (int n = 0; n < n_nodes; ++n) {
        const std::uint64_t v = value[n];
        out.one_count[n] += std::popcount(v & valid);
        const std::uint64_t t = v ^ (v >> 1);
        out.toggle_count[n] += std::popcount(t & intra);
        if (w > w_begin) {
          // Seam to the previous word inside this block.
          out.toggle_count[n] += ((prev[n] >> 63) ^ v) & 1ull;
        }
      }
      prev = value;
    }
    for (int n = 0; n < n_nodes; ++n) out.last_bit[n] = (prev[n] >> 63) & 1ull;
  });

  // Ordered reduction: integer counts summed in block order, plus the seam
  // transition between consecutive blocks.
  std::vector<std::uint64_t> one_total(n_nodes, 0);
  std::vector<std::uint64_t> toggle_total(n_nodes, 0);
  for (int blk = 0; blk < n_blocks; ++blk) {
    const StatsBlock& b = blocks[blk];
    for (int n = 0; n < n_nodes; ++n) {
      one_total[n] += b.one_count[n];
      toggle_total[n] += b.toggle_count[n];
      if (blk > 0) {
        toggle_total[n] += blocks[blk - 1].last_bit[n] != b.first_bit[n];
      }
    }
  }

  const double total = static_cast<double>(n_vectors);
  SignalStats stats;
  stats.n_vectors = n_vectors;
  stats.probability.resize(n_nodes);
  stats.activity.resize(n_nodes);
  for (int n = 0; n < n_nodes; ++n) {
    stats.probability[n] = static_cast<double>(one_total[n]) / total;
    stats.activity[n] =
        n_vectors < 2 ? 0.0
                      : static_cast<double>(toggle_total[n]) / (total - 1.0);
  }
  return stats;
}

}  // namespace nbtisim::sim
