/// \file simulator.h
/// \brief Levelized 2-valued logic simulation, bit-parallel across 64
///        patterns per word.
///
/// Two roles in the paper's Fig. 6 flow:
///   - *standby*: "logic simulator is used to generate the voltage level of
///     each internal node" under a candidate minimum-leakage vector;
///   - *active*: Monte-Carlo estimation of per-node signal probabilities
///     ("derived statistically by simulating a large number of input
///     vectors", Section 3.3) and switching activities.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace nbtisim::sim {

/// Evaluates one gate function over scalar boolean fanins.
bool eval_gate(tech::GateFn fn, const std::vector<bool>& fanins);

/// Levelized simulator bound to one netlist.
class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& nl) : nl_(&nl) {}

  const netlist::Netlist& netlist() const { return *nl_; }

  /// Evaluates every net for one primary-input assignment (by PI order).
  /// \throws std::invalid_argument if pi_values.size() != num_inputs
  std::vector<bool> evaluate(const std::vector<bool>& pi_values) const;

  /// As evaluate(), but with selected nets *forced* to fixed values during
  /// propagation (models control-point insertion: a forced net overrides
  /// its driver and the forced value propagates downstream).
  /// \throws std::invalid_argument on bad net ids
  std::vector<bool> evaluate_forced(
      const std::vector<bool>& pi_values,
      std::span<const std::pair<netlist::NodeId, bool>> forces) const;

  /// Bit-parallel evaluation: each word carries 64 independent patterns.
  /// \returns one word per net
  std::vector<std::uint64_t> evaluate_words(
      std::span<const std::uint64_t> pi_words) const;

  /// Values of the primary outputs only, in PO order.
  std::vector<bool> outputs(const std::vector<bool>& pi_values) const;

 private:
  const netlist::Netlist* nl_;
};

/// Per-net Monte-Carlo signal statistics over random active-mode vectors.
struct SignalStats {
  std::vector<double> probability;  ///< P(net = 1), indexed by NodeId
  std::vector<double> activity;     ///< P(net toggles between consecutive vectors)
  int n_vectors = 0;                ///< sample count actually simulated
};

/// Estimates signal probabilities / activities with \p n_vectors random
/// patterns (rounded up to a multiple of 64), where PI i is 1 with
/// probability input_sp[i] (pass 0.5 everywhere for the paper's setup).
/// Deterministic for a fixed \p seed.
/// \throws std::invalid_argument on size mismatch or n_vectors < 1
SignalStats estimate_signal_stats(const netlist::Netlist& nl,
                                  std::span<const double> input_sp,
                                  int n_vectors, std::uint64_t seed);

}  // namespace nbtisim::sim
