/// \file simulator.h
/// \brief Levelized 2-valued logic simulation, bit-parallel across 64
///        patterns per word.
///
/// Two roles in the paper's Fig. 6 flow:
///   - *standby*: "logic simulator is used to generate the voltage level of
///     each internal node" under a candidate minimum-leakage vector;
///   - *active*: Monte-Carlo estimation of per-node signal probabilities
///     ("derived statistically by simulating a large number of input
///     vectors", Section 3.3) and switching activities.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"

namespace nbtisim::sim {

/// Evaluates one gate function over scalar boolean fanins.
bool eval_gate(tech::GateFn fn, const std::vector<bool>& fanins);

/// Levelized simulator bound to one netlist.
class Simulator {
 public:
  explicit Simulator(const netlist::Netlist& nl) : nl_(&nl) {}

  const netlist::Netlist& netlist() const { return *nl_; }

  /// Evaluates every net for one primary-input assignment (by PI order).
  /// \throws std::invalid_argument if pi_values.size() != num_inputs
  std::vector<bool> evaluate(const std::vector<bool>& pi_values) const;

  /// As evaluate(), but with selected nets *forced* to fixed values during
  /// propagation (models control-point insertion: a forced net overrides
  /// its driver and the forced value propagates downstream).
  /// \throws std::invalid_argument on bad net ids
  std::vector<bool> evaluate_forced(
      const std::vector<bool>& pi_values,
      std::span<const std::pair<netlist::NodeId, bool>> forces) const;

  /// Bit-parallel evaluation: each word carries 64 independent patterns.
  /// \returns one word per net
  std::vector<std::uint64_t> evaluate_words(
      std::span<const std::uint64_t> pi_words) const;

  /// Values of the primary outputs only, in PO order.
  std::vector<bool> outputs(const std::vector<bool>& pi_values) const;

 private:
  const netlist::Netlist* nl_;
};

/// Per-net Monte-Carlo signal statistics over random active-mode vectors.
struct SignalStats {
  std::vector<double> probability;  ///< P(net = 1), indexed by NodeId
  std::vector<double> activity;     ///< P(net toggles between consecutive vectors)
  int n_vectors = 0;                ///< honored sample count (== requested)
};

/// Estimates signal probabilities / activities with exactly \p n_vectors
/// random patterns, where PI i is 1 with probability input_sp[i] (pass 0.5
/// everywhere for the paper's setup).  Internally bit-parallel in words of
/// 64 patterns; the unused bits of the final partial word are masked out,
/// so probabilities are exact fractions over \p n_vectors and activities
/// over the \p n_vectors - 1 consecutive-vector transitions.
///
/// The word stream is generated in fixed-size blocks, each from its own
/// counter-seeded RNG stream, and block results are reduced in block order —
/// so the result is deterministic for a fixed \p seed and *bit-identical
/// for every \p n_threads* (0 = hardware concurrency).
/// \throws std::invalid_argument on size mismatch or n_vectors < 1
SignalStats estimate_signal_stats(const netlist::Netlist& nl,
                                  std::span<const double> input_sp,
                                  int n_vectors, std::uint64_t seed,
                                  int n_threads = 1);

}  // namespace nbtisim::sim
