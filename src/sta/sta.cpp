#include "sta/sta.h"

#include <algorithm>
#include <stdexcept>

namespace nbtisim::sta {

StaEngine::StaEngine(const netlist::Netlist& nl, const tech::Library& lib)
    : nl_(&nl), lib_(&lib) {
  cells_.reserve(nl.num_gates());
  for (const netlist::Gate& g : nl.gates()) {
    cells_.push_back(lib.id_for(g.fn, static_cast<int>(g.fanins.size())));
  }

  const double wire_cap = lib.params().wire_cap_per_fanout;
  // Primary outputs see a nominal downstream load of one buffered pin.
  const double po_load = lib.input_cap(lib.find("BUF"), 0) + wire_cap;

  loads_.assign(nl.num_gates(), 0.0);
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    const netlist::NodeId out = nl.gate(gi).output;
    double load = 0.0;
    for (int sink : nl.fanout_gates(out)) {
      const netlist::Gate& sg = nl.gate(sink);
      for (std::size_t pin = 0; pin < sg.fanins.size(); ++pin) {
        if (sg.fanins[pin] == out) {
          load += lib.input_cap(cells_[sink], static_cast<int>(pin)) + wire_cap;
        }
      }
    }
    if (std::find(nl.outputs().begin(), nl.outputs().end(), out) !=
        nl.outputs().end()) {
      load += po_load;
    }
    loads_[gi] = load;
  }
}

std::vector<double> StaEngine::gate_delays(
    double temp_k, std::span<const double> pmos_dvth,
    std::span<const double> vth_offsets) const {
  if (!pmos_dvth.empty() &&
      static_cast<int>(pmos_dvth.size()) != nl_->num_gates()) {
    throw std::invalid_argument("StaEngine::gate_delays: dvth size mismatch");
  }
  if (!vth_offsets.empty() &&
      static_cast<int>(vth_offsets.size()) != nl_->num_gates()) {
    throw std::invalid_argument(
        "StaEngine::gate_delays: vth offset size mismatch");
  }
  std::vector<double> delays(nl_->num_gates());
  for (int gi = 0; gi < nl_->num_gates(); ++gi) {
    const double dvth = pmos_dvth.empty() ? 0.0 : pmos_dvth[gi];
    const double offset = vth_offsets.empty() ? 0.0 : vth_offsets[gi];
    delays[gi] =
        lib_->cell_delay(cells_[gi], loads_[gi], temp_k, dvth, offset);
  }
  return delays;
}

TimingResult StaEngine::analyze(std::span<const double> gate_delay) const {
  if (static_cast<int>(gate_delay.size()) != nl_->num_gates()) {
    throw std::invalid_argument("StaEngine::analyze: delay size mismatch");
  }
  TimingResult r;
  r.arrival.assign(nl_->num_nodes(), 0.0);
  std::vector<netlist::NodeId> pred(nl_->num_nodes(), -1);

  for (int gi = 0; gi < nl_->num_gates(); ++gi) {
    const netlist::Gate& g = nl_->gate(gi);
    // A fanin-less (constant-driver) gate launches at t = 0 with no
    // predecessor; indexing fanins[0] unconditionally would be UB on it.
    double in_arr = 0.0;
    netlist::NodeId worst_in = -1;
    for (netlist::NodeId in : g.fanins) {
      if (r.arrival[in] >= in_arr || worst_in < 0) {
        in_arr = r.arrival[in];
        worst_in = in;
      }
    }
    r.arrival[g.output] = in_arr + gate_delay[gi];
    pred[g.output] = worst_in;
  }

  netlist::NodeId crit_po = -1;
  for (netlist::NodeId po : nl_->outputs()) {
    if (crit_po < 0 || r.arrival[po] > r.max_delay) {
      r.max_delay = r.arrival[po];
      crit_po = po;
    }
  }
  // Walk the critical path back to a primary input.
  for (netlist::NodeId n = crit_po; n >= 0; n = pred[n]) {
    r.critical_path.push_back(n);
  }
  std::reverse(r.critical_path.begin(), r.critical_path.end());
  return r;
}

TimingResult StaEngine::analyze_fresh(double temp_k) const {
  return analyze(gate_delays(temp_k));
}

double StaEngine::critical_delay(std::span<const double> gate_delay,
                                 std::vector<double>& arrival_scratch) const {
  if (static_cast<int>(gate_delay.size()) != nl_->num_gates()) {
    throw std::invalid_argument("StaEngine::critical_delay: size mismatch");
  }
  // Mirrors analyze() expression for expression (same fold, same
  // comparisons) so the result is bitwise what analyze() would report.
  arrival_scratch.assign(nl_->num_nodes(), 0.0);
  for (int gi = 0; gi < nl_->num_gates(); ++gi) {
    const netlist::Gate& g = nl_->gate(gi);
    double in_arr = 0.0;
    netlist::NodeId worst_in = -1;
    for (netlist::NodeId in : g.fanins) {
      if (arrival_scratch[in] >= in_arr || worst_in < 0) {
        in_arr = arrival_scratch[in];
        worst_in = in;
      }
    }
    arrival_scratch[g.output] = in_arr + gate_delay[gi];
  }
  double max_delay = 0.0;
  netlist::NodeId crit_po = -1;
  for (netlist::NodeId po : nl_->outputs()) {
    if (crit_po < 0 || arrival_scratch[po] > max_delay) {
      max_delay = arrival_scratch[po];
      crit_po = po;
    }
  }
  return max_delay;
}

std::vector<double> StaEngine::slacks(const TimingResult& timing,
                                      std::span<const double> gate_delay) const {
  if (static_cast<int>(gate_delay.size()) != nl_->num_gates()) {
    throw std::invalid_argument("StaEngine::slacks: delay size mismatch");
  }
  std::vector<double> required(nl_->num_nodes(), kUnconstrainedSlack);
  for (netlist::NodeId po : nl_->outputs()) required[po] = timing.max_delay;
  for (int gi = nl_->num_gates() - 1; gi >= 0; --gi) {
    const netlist::Gate& g = nl_->gate(gi);
    const double req_in = required[g.output] - gate_delay[gi];
    for (netlist::NodeId in : g.fanins) {
      required[in] = std::min(required[in], req_in);
    }
  }
  // Nets whose required time never tightened have no path to a primary
  // output: report them as unconstrained, not as zero-slack-critical.
  // (Gate delays are ~1e-9 s, twenty orders below the sentinel, so the
  // subtraction above is absorbed and the comparison stays exact.)
  std::vector<double> slack(nl_->num_nodes());
  for (int n = 0; n < nl_->num_nodes(); ++n) {
    slack[n] = required[n] >= kUnconstrainedSlack
                   ? kUnconstrainedSlack
                   : required[n] - timing.arrival[n];
  }
  return slack;
}

}  // namespace nbtisim::sta
