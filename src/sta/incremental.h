/// \file incremental.h
/// \brief Incremental static timing over a levelized netlist.
///
/// The sizing / IVC / lifetime studies are thousands of timing queries over
/// one circuit where each query differs from the last by a handful of gate
/// delays (one resize touches the gate and its fanin drivers).  A fresh
/// StaEngine::analyze pays the full O(V + E) forward pass per query;
/// IncrementalSta keeps arrival times resident and, after set_delay()
/// edits, re-evaluates only a dirty frontier propagated level by level
/// through the netlist's cached Levelization, cutting off as soon as an
/// arrival stops changing bitwise.
///
/// Bit-identity contract: every query answers exactly what a fresh
/// StaEngine would report for the current delay vector —
///   - max_delay()/timing() equal analyze(delays) member for member,
///   - slacks() equals StaEngine::slacks(analyze(delays), delays)
/// — by construction, not by tolerance: a re-evaluated gate recomputes its
/// arrival *and* predecessor with the very expressions analyze() uses
/// (pred is a pure function of the fanin arrivals, so recomputation is
/// history-independent), propagation stops only when the output arrival is
/// bitwise unchanged, and required times are maintained by per-net min
/// folds that are order-independent over doubles.  The differential sweep
/// in tests/test_sta_incremental.cpp enforces this under
/// `ctest -L determinism`.
///
/// checkpoint()/rollback() bracket speculative edits (a candidate resize):
/// every overwrite of a delay, arrival, predecessor or required entry while
/// a checkpoint is open lands in an undo log, so rollback is O(edits), not
/// O(V) — the "undo via frontier rollback" primitive the multi-path sizing
/// loop trials moves with.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sta/sta.h"

namespace nbtisim::sta {

/// Incremental longest-path engine bound to one StaEngine (netlist +
/// library loads) and one resident per-gate delay vector.
///
/// Not thread-safe: queries flush pending edits into the resident arrays.
/// Use one instance per thread (they are cheap relative to the netlist).
/// The bound netlist must not mutate during this object's lifetime.
class IncrementalSta {
 public:
  /// Seeds the resident state from \p gate_delay with one full forward
  /// pass (the last full-rebuild this instance ever pays).
  /// \throws std::invalid_argument on a delay-vector length mismatch
  IncrementalSta(const StaEngine& engine, std::span<const double> gate_delay);

  const StaEngine& engine() const { return *sta_; }

  /// Current delay of \p gate.
  double delay(int gate) const { return delay_.at(gate); }
  std::span<const double> delays() const { return delay_; }

  /// Stages a delay edit; nothing propagates until the next query.
  /// A bitwise-identical value is a no-op.
  /// \throws std::out_of_range on a bad gate index
  void set_delay(int gate, double d);

  /// Critical delay for the current delays (flushes pending edits).
  double max_delay();

  /// Per-net arrivals for the current delays (flushes).  The view is
  /// invalidated by the next edit or rollback.
  std::span<const double> arrivals();

  /// Full fresh-equivalent TimingResult (flushes): arrival copy, critical
  /// delay, critical-path walk.
  TimingResult timing();

  /// Per-net slacks against the current critical delay (flushes, then
  /// brings the resident required times up to date on a descending-level
  /// frontier).  Equals StaEngine::slacks(analyze(delays), delays).
  /// The reference is invalidated by the next edit, query or rollback.
  const std::vector<double>& slacks();

  /// Opens an undo scope: every subsequent state overwrite is logged.
  /// Flushes first, so rollback() restores exactly the state visible now.
  /// \throws std::logic_error when a checkpoint is already open
  void checkpoint();

  /// Reverts every edit since checkpoint() and closes the scope.
  /// \throws std::logic_error when no checkpoint is open
  void rollback();

  /// Keeps every edit since checkpoint() and closes the scope.
  /// \throws std::logic_error when no checkpoint is open
  void commit();

  bool checkpoint_open() const { return cp_open_; }

  /// Gates re-evaluated by flushes so far — the work an equivalent series
  /// of full rebuilds would have spent num_gates() each on.
  std::uint64_t gates_retimed() const { return retimed_; }

 private:
  struct DoubleUndo {
    int index;
    double value;
  };
  struct IntUndo {
    int index;
    int value;
  };

  void push_gate(int gi);
  void retime_gate(int gi);
  void flush();
  double scan_max_delay();
  void push_req_net(netlist::NodeId n);
  void push_req_seed(netlist::NodeId n);
  void recompute_required(netlist::NodeId n, double md);
  void update_required(double md);

  const StaEngine* sta_;
  const netlist::Netlist* nl_;
  const netlist::Levelization* lev_;

  std::vector<double> delay_;    // per gate
  std::vector<double> arrival_;  // per net
  std::vector<int> pred_;        // per net; -1 for PIs / fanin-less gates
  std::vector<char> is_po_;      // per net

  // Arrival frontier: gates to re-evaluate, bucketed by output level.
  std::vector<std::vector<int>> frontier_;  // level -> gate indices
  std::vector<char> in_frontier_;           // per gate
  int pending_ = 0;
  int frontier_lo_ = 0;  // lowest level holding a pending gate

  // Required times, maintained lazily: built on the first slacks() call,
  // then refreshed on a descending-level net frontier seeded by the fanins
  // of delay-edited gates (plus every PO when the critical delay moved).
  std::vector<double> required_;  // per net; meaningful iff required_valid_
  bool required_valid_ = false;
  double required_max_delay_ = 0.0;  // critical delay required_ was built at
  std::vector<netlist::NodeId> req_seeds_;
  std::vector<char> in_req_seed_;                // per net
  std::vector<std::vector<netlist::NodeId>> req_frontier_;  // level -> nets
  std::vector<char> in_req_frontier_;            // per net
  int req_pending_ = 0;
  int req_hi_ = -1;  // highest level holding a pending net

  std::vector<double> slack_;  // slacks() output buffer

  // Undo scope.
  bool cp_open_ = false;
  bool cp_required_valid_ = false;
  double cp_required_max_delay_ = 0.0;
  std::vector<netlist::NodeId> cp_req_seeds_;
  std::vector<DoubleUndo> delay_log_;
  std::vector<DoubleUndo> arrival_log_;
  std::vector<DoubleUndo> required_log_;
  std::vector<IntUndo> pred_log_;

  std::uint64_t retimed_ = 0;
};

}  // namespace nbtisim::sta
