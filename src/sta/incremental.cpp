#include "sta/incremental.h"

#include <algorithm>
#include <stdexcept>

namespace nbtisim::sta {

IncrementalSta::IncrementalSta(const StaEngine& engine,
                               std::span<const double> gate_delay)
    : sta_(&engine),
      nl_(&engine.netlist()),
      lev_(&nl_->levelization()) {
  if (static_cast<int>(gate_delay.size()) != nl_->num_gates()) {
    throw std::invalid_argument("IncrementalSta: delay size mismatch");
  }
  delay_.assign(gate_delay.begin(), gate_delay.end());

  // Seed pass — expression for expression the forward pass of
  // StaEngine::analyze, so the resident state starts fresh-identical.
  arrival_.assign(nl_->num_nodes(), 0.0);
  pred_.assign(nl_->num_nodes(), -1);
  for (int gi = 0; gi < nl_->num_gates(); ++gi) {
    const netlist::Gate& g = nl_->gate(gi);
    double in_arr = 0.0;
    netlist::NodeId worst_in = -1;
    for (netlist::NodeId in : g.fanins) {
      if (arrival_[in] >= in_arr || worst_in < 0) {
        in_arr = arrival_[in];
        worst_in = in;
      }
    }
    arrival_[g.output] = in_arr + delay_[gi];
    pred_[g.output] = worst_in;
  }

  is_po_.assign(nl_->num_nodes(), 0);
  for (netlist::NodeId po : nl_->outputs()) is_po_[po] = 1;

  frontier_.resize(lev_->depth + 1);
  in_frontier_.assign(nl_->num_gates(), 0);
  frontier_lo_ = lev_->depth + 1;

  in_req_seed_.assign(nl_->num_nodes(), 0);
  req_frontier_.resize(lev_->depth + 1);
  in_req_frontier_.assign(nl_->num_nodes(), 0);
}

void IncrementalSta::push_gate(int gi) {
  if (in_frontier_[gi]) return;
  in_frontier_[gi] = 1;
  const int level = lev_->node_level[nl_->gate(gi).output];
  frontier_[level].push_back(gi);
  ++pending_;
  frontier_lo_ = std::min(frontier_lo_, level);
}

void IncrementalSta::set_delay(int gate, double d) {
  if (gate < 0 || gate >= nl_->num_gates()) {
    throw std::out_of_range("IncrementalSta::set_delay: bad gate index");
  }
  if (delay_[gate] == d) return;  // bitwise no-op
  if (cp_open_) delay_log_.push_back({gate, delay_[gate]});
  delay_[gate] = d;
  push_gate(gate);
  if (required_valid_) {
    // The gate's contribution required[output] - delay to each fanin's
    // required time changed; remember the fanins for the next slacks().
    for (netlist::NodeId in : nl_->gate(gate).fanins) push_req_seed(in);
  }
}

void IncrementalSta::retime_gate(int gi) {
  const netlist::Gate& g = nl_->gate(gi);
  double in_arr = 0.0;
  netlist::NodeId worst_in = -1;
  for (netlist::NodeId in : g.fanins) {
    if (arrival_[in] >= in_arr || worst_in < 0) {
      in_arr = arrival_[in];
      worst_in = in;
    }
  }
  const netlist::NodeId out = g.output;
  // The predecessor can change even when the arrival does not (a tied
  // worst fanin dropping), so it is always recomputed; it is a pure
  // function of the fanin arrivals, which makes the result independent of
  // the edit history.
  if (pred_[out] != worst_in) {
    if (cp_open_) pred_log_.push_back({out, pred_[out]});
    pred_[out] = worst_in;
  }
  const double new_arr = in_arr + delay_[gi];
  ++retimed_;
  if (new_arr != arrival_[out]) {  // bitwise early cut-off
    if (cp_open_) arrival_log_.push_back({out, arrival_[out]});
    arrival_[out] = new_arr;
    for (int reader : lev_->fanout(out)) push_gate(reader);
  }
}

void IncrementalSta::flush() {
  if (pending_ == 0) return;
  // Gates within one wavefront never read each other, and fanout pushes go
  // strictly upward, so one ascending sweep settles everything.
  for (int level = frontier_lo_; level <= lev_->depth && pending_ > 0;
       ++level) {
    std::vector<int>& bucket = frontier_[level];
    for (int gi : bucket) {
      in_frontier_[gi] = 0;
      --pending_;
      retime_gate(gi);
    }
    bucket.clear();
  }
  frontier_lo_ = lev_->depth + 1;
}

double IncrementalSta::scan_max_delay() {
  double md = 0.0;
  netlist::NodeId crit_po = -1;
  for (netlist::NodeId po : nl_->outputs()) {
    if (crit_po < 0 || arrival_[po] > md) {
      md = arrival_[po];
      crit_po = po;
    }
  }
  return md;
}

double IncrementalSta::max_delay() {
  flush();
  return scan_max_delay();
}

std::span<const double> IncrementalSta::arrivals() {
  flush();
  return arrival_;
}

TimingResult IncrementalSta::timing() {
  flush();
  TimingResult r;
  r.arrival.assign(arrival_.begin(), arrival_.end());
  netlist::NodeId crit_po = -1;
  for (netlist::NodeId po : nl_->outputs()) {
    if (crit_po < 0 || arrival_[po] > r.max_delay) {
      r.max_delay = arrival_[po];
      crit_po = po;
    }
  }
  for (netlist::NodeId n = crit_po; n >= 0; n = pred_[n]) {
    r.critical_path.push_back(n);
  }
  std::reverse(r.critical_path.begin(), r.critical_path.end());
  return r;
}

void IncrementalSta::push_req_seed(netlist::NodeId n) {
  if (in_req_seed_[n]) return;
  in_req_seed_[n] = 1;
  req_seeds_.push_back(n);
}

void IncrementalSta::push_req_net(netlist::NodeId n) {
  if (in_req_frontier_[n]) return;
  in_req_frontier_[n] = 1;
  const int level = lev_->node_level[n];
  req_frontier_[level].push_back(n);
  ++req_pending_;
  req_hi_ = std::max(req_hi_, level);
}

void IncrementalSta::recompute_required(netlist::NodeId n, double md) {
  // Per-net fold of exactly the terms the fresh backward pass folds into
  // required[n]: the PO base (or the unconstrained sentinel, which absorbs
  // gate-delay subtractions exactly) and required[out(g)] - delay[g] per
  // reader gate.  min over doubles without NaNs is order-independent
  // bitwise, so the fold order does not matter.
  double req = is_po_[n] ? md : kUnconstrainedSlack;
  for (int reader : lev_->fanout(n)) {
    req = std::min(req, required_[nl_->gate(reader).output] - delay_[reader]);
  }
  if (req != required_[n]) {
    if (cp_open_) required_log_.push_back({n, required_[n]});
    required_[n] = req;
    const int d = nl_->driver_gate(n);
    if (d >= 0) {
      for (netlist::NodeId in : nl_->gate(d).fanins) push_req_net(in);
    }
  }
}

void IncrementalSta::update_required(double md) {
  if (!required_valid_) {
    // First call: the fresh backward pass verbatim.  No undo logging — if
    // a checkpoint is open, required_valid_ was false at checkpoint() and
    // rollback() restores that flag, making the content irrelevant.
    required_.assign(nl_->num_nodes(), kUnconstrainedSlack);
    for (netlist::NodeId po : nl_->outputs()) required_[po] = md;
    for (int gi = nl_->num_gates() - 1; gi >= 0; --gi) {
      const netlist::Gate& g = nl_->gate(gi);
      const double req_in = required_[g.output] - delay_[gi];
      for (netlist::NodeId in : g.fanins) {
        required_[in] = std::min(required_[in], req_in);
      }
    }
    required_valid_ = true;
  } else {
    if (md != required_max_delay_) {
      // Every PO's base term moved; reseed them all.
      for (netlist::NodeId po : nl_->outputs()) push_req_net(po);
    }
    for (netlist::NodeId n : req_seeds_) push_req_net(n);
    // Nets at level L only read required times of nets at levels > L, so
    // one descending sweep settles everything; pushes go strictly down.
    for (int level = req_hi_; level >= 0 && req_pending_ > 0; --level) {
      std::vector<netlist::NodeId>& bucket = req_frontier_[level];
      for (netlist::NodeId n : bucket) {
        in_req_frontier_[n] = 0;
        --req_pending_;
        recompute_required(n, md);
      }
      bucket.clear();
    }
    req_hi_ = -1;
  }
  for (netlist::NodeId n : req_seeds_) in_req_seed_[n] = 0;
  req_seeds_.clear();
  required_max_delay_ = md;
}

const std::vector<double>& IncrementalSta::slacks() {
  flush();
  update_required(scan_max_delay());
  slack_.resize(nl_->num_nodes());
  for (int n = 0; n < nl_->num_nodes(); ++n) {
    slack_[n] = required_[n] >= kUnconstrainedSlack
                    ? kUnconstrainedSlack
                    : required_[n] - arrival_[n];
  }
  return slack_;
}

void IncrementalSta::checkpoint() {
  if (cp_open_) {
    throw std::logic_error("IncrementalSta: checkpoint already open");
  }
  // Flushing first pins the rollback target to the exact state visible
  // now; pre-checkpoint staged edits otherwise flush inside the scope and
  // get (incorrectly) reverted with it.
  flush();
  cp_open_ = true;
  cp_required_valid_ = required_valid_;
  cp_required_max_delay_ = required_max_delay_;
  cp_req_seeds_ = req_seeds_;
}

void IncrementalSta::rollback() {
  if (!cp_open_) {
    throw std::logic_error("IncrementalSta: no open checkpoint to roll back");
  }
  for (auto it = delay_log_.rbegin(); it != delay_log_.rend(); ++it) {
    delay_[it->index] = it->value;
  }
  for (auto it = arrival_log_.rbegin(); it != arrival_log_.rend(); ++it) {
    arrival_[it->index] = it->value;
  }
  for (auto it = pred_log_.rbegin(); it != pred_log_.rend(); ++it) {
    pred_[it->index] = it->value;
  }
  for (auto it = required_log_.rbegin(); it != required_log_.rend(); ++it) {
    required_[it->index] = it->value;
  }
  required_valid_ = cp_required_valid_;
  required_max_delay_ = cp_required_max_delay_;
  // Restore the pending-seed set as of checkpoint().  Gates still sitting
  // in the arrival frontier recompute to their restored values and stop —
  // stale frontier entries are harmless by the bitwise cut-off.
  for (netlist::NodeId n : req_seeds_) in_req_seed_[n] = 0;
  req_seeds_ = std::move(cp_req_seeds_);
  for (netlist::NodeId n : req_seeds_) in_req_seed_[n] = 1;
  cp_req_seeds_.clear();
  delay_log_.clear();
  arrival_log_.clear();
  pred_log_.clear();
  required_log_.clear();
  cp_open_ = false;
}

void IncrementalSta::commit() {
  if (!cp_open_) {
    throw std::logic_error("IncrementalSta: no open checkpoint to commit");
  }
  cp_req_seeds_.clear();
  delay_log_.clear();
  arrival_log_.clear();
  pred_log_.clear();
  required_log_.clear();
  cp_open_ = false;
}

}  // namespace nbtisim::sta
