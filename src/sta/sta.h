/// \file sta.h
/// \brief Static timing analysis over gate-level netlists.
///
/// Implements the paper's [44]-style STA: longest-path arrival propagation
/// over the circuit DAG with per-gate delays coming from the characterized
/// library, either fresh or with per-gate NBTI threshold shifts applied
/// ("A static timing analysis tool is used to compute the max delay of the
/// circuit with all the gates' temporal degradation information",
/// Section 3.3).
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "tech/library.h"

namespace nbtisim::sta {

/// Slack reported for nets with no combinational path to any primary
/// output (dangling logic).  Such nets are unconstrained — no spec applies
/// to them — so they carry effectively infinite slack; consumers that rank
/// or bracket by slack must treat values at or above this sentinel as
/// "always eligible" rather than as a real timing margin (see
/// assign_dual_vth).
inline constexpr double kUnconstrainedSlack = 1e30;

/// Result of one timing pass.
struct TimingResult {
  std::vector<double> arrival;  ///< per-net arrival time [s]
  double max_delay = 0.0;       ///< critical (longest) path delay [s]
  std::vector<netlist::NodeId> critical_path;  ///< nets from a PI to the
                                               ///< critical PO
};

/// STA engine bound to one netlist + library.
///
/// Loads are computed structurally once (fanout pin caps + wire cap + PO
/// load); delay vectors are cheap to recompute for different temperatures
/// or aging states, which is what the 10-year sweeps do.
class StaEngine {
 public:
  /// \throws std::out_of_range if the netlist uses a (fn, fanin) combination
  ///         the library cannot map
  StaEngine(const netlist::Netlist& nl, const tech::Library& lib);

  const netlist::Netlist& netlist() const { return *nl_; }
  const tech::Library& library() const { return *lib_; }

  /// Cell implementing gate \p gate_idx.
  tech::CellId gate_cell(int gate_idx) const { return cells_.at(gate_idx); }

  /// Capacitive load on a gate's output [F].
  double gate_load(int gate_idx) const { return loads_.at(gate_idx); }

  /// Per-gate delays at \p temp_k; \p pmos_dvth (optional, per gate) applies
  /// an NBTI threshold shift to the PMOS devices of each gate;
  /// \p vth_offsets (optional, per gate) shifts every transistor of each
  /// gate — the dual-Vth assignment hook.
  /// \throws std::invalid_argument on non-empty vectors with wrong size
  std::vector<double> gate_delays(double temp_k,
                                  std::span<const double> pmos_dvth = {},
                                  std::span<const double> vth_offsets = {}) const;

  /// Longest-path analysis with explicit per-gate delays.
  TimingResult analyze(std::span<const double> gate_delay) const;

  /// Critical delay only: the forward pass of analyze() without the
  /// predecessor bookkeeping, arrival-vector allocation or path walk,
  /// reusing \p arrival_scratch across calls.  Bit-identical to
  /// analyze(gate_delay).max_delay — the cheap kernel for sweeps that only
  /// need the scalar (derate tables, lifetime bisection, Pareto scoring).
  /// Thread-safe for concurrent calls with distinct scratch vectors.
  double critical_delay(std::span<const double> gate_delay,
                        std::vector<double>& arrival_scratch) const;

  /// Convenience: fresh-silicon analysis at \p temp_k.
  TimingResult analyze_fresh(double temp_k) const;

  /// Per-net slack against the critical delay of \p timing.  Nets with no
  /// path to any primary output get kUnconstrainedSlack (they used to be
  /// reported as 0.0 — indistinguishable from truly critical nets, which
  /// falsely pinned dangling logic low-Vth in the dual-Vth pass).
  std::vector<double> slacks(const TimingResult& timing,
                             std::span<const double> gate_delay) const;

 private:
  const netlist::Netlist* nl_;
  const tech::Library* lib_;
  std::vector<tech::CellId> cells_;  // per gate
  std::vector<double> loads_;       // per gate
};

}  // namespace nbtisim::sta
