/// \file slew_sta.h
/// \brief Rise/fall- and slew-aware static timing analysis.
///
/// The scalar StaEngine models each gate with one delay number; real
/// signoff (and real NBTI analysis) needs more:
///   - separate rising/falling arrival times — an inverting gate's rising
///     output is launched by its *falling* input;
///   - transition-time (slew) propagation — a slow input edge slows the
///     receiving gate;
///   - NBTI asymmetry — a degraded PMOS slows only pull-up (rising-output)
///     arcs, so the aged critical path can differ from the fresh one and
///     the effective circuit-level degradation is roughly half of what a
///     both-edges model predicts (see bench_ablation_models (c)).
///
/// This engine propagates (arrival, slew) pairs per edge per net using the
/// library's analytic arc model (Library::cell_arc) and the cells'
/// unateness.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "tech/library.h"

namespace nbtisim::sta {

/// Result of a slew-aware timing pass.
struct SlewTimingResult {
  std::vector<double> arrival_rise;  ///< per-net rising arrival [s]
  std::vector<double> arrival_fall;  ///< per-net falling arrival [s]
  std::vector<double> slew_rise;     ///< per-net rising slew [s]
  std::vector<double> slew_fall;     ///< per-net falling slew [s]
  double max_delay = 0.0;            ///< worst PO arrival over both edges [s]
  netlist::NodeId critical_output = -1;
  tech::Library::Edge critical_edge = tech::Library::Edge::Rise;
};

/// Slew-aware STA engine bound to one netlist + library.
class SlewStaEngine {
 public:
  /// \param input_slew transition time applied at every primary input [s]
  /// \throws std::invalid_argument for non-positive input slew
  SlewStaEngine(const netlist::Netlist& nl, const tech::Library& lib,
                double input_slew = 2.0e-11);

  const netlist::Netlist& netlist() const { return *nl_; }
  double input_slew() const { return input_slew_; }

  /// Full rise/fall propagation; \p pmos_dvth (optional, per gate) slows
  /// pull-up arcs only (NBTI); \p vth_offsets (optional, per gate) shifts
  /// every device (dual-Vth); \p nmos_dvth (optional, per gate) slows
  /// pull-down arcs only (PBTI/HCI).
  /// \throws std::invalid_argument on size mismatches
  SlewTimingResult analyze(double temp_k,
                           std::span<const double> pmos_dvth = {},
                           std::span<const double> vth_offsets = {},
                           std::span<const double> nmos_dvth = {}) const;

 private:
  const netlist::Netlist* nl_;
  const tech::Library* lib_;
  double input_slew_;
  std::vector<tech::CellId> cells_;
  std::vector<double> loads_;
};

}  // namespace nbtisim::sta
