#include "sta/slew_sta.h"

#include <algorithm>
#include <stdexcept>

namespace nbtisim::sta {

SlewStaEngine::SlewStaEngine(const netlist::Netlist& nl,
                             const tech::Library& lib, double input_slew)
    : nl_(&nl), lib_(&lib), input_slew_(input_slew) {
  if (input_slew <= 0.0) {
    throw std::invalid_argument("SlewStaEngine: non-positive input slew");
  }
  cells_.reserve(nl.num_gates());
  for (const netlist::Gate& g : nl.gates()) {
    cells_.push_back(lib.id_for(g.fn, static_cast<int>(g.fanins.size())));
  }
  const double wire_cap = lib.params().wire_cap_per_fanout;
  const double po_load = lib.input_cap(lib.find("BUF"), 0) + wire_cap;
  loads_.assign(nl.num_gates(), 0.0);
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    const netlist::NodeId out = nl.gate(gi).output;
    double load = 0.0;
    for (int sink : nl.fanout_gates(out)) {
      const netlist::Gate& sg = nl.gate(sink);
      for (std::size_t pin = 0; pin < sg.fanins.size(); ++pin) {
        if (sg.fanins[pin] == out) {
          load += lib.input_cap(cells_[sink], static_cast<int>(pin)) + wire_cap;
        }
      }
    }
    if (std::find(nl.outputs().begin(), nl.outputs().end(), out) !=
        nl.outputs().end()) {
      load += po_load;
    }
    loads_[gi] = load;
  }
}

SlewTimingResult SlewStaEngine::analyze(
    double temp_k, std::span<const double> pmos_dvth,
    std::span<const double> vth_offsets,
    std::span<const double> nmos_dvth) const {
  const netlist::Netlist& nl = *nl_;
  if (!pmos_dvth.empty() &&
      static_cast<int>(pmos_dvth.size()) != nl.num_gates()) {
    throw std::invalid_argument("SlewStaEngine: dvth size mismatch");
  }
  if (!vth_offsets.empty() &&
      static_cast<int>(vth_offsets.size()) != nl.num_gates()) {
    throw std::invalid_argument("SlewStaEngine: vth offset size mismatch");
  }
  if (!nmos_dvth.empty() &&
      static_cast<int>(nmos_dvth.size()) != nl.num_gates()) {
    throw std::invalid_argument("SlewStaEngine: nmos dvth size mismatch");
  }

  using Edge = tech::Library::Edge;
  SlewTimingResult r;
  r.arrival_rise.assign(nl.num_nodes(), 0.0);
  r.arrival_fall.assign(nl.num_nodes(), 0.0);
  r.slew_rise.assign(nl.num_nodes(), input_slew_);
  r.slew_fall.assign(nl.num_nodes(), input_slew_);

  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    const netlist::Gate& g = nl.gate(gi);
    const tech::CellId cell = cells_[gi];
    const double dvth = pmos_dvth.empty() ? 0.0 : pmos_dvth[gi];
    const double offset = vth_offsets.empty() ? 0.0 : vth_offsets[gi];
    const double n_dvth = nmos_dvth.empty() ? 0.0 : nmos_dvth[gi];
    const tech::Library::Unateness unate = lib_->unateness(cell);

    // For each output edge, collect candidate (arrival, slew) per fanin,
    // choosing the causing input edge from the cell's unateness.
    for (Edge out_edge : {Edge::Rise, Edge::Fall}) {
      double best_arrival = 0.0;
      double best_slew = input_slew_;
      bool first = true;
      for (netlist::NodeId in : g.fanins) {
        // Candidate causing edges at this input.
        for (int pol = 0; pol < 2; ++pol) {
          const bool in_rising = pol == 1;
          const bool matches =
              (unate == tech::Library::Unateness::Binate) ||
              (unate == tech::Library::Unateness::Positive &&
               in_rising == (out_edge == Edge::Rise)) ||
              (unate == tech::Library::Unateness::Negative &&
               in_rising == (out_edge == Edge::Fall));
          if (!matches) continue;
          const double in_arr =
              in_rising ? r.arrival_rise[in] : r.arrival_fall[in];
          const double in_slew = in_rising ? r.slew_rise[in] : r.slew_fall[in];
          const tech::Library::ArcTiming arc =
              lib_->cell_arc(cell, out_edge, loads_[gi], in_slew, temp_k,
                             dvth, offset, n_dvth);
          const double arrival = in_arr + arc.delay;
          if (first || arrival > best_arrival) {
            best_arrival = arrival;
            best_slew = arc.out_slew;
            first = false;
          }
        }
      }
      if (out_edge == Edge::Rise) {
        r.arrival_rise[g.output] = best_arrival;
        r.slew_rise[g.output] = best_slew;
      } else {
        r.arrival_fall[g.output] = best_arrival;
        r.slew_fall[g.output] = best_slew;
      }
    }
  }

  for (netlist::NodeId po : nl.outputs()) {
    if (r.arrival_rise[po] > r.max_delay) {
      r.max_delay = r.arrival_rise[po];
      r.critical_output = po;
      r.critical_edge = Edge::Rise;
    }
    if (r.arrival_fall[po] > r.max_delay) {
      r.max_delay = r.arrival_fall[po];
      r.critical_output = po;
      r.critical_edge = Edge::Fall;
    }
  }
  return r;
}

}  // namespace nbtisim::sta
