/// \file json.h
/// \brief Dependency-free JSON value, parser and writer.
///
/// The campaign engine (src/campaign) speaks JSON at both ends — declarative
/// scenario specs in, JSONL result rows out — and the repo policy is "no new
/// third-party dependencies", so this is a small self-contained
/// implementation with two properties the engine relies on:
///
///   - **Deterministic round-trips.** Objects keep their members in insertion
///     order (a vector of pairs, not a map), and dump() formats numbers with
///     the shortest representation that parses back to the identical double.
///     Re-serializing a parsed document is byte-identical, which is what lets
///     the result store compare and hash rows textually.
///   - **Documented non-finite policy.** RFC 8259 has no encoding for
///     infinities or NaN. By default dump() emits the literals `Infinity`,
///     `-Infinity` and `NaN` (the JSON5 convention), and parse() accepts
///     exactly those three tokens back — so every double round-trips.
///     Consumers that need strict RFC output pass NonFinite::Null, which
///     encodes every non-finite double as `null` (lossy but valid JSON for
///     external readers).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace nbtisim::common::json {

class Value;

/// JSON array.
using Array = std::vector<Value>;
/// JSON object in insertion order (deterministic round-trips; duplicate keys
/// are rejected by the parser and by set()).
using Object = std::vector<std::pair<std::string, Value>>;

/// A JSON document node: null, bool, number, string, array or object.
class Value {
 public:
  enum class Kind : unsigned char { Null, Bool, Number, String, Array, Object };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Kind kind() const { return static_cast<Kind>(data_.index()); }
  bool is_null() const { return kind() == Kind::Null; }
  bool is_bool() const { return kind() == Kind::Bool; }
  bool is_number() const { return kind() == Kind::Number; }
  bool is_string() const { return kind() == Kind::String; }
  bool is_array() const { return kind() == Kind::Array; }
  bool is_object() const { return kind() == Kind::Object; }

  /// Checked accessors.
  /// \throws std::runtime_error on kind mismatch
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Member lookup; nullptr when absent (or when this is not an object).
  const Value* find(std::string_view key) const;
  /// Member lookup.
  /// \throws std::runtime_error naming the missing \p key
  const Value& at(std::string_view key) const;
  /// Inserts or replaces a member (this must be an object or null; null
  /// becomes an empty object first).
  void set(std::string key, Value v);

  /// Typed member getters with defaults; absent key returns \p def, present
  /// key of the wrong kind throws like the checked accessors.
  double number_or(std::string_view key, double def) const;
  int int_or(std::string_view key, int def) const;
  bool bool_or(std::string_view key, bool def) const;
  std::string string_or(std::string_view key, std::string def) const;

  friend bool operator==(const Value&, const Value&) = default;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Accepts the non-finite literals documented in the file comment.
/// \throws std::runtime_error with byte offset on malformed input
Value parse(std::string_view text);

/// Encoding policy for non-finite doubles (see file comment).
/// Literal round-trips (JSON5 tokens); Null is strict RFC 8259 output for
/// external consumers, at the cost of losing the non-finite value.
enum class NonFinite : unsigned char { Literal, Null };

/// Serializes \p v. indent < 0: compact single line; indent >= 0: pretty,
/// \p indent spaces per nesting level. Number and non-finite formatting as
/// documented in the file comment; \p nf selects the non-finite policy.
std::string dump(const Value& v, int indent = -1,
                 NonFinite nf = NonFinite::Literal);

/// Formats one double exactly as dump() would (shortest round-trip form;
/// non-finite per \p nf) — shared with hand-rolled writers like the bench
/// JSON emitters.
std::string format_number(double d, NonFinite nf = NonFinite::Literal);

/// Reads and parses a JSON file.
/// \throws std::runtime_error when the file cannot be read or parsed
Value load_file(const std::string& path);

}  // namespace nbtisim::common::json
