#include "common/pool.h"

#include <cassert>
#include <exception>

namespace nbtisim::common {
namespace {

/// Depth of pool-task execution on this thread: > 0 while running a loop
/// body handed out by WorkPool (including the submitting thread's own
/// participation), 0 otherwise.
thread_local int g_task_depth = 0;

/// Hard cap on pool size — requests are bounded by explicit --threads knobs
/// (resolve_threads), this is only a backstop against absurd values.
constexpr int kMaxWorkers = 256;

struct TaskDepthGuard {
  TaskDepthGuard() { ++g_task_depth; }
  ~TaskDepthGuard() { --g_task_depth; }
};

}  // namespace

/// One submitted loop. Heap-allocated and shared between the submitter and
/// every queued ticket, so a worker that pops a ticket after the loop
/// already drained still touches valid memory (it reads `next`, finds the
/// loop exhausted, and never dereferences fn/ctx).
struct WorkPool::Loop {
  std::atomic<int> next{0};  ///< next unhanded index
  int n = 0;
  int grain = 1;
  LoopFn fn = nullptr;
  void* ctx = nullptr;

  std::mutex m;
  std::condition_variable done;
  int in_flight = 0;  ///< participants currently pulling/running ranges
  std::exception_ptr error;
};

WorkPool& WorkPool::global() {
  static WorkPool pool;
  return pool;
}

bool WorkPool::inside_task() { return g_task_depth > 0; }

int WorkPool::workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

WorkPool::~WorkPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkPool::ensure_workers(int wanted) {
  if (wanted > kMaxWorkers) wanted = kMaxWorkers;
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < wanted) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

void WorkPool::participate(Loop& loop) {
  TaskDepthGuard guard;
  for (;;) {
    const int begin = loop.next.fetch_add(loop.grain,
                                          std::memory_order_relaxed);
    if (begin >= loop.n) return;
    const int end = std::min(loop.n, begin + loop.grain);
    try {
      loop.fn(loop.ctx, begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(loop.m);
      if (!loop.error) loop.error = std::current_exception();
      loop.next.store(loop.n, std::memory_order_relaxed);  // drain
      return;
    }
  }
}

void WorkPool::worker_main() {
  for (;;) {
    std::shared_ptr<Loop> loop;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      loop = std::move(queue_.front());
      queue_.pop_front();
    }
    {
      std::lock_guard<std::mutex> lock(loop->m);
      ++loop->in_flight;
    }
    participate(*loop);
    {
      std::lock_guard<std::mutex> lock(loop->m);
      --loop->in_flight;
    }
    // The submitter waits on `done` under loop->m, so the body's writes are
    // published to it by the lock pair above.
    loop->done.notify_all();
  }
}

void WorkPool::run(int n, int k, int grain, LoopFn fn, void* ctx) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (k > 1 && inside_task()) {
    // Nested submission is the k x k oversubscription bug; parallel_for
    // diverts nested loops to its serial path before reaching here.
    assert(!"WorkPool::run: nested submission from inside a pool task");
    k = 1;
  }
  if (k <= 1) {
    fn(ctx, 0, n);
    return;
  }

  auto loop = std::make_shared<Loop>();
  loop->n = n;
  loop->grain = grain;
  loop->fn = fn;
  loop->ctx = ctx;

  const int extra = std::min(k - 1, kMaxWorkers);
  ensure_workers(extra);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int t = 0; t < extra; ++t) queue_.push_back(loop);
  }
  if (extra == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }

  participate(*loop);

  {
    std::unique_lock<std::mutex> lock(loop->m);
    loop->done.wait(lock, [&] {
      return loop->in_flight == 0 &&
             loop->next.load(std::memory_order_relaxed) >= loop->n;
    });
  }
  {
    // Drop tickets nobody claimed (all work already done): keeps the queue
    // from accumulating dead entries when submitters outpace free workers.
    std::lock_guard<std::mutex> lock(mu_);
    std::erase(queue_, loop);
  }
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace nbtisim::common
