#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace nbtisim::common::json {
namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::runtime_error(std::string("json: value is not ") + wanted);
}

// ---------------------------------------------------------------------------
// Parser: recursive descent over a string_view, errors carry a byte offset.

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        if (consume_literal("nan")) fail("bad literal (did you mean NaN?)");
        fail("bad literal");
      // Non-finite extension (see file comment of json.h).
      case 'I':
        if (consume_literal("Infinity")) {
          return Value(std::numeric_limits<double>::infinity());
        }
        fail("bad literal");
      case 'N':
        if (consume_literal("NaN")) {
          return Value(std::numeric_limits<double>::quiet_NaN());
        }
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    ++pos_;  // '{'
    Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      for (const auto& [k, v] : obj) {
        if (k == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      if (peek() != ':') fail("expected ':' after object key");
      ++pos_;
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array() {
    ++pos_;  // '['
    Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    ++pos_;  // opening quote
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_utf8(out, parse_codepoint()); break;
        default: fail("bad escape character");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) fail("truncated \\u escape");
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return v;
  }

  unsigned parse_codepoint() {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: pair required
      if (!consume_literal("\\u")) fail("unpaired high surrogate");
      const unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    return cp;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
      if (pos_ < text_.size() && text_[pos_] == 'I') {
        if (consume_literal("Infinity")) {
          return Value(-std::numeric_limits<double>::infinity());
        }
        fail("bad literal");
      }
    }
    auto digits = [&] {
      const std::size_t before = pos_;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
      if (pos_ == before) fail("expected digits");
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      digits();
    }
    const std::string token(text_.substr(start, pos_ - start));
    return Value(std::strtod(token.c_str(), nullptr));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Writer.

void write_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  out += '"';
}

void write_value(std::string& out, const Value& v, int indent, int depth,
                 NonFinite nf) {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (v.kind()) {
    case Value::Kind::Null: out += "null"; break;
    case Value::Kind::Bool: out += v.as_bool() ? "true" : "false"; break;
    case Value::Kind::Number: out += format_number(v.as_number(), nf); break;
    case Value::Kind::String: write_escaped(out, v.as_string()); break;
    case Value::Kind::Array: {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out += indent < 0 ? "," : ",";
        newline_pad(depth + 1);
        write_value(out, a[i], indent, depth + 1, nf);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Value::Kind::Object: {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < o.size(); ++i) {
        if (i) out += ",";
        newline_pad(depth + 1);
        write_escaped(out, o[i].first);
        out += indent < 0 ? ":" : ": ";
        write_value(out, o[i].second, indent, depth + 1, nf);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) kind_error("a bool");
  return std::get<bool>(data_);
}

double Value::as_number() const {
  if (!is_number()) kind_error("a number");
  return std::get<double>(data_);
}

const std::string& Value::as_string() const {
  if (!is_string()) kind_error("a string");
  return std::get<std::string>(data_);
}

const Array& Value::as_array() const {
  if (!is_array()) kind_error("an array");
  return std::get<Array>(data_);
}

const Object& Value::as_object() const {
  if (!is_object()) kind_error("an object");
  return std::get<Object>(data_);
}

Array& Value::as_array() {
  if (!is_array()) kind_error("an array");
  return std::get<Array>(data_);
}

Object& Value::as_object() {
  if (!is_object()) kind_error("an object");
  return std::get<Object>(data_);
}

const Value* Value::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(data_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  if (!is_object()) kind_error("an object");
  if (const Value* v = find(key)) return *v;
  throw std::runtime_error("json: missing key \"" + std::string(key) + "\"");
}

void Value::set(std::string key, Value v) {
  if (is_null()) data_ = Object{};
  if (!is_object()) kind_error("an object");
  for (auto& [k, existing] : std::get<Object>(data_)) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  std::get<Object>(data_).emplace_back(std::move(key), std::move(v));
}

double Value::number_or(std::string_view key, double def) const {
  const Value* v = find(key);
  return v == nullptr ? def : v->as_number();
}

int Value::int_or(std::string_view key, int def) const {
  const Value* v = find(key);
  return v == nullptr ? def : static_cast<int>(v->as_number());
}

bool Value::bool_or(std::string_view key, bool def) const {
  const Value* v = find(key);
  return v == nullptr ? def : v->as_bool();
}

std::string Value::string_or(std::string_view key, std::string def) const {
  const Value* v = find(key);
  return v == nullptr ? std::move(def) : v->as_string();
}

Value parse(std::string_view text) { return Parser(text).parse_document(); }

std::string format_number(double d, NonFinite nf) {
  if (std::isnan(d)) return nf == NonFinite::Null ? "null" : "NaN";
  if (std::isinf(d)) {
    if (nf == NonFinite::Null) return "null";
    return d > 0.0 ? "Infinity" : "-Infinity";
  }
  // Integral values within the exact-integer range print without a fraction.
  if (d == static_cast<double>(static_cast<long long>(d)) &&
      std::fabs(d) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(d));
  }
  // Shortest representation that round-trips to the identical double.
  char buf[32];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

std::string dump(const Value& v, int indent, NonFinite nf) {
  std::string out;
  write_value(out, v, indent, 0, nf);
  return out;
}

Value load_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("json: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  try {
    return parse(ss.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace nbtisim::common::json
