/// \file pool.h
/// \brief The process-wide deterministic work pool behind parallel_for.
///
/// Callers submit *loops* (index ranges) as tasks; the pool owns one set of
/// long-lived worker threads that all loops share. Work inside a loop is
/// still handed out from a shared atomic counter — every index (or
/// fixed-grain index range) writes only its own output slot, so results
/// never depend on which thread ran which index and stay bit-identical for
/// every thread count, exactly like the per-call-spawn implementation this
/// replaces. What changed is purely the execution vehicle:
///
///  - threads are created once (lazily, up to the largest participant count
///    ever requested) instead of per parallel_for call — the ~100 us x k
///    spawn/join cost per call was eating the parallelism of the campaign
///    scheduler and the MC/search layers (BENCH_campaign.json: 0.85x);
///  - concurrent loops — two campaigns, or a campaign plus an interactive
///    analysis — interleave on the same workers instead of multiplying
///    thread counts;
///  - a parallel_for issued from *inside* a pool task runs serially on the
///    issuing worker: inner engines share the pool's slots rather than
///    spawning their own team, fixing the k x k oversubscription of
///    scheduler workers that each started inner threads. Debug builds
///    assert that no nested submission reaches the pool.
///
/// Callers that need reductions still accumulate into per-index storage and
/// reduce serially in index order afterwards — see estimate_signal_stats
/// and AgingAnalyzer::gate_dvth.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace nbtisim::common {

/// Resolves a thread-count knob: values < 1 mean "use the hardware".
inline int resolve_threads(int n_threads) {
  if (n_threads > 0) return n_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// The shared worker pool. One instance per process (global()); loops are
/// submitted through run(), normally via the parallel_for wrappers below.
class WorkPool {
 public:
  /// Type-erased loop body: invoke the user body for every index in
  /// [begin, end).
  using LoopFn = void (*)(void* ctx, int begin, int end);

  /// The process-wide pool. Workers are started lazily by run() and joined
  /// at process exit.
  static WorkPool& global();

  /// Runs fn(ctx, i, i+grain) for every grain-aligned range of [0, n) with
  /// up to \p k concurrent participants: the calling thread plus at most
  /// k - 1 pool workers. Hand-out is one atomic counter, so results are
  /// bit-identical for every k. Blocks until every handed-out range
  /// finished; the first exception thrown by the body is rethrown here
  /// after the loop drains. Called from inside a pool task, the loop runs
  /// serially on the calling thread (debug builds assert on it first —
  /// nested submission is the oversubscription bug this pool removes).
  void run(int n, int k, int grain, LoopFn fn, void* ctx);

  /// True while the calling thread is executing a pool task — used to keep
  /// nested loops serial and to assert against nested spawning.
  static bool inside_task();

  /// Workers started so far (grows on demand, never shrinks).
  int workers() const;

  ~WorkPool();
  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

 private:
  WorkPool() = default;

  struct Loop;
  void ensure_workers(int wanted);
  void worker_main();
  static void participate(Loop& loop);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Loop>> queue_;  ///< participation tickets
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// Invokes body(i) for every i in [0, n) on up to resolve_threads(n_threads)
/// shared-pool participants, handing out \p grain consecutive indices per
/// atomic-counter pull. body must be safe to run concurrently for distinct
/// indices; invocation order is unspecified; results are bit-identical for
/// every thread count. If any invocation throws, the first exception is
/// rethrown on the calling thread after the loop drains.
template <typename Body>
void parallel_for_grain(int n, int n_threads, int grain, Body&& body) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int chunks = (n + grain - 1) / grain;
  const int k = std::min(resolve_threads(n_threads), chunks);
  if (k <= 1 || WorkPool::inside_task()) {
    // Serial: one thread requested, nothing to share — or we *are* a pool
    // task already, and inner loops must not multiply the worker count.
    for (int i = 0; i < n; ++i) body(i);
    return;
  }
  using B = std::remove_reference_t<Body>;
  WorkPool::global().run(
      n, k, grain,
      [](void* ctx, int begin, int end) {
        B& b = *static_cast<B*>(ctx);
        for (int i = begin; i < end; ++i) b(i);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(body))));
}

/// parallel_for_grain with single-index hand-out — the default used by
/// every coarse-grained loop in the codebase.
template <typename Body>
void parallel_for(int n, int n_threads, Body&& body) {
  parallel_for_grain(n, n_threads, 1, std::forward<Body>(body));
}

}  // namespace nbtisim::common
