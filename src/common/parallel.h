/// \file parallel.h
/// \brief Minimal deterministic parallel-for utility.
///
/// Deliberately work-stealing-free: work is handed out as single indices
/// from a shared atomic counter, and every index writes only its own output
/// slot, so results never depend on which thread ran which index.  Callers
/// that need reductions accumulate into per-index (or per-block) storage and
/// reduce serially in index order afterwards — that is what makes the
/// threaded signal-statistics and aging pipelines bit-identical to their
/// serial runs for every thread count (see estimate_signal_stats and
/// AgingAnalyzer::gate_dvth).
///
/// Threads are spawned per call rather than kept in a pool: every call site
/// in this codebase does milliseconds of work per invocation, so the
/// ~100 us spawn cost is noise, and no pool means no global state to tear
/// down or to trip over in forked benchmarks.
#pragma once

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace nbtisim::common {

/// Resolves a thread-count knob: values < 1 mean "use the hardware".
inline int resolve_threads(int n_threads) {
  if (n_threads > 0) return n_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Invokes body(i) for every i in [0, n) on resolve_threads(n_threads)
/// threads.  body must be safe to run concurrently for distinct indices;
/// invocation order is unspecified.  If any invocation throws, the first
/// exception is rethrown on the calling thread after all workers join.
template <typename Body>
void parallel_for(int n, int n_threads, Body&& body) {
  if (n <= 0) return;
  const int k = std::min(resolve_threads(n_threads), n);
  if (k <= 1) {
    for (int i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<int> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&]() {
    for (;;) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
        next.store(n, std::memory_order_relaxed);  // drain remaining work
        return;
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(k - 1);
  for (int t = 1; t < k; ++t) threads.emplace_back(worker);
  worker();
  for (std::thread& t : threads) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace nbtisim::common
