/// \file rng.h
/// \brief Shared RNG stream seeding for the Monte-Carlo layers.
///
/// Every Monte-Carlo loop in this codebase (signal statistics, variation,
/// lifetime, criticality, the IVC random-vector reference) derives one RNG
/// stream per sample so samples can be evaluated in any order — and hence in
/// parallel — while staying bit-identical to the serial run.  Feeding
/// `seed + stream * constant` straight into mt19937_64 gives *linearly
/// related* seeds, and the Mersenne-Twister initializer does not decorrelate
/// them well: adjacent streams start visibly correlated.  SplitMix64 is the
/// standard fix (it is the seed-scrambling stage of the JDK's SplittableRandom
/// and the xoshiro seeding recipe): a bijective avalanche mix whose outputs
/// pass BigCrush even on sequential inputs.
#pragma once

#include <cstdint>

namespace nbtisim::common {

/// SplitMix64 finalizer — one full avalanche round over a 64-bit state.
inline std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Decorrelated seed for sample/block \p stream of a run keyed by \p seed.
/// The double mix keeps (seed, stream) pairs from aliasing: stream is
/// avalanched before it touches the user seed, so nearby seeds with nearby
/// streams never collide the way `seed ^ stream` would.
inline std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream) {
  return splitmix64(seed ^ splitmix64(stream + 1));
}

}  // namespace nbtisim::common
