/// \file variation.h
/// \brief Process-variation-aware aged-delay distributions — paper Fig. 12
///        and the Section 5 discussion of [51].
///
/// With per-gate Gaussian Vth variation the circuit delay becomes a
/// distribution that shifts upward over the lifetime.  Two effects interact:
///   - a gate with lower Vth is faster but ages *more* (the oxide-field
///     factor of eq. 23 grows as Vgs - Vth grows), and vice versa;
///   - hence aging partially compensates static variation and the delay
///     variance shrinks slightly while the mean grows ([51]).
/// Each Monte-Carlo sample draws a per-gate Vth offset, scales the nominal
/// per-gate dVth by the field-factor ratio, and re-runs STA.
#pragma once

#include <cstdint>
#include <vector>

#include "aging/aging.h"

namespace nbtisim::variation {

/// Monte-Carlo knobs.
struct VariationParams {
  double sigma_vth = 0.015;  ///< per-gate Vth standard deviation [V]
  int samples = 500;
  std::uint64_t seed = 42;
  /// Worker threads for per-sample evaluation; 0 = hardware concurrency.
  /// Every sample owns an independent SplitMix64-decorrelated RNG stream,
  /// so results are bit-identical for every value — purely a speed knob
  /// (same contract as AgingConditions::n_threads).
  int n_threads = 0;
  /// Fetch the nominal dVth through the analyzer's cached dVth(t) table.
  /// The horizon is the table's back node — an exact grid point — so the
  /// values are bitwise the gate_dvth result; the point is sharing one
  /// cached table (and its stress-descriptor reuse) with the lifetime /
  /// failure consumers of the same analyzer.
  bool use_dvth_table = false;
  int table_points_per_decade = 16;  ///< table resolution when enabled
};

/// Summary statistics of a sampled delay distribution.
struct DelayDistribution {
  std::vector<double> delays;  ///< per-sample circuit delay [s]

  double mean() const;
  double stddev() const;
  /// mean - 3 sigma / mean + 3 sigma bounds (the paper's Fig. 12 markers).
  double lower3() const { return mean() - 3.0 * stddev(); }
  double upper3() const { return mean() + 3.0 * stddev(); }
  /// Empirical quantile in [0, 1].
  double quantile(double q) const;
};

/// Variation-aware aging Monte-Carlo bound to an AgingAnalyzer.
class MonteCarloAging {
 public:
  MonteCarloAging(const aging::AgingAnalyzer& analyzer, VariationParams params);

  const VariationParams& params() const { return params_; }

  /// Delay distribution of the *fresh* circuit under Vth variation.
  DelayDistribution fresh_distribution() const;

  /// Delay distribution after \p total_time seconds of aging under
  /// \p policy, with per-sample aging/variation interaction.
  DelayDistribution aged_distribution(const aging::StandbyPolicy& policy,
                                      double total_time) const;

 private:
  std::vector<double> sample_offsets(std::uint64_t stream) const;

  const aging::AgingAnalyzer* analyzer_;
  VariationParams params_;
};

}  // namespace nbtisim::variation
