#include "variation/variation.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "common/pool.h"
#include "common/rng.h"
#include "nbti/rd_model.h"

namespace nbtisim::variation {

double DelayDistribution::mean() const {
  if (delays.empty()) return 0.0;
  double sum = 0.0;
  for (double d : delays) sum += d;
  return sum / delays.size();
}

double DelayDistribution::stddev() const {
  if (delays.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double d : delays) acc += (d - m) * (d - m);
  return std::sqrt(acc / (delays.size() - 1));
}

double DelayDistribution::quantile(double q) const {
  if (delays.empty()) throw std::logic_error("quantile of empty distribution");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted = delays;
  std::sort(sorted.begin(), sorted.end());
  const double idx = q * (sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - lo;
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

MonteCarloAging::MonteCarloAging(const aging::AgingAnalyzer& analyzer,
                                 VariationParams params)
    : analyzer_(&analyzer), params_(params) {
  if (params_.samples < 2 || params_.sigma_vth < 0.0) {
    throw std::invalid_argument("MonteCarloAging: bad parameters");
  }
}

std::vector<double> MonteCarloAging::sample_offsets(std::uint64_t stream) const {
  const int n_gates = analyzer_->sta().netlist().num_gates();
  std::mt19937_64 rng(common::stream_seed(params_.seed, stream));
  std::normal_distribution<double> gauss(0.0, params_.sigma_vth);
  std::vector<double> offsets(n_gates);
  for (double& o : offsets) o = gauss(rng);
  return offsets;
}

DelayDistribution MonteCarloAging::fresh_distribution() const {
  const sta::StaEngine& sta = analyzer_->sta();
  const tech::LibraryParams& lp = sta.library().params();
  const std::vector<double> fresh =
      sta.gate_delays(analyzer_->conditions().sta_temperature);
  const double sens = lp.pmos.alpha / (lp.vdd - lp.pmos.vth0);

  // Samples are independent streams writing disjoint slots: bit-identical
  // for every n_threads.
  DelayDistribution dist;
  dist.delays.resize(params_.samples);
  common::parallel_for(params_.samples, params_.n_threads, [&](int s) {
    const std::vector<double> offsets = sample_offsets(s);
    std::vector<double> delays(fresh.size());
    for (std::size_t g = 0; g < fresh.size(); ++g) {
      delays[g] = fresh[g] * (1.0 + sens * offsets[g]);
    }
    dist.delays[s] = sta.analyze(delays).max_delay;
  });
  return dist;
}

DelayDistribution MonteCarloAging::aged_distribution(
    const aging::StandbyPolicy& policy, double total_time) const {
  const sta::StaEngine& sta = analyzer_->sta();
  const tech::LibraryParams& lp = sta.library().params();
  const nbti::RdParams& rd = analyzer_->conditions().rd;
  const std::vector<double> fresh =
      sta.gate_delays(analyzer_->conditions().sta_temperature);
  std::vector<double> dvth_nominal;
  if (params_.use_dvth_table && total_time > 0.0) {
    // The horizon is the table's back node, an exact grid sample, so these
    // are bitwise the gate_dvth values (see VariationParams).
    const std::shared_ptr<const nbti::DvthTable> table =
        analyzer_->dvth_table(policy, total_time / 1.0e3, total_time,
                              params_.table_points_per_decade);
    dvth_nominal.resize(sta.netlist().num_gates());
    table->values_at(total_time, dvth_nominal);
  } else {
    dvth_nominal = analyzer_->gate_dvth(policy, total_time);
  }
  const double sens = lp.pmos.alpha / (lp.vdd - lp.pmos.vth0);
  const double ff_nominal = nbti::field_factor(rd, lp.vdd, lp.pmos.vth0);

  DelayDistribution dist;
  dist.delays.resize(params_.samples);
  common::parallel_for(params_.samples, params_.n_threads, [&](int s) {
    const std::vector<double> offsets = sample_offsets(s);
    std::vector<double> delays(fresh.size());
    for (std::size_t g = 0; g < fresh.size(); ++g) {
      // Low-Vth samples age faster: scale nominal dVth by the field-factor
      // ratio of eq. (23) — this is the variance-compensation mechanism.
      const double ff =
          nbti::field_factor(rd, lp.vdd, lp.pmos.vth0 + offsets[g]);
      const double dvth = dvth_nominal[g] * (ff_nominal > 0.0 ? ff / ff_nominal : 1.0);
      delays[g] = fresh[g] * (1.0 + sens * (offsets[g] + dvth));
    }
    dist.delays[s] = sta.analyze(delays).max_delay;
  });
  return dist;
}

}  // namespace nbtisim::variation
