/// \file criticality.h
/// \brief Statistical criticality: the probability of each gate lying on
///        the circuit's critical path under process variation.
///
/// Deterministic STA reports one critical path; with per-gate Vth variation
/// the critical path is a random variable and *many* gates carry critical-
/// path probability mass. Criticality matters for the optimization passes:
/// dual-Vth assignment and NBTI-aware sizing should protect the gates that
/// are *likely* critical, not just the nominal path.
#pragma once

#include <cstdint>
#include <vector>

#include "aging/aging.h"

namespace nbtisim::variation {

/// Monte-Carlo criticality knobs.
struct CriticalityParams {
  double sigma_vth = 0.015;  ///< per-gate Vth variation [V]
  int samples = 300;
  std::uint64_t seed = 51;
  bool aged = false;         ///< measure criticality of the AGED circuit
                             ///< (under the worst-case standby policy)
  double total_time = 3.0e8; ///< aging horizon when aged = true
  /// Worker threads for per-sample STA; 0 = hardware concurrency.  Samples
  /// record their critical paths independently and the hit counts are
  /// reduced in sample order, so the result is bit-identical for every
  /// value (same contract as AgingConditions::n_threads).
  int n_threads = 0;
  /// Fetch the aged nominal dVth through the analyzer's cached dVth(t)
  /// table (exact back-node hit — bitwise the gate_dvth values; see
  /// VariationParams::use_dvth_table).
  bool use_dvth_table = false;
  int table_points_per_decade = 16;  ///< table resolution when enabled
};

/// Per-gate criticality result.
struct CriticalityResult {
  std::vector<double> probability;  ///< P(gate on the sample's critical path)
  int distinct_paths = 0;           ///< number of distinct critical POs seen

  /// Gates with probability above \p threshold, most critical first.
  std::vector<int> critical_set(double threshold = 0.05) const;
};

/// Estimates per-gate critical-path probability by Monte-Carlo over Vth
/// variation (and optionally aging).
/// \throws std::invalid_argument for bad parameters
CriticalityResult gate_criticality(const aging::AgingAnalyzer& analyzer,
                                   const CriticalityParams& params = {});

}  // namespace nbtisim::variation
