#include "variation/criticality.h"

#include <algorithm>
#include <random>
#include <set>
#include <stdexcept>

#include "common/pool.h"
#include "common/rng.h"
#include "nbti/rd_model.h"

namespace nbtisim::variation {

std::vector<int> CriticalityResult::critical_set(double threshold) const {
  std::vector<int> gates;
  for (int gi = 0; gi < static_cast<int>(probability.size()); ++gi) {
    if (probability[gi] >= threshold) gates.push_back(gi);
  }
  std::sort(gates.begin(), gates.end(), [this](int a, int b) {
    return probability[a] > probability[b];
  });
  return gates;
}

CriticalityResult gate_criticality(const aging::AgingAnalyzer& analyzer,
                                   const CriticalityParams& params) {
  if (params.samples < 2 || params.sigma_vth < 0.0 || params.total_time < 0.0) {
    throw std::invalid_argument("gate_criticality: bad parameters");
  }
  const sta::StaEngine& sta = analyzer.sta();
  const netlist::Netlist& nl = sta.netlist();
  const tech::LibraryParams& lp = sta.library().params();
  const nbti::RdParams& rd = analyzer.conditions().rd;

  const std::vector<double> fresh =
      sta.gate_delays(analyzer.conditions().sta_temperature);
  std::vector<double> dvth_nominal;
  if (params.aged) {
    if (params.use_dvth_table && params.total_time > 0.0) {
      // Back-node hit: bitwise the gate_dvth values, but shares the
      // analyzer's cached table with the other MC consumers.
      const std::shared_ptr<const nbti::DvthTable> table = analyzer.dvth_table(
          aging::StandbyPolicy::all_stressed(), params.total_time / 1.0e3,
          params.total_time, params.table_points_per_decade);
      dvth_nominal.resize(nl.num_gates());
      table->values_at(params.total_time, dvth_nominal);
    } else {
      dvth_nominal = analyzer.gate_dvth(aging::StandbyPolicy::all_stressed(),
                                        params.total_time);
    }
  }
  const double sens = lp.pmos.alpha / (lp.vdd - lp.pmos.vth0);
  const double ff_nominal = nbti::field_factor(rd, lp.vdd, lp.pmos.vth0);

  CriticalityResult result;
  std::vector<double> hits(nl.num_gates(), 0.0);
  std::set<netlist::NodeId> critical_pos;

  // Per-sample critical paths land in disjoint slots; the hit-count and
  // distinct-PO reductions then run serially in sample order, making the
  // result bit-identical for every n_threads.
  std::vector<std::vector<netlist::NodeId>> sample_paths(params.samples);
  common::parallel_for(params.samples, params.n_threads, [&](int s) {
    std::mt19937_64 rng(common::stream_seed(params.seed, s));
    std::normal_distribution<double> gauss(0.0, params.sigma_vth);
    std::vector<double> delays(nl.num_gates());
    for (int gi = 0; gi < nl.num_gates(); ++gi) {
      const double offset = gauss(rng);
      double dvth = 0.0;
      if (params.aged) {
        const double ff =
            nbti::field_factor(rd, lp.vdd, lp.pmos.vth0 + offset);
        dvth = dvth_nominal[gi] * (ff_nominal > 0.0 ? ff / ff_nominal : 1.0);
      }
      delays[gi] = fresh[gi] * (1.0 + sens * (offset + dvth));
    }
    sample_paths[s] = sta.analyze(delays).critical_path;
  });
  for (const std::vector<netlist::NodeId>& path : sample_paths) {
    for (netlist::NodeId node : path) {
      const int gi = nl.driver_gate(node);
      if (gi >= 0) hits[gi] += 1.0;
    }
    if (!path.empty()) critical_pos.insert(path.back());
  }

  result.probability.resize(nl.num_gates());
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    result.probability[gi] = hits[gi] / params.samples;
  }
  result.distinct_paths = static_cast<int>(critical_pos.size());
  return result;
}

}  // namespace nbtisim::variation
