#include "variation/criticality.h"

#include <algorithm>
#include <random>
#include <set>
#include <stdexcept>

#include "nbti/rd_model.h"

namespace nbtisim::variation {

std::vector<int> CriticalityResult::critical_set(double threshold) const {
  std::vector<int> gates;
  for (int gi = 0; gi < static_cast<int>(probability.size()); ++gi) {
    if (probability[gi] >= threshold) gates.push_back(gi);
  }
  std::sort(gates.begin(), gates.end(), [this](int a, int b) {
    return probability[a] > probability[b];
  });
  return gates;
}

CriticalityResult gate_criticality(const aging::AgingAnalyzer& analyzer,
                                   const CriticalityParams& params) {
  if (params.samples < 2 || params.sigma_vth < 0.0 || params.total_time < 0.0) {
    throw std::invalid_argument("gate_criticality: bad parameters");
  }
  const sta::StaEngine& sta = analyzer.sta();
  const netlist::Netlist& nl = sta.netlist();
  const tech::LibraryParams& lp = sta.library().params();
  const nbti::RdParams& rd = analyzer.conditions().rd;

  const std::vector<double> fresh =
      sta.gate_delays(analyzer.conditions().sta_temperature);
  std::vector<double> dvth_nominal;
  if (params.aged) {
    dvth_nominal = analyzer.gate_dvth(aging::StandbyPolicy::all_stressed(),
                                      params.total_time);
  }
  const double sens = lp.pmos.alpha / (lp.vdd - lp.pmos.vth0);
  const double ff_nominal = nbti::field_factor(rd, lp.vdd, lp.pmos.vth0);

  CriticalityResult result;
  std::vector<double> hits(nl.num_gates(), 0.0);
  std::set<netlist::NodeId> critical_pos;

  std::vector<double> delays(nl.num_gates());
  for (int s = 0; s < params.samples; ++s) {
    std::mt19937_64 rng(params.seed + s * 0x9e3779b97f4a7c15ull);
    std::normal_distribution<double> gauss(0.0, params.sigma_vth);
    for (int gi = 0; gi < nl.num_gates(); ++gi) {
      const double offset = gauss(rng);
      double dvth = 0.0;
      if (params.aged) {
        const double ff =
            nbti::field_factor(rd, lp.vdd, lp.pmos.vth0 + offset);
        dvth = dvth_nominal[gi] * (ff_nominal > 0.0 ? ff / ff_nominal : 1.0);
      }
      delays[gi] = fresh[gi] * (1.0 + sens * (offset + dvth));
    }
    const sta::TimingResult timing = sta.analyze(delays);
    for (netlist::NodeId node : timing.critical_path) {
      const int gi = nl.driver_gate(node);
      if (gi >= 0) hits[gi] += 1.0;
    }
    if (!timing.critical_path.empty()) {
      critical_pos.insert(timing.critical_path.back());
    }
  }

  result.probability.resize(nl.num_gates());
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    result.probability[gi] = hits[gi] / params.samples;
  }
  result.distinct_paths = static_cast<int>(critical_pos.size());
  return result;
}

}  // namespace nbtisim::variation
