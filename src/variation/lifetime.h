/// \file lifetime.h
/// \brief Lifetime distributions: time-to-timing-failure under process
///        variation and NBTI aging — the inverse question of Fig. 12.
///
/// Fig. 12 asks "what is the delay distribution at time t"; a designer asks
/// "when does each die stop meeting its spec". Per Monte-Carlo sample the
/// aged delay is monotone in time, so the failure time (aged delay crossing
/// spec = fresh nominal * (1 + margin)) is found by bisection on a
/// precomputed nominal dVth(t) grid, scaled per sample by the oxide-field
/// factor like the Fig. 12 machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "aging/aging.h"

namespace nbtisim::variation {

/// Lifetime-analysis knobs.
struct LifetimeParams {
  double spec_margin_percent = 5.0;  ///< failure = delay above fresh nominal
                                     ///< by more than this margin
  double sigma_vth = 0.012;          ///< per-gate Vth variation [V]
  int samples = 200;
  std::uint64_t seed = 42;
  double max_time = 9.5e8;           ///< analysis horizon (~30 years) [s]
  int time_grid_points = 40;         ///< nominal dVth(t) grid resolution
  /// Worker threads for per-sample bisection; 0 = hardware concurrency.
  /// Per-sample SplitMix64 streams make the result bit-identical for every
  /// value (same contract as AgingConditions::n_threads).
  int n_threads = 0;
  /// Sample the nominal dVth(t) grid from the analyzer's cached interpolated
  /// table (AgingAnalyzer::dvth_table) instead of one exact gate_dvth
  /// evaluation per grid point.  Interpolation error is bounded by
  /// nbti::DvthTable::rel_error_bound at table_points_per_decade; the
  /// differential suite pins the resulting lifetime drift.
  bool use_dvth_table = false;
  int table_points_per_decade = 16;  ///< table resolution when enabled
};

/// Per-sample failure times and summary statistics.
struct LifetimeResult {
  std::vector<double> lifetimes;  ///< per-sample failure time [s];
                                  ///< clipped to max_time for survivors
  double max_time = 0.0;          ///< the horizon used

  /// Fraction of samples that fail within \p t seconds.
  double failure_fraction_at(double t) const;
  /// Empirical lifetime quantile in [0,1] (clipped samples count as
  /// max_time).
  double quantile(double q) const;
  /// Fraction of samples still meeting spec at the horizon.
  double survivor_fraction() const { return 1.0 - failure_fraction_at(max_time * (1.0 - 1e-9)); }
};

/// Computes the lifetime distribution of \p analyzer's circuit under
/// \p policy.
/// \throws std::invalid_argument for bad parameters
LifetimeResult lifetime_distribution(const aging::AgingAnalyzer& analyzer,
                                     const aging::StandbyPolicy& policy,
                                     const LifetimeParams& params = {});

}  // namespace nbtisim::variation
