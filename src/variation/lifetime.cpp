#include "variation/lifetime.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

#include "common/pool.h"
#include "common/rng.h"
#include "nbti/rd_model.h"

namespace nbtisim::variation {

double LifetimeResult::failure_fraction_at(double t) const {
  if (lifetimes.empty()) return 0.0;
  int failed = 0;
  for (double l : lifetimes) failed += l <= t ? 1 : 0;
  return static_cast<double>(failed) / lifetimes.size();
}

double LifetimeResult::quantile(double q) const {
  if (lifetimes.empty()) throw std::logic_error("quantile of empty result");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: bad q");
  std::vector<double> sorted = lifetimes;
  std::sort(sorted.begin(), sorted.end());
  const double idx = q * (sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = idx - lo;
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

LifetimeResult lifetime_distribution(const aging::AgingAnalyzer& analyzer,
                                     const aging::StandbyPolicy& policy,
                                     const LifetimeParams& params) {
  if (params.spec_margin_percent <= 0.0 || params.samples < 2 ||
      params.sigma_vth < 0.0 || params.max_time <= 0.0 ||
      params.time_grid_points < 4 ||
      (params.use_dvth_table && params.table_points_per_decade < 1)) {
    throw std::invalid_argument("lifetime_distribution: bad parameters");
  }
  const sta::StaEngine& sta = analyzer.sta();
  const netlist::Netlist& nl = sta.netlist();
  const tech::LibraryParams& lp = sta.library().params();
  const nbti::RdParams& rd = analyzer.conditions().rd;

  const std::vector<double> fresh =
      sta.gate_delays(analyzer.conditions().sta_temperature);
  std::vector<double> nominal_scratch;
  const double nominal = sta.critical_delay(fresh, nominal_scratch);
  const double spec = nominal * (1.0 + params.spec_margin_percent / 100.0);
  const double sens = lp.pmos.alpha / (lp.vdd - lp.pmos.vth0);
  const double ff_nominal = nbti::field_factor(rd, lp.vdd, lp.pmos.vth0);

  // Nominal per-gate dVth on a geometric time grid.
  const int n_grid = params.time_grid_points;
  std::vector<double> grid_time(n_grid);
  std::vector<std::vector<double>> grid_dvth(n_grid);
  const double t_min = params.max_time / std::pow(2.0, n_grid - 1.0) * 2.0;
  const double log_step = std::log(params.max_time / t_min) / (n_grid - 1);
  if (params.use_dvth_table) {
    // Interpolated substrate: one cached table build covers every grid
    // point (and every later call sharing the analyzer), replacing n_grid
    // exact device-model sweeps with monotone linear interpolation.
    const std::shared_ptr<const nbti::DvthTable> table = analyzer.dvth_table(
        policy, t_min, params.max_time, params.table_points_per_decade);
    for (int k = 0; k < n_grid; ++k) {
      grid_time[k] = t_min * std::exp(log_step * k);
      grid_dvth[k].resize(nl.num_gates());
      table->values_at(grid_time[k], grid_dvth[k]);
    }
  } else {
    for (int k = 0; k < n_grid; ++k) {
      grid_time[k] = t_min * std::exp(log_step * k);
      grid_dvth[k] = analyzer.gate_dvth(policy, grid_time[k]);
    }
  }

  LifetimeResult result;
  result.max_time = params.max_time;
  result.lifetimes.resize(params.samples);

  // Samples are independent streams writing disjoint slots: bit-identical
  // for every n_threads.
  common::parallel_for(params.samples, params.n_threads, [&](int s) {
    std::mt19937_64 rng(common::stream_seed(params.seed, s));
    std::normal_distribution<double> gauss(0.0, params.sigma_vth);
    std::vector<double> offsets(nl.num_gates());
    std::vector<double> ff_scale(nl.num_gates());
    for (int gi = 0; gi < nl.num_gates(); ++gi) {
      offsets[gi] = gauss(rng);
      const double ff =
          nbti::field_factor(rd, lp.vdd, lp.pmos.vth0 + offsets[gi]);
      ff_scale[gi] = ff_nominal > 0.0 ? ff / ff_nominal : 1.0;
    }

    // Memoized per grid point: the bisection endpoints are re-read during
    // the final interpolation, and each STA pass costs a full circuit walk.
    std::vector<double> delay_cache(n_grid, -1.0);
    std::vector<double> delays(nl.num_gates());
    std::vector<double> arrival_scratch;
    auto delay_at_grid = [&](int k) {
      if (delay_cache[k] >= 0.0) return delay_cache[k];
      for (int gi = 0; gi < nl.num_gates(); ++gi) {
        const double dvth = grid_dvth[k][gi] * ff_scale[gi];
        delays[gi] = fresh[gi] * (1.0 + sens * (offsets[gi] + dvth));
      }
      // Arrival-only STA: same max_delay bitwise, no TimingResult
      // allocation inside the per-sample bisection loop.
      return delay_cache[k] = sta.critical_delay(delays, arrival_scratch);
    };

    // Bisection over the grid (delay is monotone in time).
    if (delay_at_grid(n_grid - 1) <= spec) {
      result.lifetimes[s] = params.max_time;  // survivor
      return;
    }
    if (delay_at_grid(0) > spec) {
      result.lifetimes[s] = grid_time[0];  // dead (nearly) on arrival
      return;
    }
    int lo = 0, hi = n_grid - 1;
    while (hi - lo > 1) {
      const int mid = (lo + hi) / 2;
      if (delay_at_grid(mid) > spec) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    // Log-linear interpolation between the bracketing grid points.
    const double d_lo = delay_at_grid(lo);
    const double d_hi = delay_at_grid(hi);
    const double frac = d_hi > d_lo ? (spec - d_lo) / (d_hi - d_lo) : 0.5;
    result.lifetimes[s] =
        grid_time[lo] * std::pow(grid_time[hi] / grid_time[lo], frac);
  });
  return result;
}

}  // namespace nbtisim::variation
