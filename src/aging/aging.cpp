#include "aging/aging.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/pool.h"

namespace nbtisim::aging {

namespace {

// Bound on cached per-policy descriptor sets; oldest entries are evicted
// first. Sweeps that visit many distinct policies (IVC candidate search)
// stay within this working set because they revisit each candidate rarely.
constexpr std::size_t kMaxCachedPolicies = 16;

// Bound on cached dVth(t) tables (policy x range x resolution keys).
constexpr std::size_t kMaxCachedTables = 8;

// Gates handed to one RdKernel sweep per work-pool index: large enough that
// the packed inner loop amortizes its setup, small enough to keep the
// parallel decomposition fine-grained.  Chunk boundaries do not affect
// results (each gate writes only its own slot).
constexpr int kKernelGateChunk = 64;

std::vector<double> resolve_input_sp(const netlist::Netlist& nl,
                                     const AgingConditions& cond) {
  if (cond.input_sp.empty()) {
    return std::vector<double>(nl.num_inputs(), 0.5);
  }
  if (static_cast<int>(cond.input_sp.size()) != nl.num_inputs()) {
    throw std::invalid_argument("AgingAnalyzer: input_sp size mismatch");
  }
  return cond.input_sp;
}

}  // namespace

StandbyPolicy StandbyPolicy::rotating(std::vector<std::vector<bool>> vectors) {
  if (vectors.empty()) {
    throw std::invalid_argument("StandbyPolicy::rotating: no vectors");
  }
  StandbyPolicy p;
  p.kind = Kind::Rotating;
  p.rotation = std::move(vectors);
  return p;
}

AgingAnalyzer::AgingAnalyzer(const netlist::Netlist& nl,
                             const tech::Library& lib, AgingConditions cond)
    : nl_(&nl), lib_(&lib), cond_(std::move(cond)), sta_(nl, lib),
      stats_(sim::estimate_signal_stats(nl, resolve_input_sp(nl, cond_),
                                        cond_.sp_vectors, cond_.seed,
                                        cond_.n_threads)),
      fresh_delays_(sta_.gate_delays(cond_.sta_temperature, {},
                                     cond_.gate_vth_offsets)) {
  if (!cond_.gate_vth_offsets.empty() &&
      static_cast<int>(cond_.gate_vth_offsets.size()) != nl.num_gates()) {
    throw std::invalid_argument(
        "AgingAnalyzer: gate_vth_offsets size mismatch");
  }
  if (!cond_.gate_delay_scale.empty()) {
    if (static_cast<int>(cond_.gate_delay_scale.size()) != nl.num_gates()) {
      throw std::invalid_argument(
          "AgingAnalyzer: gate_delay_scale size mismatch");
    }
    for (int gi = 0; gi < nl.num_gates(); ++gi) {
      if (cond_.gate_delay_scale[gi] < 1.0) {
        throw std::invalid_argument(
            "AgingAnalyzer: gate delay scale below 1");
      }
      fresh_delays_[gi] *= cond_.gate_delay_scale[gi];
    }
  }
  fresh_critical_delay_ = sta_.analyze(fresh_delays_).max_delay;
}

std::shared_ptr<const AgingAnalyzer::StressDescriptors>
AgingAnalyzer::stress_descriptors(const StandbyPolicy& policy) const {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    for (const auto& entry : stress_cache_) {
      if (entry->policy == policy) return entry;
    }
  }

  // Build phase — everything that does not depend on the evaluation
  // horizon: standby-vector simulation, signal-probability propagation
  // through each cell, and the per-PMOS stress descriptors.
  stress_builds_.fetch_add(1, std::memory_order_relaxed);
  const double vdd = lib_->params().vdd;

  // Standby net values (Vector policy: one set; Rotating: one per member).
  std::vector<std::vector<bool>> standby_values;
  if (policy.kind == StandbyPolicy::Kind::Vector) {
    if (static_cast<int>(policy.vector.size()) != nl_->num_inputs()) {
      throw std::invalid_argument("StandbyPolicy vector: PI count mismatch");
    }
    standby_values.push_back(
        sim::Simulator(*nl_).evaluate_forced(policy.vector, policy.forces));
  } else if (policy.kind == StandbyPolicy::Kind::Rotating) {
    if (policy.rotation.empty()) {
      throw std::invalid_argument("StandbyPolicy rotating: no vectors");
    }
    const sim::Simulator simulator(*nl_);
    for (const std::vector<bool>& v : policy.rotation) {
      if (static_cast<int>(v.size()) != nl_->num_inputs()) {
        throw std::invalid_argument("StandbyPolicy rotating: PI count mismatch");
      }
      standby_values.push_back(simulator.evaluate_forced(v, policy.forces));
    }
  }

  auto desc = std::make_shared<StressDescriptors>();
  desc->policy = policy;
  desc->gate_begin.resize(nl_->num_gates() + 1, 0);
  for (int gi = 0; gi < nl_->num_gates(); ++gi) {
    const tech::Cell& cell = lib_->cell(sta_.gate_cell(gi));
    desc->gate_begin[gi + 1] =
        desc->gate_begin[gi] + static_cast<int>(cell.pmos_devices().size());
  }
  desc->devices.resize(desc->gate_begin.back());
  desc->contexts.resize(desc->gate_begin.back());

  const nbti::DeviceAging model(cond_.rd, cond_.method);
  common::parallel_for(nl_->num_gates(), cond_.n_threads, [&](int gi) {
    const netlist::Gate& g = nl_->gate(gi);
    const tech::Cell& cell = lib_->cell(sta_.gate_cell(gi));

    // Active-mode signal probabilities of the cell's internal signals.
    std::vector<double> pin_sp;
    pin_sp.reserve(g.fanins.size());
    for (netlist::NodeId in : g.fanins) pin_sp.push_back(stats_.probability[in]);
    const std::vector<double> sp = cell.signal_probabilities(pin_sp);

    // Standby-mode values of the cell's internal signals, one per standby
    // vector (empty for the bounding policies).
    std::vector<std::vector<bool>> standby_sig;
    for (const std::vector<bool>& values : standby_values) {
      std::uint32_t bits = 0;
      for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
        bits |= values[g.fanins[pin]] ? (1u << pin) : 0u;
      }
      standby_sig.push_back(cell.signal_values(bits));
    }

    int slot = desc->gate_begin[gi];
    for (const tech::PmosDevice& pm : cell.pmos_devices()) {
      nbti::DeviceStress stress;
      stress.active_stress_prob = 1.0 - sp[pm.gate_signal];
      stress.vgs = vdd;
      stress.vth0 = lib_->params().pmos.vth0 +
                    (cond_.gate_vth_offsets.empty()
                         ? 0.0
                         : cond_.gate_vth_offsets[gi]);
      switch (policy.kind) {
        case StandbyPolicy::Kind::AllStressed:
          stress.standby = nbti::StandbyMode::Stressed;
          break;
        case StandbyPolicy::Kind::AllRelaxed:
          stress.standby = nbti::StandbyMode::Relaxed;
          break;
        case StandbyPolicy::Kind::Vector:
        case StandbyPolicy::Kind::Rotating: {
          int stressed = 0;
          for (const std::vector<bool>& sig : standby_sig) {
            stressed += sig[pm.gate_signal] ? 0 : 1;
          }
          stress.standby_stress_fraction =
              static_cast<double>(stressed) / standby_sig.size();
          break;
        }
      }
      desc->devices[slot] = stress;
      desc->contexts[slot] = model.make_context(stress, cond_.schedule);
      ++slot;
    }
  });
  if (cond_.use_soa_kernel) {
    desc->kernel = nbti::RdKernel(model, desc->contexts);
  }

  std::lock_guard<std::mutex> lock(cache_mutex_);
  // Another thread may have built the same policy concurrently; reuse its
  // entry so callers share one descriptor set.
  for (const auto& entry : stress_cache_) {
    if (entry->policy == policy) return entry;
  }
  if (stress_cache_.size() >= kMaxCachedPolicies) {
    stress_cache_.erase(stress_cache_.begin());
  }
  stress_cache_.push_back(desc);
  return desc;
}

void AgingAnalyzer::invalidate_stress_cache() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  stress_cache_.clear();
  table_cache_.clear();
}

std::shared_ptr<const nbti::DvthTable> AgingAnalyzer::dvth_table(
    const StandbyPolicy& policy, double t_lo, double t_hi,
    int points_per_decade) const {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    for (const TableEntry& e : table_cache_) {
      if (e.t_lo == t_lo && e.t_hi == t_hi &&
          e.points_per_decade == points_per_decade && e.policy == policy) {
        return e.table;
      }
    }
  }

  const std::vector<double> times =
      nbti::DvthTable::geometric_grid(t_lo, t_hi, points_per_decade);
  std::vector<std::vector<double>> rows(times.size());
  for (std::size_t k = 0; k < times.size(); ++k) {
    rows[k] = gate_dvth(policy, times[k]);
  }
  auto table =
      std::make_shared<const nbti::DvthTable>(times, rows);

  std::lock_guard<std::mutex> lock(cache_mutex_);
  for (const TableEntry& e : table_cache_) {
    if (e.t_lo == t_lo && e.t_hi == t_hi &&
        e.points_per_decade == points_per_decade && e.policy == policy) {
      return e.table;  // concurrent build won the race; share its entry
    }
  }
  if (table_cache_.size() >= kMaxCachedTables) {
    table_cache_.erase(table_cache_.begin());
  }
  table_cache_.push_back({policy, t_lo, t_hi, points_per_decade, table});
  return table;
}

std::vector<double> AgingAnalyzer::gate_dvth(
    const StandbyPolicy& policy, std::optional<double> total_time) const {
  const double horizon = total_time.value_or(cond_.total_time);
  const std::shared_ptr<const StressDescriptors> desc =
      stress_descriptors(policy);
  const nbti::DeviceAging model(cond_.rd, cond_.method);

  // Evaluation phase: embarrassingly parallel over gates; each gate writes
  // only its own slot, so the result is identical for every thread count.
  std::vector<double> dvth(nl_->num_gates(), 0.0);
  if (cond_.use_soa_kernel) {
    // Gate chunks wide enough for the kernel's packed inner loop; outputs
    // are per-gate slots either way, so this is bit-identical to the scalar
    // loop below at every thread count and chunk size.  Chunks own disjoint
    // device ranges, so they can share the two device-wide work buffers —
    // thread-local so horizon sweeps (degradation series, table builds,
    // crossing-time scans) pay no per-call allocation.  Each calling thread
    // owns its pair; pool workers only write the disjoint slices they are
    // handed.
    static thread_local std::vector<double> dev_out;
    static thread_local std::vector<double> dev_scratch;
    if (dev_out.size() < desc->contexts.size()) {
      dev_out.resize(desc->contexts.size());
      dev_scratch.resize(desc->contexts.size());
    }
    // Lambdas do not capture thread_locals — a pool worker would see its own
    // (empty) instances — so hand the workers spans bound on this thread.
    const std::span<double> dev_span(dev_out);
    const std::span<double> scratch_span(dev_scratch);
    const int n_chunks =
        (nl_->num_gates() + kKernelGateChunk - 1) / kKernelGateChunk;
    common::parallel_for(n_chunks, cond_.n_threads, [&](int c) {
      const int g_lo = c * kKernelGateChunk;
      const int g_hi = std::min(nl_->num_gates(), g_lo + kKernelGateChunk);
      desc->kernel.worst_per_gate(horizon, desc->gate_begin, g_lo, g_hi,
                                  dvth, dev_span, scratch_span);
    });
    return dvth;
  }
  common::parallel_for(nl_->num_gates(), cond_.n_threads, [&](int gi) {
    double worst = 0.0;
    for (int i = desc->gate_begin[gi]; i < desc->gate_begin[gi + 1]; ++i) {
      worst = std::max(worst, model.delta_vth(desc->contexts[i], horizon));
    }
    dvth[gi] = worst;
  });
  return dvth;
}

std::vector<double> AgingAnalyzer::aged_gate_delays(
    std::span<const double> dvth) const {
  if (static_cast<int>(dvth.size()) != nl_->num_gates()) {
    throw std::invalid_argument("aged_gate_delays: dvth size mismatch");
  }
  if (!cond_.taylor_delay) {
    std::vector<double> delays = sta_.gate_delays(cond_.sta_temperature, dvth,
                                                  cond_.gate_vth_offsets);
    if (!cond_.gate_delay_scale.empty()) {
      for (int gi = 0; gi < nl_->num_gates(); ++gi) {
        delays[gi] *= cond_.gate_delay_scale[gi];
      }
    }
    return delays;
  }
  // Paper eqs. (21)-(22): delta_d = alpha * dVth / (Vg - Vth0) * d.
  const double vdd = lib_->params().vdd;
  const double vth0 = lib_->params().pmos.vth0;
  const double alpha = lib_->params().pmos.alpha;
  std::vector<double> delays(fresh_delays_);
  for (int gi = 0; gi < nl_->num_gates(); ++gi) {
    const double offset =
        cond_.gate_vth_offsets.empty() ? 0.0 : cond_.gate_vth_offsets[gi];
    delays[gi] *= 1.0 + alpha * dvth[gi] / (vdd - vth0 - offset);
  }
  return delays;
}

double AgingAnalyzer::aged_critical_delay(
    const StandbyPolicy& policy, std::optional<double> total_time) const {
  // critical_delay skips the arrival copy / predecessor bookkeeping /
  // path walk that analyze() pays — this is the hot query of the Pareto,
  // sleep-transistor and lifetime sweeps, which never read the path.
  std::vector<double> arrival_scratch;
  return sta_.critical_delay(aged_gate_delays(gate_dvth(policy, total_time)),
                             arrival_scratch);
}

DegradationReport AgingAnalyzer::analyze(
    const StandbyPolicy& policy, std::optional<double> total_time) const {
  DegradationReport rep;
  rep.gate_dvth = gate_dvth(policy, total_time);
  rep.fresh_delay = fresh_critical_delay_;
  rep.aged_delay = sta_.analyze(aged_gate_delays(rep.gate_dvth)).max_delay;
  return rep;
}

DegradationReport AgingAnalyzer::analyze_slew_aware(
    const StandbyPolicy& policy, std::optional<double> total_time) const {
  const sta::SlewStaEngine slew(*nl_, *lib_);
  DegradationReport rep;
  rep.gate_dvth = gate_dvth(policy, total_time);
  rep.fresh_delay =
      slew.analyze(cond_.sta_temperature, {}, cond_.gate_vth_offsets)
          .max_delay;
  rep.aged_delay = slew.analyze(cond_.sta_temperature, rep.gate_dvth,
                                cond_.gate_vth_offsets)
                       .max_delay;
  return rep;
}

std::vector<std::pair<double, double>> AgingAnalyzer::degradation_series(
    const StandbyPolicy& policy, double t_min, double t_max,
    int n_points) const {
  if (n_points < 2 || t_min <= 0.0 || t_max <= t_min) {
    throw std::invalid_argument("degradation_series: bad sampling spec");
  }
  std::vector<std::pair<double, double>> series;
  series.reserve(n_points);
  const double log_step = std::log(t_max / t_min) / (n_points - 1);
  // The first aged_critical_delay call builds (and caches) the policy's
  // stress descriptors; every further horizon reuses them, and the fresh
  // baseline is the precomputed fresh_critical_delay().
  const double fresh = fresh_critical_delay_;
  for (int i = 0; i < n_points; ++i) {
    const double t = t_min * std::exp(log_step * i);
    const double aged = aged_critical_delay(policy, t);
    series.emplace_back(t,
                        fresh > 0.0 ? 100.0 * (aged - fresh) / fresh : 0.0);
  }
  return series;
}

}  // namespace nbtisim::aging
