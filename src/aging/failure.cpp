#include "aging/failure.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "common/pool.h"
#include "tech/units.h"

namespace nbtisim::aging {

const double kNeverFails = std::numeric_limits<double>::infinity();

double crossing_time(std::span<const double> times,
                     std::span<const double> values, double threshold) {
  if (threshold <= 0.0) {
    throw std::invalid_argument("crossing_time: non-positive threshold");
  }
  if (times.empty() || times.size() != values.size()) {
    throw std::invalid_argument("crossing_time: empty or mismatched series");
  }
  double t_prev = 0.0;
  double v_prev = 0.0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    if (values[i] >= threshold) {
      // Linear interpolation inside the crossing segment; a flat segment
      // already at the threshold crosses at its right edge.
      if (values[i] <= v_prev) return times[i];
      return t_prev +
             (times[i] - t_prev) * (threshold - v_prev) / (values[i] - v_prev);
    }
    t_prev = times[i];
    v_prev = values[i];
  }
  return kNeverFails;
}

double FailureReport::system_failure_at(double t_years) const {
  if (t_years <= 0.0) return 0.0;
  return 1.0 - std::exp(-std::pow(t_years, weibull_beta) * lambda);
}

namespace {

/// Geometric time grid over (0, max_years] in seconds, spanning three
/// decades so early crossings interpolate from dense samples.
std::vector<double> time_grid(double max_years, int n_points) {
  const double t_max = max_years * kSecondsPerYear;
  const double t_min = t_max / 1.0e3;
  const double ratio = std::pow(t_max / t_min,
                                1.0 / static_cast<double>(n_points - 1));
  std::vector<double> t(n_points);
  for (int i = 0; i < n_points; ++i) {
    t[i] = t_min * std::pow(ratio, static_cast<double>(i));
  }
  t.back() = t_max;  // land exactly on the window edge
  return t;
}

/// Per-gate output load with unit size factors — the same accumulation
/// SizedTiming uses (fixed wire caps + sink input caps + PO load) [F].
std::vector<double> gate_loads(const AgingAnalyzer& analyzer) {
  const sta::StaEngine& sta = analyzer.sta();
  const tech::Library& lib = sta.library();
  const netlist::Netlist& nl = sta.netlist();
  const double wire = lib.params().wire_cap_per_fanout;
  const double po_load = lib.input_cap(lib.find("BUF"), 0) + wire;

  std::vector<double> loads(nl.num_gates(), 0.0);
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    const netlist::NodeId out = nl.gate(gi).output;
    double load = 0.0;
    for (int sink : nl.fanout_gates(out)) {
      const netlist::Gate& sg = nl.gate(sink);
      for (std::size_t pin = 0; pin < sg.fanins.size(); ++pin) {
        if (sg.fanins[pin] == out) {
          load += wire +
                  lib.input_cap(sta.gate_cell(sink), static_cast<int>(pin));
        }
      }
    }
    if (std::find(nl.outputs().begin(), nl.outputs().end(), out) !=
        nl.outputs().end()) {
      load += po_load;
    }
    loads[gi] = load;
  }
  return loads;
}

/// Weibull-aggregates a set of unit MTTFs: returns sum of eta^-beta over
/// the finite entries (each unit's scale eta = mttf / gamma).
double weibull_lambda(const std::vector<double>& mttf_years, double beta,
                      double gamma) {
  double lambda = 0.0;
  for (double m : mttf_years) {
    if (std::isfinite(m) && m > 0.0) lambda += std::pow(gamma / m, beta);
  }
  return lambda;
}

double lambda_to_mttf(double lambda, double beta, double gamma) {
  if (lambda <= 0.0) return kNeverFails;
  return std::pow(lambda, -1.0 / beta) * gamma;
}

}  // namespace

FailureReport analyze_failure(const AgingAnalyzer& analyzer,
                              const StandbyPolicy& policy,
                              const FailureParams& params) {
  if (params.fail_dvth <= 0.0 || params.max_years <= 0.0 ||
      params.weibull_beta <= 0.0) {
    throw std::invalid_argument(
        "analyze_failure: non-positive fail_dvth/max_years/weibull_beta");
  }
  if (params.time_points < 2) {
    throw std::invalid_argument("analyze_failure: time_points < 2");
  }
  if (params.use_dvth_table && params.table_points_per_decade < 1) {
    throw std::invalid_argument(
        "analyze_failure: table_points_per_decade < 1");
  }

  const netlist::Netlist& nl = analyzer.sta().netlist();
  const tech::Library& lib = analyzer.sta().library();
  const AgingConditions& cond = analyzer.conditions();
  const sim::SignalStats& stats = analyzer.signal_stats();
  const int n_gates = nl.num_gates();
  const double vdd = lib.params().vdd;
  const double period = cond.schedule.period();
  const double active_fraction =
      period > 0.0 ? cond.schedule.t_active / period : 0.0;

  const std::vector<double> t_sec = time_grid(params.max_years,
                                              params.time_points);
  const int n_points = static_cast<int>(t_sec.size());

  FailureReport rep;
  rep.weibull_beta = params.weibull_beta;

  // --- Wear-out mechanisms: dVth(t) series -> threshold crossing. -------

  if (params.enable_nbti) {
    // One gate_dvth call per grid point: the analyzer's cached stress
    // descriptors make each horizon O(1) per device.  With use_dvth_table
    // the exact sweeps collapse into one cached table build (shared with
    // every other consumer of the analyzer) sampled at the grid times.
    std::vector<std::vector<double>> series(n_points);
    if (params.use_dvth_table) {
      const std::shared_ptr<const nbti::DvthTable> table =
          analyzer.dvth_table(policy, t_sec.front(), t_sec.back(),
                              params.table_points_per_decade);
      for (int i = 0; i < n_points; ++i) {
        series[i].resize(n_gates);
        table->values_at(t_sec[i], series[i]);
      }
    } else {
      for (int i = 0; i < n_points; ++i) {
        series[i] = analyzer.gate_dvth(policy, t_sec[i]);
      }
    }
    MechanismMttf m;
    m.name = "nbti";
    m.gate_mttf.assign(n_gates, kNeverFails);
    common::parallel_for(n_gates, params.n_threads, [&](int gi) {
      std::vector<double> v(n_points);
      for (int i = 0; i < n_points; ++i) v[i] = series[i][gi];
      m.gate_mttf[gi] =
          crossing_time(t_sec, v, params.fail_dvth) / kSecondsPerYear;
    });
    rep.mechanisms.push_back(std::move(m));
  }

  if (params.multi.enable_pbti) {
    const PbtiStressSet pbti = build_pbti_stress(analyzer, policy);
    const nbti::DeviceAging model(cond.rd, cond.method);
    MechanismMttf m;
    m.name = "pbti";
    m.gate_mttf.assign(n_gates, kNeverFails);
    if (cond.use_soa_kernel && params.multi.pbti.ratio >= 0.0) {
      // One context build + SoA kernel sweep per grid point.  Scaling the
      // per-gate maximum by the (non-negative) ratio equals the scalar
      // max-of-scaled reduction bit for bit: rounded multiplication by a
      // non-negative constant is monotone, and every dVth is >= 0.
      std::vector<nbti::DeviceAging::StressContext> ctxs(pbti.devices.size());
      for (std::size_t di = 0; di < pbti.devices.size(); ++di) {
        ctxs[di] = model.make_context(pbti.devices[di], cond.schedule);
      }
      const nbti::RdKernel kernel(model, std::move(ctxs));
      std::vector<std::vector<double>> worst_at(
          n_points, std::vector<double>(n_gates, 0.0));
      std::vector<double> dev_out(pbti.devices.size());
      std::vector<double> dev_scratch(pbti.devices.size());
      for (int i = 0; i < n_points; ++i) {
        kernel.worst_per_gate(t_sec[i], pbti.gate_begin, 0, n_gates,
                              worst_at[i], dev_out, dev_scratch);
      }
      common::parallel_for(n_gates, params.n_threads, [&](int gi) {
        std::vector<double> worst(n_points);
        for (int i = 0; i < n_points; ++i) {
          worst[i] = params.multi.pbti.ratio * worst_at[i][gi];
        }
        m.gate_mttf[gi] =
            crossing_time(t_sec, worst, params.fail_dvth) / kSecondsPerYear;
      });
    } else {
      common::parallel_for(n_gates, params.n_threads, [&](int gi) {
        std::vector<double> worst(n_points, 0.0);
        for (int di = pbti.gate_begin[gi]; di < pbti.gate_begin[gi + 1];
             ++di) {
          const nbti::DeviceAging::StressContext ctx =
              model.make_context(pbti.devices[di], cond.schedule);
          for (int i = 0; i < n_points; ++i) {
            worst[i] = std::max(worst[i], params.multi.pbti.ratio *
                                              model.delta_vth(ctx, t_sec[i]));
          }
        }
        m.gate_mttf[gi] =
            crossing_time(t_sec, worst, params.fail_dvth) / kSecondsPerYear;
      });
    }
    rep.mechanisms.push_back(std::move(m));
  }

  if (params.multi.enable_hci) {
    MechanismMttf m;
    m.name = "hci";
    m.gate_mttf.assign(n_gates, kNeverFails);
    common::parallel_for(n_gates, params.n_threads, [&](int gi) {
      const double activity = stats.activity[nl.gate(gi).output];
      std::vector<double> v(n_points);
      for (int i = 0; i < n_points; ++i) {
        v[i] = nbti::hci_delta_vth(params.multi.hci, activity,
                                   params.multi.clock_hz, cond.schedule,
                                   t_sec[i]);
      }
      m.gate_mttf[gi] =
          crossing_time(t_sec, v, params.fail_dvth) / kSecondsPerYear;
    });
    rep.mechanisms.push_back(std::move(m));
  }

  // --- Hard-failure mechanisms: acceleration-law MTTF directly. ---------

  if (params.enable_tddb) {
    // The oxide sees both operating points; exposures compete: the
    // failure rates add, weighted by the time spent at each temperature.
    double rate = 0.0;
    if (active_fraction > 0.0) {
      rate += active_fraction /
              nbti::tddb_mttf(params.tddb, vdd, cond.schedule.temp_active);
    }
    if (active_fraction < 1.0) {
      rate += (1.0 - active_fraction) /
              nbti::tddb_mttf(params.tddb, vdd, cond.schedule.temp_standby);
    }
    const double mttf =
        rate > 0.0 ? 1.0 / rate / kSecondsPerYear : kNeverFails;
    MechanismMttf m;
    m.name = "tddb";
    m.gate_mttf.assign(n_gates, mttf);
    rep.mechanisms.push_back(std::move(m));
  }

  if (params.enable_em) {
    const std::vector<double> loads = gate_loads(analyzer);
    MechanismMttf m;
    m.name = "em";
    m.gate_mttf.assign(n_gates, kNeverFails);
    common::parallel_for(n_gates, params.n_threads, [&](int gi) {
      // Average switching current of the output wire while active:
      // activity x f_clk charge pumps of C_load * Vdd per second.
      const double current = stats.activity[nl.gate(gi).output] *
                             params.multi.clock_hz * loads[gi] * vdd;
      if (active_fraction <= 0.0) return;  // no charge flow: never fails
      const double intrinsic =
          nbti::em_mttf(params.em, current, cond.schedule.temp_active);
      // EM damage accrues only while current flows, so the wall-clock
      // MTTF stretches by the idle time.
      m.gate_mttf[gi] = intrinsic / active_fraction / kSecondsPerYear;
    });
    rep.mechanisms.push_back(std::move(m));
  }

  // --- Weibull aggregation: units in series, any failure is fatal. ------

  const double gamma = std::tgamma(1.0 + 1.0 / params.weibull_beta);
  rep.lambda = 0.0;
  for (MechanismMttf& m : rep.mechanisms) {
    const double lm = weibull_lambda(m.gate_mttf, params.weibull_beta, gamma);
    m.system_mttf = lambda_to_mttf(lm, params.weibull_beta, gamma);
    rep.lambda += lm;
  }
  rep.system_mttf = lambda_to_mttf(rep.lambda, params.weibull_beta, gamma);
  rep.failure_curve.reserve(params.curve_years.size());
  for (double y : params.curve_years) {
    rep.failure_curve.emplace_back(y, rep.system_failure_at(y));
  }
  return rep;
}

}  // namespace nbtisim::aging
