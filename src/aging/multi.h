/// \file multi.h
/// \brief Multi-mechanism circuit aging: NBTI (PMOS) + PBTI + HCI (NMOS),
///        combined per timing arc by the slew-aware STA.
///
/// NBTI slows pull-up arcs; PBTI and HCI shift NMOS thresholds and slow
/// pull-down arcs. Because rising and falling arrivals interleave along a
/// path, the mechanisms do NOT simply add at the circuit level — the
/// slew-aware engine resolves the interaction arc by arc.
#pragma once

#include "aging/aging.h"
#include "nbti/other_mechanisms.h"

namespace nbtisim::aging {

/// Which mechanisms to include and their technology parameters.
struct MultiAgingParams {
  bool enable_pbti = true;
  bool enable_hci = true;
  nbti::PbtiParams pbti{};
  nbti::HciParams hci{};
  double clock_hz = 1.0e9;  ///< active-mode switching rate for HCI
};

/// Multi-mechanism degradation report.
struct MultiAgingReport {
  double fresh_delay = 0.0;      ///< [s]
  double aged_delay = 0.0;       ///< all mechanisms [s]
  double nbti_only_delay = 0.0;  ///< aged with NBTI alone [s]
  std::vector<double> pmos_dvth; ///< per-gate NBTI shift [V]
  std::vector<double> nmos_dvth; ///< per-gate PBTI+HCI shift [V]

  double percent() const {
    return fresh_delay > 0.0
               ? 100.0 * (aged_delay - fresh_delay) / fresh_delay
               : 0.0;
  }
  double nbti_only_percent() const {
    return fresh_delay > 0.0
               ? 100.0 * (nbti_only_delay - fresh_delay) / fresh_delay
               : 0.0;
  }
};

/// Flattened per-gate NMOS PBTI stress descriptors: the standby-simulation +
/// signal-probability phase of the multi-mechanism pipeline, built once per
/// policy and reusable across horizons — the failure suite evaluates the
/// same devices over a whole dVth(t) grid.
struct PbtiStressSet {
  std::vector<nbti::DeviceStress> devices;  ///< flattened per-gate runs
  std::vector<int> gate_begin;              ///< size num_gates + 1
};

/// Builds the PBTI device stress descriptors for every gate of \p analyzer's
/// circuit under \p policy.  The worst per-gate PBTI shift at horizon t is
/// pbti.ratio * max over the gate's devices of DeviceAging::delta_vth(d, t).
/// \throws std::invalid_argument for a Rotating policy with an empty rotation
PbtiStressSet build_pbti_stress(const AgingAnalyzer& analyzer,
                                const StandbyPolicy& policy);

/// Runs the combined analysis on \p analyzer's circuit.
///
/// Per gate, the NMOS shift is the worst over the cell's stage inputs of
/// PBTI (duty = signal probability of 1; standby state from the policy)
/// plus the HCI contribution of the gate's switching activity.
/// \throws std::invalid_argument for a Rotating policy with an empty rotation
MultiAgingReport analyze_multi_mechanism(const AgingAnalyzer& analyzer,
                                         const StandbyPolicy& policy,
                                         const MultiAgingParams& params = {},
                                         std::optional<double> total_time = {});

}  // namespace nbtisim::aging
