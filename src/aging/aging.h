/// \file aging.h
/// \brief Circuit-level NBTI degradation analysis — the paper's Fig. 6
///        platform (Sections 3.3 and 4.2).
///
/// Pipeline per gate:
///   active-mode signal probabilities (Monte-Carlo logic simulation)
///     -> per-PMOS stress duty cycles inside each cell,
///   standby-mode internal states (logic simulation of the standby vector,
///   or the all-stressed / all-relaxed bounding policies)
///     -> whether each PMOS continues to stress or recovers in standby,
///   temperature-aware device model -> per-PMOS dVth,
///   worst PMOS per gate -> gate delay degradation (eq. 21/22),
///   STA -> circuit delay degradation.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "nbti/device_aging.h"
#include "nbti/dvth_table.h"
#include "nbti/rd_kernel.h"
#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "sta/sta.h"
#include "sta/slew_sta.h"
#include "tech/library.h"

namespace nbtisim::aging {

/// How internal nodes behave during standby.
struct StandbyPolicy {
  enum class Kind : std::uint8_t {
    AllStressed,  ///< worst case: every PMOS gate node at 0 (paper's
                  ///< "all internal nodes 0" bounding assumption)
    AllRelaxed,   ///< best case: every PMOS gate node at 1 — also the state
                  ///< a sleep transistor forces (Vgs ~= 0 for all PMOS)
    Vector,       ///< apply a concrete standby input vector and simulate
    Rotating,     ///< alternate between several standby vectors across idle
                  ///< periods (Abella et al. [23]): each PMOS is stressed
                  ///< for the fraction of vectors that drive its gate to 0
  };

  Kind kind = Kind::AllStressed;
  std::vector<bool> vector;                 ///< PI values (Kind::Vector)
  std::vector<std::vector<bool>> rotation;  ///< PI vectors (Kind::Rotating)
  /// Nets forced to fixed values during the standby simulation — the effect
  /// of control-point insertion ([9], [10]); forced values propagate
  /// downstream. Applies to Vector and Rotating policies.
  std::vector<std::pair<netlist::NodeId, bool>> forces;

  static StandbyPolicy all_stressed() { return {Kind::AllStressed, {}, {}, {}}; }
  static StandbyPolicy all_relaxed() { return {Kind::AllRelaxed, {}, {}, {}}; }
  static StandbyPolicy from_vector(std::vector<bool> v) {
    return {Kind::Vector, std::move(v), {}, {}};
  }
  /// \throws std::invalid_argument when \p vectors is empty
  static StandbyPolicy rotating(std::vector<std::vector<bool>> vectors);

  /// Structural equality — the key of AgingAnalyzer's per-policy stress
  /// descriptor cache.
  friend bool operator==(const StandbyPolicy&, const StandbyPolicy&) = default;
};

/// Analysis knobs; defaults are the paper's experimental setup.
struct AgingConditions {
  nbti::ModeSchedule schedule =
      nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  double total_time = 3.0e8;  ///< ~10 years
  nbti::RdParams rd{};
  nbti::AcEvalMethod method = nbti::AcEvalMethod::ClosedForm;
  bool taylor_delay = true;  ///< eq. 22 first-order form vs. exact
                             ///< alpha-power re-evaluation
  int sp_vectors = 4096;     ///< Monte-Carlo vectors for signal probabilities
  std::uint64_t seed = 7;
  double sta_temperature = 400.0;  ///< temperature for delay evaluation
  /// Worker threads for the Monte-Carlo signal-probability pass and the
  /// per-gate dVth evaluation; 0 = hardware concurrency.  Results are
  /// bit-identical for every value (deterministic block decomposition +
  /// ordered reductions), so this is purely a speed knob.
  int n_threads = 0;
  /// Per-primary-input probabilities of being 1 for the active-mode
  /// Monte-Carlo pass; empty = 0.5 everywhere (the paper's setup).  Size
  /// must match the netlist's PI count, values in [0, 1].
  std::vector<double> input_sp;
  /// Optional per-gate threshold offsets (a dual-Vth assignment): shifts
  /// every transistor of the gate, slowing it, cutting its leakage AND its
  /// NBTI rate (paper Section 4.1 "Vth dependence"). Empty = all nominal.
  std::vector<double> gate_vth_offsets;
  /// Optional per-gate delay multipliers (>= 1), e.g. the series-sleep-
  /// device penalty of a control-point-modified driver. Empty = all 1.
  std::vector<double> gate_delay_scale;
  /// Evaluate per-gate dVth through the structure-of-arrays kernel
  /// (nbti::RdKernel) instead of per-device scalar calls.  Bit-identical to
  /// the scalar path at every thread count (differential-tested), so this is
  /// purely a speed knob; turn it off to benchmark or debug the scalar path.
  bool use_soa_kernel = true;
};

/// Full circuit degradation report.
struct DegradationReport {
  double fresh_delay = 0.0;  ///< [s]
  double aged_delay = 0.0;   ///< [s]
  std::vector<double> gate_dvth;  ///< worst-PMOS dVth per gate [V]

  double delta_delay() const { return aged_delay - fresh_delay; }
  double percent() const {
    return fresh_delay > 0.0 ? 100.0 * delta_delay() / fresh_delay : 0.0;
  }
};

/// NBTI degradation analyzer bound to one netlist (Fig. 6 platform).
class AgingAnalyzer {
 public:
  AgingAnalyzer(const netlist::Netlist& nl, const tech::Library& lib,
                AgingConditions cond = {});

  const AgingConditions& conditions() const { return cond_; }
  const sta::StaEngine& sta() const { return sta_; }
  const sim::SignalStats& signal_stats() const { return stats_; }

  /// Worst-PMOS dVth per gate after \p total_time (defaults to the
  /// configured horizon) under the given standby policy [V].
  ///
  /// Two-phase: per-gate/per-PMOS stress descriptors (standby-vector
  /// simulation + signal-probability propagation) are built once per
  /// distinct policy and cached; each call then only evaluates the device
  /// model against the cached descriptors, in parallel over gates
  /// (AgingConditions::n_threads).  Repeated calls with different horizons
  /// — degradation_series in particular — skip the whole build phase.
  std::vector<double> gate_dvth(const StandbyPolicy& policy,
                                std::optional<double> total_time = {}) const;

  /// Drops all cached per-policy stress descriptors and dVth tables.  Useful
  /// to reclaim memory after sweeping many distinct policies, and to
  /// benchmark the build phase itself (bench_perf_micro's "uncached" legs).
  void invalidate_stress_cache() const;

  /// Number of stress-descriptor build phases executed so far (cache misses).
  /// Sweeps and Monte-Carlo loops over one policy must keep this at one —
  /// the regression contract of the per-policy cache.
  std::uint64_t stress_build_count() const {
    return stress_builds_.load(std::memory_order_relaxed);
  }

  /// Sampled per-gate worst-PMOS dVth(t) curves of \p policy on a geometric
  /// grid from \p t_lo to \p t_hi (both exact nodes) at
  /// \p points_per_decade resolution — the interpolation substrate for the
  /// Monte-Carlo lifetime / failure crossing-time loops.  Built once per
  /// (policy, range, resolution) and cached like the stress descriptors;
  /// sampling goes through gate_dvth (SoA kernel when enabled).  Tolerance:
  /// DvthTable::rel_error_bound(table->grid_ratio()) per single-device
  /// curve; see dvth_table.h.
  std::shared_ptr<const nbti::DvthTable> dvth_table(
      const StandbyPolicy& policy, double t_lo, double t_hi,
      int points_per_decade) const;

  /// Fresh critical delay [s] (gate_delay_scale applied) — precomputed once
  /// at construction; what analyze() reports as fresh_delay.
  double fresh_critical_delay() const { return fresh_critical_delay_; }

  /// Aged critical delay [s] under \p policy at \p total_time: the
  /// degradation_series inner step — cached stress descriptors + one device
  /// evaluation + one STA, without re-deriving the fresh baseline.  Sweeps
  /// over many horizons (derate tables, lifetime searches) should call this
  /// per cell instead of analyze().
  double aged_critical_delay(const StandbyPolicy& policy,
                             std::optional<double> total_time = {}) const;

  /// Full fresh-vs-aged timing comparison.
  DegradationReport analyze(const StandbyPolicy& policy,
                            std::optional<double> total_time = {}) const;

  /// Rise/fall- and slew-aware variant of analyze(): uses SlewStaEngine so
  /// the NBTI threshold shift slows *pull-up arcs only* — the physically
  /// correct asymmetry (the paper's eq. 22 attributes the whole gate delay
  /// to the degraded device; see bench_ablation_models (c)).
  /// gate_delay_scale is not applied in this mode.
  DegradationReport analyze_slew_aware(
      const StandbyPolicy& policy, std::optional<double> total_time = {}) const;

  /// (time, delay-degradation-percent) series for Fig. 5-style plots.
  std::vector<std::pair<double, double>> degradation_series(
      const StandbyPolicy& policy, double t_min, double t_max,
      int n_points) const;

  /// Aged gate delays from a per-gate dVth vector, honoring taylor_delay.
  std::vector<double> aged_gate_delays(std::span<const double> dvth) const;

 private:
  /// Build-once product of the pipeline's per-policy phase: every PMOS
  /// device's stress descriptor, flattened over gates.  Only the horizon
  /// argument of the device model varies between evaluations.
  struct StressDescriptors {
    StandbyPolicy policy;                      // cache key
    std::vector<nbti::DeviceStress> devices;   // flattened per-gate runs
    /// Precomputed per-device evaluation state (equivalent cycle, K_v,
    /// S_n prefix) under cond_.schedule: makes each horizon O(1) per device.
    std::vector<nbti::DeviceAging::StressContext> contexts;
    std::vector<int> gate_begin;               // size num_gates + 1
    /// SoA evaluator over `contexts` (AgingConditions::use_soa_kernel).
    nbti::RdKernel kernel;
  };

  /// Returns the cached descriptors for \p policy, building them on miss.
  /// Thread-safe; the shared_ptr keeps an entry alive across eviction.
  std::shared_ptr<const StressDescriptors> stress_descriptors(
      const StandbyPolicy& policy) const;

  const netlist::Netlist* nl_;
  const tech::Library* lib_;
  AgingConditions cond_;
  sta::StaEngine sta_;
  sim::SignalStats stats_;
  std::vector<double> fresh_delays_;
  double fresh_critical_delay_ = 0.0;
  mutable std::mutex cache_mutex_;
  mutable std::vector<std::shared_ptr<const StressDescriptors>> stress_cache_;
  mutable std::atomic<std::uint64_t> stress_builds_{0};

  /// One cached dVth(t) table per (policy, range, resolution).
  struct TableEntry {
    StandbyPolicy policy;
    double t_lo = 0.0;
    double t_hi = 0.0;
    int points_per_decade = 0;
    std::shared_ptr<const nbti::DvthTable> table;
  };
  mutable std::vector<TableEntry> table_cache_;
};

}  // namespace nbtisim::aging
