#include "aging/multi.h"

#include <algorithm>
#include <stdexcept>

namespace nbtisim::aging {

PbtiStressSet build_pbti_stress(const AgingAnalyzer& analyzer,
                                const StandbyPolicy& policy) {
  const netlist::Netlist& nl = analyzer.sta().netlist();
  const tech::Library& lib = analyzer.sta().library();
  const AgingConditions& cond = analyzer.conditions();
  const sim::SignalStats& stats = analyzer.signal_stats();

  if (policy.kind == StandbyPolicy::Kind::Rotating &&
      policy.rotation.empty()) {
    // An empty rotation has no standby state to average over; letting it
    // through would divide by standby_sig.size() == 0 below and poison
    // every stress fraction with NaN.
    throw std::invalid_argument(
        "build_pbti_stress: Rotating policy with an empty rotation");
  }

  // Standby net values per policy member (as in AgingAnalyzer::gate_dvth).
  std::vector<std::vector<bool>> standby_values;
  if (policy.kind == StandbyPolicy::Kind::Vector) {
    standby_values.push_back(
        sim::Simulator(nl).evaluate_forced(policy.vector, policy.forces));
  } else if (policy.kind == StandbyPolicy::Kind::Rotating) {
    const sim::Simulator simulator(nl);
    for (const std::vector<bool>& v : policy.rotation) {
      standby_values.push_back(simulator.evaluate_forced(v, policy.forces));
    }
  }

  const double vdd = lib.params().vdd;

  PbtiStressSet set;
  set.gate_begin.reserve(nl.num_gates() + 1);
  set.gate_begin.push_back(0);

  std::vector<double> pin_sp;
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    const netlist::Gate& g = nl.gate(gi);
    const tech::Cell& cell = lib.cell(analyzer.sta().gate_cell(gi));

    pin_sp.clear();
    for (netlist::NodeId in : g.fanins) {
      pin_sp.push_back(stats.probability[in]);
    }
    const std::vector<double> sp = cell.signal_probabilities(pin_sp);

    std::vector<std::vector<bool>> standby_sig;
    for (const std::vector<bool>& values : standby_values) {
      std::uint32_t bits = 0;
      for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
        bits |= values[g.fanins[pin]] ? (1u << pin) : 0u;
      }
      standby_sig.push_back(cell.signal_values(bits));
    }

    for (const tech::Stage& st : cell.stages()) {
      for (int in : st.inputs) {
        nbti::DeviceStress stress;
        // PBTI: the NMOS is stressed while its gate is HIGH.
        stress.active_stress_prob = sp[in];
        stress.vgs = vdd;
        stress.vth0 = lib.params().nmos.vth0 +
                      (cond.gate_vth_offsets.empty()
                           ? 0.0
                           : cond.gate_vth_offsets[gi]);
        switch (policy.kind) {
          case StandbyPolicy::Kind::AllStressed:
            // All gate nodes 0: NMOS relaxed (PBTI's polarity inverts
            // the paper's worst case).
            stress.standby = nbti::StandbyMode::Relaxed;
            break;
          case StandbyPolicy::Kind::AllRelaxed:
            stress.standby = nbti::StandbyMode::Stressed;
            break;
          case StandbyPolicy::Kind::Vector:
          case StandbyPolicy::Kind::Rotating: {
            int high = 0;
            for (const std::vector<bool>& sig : standby_sig) {
              high += sig[in] ? 1 : 0;
            }
            stress.standby_stress_fraction =
                static_cast<double>(high) / standby_sig.size();
            break;
          }
        }
        set.devices.push_back(stress);
      }
    }
    set.gate_begin.push_back(static_cast<int>(set.devices.size()));
  }
  return set;
}

MultiAgingReport analyze_multi_mechanism(const AgingAnalyzer& analyzer,
                                         const StandbyPolicy& policy,
                                         const MultiAgingParams& params,
                                         std::optional<double> total_time) {
  const netlist::Netlist& nl = analyzer.sta().netlist();
  const tech::Library& lib = analyzer.sta().library();
  const AgingConditions& cond = analyzer.conditions();
  const sim::SignalStats& stats = analyzer.signal_stats();
  const double horizon = total_time.value_or(cond.total_time);

  MultiAgingReport rep;
  rep.pmos_dvth = analyzer.gate_dvth(policy, horizon);
  rep.nmos_dvth.assign(nl.num_gates(), 0.0);

  const nbti::DeviceAging model(cond.rd, cond.method);
  PbtiStressSet pbti;
  if (params.enable_pbti) pbti = build_pbti_stress(analyzer, policy);

  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    const netlist::Gate& g = nl.gate(gi);

    double worst_pbti = 0.0;
    if (params.enable_pbti) {
      for (int di = pbti.gate_begin[gi]; di < pbti.gate_begin[gi + 1]; ++di) {
        worst_pbti = std::max(
            worst_pbti, params.pbti.ratio * model.delta_vth(pbti.devices[di],
                                                            cond.schedule,
                                                            horizon));
      }
    }

    double hci = 0.0;
    if (params.enable_hci) {
      hci = nbti::hci_delta_vth(params.hci, stats.activity[g.output],
                                params.clock_hz, cond.schedule, horizon);
    }
    rep.nmos_dvth[gi] = worst_pbti + hci;
  }

  const sta::SlewStaEngine slew(nl, lib);
  rep.fresh_delay =
      slew.analyze(cond.sta_temperature, {}, cond.gate_vth_offsets).max_delay;
  rep.nbti_only_delay = slew.analyze(cond.sta_temperature, rep.pmos_dvth,
                                     cond.gate_vth_offsets)
                            .max_delay;
  rep.aged_delay = slew.analyze(cond.sta_temperature, rep.pmos_dvth,
                                cond.gate_vth_offsets, rep.nmos_dvth)
                       .max_delay;
  return rep;
}

}  // namespace nbtisim::aging
