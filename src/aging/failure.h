/// \file failure.h
/// \brief Multi-mechanism failure suite: per-gate/per-mechanism MTTF from
///        degradation-threshold crossings and hard-failure acceleration
///        laws, Weibull-aggregated into a system failure curve.
///
/// The wear-out mechanisms (NBTI, PBTI, HCI) shift thresholds gradually;
/// a device is declared *failed* when its dVth(t) series crosses a failure
/// threshold, with the crossing time found by linear interpolation on a
/// geometric time grid (the lognormal-free variant of the RAMP/oldspot
/// recipe).  The hard-failure mechanisms (TDDB, EM) deliver an MTTF
/// directly from their acceleration laws.  Every (gate, mechanism) pair
/// then becomes a Weibull unit lifetime with shape \f$\beta\f$ and scale
/// \f$\eta = \mathrm{MTTF}/\Gamma(1+1/\beta)\f$, and the system — a series
/// system, any failure is fatal — fails as
/// \f[ F_{sys}(t) = 1 - \exp\!\big(-t^\beta \sum_u \eta_u^{-\beta}\big) \f]
/// with \f$\mathrm{MTTF}_{sys} = (\sum_u \eta_u^{-\beta})^{-1/\beta}
/// \,\Gamma(1+1/\beta)\f$.
#pragma once

#include <span>
#include <string>
#include <utility>
#include <vector>

#include "aging/multi.h"

namespace nbtisim::aging {

/// MTTF sentinel for a unit that never crosses its failure criterion
/// inside the evaluation window (or cannot fail at all, e.g. EM on a wire
/// carrying no current): +infinity.  Such units drop out of the Weibull
/// sum — they contribute no failure rate.
extern const double kNeverFails;

/// Failure-suite knobs; defaults follow the paper's operating point.
struct FailureParams {
  /// Wear-out mechanism parameters (PBTI/HCI enables + technology knobs
  /// live here; clock_hz drives both HCI and the EM switching current).
  MultiAgingParams multi{};
  nbti::TddbParams tddb{};
  nbti::EmParams em{};
  bool enable_nbti = true;
  bool enable_tddb = true;
  bool enable_em = true;

  /// |dVth| at which a wear-out mechanism has killed the device [V].
  double fail_dvth = 0.05;
  /// Evaluation window for the dVth crossing search [years].
  double max_years = 100.0;
  /// Geometric time-grid points spanning the window (>= 2).
  int time_points = 40;
  /// Weibull shape of every unit lifetime (2 = classic wear-out).
  double weibull_beta = 2.0;
  /// Years at which the system failure curve is reported.
  std::vector<double> curve_years = {1.0, 2.0, 5.0, 10.0, 20.0, 30.0};
  /// Worker threads for the per-gate loops; 0 = hardware concurrency.
  /// Bit-identical for every value.
  int n_threads = 0;
  /// Sample the NBTI dVth(t) series from the analyzer's cached interpolated
  /// table (AgingAnalyzer::dvth_table) instead of one exact gate_dvth sweep
  /// per grid point.  Crossing times then interpolate an interpolant;
  /// nbti::DvthTable::rel_error_bound at table_points_per_decade bounds the
  /// drift, and the differential suite pins the MTTF decisions.
  bool use_dvth_table = false;
  int table_points_per_decade = 16;  ///< table resolution when enabled
};

/// Per-mechanism lifetime summary.
struct MechanismMttf {
  std::string name;               ///< "nbti", "pbti", "hci", "tddb", "em"
  std::vector<double> gate_mttf;  ///< per-gate MTTF [years]; kNeverFails
                                  ///< when the criterion is never met
  /// Weibull-aggregated MTTF of this mechanism alone over all gates
  /// [years]; kNeverFails when no gate fails.
  double system_mttf = 0.0;
};

/// Full failure-suite report. All times are in years.
struct FailureReport {
  double weibull_beta = 2.0;
  std::vector<MechanismMttf> mechanisms;
  /// \f$\sum_u \eta_u^{-\beta}\f$ over every failing (gate, mechanism)
  /// unit [years^-beta]; 0 when nothing fails.
  double lambda = 0.0;
  /// System MTTF across all mechanisms [years]; kNeverFails if lambda = 0.
  double system_mttf = 0.0;
  /// (years, F_sys) samples at FailureParams::curve_years.
  std::vector<std::pair<double, double>> failure_curve;

  /// System failure probability at \p t_years.
  double system_failure_at(double t_years) const;
};

/// First time at which the piecewise-linear series (\p times, \p values)
/// reaches \p threshold, with an implicit (0, 0) origin before the first
/// sample and linear interpolation inside the crossing segment; kNeverFails
/// when the series stays below the threshold.  \p times must be positive
/// ascending and the same size as \p values.
/// \throws std::invalid_argument for a non-positive threshold or
///         mismatched/empty series
double crossing_time(std::span<const double> times,
                     std::span<const double> values, double threshold);

/// Runs the failure suite on \p analyzer's circuit under \p policy.
/// \throws std::invalid_argument for a Rotating policy with an empty
///         rotation, non-positive fail_dvth/max_years/weibull_beta, or
///         time_points < 2
FailureReport analyze_failure(const AgingAnalyzer& analyzer,
                              const StandbyPolicy& policy,
                              const FailureParams& params = {});

}  // namespace nbtisim::aging
