/// \file thermal.h
/// \brief Lumped-RC package thermal model and task-set power traces —
///        paper Section 2.1 / Fig. 2.
///
/// The paper motivates temperature-aware NBTI with the observation that a
/// processor running a task set with power swinging between ~10 W and
/// ~130 W sees die temperatures between ~60 and ~110 C under typical air
/// cooling, converging to steady state "in the order of milliseconds".
/// This module substitutes the Montecito power traces + HotSpot-style
/// simulation with a single-node RC model:
///       C_th dT/dt = P - (T - T_amb) / R_th
/// whose constants are chosen to reproduce exactly that operating band
/// (DESIGN.md Section 2).
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace nbtisim::thermal {

/// Package thermal constants (defaults reproduce the Fig. 2 band:
/// 10 W -> 333 K, 130 W -> 383 K, tau = 5 ms).
struct ThermalParams {
  double r_th = 0.4167;    ///< junction-to-ambient resistance [K/W]
  double c_th = 0.012;     ///< lumped thermal capacitance [J/K]
  double t_ambient = 328.8;///< effective ambient (heatsink base) [K]

  double tau() const { return r_th * c_th; }
};

/// One task interval of a power trace.
struct TaskInterval {
  double duration = 0.0;  ///< [s]
  double power = 0.0;     ///< [W]
};

/// Single-node RC thermal model.
class RcThermalModel {
 public:
  explicit RcThermalModel(ThermalParams params = {});

  const ThermalParams& params() const { return params_; }

  /// Steady-state temperature at constant power [K].
  double steady_state(double power) const;

  /// Temperature after holding \p power for \p dt starting from \p t0 [K]
  /// (exact exponential step).
  double step(double t0, double power, double dt) const;

  /// Simulates a task-set power trace; returns (time, temperature) samples
  /// every \p sample_dt seconds.
  /// \throws std::invalid_argument for an empty trace or bad sample_dt
  std::vector<std::pair<double, double>> simulate(
      std::span<const TaskInterval> trace, double sample_dt,
      double t_initial) const;

 private:
  ThermalParams params_;
};

/// Deterministic random task set in the paper's power band (10-130 W).
std::vector<TaskInterval> random_task_set(int n_tasks, double min_power,
                                          double max_power, double min_duration,
                                          double max_duration,
                                          std::uint64_t seed);

/// Steady-state active/standby temperatures implied by two power levels —
/// how T_active / T_standby for the aging model are derived from a design's
/// power envelope.
std::pair<double, double> mode_temperatures(const RcThermalModel& model,
                                            double active_power,
                                            double standby_power);

}  // namespace nbtisim::thermal
