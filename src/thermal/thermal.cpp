#include "thermal/thermal.h"

#include <cmath>
#include <random>
#include <stdexcept>

namespace nbtisim::thermal {

RcThermalModel::RcThermalModel(ThermalParams params) : params_(params) {
  if (params_.r_th <= 0.0 || params_.c_th <= 0.0) {
    throw std::invalid_argument("RcThermalModel: non-positive RC constants");
  }
}

double RcThermalModel::steady_state(double power) const {
  return params_.t_ambient + power * params_.r_th;
}

double RcThermalModel::step(double t0, double power, double dt) const {
  if (dt < 0.0) throw std::invalid_argument("RcThermalModel::step: dt < 0");
  const double t_inf = steady_state(power);
  return t_inf + (t0 - t_inf) * std::exp(-dt / params_.tau());
}

std::vector<std::pair<double, double>> RcThermalModel::simulate(
    std::span<const TaskInterval> trace, double sample_dt,
    double t_initial) const {
  if (trace.empty()) {
    throw std::invalid_argument("RcThermalModel::simulate: empty trace");
  }
  if (sample_dt <= 0.0) {
    throw std::invalid_argument("RcThermalModel::simulate: bad sample_dt");
  }
  std::vector<std::pair<double, double>> samples;
  double now = 0.0;
  double temp = t_initial;
  samples.emplace_back(now, temp);
  for (const TaskInterval& task : trace) {
    if (task.duration <= 0.0) {
      throw std::invalid_argument("RcThermalModel::simulate: bad task duration");
    }
    double remaining = task.duration;
    while (remaining > 0.0) {
      const double dt = std::min(sample_dt, remaining);
      temp = step(temp, task.power, dt);
      now += dt;
      remaining -= dt;
      samples.emplace_back(now, temp);
    }
  }
  return samples;
}

std::vector<TaskInterval> random_task_set(int n_tasks, double min_power,
                                          double max_power, double min_duration,
                                          double max_duration,
                                          std::uint64_t seed) {
  if (n_tasks < 1 || min_power > max_power || min_duration > max_duration ||
      min_duration <= 0.0) {
    throw std::invalid_argument("random_task_set: bad parameters");
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> power(min_power, max_power);
  std::uniform_real_distribution<double> dur(min_duration, max_duration);
  std::vector<TaskInterval> trace;
  trace.reserve(n_tasks);
  for (int i = 0; i < n_tasks; ++i) {
    trace.push_back(TaskInterval{dur(rng), power(rng)});
  }
  return trace;
}

std::pair<double, double> mode_temperatures(const RcThermalModel& model,
                                            double active_power,
                                            double standby_power) {
  return {model.steady_state(active_power), model.steady_state(standby_power)};
}

}  // namespace nbtisim::thermal
