/// \file electrothermal.h
/// \brief Electrothermal operating-point solver: leakage heats the die,
///        heat multiplies leakage.
///
/// The paper takes T_active / T_standby as given steady states; physically
/// they are the fixpoint of the loop
///     T = T_amb + R_th * (P_dynamic + P_leakage(T))
/// because subthreshold leakage grows steeply with temperature. This module
/// solves that fixpoint for a circuit (scaled by a replication factor to
/// represent a full die of such blocks) and detects *thermal runaway* —
/// the regime where d(P_leak)/dT * R_th >= 1 and no stable operating point
/// exists.
#pragma once

#include <span>
#include <vector>

#include "leakage/leakage.h"
#include "thermal/thermal.h"

namespace nbtisim::thermal {

/// Solver knobs.
struct ElectrothermalParams {
  double dynamic_power_w = 0.0;  ///< temperature-independent power [W]
  double replication = 1.0e5;    ///< number of identical blocks on the die
  double supply_v = 1.0;         ///< rail voltage (leakage current -> watts)
  double tolerance_k = 0.01;     ///< convergence threshold [K]
  int max_iterations = 60;
  /// Iterates above this temperature are declared thermal runaway [K] —
  /// the silicon would long be dead; raising it only wastes iterations on
  /// a fixpoint that does not exist.
  double runaway_temp_k = 1000.0;
};

/// Result of the fixpoint iteration.
struct OperatingPoint {
  double temperature_k = 0.0;   ///< converged die temperature [K]
  double leakage_w = 0.0;       ///< leakage power at that temperature [W]
  int iterations = 0;
  bool converged = false;       ///< false = thermal runaway / divergence
};

/// Solves the electrothermal fixpoint for the circuit behind \p nl under a
/// static input vector \p standby_vector (the leakage state).
/// \throws std::invalid_argument for non-positive replication or supply
OperatingPoint solve_operating_point(const netlist::Netlist& nl,
                                     const tech::Library& lib,
                                     const RcThermalModel& model,
                                     const std::vector<bool>& standby_vector,
                                     const ElectrothermalParams& params = {});

/// Batched horizon/power sweep: one operating point per entry of
/// \p dynamic_powers, each overriding params.dynamic_power_w.  The fixpoints
/// are independent, so they fan out over common::parallel_for — each sweep
/// cell writes only its own slot, making the result bit-identical to the
/// serial loop for every \p n_threads (0 = hardware concurrency).
/// \throws std::invalid_argument as solve_operating_point
std::vector<OperatingPoint> solve_operating_points(
    const netlist::Netlist& nl, const tech::Library& lib,
    const RcThermalModel& model, const std::vector<bool>& standby_vector,
    std::span<const double> dynamic_powers,
    const ElectrothermalParams& params = {}, int n_threads = 0);

}  // namespace nbtisim::thermal
