#include "thermal/electrothermal.h"

#include <cmath>
#include <stdexcept>

#include "common/pool.h"

namespace nbtisim::thermal {

OperatingPoint solve_operating_point(const netlist::Netlist& nl,
                                     const tech::Library& lib,
                                     const RcThermalModel& model,
                                     const std::vector<bool>& standby_vector,
                                     const ElectrothermalParams& params) {
  if (params.replication <= 0.0 || params.supply_v <= 0.0 ||
      params.tolerance_k <= 0.0 || params.max_iterations < 1 ||
      params.runaway_temp_k <= 0.0) {
    throw std::invalid_argument("solve_operating_point: bad parameters");
  }

  auto leakage_watts = [&](double temp_k) {
    // Characterizing a LeakageTable per iterate is the dominant cost; the
    // fixpoint needs only a handful of iterations.
    const leakage::LeakageAnalyzer analyzer(nl, lib, temp_k);
    return analyzer.circuit_leakage(standby_vector) * params.supply_v *
           params.replication;
  };

  OperatingPoint op;
  double temp = model.steady_state(params.dynamic_power_w);
  // Damped fixpoint iteration: plain iteration diverges exactly when a
  // runaway is physically present, which is what we want to detect — so
  // use plain iteration with a divergence guard.
  for (int it = 0; it < params.max_iterations; ++it) {
    op.iterations = it + 1;
    const double p_leak = leakage_watts(temp);
    const double next =
        model.steady_state(params.dynamic_power_w + p_leak);
    if (!std::isfinite(next) || next > params.runaway_temp_k) {
      op.temperature_k = next;
      op.leakage_w = p_leak;
      op.converged = false;
      return op;
    }
    if (std::abs(next - temp) < params.tolerance_k) {
      // p_leak was characterized at temp, which agrees with next within
      // tolerance_k — re-characterizing a whole LeakageTable at next would
      // double the cost of the final iteration for a sub-tolerance delta.
      op.temperature_k = next;
      op.leakage_w = p_leak;
      op.converged = true;
      return op;
    }
    temp = next;
  }
  op.temperature_k = temp;
  op.leakage_w = leakage_watts(temp);
  op.converged = false;
  return op;
}

std::vector<OperatingPoint> solve_operating_points(
    const netlist::Netlist& nl, const tech::Library& lib,
    const RcThermalModel& model, const std::vector<bool>& standby_vector,
    std::span<const double> dynamic_powers, const ElectrothermalParams& params,
    int n_threads) {
  std::vector<OperatingPoint> points(dynamic_powers.size());
  common::parallel_for(
      static_cast<int>(dynamic_powers.size()), n_threads, [&](int i) {
        ElectrothermalParams cell = params;
        cell.dynamic_power_w = dynamic_powers[i];
        points[i] = solve_operating_point(nl, lib, model, standby_vector, cell);
      });
  return points;
}

}  // namespace nbtisim::thermal
