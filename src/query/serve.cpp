#include "query/serve.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <vector>

namespace nbtisim::query {
namespace {

bool is_blank(std::string_view line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

std::string handle_query(const StoreView& view, std::string_view line,
                         int n_threads) {
  using common::json::Value;
  try {
    const Query q = parse_query(common::json::parse(line));
    const QueryResult r = run_query(view, q, n_threads);
    // Splice the already-serialized {"columns":...,"rows":...} body into
    // the envelope — one JSON tree walk, not two.
    const std::string body = r.to_json();
    std::string out = "{\"ok\":true,";
    out.append(body, 1, body.size() - 2);  // strip the body's braces
    out += ",\"matched\":";
    out += std::to_string(r.stats.rows_matched);
    out += ",\"parsed\":";
    out += std::to_string(r.stats.rows_parsed);
    out += '}';
    return out;
  } catch (const std::exception& e) {
    Value err;
    err.set("ok", Value(false));
    err.set("error", Value(std::string(e.what())));
    return common::json::dump(err, -1, common::json::NonFinite::Null);
  }
}

void serve_session(const StoreView& view, std::istream& in, std::ostream& out,
                   int n_threads) {
  std::string line;
  while (std::getline(in, line)) {
    if (is_blank(line)) continue;
    out << handle_query(view, line, n_threads) << '\n';
    out.flush();
  }
}

namespace {

/// Line-oriented session over a connected socket: same protocol as
/// serve_session, on recv/send.
void socket_session(const StoreView& view, int fd, int n_threads) {
  std::string pending;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    pending.append(buf, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = pending.find('\n', start);
      if (nl == std::string::npos) break;
      std::string_view line(pending.data() + start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      if (!is_blank(line)) {
        std::string response = handle_query(view, line, n_threads);
        response += '\n';
        std::size_t sent = 0;
        while (sent < response.size()) {
          const ssize_t w = ::send(fd, response.data() + sent,
                                   response.size() - sent, 0);
          if (w <= 0) {
            ::close(fd);
            return;
          }
          sent += static_cast<std::size_t>(w);
        }
      }
      start = nl + 1;
    }
    pending.erase(0, start);
  }
  ::close(fd);
}

}  // namespace

void serve_tcp(const StoreView& view, const ServeOptions& opt,
               std::ostream* log) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    throw std::runtime_error("serve: cannot create socket");
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(opt.port));
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 16) != 0) {
    ::close(listener);
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" +
                             std::to_string(opt.port));
  }
  socklen_t len = sizeof addr;
  ::getsockname(listener, reinterpret_cast<sockaddr*>(&addr), &len);
  const int port = ntohs(addr.sin_port);
  if (opt.bound_port != nullptr) {
    opt.bound_port->store(port, std::memory_order_release);
  }
  if (log != nullptr) {
    *log << "serve: listening on 127.0.0.1:" << port << "\n" << std::flush;
  }

  std::vector<std::thread> sessions;
  int accepted = 0;
  for (;;) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) break;
    sessions.emplace_back(
        [&view, fd, n = opt.n_threads] { socket_session(view, fd, n); });
    ++accepted;
    if (opt.max_connections > 0 && accepted >= opt.max_connections) break;
  }
  for (std::thread& t : sessions) t.join();
  ::close(listener);
  if (log != nullptr) {
    *log << "serve: served " << accepted << " connection"
         << (accepted == 1 ? "" : "s") << "\n";
  }
}

}  // namespace nbtisim::query
