/// \file serve.h
/// \brief The campaign result server: the query language over a line
///        protocol, on stdio or a blocking TCP socket.
///
/// One request per line (a query document, compact or not), one response
/// line back: strict RFC 8259 JSON, either
///
///   {"ok":true,"columns":[...],"rows":[[...],...],"matched":N,"parsed":M}
///
/// or {"ok":false,"error":"..."} — a malformed query never kills the
/// session. Responses are produced by the same run_query() the `campaign
/// query` verb uses, over the shared work pool, so a response is
/// bit-identical for every thread count and every shard layout of the same
/// logical store; concurrent clients querying one shared StoreView get
/// byte-identical answers to byte-identical questions.
///
/// The TCP server is deliberately small: blocking accept loop on
/// 127.0.0.1, one thread per connection, no TLS, no backpressure — a lab
/// results endpoint, not an internet-facing daemon.
#pragma once

#include <atomic>
#include <iosfwd>
#include <string>
#include <string_view>

#include "query/query.h"

namespace nbtisim::query {

/// Evaluates one request line against \p view. Never throws: errors come
/// back as {"ok":false,...}. The response has no trailing newline.
std::string handle_query(const StoreView& view, std::string_view line,
                         int n_threads);

/// Runs one session: reads request lines from \p in until EOF, writing one
/// response line each to \p out (blank request lines are skipped). Safe to
/// run concurrently on one shared \p view.
void serve_session(const StoreView& view, std::istream& in, std::ostream& out,
                   int n_threads);

/// Options for serve_tcp().
struct ServeOptions {
  int port = 0;             ///< 0: ephemeral (see bound_port)
  int n_threads = 0;        ///< per-query parallelism (0: hardware)
  int max_connections = 0;  ///< stop after this many sessions; 0: forever
  /// Set to the listening port right after bind — lets a launcher (or a
  /// test) on another thread discover an ephemeral port while the server
  /// blocks in accept.
  std::atomic<int>* bound_port = nullptr;
};

/// Serves \p view over TCP on 127.0.0.1 until \p opt.max_connections
/// sessions finished (each connection runs serve_session on its own
/// thread). Progress lines go to \p log when non-null.
/// \throws std::runtime_error when the socket cannot be created or bound
void serve_tcp(const StoreView& view, const ServeOptions& opt,
               std::ostream* log = nullptr);

}  // namespace nbtisim::query
