/// \file query.h
/// \brief Indexed queries over sharded campaign result stores.
///
/// The campaign store answers "is this task done" during a run; everything
/// richer — "system MTTF per netlist at 400 K", "the full Pareto front of
/// c432 under the worst condition" — used to mean rescanning and re-parsing
/// every JSONL row. This layer turns the store into a queryable result set:
/// a StoreView opens the base file and every shard with their sidecar
/// indexes (campaign/index.h), and run_query() evaluates a small declarative
/// query against the index first, seeking into the store files only for the
/// rows that can still match. Non-matching rows are never parsed.
///
/// ## The query language
///
/// One JSON object with four optional members:
///
///   {"where":  {<key>: <predicate>, ...},
///    "select": [<column>, ...],
///    "agg":    {"op": "count|min|max|sum|mean|quantile",
///               "q": 0.5, "by": [<coordinate>, ...],
///               "metrics": [<name>, ...]},
///    "limit":  <n>}
///
/// Keys are grid coordinates — "netlist", "ras", "analysis", "hash"
/// (strings) and "t_active", "t_standby", "years" (numbers) — or scalar
/// metric names. A predicate is an exact value, an array of alternatives,
/// or a {"min":..,"max":..} range (inclusive; either bound optional).
/// A predicate on a member the row lacks excludes the row.
///
/// Without "agg", the result is one output row per matching store row with
/// the selected columns ("select" defaults to the six coordinates plus
/// every scalar metric seen in the matches; structured payloads such as
/// "front" appear only when selected explicitly). With "agg", rows are
/// grouped by the "by" coordinates and reduced: the output carries the
/// group coordinates, the group row count, and one "<op>_<metric>" column
/// per aggregated metric (defaulting to every scalar metric seen).
/// Non-finite metric values are skipped by the reducers.
///
/// ## Determinism
///
/// Results are canonically ordered by (netlist, ras, t_active, t_standby,
/// years, analysis) with the task hash as tiebreak — not file order — so
/// the same logical store produces byte-identical output under any shard
/// layout and any thread count. Aggregation reduces in that canonical row
/// order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/index.h"
#include "common/json.h"
#include "report/report.h"

namespace nbtisim::query {

/// A read-only view of one sharded store: every store file present on disk
/// (base + shards, any layout) with its loaded sidecar index. Opening
/// validates/rebuilds the sidecars once; afterwards the view is immutable
/// and safe to share across concurrent run_query() calls.
class StoreView {
 public:
  /// Opens the store rooted at \p path (same path the campaign spec names).
  /// Missing files are simply absent; a store that does not exist at all
  /// yields an empty view.
  /// \throws std::runtime_error on non-trailing corruption in a store file
  explicit StoreView(std::string path);

  const std::string& path() const { return path_; }

  /// One store file and its index.
  struct File {
    std::string path;
    campaign::StoreIndex index;
  };
  const std::vector<File>& files() const { return files_; }

  /// Total indexed rows across all files.
  std::size_t total_rows() const;

 private:
  std::string path_;
  std::vector<File> files_;
};

/// One parsed predicate: membership in \p any_of (exact Value equality),
/// and/or an inclusive numeric range.
struct Predicate {
  std::vector<common::json::Value> any_of;
  bool has_range = false;
  double min = 0.0, max = 0.0;  ///< valid when has_range
};

/// Aggregation request.
struct Aggregate {
  std::string op;                    ///< count|min|max|sum|mean|quantile
  double q = 0.5;                    ///< quantile point (op == "quantile")
  std::vector<std::string> by;       ///< group-by coordinates
  std::vector<std::string> metrics;  ///< empty: every scalar metric seen
};

/// A parsed, validated query.
struct Query {
  std::vector<std::pair<std::string, Predicate>> where;
  std::vector<std::string> select;  ///< empty: default column set
  bool has_agg = false;
  Aggregate agg;
  long long limit = -1;  ///< < 0: unlimited
};

/// Parses and validates one query document.
/// \throws std::invalid_argument naming the offending member
Query parse_query(const common::json::Value& q);

/// Work accounting for one run_query() — the proof that the index pruned.
struct QueryStats {
  int files = 0;                  ///< store files consulted
  std::size_t index_entries = 0;  ///< index entries scanned
  std::size_t rows_parsed = 0;    ///< store rows actually read and parsed
  std::size_t rows_matched = 0;   ///< rows that passed every predicate
};

/// One query's result: column names plus JSON cell values (null for absent
/// members), in canonical row order.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<common::json::Value>> rows;
  QueryStats stats;

  /// Renders as a report table (cells formatted like summarize: numbers in
  /// shortest round-trip form, null as empty, nested payloads as compact
  /// JSON) for md/csv output.
  report::Table table() const;

  /// Strict RFC 8259 JSON: {"columns":[...],"rows":[[...],...]} with
  /// non-finite numbers encoded as null.
  std::string to_json() const;
};

/// Evaluates \p q against \p view. Candidate rows are selected from the
/// index (coordinates + scalar-metric names) and only those are parsed;
/// files are scanned on the shared work pool. Bit-identical output for
/// every \p n_threads and every shard layout of the same logical store.
QueryResult run_query(const StoreView& view, const Query& q, int n_threads);

}  // namespace nbtisim::query
