#include "query/query.h"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "campaign/store.h"
#include "common/pool.h"

namespace nbtisim::query {
namespace {

using campaign::IndexEntry;
using common::json::Value;

constexpr const char* kStringCoords[] = {"netlist", "ras", "analysis", "hash"};
constexpr const char* kNumberCoords[] = {"t_active", "t_standby", "years"};

bool is_string_coord(std::string_view key) {
  for (const char* c : kStringCoords) {
    if (key == c) return true;
  }
  return false;
}

bool is_number_coord(std::string_view key) {
  for (const char* c : kNumberCoords) {
    if (key == c) return true;
  }
  return false;
}

bool is_coord(std::string_view key) {
  return is_string_coord(key) || is_number_coord(key);
}

const std::string& entry_string(const IndexEntry& e, std::string_view key) {
  if (key == "netlist") return e.netlist;
  if (key == "ras") return e.ras;
  if (key == "analysis") return e.analysis;
  return e.hash;
}

double entry_number(const IndexEntry& e, std::string_view key) {
  if (key == "t_active") return e.t_active;
  if (key == "t_standby") return e.t_standby;
  return e.years;
}

bool match_value(const Predicate& p, const Value& v) {
  if (!p.any_of.empty()) {
    bool any = false;
    for (const Value& cand : p.any_of) {
      if (v == cand) {
        any = true;
        break;
      }
    }
    if (!any) return false;
  }
  if (p.has_range) {
    if (!v.is_number()) return false;
    const double d = v.as_number();
    if (std::isnan(d) || d < p.min || d > p.max) return false;
  }
  return true;
}

/// Coordinate predicates evaluated on the index entry alone. An absent
/// coordinate (empty string / NaN) never matches an equality or range.
bool entry_matches(const IndexEntry& e,
                   const std::vector<std::pair<std::string, Predicate>>& preds) {
  for (const auto& [key, p] : preds) {
    if (is_string_coord(key)) {
      const std::string& s = entry_string(e, key);
      if (s.empty() && key != "hash") return false;
      if (!match_value(p, Value(s))) return false;
    } else if (is_number_coord(key)) {
      const double d = entry_number(e, key);
      if (std::isnan(d)) return false;
      if (!match_value(p, Value(d))) return false;
    } else {
      // Metric predicate: the index lists the row's scalar metric names, so
      // a row without the metric is excluded without a parse. The value
      // check happens after the parse.
      if (std::find(e.metrics.begin(), e.metrics.end(), key) ==
          e.metrics.end()) {
        return false;
      }
    }
  }
  return true;
}

/// NaN ranks below every number; otherwise the usual total order.
int cmp_double(double a, double b) {
  const bool na = std::isnan(a), nb = std::isnan(b);
  if (na || nb) return na == nb ? 0 : (na ? -1 : 1);
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

/// Canonical result order: coordinate tuple, then hash as tiebreak. Rows
/// with equal hashes are identical campaign rows, so ties cannot change
/// the output bytes.
bool entry_less(const IndexEntry& a, const IndexEntry& b) {
  if (int c = a.netlist.compare(b.netlist)) return c < 0;
  if (int c = a.ras.compare(b.ras)) return c < 0;
  if (int c = cmp_double(a.t_active, b.t_active)) return c < 0;
  if (int c = cmp_double(a.t_standby, b.t_standby)) return c < 0;
  if (int c = cmp_double(a.years, b.years)) return c < 0;
  if (int c = a.analysis.compare(b.analysis)) return c < 0;
  return a.hash < b.hash;
}

struct Matched {
  const IndexEntry* entry = nullptr;
  Value row;  ///< parsed store row; null when the query never needed it
  bool parsed = false;
};

/// The selected / grouped cell for column \p col: coordinates come from the
/// index entry (always present there when present in the row), everything
/// else from the parsed row's metrics object. Null when absent.
Value cell_value(const Matched& m, const std::string& col) {
  const IndexEntry& e = *m.entry;
  if (col == "hash") return Value(e.hash);
  if (is_string_coord(col)) {
    const std::string& s = entry_string(e, col);
    return s.empty() ? Value() : Value(s);
  }
  if (is_number_coord(col)) {
    const double d = entry_number(e, col);
    return std::isnan(d) ? Value() : Value(d);
  }
  if (!m.parsed) return Value();
  if (const Value* metrics = m.row.find("metrics")) {
    if (const Value* v = metrics->find(col)) return *v;
  }
  return Value();
}

Predicate parse_predicate(const std::string& key, const Value& v) {
  Predicate p;
  const auto leaf = [&](const Value& cand) {
    if (!cand.is_string() && !cand.is_number()) {
      throw std::invalid_argument("query: predicate for \"" + key +
                                  "\" must use strings or numbers");
    }
    p.any_of.push_back(cand);
  };
  switch (v.kind()) {
    case Value::Kind::String:
    case Value::Kind::Number: leaf(v); break;
    case Value::Kind::Array: {
      if (v.as_array().empty()) {
        throw std::invalid_argument("query: empty alternative list for \"" +
                                    key + "\"");
      }
      for (const Value& cand : v.as_array()) leaf(cand);
      break;
    }
    case Value::Kind::Object: {
      p.has_range = true;
      p.min = -std::numeric_limits<double>::infinity();
      p.max = std::numeric_limits<double>::infinity();
      bool bounded = false;
      for (const auto& [k, bound] : v.as_object()) {
        if (k == "min") {
          p.min = bound.as_number();
          bounded = true;
        } else if (k == "max") {
          p.max = bound.as_number();
          bounded = true;
        } else {
          throw std::invalid_argument("query: range for \"" + key +
                                      "\" allows only \"min\"/\"max\" (got \"" +
                                      k + "\")");
        }
      }
      if (!bounded) {
        throw std::invalid_argument("query: range for \"" + key +
                                    "\" needs \"min\" or \"max\"");
      }
      break;
    }
    default:
      throw std::invalid_argument("query: bad predicate for \"" + key + "\"");
  }
  return p;
}

Aggregate parse_aggregate(const Value& v) {
  if (!v.is_object()) {
    throw std::invalid_argument("query: \"agg\" must be an object");
  }
  Aggregate a;
  for (const auto& [k, member] : v.as_object()) {
    if (k == "op") {
      a.op = member.as_string();
    } else if (k == "q") {
      a.q = member.as_number();
    } else if (k == "by") {
      for (const Value& c : member.as_array()) {
        const std::string& name = c.as_string();
        if (!is_coord(name)) {
          throw std::invalid_argument(
              "query: \"by\" accepts grid coordinates only (got \"" + name +
              "\")");
        }
        a.by.push_back(name);
      }
    } else if (k == "metrics") {
      for (const Value& m : member.as_array()) a.metrics.push_back(m.as_string());
    } else {
      throw std::invalid_argument("query: unknown \"agg\" member \"" + k +
                                  "\"");
    }
  }
  static constexpr const char* kOps[] = {"count", "min",  "max",
                                         "sum",   "mean", "quantile"};
  if (std::find(std::begin(kOps), std::end(kOps), a.op) == std::end(kOps)) {
    throw std::invalid_argument(
        "query: \"agg.op\" must be count|min|max|sum|mean|quantile (got \"" +
        a.op + "\")");
  }
  if (a.op == "quantile" && !(a.q >= 0.0 && a.q <= 1.0)) {
    throw std::invalid_argument("query: \"agg.q\" must be in [0, 1]");
  }
  return a;
}

/// Reduces \p values (finite, canonical row order) with \p agg's operator.
double reduce(const Aggregate& agg, std::vector<double>& values) {
  if (agg.op == "min") return *std::min_element(values.begin(), values.end());
  if (agg.op == "max") return *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  if (agg.op == "sum") return sum;
  if (agg.op == "mean") return sum / static_cast<double>(values.size());
  // quantile: sorted linear interpolation
  std::sort(values.begin(), values.end());
  const double h = agg.q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  return values[lo] + (h - static_cast<double>(lo)) * (values[hi] - values[lo]);
}

/// Scalar metric names over the matched rows, first appearance in canonical
/// row order — the default select/aggregate metric set.
std::vector<std::string> metric_union(const std::vector<Matched>& matched) {
  std::vector<std::string> names;
  for (const Matched& m : matched) {
    for (const std::string& name : m.entry->metrics) {
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
  return names;
}

}  // namespace

StoreView::StoreView(std::string path) : path_(std::move(path)) {
  namespace fs = std::filesystem;
  std::error_code ec;
  auto add = [this](const std::string& p) {
    File f;
    f.path = p;
    f.index = campaign::load_index(p);
    files_.push_back(std::move(f));
  };
  if (fs::exists(path_, ec)) add(path_);
  for (int h = 0; h < campaign::ShardedStore::kMaxShards; ++h) {
    const std::string sp = campaign::ShardedStore::shard_path(path_, h);
    if (fs::exists(sp, ec)) add(sp);
  }
}

std::size_t StoreView::total_rows() const {
  std::size_t total = 0;
  for (const File& f : files_) total += f.index.entries.size();
  return total;
}

Query parse_query(const Value& q) {
  if (!q.is_object()) {
    throw std::invalid_argument("query: document must be an object");
  }
  Query out;
  for (const auto& [key, member] : q.as_object()) {
    if (key == "where") {
      if (!member.is_object()) {
        throw std::invalid_argument("query: \"where\" must be an object");
      }
      for (const auto& [col, pred] : member.as_object()) {
        out.where.emplace_back(col, parse_predicate(col, pred));
      }
    } else if (key == "select") {
      for (const Value& col : member.as_array()) {
        out.select.push_back(col.as_string());
      }
      if (out.select.empty()) {
        throw std::invalid_argument("query: \"select\" must name columns");
      }
    } else if (key == "agg") {
      out.has_agg = true;
      out.agg = parse_aggregate(member);
    } else if (key == "limit") {
      const double n = member.as_number();
      if (n < 0 || n != static_cast<double>(static_cast<long long>(n))) {
        throw std::invalid_argument(
            "query: \"limit\" must be a non-negative integer");
      }
      out.limit = static_cast<long long>(n);
    } else {
      throw std::invalid_argument("query: unknown member \"" + key + "\"");
    }
  }
  return out;
}

QueryResult run_query(const StoreView& view, const Query& q, int n_threads) {
  // Does any step need the row content, or do index entries suffice?
  // Metric value predicates and metric output columns need the parse;
  // count-style aggregations over coordinates never touch the files.
  bool needs_rows = false;
  for (const auto& [key, p] : q.where) {
    if (!is_coord(key)) needs_rows = true;
  }
  if (q.has_agg) {
    if (q.agg.op != "count") needs_rows = true;
  } else if (q.select.empty()) {
    needs_rows = true;  // default select carries metric values
  } else {
    for (const std::string& col : q.select) {
      if (!is_coord(col)) needs_rows = true;
    }
  }
  // Metric *value* predicates (ranges / equalities on non-coordinates) are
  // re-checked on the parsed row; name containment already ran on the entry.
  std::vector<const std::pair<std::string, Predicate>*> metric_preds;
  for (const auto& kp : q.where) {
    if (!is_coord(kp.first)) metric_preds.push_back(&kp);
  }

  struct FileScan {
    std::vector<Matched> matched;
    std::size_t parsed = 0;
  };
  const int n_files = static_cast<int>(view.files().size());
  std::vector<FileScan> scans(static_cast<std::size_t>(n_files));
  common::parallel_for(n_files, n_threads, [&](int fi) {
    const StoreView::File& file = view.files()[static_cast<std::size_t>(fi)];
    FileScan& scan = scans[static_cast<std::size_t>(fi)];
    std::ifstream f;  // opened lazily: count-only scans never touch the file
    std::string buf;
    for (const IndexEntry& e : file.index.entries) {
      if (!entry_matches(e, q.where)) continue;
      Matched m;
      m.entry = &e;
      if (needs_rows) {
        if (!f.is_open()) {
          f.open(file.path, std::ios::binary);
          if (!f) {
            throw std::runtime_error("query: cannot open " + file.path);
          }
        }
        buf.resize(e.length);
        f.seekg(static_cast<std::streamoff>(e.offset));
        f.read(buf.data(), static_cast<std::streamsize>(e.length));
        if (!f) {
          throw std::runtime_error("query: short read in " + file.path);
        }
        m.row = common::json::parse(buf);
        m.parsed = true;
        ++scan.parsed;
        bool ok = true;
        for (const auto* kp : metric_preds) {
          const Value* metrics = m.row.find("metrics");
          const Value* v =
              metrics == nullptr ? nullptr : metrics->find(kp->first);
          if (v == nullptr || !match_value(kp->second, *v)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
      }
      scan.matched.push_back(std::move(m));
    }
  });

  QueryResult out;
  out.stats.files = n_files;
  for (const StoreView::File& f : view.files()) {
    out.stats.index_entries += f.index.entries.size();
  }
  std::vector<Matched> matched;
  for (FileScan& scan : scans) {
    out.stats.rows_parsed += scan.parsed;
    for (Matched& m : scan.matched) matched.push_back(std::move(m));
  }
  std::sort(matched.begin(), matched.end(),
            [](const Matched& a, const Matched& b) {
              return entry_less(*a.entry, *b.entry);
            });
  out.stats.rows_matched = matched.size();

  if (!q.has_agg) {
    out.columns = q.select;
    if (out.columns.empty()) {
      out.columns = {"netlist", "ras",   "t_active",
                     "t_standby", "years", "analysis"};
      for (std::string& name : metric_union(matched)) {
        out.columns.push_back(std::move(name));
      }
    }
    for (const Matched& m : matched) {
      std::vector<Value> cells;
      cells.reserve(out.columns.size());
      for (const std::string& col : out.columns) {
        cells.push_back(cell_value(m, col));
      }
      out.rows.push_back(std::move(cells));
    }
  } else {
    const Aggregate& agg = q.agg;
    std::vector<std::string> metric_cols;
    if (agg.op != "count") {
      metric_cols = agg.metrics.empty() ? metric_union(matched) : agg.metrics;
    }
    out.columns = agg.by;
    out.columns.push_back("count");
    for (const std::string& m : metric_cols) {
      out.columns.push_back(agg.op + "_" + m);
    }
    // Group in canonical row order; the group key is the dumped by-tuple.
    struct Group {
      std::vector<Value> key;
      std::vector<const Matched*> rows;
    };
    std::vector<Group> groups;
    std::unordered_map<std::string, std::size_t> group_of;
    for (const Matched& m : matched) {
      std::vector<Value> key;
      key.reserve(agg.by.size());
      common::json::Array key_doc;
      for (const std::string& col : agg.by) {
        key.push_back(cell_value(m, col));
        key_doc.push_back(key.back());
      }
      const std::string key_str = common::json::dump(Value(key_doc));
      auto [it, fresh] = group_of.emplace(key_str, groups.size());
      if (fresh) groups.push_back(Group{std::move(key), {}});
      groups[it->second].rows.push_back(&m);
    }
    for (Group& g : groups) {
      std::vector<Value> cells = std::move(g.key);
      cells.emplace_back(static_cast<double>(g.rows.size()));
      for (const std::string& mname : metric_cols) {
        std::vector<double> values;
        values.reserve(g.rows.size());
        for (const Matched* m : g.rows) {
          const Value v = cell_value(*m, mname);
          if (v.is_number() && std::isfinite(v.as_number())) {
            values.push_back(v.as_number());
          }
        }
        cells.push_back(values.empty() ? Value() : Value(reduce(agg, values)));
      }
      out.rows.push_back(std::move(cells));
    }
  }

  if (q.limit >= 0 && out.rows.size() > static_cast<std::size_t>(q.limit)) {
    out.rows.resize(static_cast<std::size_t>(q.limit));
  }
  return out;
}

report::Table QueryResult::table() const {
  report::Table t;
  t.headers = columns;
  for (const std::vector<Value>& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& v : row) {
      switch (v.kind()) {
        case Value::Kind::Null: cells.emplace_back(); break;
        case Value::Kind::String: cells.push_back(v.as_string()); break;
        case Value::Kind::Number:
          cells.push_back(common::json::format_number(v.as_number()));
          break;
        default: cells.push_back(common::json::dump(v));
      }
    }
    t.add_row(std::move(cells));
  }
  return t;
}

std::string QueryResult::to_json() const {
  Value doc;
  common::json::Array cols;
  for (const std::string& c : columns) cols.emplace_back(c);
  doc.set("columns", Value(std::move(cols)));
  common::json::Array out_rows;
  out_rows.reserve(rows.size());
  for (const std::vector<Value>& row : rows) {
    common::json::Array cells;
    cells.reserve(row.size());
    for (const Value& v : row) cells.push_back(v);
    out_rows.push_back(Value(std::move(cells)));
  }
  doc.set("rows", Value(std::move(out_rows)));
  return common::json::dump(doc, -1, common::json::NonFinite::Null);
}

}  // namespace nbtisim::query
