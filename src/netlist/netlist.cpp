#include "netlist/netlist.h"

#include <algorithm>
#include <stdexcept>

namespace nbtisim::netlist {
namespace {

bool arity_ok(tech::GateFn fn, std::size_t n) {
  switch (fn) {
    case tech::GateFn::Not:
    case tech::GateFn::Buf:
      return n == 1;
    case tech::GateFn::Xor:
    case tech::GateFn::Xnor:
      return n == 2;
    default:
      return n >= 2 && n <= 4;
  }
}

}  // namespace

Netlist::Netlist(std::string name) : name_(std::move(name)) {}

void Netlist::invalidate_levelization() {
  std::lock_guard<std::mutex> lock(*level_mutex_);
  level_cache_.reset();
}

const Levelization& Netlist::levelization() const {
  std::lock_guard<std::mutex> lock(*level_mutex_);
  if (!level_cache_) {
    auto lev = std::make_shared<Levelization>();
    lev->node_level.assign(num_nodes(), 0);
    for (const Gate& g : gates_) {
      int lv = 0;
      for (NodeId in : g.fanins) lv = std::max(lv, lev->node_level[in]);
      lev->node_level[g.output] = lv + 1;
    }
    for (int lv : lev->node_level) lev->depth = std::max(lev->depth, lv);

    // Wavefront CSR: counting sort by output level keeps ascending gate
    // index within each level.
    lev->level_offset.assign(lev->depth + 2, 0);
    for (const Gate& g : gates_) {
      ++lev->level_offset[lev->node_level[g.output] + 1];
    }
    for (std::size_t l = 1; l < lev->level_offset.size(); ++l) {
      lev->level_offset[l] += lev->level_offset[l - 1];
    }
    lev->level_gates.resize(gates_.size());
    std::vector<int> cursor(lev->level_offset.begin(),
                            lev->level_offset.end() - 1);
    for (int gi = 0; gi < num_gates(); ++gi) {
      lev->level_gates[cursor[lev->node_level[gates_[gi].output]]++] = gi;
    }

    lev->fanout_offset.assign(num_nodes() + 1, 0);
    for (NodeId n = 0; n < num_nodes(); ++n) {
      lev->fanout_offset[n + 1] =
          lev->fanout_offset[n] + static_cast<int>(fanouts_[n].size());
    }
    lev->fanout_gates.reserve(lev->fanout_offset.back());
    for (NodeId n = 0; n < num_nodes(); ++n) {
      lev->fanout_gates.insert(lev->fanout_gates.end(), fanouts_[n].begin(),
                               fanouts_[n].end());
    }
    level_cache_ = std::move(lev);
  }
  return *level_cache_;
}

NodeId Netlist::new_node(std::string node_name) {
  if (node_name.empty()) {
    throw std::invalid_argument("Netlist: empty net name");
  }
  auto [it, inserted] =
      by_name_.emplace(node_name, static_cast<NodeId>(node_names_.size()));
  if (!inserted) {
    throw std::invalid_argument("Netlist '" + name_ + "': duplicate net '" +
                                node_name + "'");
  }
  node_names_.push_back(std::move(node_name));
  driver_.push_back(-1);
  fanouts_.emplace_back();
  invalidate_levelization();
  return it->second;
}

NodeId Netlist::add_input(std::string node_name) {
  const NodeId id = new_node(std::move(node_name));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_gate(tech::GateFn fn, std::vector<NodeId> fanins,
                         std::string out_name) {
  if (!arity_ok(fn, fanins.size())) {
    throw std::invalid_argument(
        "Netlist '" + name_ + "': bad arity " + std::to_string(fanins.size()) +
        " for gate " + std::string(tech::gate_fn_name(fn)) + " at '" +
        out_name + "'");
  }
  for (NodeId in : fanins) {
    if (in < 0 || in >= num_nodes()) {
      throw std::invalid_argument("Netlist '" + name_ +
                                  "': gate fanin does not exist yet at '" +
                                  out_name + "'");
    }
  }
  const NodeId out = new_node(std::move(out_name));
  const int gate_idx = static_cast<int>(gates_.size());
  for (NodeId in : fanins) fanouts_[in].push_back(gate_idx);
  gates_.push_back(Gate{fn, std::move(fanins), out});
  driver_[out] = gate_idx;
  return out;
}

void Netlist::mark_output(NodeId node) {
  if (node < 0 || node >= num_nodes()) {
    throw std::invalid_argument("Netlist::mark_output: no such net");
  }
  if (std::find(outputs_.begin(), outputs_.end(), node) == outputs_.end()) {
    outputs_.push_back(node);
    invalidate_levelization();
  }
}

const std::string& Netlist::node_name(NodeId node) const {
  return node_names_.at(node);
}

NodeId Netlist::find_node(std::string_view node_name) const {
  auto it = by_name_.find(std::string(node_name));
  if (it == by_name_.end()) {
    throw std::out_of_range("Netlist '" + name_ + "': no net named '" +
                            std::string(node_name) + "'");
  }
  return it->second;
}

bool Netlist::has_node(std::string_view node_name) const {
  return by_name_.contains(std::string(node_name));
}

std::span<const int> Netlist::fanout_gates(NodeId node) const {
  return fanouts_.at(node);
}

std::vector<int> Netlist::node_levels() const {
  return levelization().node_level;
}

int Netlist::depth() const { return levelization().depth; }

void Netlist::validate() const {
  if (inputs_.empty()) throw std::logic_error("Netlist: no primary inputs");
  if (outputs_.empty()) throw std::logic_error("Netlist: no primary outputs");
  for (const Gate& g : gates_) {
    if (!arity_ok(g.fn, g.fanins.size())) {
      throw std::logic_error("Netlist: gate with invalid arity at '" +
                             node_name(g.output) + "'");
    }
  }
  // Every net should either feed a gate or be a primary output.
  for (NodeId n = 0; n < num_nodes(); ++n) {
    if (fanouts_[n].empty() &&
        std::find(outputs_.begin(), outputs_.end(), n) == outputs_.end()) {
      throw std::logic_error("Netlist: dangling net '" + node_name(n) + "'");
    }
  }
}

void Netlist::validate_topological() const {
  for (int gi = 0; gi < num_gates(); ++gi) {
    if (gates_[gi].fanins.empty()) {
      throw std::logic_error(
          "Netlist '" + name_ + "': gate " + std::to_string(gi) + " ('" +
          node_name(gates_[gi].output) +
          "') has no fanins — constant-driver gates are not representable "
          "(every construction path enforces arity >= 1)");
    }
    for (NodeId in : gates_[gi].fanins) {
      const int drv = driver_.at(in);
      if (drv >= gi) {
        throw std::logic_error(
            "Netlist '" + name_ + "': gate " + std::to_string(gi) + " ('" +
            node_name(gates_[gi].output) + "') reads net '" + node_name(in) +
            "' driven by later gate " + std::to_string(drv) +
            " — gate list is not in topological order");
      }
    }
  }
}

void Netlist::reorder_gates(std::span<const int> order) {
  if (static_cast<int>(order.size()) != num_gates()) {
    throw std::invalid_argument("Netlist::reorder_gates: order size mismatch");
  }
  std::vector<bool> seen(num_gates(), false);
  for (int old_idx : order) {
    if (old_idx < 0 || old_idx >= num_gates() || seen[old_idx]) {
      throw std::invalid_argument(
          "Netlist::reorder_gates: order is not a permutation");
    }
    seen[old_idx] = true;
  }

  std::vector<Gate> reordered;
  reordered.reserve(gates_.size());
  for (int old_idx : order) reordered.push_back(std::move(gates_[old_idx]));
  gates_ = std::move(reordered);

  for (NodeId n = 0; n < num_nodes(); ++n) {
    driver_[n] = -1;
    fanouts_[n].clear();
  }
  for (int gi = 0; gi < num_gates(); ++gi) {
    driver_[gates_[gi].output] = gi;
    for (NodeId in : gates_[gi].fanins) fanouts_[in].push_back(gi);
  }
  invalidate_levelization();
}

NodeId build_wide_gate(Netlist& nl, tech::GateFn fn,
                       std::span<const NodeId> fanins,
                       const std::string& name_prefix) {
  using tech::GateFn;
  if (fanins.empty()) {
    throw std::invalid_argument("build_wide_gate: no fanins");
  }
  auto fresh = [&nl, &name_prefix]() {
    return name_prefix + "_t" + std::to_string(nl.num_gates());
  };
  auto reduce_tree = [&](GateFn assoc_fn, std::span<const NodeId> ins) {
    // Balanced reduction with up-to-4-ary (or 2-ary for XOR) gates.
    const std::size_t radix =
        (assoc_fn == GateFn::Xor || assoc_fn == GateFn::Xnor) ? 2 : 4;
    std::vector<NodeId> layer(ins.begin(), ins.end());
    while (layer.size() > 1) {
      std::vector<NodeId> next;
      for (std::size_t i = 0; i < layer.size(); i += radix) {
        const std::size_t n = std::min(radix, layer.size() - i);
        if (n == 1) {
          next.push_back(layer[i]);
        } else {
          std::vector<NodeId> group(layer.begin() + i, layer.begin() + i + n);
          next.push_back(nl.add_gate(assoc_fn, std::move(group), fresh()));
        }
      }
      layer = std::move(next);
    }
    return layer[0];
  };

  switch (fn) {
    case GateFn::Not:
    case GateFn::Buf:
      if (fanins.size() != 1) {
        throw std::invalid_argument("build_wide_gate: NOT/BUF need 1 fanin");
      }
      return nl.add_gate(fn, {fanins[0]}, fresh());
    case GateFn::And:
    case GateFn::Or:
      if (fanins.size() == 1) return fanins[0];
      return reduce_tree(fn, fanins);
    case GateFn::Xor:
      if (fanins.size() == 1) return fanins[0];
      return reduce_tree(GateFn::Xor, fanins);
    case GateFn::Nand:
    case GateFn::Nor: {
      const GateFn inner = (fn == GateFn::Nand) ? GateFn::And : GateFn::Or;
      if (fanins.size() == 1) {
        return nl.add_gate(GateFn::Not, {fanins[0]}, fresh());
      }
      if (fanins.size() <= 4) {
        return nl.add_gate(fn, {fanins.begin(), fanins.end()}, fresh());
      }
      // Reduce groups with the non-inverting function, finish with one
      // inverting gate to preserve polarity.
      std::vector<NodeId> groups;
      for (std::size_t i = 0; i < fanins.size(); i += 4) {
        const std::size_t n = std::min<std::size_t>(4, fanins.size() - i);
        groups.push_back(
            n == 1 ? fanins[i] : reduce_tree(inner, fanins.subspan(i, n)));
      }
      if (groups.size() > 4) {
        const NodeId all = reduce_tree(inner, groups);
        return nl.add_gate(GateFn::Not, {all}, fresh());
      }
      return nl.add_gate(fn, std::move(groups), fresh());
    }
    case GateFn::Xnor: {
      if (fanins.size() == 2) {
        return nl.add_gate(GateFn::Xnor, {fanins.begin(), fanins.end()}, fresh());
      }
      const NodeId x = reduce_tree(GateFn::Xor, fanins);
      return nl.add_gate(GateFn::Not, {x}, fresh());
    }
  }
  throw std::logic_error("build_wide_gate: unknown gate function");
}

}  // namespace nbtisim::netlist
