#include "netlist/verilog_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "netlist/bench_io.h"

namespace nbtisim::netlist {
namespace {

/// Removes // and /* */ comments.
std::string strip_comments(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (std::size_t i = 0; i < text.size();) {
    if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') ++i;
    } else if (text[i] == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      const std::size_t end = text.find("*/", i + 2);
      if (end == std::string_view::npos) {
        throw std::invalid_argument("verilog: unterminated block comment");
      }
      i = end + 2;
      out += ' ';
    } else {
      out += text[i++];
    }
  }
  return out;
}

std::vector<std::string> tokenize(std::string_view stmt) {
  std::vector<std::string> tokens;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      tokens.push_back(cur);
      cur.clear();
    }
  };
  for (std::size_t i = 0; i < stmt.size(); ++i) {
    const char c = stmt[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '(' || c == ')' || c == ',' || c == ':') {
      flush();
      tokens.push_back(std::string(1, c));
    } else if (c == '[' || c == ']') {
      // Brackets bind to the preceding identifier (bit-select) when
      // directly attached, otherwise they open a range.
      if (c == '[' && !cur.empty()) {
        cur += c;  // part of a scalar reference like a[3]
      } else if (c == ']' && !cur.empty() &&
                 cur.find('[') != std::string::npos) {
        cur += c;
      } else {
        flush();
        tokens.push_back(std::string(1, c));
      }
    } else {
      cur += c;
    }
  }
  flush();
  return tokens;
}

bool is_primitive(const std::string& t) {
  return t == "and" || t == "nand" || t == "or" || t == "nor" || t == "xor" ||
         t == "xnor" || t == "not" || t == "buf";
}

}  // namespace

Netlist parse_verilog(std::string_view text, std::string fallback_name) {
  const std::string clean = strip_comments(text);

  // Statement split on ';' (module headers end with ';' too). 'endmodule'
  // has no semicolon; treat it as a terminator token.
  std::vector<std::string> statements;
  std::string cur;
  for (char c : clean) {
    if (c == ';') {
      statements.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  statements.push_back(cur);

  std::string module_name = std::move(fallback_name);
  std::ostringstream bench;
  bool in_module = false;
  bool saw_module = false;

  for (const std::string& stmt : statements) {
    const std::vector<std::string> tok = tokenize(stmt);
    if (tok.empty()) continue;
    std::size_t i = 0;
    // 'endmodule' may be glued to the front of the next statement chunk.
    while (i < tok.size() && tok[i] == "endmodule") {
      in_module = false;
      ++i;
    }
    if (i >= tok.size()) continue;

    if (tok[i] == "module") {
      if (saw_module) {
        throw std::invalid_argument(
            "verilog: multiple modules are not supported");
      }
      if (i + 1 >= tok.size()) {
        throw std::invalid_argument("verilog: module without a name");
      }
      module_name = tok[i + 1];
      in_module = true;
      saw_module = true;
      continue;  // port list carries no direction info; ignore
    }
    if (!in_module) {
      throw std::invalid_argument("verilog: statement outside module: '" +
                                  tok[i] + "'");
    }

    if (tok[i] == "input" || tok[i] == "output" || tok[i] == "wire") {
      const std::string kind = tok[i++];
      // Optional range [msb : lsb].
      long msb = -1, lsb = -1;
      if (i < tok.size() && tok[i] == "[") {
        if (i + 4 >= tok.size() || tok[i + 2] != ":" || tok[i + 4] != "]") {
          throw std::invalid_argument("verilog: malformed range in " + kind);
        }
        msb = std::stol(tok[i + 1]);
        lsb = std::stol(tok[i + 3]);
        i += 5;
      }
      for (; i < tok.size(); ++i) {
        if (tok[i] == ",") continue;
        const std::string& name = tok[i];
        auto emit = [&](const std::string& n) {
          if (kind == "input") bench << "INPUT(" << n << ")\n";
          if (kind == "output") bench << "OUTPUT(" << n << ")\n";
          // wires need no declaration in .bench
        };
        if (msb >= 0) {
          const long lo = std::min(msb, lsb), hi = std::max(msb, lsb);
          for (long b = lo; b <= hi; ++b) {
            emit(name + "[" + std::to_string(b) + "]");
          }
        } else {
          emit(name);
        }
      }
      continue;
    }

    if (is_primitive(tok[i])) {
      std::string fn = tok[i++];
      std::transform(fn.begin(), fn.end(), fn.begin(), ::toupper);
      if (fn == "BUF") fn = "BUFF";
      // Optional instance name before '('.
      if (i < tok.size() && tok[i] != "(") ++i;
      if (i >= tok.size() || tok[i] != "(") {
        throw std::invalid_argument("verilog: malformed instantiation of " +
                                    fn);
      }
      ++i;
      std::vector<std::string> args;
      for (; i < tok.size() && tok[i] != ")"; ++i) {
        if (tok[i] == ",") continue;
        args.push_back(tok[i]);
      }
      if (i >= tok.size()) {
        throw std::invalid_argument("verilog: unterminated instantiation of " +
                                    fn);
      }
      if (args.size() < 2) {
        throw std::invalid_argument("verilog: primitive needs an output and "
                                    "at least one input");
      }
      bench << args[0] << " = " << fn << "(";
      for (std::size_t a = 1; a < args.size(); ++a) {
        if (a > 1) bench << ", ";
        bench << args[a];
      }
      bench << ")\n";
      continue;
    }

    throw std::invalid_argument("verilog: unsupported construct '" + tok[i] +
                                "'");
  }
  if (!saw_module) {
    throw std::invalid_argument("verilog: no module found");
  }

  try {
    return parse_bench(bench.str(), module_name);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument(std::string("verilog: ") + e.what());
  }
}

Netlist load_verilog(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_verilog: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string name = path;
  const std::size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name.erase(0, slash + 1);
  const std::size_t dot = name.find_last_of('.');
  if (dot != std::string::npos) name.erase(dot);
  return parse_verilog(ss.str(), name);
}

std::string write_verilog(const Netlist& nl) {
  // Verilog identifiers cannot contain '[' unless escaped; escape any net
  // whose name is not a plain identifier.
  auto ident = [](const std::string& name) {
    const bool plain =
        !name.empty() &&
        (std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_') &&
        std::all_of(name.begin(), name.end(), [](unsigned char c) {
          return std::isalnum(c) || c == '_';
        });
    return plain ? name : "\\" + name + " ";
  };

  std::ostringstream out;
  out << "// " << nl.name() << " — written by nbtisim\n";
  out << "module " << nl.name() << " (";
  bool first = true;
  for (NodeId pi : nl.inputs()) {
    if (!first) out << ", ";
    out << ident(nl.node_name(pi));
    first = false;
  }
  for (NodeId po : nl.outputs()) {
    if (!first) out << ", ";
    out << ident(nl.node_name(po));
    first = false;
  }
  out << ");\n";
  for (NodeId pi : nl.inputs()) {
    out << "  input " << ident(nl.node_name(pi)) << ";\n";
  }
  for (NodeId po : nl.outputs()) {
    out << "  output " << ident(nl.node_name(po)) << ";\n";
  }
  for (const Gate& g : nl.gates()) {
    out << "  " << tech::gate_fn_name(g.fn) << " g" << nl.driver_gate(g.output)
        << " (" << ident(nl.node_name(g.output));
    for (NodeId in : g.fanins) out << ", " << ident(nl.node_name(in));
    out << ");\n";
  }
  out << "endmodule\n";
  return out.str();
}

}  // namespace nbtisim::netlist
