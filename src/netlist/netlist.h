/// \file netlist.h
/// \brief Gate-level combinational netlists modeled as DAGs.
///
/// "In circuit timing analysis, a combinational circuit can be modeled as a
/// directed acyclic graph G = (V, E)" (paper Section 3.3).  A Netlist owns
/// named nets (nodes) and gates; construction order enforces acyclicity
/// (every gate's fanins must already exist), so the gate list is always a
/// valid topological order.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tech/library.h"

namespace nbtisim::netlist {

/// Identifier of a net (signal) within a netlist.
using NodeId = int;

/// One logic gate instance.
struct Gate {
  tech::GateFn fn = tech::GateFn::Buf;
  std::vector<NodeId> fanins;
  NodeId output = -1;
};

/// Cached level structure of a netlist — the shared substrate for every
/// level-ordered traversal (logic-depth reports, incremental STA wavefronts,
/// level-scheduled evaluation).  Built lazily once per topology by
/// Netlist::levelization() and dropped on any mutation; all views are
/// immutable, so one instance can be read concurrently.
struct Levelization {
  /// Logic level per net: primary inputs at 0, gate output = 1 + max fanin
  /// level (exactly what Netlist::node_levels() always reported).
  std::vector<int> node_level;
  /// Longest input-to-output path length in gates (the max node level).
  int depth = 0;
  /// Gate wavefronts: gate indices bucketed by the level of their output
  /// net, as a CSR over levels 0..depth.  wavefront(l) lists every gate
  /// whose output sits at level l in ascending gate index; gates within one
  /// wavefront never read each other's outputs, so a wavefront can be
  /// processed in any order (or concurrently) without changing results.
  std::vector<int> level_offset;  ///< size depth + 2
  std::vector<int> level_gates;   ///< size num_gates
  /// Fanout CSR: the reader gate indices of every net in one flat array —
  /// the per-net vector<vector<int>> flattened for cache locality.
  std::vector<int> fanout_offset;  ///< size num_nodes + 1
  std::vector<int> fanout_gates;

  /// Gates whose output net sits at \p level (empty for level 0).
  std::span<const int> wavefront(int level) const {
    return std::span<const int>(level_gates)
        .subspan(level_offset[level],
                 level_offset[level + 1] - level_offset[level]);
  }
  /// Reader gates of \p node.
  std::span<const int> fanout(NodeId node) const {
    return std::span<const int>(fanout_gates)
        .subspan(fanout_offset[node],
                 fanout_offset[node + 1] - fanout_offset[node]);
  }
};

/// A combinational gate-level netlist.
class Netlist {
 public:
  explicit Netlist(std::string name);

  const std::string& name() const { return name_; }

  /// Creates a primary input net.
  /// \throws std::invalid_argument on duplicate net names
  NodeId add_input(std::string node_name);

  /// Creates a gate driving a new net; fanins must already exist.
  /// Gates with more than 4 fanins must be decomposed first
  /// (see build_wide_gate).
  /// \throws std::invalid_argument on bad fanins, arity, or duplicate names
  NodeId add_gate(tech::GateFn fn, std::vector<NodeId> fanins,
                  std::string out_name);

  /// Marks an existing net as a primary output.
  void mark_output(NodeId node);

  int num_nodes() const { return static_cast<int>(node_names_.size()); }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  std::span<const NodeId> inputs() const { return inputs_; }
  std::span<const NodeId> outputs() const { return outputs_; }
  std::span<const Gate> gates() const { return gates_; }
  const Gate& gate(int idx) const { return gates_.at(idx); }

  const std::string& node_name(NodeId node) const;

  /// Finds a net by name.
  /// \throws std::out_of_range when no such net exists
  NodeId find_node(std::string_view node_name) const;
  bool has_node(std::string_view node_name) const;

  /// Index of the gate driving \p node, or -1 for primary inputs.
  int driver_gate(NodeId node) const { return driver_.at(node); }
  bool is_input(NodeId node) const { return driver_.at(node) < 0; }

  /// Indices of gates reading \p node.
  std::span<const int> fanout_gates(NodeId node) const;

  /// The cached level structure (levels, depth, wavefront + fanout CSR).
  /// Built on first use, O(V + E); every later call is a cache hit until the
  /// netlist mutates.  The reference stays valid until the next mutating
  /// call (add_input/add_gate/mark_output/reorder_gates) — the same
  /// read-vs-mutate exclusion every query on this class already requires.
  /// Thread-safe: concurrent calls build at most one instance.
  const Levelization& levelization() const;

  /// Logic level of each node (inputs at 0; gate output = 1 + max fanin
  /// level).  A copy of levelization().node_level — prefer the cached view
  /// in hot paths.
  std::vector<int> node_levels() const;

  /// Longest input-to-output path length in gates (cached).
  int depth() const;

  /// Structural sanity checks (every output reachable, arities consistent).
  /// \throws std::logic_error describing the first violation
  void validate() const;

  /// Verifies the topological-order contract this header documents: every
  /// gate reads only primary inputs or outputs of *earlier* gates.
  /// StaEngine::analyze and Simulator silently miscompute on a violating
  /// gate list.  Netlists built through add_gate() hold it by construction;
  /// the .bench/Verilog loaders and the generators call this after
  /// construction, and it is the guard to run after reorder_gates().
  /// \throws std::logic_error naming the first offending gate
  void validate_topological() const;

  /// Re-orders the gate list: new gate i is old gate order[i].  Driver and
  /// fanout gate indices are remapped; nets keep their ids.  Useful for
  /// scheduling experiments (e.g. level-ordered evaluation).  Does NOT
  /// check that the new order is topological — follow with
  /// validate_topological() unless the permutation is known-safe.
  /// \throws std::invalid_argument if \p order is not a permutation of the
  ///         gate indices
  void reorder_gates(std::span<const int> order);

 private:
  std::string name_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<Gate> gates_;
  std::vector<int> driver_;                 // node -> gate index or -1
  std::vector<std::vector<int>> fanouts_;   // node -> reader gate indices

  // Lazily built level cache.  The mutex lives behind a shared_ptr so the
  // class keeps its implicit copy/move operations (copies share the mutex,
  // which is only ever contended, never corrupted; the cache itself is
  // immutable and safely shared).
  mutable std::shared_ptr<std::mutex> level_mutex_ =
      std::make_shared<std::mutex>();
  mutable std::shared_ptr<const Levelization> level_cache_;

  NodeId new_node(std::string node_name);
  void invalidate_levelization();
};

/// Builds a possibly-wide gate, decomposing fanin > 4 into a balanced tree of
/// library-supported gates (inverting functions keep their polarity: a wide
/// NAND becomes an AND-tree feeding a final NAND layer).
/// \returns the net carrying the function of all \p fanins
NodeId build_wide_gate(Netlist& nl, tech::GateFn fn, std::span<const NodeId> fanins,
                       const std::string& name_prefix);

}  // namespace nbtisim::netlist
