/// \file netlist.h
/// \brief Gate-level combinational netlists modeled as DAGs.
///
/// "In circuit timing analysis, a combinational circuit can be modeled as a
/// directed acyclic graph G = (V, E)" (paper Section 3.3).  A Netlist owns
/// named nets (nodes) and gates; construction order enforces acyclicity
/// (every gate's fanins must already exist), so the gate list is always a
/// valid topological order.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "tech/library.h"

namespace nbtisim::netlist {

/// Identifier of a net (signal) within a netlist.
using NodeId = int;

/// One logic gate instance.
struct Gate {
  tech::GateFn fn = tech::GateFn::Buf;
  std::vector<NodeId> fanins;
  NodeId output = -1;
};

/// A combinational gate-level netlist.
class Netlist {
 public:
  explicit Netlist(std::string name);

  const std::string& name() const { return name_; }

  /// Creates a primary input net.
  /// \throws std::invalid_argument on duplicate net names
  NodeId add_input(std::string node_name);

  /// Creates a gate driving a new net; fanins must already exist.
  /// Gates with more than 4 fanins must be decomposed first
  /// (see build_wide_gate).
  /// \throws std::invalid_argument on bad fanins, arity, or duplicate names
  NodeId add_gate(tech::GateFn fn, std::vector<NodeId> fanins,
                  std::string out_name);

  /// Marks an existing net as a primary output.
  void mark_output(NodeId node);

  int num_nodes() const { return static_cast<int>(node_names_.size()); }
  int num_gates() const { return static_cast<int>(gates_.size()); }
  int num_inputs() const { return static_cast<int>(inputs_.size()); }
  int num_outputs() const { return static_cast<int>(outputs_.size()); }

  std::span<const NodeId> inputs() const { return inputs_; }
  std::span<const NodeId> outputs() const { return outputs_; }
  std::span<const Gate> gates() const { return gates_; }
  const Gate& gate(int idx) const { return gates_.at(idx); }

  const std::string& node_name(NodeId node) const;

  /// Finds a net by name.
  /// \throws std::out_of_range when no such net exists
  NodeId find_node(std::string_view node_name) const;
  bool has_node(std::string_view node_name) const;

  /// Index of the gate driving \p node, or -1 for primary inputs.
  int driver_gate(NodeId node) const { return driver_.at(node); }
  bool is_input(NodeId node) const { return driver_.at(node) < 0; }

  /// Indices of gates reading \p node.
  std::span<const int> fanout_gates(NodeId node) const;

  /// Logic level of each node (inputs at 0; gate output = 1 + max fanin level).
  std::vector<int> node_levels() const;

  /// Longest input-to-output path length in gates.
  int depth() const;

  /// Structural sanity checks (every output reachable, arities consistent).
  /// \throws std::logic_error describing the first violation
  void validate() const;

  /// Verifies the topological-order contract this header documents: every
  /// gate reads only primary inputs or outputs of *earlier* gates.
  /// StaEngine::analyze and Simulator silently miscompute on a violating
  /// gate list.  Netlists built through add_gate() hold it by construction;
  /// the .bench/Verilog loaders and the generators call this after
  /// construction, and it is the guard to run after reorder_gates().
  /// \throws std::logic_error naming the first offending gate
  void validate_topological() const;

  /// Re-orders the gate list: new gate i is old gate order[i].  Driver and
  /// fanout gate indices are remapped; nets keep their ids.  Useful for
  /// scheduling experiments (e.g. level-ordered evaluation).  Does NOT
  /// check that the new order is topological — follow with
  /// validate_topological() unless the permutation is known-safe.
  /// \throws std::invalid_argument if \p order is not a permutation of the
  ///         gate indices
  void reorder_gates(std::span<const int> order);

 private:
  std::string name_;
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::vector<Gate> gates_;
  std::vector<int> driver_;                 // node -> gate index or -1
  std::vector<std::vector<int>> fanouts_;   // node -> reader gate indices

  NodeId new_node(std::string node_name);
};

/// Builds a possibly-wide gate, decomposing fanin > 4 into a balanced tree of
/// library-supported gates (inverting functions keep their polarity: a wide
/// NAND becomes an AND-tree feeding a final NAND layer).
/// \returns the net carrying the function of all \p fanins
NodeId build_wide_gate(Netlist& nl, tech::GateFn fn, std::span<const NodeId> fanins,
                       const std::string& name_prefix);

}  // namespace nbtisim::netlist
