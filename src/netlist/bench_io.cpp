#include "netlist/bench_io.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace nbtisim::netlist {
namespace {

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

bool is_dff(const std::string& raw) { return upper(raw) == "DFF"; }

tech::GateFn fn_from_name(const std::string& raw, int line_no, bool cut_dffs) {
  const std::string t = upper(raw);
  using tech::GateFn;
  if (t == "AND") return GateFn::And;
  if (t == "NAND") return GateFn::Nand;
  if (t == "OR") return GateFn::Or;
  if (t == "NOR") return GateFn::Nor;
  if (t == "XOR") return GateFn::Xor;
  if (t == "XNOR") return GateFn::Xnor;
  if (t == "NOT" || t == "INV") return GateFn::Not;
  if (t == "BUF" || t == "BUFF") return GateFn::Buf;
  if (t == "DFF") {
    (void)cut_dffs;  // handled by the caller; reaching here means rejection
    throw std::invalid_argument(
        "bench line " + std::to_string(line_no) +
        ": DFF found; pass BenchOptions{.cut_dffs = true} to cut sequential "
        "elements");
  }
  throw std::invalid_argument("bench line " + std::to_string(line_no) +
                              ": unknown gate type '" + raw + "'");
}

struct GateDef {
  std::string out;
  tech::GateFn fn;
  std::vector<std::string> ins;
  int line_no;
};

}  // namespace

Netlist parse_bench(std::string_view text, std::string name,
                    const BenchOptions& options) {
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<std::pair<std::string, std::string>> dffs;  // (q, d)
  std::vector<GateDef> defs;
  std::unordered_map<std::string, int> def_of;  // out name -> defs index

  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const std::string t = trim(line);
    if (t.empty()) continue;

    auto paren_arg = [&](std::string_view head) -> std::string {
      const std::size_t open = t.find('(');
      const std::size_t close = t.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        throw std::invalid_argument("bench line " + std::to_string(line_no) +
                                    ": malformed " + std::string(head));
      }
      return trim(std::string_view(t).substr(open + 1, close - open - 1));
    };

    const std::string head = upper(t.substr(0, t.find('(')));
    if (head == "INPUT") {
      input_names.push_back(paren_arg("INPUT"));
      continue;
    }
    if (head == "OUTPUT") {
      output_names.push_back(paren_arg("OUTPUT"));
      continue;
    }

    const std::size_t eq = t.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("bench line " + std::to_string(line_no) +
                                  ": expected 'name = GATE(...)'");
    }
    const std::string out = trim(std::string_view(t).substr(0, eq));
    const std::string rhs = trim(std::string_view(t).substr(eq + 1));
    const std::size_t open = rhs.find('(');
    const std::size_t close = rhs.rfind(')');
    if (out.empty() || open == std::string::npos ||
        close == std::string::npos || close < open) {
      throw std::invalid_argument("bench line " + std::to_string(line_no) +
                                  ": malformed gate definition");
    }
    const std::string fn_name = trim(rhs.substr(0, open));
    if (options.cut_dffs && is_dff(fn_name)) {
      const std::string d =
          trim(rhs.substr(open + 1, close - open - 1));
      if (d.empty() || d.find(',') != std::string::npos) {
        throw std::invalid_argument("bench line " + std::to_string(line_no) +
                                    ": DFF must have exactly one input");
      }
      dffs.emplace_back(out, d);
      input_names.push_back(out);  // Q becomes a pseudo primary input
      continue;
    }
    GateDef def;
    def.out = out;
    def.fn = fn_from_name(fn_name, line_no, options.cut_dffs);
    def.line_no = line_no;
    std::string arg;
    std::istringstream args{rhs.substr(open + 1, close - open - 1)};
    while (std::getline(args, arg, ',')) {
      const std::string a = trim(arg);
      if (a.empty()) {
        throw std::invalid_argument("bench line " + std::to_string(line_no) +
                                    ": empty fanin");
      }
      def.ins.push_back(a);
    }
    if (def.ins.empty()) {
      throw std::invalid_argument("bench line " + std::to_string(line_no) +
                                  ": gate with no fanins");
    }
    if (def_of.contains(def.out)) {
      throw std::invalid_argument("bench line " + std::to_string(line_no) +
                                  ": net '" + def.out + "' driven twice");
    }
    def_of.emplace(def.out, static_cast<int>(defs.size()));
    defs.push_back(std::move(def));
  }

  Netlist nl(std::move(name));
  std::unordered_set<std::string> input_set(input_names.begin(),
                                            input_names.end());
  for (const std::string& pi : input_names) nl.add_input(pi);

  // Topological instantiation by iterative DFS over definitions.
  enum class Mark : unsigned char { White, Grey, Black };
  std::vector<Mark> mark(defs.size(), Mark::White);

  auto instantiate = [&](int root) {
    std::vector<std::pair<int, std::size_t>> stack{{root, 0}};
    while (!stack.empty()) {
      auto& [d, next_in] = stack.back();
      GateDef& def = defs[d];
      if (mark[d] == Mark::Black) {
        stack.pop_back();
        continue;
      }
      mark[d] = Mark::Grey;
      bool descended = false;
      while (next_in < def.ins.size()) {
        const std::string& in_name = def.ins[next_in];
        ++next_in;
        if (input_set.contains(in_name) || nl.has_node(in_name)) continue;
        auto it = def_of.find(in_name);
        if (it == def_of.end()) {
          throw std::invalid_argument("bench: net '" + in_name +
                                      "' used at line " +
                                      std::to_string(def.line_no) +
                                      " is never driven");
        }
        if (mark[it->second] == Mark::Grey) {
          throw std::invalid_argument("bench: combinational cycle through '" +
                                      in_name + "'");
        }
        if (mark[it->second] == Mark::White) {
          stack.emplace_back(it->second, 0);
          descended = true;
          break;
        }
      }
      if (descended) continue;
      // All fanins available: build this gate.
      std::vector<NodeId> fanins;
      fanins.reserve(def.ins.size());
      for (const std::string& in_name : def.ins) {
        fanins.push_back(nl.find_node(in_name));
      }
      if (fanins.size() <= 4 && !(fanins.size() > 2 &&
                                  (def.fn == tech::GateFn::Xor ||
                                   def.fn == tech::GateFn::Xnor))) {
        nl.add_gate(def.fn, std::move(fanins), def.out);
      } else {
        const NodeId wide = build_wide_gate(nl, def.fn, fanins, def.out);
        // Alias the final helper net to the declared name via a buffer-free
        // rename: .bench semantics require the net to carry def.out, so we
        // add a BUF only when the tree result cannot be renamed.
        nl.add_gate(tech::GateFn::Buf, {wide}, def.out);
      }
      mark[d] = Mark::Black;
      stack.pop_back();
    }
  };

  for (int d = 0; d < static_cast<int>(defs.size()); ++d) {
    if (mark[d] == Mark::White) instantiate(d);
  }

  for (const std::string& po : output_names) {
    if (!nl.has_node(po)) {
      throw std::invalid_argument("bench: OUTPUT('" + po + "') is never driven");
    }
    nl.mark_output(nl.find_node(po));
  }
  // DFF D pins become pseudo primary outputs (the combinational cut).
  for (const auto& [q, d] : dffs) {
    if (!nl.has_node(d)) {
      throw std::invalid_argument("bench: DFF input '" + d +
                                  "' is never driven");
    }
    nl.mark_output(nl.find_node(d));
  }
  // The parser emits definitions in dependency order, but the downstream
  // engines silently miscompute on any violation — check, don't trust.
  nl.validate_topological();
  return nl;
}

Netlist load_bench(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_bench: cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string circuit_name = path;
  const std::size_t slash = circuit_name.find_last_of('/');
  if (slash != std::string::npos) circuit_name.erase(0, slash + 1);
  const std::size_t dot = circuit_name.find_last_of('.');
  if (dot != std::string::npos) circuit_name.erase(dot);
  return parse_bench(ss.str(), circuit_name);
}

std::string write_bench(const Netlist& nl) {
  std::ostringstream out;
  out << "# " << nl.name() << " — written by nbtisim\n";
  for (NodeId pi : nl.inputs()) out << "INPUT(" << nl.node_name(pi) << ")\n";
  for (NodeId po : nl.outputs()) out << "OUTPUT(" << nl.node_name(po) << ")\n";
  for (const Gate& g : nl.gates()) {
    std::string fn = upper(std::string(tech::gate_fn_name(g.fn)));
    if (fn == "BUF") fn = "BUFF";
    out << nl.node_name(g.output) << " = " << fn << "(";
    for (std::size_t i = 0; i < g.fanins.size(); ++i) {
      if (i) out << ", ";
      out << nl.node_name(g.fanins[i]);
    }
    out << ")\n";
  }
  return out.str();
}

}  // namespace nbtisim::netlist
