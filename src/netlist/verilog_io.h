/// \file verilog_io.h
/// \brief Reader/writer for gate-level structural Verilog.
///
/// Supports the classic primitive-gate subset that gate-level benchmark
/// distributions (including ISCAS85 conversions) use:
///
///     module c17 (N1, N2, N3, N6, N7, N22, N23);
///       input N1, N2, N3, N6, N7;
///       output N22, N23;
///       wire N10, N11;
///       nand g0 (N10, N1, N3);   // output first, then inputs
///       not  g1 (N11, N10);
///     endmodule
///
/// Recognized: one module; `input`/`output`/`wire` declarations with
/// optional `[msb:lsb]` ranges (expanded to `name[i]` scalar nets);
/// primitive instantiations of and/nand/or/nor/xor/xnor/not/buf (instance
/// name optional); `//` and `/* */` comments. Gates wider than the library
/// are decomposed as in the .bench reader.
#pragma once

#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace nbtisim::netlist {

/// Parses structural Verilog text.
/// \throws std::invalid_argument on syntax errors, unsupported constructs,
///         undriven nets, or combinational cycles
Netlist parse_verilog(std::string_view text, std::string fallback_name = "top");

/// Loads a structural Verilog file.
/// \throws std::runtime_error when the file cannot be read
Netlist load_verilog(const std::string& path);

/// Serializes a netlist as structural Verilog.
std::string write_verilog(const Netlist& nl);

}  // namespace nbtisim::netlist
