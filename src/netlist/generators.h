/// \file generators.h
/// \brief Structural and statistical circuit generators.
///
/// The paper evaluates on the ISCAS85 suite synthesized to a 90 nm library.
/// The canonical netlists are not redistributable inside this repository, so
/// we substitute deterministically generated circuits (DESIGN.md Section 2):
///
///   - genuinely *structural* generators where the ISCAS85 function is known
///     and constructible: c6288 is a 16x16 array multiplier, c432 a 27-channel
///     priority/interrupt controller, c499/c1355 a 32-bit single-error
///     correcting network (c1355 = c499 with XORs expanded), c880 an 8-bit
///     ALU core;
///   - seeded layered random DAGs matching the published PI/PO/gate counts
///     for the remaining circuits.
///
/// Everything the paper measures (STA depth distributions, per-gate signal
/// probabilities, leakage/aging statistics) depends on topology and gate-type
/// mix, which these generators preserve; absolute per-circuit numbers are
/// expected to differ (EXPERIMENTS.md tracks shape, not identity).
///
/// Real .bench files, when available, can be loaded with load_bench() and fed
/// to the identical flow.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.h"

namespace nbtisim::netlist {

/// Parameters for the layered random DAG generator.
struct RandomDagSpec {
  int n_inputs = 32;
  int n_outputs = 16;
  int n_gates = 500;
  std::uint64_t seed = 1;
  /// Fraction of fanin picks drawn from the most recent nets (locality).
  double locality = 0.75;
};

/// Deterministic layered random DAG with an ISCAS85-like gate-type mix.
/// Primary outputs are the nets left without fanout (count approximates
/// \p spec.n_outputs).
Netlist make_random_dag(const std::string& name, const RandomDagSpec& spec);

/// n x n unsigned array multiplier (AND partial products + half/full adder
/// array) — the structure of ISCAS85 c6288 (which is a 16x16 multiplier).
Netlist make_multiplier(const std::string& name, int bits);

/// Ripple-carry adder/subtractor + AND/OR/XOR datapath with an output mux
/// tree and carry/zero flags — an ALU core in the spirit of c880.
Netlist make_alu(const std::string& name, int width);

/// Priority/interrupt controller: masked requests, priority grant chain,
/// binary encode + valid + parity — in the spirit of c432 (27 channels,
/// 9 mask inputs, 7 outputs).
Netlist make_priority_controller(const std::string& name, int channels,
                                 int mask_groups);

/// 32-bit single-error-correcting checker/corrector: syndrome parity trees
/// over deterministic bit subsets, per-bit error decode, correction XOR —
/// in the spirit of c499.  With \p expand_xor each 2-input XOR is expanded
/// into its 4-NAND equivalent, which is exactly the relationship between
/// c499 and c1355.
Netlist make_ecc(const std::string& name, int data_bits, int check_bits,
                 bool expand_xor);

/// Balanced XOR parity tree over \p width inputs (a classic STA stressor).
Netlist make_parity_tree(const std::string& name, int width);

/// Ripple-carry adder (width-bit) — small structural workload for tests.
Netlist make_ripple_adder(const std::string& name, int width);

/// Returns a circuit standing in for the named ISCAS85 benchmark
/// ("c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315",
/// "c6288", "c7552"); see the file comment for which are structural vs.
/// statistical.  The returned netlist carries the requested name.
/// \throws std::invalid_argument for unknown names
Netlist iscas85_like(const std::string& name);

/// All ten ISCAS85 circuit names in canonical (size) order.
std::span<const std::string_view> iscas85_names();

}  // namespace nbtisim::netlist
