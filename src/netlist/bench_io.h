/// \file bench_io.h
/// \brief Reader/writer for the ISCAS85 ".bench" netlist format.
///
/// The paper evaluates on the ISCAS85 benchmark suite, whose canonical
/// distribution format is .bench:
///
///     # comment
///     INPUT(G1)
///     OUTPUT(G22)
///     G10 = NAND(G1, G3)
///
/// Definitions may appear in any order; the parser topologically orders them
/// and reports combinational cycles.  Gates wider than the library's 4-input
/// cells are decomposed into balanced trees (see build_wide_gate).
/// Sequential elements (DFF) are rejected — the paper's flow is purely
/// combinational.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/netlist.h"

namespace nbtisim::netlist {

/// Sequential-handling options for parse_bench.
struct BenchOptions {
  /// Cut sequential elements: each `q = DFF(d)` makes `q` a pseudo primary
  /// input and `d` a pseudo primary output, turning an ISCAS89-style
  /// sequential netlist into the combinational core the paper's flow
  /// analyzes. When false (default), DFFs are rejected.
  bool cut_dffs = false;
};

/// Parses .bench text.
/// \param text    full file contents
/// \param name    netlist name (e.g. the circuit name)
/// \param options sequential-element handling
/// \throws std::invalid_argument on syntax errors, unknown gate types,
///         undriven signals, or combinational cycles
Netlist parse_bench(std::string_view text, std::string name,
                    const BenchOptions& options = {});

/// Loads a .bench file from disk.
/// \throws std::runtime_error when the file cannot be read, plus everything
///         parse_bench throws
Netlist load_bench(const std::string& path);

/// Serializes a netlist to .bench text (decomposition helper nets included).
std::string write_bench(const Netlist& nl);

}  // namespace nbtisim::netlist
