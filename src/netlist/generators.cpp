#include "netlist/generators.h"

#include <algorithm>
#include <array>
#include <deque>
#include <random>
#include <stdexcept>

namespace nbtisim::netlist {
namespace {

using tech::GateFn;

/// XOR of two nets, optionally expanded into the 4-NAND2 network (the
/// structural relationship between ISCAS85 c499 and c1355).
NodeId make_xor2_net(Netlist& nl, NodeId a, NodeId b, const std::string& name,
                     bool expand) {
  if (!expand) return nl.add_gate(GateFn::Xor, {a, b}, name);
  const NodeId n0 = nl.add_gate(GateFn::Nand, {a, b}, name + "_n0");
  const NodeId n1 = nl.add_gate(GateFn::Nand, {a, n0}, name + "_n1");
  const NodeId n2 = nl.add_gate(GateFn::Nand, {b, n0}, name + "_n2");
  return nl.add_gate(GateFn::Nand, {n1, n2}, name);
}

struct AdderBits {
  NodeId sum;
  NodeId carry;
};

AdderBits full_adder(Netlist& nl, NodeId a, NodeId b, NodeId cin,
                     const std::string& prefix) {
  const NodeId x = nl.add_gate(GateFn::Xor, {a, b}, prefix + "_x");
  const NodeId s = nl.add_gate(GateFn::Xor, {x, cin}, prefix + "_s");
  const NodeId g = nl.add_gate(GateFn::And, {a, b}, prefix + "_g");
  const NodeId p = nl.add_gate(GateFn::And, {x, cin}, prefix + "_p");
  const NodeId c = nl.add_gate(GateFn::Or, {g, p}, prefix + "_c");
  return {s, c};
}

AdderBits half_adder(Netlist& nl, NodeId a, NodeId b,
                     const std::string& prefix) {
  const NodeId s = nl.add_gate(GateFn::Xor, {a, b}, prefix + "_s");
  const NodeId c = nl.add_gate(GateFn::And, {a, b}, prefix + "_c");
  return {s, c};
}

/// 2:1 mux out = sel ? b : a.
NodeId mux2(Netlist& nl, NodeId sel, NodeId a, NodeId b,
            const std::string& prefix) {
  const NodeId ns = nl.add_gate(GateFn::Not, {sel}, prefix + "_ns");
  const NodeId ta = nl.add_gate(GateFn::And, {ns, a}, prefix + "_ta");
  const NodeId tb = nl.add_gate(GateFn::And, {sel, b}, prefix + "_tb");
  return nl.add_gate(GateFn::Or, {ta, tb}, prefix + "_o");
}

}  // namespace

Netlist make_random_dag(const std::string& name, const RandomDagSpec& spec) {
  if (spec.n_inputs < 2 || spec.n_gates < 1 || spec.n_outputs < 1) {
    throw std::invalid_argument("make_random_dag: bad spec");
  }
  Netlist nl(name);
  std::mt19937_64 rng(spec.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  std::vector<NodeId> nodes;
  std::vector<int> fanout_count;
  for (int i = 0; i < spec.n_inputs; ++i) {
    nodes.push_back(nl.add_input(name + "_pi" + std::to_string(i)));
    fanout_count.push_back(0);
  }

  // ISCAS85-flavoured gate mix.
  auto pick_fn_arity = [&rng, &uni]() -> std::pair<GateFn, int> {
    const double r = uni(rng);
    if (r < 0.12) return {GateFn::Not, 1};
    if (r < 0.16) return {GateFn::Buf, 1};
    if (r < 0.40) return {GateFn::Nand, 2};
    if (r < 0.52) return {GateFn::Nor, 2};
    if (r < 0.64) return {GateFn::And, 2};
    if (r < 0.72) return {GateFn::Or, 2};
    if (r < 0.78) return {GateFn::Xor, 2};
    if (r < 0.82) return {GateFn::Xnor, 2};
    if (r < 0.90) return {GateFn::Nand, 3};
    if (r < 0.95) return {GateFn::Nor, 3};
    if (r < 0.98) return {GateFn::And, 4};
    return {GateFn::Nand, 4};
  };

  // Oldest-first queue of nets still lacking fanout, to guarantee coverage.
  std::deque<std::size_t> unconsumed;
  for (std::size_t i = 0; i < nodes.size(); ++i) unconsumed.push_back(i);

  for (int g = 0; g < spec.n_gates; ++g) {
    auto [fn, arity] = pick_fn_arity();
    std::vector<NodeId> fanins;
    std::vector<std::size_t> used_idx;

    const int remaining = spec.n_gates - g;
    const double deficit =
        static_cast<double>(unconsumed.size()) - spec.n_outputs;
    const bool force_consume =
        deficit > 0 && uni(rng) < std::min(1.0, deficit / remaining);

    for (int k = 0; k < arity; ++k) {
      std::size_t idx;
      if (k == 0 && force_consume) {
        idx = unconsumed.front();
      } else if (uni(rng) < spec.locality && nodes.size() > 64) {
        idx = nodes.size() - 1 -
              static_cast<std::size_t>(uni(rng) * std::min<std::size_t>(
                                                      128, nodes.size()));
      } else {
        idx = static_cast<std::size_t>(uni(rng) * nodes.size());
      }
      idx = std::min(idx, nodes.size() - 1);
      // Retry a few times for distinct fanins; fall back to linear scan.
      int guard = 0;
      while (std::find(used_idx.begin(), used_idx.end(), idx) !=
                 used_idx.end() &&
             guard++ < 8) {
        idx = static_cast<std::size_t>(uni(rng) * nodes.size());
      }
      while (std::find(used_idx.begin(), used_idx.end(), idx) !=
             used_idx.end()) {
        idx = (idx + 1) % nodes.size();
      }
      used_idx.push_back(idx);
      fanins.push_back(nodes[idx]);
    }

    const NodeId out =
        nl.add_gate(fn, fanins, name + "_g" + std::to_string(g));
    for (std::size_t idx : used_idx) {
      if (fanout_count[idx]++ == 0) {
        // Drop from the unconsumed queue (it is near the front if old).
        for (auto it = unconsumed.begin(); it != unconsumed.end(); ++it) {
          if (*it == idx) {
            unconsumed.erase(it);
            break;
          }
        }
      }
    }
    nodes.push_back(out);
    fanout_count.push_back(0);
    unconsumed.push_back(nodes.size() - 1);
  }

  // Everything still without fanout becomes a primary output.
  for (std::size_t idx : unconsumed) nl.mark_output(nodes[idx]);
  nl.validate_topological();
  return nl;
}

Netlist make_multiplier(const std::string& name, int bits) {
  if (bits < 2 || bits > 32) {
    throw std::invalid_argument("make_multiplier: bits must be 2..32");
  }
  Netlist nl(name);
  std::vector<NodeId> a(bits), b(bits);
  for (int i = 0; i < bits; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < bits; ++i) b[i] = nl.add_input("b" + std::to_string(i));

  // Partial products pp[i][j] = a[i] & b[j], summed along anti-diagonals
  // with a carry-save adder array (the c6288 structure).
  std::vector<std::vector<NodeId>> columns(2 * bits);
  for (int i = 0; i < bits; ++i) {
    for (int j = 0; j < bits; ++j) {
      const NodeId pp = nl.add_gate(
          GateFn::And, {a[i], b[j]},
          "pp_" + std::to_string(i) + "_" + std::to_string(j));
      columns[i + j].push_back(pp);
    }
  }

  std::vector<NodeId> product;
  int fa_count = 0;
  for (int col = 0; col < 2 * bits; ++col) {
    std::vector<NodeId>& bitsum = columns[col];
    while (bitsum.size() > 1) {
      const std::string pfx = "add" + std::to_string(fa_count++);
      if (bitsum.size() >= 3) {
        const AdderBits r =
            full_adder(nl, bitsum[0], bitsum[1], bitsum[2], pfx);
        bitsum.erase(bitsum.begin(), bitsum.begin() + 3);
        bitsum.push_back(r.sum);
        if (col + 1 < 2 * bits) columns[col + 1].push_back(r.carry);
      } else {
        const AdderBits r = half_adder(nl, bitsum[0], bitsum[1], pfx);
        bitsum.clear();
        bitsum.push_back(r.sum);
        if (col + 1 < 2 * bits) columns[col + 1].push_back(r.carry);
      }
    }
    if (!bitsum.empty()) {
      product.push_back(bitsum[0]);
    }
  }
  for (NodeId p : product) nl.mark_output(p);
  nl.validate_topological();
  return nl;
}

Netlist make_alu(const std::string& name, int width) {
  if (width < 2 || width > 64) {
    throw std::invalid_argument("make_alu: width must be 2..64");
  }
  Netlist nl(name);
  std::vector<NodeId> a(width), b(width);
  for (int i = 0; i < width; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < width; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  const NodeId cin = nl.add_input("cin");
  const NodeId op0 = nl.add_input("op0");
  const NodeId op1 = nl.add_input("op1");
  const NodeId sub = nl.add_input("sub");

  // Adder/subtractor: b is conditionally inverted, cin OR sub feeds carry.
  std::vector<NodeId> sum(width);
  NodeId carry = nl.add_gate(GateFn::Or, {cin, sub}, "c_in");
  for (int i = 0; i < width; ++i) {
    const NodeId bx =
        nl.add_gate(GateFn::Xor, {b[i], sub}, "bx" + std::to_string(i));
    const AdderBits r = full_adder(nl, a[i], bx, carry, "fa" + std::to_string(i));
    sum[i] = r.sum;
    carry = r.carry;
  }

  // Bitwise datapath + mux tree: op = 00 add, 01 and, 10 or, 11 xor.
  std::vector<NodeId> result(width);
  for (int i = 0; i < width; ++i) {
    const std::string s = std::to_string(i);
    const NodeId andb = nl.add_gate(GateFn::And, {a[i], b[i]}, "land" + s);
    const NodeId orb = nl.add_gate(GateFn::Or, {a[i], b[i]}, "lor" + s);
    const NodeId xorb = nl.add_gate(GateFn::Xor, {a[i], b[i]}, "lxor" + s);
    const NodeId lo = mux2(nl, op0, sum[i], andb, "m0_" + s);
    const NodeId hi = mux2(nl, op0, orb, xorb, "m1_" + s);
    result[i] = mux2(nl, op1, lo, hi, "m2_" + s);
    nl.mark_output(result[i]);
  }
  nl.mark_output(carry);

  // Zero flag: NOR tree over the result.
  const NodeId zero = build_wide_gate(nl, GateFn::Nor, result, "zf");
  nl.mark_output(zero);
  // Parity flag.
  const NodeId par = build_wide_gate(nl, GateFn::Xor, result, "pf");
  nl.mark_output(par);
  nl.validate_topological();
  return nl;
}

Netlist make_priority_controller(const std::string& name, int channels,
                                 int mask_groups) {
  if (channels < 2 || mask_groups < 1 || channels % mask_groups != 0) {
    throw std::invalid_argument(
        "make_priority_controller: channels must be a positive multiple of "
        "mask_groups");
  }
  Netlist nl(name);
  std::vector<NodeId> req(channels), mask(mask_groups);
  for (int i = 0; i < channels; ++i) {
    req[i] = nl.add_input("req" + std::to_string(i));
  }
  for (int i = 0; i < mask_groups; ++i) {
    mask[i] = nl.add_input("mask" + std::to_string(i));
  }

  const int per_group = channels / mask_groups;
  std::vector<NodeId> eff(channels), grant(channels);
  for (int i = 0; i < channels; ++i) {
    const std::string s = std::to_string(i);
    const NodeId nm =
        nl.add_gate(GateFn::Not, {mask[i / per_group]}, "nm" + s);
    eff[i] = nl.add_gate(GateFn::And, {req[i], nm}, "eff" + s);
  }
  // Priority chain: grant[i] = eff[i] & none-before(i).
  NodeId none_before = -1;
  for (int i = 0; i < channels; ++i) {
    const std::string s = std::to_string(i);
    if (i == 0) {
      grant[0] = eff[0];
      none_before = nl.add_gate(GateFn::Not, {eff[0]}, "nb0");
    } else {
      grant[i] = nl.add_gate(GateFn::And, {eff[i], none_before}, "gr" + s);
      if (i + 1 < channels) {
        const NodeId ne = nl.add_gate(GateFn::Not, {eff[i]}, "ne" + s);
        none_before =
            nl.add_gate(GateFn::And, {none_before, ne}, "nb" + s);
      }
    }
  }

  // Binary encoding of the granted channel.
  int enc_bits = 0;
  while ((1 << enc_bits) < channels) ++enc_bits;
  for (int bit = 0; bit < enc_bits; ++bit) {
    std::vector<NodeId> members;
    for (int i = 0; i < channels; ++i) {
      if ((i >> bit) & 1) members.push_back(grant[i]);
    }
    const NodeId enc = members.size() == 1
                           ? members[0]
                           : build_wide_gate(nl, GateFn::Or, members,
                                             "enc" + std::to_string(bit));
    nl.mark_output(enc);
  }
  nl.mark_output(build_wide_gate(nl, GateFn::Or, eff, "valid"));
  nl.mark_output(build_wide_gate(nl, GateFn::Xor, eff, "par"));
  nl.validate_topological();
  return nl;
}

Netlist make_ecc(const std::string& name, int data_bits, int check_bits,
                 bool expand_xor) {
  if (data_bits < 4 || check_bits < 2 || check_bits > 16) {
    throw std::invalid_argument("make_ecc: bad geometry");
  }
  Netlist nl(name);
  std::vector<NodeId> d(data_bits), p(check_bits);
  for (int i = 0; i < data_bits; ++i) {
    d[i] = nl.add_input("d" + std::to_string(i));
  }
  for (int j = 0; j < check_bits; ++j) {
    p[j] = nl.add_input("p" + std::to_string(j));
  }
  const NodeId enable = nl.add_input("en");

  // Deterministic parity-subset membership (pseudo-Hamming).
  auto member = [&](int bit, int subset) {
    return ((bit * 37 + subset * 11 + (bit >> 2)) % check_bits) == subset ||
           ((bit + subset) % check_bits) == 0;
  };

  // Syndromes: s_j = p_j XOR parity(subset_j of data).
  std::vector<NodeId> syn(check_bits);
  for (int j = 0; j < check_bits; ++j) {
    NodeId acc = p[j];
    int terms = 0;
    for (int i = 0; i < data_bits; ++i) {
      if (member(i, j)) {
        acc = make_xor2_net(nl, acc, d[i],
                            "s" + std::to_string(j) + "_" + std::to_string(terms),
                            expand_xor);
        ++terms;
      }
    }
    syn[j] = acc;
  }

  // Per-bit error decode + correction.
  for (int i = 0; i < data_bits; ++i) {
    const std::string s = std::to_string(i);
    std::vector<NodeId> match_terms;
    for (int j = 0; j < check_bits; ++j) {
      if (member(i, j)) {
        match_terms.push_back(syn[j]);
      } else {
        match_terms.push_back(
            nl.add_gate(GateFn::Not, {syn[j]}, "ns" + s + "_" + std::to_string(j)));
      }
    }
    const NodeId match = build_wide_gate(nl, GateFn::And, match_terms, "mt" + s);
    const NodeId flip = nl.add_gate(GateFn::And, {match, enable}, "fl" + s);
    const NodeId corrected = make_xor2_net(nl, d[i], flip, "o" + s, expand_xor);
    nl.mark_output(corrected);
  }
  nl.validate_topological();
  return nl;
}

Netlist make_parity_tree(const std::string& name, int width) {
  if (width < 2) throw std::invalid_argument("make_parity_tree: width < 2");
  Netlist nl(name);
  std::vector<NodeId> ins(width);
  for (int i = 0; i < width; ++i) {
    ins[i] = nl.add_input("i" + std::to_string(i));
  }
  nl.mark_output(build_wide_gate(nl, GateFn::Xor, ins, "par"));
  nl.validate_topological();
  return nl;
}

Netlist make_ripple_adder(const std::string& name, int width) {
  if (width < 1) throw std::invalid_argument("make_ripple_adder: width < 1");
  Netlist nl(name);
  std::vector<NodeId> a(width), b(width);
  for (int i = 0; i < width; ++i) a[i] = nl.add_input("a" + std::to_string(i));
  for (int i = 0; i < width; ++i) b[i] = nl.add_input("b" + std::to_string(i));
  NodeId carry = nl.add_input("cin");
  for (int i = 0; i < width; ++i) {
    const AdderBits r = full_adder(nl, a[i], b[i], carry, "fa" + std::to_string(i));
    nl.mark_output(r.sum);
    carry = r.carry;
  }
  nl.mark_output(carry);
  nl.validate_topological();
  return nl;
}

Netlist iscas85_like(const std::string& name) {
  if (name == "c432") return make_priority_controller("c432", 27, 9);
  if (name == "c499") return make_ecc("c499", 32, 8, /*expand_xor=*/false);
  if (name == "c880") return make_alu("c880", 8);
  if (name == "c1355") return make_ecc("c1355", 32, 8, /*expand_xor=*/true);
  if (name == "c1908") {
    return make_random_dag("c1908", {.n_inputs = 33, .n_outputs = 25,
                                     .n_gates = 880, .seed = 1908});
  }
  if (name == "c2670") {
    return make_random_dag("c2670", {.n_inputs = 233, .n_outputs = 140,
                                     .n_gates = 1193, .seed = 2670});
  }
  if (name == "c3540") {
    return make_random_dag("c3540", {.n_inputs = 50, .n_outputs = 22,
                                     .n_gates = 1669, .seed = 3540});
  }
  if (name == "c5315") {
    return make_random_dag("c5315", {.n_inputs = 178, .n_outputs = 123,
                                     .n_gates = 2307, .seed = 5315});
  }
  if (name == "c6288") return make_multiplier("c6288", 16);
  if (name == "c7552") {
    return make_random_dag("c7552", {.n_inputs = 207, .n_outputs = 108,
                                     .n_gates = 3512, .seed = 7552});
  }
  throw std::invalid_argument("iscas85_like: unknown circuit '" + name + "'");
}

std::span<const std::string_view> iscas85_names() {
  static constexpr std::array<std::string_view, 10> kNames = {
      "c432", "c499", "c880", "c1355", "c1908",
      "c2670", "c3540", "c5315", "c6288", "c7552"};
  return kNames;
}

}  // namespace nbtisim::netlist
