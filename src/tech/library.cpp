#include "tech/library.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tech/stack.h"
#include "tech/units.h"

namespace nbtisim::tech {
namespace {

/// Series depth of the NMOS pull-down of a stage.
int series_n(const Stage& st) {
  return st.kind == StageKind::Nand ? static_cast<int>(st.inputs.size()) : 1;
}

/// Series depth of the PMOS pull-up of a stage.
int series_p(const Stage& st) {
  return st.kind == StageKind::Nor ? static_cast<int>(st.inputs.size()) : 1;
}

}  // namespace

std::string_view gate_fn_name(GateFn fn) {
  switch (fn) {
    case GateFn::Not: return "not";
    case GateFn::Buf: return "buf";
    case GateFn::And: return "and";
    case GateFn::Nand: return "nand";
    case GateFn::Or: return "or";
    case GateFn::Nor: return "nor";
    case GateFn::Xor: return "xor";
    case GateFn::Xnor: return "xnor";
  }
  return "?";
}

Library::Library(LibraryParams params) : params_(params) {
  const double wn = params_.wn;
  const double wp = params_.wp;
  cells_.push_back(make_inverter(wn, wp));
  cells_.push_back(make_buffer(wn, wp));
  for (int k = 2; k <= 4; ++k) cells_.push_back(make_nand(k, wn, wp));
  for (int k = 2; k <= 4; ++k) cells_.push_back(make_nor(k, wn, wp));
  for (int k = 2; k <= 4; ++k) cells_.push_back(make_and(k, wn, wp));
  for (int k = 2; k <= 4; ++k) cells_.push_back(make_or(k, wn, wp));
  cells_.push_back(make_xor2(wn, wp));
  cells_.push_back(make_xnor2(wn, wp));
}

const Cell& Library::cell(CellId id) const {
  if (id < 0 || id >= num_cells()) throw std::out_of_range("Library::cell: bad id");
  return cells_[id];
}

CellId Library::find(std::string_view name) const {
  for (int i = 0; i < num_cells(); ++i) {
    if (cells_[i].name() == name) return i;
  }
  throw std::out_of_range("Library::find: no cell named " + std::string(name));
}

CellId Library::id_for(GateFn fn, int fanin) const {
  switch (fn) {
    case GateFn::Not: return find("INV");
    case GateFn::Buf: return find("BUF");
    case GateFn::And: return find("AND" + std::to_string(fanin));
    case GateFn::Nand: return find("NAND" + std::to_string(fanin));
    case GateFn::Or: return find("OR" + std::to_string(fanin));
    case GateFn::Nor: return find("NOR" + std::to_string(fanin));
    case GateFn::Xor: return find("XOR" + std::to_string(fanin));
    case GateFn::Xnor: return find("XNOR" + std::to_string(fanin));
  }
  throw std::out_of_range("Library::id_for: unknown function");
}

GateFn Library::fn_of(CellId id) const {
  const std::string& n = cell(id).name();
  if (n == "INV") return GateFn::Not;
  if (n == "BUF") return GateFn::Buf;
  if (n.starts_with("NAND")) return GateFn::Nand;
  if (n.starts_with("NOR")) return GateFn::Nor;
  if (n.starts_with("XNOR")) return GateFn::Xnor;
  if (n.starts_with("XOR")) return GateFn::Xor;
  if (n.starts_with("AND")) return GateFn::And;
  if (n.starts_with("OR")) return GateFn::Or;
  throw std::logic_error("Library::fn_of: unnamed cell");
}

double Library::input_cap(CellId id, int pin) const {
  const Cell& c = cell(id);
  if (pin < 0 || pin >= c.num_pins()) {
    throw std::out_of_range("Library::input_cap: bad pin");
  }
  double cap = 0.0;
  for (const Stage& st : c.stages()) {
    for (int in : st.inputs) {
      if (in == pin) {
        cap += gate_capacitance(params_.nmos, st.nmos_width) +
               gate_capacitance(params_.pmos, st.pmos_width);
      }
    }
  }
  return cap;
}

double Library::output_cap(CellId id) const {
  const Stage& last = cell(id).stages().back();
  const double own_gate_cap = gate_capacitance(params_.nmos, last.nmos_width) +
                              gate_capacitance(params_.pmos, last.pmos_width);
  return params_.diffusion_cap_factor * own_gate_cap;
}

double Library::cell_leakage(CellId id, std::uint32_t input_bits,
                             double temp_k, double vth_offset) const {
  const Cell& c = cell(id);
  if (input_bits >= (1u << c.num_pins())) {
    throw std::out_of_range("cell_leakage: vector out of range");
  }
  const std::vector<bool> signals = c.signal_values(input_bits);
  const double vdd = params_.vdd;
  double total = 0.0;

  for (std::size_t s = 0; s < c.stages().size(); ++s) {
    const Stage& st = c.stages()[s];
    const bool out = signals[c.num_pins() + s];

    // Subthreshold leakage through the non-conducting network.
    if (st.kind == StageKind::Nor) {
      if (out) {
        // Output high: every NMOS is off, in parallel, with full Vds.
        total += parallel_off_leakage(params_.nmos, st.nmos_width,
                                      static_cast<int>(st.inputs.size()), vdd,
                                      temp_k, vth_offset);
      } else {
        // Output low: series PMOS stack from VDD; PMOS is on when gate = 0.
        std::vector<StackDevice> stack;
        for (int in : st.inputs) {
          stack.push_back(StackDevice{st.pmos_width, !signals[in], vth_offset});
        }
        total += solve_stack(params_.pmos, stack, vdd, vdd, temp_k).current;
      }
    } else {  // Inv / Nand: series NMOS pull-down, parallel PMOS pull-up.
      if (out) {
        // Output high: leakage through the (possibly mixed) NMOS stack.
        std::vector<StackDevice> stack;
        for (int in : st.inputs) {
          stack.push_back(StackDevice{st.nmos_width, signals[in], vth_offset});
        }
        total += solve_stack(params_.nmos, stack, vdd, vdd, temp_k).current;
      } else {
        // Output low: the off PMOS (gate = 1) leak in parallel, full Vds.
        int n_off = 0;
        for (int in : st.inputs) n_off += signals[in] ? 1 : 0;
        total += parallel_off_leakage(params_.pmos, st.pmos_width, n_off, vdd,
                                      temp_k, vth_offset);
      }
    }

    // Gate-oxide tunnelling of ON transistors (full Vox across the oxide).
    for (int in : st.inputs) {
      if (signals[in]) {
        total += gate_leakage_current(params_.nmos, st.nmos_width, vdd);
      } else {
        total += gate_leakage_current(params_.pmos, st.pmos_width, vdd);
      }
    }
  }
  return total;
}

double Library::cell_delay(CellId id, double c_load, double temp_k,
                           double pmos_dvth, double vth_offset) const {
  const Cell& c = cell(id);
  const double vdd = params_.vdd;
  const int np = c.num_pins();
  const int ns = c.num_stages();

  // Load seen by each stage: gate caps of consuming stages (+ diffusion for
  // the driving stage); the last stage additionally drives c_load.
  std::vector<double> stage_load(ns, 0.0);
  for (int s = 0; s < ns; ++s) {
    stage_load[s] += output_cap(id);
    for (int t = s + 1; t < ns; ++t) {
      const Stage& sink = c.stages()[t];
      for (int in : sink.inputs) {
        if (in == np + s) {
          stage_load[s] += gate_capacitance(params_.nmos, sink.nmos_width) +
                           gate_capacitance(params_.pmos, sink.pmos_width);
        }
      }
    }
  }
  stage_load[ns - 1] += c_load;

  // Longest-path arrival through the stage network.
  std::vector<double> arrival(ns, 0.0);
  double out_arrival = 0.0;
  for (int s = 0; s < ns; ++s) {
    const Stage& st = c.stages()[s];
    const double i_fall =
        drive_current(params_.nmos, st.nmos_width, vdd, temp_k, vth_offset) /
        series_n(st);
    const double i_rise =
        drive_current(params_.pmos, st.pmos_width, vdd, temp_k,
                      pmos_dvth + vth_offset) /
        series_p(st);
    if (i_fall <= 0.0 || i_rise <= 0.0) {
      throw std::domain_error("cell_delay: device cannot switch (dVth too large?)");
    }
    const double d_stage = params_.delay_scale * 0.5 * stage_load[s] * vdd *
                           (1.0 / i_fall + 1.0 / i_rise);
    double in_arrival = 0.0;
    for (int in : st.inputs) {
      if (in >= np) in_arrival = std::max(in_arrival, arrival[in - np]);
    }
    arrival[s] = in_arrival + d_stage;
    out_arrival = std::max(out_arrival, arrival[s]);
  }
  return arrival[ns - 1];
}

Library::ArcTiming Library::cell_arc(CellId id, Edge out_edge, double c_load,
                                     double in_slew, double temp_k,
                                     double pmos_dvth, double vth_offset,
                                     double nmos_dvth) const {
  if (c_load < 0.0 || in_slew < 0.0) {
    throw std::invalid_argument("cell_arc: negative load or slew");
  }
  const Cell& c = cell(id);
  const double vdd = params_.vdd;
  const int np = c.num_pins();
  const int ns = c.num_stages();

  // Stage loads, as in cell_delay.
  std::vector<double> stage_load(ns, 0.0);
  for (int s = 0; s < ns; ++s) {
    stage_load[s] += output_cap(id);
    for (int t = s + 1; t < ns; ++t) {
      const Stage& sink = c.stages()[t];
      for (int in : sink.inputs) {
        if (in == np + s) {
          stage_load[s] += gate_capacitance(params_.nmos, sink.nmos_width) +
                           gate_capacitance(params_.pmos, sink.pmos_width);
        }
      }
    }
  }
  stage_load[ns - 1] += c_load;

  // Per-signal (arrival, slew) for each edge; pins carry both edges at t=0.
  struct EdgeState {
    double arrival = 0.0;
    double slew = 0.0;
  };
  std::vector<EdgeState> rise(c.num_signals(), EdgeState{0.0, in_slew});
  std::vector<EdgeState> fall(c.num_signals(), EdgeState{0.0, in_slew});

  constexpr double kLn2 = 0.693;
  constexpr double kSlewOut = 2.2;
  constexpr double kSlewIn = 0.25;

  for (int s = 0; s < ns; ++s) {
    const Stage& st = c.stages()[s];
    const double i_fall =
        drive_current(params_.nmos, st.nmos_width, vdd, temp_k,
                      nmos_dvth + vth_offset) /
        series_n(st);
    const double i_rise =
        drive_current(params_.pmos, st.pmos_width, vdd, temp_k,
                      pmos_dvth + vth_offset) /
        series_p(st);
    if (i_fall <= 0.0 || i_rise <= 0.0) {
      throw std::domain_error("cell_arc: device cannot switch");
    }
    const double tau_rise = stage_load[s] * vdd / i_rise;
    const double tau_fall = stage_load[s] * vdd / i_fall;

    // Every stage kind is single-level static CMOS (inverting): the stage's
    // rising output is caused by a falling input and vice versa.
    EdgeState out_rise{0.0, 0.0}, out_fall{0.0, 0.0};
    bool first = true;
    for (int in : st.inputs) {
      const EdgeState& in_fall = fall[in];
      const EdgeState& in_rise = rise[in];
      const double d_rise = params_.delay_scale *
                            (kLn2 * tau_rise + kSlewIn * in_fall.slew);
      const double d_fall = params_.delay_scale *
                            (kLn2 * tau_fall + kSlewIn * in_rise.slew);
      const EdgeState cand_rise{in_fall.arrival + d_rise,
                                params_.delay_scale * kSlewOut * tau_rise};
      const EdgeState cand_fall{in_rise.arrival + d_fall,
                                params_.delay_scale * kSlewOut * tau_fall};
      if (first || cand_rise.arrival > out_rise.arrival) out_rise = cand_rise;
      if (first || cand_fall.arrival > out_fall.arrival) out_fall = cand_fall;
      first = false;
    }
    rise[np + s] = out_rise;
    fall[np + s] = out_fall;
  }

  const EdgeState& out =
      out_edge == Edge::Rise ? rise.back() : fall.back();
  return ArcTiming{out.arrival, out.slew};
}

Library::Unateness Library::unateness(CellId id) const {
  switch (fn_of(id)) {
    case GateFn::Not:
    case GateFn::Nand:
    case GateFn::Nor:
      return Unateness::Negative;
    case GateFn::Buf:
    case GateFn::And:
    case GateFn::Or:
      return Unateness::Positive;
    case GateFn::Xor:
    case GateFn::Xnor:
      return Unateness::Binate;
  }
  throw std::logic_error("unateness: unknown function");
}

// ---------------------------------------------------------------------------
// LeakageTable
// ---------------------------------------------------------------------------

LeakageTable::LeakageTable(const Library& lib, double temp_k,
                           double vth_offset)
    : temp_k_(temp_k), vth_offset_(vth_offset) {
  table_.resize(lib.num_cells());
  for (CellId id = 0; id < lib.num_cells(); ++id) {
    const int pins = lib.cell(id).num_pins();
    table_[id].resize(1u << pins);
    for (std::uint32_t v = 0; v < (1u << pins); ++v) {
      table_[id][v] = lib.cell_leakage(id, v, temp_k, vth_offset);
    }
  }
}

double LeakageTable::leakage(CellId cell, std::uint32_t input_bits) const {
  return table_.at(cell).at(input_bits);
}

double LeakageTable::expected_leakage(CellId cell,
                                      std::span<const double> pin_sp) const {
  const std::vector<double>& row = table_.at(cell);
  const std::size_t n = pin_sp.size();
  if (row.size() != (1u << n)) {
    throw std::invalid_argument("expected_leakage: pin count mismatch");
  }
  double sum = 0.0;
  for (std::uint32_t v = 0; v < row.size(); ++v) {
    double prob = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      prob *= ((v >> i) & 1u) ? pin_sp[i] : (1.0 - pin_sp[i]);
    }
    sum += prob * row[v];
  }
  return sum;
}

std::uint32_t LeakageTable::min_leakage_vector(CellId cell) const {
  const std::vector<double>& row = table_.at(cell);
  return static_cast<std::uint32_t>(
      std::min_element(row.begin(), row.end()) - row.begin());
}

}  // namespace nbtisim::tech
