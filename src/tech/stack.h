/// \file stack.h
/// \brief Leakage solver for series transistor stacks (the "stacking effect").
///
/// Input vector control works because a CMOS gate's subthreshold and
/// gate-oxide leakage vary dramatically with the applied input vector
/// (paper Section 2.2, refs [34][35]).  The dominant physical cause is the
/// stacking effect: two or more series OFF transistors bias the internal
/// stack nodes such that the top device sees reverse Vgs, raised Vsb and
/// reduced Vds, suppressing leakage by an order of magnitude.
///
/// This module solves the DC operating point of a series stack by current
/// continuity (monotone bisection on the internal node voltages) and returns
/// the stack leakage.  It is the engine behind the per-(cell, input-vector)
/// leakage lookup tables of Section 4.2.
#pragma once

#include <vector>

#include "tech/device.h"

namespace nbtisim::tech {

/// One transistor in a series stack, listed source-to-drain from the supply
/// rail end (GND for NMOS stacks, VDD for PMOS stacks) towards the output.
struct StackDevice {
  double width = 0.0;   ///< transistor width [m]
  bool gate_on = false; ///< true if the gate turns the device ON
  double delta_vth = 0.0;  ///< extra threshold shift (aging) [V]
};

/// Result of a stack DC solve.
struct StackSolution {
  double current = 0.0;              ///< leakage current through the stack [A]
  std::vector<double> node_voltages; ///< internal node voltages, rail-relative,
                                     ///< size = devices.size() - 1
};

/// Solves a series stack of same-channel devices between a rail and a node at
/// voltage \p vout (relative to the rail, positive, e.g. Vdd for an NMOS
/// stack below a logic-1 output).
///
/// \param params  channel device parameters (shared by all stack devices)
/// \param devices stack members ordered from rail to output
/// \param vout    |V| between output node and the rail [V]
/// \param vdd     supply voltage, used for ON-gate drive [V]
/// \param temp_k  temperature [K]
/// \throws std::invalid_argument for an empty stack or negative voltages
StackSolution solve_stack(const DeviceParams& params,
                          const std::vector<StackDevice>& devices, double vout,
                          double vdd, double temp_k);

/// Leakage of \p n_off identical OFF devices in parallel, each with full
/// \p vds across it (e.g. the NMOS bank of a NOR gate whose output is 1).
/// \param delta_vth extra threshold shift applied to every device [V]
double parallel_off_leakage(const DeviceParams& params, double width,
                            int n_off, double vds, double temp_k,
                            double delta_vth = 0.0);

}  // namespace nbtisim::tech
