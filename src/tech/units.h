/// \file units.h
/// \brief Physical constants and unit conventions used across nbtisim.
///
/// All quantities are SI unless stated otherwise: volts, seconds, kelvin,
/// amperes, farads, metres.  Reported quantities (tables/benches) convert at
/// the edge (mV, nA, ps, ...).
#pragma once

namespace nbtisim {

/// Boltzmann constant in eV/K.
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// Boltzmann constant in J/K.
inline constexpr double kBoltzmannJ = 1.380649e-23;

/// Elementary charge in coulomb.
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Vacuum permittivity in F/m.
inline constexpr double kEps0 = 8.8541878128e-12;

/// Relative permittivity of SiO2.
inline constexpr double kEpsSiO2 = 3.9;

/// Thermal voltage kT/q in volts at temperature \p temp_k.
inline constexpr double thermal_voltage(double temp_k) {
  return kBoltzmannEv * temp_k;
}

/// Seconds in one (Julian) year.
inline constexpr double kSecondsPerYear = 3.1536e7;

/// The paper's 10-year evaluation horizon (~3e8 s, paper Section 3).
inline constexpr double kTenYears = 3.0e8;

// Convenience conversions for report formatting.
inline constexpr double to_mV(double volts) { return volts * 1e3; }
inline constexpr double to_nA(double amps) { return amps * 1e9; }
inline constexpr double to_ps(double seconds) { return seconds * 1e12; }
inline constexpr double to_ns(double seconds) { return seconds * 1e9; }

}  // namespace nbtisim
