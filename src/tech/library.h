/// \file library.h
/// \brief The 90 nm standard-cell library: cells + electrical characterization.
///
/// Reproduces the paper's experimental substrate: "a standard cell library
/// constructed using the PTM 90-nm bulk CMOS model.  Vdd = 1.0 V,
/// |Vth| = 220 mV" (Section 3).  The library owns the cell set
/// (INV/BUF/NAND/NOR/AND/OR 2-4, XOR2/XNOR2), their transistor sizing, and
/// provides:
///   - per-(cell, input-vector, temperature) leakage — the lookup tables of
///     the paper's Fig. 6 flow,
///   - load-dependent alpha-power delays, optionally with an NBTI threshold
///     shift applied to the PMOS devices,
///   - pin capacitances for load computation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "tech/cell.h"
#include "tech/device.h"

namespace nbtisim::tech {

/// Logic function names as used by netlists (.bench gate types).
enum class GateFn : std::uint8_t { Not, Buf, And, Nand, Or, Nor, Xor, Xnor };

/// Returns the canonical lower-case name of a gate function.
std::string_view gate_fn_name(GateFn fn);

/// Identifier of a cell within a Library.
using CellId = int;

/// Electrical/sizing knobs of the library.
struct LibraryParams {
  double vdd = 1.0;                  ///< supply voltage [V]
  double wn = 360e-9;                ///< unit NMOS width [m]
  double wp = 720e-9;                ///< unit PMOS width [m]
  DeviceParams nmos = default_device(Channel::Nmos);
  DeviceParams pmos = default_device(Channel::Pmos);
  double delay_scale = 0.91;         ///< global delay calibration factor
                                     ///< (c880-class ALU ~ 3.55 ns fresh)
  double wire_cap_per_fanout = 0.6e-15;  ///< lumped wire cap per sink [F]
  double diffusion_cap_factor = 0.7; ///< drain diffusion cap as a fraction of
                                     ///< the driving stage's own gate cap
};

/// A characterized standard-cell library.
class Library {
 public:
  explicit Library(LibraryParams params = {});

  const LibraryParams& params() const { return params_; }
  int num_cells() const { return static_cast<int>(cells_.size()); }
  const Cell& cell(CellId id) const;

  /// Finds a cell by name ("NAND2", "INV", ...).
  /// \throws std::out_of_range when absent
  CellId find(std::string_view name) const;

  /// Maps a logic function + fanin to a cell.
  /// \throws std::out_of_range when the (fn, fanin) combination is not in
  ///         the library (fanin > 4 must be decomposed by the caller)
  CellId id_for(GateFn fn, int fanin) const;

  /// The logic function a cell implements.
  GateFn fn_of(CellId id) const;

  /// Input capacitance of a pin [F].
  double input_cap(CellId id, int pin) const;

  /// Total leakage (subthreshold + gate oxide) of a cell in a static input
  /// state [A].  \p input_bits packs pin values (pin i = bit i).
  /// \param vth_offset threshold offset applied to EVERY transistor — the
  ///        high-Vth cell variant of a dual-Vth flow [V]
  double cell_leakage(CellId id, std::uint32_t input_bits, double temp_k,
                      double vth_offset = 0.0) const;

  /// Pin-to-output propagation delay [s] driving \p c_load farad, with an
  /// optional NBTI threshold shift \p pmos_dvth applied to every PMOS.
  /// The delay is the longest stage path through the cell (exact alpha-power
  /// re-evaluation; the paper's first-order form lives in aging/).
  /// \param vth_offset threshold offset applied to every transistor (dual-Vth)
  double cell_delay(CellId id, double c_load, double temp_k,
                    double pmos_dvth = 0.0, double vth_offset = 0.0) const;

  /// Intrinsic output (diffusion) capacitance of the cell's last stage [F].
  double output_cap(CellId id) const;

  /// Signal edge at a cell boundary.
  enum class Edge : std::uint8_t { Rise, Fall };

  /// One timing arc result: propagation delay and output transition time.
  struct ArcTiming {
    double delay = 0.0;     ///< 50%-to-50% propagation delay [s]
    double out_slew = 0.0;  ///< 10%-90% output transition time [s]
  };

  /// Slew-aware arc characterization: delay/slew for the given *output*
  /// edge, external load and input transition time. Internally walks the
  /// stage network alternating edges (an inverting stage's rising output is
  /// produced by its falling input); reconvergent stage networks (XOR) take
  /// the worst path. NBTI's pmos_dvth weakens only the pull-up, so it only
  /// slows arcs whose stage-level edge is a rise — the physically correct
  /// asymmetry the scalar model averages away.
  /// \param nmos_dvth threshold shift of the NMOS devices (PBTI/HCI) —
  ///        slows pull-down (falling-output) stage arcs only
  /// \throws std::invalid_argument for negative load/slew
  ArcTiming cell_arc(CellId id, Edge out_edge, double c_load, double in_slew,
                     double temp_k, double pmos_dvth = 0.0,
                     double vth_offset = 0.0, double nmos_dvth = 0.0) const;

  /// Whether the cell's aggregate function is negative unate (inverting),
  /// positive unate, or binate (edge depends on the causing pin, e.g. XOR).
  enum class Unateness : std::uint8_t { Positive, Negative, Binate };
  Unateness unateness(CellId id) const;

 private:
  LibraryParams params_;
  std::vector<Cell> cells_;
};

/// Dense per-vector leakage lookup table for a library at one temperature —
/// the "leakage lookup tables" input of the paper's Fig. 6 flow (eq. 24).
class LeakageTable {
 public:
  /// \param vth_offset builds the table for a Vth-shifted (e.g. high-Vth)
  ///        variant of every cell
  explicit LeakageTable(const Library& lib, double temp_k,
                        double vth_offset = 0.0);

  double temperature() const { return temp_k_; }
  double vth_offset() const { return vth_offset_; }

  /// Leakage of \p cell under packed \p input_bits [A].
  double leakage(CellId cell, std::uint32_t input_bits) const;

  /// Expected leakage of a cell whose pins are independent with the given
  /// probabilities of being 1 (paper eq. 24).
  double expected_leakage(CellId cell, std::span<const double> pin_sp) const;

  /// Input vector with minimum leakage for one cell (lowest index on ties).
  std::uint32_t min_leakage_vector(CellId cell) const;

 private:
  double temp_k_;
  double vth_offset_;
  std::vector<std::vector<double>> table_;  // [cell][vector]
};

}  // namespace nbtisim::tech
