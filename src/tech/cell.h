/// \file cell.h
/// \brief Standard-cell model: multi-stage static CMOS with explicit
///        transistor-level structure.
///
/// Every library cell is described as a small network of static CMOS
/// *stages* (INV-, NAND- or NOR-structured).  This exposes exactly what the
/// paper's analysis needs:
///   - logic function (for simulation / signal probability),
///   - per-input-vector leakage states (which stacks are off, stacking
///     effect included),
///   - the gate node of every PMOS transistor (a PMOS is NBTI-stressed
///     whenever its gate signal is logic 0, i.e. Vgs = -Vdd),
///   - load-dependent delay through the alpha-power law.
///
/// Composite cells (AND = NAND+INV, XOR = 4-NAND network, ...) are modelled
/// as stage networks rather than opaque boxes so that internal nodes carry
/// their own signal probabilities and standby states — this matters: the
/// paper's Table 2 finding (min-leakage vector vs. worst-aging vector) flips
/// sign between NAND/AND/INV and NOR/OR families precisely because of the
/// inverting structure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tech/device.h"

namespace nbtisim::tech {

/// Structural kind of one static CMOS stage.
enum class StageKind : std::uint8_t {
  Inv,   ///< 1-input inverter (series PDN of 1)
  Nand,  ///< series NMOS pull-down, parallel PMOS pull-up
  Nor,   ///< parallel NMOS pull-down, series PMOS pull-up
};

/// One static CMOS stage inside a cell.
///
/// `inputs` index into the cell's signal space: signals [0, num_pins) are
/// the cell's input pins; signal (num_pins + s) is the output of stage s.
/// Stages must be listed in topological order.
struct Stage {
  StageKind kind = StageKind::Inv;
  std::vector<int> inputs;
  double nmos_width = 0.0;  ///< per-transistor NMOS width [m]
  double pmos_width = 0.0;  ///< per-transistor PMOS width [m]
};

/// Reference to one PMOS transistor within a cell.
struct PmosDevice {
  int stage = 0;        ///< stage index
  int gate_signal = 0;  ///< signal driving the PMOS gate
  double width = 0.0;   ///< transistor width [m]
};

/// A standard cell: named, N input pins, a stage network, one output.
class Cell {
 public:
  /// \param name    library cell name, e.g. "NAND2"
  /// \param num_pins number of input pins
  /// \param stages  stage network in topological order; the last stage's
  ///                output is the cell output
  /// \throws std::invalid_argument on malformed stage networks (bad signal
  ///         indices, empty network, wrong Inv arity)
  Cell(std::string name, int num_pins, std::vector<Stage> stages);

  const std::string& name() const { return name_; }
  int num_pins() const { return num_pins_; }
  int num_stages() const { return static_cast<int>(stages_.size()); }
  int num_signals() const { return num_pins_ + num_stages(); }
  const std::vector<Stage>& stages() const { return stages_; }

  /// Evaluates the cell for packed input bits (pin i = bit i).
  bool evaluate(std::uint32_t input_bits) const;

  /// Values of all signals (pins then stage outputs) for packed inputs.
  std::vector<bool> signal_values(std::uint32_t input_bits) const;

  /// Signal probabilities of all signals given pin probabilities of being 1,
  /// propagated stage-by-stage under the usual independence assumption.
  /// \throws std::invalid_argument if pin_sp.size() != num_pins()
  std::vector<double> signal_probabilities(std::span<const double> pin_sp) const;

  /// All PMOS transistors in the cell (one per stage input).
  const std::vector<PmosDevice>& pmos_devices() const { return pmos_; }

  /// Logical depth in stages (all paths pass through every listed stage's
  /// topological chain; depth = longest pin-to-output stage count).
  int depth() const { return depth_; }

 private:
  std::string name_;
  int num_pins_;
  std::vector<Stage> stages_;
  std::vector<PmosDevice> pmos_;
  int depth_ = 0;
};

/// Builders for the standard set of cells used by the library.
/// Widths follow the classic sizing rule: series-of-k devices are upsized
/// k-fold to preserve drive (unit widths \p wn, \p wp).
Cell make_inverter(double wn, double wp);
Cell make_buffer(double wn, double wp);
Cell make_nand(int fanin, double wn, double wp);
Cell make_nor(int fanin, double wn, double wp);
Cell make_and(int fanin, double wn, double wp);
Cell make_or(int fanin, double wn, double wp);
Cell make_xor2(double wn, double wp);
Cell make_xnor2(double wn, double wp);

}  // namespace nbtisim::tech
