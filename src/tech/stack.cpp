#include "tech/stack.h"

#include <cmath>
#include <span>
#include <stdexcept>

#include "tech/units.h"

namespace nbtisim::tech {
namespace {

constexpr int kBisectIters = 60;

/// Current through one OFF device with source at \p vs and drain at \p vd
/// (rail-relative).  Gate is at the rail (0), so Vgs = -vs: a raised source
/// both reverse-biases the gate and adds body effect.
double off_device_current(const DeviceParams& p, const StackDevice& d,
                          double vs, double vd, double temp_k) {
  const double vds = vd - vs;
  if (vds <= 0.0) return 0.0;
  // vgs = 0 - vs  (gate tied to the rail for an off device)
  return subthreshold_current(p, d.width, -vs, vds, /*vsb=*/vs, temp_k,
                              d.delta_vth);
}

/// Solves the series chain \p devs between rail-relative voltages
/// [\p v_bottom, \p v_top]; fills \p nodes with internal node voltages.
double solve_chain(const DeviceParams& p, std::span<const StackDevice> devs,
                   double v_bottom, double v_top, double temp_k,
                   std::vector<double>* nodes) {
  if (devs.size() == 1) {
    return off_device_current(p, devs[0], v_bottom, v_top, temp_k);
  }
  // Find the voltage of the node above devs[0] by current continuity.
  double lo = v_bottom, hi = v_top;
  double i_bottom = 0.0;
  std::vector<double> upper_nodes;
  for (int it = 0; it < kBisectIters; ++it) {
    const double mid = 0.5 * (lo + hi);
    i_bottom = off_device_current(p, devs[0], v_bottom, mid, temp_k);
    upper_nodes.clear();
    const double i_upper =
        solve_chain(p, devs.subspan(1), mid, v_top, temp_k, &upper_nodes);
    // i_bottom grows and i_upper shrinks as mid rises.
    if (i_bottom > i_upper) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double v_node = 0.5 * (lo + hi);
  if (nodes != nullptr) {
    nodes->push_back(v_node);
    nodes->insert(nodes->end(), upper_nodes.begin(), upper_nodes.end());
  }
  return off_device_current(p, devs[0], v_bottom, v_node, temp_k);
}

}  // namespace

StackSolution solve_stack(const DeviceParams& params,
                          const std::vector<StackDevice>& devices, double vout,
                          double vdd, double temp_k) {
  if (devices.empty()) throw std::invalid_argument("solve_stack: empty stack");
  if (vout < 0.0 || vdd <= 0.0) {
    throw std::invalid_argument("solve_stack: negative rail voltage");
  }
  (void)vdd;  // ON devices are collapsed; vdd kept for interface symmetry.

  // ON transistors in subthreshold-current regimes are effective shorts:
  // a device carrying nanoamps with full gate drive drops microvolts.
  // Collapse them and solve the series chain of OFF devices only.
  std::vector<StackDevice> off;
  off.reserve(devices.size());
  for (const StackDevice& d : devices) {
    if (!d.gate_on) off.push_back(d);
  }

  StackSolution sol;
  if (off.empty()) {
    // Fully conducting path: not a leakage state.  Callers only ask for
    // stacks on the non-conducting side; report zero leakage by convention.
    sol.current = 0.0;
    return sol;
  }
  sol.current = solve_chain(params, off, 0.0, vout, temp_k, &sol.node_voltages);
  return sol;
}

double parallel_off_leakage(const DeviceParams& params, double width,
                            int n_off, double vds, double temp_k,
                            double delta_vth) {
  if (n_off <= 0) return 0.0;
  StackDevice d{width, /*gate_on=*/false, delta_vth};
  return static_cast<double>(n_off) *
         off_device_current(params, d, 0.0, vds, temp_k);
}

}  // namespace nbtisim::tech
