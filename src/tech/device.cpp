#include "tech/device.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tech/units.h"

namespace nbtisim::tech {

DeviceParams default_device(Channel ch) {
  DeviceParams p;
  if (ch == Channel::Pmos) {
    p.k_sat = 2.5e2;        // hole mobility penalty
    p.i0_per_width = 1.4;   // slightly weaker subthreshold prefactor
    p.dibl = 0.09;
  }
  return p;
}

double effective_vth(const DeviceParams& p, double vds, double vsb, double temp_k) {
  const double dtemp = temp_k - p.temp_ref;
  return p.vth0 + p.body_effect * vsb - p.dibl * vds - p.vth_tempco * dtemp;
}

double subthreshold_current(const DeviceParams& p, double width, double vgs,
                            double vds, double vsb, double temp_k,
                            double delta_vth) {
  if (width <= 0.0) throw std::invalid_argument("subthreshold_current: width <= 0");
  if (vds <= 0.0) return 0.0;
  const double vt = thermal_voltage(temp_k);
  const double vth = effective_vth(p, vds, vsb, temp_k) + delta_vth;
  const double mobility_scale =
      std::pow(temp_k / p.temp_ref, -p.mobility_temp_exp);
  // I0 carries a vt^2 dependence (diffusion current in weak inversion).
  const double i0 = p.i0_per_width * width * mobility_scale *
                    (vt * vt) / (thermal_voltage(p.temp_ref) * thermal_voltage(p.temp_ref));
  const double exponent = (vgs - vth) / (p.subthreshold_slope_n * vt);
  return i0 * std::exp(exponent) * (1.0 - std::exp(-vds / vt));
}

double gate_leakage_current(const DeviceParams& p, double width, double vox) {
  if (vox <= 1e-6) return 0.0;
  const double field_term = vox / p.tox;
  const double area = width * p.length;
  // Simplified direct-tunnelling form; calibrated so gate leakage is a
  // 10-30% contributor at 90 nm, consistent with the paper's claim that IVC
  // reduces "both subthreshold and gate oxide leakage".
  return p.jg0 * area * field_term * field_term *
         std::exp(-p.jg_b * p.tox / vox);
}

double drive_current(const DeviceParams& p, double width, double vgs,
                     double temp_k, double delta_vth) {
  const double vth = effective_vth(p, /*vds=*/0.0, /*vsb=*/0.0, temp_k) + delta_vth;
  const double overdrive = vgs - vth;
  if (overdrive <= 0.0) return 0.0;
  const double mobility_scale =
      std::pow(temp_k / p.temp_ref, -p.mobility_temp_exp);
  return p.k_sat * width * mobility_scale * std::pow(overdrive, p.alpha);
}

double cox_per_area(const DeviceParams& p) {
  return kEps0 * kEpsSiO2 / p.tox;
}

double gate_capacitance(const DeviceParams& p, double width) {
  return cox_per_area(p) * width * p.length;
}

}  // namespace nbtisim::tech
