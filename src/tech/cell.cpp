#include "tech/cell.h"

#include <stdexcept>
#include <utility>

namespace nbtisim::tech {
namespace {

/// Evaluates one stage's output from its input values.
bool stage_output(const Stage& st, const std::vector<bool>& signals) {
  switch (st.kind) {
    case StageKind::Inv:
      return !signals[st.inputs[0]];
    case StageKind::Nand: {
      for (int in : st.inputs) {
        if (!signals[in]) return true;
      }
      return false;
    }
    case StageKind::Nor: {
      for (int in : st.inputs) {
        if (signals[in]) return false;
      }
      return true;
    }
  }
  throw std::logic_error("stage_output: unknown StageKind");
}

}  // namespace

Cell::Cell(std::string name, int num_pins, std::vector<Stage> stages)
    : name_(std::move(name)), num_pins_(num_pins), stages_(std::move(stages)) {
  if (num_pins_ <= 0 || num_pins_ > 30) {
    throw std::invalid_argument("Cell " + name_ + ": bad pin count");
  }
  if (stages_.empty()) {
    throw std::invalid_argument("Cell " + name_ + ": no stages");
  }
  std::vector<int> stage_depth(stages_.size(), 0);
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Stage& st = stages_[s];
    if (st.inputs.empty()) {
      throw std::invalid_argument("Cell " + name_ + ": stage with no inputs");
    }
    if (st.kind == StageKind::Inv && st.inputs.size() != 1) {
      throw std::invalid_argument("Cell " + name_ + ": Inv stage arity != 1");
    }
    if (st.nmos_width <= 0.0 || st.pmos_width <= 0.0) {
      throw std::invalid_argument("Cell " + name_ + ": non-positive width");
    }
    int d = 0;
    for (int in : st.inputs) {
      if (in < 0 || in >= num_pins_ + static_cast<int>(s)) {
        throw std::invalid_argument("Cell " + name_ +
                                    ": stage input not topological");
      }
      if (in >= num_pins_) d = std::max(d, stage_depth[in - num_pins_]);
      pmos_.push_back(PmosDevice{static_cast<int>(s), in, st.pmos_width});
    }
    stage_depth[s] = d + 1;
    depth_ = std::max(depth_, stage_depth[s]);
  }
}

bool Cell::evaluate(std::uint32_t input_bits) const {
  return signal_values(input_bits).back();
}

std::vector<bool> Cell::signal_values(std::uint32_t input_bits) const {
  std::vector<bool> signals(num_signals());
  for (int i = 0; i < num_pins_; ++i) {
    signals[i] = (input_bits >> i) & 1u;
  }
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    signals[num_pins_ + s] = stage_output(stages_[s], signals);
  }
  return signals;
}

std::vector<double> Cell::signal_probabilities(
    std::span<const double> pin_sp) const {
  if (static_cast<int>(pin_sp.size()) != num_pins_) {
    throw std::invalid_argument("signal_probabilities: pin count mismatch");
  }
  std::vector<double> sp(num_signals());
  for (int i = 0; i < num_pins_; ++i) sp[i] = pin_sp[i];
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    const Stage& st = stages_[s];
    double p = 1.0;
    switch (st.kind) {
      case StageKind::Inv:
        p = 1.0 - sp[st.inputs[0]];
        break;
      case StageKind::Nand: {
        double all_one = 1.0;
        for (int in : st.inputs) all_one *= sp[in];
        p = 1.0 - all_one;
        break;
      }
      case StageKind::Nor: {
        double all_zero = 1.0;
        for (int in : st.inputs) all_zero *= (1.0 - sp[in]);
        p = all_zero;
        break;
      }
    }
    sp[num_pins_ + s] = p;
  }
  return sp;
}

// ---------------------------------------------------------------------------
// Cell builders.
// ---------------------------------------------------------------------------

Cell make_inverter(double wn, double wp) {
  return Cell("INV", 1, {Stage{StageKind::Inv, {0}, wn, wp}});
}

Cell make_buffer(double wn, double wp) {
  return Cell("BUF", 1,
              {Stage{StageKind::Inv, {0}, wn, wp},
               Stage{StageKind::Inv, {1}, 2.0 * wn, 2.0 * wp}});
}

Cell make_nand(int fanin, double wn, double wp) {
  if (fanin < 2 || fanin > 4) {
    throw std::invalid_argument("make_nand: fanin must be 2..4");
  }
  std::vector<int> ins;
  for (int i = 0; i < fanin; ++i) ins.push_back(i);
  // Series NMOS stack upsized by the stack depth.
  return Cell("NAND" + std::to_string(fanin), fanin,
              {Stage{StageKind::Nand, ins, wn * fanin, wp}});
}

Cell make_nor(int fanin, double wn, double wp) {
  if (fanin < 2 || fanin > 4) {
    throw std::invalid_argument("make_nor: fanin must be 2..4");
  }
  std::vector<int> ins;
  for (int i = 0; i < fanin; ++i) ins.push_back(i);
  // Series PMOS stack upsized by the stack depth.
  return Cell("NOR" + std::to_string(fanin), fanin,
              {Stage{StageKind::Nor, ins, wn, wp * fanin}});
}

Cell make_and(int fanin, double wn, double wp) {
  Cell nand = make_nand(fanin, wn, wp);
  std::vector<Stage> stages = nand.stages();
  stages.push_back(Stage{StageKind::Inv, {fanin}, 2.0 * wn, 2.0 * wp});
  return Cell("AND" + std::to_string(fanin), fanin, std::move(stages));
}

Cell make_or(int fanin, double wn, double wp) {
  Cell nor = make_nor(fanin, wn, wp);
  std::vector<Stage> stages = nor.stages();
  stages.push_back(Stage{StageKind::Inv, {fanin}, 2.0 * wn, 2.0 * wp});
  return Cell("OR" + std::to_string(fanin), fanin, std::move(stages));
}

Cell make_xor2(double wn, double wp) {
  // Classic 4-NAND XOR: s0 = (ab)', s1 = (a s0)', s2 = (b s0)',
  // out = (s1 s2)'.  Signals: a=0, b=1, s0=2, s1=3, s2=4, out=5.
  const double wns = 2.0 * wn;  // 2-series NMOS in each NAND
  return Cell("XOR2", 2,
              {Stage{StageKind::Nand, {0, 1}, wns, wp},
               Stage{StageKind::Nand, {0, 2}, wns, wp},
               Stage{StageKind::Nand, {1, 2}, wns, wp},
               Stage{StageKind::Nand, {3, 4}, wns, wp}});
}

Cell make_xnor2(double wn, double wp) {
  Cell x = make_xor2(wn, wp);
  std::vector<Stage> stages = x.stages();
  stages.push_back(Stage{StageKind::Inv, {5}, 2.0 * wn, 2.0 * wp});
  return Cell("XNOR2", 2, std::move(stages));
}

}  // namespace nbtisim::tech
