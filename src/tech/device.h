/// \file device.h
/// \brief Analytical MOSFET models calibrated to the PTM 90 nm bulk process.
///
/// The paper characterizes its standard-cell library with SPICE on the PTM
/// 90 nm bulk CMOS model (Vdd = 1.0 V, |Vth| = 220 mV).  This module is the
/// substitution for that SPICE substrate: closed-form device equations that
/// expose exactly the quantities the paper's flow consumes —
///   - subthreshold leakage vs. (Vgs, Vds, Vsb, T)  [stacking effect]
///   - gate-oxide tunnelling leakage vs. oxide voltage
///   - alpha-power-law drive current / delay dependence on (Vdd - Vth)^alpha
///
/// See DESIGN.md Section 2 for the substitution rationale.
#pragma once

#include <cstdint>

namespace nbtisim::tech {

/// Which channel type a transistor is.
enum class Channel : std::uint8_t { Nmos, Pmos };

/// Process/device parameters for one channel type.
///
/// Defaults approximate PTM 90 nm bulk at the paper's operating point.
/// All voltages positive-magnitude: PMOS quantities are handled by symmetry
/// inside the equations (callers pass |Vgs|, |Vds|, ...).
struct DeviceParams {
  double vth0 = 0.220;          ///< zero-bias threshold voltage magnitude [V]
  double length = 90e-9;        ///< drawn channel length [m]
  double tox = 1.4e-9;          ///< effective oxide thickness [m]
  double subthreshold_slope_n = 1.4;  ///< subthreshold swing factor n
  double dibl = 0.08;           ///< DIBL coefficient eta [V/V]
  double body_effect = 0.18;    ///< linearized body-effect coefficient [V/V]
  double i0_per_width = 2.0;    ///< subthreshold prefactor at T0 [A/m of W]
                                ///< (calibrated: ~190 nA off-current for a
                                ///< 360 nm NMOS at 400 K, ~10 nA/um at 300 K)
  double vth_tempco = 0.7e-3;   ///< |dVth/dT| [V/K] (Vth drops when hot)
  double mobility_temp_exp = 1.5;  ///< mobility ~ (T/T0)^-exp
  double temp_ref = 300.0;      ///< reference temperature for i0 [K]
  /// Gate tunnelling: I = jg0 * W * L * (Vox/tox)^2 * exp(-jg_b * tox / Vox),
  /// calibrated to ~1.5 nA for a 360 nm device at Vox = 1 V (a 10-30%
  /// contributor next to subthreshold leakage at 90 nm).
  double jg0 = 8.0e-12;         ///< gate-leakage prefactor [A m^2 / V^2]
  double jg_b = 3.2e9;          ///< gate-leakage exponential constant [V/m]
  double alpha = 1.3;           ///< velocity-saturation index (alpha-power law)
  double k_sat = 5.5e2;         ///< alpha-power drive prefactor [A/(m * V^alpha)]
};

/// Returns default PTM-90nm-like parameters for the given channel.
/// PMOS has ~2.2x lower drive (hole mobility) and slightly lower
/// subthreshold prefactor.
DeviceParams default_device(Channel ch);

/// Effective threshold voltage magnitude including DIBL, body effect and
/// temperature dependence.
///
/// \param p      device parameters
/// \param vds    |Vds| across the transistor [V]
/// \param vsb    |Vsb| source-to-body reverse bias [V]
/// \param temp_k temperature [K]
double effective_vth(const DeviceParams& p, double vds, double vsb, double temp_k);

/// Subthreshold (weak-inversion) drain current magnitude [A].
///
/// \param p      device parameters
/// \param width  transistor width [m]
/// \param vgs    |Vgs| [V] (0 for an off transistor whose gate equals source)
/// \param vds    |Vds| [V]
/// \param vsb    |Vsb| [V]
/// \param temp_k temperature [K]
/// \param delta_vth additional threshold shift (e.g. NBTI-induced) [V]
double subthreshold_current(const DeviceParams& p, double width, double vgs,
                            double vds, double vsb, double temp_k,
                            double delta_vth = 0.0);

/// Gate-oxide tunnelling current magnitude [A] for oxide voltage \p vox.
///
/// \param p     device parameters
/// \param width transistor width [m]
/// \param vox   |Vox| across the oxide [V]
double gate_leakage_current(const DeviceParams& p, double width, double vox);

/// Saturated drive current from the alpha-power law [A]:
///   I_on = k_sat * W * (|Vgs| - Vth)^alpha
/// Returns 0 when the transistor is below threshold.
double drive_current(const DeviceParams& p, double width, double vgs,
                     double temp_k, double delta_vth = 0.0);

/// Oxide capacitance per unit area [F/m^2].
double cox_per_area(const DeviceParams& p);

/// Gate capacitance of a transistor [F] (Cox * W * L).
double gate_capacitance(const DeviceParams& p, double width);

}  // namespace nbtisim::tech
