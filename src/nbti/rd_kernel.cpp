#include "nbti/rd_kernel.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace nbtisim::nbti {
namespace {

/// lane_n marker for slots the DC pass finished: anything above
/// kSnExactCycles keeps the scalar fixup away from them.
constexpr double kDcLaneDone = static_cast<double>(kSnExactCycles) + 1.0;

/// The packed telescoped-tail sweep over \p count consecutive devices.  The
/// scalar path's n = max(1, q) is deliberately absent: every lane with
/// q <= kSnExactCycles (which includes all q < 1) is overwritten by the
/// caller's fixup pass, and above that threshold the max is an identity — a
/// float max here would reintroduce control flow GCC refuses to if-convert
/// under strict IEEE.  Lanes the formula does not cover produce garbage
/// (including sqrt(negative) -> NaN, well-defined) and are overwritten; what
/// matters is that this loop has no calls and no branches, so it compiles to
/// packed divisions and square roots.  Operation order mirrors
/// delta_vth(ctx, t) exactly.  A free function with restrict-qualified
/// parameters, not a member loop: the nine streams are distinct allocations,
/// and GCC only honors restrict on parameters — without it the runtime
/// alias-check count defeats the vectorizer.
void telescoped_lane(double total_time, int count,
                     const double* __restrict sched,
                     const double* __restrict eq,
                     const double* __restrict acp,
                     const double* __restrict s4b,
                     const double* __restrict step4,
                     const double* __restrict kv,
                     const double* __restrict pp, double* __restrict out,
                     double* __restrict lane_n) {
  for (int j = 0; j < count; ++j) {
    const double n_cycles = total_time / sched[j];
    const double total_equivalent = n_cycles * eq[j];
    const double q = total_equivalent / acp[j];
    const double s4 = s4b[j] + (q - kSnExactCycles) * step4[j];
    const double sn = quarter_root(s4);
    out[j] = kv[j] * sn * pp[j];
    lane_n[j] = q;
  }
}

}  // namespace

RdKernel::RdKernel(const DeviceAging& model,
                   std::vector<DeviceAging::StressContext> contexts)
    : model_(model), contexts_(std::move(contexts)),
      n_(static_cast<int>(contexts_.size())) {
  sched_period_.resize(n_);
  eq_period_.resize(n_);
  ac_period_.resize(n_);
  s4_base_.resize(n_);
  step4_.resize(n_);
  kv_.resize(n_);
  period_pow_.resize(n_);

  const bool closed = model_.method() == AcEvalMethod::ClosedForm;
  for (int i = 0; i < n_; ++i) {
    const DeviceAging::StressContext& ctx = contexts_[i];
    if (!ctx.always_zero && ctx.ac.duty >= 1.0) {
      // DC lane: delta_vth(ctx, t) short-circuits duty == 1 to
      // dc_delta_vth(params, temp, te, vgs, vth0) before the eval-method
      // switch, so this compaction is valid under ExactRecursion too.
      dc_slot_.push_back(i);
      dc_sched_.push_back(ctx.schedule_period);
      dc_eq_.push_back(ctx.eq_period);
      dc_kv_.push_back(ctx.kv);
    }
    const bool formula_lane = closed && !ctx.always_zero &&
                              ctx.ac.duty > 0.0 && ctx.ac.duty < 1.0;
    if (!formula_lane) {
      // Benign fills: the lane computes n == 0, which routes the device to
      // the scalar fixup pass unconditionally (and divides by nothing).
      sched_period_[i] = 1.0;
      eq_period_[i] = 0.0;
      ac_period_[i] = 1.0;
      s4_base_[i] = 1.0;
      step4_[i] = 0.0;
      kv_[i] = 0.0;
      period_pow_[i] = 0.0;
      continue;
    }
    sched_period_[i] = ctx.schedule_period;
    eq_period_[i] = ctx.eq_period;
    ac_period_[i] = ctx.ac.period;
    // The scalar tail evaluates prefix.s * prefix.s * prefix.s * prefix.s
    // left-to-right per call; the same expression precomputed once is the
    // identical double.
    s4_base_[i] = ctx.prefix.s * ctx.prefix.s * ctx.prefix.s * ctx.prefix.s;
    // remaining * 4.0 * step and remaining * (4.0 * step) round identically:
    // the power-of-two scaling is exact, so both are one rounding of the
    // same real product.
    step4_[i] = 4.0 * ctx.prefix.step;
    kv_[i] = ctx.kv;
    period_pow_[i] = ctx.period_pow;
  }
}

void RdKernel::eval(double total_time, int begin, int end, double* out,
                    double* lane_n) const {
  telescoped_lane(total_time, end - begin, sched_period_.data() + begin,
                  eq_period_.data() + begin, ac_period_.data() + begin,
                  s4_base_.data() + begin, step4_.data() + begin,
                  kv_.data() + begin, period_pow_.data() + begin, out,
                  lane_n);
  // DC pass: duty == 1 slots in range, mirroring the scalar short-circuit
  // kv * quarter_root((t / sched) * eq) (zero equivalent time folds in as
  // kv * 0.0 == +0.0, the scalar early-out value).  Marks the slots so the
  // fixup below leaves them alone.
  {
    const auto lo = std::lower_bound(dc_slot_.begin(), dc_slot_.end(), begin);
    const auto hi = std::lower_bound(dc_slot_.begin(), dc_slot_.end(), end);
    for (auto it = lo; it != hi; ++it) {
      const auto k = static_cast<std::size_t>(it - dc_slot_.begin());
      const double te = (total_time / dc_sched_[k]) * dc_eq_[k];
      out[*it - begin] = dc_kv_[k] * quarter_root(te);
      lane_n[*it - begin] = kDcLaneDone;
    }
  }
  // Scalar fixup: the exact-recursion head (n < kSnExactCycles), the
  // boundary cycle (n == kSnExactCycles returns the prefix value itself),
  // duty 0, inactive devices, underflowed equivalent time, and
  // ExactRecursion mode all take the reference scalar path.
  for (int i = begin; i < end; ++i) {
    if (lane_n[i - begin] <= kSnExactCycles) {
      out[i - begin] = model_.delta_vth(contexts_[i], total_time);
    }
  }
}

void RdKernel::delta_vth(double total_time, int begin, int end,
                         std::span<double> out) const {
  if (total_time < 0.0) {
    throw std::invalid_argument("RdKernel: negative total time");
  }
  if (begin < 0 || end < begin || end > n_) {
    throw std::invalid_argument("RdKernel: bad device range");
  }
  if (static_cast<int>(out.size()) != end - begin) {
    throw std::invalid_argument("RdKernel: out size mismatch");
  }
  if (begin == end) return;
  std::vector<double> lane_n(static_cast<std::size_t>(end - begin));
  eval(total_time, begin, end, out.data(), lane_n.data());
}

void RdKernel::delta_vth(double total_time, std::span<double> out) const {
  delta_vth(total_time, 0, n_, out);
}

void RdKernel::worst_per_gate(double total_time,
                              std::span<const int> gate_begin, int gate_lo,
                              int gate_hi, std::span<double> dvth,
                              std::span<double> dev_out,
                              std::span<double> scratch) const {
  if (gate_lo < 0 || gate_hi < gate_lo ||
      gate_hi >= static_cast<int>(gate_begin.size())) {
    throw std::invalid_argument("RdKernel: bad gate range");
  }
  if (total_time < 0.0) {
    throw std::invalid_argument("RdKernel: negative total time");
  }
  if (static_cast<int>(dev_out.size()) < n_ ||
      static_cast<int>(scratch.size()) < n_) {
    throw std::invalid_argument("RdKernel: device buffer too small");
  }
  if (gate_lo == gate_hi) return;
  const int dev_lo = gate_begin[gate_lo];
  const int dev_hi = gate_begin[gate_hi];
  eval(total_time, dev_lo, dev_hi, dev_out.data() + dev_lo,
       scratch.data() + dev_lo);
  for (int gi = gate_lo; gi < gate_hi; ++gi) {
    // Same reduction order as the scalar per-gate loop.
    double worst = 0.0;
    for (int i = gate_begin[gi]; i < gate_begin[gi + 1]; ++i) {
      worst = std::max(worst, dev_out[static_cast<std::size_t>(i)]);
    }
    dvth[gi] = worst;
  }
}

}  // namespace nbtisim::nbti
