/// \file rd_kernel.h
/// \brief Structure-of-arrays evaluation of the R-D degradation model across
///        many devices at once — bit-identical to the scalar path.
///
/// DeviceAging::delta_vth(ctx, t) walks one StressContext at a time: an
/// out-of-line call per device, scattered ~100-byte AoS loads, and a long
/// dependent chain of two divisions and two square roots per evaluation.
/// Sweeps that evaluate every device of a circuit per horizon (degradation
/// series, crossing-time scans, table builds) pay that per-call overhead tens
/// of thousands of times.
///
/// RdKernel packs the horizon-independent context fields into contiguous
/// per-field arrays and evaluates the telescoped closed-form tail
///     n   = max(1, (t / schedule_period) * eq_period / ac.period)
///     S^4 = S_1024^4 + (n - 1024) * 4 * step
///     dVth = kv * quarter_root(S^4) * period^(1/4)
/// in a branch-free inner loop the compiler auto-vectorizes (the TU is built
/// with -fno-math-errno so sqrt maps to the packed instruction, and
/// -ffp-contract=off so no FMA contraction can round differently from the
/// scalar TU; no intrinsics).  Duty == 1 (DC stress) devices get their own
/// compacted pass — kv * quarter_root(total_equivalent) with the kv_at
/// prefactor hoisted to construction time — since the scalar path
/// short-circuits them before the eval-method switch.  Remaining lanes the
/// formulas do not cover — horizons inside the exact-recursion head
/// (n <= kSnExactCycles), duty 0, inactive devices, ExactRecursion mode —
/// are finished by a scalar fixup pass that calls DeviceAging::delta_vth on
/// the stored context, so every output is bitwise equal to the scalar path
/// by construction.  The differential suite (tests/test_differential.cpp)
/// enforces exact equality.
#pragma once

#include <span>
#include <vector>

#include "nbti/device_aging.h"

namespace nbtisim::nbti {

/// SoA batch evaluator over a fixed set of stress contexts.  Immutable after
/// construction; safe to query concurrently.
class RdKernel {
 public:
  RdKernel() = default;

  /// Packs \p contexts (as produced by DeviceAging::make_context under one
  /// model) into SoA form.  The model is copied; contexts are kept for the
  /// scalar fixup lanes.
  RdKernel(const DeviceAging& model,
           std::vector<DeviceAging::StressContext> contexts);

  int num_devices() const { return n_; }
  const DeviceAging::StressContext& context(int i) const {
    return contexts_[i];
  }

  /// out[i - begin] = model.delta_vth(context(i), total_time) for i in
  /// [begin, end), bit-identical to the scalar calls.
  /// \throws std::invalid_argument for negative total_time
  void delta_vth(double total_time, int begin, int end,
                 std::span<double> out) const;

  /// All devices at once; out.size() must equal num_devices().
  void delta_vth(double total_time, std::span<double> out) const;

  /// Worst-device reduction per gate: for every gate g in [gate_lo, gate_hi)
  /// sets dvth[g] = max over devices [gate_begin[g], gate_begin[g + 1]) (0.0
  /// for empty gates), in the scalar reduction's slot order.  \p gate_begin
  /// is the CSR offset array (size num_gates + 1, last entry num_devices());
  /// \p dvth spans all gates.  \p dev_out and \p scratch are device-indexed
  /// caller buffers (at least num_devices() slots each; only the range's
  /// slice is touched) so hot sweeps pay no per-call allocation — parallel
  /// callers hand disjoint gate ranges slices of shared buffers, and reused
  /// thread-local buffers may be oversized.
  void worst_per_gate(double total_time, std::span<const int> gate_begin,
                      int gate_lo, int gate_hi, std::span<double> dvth,
                      std::span<double> dev_out,
                      std::span<double> scratch) const;

 private:
  /// The SIMD lane + fixup pass over [begin, end); out and lane_n point at
  /// the slot for device `begin` and hold end - begin slots.
  void eval(double total_time, int begin, int end, double* out,
            double* lane_n) const;

  DeviceAging model_;
  std::vector<DeviceAging::StressContext> contexts_;
  int n_ = 0;
  // One array per context field the vector lane reads.  Lanes the formula
  // does not apply to carry benign fill values (eq_period 0) that force the
  // n <= kSnExactCycles fixup test to hand them to the scalar path.
  std::vector<double> sched_period_;
  std::vector<double> eq_period_;
  std::vector<double> ac_period_;
  std::vector<double> s4_base_;  ///< prefix.s^4, the scalar tail's rounding
  std::vector<double> step4_;    ///< 4 * prefix.step (exact scaling)
  std::vector<double> kv_;
  std::vector<double> period_pow_;
  // Compacted duty == 1 (DC stress) lanes: the scalar path short-circuits
  // them to kv_at(...) * quarter_root(total_equivalent) for either eval
  // method, and kv_at of the context's inputs is bitwise the precomputed
  // ctx.kv — so a dedicated pass over these slots replaces a per-device
  // kv_at recomputation (exp-heavy) with one multiply and two sqrts.
  // Sorted by device slot for range lookup.
  std::vector<int> dc_slot_;
  std::vector<double> dc_sched_;
  std::vector<double> dc_eq_;
  std::vector<double> dc_kv_;
};

}  // namespace nbtisim::nbti
