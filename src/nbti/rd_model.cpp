#include "nbti/rd_model.h"

#include <cmath>
#include <stdexcept>

#include "tech/units.h"

namespace nbtisim::nbti {

double diffusion_ratio(const RdParams& p, double temp_k, double temp_ref_k) {
  if (temp_k <= 0.0 || temp_ref_k <= 0.0) {
    throw std::invalid_argument("diffusion_ratio: non-positive temperature");
  }
  const double inv_diff = 1.0 / temp_k - 1.0 / temp_ref_k;
  return std::exp(-p.e_diffusion / kBoltzmannEv * inv_diff);
}

double field_factor(const RdParams& p, double vgs, double vth) {
  const double overdrive = vgs - vth;
  if (overdrive <= 0.0) return 0.0;
  const double e_ox = overdrive / p.tox;
  return std::sqrt(overdrive) * std::exp(e_ox / p.e0_field);
}

double kv_at(const RdParams& p, double temp_k, double vgs, double vth) {
  const double ref_field = field_factor(p, p.vgs_ref, p.vth_ref);
  if (ref_field <= 0.0) {
    throw std::logic_error("kv_at: reference field factor is zero");
  }
  const double d_scale = std::pow(diffusion_ratio(p, temp_k, p.temp_ref), 0.25);
  const double inv_diff = 1.0 / temp_k - 1.0 / p.temp_ref;
  const double fr_scale =
      std::exp(-(p.e_forward - p.e_reverse) / (2.0 * kBoltzmannEv) * inv_diff);
  return p.kv_ref * d_scale * fr_scale * field_factor(p, vgs, vth) / ref_field;
}

double dc_delta_vth(const RdParams& p, double temp_k, double time_s,
                    double vgs, double vth) {
  if (time_s < 0.0) throw std::invalid_argument("dc_delta_vth: negative time");
  return kv_at(p, temp_k, vgs, vth) * quarter_root(time_s);
}

double recovery_factor(double recovery_time_s, double stress_time_s) {
  if (recovery_time_s < 0.0 || stress_time_s < 0.0) {
    throw std::invalid_argument("recovery_factor: negative time");
  }
  if (recovery_time_s == 0.0) return 1.0;
  if (stress_time_s == 0.0) return 0.0;  // nothing accumulated, full recovery
  return 1.0 / (1.0 + std::sqrt(0.5 * recovery_time_s / stress_time_s));
}

}  // namespace nbtisim::nbti
