/// \file other_mechanisms.h
/// \brief Companion NMOS aging mechanisms: PBTI and hot-carrier injection.
///
/// The paper focuses on NBTI ("applying negative bias stress to a PMOS
/// device brings the most deleterious impact"), but notes that "the bias
/// temperature instabilities exist in both PMOS and NMOS devices"
/// (Section 2.1), and its high-k discussion implies PBTI matters for newer
/// stacks. These extension models complete the aging picture:
///
///   - **PBTI**: the NMOS mirror of NBTI — stressed while the gate is at 1
///     (Vgs = +Vdd) — modeled with the same R-D/AC machinery scaled by a
///     technology ratio (high-k NMOS PBTI is typically a fraction of PMOS
///     NBTI at 90 nm-class stacks).
///   - **HCI**: hot-carrier damage accumulates per *switching event*, so it
///     scales with activity x clock frequency x active time and follows a
///     ~sqrt(t) power law; unlike BTI it does not recover.
///
/// Both shift NMOS thresholds and therefore slow pull-down (falling-output)
/// arcs — the complement of NBTI's pull-up-only effect; the slew-aware STA
/// combines them per arc.
#pragma once

#include "nbti/device_aging.h"

namespace nbtisim::nbti {

/// PBTI technology parameters.
struct PbtiParams {
  /// K_v(PBTI) / K_v(NBTI) at identical stress conditions.
  double ratio = 0.35;
};

/// PBTI threshold shift of an NMOS whose gate is 1 with probability
/// \p active_one_prob during active mode and held at \p standby_value
/// during standby [V]. Mirrors DeviceAging::delta_vth with inverted stress
/// polarity and the PBTI ratio.
double pbti_delta_vth(const RdParams& rd, const PbtiParams& pbti,
                      double active_one_prob, bool standby_value,
                      const ModeSchedule& schedule, double total_time,
                      double vgs = 1.0, double vth0 = 0.22);

/// HCI model parameters.
struct HciParams {
  double k_hci = 1.5e-10;  ///< prefactor [V per sqrt(switching events)]
  double exponent = 0.5;   ///< time/event power law
  double temp_ref = 400.0; ///< reference temperature [K]
  /// Mild *negative* temperature activation: classic HCI worsens when cold
  /// (more energetic carriers); set 0 to disable.
  double temp_coeff = -4e-4;  ///< fractional change per kelvin around ref
};

/// HCI threshold shift of an NMOS switching with probability \p activity
/// per cycle at \p clock_hz during the active fraction of the schedule [V].
/// \throws std::invalid_argument for out-of-range activity or negative time
double hci_delta_vth(const HciParams& hci, double activity, double clock_hz,
                     const ModeSchedule& schedule, double total_time);

}  // namespace nbtisim::nbti
