/// \file other_mechanisms.h
/// \brief Companion failure mechanisms: PBTI, hot-carrier injection,
///        dielectric breakdown (TDDB) and electromigration (EM).
///
/// The paper focuses on NBTI ("applying negative bias stress to a PMOS
/// device brings the most deleterious impact"), but notes that "the bias
/// temperature instabilities exist in both PMOS and NMOS devices"
/// (Section 2.1), and its high-k discussion implies PBTI matters for newer
/// stacks. These extension models complete the aging picture:
///
///   - **PBTI**: the NMOS mirror of NBTI — stressed while the gate is at 1
///     (Vgs = +Vdd) — modeled with the same R-D/AC machinery scaled by a
///     technology ratio (high-k NMOS PBTI is typically a fraction of PMOS
///     NBTI at 90 nm-class stacks).
///   - **HCI**: hot-carrier damage accumulates per *switching event*, so it
///     scales with activity x clock frequency x active time and follows a
///     ~sqrt(t) power law; unlike BTI it does not recover.
///
/// Both shift NMOS thresholds and therefore slow pull-down (falling-output)
/// arcs — the complement of NBTI's pull-up-only effect; the slew-aware STA
/// combines them per arc.
///
/// TDDB and EM are *hard*-failure mechanisms: they do not shift a threshold
/// gradually but kill the device/wire outright, so their models deliver a
/// mean time to failure directly instead of a dVth(t):
///
///   - **TDDB**: gate-oxide breakdown under field/temperature stress,
///     modeled with the temperature-dependent field-acceleration form used
///     by RAMP-class reliability simulators:
///       MTTF ∝ (1/V)^(a - b·T) · exp[(X + Y/T + Z·T) / (k_B·T)]
///   - **EM**: interconnect electromigration per Black's equation:
///       MTTF ∝ J^-n · exp(E_a / (k_B·T))
///     with the current density proxied by the wire's average switching
///     current.
///
/// Both feed the aging/failure suite, which turns per-gate MTTFs into
/// Weibull unit-lifetime distributions and a system failure curve.
#pragma once

#include "nbti/device_aging.h"
#include "tech/units.h"

namespace nbtisim::nbti {

/// PBTI technology parameters.
struct PbtiParams {
  /// K_v(PBTI) / K_v(NBTI) at identical stress conditions.
  double ratio = 0.35;
};

/// PBTI threshold shift of an NMOS whose gate is 1 with probability
/// \p active_one_prob during active mode and held at \p standby_value
/// during standby [V]. Mirrors DeviceAging::delta_vth with inverted stress
/// polarity and the PBTI ratio.
double pbti_delta_vth(const RdParams& rd, const PbtiParams& pbti,
                      double active_one_prob, bool standby_value,
                      const ModeSchedule& schedule, double total_time,
                      double vgs = 1.0, double vth0 = 0.22);

/// HCI model parameters.
struct HciParams {
  double k_hci = 1.5e-10;  ///< prefactor [V per sqrt(switching events)]
  double exponent = 0.5;   ///< time/event power law
  double temp_ref = 400.0; ///< reference temperature [K]
  /// Mild *negative* temperature activation: classic HCI worsens when cold
  /// (more energetic carriers); set 0 to disable.
  double temp_coeff = -4e-4;  ///< fractional change per kelvin around ref
};

/// HCI threshold shift of an NMOS switching with probability \p activity
/// per cycle at \p clock_hz during the active fraction of the schedule [V].
/// \throws std::invalid_argument for out-of-range activity or negative time
double hci_delta_vth(const HciParams& hci, double activity, double clock_hz,
                     const ModeSchedule& schedule, double total_time);

/// TDDB technology parameters (field-acceleration E-model).  The default
/// scale calibrates the nominal stress point (1.0 V, 400 K) to a ~25-year
/// intrinsic MTTF — the same order as the worst-case BTI crossings, so the
/// mechanisms genuinely compete in the failure suite.
struct TddbParams {
  double a = 78.0;       ///< voltage-acceleration exponent at T = 0
  double b = -0.081;     ///< exponent temperature slope [1/K]
  double x = 0.759;      ///< activation polynomial constant [eV]
  double y = -66.8;      ///< activation polynomial 1/T term [eV·K]
  double z = -8.37e-4;   ///< activation polynomial T term [eV/K]
  double scale_s = 4.5e5;  ///< prefactor [s] (calibration, see above)
};

/// Mean time to dielectric breakdown of an oxide stressed at \p vdd volts
/// and \p temp_k kelvin [s].
/// \throws std::invalid_argument for non-positive vdd, temperature or scale
double tddb_mttf(const TddbParams& tddb, double vdd, double temp_k);

/// EM technology parameters (Black's equation).  ref_current_a is the design
/// current of a minimum wire; scale_s calibrates MTTF at (ref current,
/// 400 K) to ~23 years.
struct EmParams {
  double n = 2.0;             ///< current-density exponent
  double ea = 0.8;            ///< activation energy [eV]
  double ref_current_a = 5e-6;///< design current of a minimum wire [A]
  double scale_s = 0.06;      ///< prefactor [s] (calibration, see above)
};

/// Mean time to electromigration failure of a wire carrying an average
/// switching current \p current_a at \p temp_k [s]; +infinity when the wire
/// carries no current (EM needs charge flow).
/// \throws std::invalid_argument for negative current or non-positive
///         temperature
double em_mttf(const EmParams& em, double current_a, double temp_k);

}  // namespace nbtisim::nbti
