/// \file ac_model.h
/// \brief Multicycle AC-stress NBTI model — paper Section 3.2, eqs. (7)-(12).
///
/// Under AC stress (alternating stress/recovery), the interface-trap growth
/// after n cycles is captured by the dimensionless sequence S_n:
///     S_1     = c^(1/4) / (1 + beta)                      (eq. 9)
///     S_{n+1} = S_n + c / (4 (1 + beta) S_n^3)            (eq. 10)
///     dVth(n) = K_v * S_n * tau^(1/4)                     (eqs. 11-12)
/// where c is the stress duty cycle, tau the cycle period, and
/// beta = sqrt((1 - c) / 2).
///
/// The recursion telescopes (S^4 grows by ~c/(1+beta) per cycle), so we also
/// provide a fast hybrid form: exact recursion for the first <=1024 cycles,
/// then the telescoped tail
///     S_n^4 ~= S_m^4 + (n - m) c / (1 + beta)
/// which is accurate to <0.2% and period-independent in the product
/// S_n * tau^(1/4) for large n — the property that makes the result depend
/// only on *total effective stress time*, not on the cycle chopping.
/// `bench_ablation_recursion` quantifies the difference.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "nbti/rd_model.h"

namespace nbtisim::nbti {

/// How to evaluate the S_n sequence.
enum class AcEvalMethod : std::uint8_t {
  ClosedForm,      ///< hybrid telescoped form (default; O(min(n, 1024)))
  ExactRecursion,  ///< literal eq. (10) iteration (O(n))
};

/// One AC stress pattern: duty cycle (stress fraction) and period.
struct AcStress {
  double duty = 0.5;    ///< stress fraction of each cycle, in [0, 1]
  double period = 1.0;  ///< cycle period [s]
};

/// beta = sqrt((1 - c)/2) from eq. (8).
double ac_beta(double duty);

/// S_n by literal recursion of eqs. (9)-(10).
/// \throws std::invalid_argument for duty outside [0,1] or n < 1
double sn_exact(double duty, std::int64_t n_cycles);

/// S_n by the telescoped closed form (n_cycles may be fractional).
double sn_closed(double duty, double n_cycles);

/// Number of exact-recursion cycles at the head of sn_closed's hybrid
/// evaluation (see the file comment).
inline constexpr double kSnExactCycles = 1024.0;

/// The horizon-independent head of sn_closed for one duty cycle: the exact
/// S-recursion prefix at kSnExactCycles.  Sweeps that evaluate the same
/// stress pattern at many horizons (degradation series, lifetime search)
/// precompute this once and drop the O(kSnExactCycles) recursion from every
/// evaluation; sn_closed(prefix, n) is bit-identical to
/// sn_closed(prefix.duty, n) for every n.
struct SnPrefix {
  double duty = 0.0;
  double s = 0.0;     ///< S after kSnExactCycles cycles (0 for duty == 0)
  double step = 0.0;  ///< c / (4 (1 + beta))
};

/// \throws std::invalid_argument for duty outside [0, 1]
SnPrefix make_sn_prefix(double duty);

/// sn_closed via a precomputed prefix: O(1) for n_cycles >= kSnExactCycles,
/// falls back to the short exact recursion below it.
double sn_closed(const SnPrefix& prefix, double n_cycles);

/// Threshold shift after stressing for \p total_time under the AC pattern
/// \p stress at temperature \p temp_k with gate bias \p vgs on a device with
/// initial threshold \p vth  [V].
///
/// Degenerate cases: duty == 0 -> 0; duty == 1 -> DC law.
double ac_delta_vth(const RdParams& p, double temp_k, const AcStress& stress,
                    double total_time, double vgs, double vth,
                    AcEvalMethod method = AcEvalMethod::ClosedForm);

/// A literal alternating stress/recovery simulation using the DC growth law
/// (eq. 5, with equivalent-time restart) and the recovery law (eq. 6).
/// Used as an independent reference in tests and the recursion ablation:
/// it tracks the *upper envelope* of Fig. 1's AC curve.
///
/// Returns dVth after \p n_cycles [V].
double simulate_cycles(const RdParams& p, double temp_k, const AcStress& stress,
                       std::int64_t n_cycles, double vgs, double vth);

/// Time series of (time [s], dVth [V]) for plotting Fig. 3/4-style curves:
/// geometrically spaced sample times from \p t_min to \p t_max.
std::vector<std::pair<double, double>> ac_delta_vth_series(
    const RdParams& p, double temp_k, const AcStress& stress, double t_min,
    double t_max, int n_points, double vgs, double vth);

}  // namespace nbtisim::nbti
