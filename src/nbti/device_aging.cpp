#include "nbti/device_aging.h"

#include <cmath>
#include <stdexcept>

namespace nbtisim::nbti {

double DeviceAging::eval(const DeviceStress& stress,
                         const ModeSchedule& schedule, double total_time,
                         bool worst_case_temp) const {
  if (total_time < 0.0) {
    throw std::invalid_argument("DeviceAging: negative total time");
  }
  if (total_time == 0.0) return 0.0;

  ModeSchedule sched = schedule;
  if (worst_case_temp) sched.temp_standby = sched.temp_active;

  const EquivalentCycle eq =
      equivalent_cycle(params_, stress, sched, scale_recovery_);
  if (eq.stress_time <= 0.0) return 0.0;

  const double n_cycles = total_time / sched.period();
  const AcStress ac{eq.duty(), eq.period()};
  // The AC model consumes (pattern, total equivalent time); keep the cycle
  // count identical to the wall-clock cycle count.
  const double total_equivalent = n_cycles * eq.period();
  return ac_delta_vth(params_, sched.temp_active, ac, total_equivalent,
                      stress.vgs, stress.vth0, method_);
}

double DeviceAging::delta_vth(const DeviceStress& stress,
                              const ModeSchedule& schedule,
                              double total_time) const {
  return eval(stress, schedule, total_time, /*worst_case_temp=*/false);
}

DeviceAging::StressContext DeviceAging::make_context(
    const DeviceStress& stress, const ModeSchedule& schedule) const {
  StressContext ctx;
  ctx.schedule_period = schedule.period();
  ctx.temp_active = schedule.temp_active;
  ctx.vgs = stress.vgs;
  ctx.vth0 = stress.vth0;

  const EquivalentCycle eq =
      equivalent_cycle(params_, stress, schedule, scale_recovery_);
  if (eq.stress_time <= 0.0) {
    ctx.always_zero = true;
    return ctx;
  }
  ctx.eq_period = eq.period();
  ctx.ac = AcStress{eq.duty(), eq.period()};
  if (ctx.ac.period <= 0.0) {
    throw std::invalid_argument("make_context: non-positive period");
  }
  ctx.prefix = make_sn_prefix(ctx.ac.duty);
  ctx.kv = kv_at(params_, ctx.temp_active, ctx.vgs, ctx.vth0);
  ctx.period_pow = std::pow(ctx.ac.period, 0.25);
  return ctx;
}

double DeviceAging::delta_vth(const StressContext& ctx,
                              double total_time) const {
  if (total_time < 0.0) {
    throw std::invalid_argument("DeviceAging: negative total time");
  }
  if (total_time == 0.0 || ctx.always_zero) return 0.0;

  // Mirror eval() + ac_delta_vth() operation by operation: the precomputed
  // quantities must not change a single rounding step.
  const double n_cycles = total_time / ctx.schedule_period;
  const double total_equivalent = n_cycles * ctx.eq_period;
  if (ctx.ac.duty == 0.0 || total_equivalent == 0.0) return 0.0;
  if (ctx.ac.duty == 1.0) {
    return dc_delta_vth(params_, ctx.temp_active, total_equivalent, ctx.vgs,
                        ctx.vth0);
  }

  const double n = std::max(1.0, total_equivalent / ctx.ac.period);
  double sn = 0.0;
  switch (method_) {
    case AcEvalMethod::ClosedForm:
      sn = sn_closed(ctx.prefix, n);
      break;
    case AcEvalMethod::ExactRecursion:
      sn = sn_exact(ctx.ac.duty, static_cast<std::int64_t>(std::llround(n)));
      break;
  }
  return ctx.kv * sn * ctx.period_pow;
}

double DeviceAging::delta_vth_worst_case_temp(const DeviceStress& stress,
                                              const ModeSchedule& schedule,
                                              double total_time) const {
  return eval(stress, schedule, total_time, /*worst_case_temp=*/true);
}

std::vector<std::pair<double, double>> DeviceAging::delta_vth_series(
    const DeviceStress& stress, const ModeSchedule& schedule, double t_min,
    double t_max, int n_points) const {
  if (n_points < 2) {
    throw std::invalid_argument("delta_vth_series: n_points < 2");
  }
  if (t_min <= 0.0 || t_max <= t_min) {
    throw std::invalid_argument("delta_vth_series: bad time range");
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(n_points);
  const double log_step = std::log(t_max / t_min) / (n_points - 1);
  for (int i = 0; i < n_points; ++i) {
    const double t = t_min * std::exp(log_step * i);
    out.emplace_back(t, delta_vth(stress, schedule, t));
  }
  return out;
}

}  // namespace nbtisim::nbti
