/// \file schedule.h
/// \brief Active/standby mode schedules and the temperature-equivalent-time
///        transform — the paper's core contribution (Section 3.2, eqs. 17-19).
///
/// A circuit alternates between an *active* mode at T_active and a *standby*
/// mode at T_standby; the paper's RAS (Ratio of Active to Standby time)
/// parameterizes the split.  Because the temperature dependence of trap
/// generation sits (almost) entirely in the hydrogen diffusion coefficient,
/// stress applied for t seconds at T_standby is equivalent to stress for
/// t * D(T_standby)/D(T_active) seconds at T_active (triangle diffusion
/// profile argument, Section 3.2).  This converts one active+standby mode
/// period into a single *equivalent* stress/recovery cycle at T_active:
///
///   t_eq_stress  = c * t_active + [standby stressed] * t_standby * D_s/D_a   (17)
///   t_eq_recover = (1-c) * t_active + [standby relaxed] * t_standby          (")
///   c_eq  = t_eq_stress / (t_eq_stress + t_eq_recover)                       (18)
///   tau_eq = t_eq_stress + t_eq_recover                                      (19)
///
/// Recovery time is *not* diffusion-scaled by default: the paper observes
/// that "the temperature has negligible effect on [the] NBTI relaxation
/// phase" (Section 4.3.3).  A flag lets ablations scale it anyway.
#pragma once

#include "nbti/rd_model.h"

namespace nbtisim::nbti {

/// Steady-state operating-mode schedule (one mode period).
struct ModeSchedule {
  double t_active = 1.0;      ///< active time per mode period [s]
  double t_standby = 0.0;     ///< standby time per mode period [s]
  double temp_active = 400.0; ///< steady-state active temperature [K]
  double temp_standby = 330.0;///< steady-state standby temperature [K]

  double period() const { return t_active + t_standby; }

  /// Builds a schedule from the paper's RAS notation "a:s" (e.g. 1:9).
  /// \param period_s total mode period [s]
  static ModeSchedule from_ras(double active_parts, double standby_parts,
                               double period_s, double temp_active_k,
                               double temp_standby_k);
};

/// Standby-mode condition of a PMOS device.
enum class StandbyMode : unsigned char {
  Stressed,  ///< gate signal 0 in standby (Vgs = -Vdd): continues to age
  Relaxed,   ///< gate signal 1 in standby (Vgs ~= 0): recovers
};

/// The stress profile of one PMOS device across the mode schedule.
struct DeviceStress {
  double active_stress_prob = 0.5;  ///< fraction of active time with gate = 0
  StandbyMode standby = StandbyMode::Stressed;
  double vgs = 1.0;   ///< stress gate bias magnitude [V]
  double vth0 = 0.22; ///< initial threshold magnitude [V]
  /// Fractional standby stress: when >= 0, overrides `standby` with the
  /// fraction of standby time the device spends stressed. This models
  /// *alternating* input vector control (Abella et al. [23]): rotating K
  /// standby vectors leaves each PMOS stressed in only a fraction of the
  /// standby periods.
  double standby_stress_fraction = -1.0;

  /// Effective standby stress fraction in [0, 1].
  double standby_fraction() const {
    if (standby_stress_fraction >= 0.0) return standby_stress_fraction;
    return standby == StandbyMode::Stressed ? 1.0 : 0.0;
  }
};

/// One temperature-equivalent stress/recovery cycle (all at T_active).
struct EquivalentCycle {
  double stress_time = 0.0;    ///< [s]
  double recovery_time = 0.0;  ///< [s]

  double period() const { return stress_time + recovery_time; }
  double duty() const {
    const double p = period();
    return p > 0.0 ? stress_time / p : 0.0;
  }
};

/// Applies the equivalent-time transform (eqs. 17-19) to one mode period.
///
/// \param scale_recovery_with_temp if true, relaxation time at T_standby is
///        also scaled by D_s/D_a (ablation of the paper's assumption).
/// \throws std::invalid_argument for negative times / probabilities outside [0,1]
EquivalentCycle equivalent_cycle(const RdParams& p, const DeviceStress& stress,
                                 const ModeSchedule& schedule,
                                 bool scale_recovery_with_temp = false);

}  // namespace nbtisim::nbti
