#include "nbti/schedule.h"

#include <stdexcept>

namespace nbtisim::nbti {

ModeSchedule ModeSchedule::from_ras(double active_parts, double standby_parts,
                                    double period_s, double temp_active_k,
                                    double temp_standby_k) {
  if (active_parts < 0.0 || standby_parts < 0.0 ||
      active_parts + standby_parts <= 0.0) {
    throw std::invalid_argument("ModeSchedule::from_ras: bad ratio");
  }
  if (period_s <= 0.0) {
    throw std::invalid_argument("ModeSchedule::from_ras: non-positive period");
  }
  const double total = active_parts + standby_parts;
  return ModeSchedule{period_s * active_parts / total,
                      period_s * standby_parts / total, temp_active_k,
                      temp_standby_k};
}

EquivalentCycle equivalent_cycle(const RdParams& p, const DeviceStress& stress,
                                 const ModeSchedule& schedule,
                                 bool scale_recovery_with_temp) {
  if (schedule.t_active < 0.0 || schedule.t_standby < 0.0 ||
      schedule.period() <= 0.0) {
    throw std::invalid_argument("equivalent_cycle: bad schedule times");
  }
  if (stress.active_stress_prob < 0.0 || stress.active_stress_prob > 1.0) {
    throw std::invalid_argument("equivalent_cycle: stress prob outside [0,1]");
  }
  if (stress.standby_stress_fraction > 1.0) {
    throw std::invalid_argument(
        "equivalent_cycle: standby stress fraction > 1");
  }
  const double d_ratio =
      diffusion_ratio(p, schedule.temp_standby, schedule.temp_active);

  EquivalentCycle eq;
  eq.stress_time = stress.active_stress_prob * schedule.t_active;
  eq.recovery_time = (1.0 - stress.active_stress_prob) * schedule.t_active;
  const double sf = stress.standby_fraction();
  eq.stress_time += sf * schedule.t_standby * d_ratio;
  eq.recovery_time += (1.0 - sf) * schedule.t_standby *
                      (scale_recovery_with_temp ? d_ratio : 1.0);
  return eq;
}

}  // namespace nbtisim::nbti
