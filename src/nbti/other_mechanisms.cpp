#include "nbti/other_mechanisms.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace nbtisim::nbti {

double pbti_delta_vth(const RdParams& rd, const PbtiParams& pbti,
                      double active_one_prob, bool standby_value,
                      const ModeSchedule& schedule, double total_time,
                      double vgs, double vth0) {
  if (pbti.ratio < 0.0) {
    throw std::invalid_argument("pbti_delta_vth: negative ratio");
  }
  // NMOS is PBTI-stressed while its gate is HIGH: the stress probability is
  // the probability of 1 (the complement of the NBTI convention).
  DeviceStress stress;
  stress.active_stress_prob = active_one_prob;
  stress.standby =
      standby_value ? StandbyMode::Stressed : StandbyMode::Relaxed;
  stress.vgs = vgs;
  stress.vth0 = vth0;
  const DeviceAging model(rd);
  return pbti.ratio * model.delta_vth(stress, schedule, total_time);
}

double hci_delta_vth(const HciParams& hci, double activity, double clock_hz,
                     const ModeSchedule& schedule, double total_time) {
  if (activity < 0.0 || activity > 1.0) {
    throw std::invalid_argument("hci_delta_vth: activity outside [0,1]");
  }
  if (clock_hz < 0.0 || total_time < 0.0) {
    throw std::invalid_argument("hci_delta_vth: negative rate or time");
  }
  const double active_fraction =
      schedule.period() > 0.0 ? schedule.t_active / schedule.period() : 0.0;
  const double events = activity * clock_hz * active_fraction * total_time;
  if (events <= 0.0) return 0.0;
  const double temp_scale =
      1.0 + hci.temp_coeff * (schedule.temp_active - hci.temp_ref);
  return std::max(0.0, hci.k_hci * temp_scale) *
         std::pow(events, hci.exponent);
}

double tddb_mttf(const TddbParams& tddb, double vdd, double temp_k) {
  if (vdd <= 0.0 || temp_k <= 0.0 || tddb.scale_s <= 0.0) {
    throw std::invalid_argument("tddb_mttf: non-positive vdd/temp/scale");
  }
  // (1/V)^(a - bT): higher field or hotter oxide accelerates breakdown.
  const double v_exponent = tddb.a + tddb.b * temp_k;
  const double activation =
      (tddb.x + tddb.y / temp_k + tddb.z * temp_k) / (kBoltzmannEv * temp_k);
  return tddb.scale_s * std::pow(1.0 / vdd, v_exponent) * std::exp(activation);
}

double em_mttf(const EmParams& em, double current_a, double temp_k) {
  if (current_a < 0.0 || temp_k <= 0.0 || em.scale_s <= 0.0 ||
      em.ref_current_a <= 0.0) {
    throw std::invalid_argument("em_mttf: bad current/temp/params");
  }
  if (current_a == 0.0) return std::numeric_limits<double>::infinity();
  return em.scale_s * std::pow(current_a / em.ref_current_a, -em.n) *
         std::exp(em.ea / (kBoltzmannEv * temp_k));
}

}  // namespace nbtisim::nbti
