/// \file device_aging.h
/// \brief Top-level temperature-aware NBTI evaluation for one PMOS device.
///
/// Combines the three model layers:
///   R-D prefactor (rd_model)  x  AC-stress recursion (ac_model)
///   x  equivalent-time transform (schedule)
/// into the quantity the circuit flow consumes: dVth(total_time) for a PMOS
/// with a given stress profile under a given active/standby schedule.
#pragma once

#include <utility>
#include <vector>

#include "nbti/ac_model.h"
#include "nbti/schedule.h"

namespace nbtisim::nbti {

/// Temperature-aware NBTI evaluator (paper Section 3).
///
/// Stateless facade over the model layers; cheap to copy.  The default
/// configuration matches the paper's setup: T_active = 400 K,
/// T_standby = 330 K, Vdd = 1.0 V, |Vth0| = 220 mV, horizon 3e8 s.
class DeviceAging {
 public:
  explicit DeviceAging(RdParams params = {},
                       AcEvalMethod method = AcEvalMethod::ClosedForm,
                       bool scale_recovery_with_temp = false)
      : params_(params), method_(method),
        scale_recovery_(scale_recovery_with_temp) {}

  const RdParams& params() const { return params_; }
  AcEvalMethod method() const { return method_; }

  /// dVth of a device with stress profile \p stress after \p total_time
  /// seconds of the repeating mode schedule \p schedule [V].
  double delta_vth(const DeviceStress& stress, const ModeSchedule& schedule,
                   double total_time) const;

  /// Horizon-independent evaluation state for one (stress, schedule) pair:
  /// the equivalent cycle, the K_v prefactor, and the S_n recursion prefix.
  /// Build once with make_context(), then evaluate many horizons at O(1)
  /// each (vs. O(kSnExactCycles) for the plain overload).  delta_vth(ctx, t)
  /// is bit-identical to delta_vth(stress, schedule, t) for every t.
  struct StressContext {
    bool always_zero = false;   ///< no equivalent stress: dVth(t) == 0
    double schedule_period = 1.0;  ///< wall-clock mode period [s]
    double eq_period = 0.0;        ///< equivalent cycle period [s]
    double temp_active = 400.0;    ///< evaluation temperature [K]
    AcStress ac;                   ///< equivalent duty / period pattern
    SnPrefix prefix;               ///< closed-form head for ac.duty
    double vgs = 1.0;              ///< stress gate bias magnitude [V]
    double vth0 = 0.22;            ///< initial threshold magnitude [V]
    double kv = 0.0;               ///< kv_at(params, temp_active, vgs, vth0)
    double period_pow = 0.0;       ///< ac.period^(1/4)
  };

  /// Precomputes the evaluation state of \p stress under \p schedule.
  StressContext make_context(const DeviceStress& stress,
                             const ModeSchedule& schedule) const;

  /// dVth after \p total_time seconds via a precomputed context [V].
  double delta_vth(const StressContext& ctx, double total_time) const;

  /// As delta_vth, but evaluated under the *worst-case temperature
  /// assumption* the paper criticizes: standby time is treated as if it were
  /// spent at T_active.  Used by the pessimism ablation.
  double delta_vth_worst_case_temp(const DeviceStress& stress,
                                   const ModeSchedule& schedule,
                                   double total_time) const;

  /// Geometrically spaced (time, dVth) series for Fig. 3/4-style plots.
  std::vector<std::pair<double, double>> delta_vth_series(
      const DeviceStress& stress, const ModeSchedule& schedule, double t_min,
      double t_max, int n_points) const;

 private:
  double eval(const DeviceStress& stress, const ModeSchedule& schedule,
              double total_time, bool worst_case_temp) const;

  RdParams params_;
  AcEvalMethod method_;
  bool scale_recovery_;
};

}  // namespace nbtisim::nbti
