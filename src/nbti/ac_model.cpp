#include "nbti/ac_model.h"

#include <cmath>
#include <stdexcept>

namespace nbtisim::nbti {
namespace {

void check_duty(double duty) {
  if (duty < 0.0 || duty > 1.0) {
    throw std::invalid_argument("AC stress duty must lie in [0, 1]");
  }
}

}  // namespace

double ac_beta(double duty) {
  check_duty(duty);
  return std::sqrt((1.0 - duty) / 2.0);
}

double sn_exact(double duty, std::int64_t n_cycles) {
  check_duty(duty);
  if (n_cycles < 1) throw std::invalid_argument("sn_exact: n_cycles < 1");
  if (duty == 0.0) return 0.0;
  const double beta = ac_beta(duty);
  double s = std::pow(duty, 0.25) / (1.0 + beta);
  const double step = duty / (4.0 * (1.0 + beta));
  for (std::int64_t i = 1; i < n_cycles; ++i) {
    s += step / (s * s * s);
  }
  return s;
}

double sn_closed(double duty, double n_cycles) {
  check_duty(duty);
  if (n_cycles < 1.0) throw std::invalid_argument("sn_closed: n_cycles < 1");
  if (duty == 0.0) return 0.0;
  const double beta = ac_beta(duty);
  const double step = duty / (4.0 * (1.0 + beta));
  // Hybrid evaluation: run the exact recursion for the first cycles (where
  // the telescoped form's O(log n / n) error is visible), then telescope the
  // long tail where S^4 grows by 4*step per cycle to high accuracy.
  double s = std::pow(duty, 0.25) / (1.0 + beta);
  const std::int64_t iters =
      static_cast<std::int64_t>(std::min(n_cycles, kSnExactCycles));
  for (std::int64_t i = 1; i < iters; ++i) {
    s += step / (s * s * s);
  }
  const double remaining = n_cycles - static_cast<double>(iters);
  if (remaining <= 0.0) return s;
  const double s4 = s * s * s * s + remaining * 4.0 * step;
  return quarter_root(s4);
}

SnPrefix make_sn_prefix(double duty) {
  check_duty(duty);
  SnPrefix prefix;
  prefix.duty = duty;
  if (duty == 0.0) return prefix;
  const double beta = ac_beta(duty);
  prefix.step = duty / (4.0 * (1.0 + beta));
  // Same operation sequence as sn_closed's head with n_cycles >=
  // kSnExactCycles — the bit-identity contract depends on it.
  double s = std::pow(duty, 0.25) / (1.0 + beta);
  for (std::int64_t i = 1; i < static_cast<std::int64_t>(kSnExactCycles);
       ++i) {
    s += prefix.step / (s * s * s);
  }
  prefix.s = s;
  return prefix;
}

double sn_closed(const SnPrefix& prefix, double n_cycles) {
  if (n_cycles < 1.0) throw std::invalid_argument("sn_closed: n_cycles < 1");
  if (prefix.duty == 0.0) return 0.0;
  if (n_cycles < kSnExactCycles) {
    // Short horizons never reach the precomputed point; the recursion here
    // is as cheap as the prefix would be.
    return sn_closed(prefix.duty, n_cycles);
  }
  const double remaining = n_cycles - kSnExactCycles;
  if (remaining <= 0.0) return prefix.s;
  const double s4 =
      prefix.s * prefix.s * prefix.s * prefix.s + remaining * 4.0 * prefix.step;
  return quarter_root(s4);
}

double ac_delta_vth(const RdParams& p, double temp_k, const AcStress& stress,
                    double total_time, double vgs, double vth,
                    AcEvalMethod method) {
  check_duty(stress.duty);
  if (stress.period <= 0.0) {
    throw std::invalid_argument("ac_delta_vth: non-positive period");
  }
  if (total_time < 0.0) {
    throw std::invalid_argument("ac_delta_vth: negative total time");
  }
  if (stress.duty == 0.0 || total_time == 0.0) return 0.0;
  if (stress.duty == 1.0) return dc_delta_vth(p, temp_k, total_time, vgs, vth);

  const double n = std::max(1.0, total_time / stress.period);
  double sn = 0.0;
  switch (method) {
    case AcEvalMethod::ClosedForm:
      sn = sn_closed(stress.duty, n);
      break;
    case AcEvalMethod::ExactRecursion:
      sn = sn_exact(stress.duty, static_cast<std::int64_t>(std::llround(n)));
      break;
  }
  return kv_at(p, temp_k, vgs, vth) * sn * std::pow(stress.period, 0.25);
}

double simulate_cycles(const RdParams& p, double temp_k, const AcStress& stress,
                       std::int64_t n_cycles, double vgs, double vth) {
  check_duty(stress.duty);
  if (n_cycles < 0) throw std::invalid_argument("simulate_cycles: n < 0");
  const double kv = kv_at(p, temp_k, vgs, vth);
  if (kv <= 0.0 || stress.duty == 0.0) return 0.0;

  const double t_stress = stress.duty * stress.period;
  const double t_recover = (1.0 - stress.duty) * stress.period;
  double dvth = 0.0;
  double cumulative_stress = 0.0;
  for (std::int64_t i = 0; i < n_cycles; ++i) {
    // Stress phase: resume the DC t^(1/4) law from the equivalent time that
    // would have produced the current dVth.
    const double t0 = std::pow(dvth / kv, 4.0);
    cumulative_stress += t_stress;
    dvth = kv * std::pow(t0 + t_stress, 0.25);
    // Recovery phase (eq. 6), referenced to cumulative stress time.
    dvth *= recovery_factor(t_recover, cumulative_stress);
  }
  return dvth;
}

std::vector<std::pair<double, double>> ac_delta_vth_series(
    const RdParams& p, double temp_k, const AcStress& stress, double t_min,
    double t_max, int n_points, double vgs, double vth) {
  if (n_points < 2) throw std::invalid_argument("ac_delta_vth_series: n_points < 2");
  if (t_min <= 0.0 || t_max <= t_min) {
    throw std::invalid_argument("ac_delta_vth_series: bad time range");
  }
  std::vector<std::pair<double, double>> out;
  out.reserve(n_points);
  const double log_step = std::log(t_max / t_min) / (n_points - 1);
  for (int i = 0; i < n_points; ++i) {
    const double t = t_min * std::exp(log_step * i);
    out.emplace_back(t, ac_delta_vth(p, temp_k, stress, t, vgs, vth));
  }
  return out;
}

}  // namespace nbtisim::nbti
