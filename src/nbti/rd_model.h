/// \file rd_model.h
/// \brief Reaction-diffusion (R-D) NBTI device model with temperature and
///        oxide-field dependence — paper Section 3.1/3.2, eqs. (1)-(6), (13)-(16), (23).
///
/// The interface-trap density under DC stress follows the classic R-D
/// solution N_it(t) = A t^(1/4) (eq. 5), where the prefactor
/// A = 1.16 (k_f N_0 / k_r)^(1/2) (D_H)^(1/4) carries the temperature
/// dependence of the hydrogen diffusion coefficient D_H and the
/// dissociation/annealing rates k_f, k_r (eqs. 13-15).  With E_f ~= E_r the
/// overall activation energy collapses to E_A = E_D / 4 (eq. 16) and all
/// temperature dependence can be expressed through D_H — the key fact behind
/// the paper's equivalent-stress-time transform (Section 3.2).
///
/// The threshold-voltage shift is dVth = (1+m) q N_it / C_ox (eq. 1), which
/// we fold into a single calibrated prefactor K_v (eq. 12) referenced at
/// (T_ref, Vdd, Vth_ref) and modulated by
///   - the diffusion ratio D_H(T)/D_H(T_ref) to the 1/4 power, and
///   - the oxide-field factor sqrt(Vgs - Vth) * exp(E_ox / E_0) (eq. 23),
/// so that a higher initial Vth yields a smaller NBTI shift — the
/// V_th-dependence the paper exploits in Section 4.1 and Fig. 8.
#pragma once

#include <cmath>

namespace nbtisim::nbti {

/// x^(1/4) as two IEEE square roots — the canonical quarter-power of every
/// t^(1/4)-shaped evaluation (the DC law here and the telescoped S_n tail in
/// ac_model).  Unlike std::pow(x, 0.25), sqrt is correctly rounded by
/// IEEE 754 and maps to one machine instruction whose packed form rounds
/// identically, so a SIMD lane evaluating the same expression (rd_kernel)
/// agrees with the scalar form to the last bit.  Every quarter-power in the
/// degradation laws must go through this helper; mixing it with
/// std::pow(x, 0.25) breaks the bit-identity contract between the scalar and
/// SoA paths.
inline double quarter_root(double x) { return std::sqrt(std::sqrt(x)); }

/// Reaction-diffusion model parameters.
///
/// `kv_ref` is calibrated such that a PMOS with Vth = 220 mV under DC stress
/// (Vgs = -1.0 V) at 400 K for ~10 years (3e8 s) degrades by ~49 mV,
/// matching the magnitude band of the paper's Table 1 / Fig. 3.
struct RdParams {
  double kv_ref = 3.75e-4;   ///< K_v at reference conditions [V * s^(-1/4)]
  double temp_ref = 400.0;   ///< reference temperature for kv_ref [K]
  double e_diffusion = 0.49; ///< H diffusion activation energy E_D [eV]
                             ///< (molecular-H value per Krishnan et al. [47];
                             ///< overall E_A = E_D/4 ~= 0.12 eV)
  double e_forward = 0.0;    ///< E_f - dissociation activation [eV]
  double e_reverse = 0.0;    ///< E_r - annealing activation [eV] (E_f ~= E_r)
  double e0_field = 0.2e9;   ///< field-acceleration constant E_0 [V/m]
                             ///< (tuned so the Fig. 8 max/min ratio across
                             ///< the Vth_ST sweep matches the paper's ~4.5x)
  double tox = 1.4e-9;       ///< oxide thickness [m]
  double vgs_ref = 1.0;      ///< reference |Vgs| for kv_ref [V]
  double vth_ref = 0.22;     ///< reference |Vth| for kv_ref [V]
};

/// Ratio of hydrogen diffusion coefficients D_H(temp) / D_H(ref):
///   exp(-E_D/k (1/T - 1/T_ref))    (eq. 13)
/// This is the factor that converts standby-temperature stress time into
/// equivalent active-temperature stress time (paper eq. 17).
double diffusion_ratio(const RdParams& p, double temp_k, double temp_ref_k);

/// Unnormalized oxide-field factor sqrt(Vgs - Vth) * exp(E_ox/E_0) from
/// eq. (23); returns 0 when the device is not in inversion (Vgs <= Vth).
double field_factor(const RdParams& p, double vgs, double vth);

/// The dVth prefactor K_v at arbitrary temperature / gate bias / threshold,
/// scaled from kv_ref [V * s^(-1/4)]:
///   K_v = kv_ref * (D(T)/D(T_ref))^(1/4)
///                * field_factor(vgs, vth) / field_factor(ref)
///                * exp(-(E_f - E_r) / 2k * (1/T - 1/T_ref))
double kv_at(const RdParams& p, double temp_k, double vgs, double vth);

/// DC-stress threshold shift dVth = K_v * t^(1/4)  (eqs. 5 + 12) [V].
/// \throws std::invalid_argument for negative time
double dc_delta_vth(const RdParams& p, double temp_k, double time_s,
                    double vgs, double vth);

/// Fractional recovery after removing stress: given the trap density at the
/// start of recovery and the preceding (cumulative) stress time, returns the
/// multiplicative survival factor 1 / (1 + sqrt(xi * t / t_stress)) (eq. 6,
/// with xi = 1/2 for the standard one-sided diffusion profile).
double recovery_factor(double recovery_time_s, double stress_time_s);

}  // namespace nbtisim::nbti
