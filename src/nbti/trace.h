/// \file trace.h
/// \brief Trace-driven temperature-aware NBTI evaluation.
///
/// The paper abstracts operation into two modes (active/standby at two
/// steady-state temperatures, split by RAS). Real thermal profiles — like
/// the task-set trace of Fig. 2 — move through a continuum of temperatures.
/// This extension generalizes the equivalent-time transform (eqs. 17-19)
/// piecewise: an interval of duration dt at temperature T under stress
/// fraction c contributes
///     c * dt * D(T)/D(T_ref)        of equivalent stress time, and
///     (1 - c) * dt                  of recovery time
/// (recovery unscaled, per the paper's relaxation-insensitivity
/// observation). The whole trace becomes one EquivalentCycle which repeats
/// for the lifetime, so the standard AC machinery applies unchanged.
///
/// `bench_ext_trace_aging` quantifies how well the paper's two-mode RAS
/// abstraction tracks a full thermal trace.
#pragma once

#include <span>
#include <vector>

#include "nbti/ac_model.h"
#include "nbti/schedule.h"

namespace nbtisim::nbti {

/// One interval of a stress/temperature trace.
struct StressInterval {
  double duration = 0.0;     ///< [s]
  double temperature = 0.0;  ///< [K]
  double stress_prob = 0.0;  ///< fraction of the interval the PMOS is stressed
};

/// Collapses a trace into one equivalent stress/recovery cycle referenced to
/// \p temp_ref (piecewise eqs. 17-19).
/// \throws std::invalid_argument on an empty trace or malformed intervals
EquivalentCycle equivalent_cycle_from_trace(
    const RdParams& p, std::span<const StressInterval> trace, double temp_ref,
    bool scale_recovery_with_temp = false);

/// dVth after \p total_time seconds of the repeating \p trace, for a device
/// with gate bias \p vgs and initial threshold \p vth0, all referenced to
/// \p temp_ref [V].
double trace_delta_vth(const RdParams& p, std::span<const StressInterval> trace,
                       double temp_ref, double total_time, double vgs,
                       double vth0,
                       AcEvalMethod method = AcEvalMethod::ClosedForm);

/// Builds a StressInterval trace from (time, temperature) samples — e.g.
/// the output of thermal::RcThermalModel::simulate — by assigning each
/// sample gap the given stress probability. Samples must be time-ascending.
std::vector<StressInterval> trace_from_samples(
    std::span<const std::pair<double, double>> samples, double stress_prob);

/// The two-mode RAS abstraction of a trace: splits intervals into
/// active/standby by the temperature threshold \p split_temp and returns the
/// equivalent ModeSchedule (durations summed, temperatures duration-averaged
/// per mode). Used by the abstraction-quality ablation.
/// \throws std::invalid_argument when a mode ends up empty
ModeSchedule two_mode_abstraction(std::span<const StressInterval> trace,
                                  double split_temp);

}  // namespace nbtisim::nbti
