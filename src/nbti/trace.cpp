#include "nbti/trace.h"

#include <stdexcept>

namespace nbtisim::nbti {

EquivalentCycle equivalent_cycle_from_trace(
    const RdParams& p, std::span<const StressInterval> trace, double temp_ref,
    bool scale_recovery_with_temp) {
  if (trace.empty()) {
    throw std::invalid_argument("equivalent_cycle_from_trace: empty trace");
  }
  EquivalentCycle eq;
  for (const StressInterval& iv : trace) {
    if (iv.duration <= 0.0) {
      throw std::invalid_argument(
          "equivalent_cycle_from_trace: non-positive interval duration");
    }
    if (iv.stress_prob < 0.0 || iv.stress_prob > 1.0) {
      throw std::invalid_argument(
          "equivalent_cycle_from_trace: stress_prob outside [0,1]");
    }
    const double d_ratio = diffusion_ratio(p, iv.temperature, temp_ref);
    eq.stress_time += iv.stress_prob * iv.duration * d_ratio;
    eq.recovery_time += (1.0 - iv.stress_prob) * iv.duration *
                        (scale_recovery_with_temp ? d_ratio : 1.0);
  }
  return eq;
}

double trace_delta_vth(const RdParams& p, std::span<const StressInterval> trace,
                       double temp_ref, double total_time, double vgs,
                       double vth0, AcEvalMethod method) {
  if (total_time < 0.0) {
    throw std::invalid_argument("trace_delta_vth: negative total time");
  }
  if (total_time == 0.0) return 0.0;
  const EquivalentCycle eq = equivalent_cycle_from_trace(p, trace, temp_ref);
  if (eq.stress_time <= 0.0) return 0.0;

  double wall_period = 0.0;
  for (const StressInterval& iv : trace) wall_period += iv.duration;
  const double n_cycles = total_time / wall_period;
  const AcStress ac{eq.duty(), eq.period()};
  return ac_delta_vth(p, temp_ref, ac, n_cycles * eq.period(), vgs, vth0,
                      method);
}

std::vector<StressInterval> trace_from_samples(
    std::span<const std::pair<double, double>> samples, double stress_prob) {
  if (samples.size() < 2) {
    throw std::invalid_argument("trace_from_samples: need >= 2 samples");
  }
  std::vector<StressInterval> trace;
  trace.reserve(samples.size() - 1);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    const double dt = samples[i].first - samples[i - 1].first;
    if (dt <= 0.0) {
      throw std::invalid_argument(
          "trace_from_samples: samples not time-ascending");
    }
    // Temperature over the gap: trailing value (the model holds the new
    // power level across the step).
    trace.push_back(StressInterval{dt, samples[i].second, stress_prob});
  }
  return trace;
}

ModeSchedule two_mode_abstraction(std::span<const StressInterval> trace,
                                  double split_temp) {
  double t_active = 0.0, t_standby = 0.0;
  double temp_active_acc = 0.0, temp_standby_acc = 0.0;
  for (const StressInterval& iv : trace) {
    if (iv.temperature >= split_temp) {
      t_active += iv.duration;
      temp_active_acc += iv.temperature * iv.duration;
    } else {
      t_standby += iv.duration;
      temp_standby_acc += iv.temperature * iv.duration;
    }
  }
  if (t_active <= 0.0 || t_standby <= 0.0) {
    throw std::invalid_argument(
        "two_mode_abstraction: split temperature leaves a mode empty");
  }
  return ModeSchedule{t_active, t_standby, temp_active_acc / t_active,
                      temp_standby_acc / t_standby};
}

}  // namespace nbtisim::nbti
