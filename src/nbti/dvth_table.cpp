#include "nbti/dvth_table.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nbtisim::nbti {

DvthTable::DvthTable(std::vector<double> times,
                     const std::vector<std::vector<double>>& values) {
  if (times.empty()) {
    throw std::invalid_argument("DvthTable: empty time grid");
  }
  if (values.size() != times.size()) {
    throw std::invalid_argument("DvthTable: times/values size mismatch");
  }
  for (std::size_t k = 0; k < times.size(); ++k) {
    if (!std::isfinite(times[k]) || times[k] <= 0.0) {
      throw std::invalid_argument("DvthTable: grid times must be positive "
                                  "and finite");
    }
    if (k > 0 && times[k] <= times[k - 1]) {
      throw std::invalid_argument("DvthTable: grid times must be strictly "
                                  "increasing");
    }
  }
  width_ = static_cast<int>(values.front().size());
  if (width_ < 1) {
    throw std::invalid_argument("DvthTable: empty sample rows");
  }
  values_.reserve(values.size() * width_);
  for (const std::vector<double>& row : values) {
    if (static_cast<int>(row.size()) != width_) {
      throw std::invalid_argument("DvthTable: ragged sample rows");
    }
    for (double v : row) {
      if (!std::isfinite(v) || v < 0.0) {
        throw std::invalid_argument("DvthTable: samples must be finite and "
                                    "non-negative");
      }
      values_.push_back(v);
    }
  }
  times_ = std::move(times);
  for (std::size_t k = 1; k < times_.size(); ++k) {
    ratio_ = std::max(ratio_, times_[k] / times_[k - 1]);
  }
}

int DvthTable::segment(double t) const {
  // First node strictly above t, minus one; t == back lands on the last
  // segment's upper node and is handled by the clamp branch before this.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const int k = static_cast<int>(it - times_.begin()) - 1;
  return std::min(std::max(k, 0), num_points() - 2);
}

double DvthTable::value(int series, double t) const {
  if (series < 0 || series >= width_) {
    throw std::invalid_argument("DvthTable::value: series out of range");
  }
  if (t < 0.0 || !std::isfinite(t)) {
    throw std::invalid_argument("DvthTable::value: bad query time");
  }
  if (t == 0.0) return 0.0;
  if (t >= times_.back()) {
    return values_[(times_.size() - 1) * width_ + series];  // clamp
  }
  if (t <= times_.front()) {
    // Below-grid: linear from the implicit (0, 0) origin.
    return values_[series] * (t / times_.front());
  }
  const int k = segment(t);
  const double frac = (t - times_[k]) / (times_[k + 1] - times_[k]);
  const double lo = values_[static_cast<std::size_t>(k) * width_ + series];
  const double hi = values_[(static_cast<std::size_t>(k) + 1) * width_ + series];
  return lo + frac * (hi - lo);
}

void DvthTable::values_at(double t, std::span<double> out) const {
  if (static_cast<int>(out.size()) != width_) {
    throw std::invalid_argument("DvthTable::values_at: out size mismatch");
  }
  if (t < 0.0 || !std::isfinite(t)) {
    throw std::invalid_argument("DvthTable::values_at: bad query time");
  }
  if (t == 0.0) {
    std::fill(out.begin(), out.end(), 0.0);
    return;
  }
  if (t >= times_.back()) {
    const double* last = &values_[(times_.size() - 1) * width_];
    std::copy(last, last + width_, out.begin());
    return;
  }
  if (t <= times_.front()) {
    const double scale = t / times_.front();
    for (int s = 0; s < width_; ++s) out[s] = values_[s] * scale;
    return;
  }
  const int k = segment(t);
  const double frac = (t - times_[k]) / (times_[k + 1] - times_[k]);
  const double* lo = &values_[static_cast<std::size_t>(k) * width_];
  const double* hi = lo + width_;
  for (int s = 0; s < width_; ++s) out[s] = lo[s] + frac * (hi[s] - lo[s]);
}

std::vector<double> DvthTable::geometric_grid(double t_lo, double t_hi,
                                              int points_per_decade) {
  if (!(t_lo > 0.0) || !(t_hi >= t_lo) || !std::isfinite(t_hi)) {
    throw std::invalid_argument("DvthTable::geometric_grid: bad time range");
  }
  if (points_per_decade < 1) {
    throw std::invalid_argument(
        "DvthTable::geometric_grid: points_per_decade < 1");
  }
  if (t_lo == t_hi) return {t_lo};
  const double decades = std::log10(t_hi / t_lo);
  const int n = std::max(
      2, static_cast<int>(std::ceil(decades * points_per_decade)) + 1);
  std::vector<double> times(n);
  const double log_step = std::log(t_hi / t_lo) / (n - 1);
  for (int k = 0; k < n; ++k) times[k] = t_lo * std::exp(log_step * k);
  // Pin the endpoints: queries at the build range's edges must be exact
  // node hits, not a rounding-noise extrapolation.
  times.front() = t_lo;
  times.back() = t_hi;
  return times;
}

}  // namespace nbtisim::nbti
