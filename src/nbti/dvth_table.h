/// \file dvth_table.h
/// \brief Interpolated dVth(t) lookup tables for Monte-Carlo inner loops.
///
/// A DvthTable samples one or more dVth(t) curves (typically the per-gate
/// worst-PMOS curves of one standby policy) on a shared geometric time grid
/// and answers arbitrary-time queries by monotone linear interpolation.
/// Sampling costs one full model evaluation per grid point; every query after
/// that is two loads and a fused-multiply — the trade the lifetime / failure
/// crossing-time scans want, where thousands of samples revisit the same
/// handful of decades.
///
/// ## Error bound
///
/// dVth(t) follows the fractional power law ~ t^(1/4) (DC exactly; the AC
/// telescoped tail is (a + b t)^(1/4), whose relative curvature is bounded by
/// the pure power law's).  Linear interpolation of f(t) = c t^alpha across one
/// geometric segment [t, r t] has relative error at most
///     alpha (1 - alpha) / 8 * (r - 1)^2  =  3/128 (r - 1)^2   (alpha = 1/4)
/// — see rel_error_bound().  At 16 points per decade (r ~= 1.155) that is
/// ~5.6e-4.  Where several device curves meet in a per-gate max, the sampled
/// curve can kink between nodes; the differential suite verifies a 2x margin
/// over the single-curve bound empirically.
///
/// ## Extrapolation policy
///
///   t == 0            -> 0 (every dVth curve starts at the origin)
///   0 < t < front     -> linear from the implicit (0, 0) origin — the same
///                        convention as aging::crossing_time; build grids that
///                        cover the query range when the bound must hold
///   t > back          -> clamped to the last sample
#pragma once

#include <span>
#include <vector>

namespace nbtisim::nbti {

/// Immutable sampled dVth(t) curves over a shared strictly-increasing time
/// grid.  Thread-safe to query concurrently.
class DvthTable {
 public:
  /// \p times: strictly increasing, positive, finite.  \p values: one row per
  /// time point, every row \p values[k] holding the sampled curves at
  /// times[k]; all rows the same width, entries finite and non-negative.
  /// \throws std::invalid_argument on empty/NaN/Inf/non-monotone input
  DvthTable(std::vector<double> times,
            const std::vector<std::vector<double>>& values);

  int num_series() const { return width_; }
  int num_points() const { return static_cast<int>(times_.size()); }
  double front_time() const { return times_.front(); }
  double back_time() const { return times_.back(); }
  /// Largest ratio between adjacent grid times (1.0 for single-point grids):
  /// plug into rel_error_bound() for this table's worst-segment bound.
  double grid_ratio() const { return ratio_; }

  /// Interpolated value of curve \p series at time \p t (policy above).
  /// \throws std::invalid_argument for negative t or series out of range
  double value(int series, double t) const;

  /// All curves at \p t at once; out.size() must equal num_series().
  void values_at(double t, std::span<double> out) const;

  /// Relative-error bound of linear interpolation for a pure t^(1/4) power
  /// law across one segment with time ratio \p grid_ratio (>= 1).
  static double rel_error_bound(double grid_ratio) {
    const double d = grid_ratio - 1.0;
    return 3.0 / 128.0 * d * d;
  }

  /// Geometric grid from \p t_lo to \p t_hi (both become exact nodes) at
  /// \p points_per_decade resolution; a single point when t_lo == t_hi.
  /// \throws std::invalid_argument for bad range or points_per_decade < 1
  static std::vector<double> geometric_grid(double t_lo, double t_hi,
                                            int points_per_decade);

 private:
  /// Index k of the segment [times_[k], times_[k+1]] containing t; requires
  /// front_time() <= t <= back_time() and num_points() >= 2.
  int segment(double t) const;

  std::vector<double> times_;
  std::vector<double> values_;  ///< row-major [point][series]
  int width_ = 0;
  double ratio_ = 1.0;
};

}  // namespace nbtisim::nbti
