#include "opt/sizing.h"

#include <algorithm>
#include <stdexcept>

namespace nbtisim::opt {
namespace {

/// Sized-timing evaluator: per-gate size factors scale drive and input
/// capacitance together, so delay_g = cell_delay(load_g(sizes) / s_g).
class SizedTiming {
 public:
  SizedTiming(const aging::AgingAnalyzer& analyzer,
              const std::vector<double>& dvth)
      : sta_(&analyzer.sta()), lib_(&sta_->library()), dvth_(&dvth),
        temp_(analyzer.conditions().sta_temperature) {
    const netlist::Netlist& nl = sta_->netlist();
    const double alpha = lib_->params().pmos.alpha;
    const double vdd = lib_->params().vdd;
    const double vth0 = lib_->params().pmos.vth0;
    aging_factor_.resize(nl.num_gates());
    for (int gi = 0; gi < nl.num_gates(); ++gi) {
      aging_factor_[gi] = 1.0 + alpha * dvth[gi] / (vdd - vth0);
    }
    // Fanout structure: (sink gate, pin cap) per gate, plus constant load.
    const double wire = lib_->params().wire_cap_per_fanout;
    const double po_load = lib_->input_cap(lib_->find("BUF"), 0) + wire;
    sinks_.resize(nl.num_gates());
    fixed_load_.assign(nl.num_gates(), 0.0);
    for (int gi = 0; gi < nl.num_gates(); ++gi) {
      const netlist::NodeId out = nl.gate(gi).output;
      for (int sink : nl.fanout_gates(out)) {
        const netlist::Gate& sg = nl.gate(sink);
        for (std::size_t pin = 0; pin < sg.fanins.size(); ++pin) {
          if (sg.fanins[pin] == out) {
            sinks_[gi].emplace_back(
                sink,
                lib_->input_cap(sta_->gate_cell(sink), static_cast<int>(pin)));
            fixed_load_[gi] += wire;
          }
        }
      }
      if (std::find(nl.outputs().begin(), nl.outputs().end(), out) !=
          nl.outputs().end()) {
        fixed_load_[gi] += po_load;
      }
    }
  }

  /// Aged critical delay for the given size factors.
  sta::TimingResult aged_timing(const std::vector<double>& sizes) const {
    return sta_->analyze(aged_delays(sizes));
  }

  std::vector<double> aged_delays(const std::vector<double>& sizes) const {
    const netlist::Netlist& nl = sta_->netlist();
    std::vector<double> delays(nl.num_gates());
    for (int gi = 0; gi < nl.num_gates(); ++gi) {
      double load = fixed_load_[gi];
      for (const auto& [sink, cap] : sinks_[gi]) load += cap * sizes[sink];
      delays[gi] = lib_->cell_delay(sta_->gate_cell(gi), load / sizes[gi],
                                    temp_) *
                   aging_factor_[gi];
    }
    return delays;
  }

  const sta::StaEngine& sta() const { return *sta_; }

 private:
  const sta::StaEngine* sta_;
  const tech::Library* lib_;
  const std::vector<double>* dvth_;
  double temp_;
  std::vector<double> aging_factor_;
  std::vector<std::vector<std::pair<int, double>>> sinks_;
  std::vector<double> fixed_load_;
};

}  // namespace

SizingResult size_for_lifetime(const aging::AgingAnalyzer& analyzer,
                               const aging::StandbyPolicy& policy,
                               const SizingParams& params) {
  if (params.spec_margin_percent < 0.0 || params.size_step <= 0.0 ||
      params.max_size < 1.0 || params.max_moves < 1) {
    throw std::invalid_argument("size_for_lifetime: bad parameters");
  }
  const netlist::Netlist& nl = analyzer.sta().netlist();
  const std::vector<double> dvth = analyzer.gate_dvth(policy);
  const SizedTiming timing(analyzer, dvth);

  SizingResult r;
  r.sizes.assign(nl.num_gates(), 1.0);
  r.fresh_delay = analyzer.sta()
                      .analyze(analyzer.sta().gate_delays(
                          analyzer.conditions().sta_temperature))
                      .max_delay;
  r.spec = r.fresh_delay * (1.0 + params.spec_margin_percent / 100.0);

  sta::TimingResult aged = timing.aged_timing(r.sizes);
  r.aged_before = aged.max_delay;

  while (aged.max_delay > r.spec && r.moves < params.max_moves) {
    // Candidate moves: upsize any gate driving a net on the aged critical
    // path; pick the best delay improvement per unit area.
    int best_gate = -1;
    double best_ratio = 0.0;
    double best_delay = aged.max_delay;
    for (netlist::NodeId node : aged.critical_path) {
      const int gi = nl.driver_gate(node);
      if (gi < 0) continue;
      if (r.sizes[gi] + params.size_step > params.max_size) continue;
      std::vector<double> trial = r.sizes;
      trial[gi] += params.size_step;
      const double d = timing.aged_timing(trial).max_delay;
      const double gain = aged.max_delay - d;
      if (gain > 0.0 && gain / params.size_step > best_ratio) {
        best_ratio = gain / params.size_step;
        best_gate = gi;
        best_delay = d;
      }
    }
    if (best_gate < 0) break;  // no improving move available
    r.sizes[best_gate] += params.size_step;
    ++r.moves;
    aged = timing.aged_timing(r.sizes);
    (void)best_delay;
  }

  r.aged_after = aged.max_delay;
  r.met = aged.max_delay <= r.spec;
  return r;
}

}  // namespace nbtisim::opt
