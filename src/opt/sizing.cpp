#include "opt/sizing.h"

#include <algorithm>
#include <stdexcept>

#include "common/pool.h"
#include "sta/incremental.h"

namespace nbtisim::opt {

SizedTiming::SizedTiming(const aging::AgingAnalyzer& analyzer,
                         const std::vector<double>& dvth)
    : sta_(&analyzer.sta()), lib_(&sta_->library()),
      temp_(analyzer.conditions().sta_temperature) {
  const netlist::Netlist& nl = sta_->netlist();
  if (static_cast<int>(dvth.size()) != nl.num_gates()) {
    throw std::invalid_argument("SizedTiming: dvth size mismatch");
  }
  const double alpha = lib_->params().pmos.alpha;
  const double vdd = lib_->params().vdd;
  const double vth0 = lib_->params().pmos.vth0;
  aging_factor_.resize(nl.num_gates());
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    aging_factor_[gi] = 1.0 + alpha * dvth[gi] / (vdd - vth0);
  }
  // Fanout structure: (sink gate, pin cap) per gate, plus constant load.
  const double wire = lib_->params().wire_cap_per_fanout;
  const double po_load = lib_->input_cap(lib_->find("BUF"), 0) + wire;
  sinks_.resize(nl.num_gates());
  fixed_load_.assign(nl.num_gates(), 0.0);
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    const netlist::NodeId out = nl.gate(gi).output;
    for (int sink : nl.fanout_gates(out)) {
      const netlist::Gate& sg = nl.gate(sink);
      for (std::size_t pin = 0; pin < sg.fanins.size(); ++pin) {
        if (sg.fanins[pin] == out) {
          sinks_[gi].emplace_back(
              sink,
              lib_->input_cap(sta_->gate_cell(sink), static_cast<int>(pin)));
          fixed_load_[gi] += wire;
        }
      }
    }
    if (std::find(nl.outputs().begin(), nl.outputs().end(), out) !=
        nl.outputs().end()) {
      fixed_load_[gi] += po_load;
    }
  }
  // Resizing g changes g's own delay (drive) and the delays of the drivers
  // of g's fanin nets (their load includes cap * s_g).
  affected_.resize(nl.num_gates());
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    std::vector<int>& aff = affected_[gi];
    aff.push_back(gi);
    for (netlist::NodeId fanin : nl.gate(gi).fanins) {
      const int d = nl.driver_gate(fanin);
      if (d >= 0 && std::find(aff.begin(), aff.end(), d) == aff.end()) {
        aff.push_back(d);
      }
    }
  }
  set_sizes(std::vector<double>(nl.num_gates(), 1.0));
}

double SizedTiming::gate_delay(const std::vector<double>& sizes, int gi,
                               int resized, double resized_size) const {
  double load = fixed_load_[gi];
  for (const auto& [sink, cap] : sinks_[gi]) {
    load += cap * (sink == resized ? resized_size : sizes[sink]);
  }
  const double s = gi == resized ? resized_size : sizes[gi];
  return lib_->cell_delay(sta_->gate_cell(gi), load / s, temp_) *
         aging_factor_[gi];
}

std::vector<double> SizedTiming::aged_delays(
    const std::vector<double>& sizes) const {
  const netlist::Netlist& nl = sta_->netlist();
  if (static_cast<int>(sizes.size()) != nl.num_gates()) {
    throw std::invalid_argument("SizedTiming: sizes size mismatch");
  }
  std::vector<double> delays(nl.num_gates());
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    delays[gi] = gate_delay(sizes, gi, -1, 0.0);
  }
  return delays;
}

sta::TimingResult SizedTiming::aged_timing(
    const std::vector<double>& sizes) const {
  return sta_->analyze(aged_delays(sizes));
}

void SizedTiming::set_sizes(std::vector<double> sizes) {
  delays_ = aged_delays(sizes);  // validates the length
  sizes_ = std::move(sizes);
}

sta::TimingResult SizedTiming::analyze_current() const {
  return sta_->analyze(delays_);
}

sta::TimingResult SizedTiming::evaluate_resize(
    int gate, double new_size, std::vector<double>& scratch) const {
  scratch.assign(delays_.begin(), delays_.end());
  for (int a : affected_[gate]) {
    scratch[a] = gate_delay(sizes_, a, gate, new_size);
  }
  return sta_->analyze(scratch);
}

void SizedTiming::commit_resize(int gate, double new_size) {
  for (int a : affected_[gate]) {
    delays_[a] = gate_delay(sizes_, a, gate, new_size);
  }
  sizes_[gate] = new_size;
}

namespace {

/// Slack-aware multi-path sizing round loop (slack_window_percent > 0).
/// One resident IncrementalSta carries every trial and commit: a candidate
/// move is priced by patching its affected delays inside a checkpoint and
/// re-timing the dirty frontier, then rolled back — O(frontier) per trial
/// where the classic loop pays a full O(V + E) STA.  \p r arrives with
/// sizes / fresh_delay / spec filled in by size_for_lifetime.
SizingResult size_multi_path(const aging::AgingAnalyzer& analyzer,
                             SizedTiming& timing, const SizingParams& params,
                             SizingResult r) {
  const netlist::Netlist& nl = analyzer.sta().netlist();
  sta::IncrementalSta inc(analyzer.sta(), timing.current_delays());
  double aged_max = inc.max_delay();
  r.aged_before = aged_max;

  std::vector<int> candidates;
  std::vector<double> trial_max;
  std::vector<char> used(nl.num_gates(), 0);
  while (aged_max > r.spec && r.moves < params.max_moves) {
    // Candidate moves: any upsizable gate whose output net sits within the
    // slack window of the aged critical delay — every near-critical path
    // contributes, not just the single worst one.
    const std::vector<double>& slack = inc.slacks();
    const double window = aged_max * params.slack_window_percent / 100.0;
    candidates.clear();
    for (int gi = 0; gi < nl.num_gates(); ++gi) {
      if (r.sizes[gi] + params.size_step > params.max_size) continue;
      const double s = slack[nl.gate(gi).output];
      if (s >= sta::kUnconstrainedSlack || s > window) continue;
      candidates.push_back(gi);
    }
    if (candidates.empty()) break;

    // Price every candidate against the round's base state.
    trial_max.assign(candidates.size(), 0.0);
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const int gi = candidates[i];
      const double new_size = r.sizes[gi] + params.size_step;
      inc.checkpoint();
      for (int a : timing.affected_gates(gi)) {
        inc.set_delay(a, timing.patched_delay(a, gi, new_size));
      }
      trial_max[i] = inc.max_delay();
      inc.rollback();
    }

    // Commit up to moves_per_round non-overlapping moves, best gain per
    // area step first (strict argmax, first-wins — the classic tie rule).
    // Overlapping affected sets would invalidate each other's patched
    // delays, so an already-touched gate disqualifies a candidate for the
    // rest of the round.
    std::fill(used.begin(), used.end(), 0);
    int committed = 0;
    for (int k = 0; k < params.moves_per_round && r.moves < params.max_moves;
         ++k) {
      int best = -1;
      double best_ratio = 0.0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        bool overlaps = false;
        for (int a : timing.affected_gates(candidates[i])) {
          if (used[a]) {
            overlaps = true;
            break;
          }
        }
        if (overlaps) continue;
        const double gain = aged_max - trial_max[i];
        if (gain > 0.0 && gain / params.size_step > best_ratio) {
          best_ratio = gain / params.size_step;
          best = static_cast<int>(i);
        }
      }
      if (best < 0) break;
      const int gi = candidates[best];
      const double new_size = r.sizes[gi] + params.size_step;
      for (int a : timing.affected_gates(gi)) used[a] = 1;
      if (committed == 0) {
        // Priced against exactly the current state, so the positive gain
        // is exact: commit directly.  (patched_delay must run before
        // commit_resize updates the cached sizes; the committed delays are
        // bitwise the patched ones.)
        for (int a : timing.affected_gates(gi)) {
          inc.set_delay(a, timing.patched_delay(a, gi, new_size));
        }
        timing.commit_resize(gi, new_size);
        r.sizes[gi] = new_size;
        ++r.moves;
        ++committed;
        aged_max = inc.max_delay();
      } else {
        // Later moves were priced against the round's base; re-validate on
        // top of the moves already committed and keep only real wins.
        inc.checkpoint();
        for (int a : timing.affected_gates(gi)) {
          inc.set_delay(a, timing.patched_delay(a, gi, new_size));
        }
        const double new_max = inc.max_delay();
        if (new_max < aged_max) {
          inc.commit();
          timing.commit_resize(gi, new_size);
          r.sizes[gi] = new_size;
          ++r.moves;
          ++committed;
          aged_max = new_max;
        } else {
          inc.rollback();
        }
      }
    }
    if (committed == 0) break;
    ++r.rounds;
  }

  r.aged_after = aged_max;
  r.met = aged_max <= r.spec;
  return r;
}

}  // namespace

SizingResult size_for_lifetime(const aging::AgingAnalyzer& analyzer,
                               const aging::StandbyPolicy& policy,
                               const SizingParams& params) {
  if (params.spec_margin_percent < 0.0 || params.size_step <= 0.0 ||
      params.max_size < 1.0 || params.max_moves < 1 ||
      params.slack_window_percent < 0.0 || params.moves_per_round < 1) {
    throw std::invalid_argument("size_for_lifetime: bad parameters");
  }
  const netlist::Netlist& nl = analyzer.sta().netlist();
  const std::vector<double> dvth = analyzer.gate_dvth(policy);
  SizedTiming timing(analyzer, dvth);
  const int n_threads = common::resolve_threads(params.n_threads);

  SizingResult r;
  r.sizes.assign(nl.num_gates(), 1.0);
  r.fresh_delay = analyzer.sta()
                      .analyze(analyzer.sta().gate_delays(
                          analyzer.conditions().sta_temperature))
                      .max_delay;
  r.spec = r.fresh_delay * (1.0 + params.spec_margin_percent / 100.0);

  if (params.slack_window_percent > 0.0) {
    return size_multi_path(analyzer, timing, params, std::move(r));
  }

  sta::TimingResult aged = timing.analyze_current();
  r.aged_before = aged.max_delay;

  std::vector<int> candidates;
  std::vector<sta::TimingResult> trials;
  while (aged.max_delay > r.spec && r.moves < params.max_moves) {
    // Candidate moves: upsize any gate driving a net on the aged critical
    // path; pick the best delay improvement per unit area.
    candidates.clear();
    for (netlist::NodeId node : aged.critical_path) {
      const int gi = nl.driver_gate(node);
      if (gi < 0) continue;
      if (r.sizes[gi] + params.size_step > params.max_size) continue;
      candidates.push_back(gi);
    }
    if (candidates.empty()) break;

    // Each trial writes only its own slot; the argmax folds serially in
    // path order below, so results are bit-identical for every n_threads.
    trials.assign(candidates.size(), {});
    common::parallel_for(
        static_cast<int>(candidates.size()), n_threads, [&](int i) {
          const int gi = candidates[i];
          const double new_size = r.sizes[gi] + params.size_step;
          if (params.incremental) {
            std::vector<double> scratch;
            trials[i] = timing.evaluate_resize(gi, new_size, scratch);
          } else {
            std::vector<double> trial = r.sizes;
            trial[gi] = new_size;
            trials[i] = timing.aged_timing(trial);
          }
        });

    int best = -1;
    double best_ratio = 0.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double gain = aged.max_delay - trials[i].max_delay;
      if (gain > 0.0 && gain / params.size_step > best_ratio) {
        best_ratio = gain / params.size_step;
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;  // no improving move available
    const int gi = candidates[best];
    r.sizes[gi] += params.size_step;
    ++r.moves;
    ++r.rounds;
    timing.commit_resize(gi, r.sizes[gi]);
    aged = std::move(trials[best]);
  }

  r.aged_after = aged.max_delay;
  r.met = aged.max_delay <= r.spec;
  return r;
}

}  // namespace nbtisim::opt
