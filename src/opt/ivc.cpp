#include "opt/ivc.h"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "common/pool.h"
#include "common/rng.h"

namespace nbtisim::opt {
namespace {

// Salt separating the random-reference streams of evaluate_ivc from the
// MLV search streams that share the same user seed.
constexpr std::uint64_t kRandomRefSalt = 0x495643726566ull;  // "IVCref"

}  // namespace

double IvcResult::mlv_spread_percent() const {
  if (candidates.empty()) return 0.0;
  auto [lo, hi] = std::minmax_element(
      candidates.begin(), candidates.end(),
      [](const IvcCandidate& a, const IvcCandidate& b) {
        return a.degradation_percent < b.degradation_percent;
      });
  return hi->degradation_percent - lo->degradation_percent;
}

IvcResult evaluate_ivc(const aging::AgingAnalyzer& analyzer,
                       const leakage::LeakageAnalyzer& standby_leak,
                       const MlvSearchParams& mlv_params, int n_random_ref) {
  if (&analyzer.sta().netlist() != &standby_leak.netlist()) {
    throw std::invalid_argument(
        "evaluate_ivc: aging and leakage analyzers bound to different "
        "netlists");
  }
  const netlist::Netlist& nl = standby_leak.netlist();

  IvcResult result;
  const MlvResult mlv = find_mlv_set(standby_leak, mlv_params);
  if (mlv.vectors.empty()) {
    throw std::logic_error("evaluate_ivc: MLV search produced no vectors");
  }
  // Each candidate is an independent AgingAnalyzer::analyze call (the
  // analyzer's stress-descriptor cache is thread-safe) writing its own
  // slot: bit-identical for every n_threads.
  result.candidates.resize(mlv.vectors.size());
  common::parallel_for(
      static_cast<int>(mlv.vectors.size()), mlv_params.n_threads, [&](int i) {
        IvcCandidate& cand = result.candidates[i];
        cand.vector = mlv.vectors[i];
        cand.leakage = mlv.leakages[i];
        cand.degradation_percent =
            analyzer.analyze(aging::StandbyPolicy::from_vector(cand.vector))
                .percent();
      });

  // Best member: minimum degradation; ties broken by lower leakage (the set
  // is already leakage-ascending, and std::min_element keeps the first).
  result.best_index = static_cast<int>(
      std::min_element(result.candidates.begin(), result.candidates.end(),
                       [](const IvcCandidate& a, const IvcCandidate& b) {
                         return a.degradation_percent < b.degradation_percent;
                       }) -
      result.candidates.begin());

  result.worst_case_percent =
      analyzer.analyze(aging::StandbyPolicy::all_stressed()).percent();
  result.best_case_percent =
      analyzer.analyze(aging::StandbyPolicy::all_relaxed()).percent();

  if (n_random_ref > 0) {
    // One SplitMix64-decorrelated stream per reference vector (salted away
    // from the MLV search streams), evaluated in parallel; the mean is
    // reduced in stream order.
    std::vector<double> ref_percent(n_random_ref);
    common::parallel_for(n_random_ref, mlv_params.n_threads, [&](int k) {
      std::mt19937_64 rng(
          common::stream_seed(mlv_params.seed ^ kRandomRefSalt, k));
      std::uniform_int_distribution<int> bit(0, 1);
      std::vector<bool> v(nl.num_inputs());
      for (int i = 0; i < nl.num_inputs(); ++i) v[i] = bit(rng) != 0;
      ref_percent[k] =
          analyzer.analyze(aging::StandbyPolicy::from_vector(v)).percent();
    });
    double acc = 0.0;
    for (double p : ref_percent) acc += p;
    result.random_vector_percent = acc / n_random_ref;
  }
  return result;
}

AlternatingIvcResult evaluate_alternating_ivc(
    const aging::AgingAnalyzer& analyzer,
    const leakage::LeakageAnalyzer& standby_leak,
    const MlvSearchParams& mlv_params) {
  if (&analyzer.sta().netlist() != &standby_leak.netlist()) {
    throw std::invalid_argument(
        "evaluate_alternating_ivc: analyzers bound to different netlists");
  }
  const MlvResult mlv = find_mlv_set(standby_leak, mlv_params);
  if (mlv.vectors.empty()) {
    throw std::logic_error("evaluate_alternating_ivc: empty MLV set");
  }

  auto max_of = [](const std::vector<double>& v) {
    double m = 0.0;
    for (double x : v) m = std::max(m, x);
    return m;
  };

  AlternatingIvcResult r;
  r.n_vectors = static_cast<int>(mlv.vectors.size());

  // Best static member by circuit degradation: per-candidate analyses fan
  // out, the argmin scan stays in set order (first minimum wins, as before).
  std::vector<double> percent(mlv.vectors.size());
  common::parallel_for(
      static_cast<int>(mlv.vectors.size()), mlv_params.n_threads, [&](int i) {
        percent[i] =
            analyzer.analyze(aging::StandbyPolicy::from_vector(mlv.vectors[i]))
                .percent();
      });
  double best_percent = 1e18;
  std::size_t best = 0;
  for (std::size_t i = 0; i < mlv.vectors.size(); ++i) {
    if (percent[i] < best_percent) {
      best_percent = percent[i];
      best = i;
    }
  }
  r.static_percent = best_percent;
  r.static_max_dvth = max_of(analyzer.gate_dvth(
      aging::StandbyPolicy::from_vector(mlv.vectors[best])));

  // Rotation across the whole set.
  const aging::StandbyPolicy rotation =
      aging::StandbyPolicy::rotating(mlv.vectors);
  r.rotating_percent = analyzer.analyze(rotation).percent();
  r.rotating_max_dvth = max_of(analyzer.gate_dvth(rotation));

  double leak_sum = 0.0;
  for (double l : mlv.leakages) leak_sum += l;
  r.mean_rotation_leakage = leak_sum / mlv.leakages.size();

  // Complement-pair rotation: best MLV alternated with its bitwise inverse.
  std::vector<bool> complement(mlv.vectors[best].size());
  for (std::size_t i = 0; i < complement.size(); ++i) {
    complement[i] = !mlv.vectors[best][i];
  }
  const aging::StandbyPolicy pair =
      aging::StandbyPolicy::rotating({mlv.vectors[best], complement});
  r.complement_percent = analyzer.analyze(pair).percent();
  r.complement_max_dvth = max_of(analyzer.gate_dvth(pair));
  r.complement_leakage = 0.5 * (mlv.leakages[best] +
                                standby_leak.circuit_leakage(complement));
  return r;
}

IncPotential internal_node_control_potential(
    const aging::AgingAnalyzer& analyzer) {
  IncPotential p;
  p.worst_percent =
      analyzer.analyze(aging::StandbyPolicy::all_stressed()).percent();
  p.best_percent =
      analyzer.analyze(aging::StandbyPolicy::all_relaxed()).percent();
  return p;
}

}  // namespace nbtisim::opt
