/// \file inc_insertion.h
/// \brief Internal-node control by control-point insertion / gate
///        replacement (the paper's refs [9] Yuan/Qu and [10]
///        Rahman/Chakrabarti, discussed in Section 4.3.3).
///
/// Table 4 bounds what controlling internal nodes *could* save; this module
/// implements the technique. A control point replaces the driver of a
/// selected net with a gated variant: one extra PMOS in parallel with the
/// pull-up (driven by sleep') forces the net to 1 during standby, and one
/// series NMOS in the pull-down keeps the gate functional when awake. The
/// cost is a small delay penalty on the modified driver (a fraction of its
/// delay, NOT a whole extra gate level); the benefit is that every PMOS
/// read by the forced net relaxes during standby and the forced 1 keeps
/// propagating relaxation downstream.
///
/// Selection: rank stressing nets (value 0 under the reference standby
/// vector) by reader count weighted by reader criticality, preferring nets
/// whose own driver is NOT timing-critical (the penalty lands on the
/// driver).
#pragma once

#include <string>
#include <vector>

#include "aging/aging.h"

namespace nbtisim::opt {

/// Control-point insertion knobs.
struct IncInsertionParams {
  int max_control_points = 10;   ///< nets to control
  double driver_delay_penalty = 0.08;  ///< fractional delay increase of a
                                       ///< modified driver (series NMOS)
};

/// Result: forced nets + before/after metrics on the SAME netlist.
struct IncInsertionResult {
  std::vector<netlist::NodeId> controlled;  ///< controlled nets
  std::vector<std::string> controlled_names;
  double fresh_before = 0.0;  ///< fresh critical delay, unmodified [s]
  double fresh_after = 0.0;   ///< fresh critical delay with driver penalties [s]
  double aging_before = 0.0;  ///< degradation, all-zero standby, unmodified [%]
  double aging_after = 0.0;   ///< degradation with control points active [%]

  double time0_penalty_percent() const {
    return fresh_before > 0.0
               ? 100.0 * (fresh_after - fresh_before) / fresh_before
               : 0.0;
  }
  double aging_saving_percent() const {
    return aging_before > 0.0
               ? 100.0 * (aging_before - aging_after) / aging_before
               : 0.0;
  }
};

/// Selects control points in \p nl and evaluates the aging benefit under
/// \p cond (standby reference vector: all primary inputs 0).
/// \throws std::invalid_argument for bad parameters
IncInsertionResult insert_control_points(const netlist::Netlist& nl,
                                         const tech::Library& lib,
                                         const aging::AgingConditions& cond,
                                         const IncInsertionParams& params = {});

}  // namespace nbtisim::opt
