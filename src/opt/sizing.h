/// \file sizing.h
/// \brief NBTI-aware gate sizing (the Paul et al. [22] baseline the paper
///        discusses in related work).
///
/// Instead of guard-banding the clock, upsize gates so the *aged* circuit
/// still meets timing at end-of-life. Upsizing a gate by factor s multiplies
/// its drive and its input capacitance by s: its own delay contribution
/// drops (it sees load/s), while its fanin drivers see a heavier load —
/// the classic TILOS trade-off. The optimizer runs a greedy loop:
///
///   while aged critical delay > spec:
///     upsize the gate on the aged critical path with the best
///     delay-improvement-per-area ratio
///
/// and reports the area overhead, comparable against plain guard-banding.
#pragma once

#include <vector>

#include "aging/aging.h"

namespace nbtisim::opt {

/// Sizing knobs.
struct SizingParams {
  double spec_margin_percent = 1.0;  ///< allowed aged delay over the fresh
                                     ///< nominal critical delay [%]
  double size_step = 0.25;           ///< multiplicative step added per move
  double max_size = 4.0;             ///< per-gate size cap
  int max_moves = 2000;              ///< greedy iteration cap
};

/// Result of the sizing loop.
struct SizingResult {
  std::vector<double> sizes;      ///< per-gate size factors (>= 1)
  double fresh_delay = 0.0;       ///< nominal all-1x critical delay [s]
  double spec = 0.0;              ///< timing spec the aged circuit must meet [s]
  double aged_before = 0.0;       ///< aged delay at all-1x [s]
  double aged_after = 0.0;        ///< aged delay after sizing [s]
  bool met = false;               ///< spec achieved
  int moves = 0;                  ///< upsizing moves applied

  /// Total area increase, with gate area proportional to size [%].
  double area_overhead_percent() const {
    if (sizes.empty()) return 0.0;
    double sum = 0.0;
    for (double s : sizes) sum += s;
    return 100.0 * (sum / sizes.size() - 1.0);
  }
  /// The guard-band a non-sized design would need instead [%].
  double guard_band_percent() const {
    return fresh_delay > 0.0 ? 100.0 * (aged_before / fresh_delay - 1.0) : 0.0;
  }
};

/// Sizes \p analyzer's circuit so its aged delay (under \p policy, at the
/// analyzer's horizon) meets fresh_delay * (1 + spec_margin).
/// \throws std::invalid_argument for bad parameters
SizingResult size_for_lifetime(const aging::AgingAnalyzer& analyzer,
                               const aging::StandbyPolicy& policy,
                               const SizingParams& params = {});

}  // namespace nbtisim::opt
