/// \file sizing.h
/// \brief NBTI-aware gate sizing (the Paul et al. [22] baseline the paper
///        discusses in related work).
///
/// Instead of guard-banding the clock, upsize gates so the *aged* circuit
/// still meets timing at end-of-life. Upsizing a gate by factor s multiplies
/// its drive and its input capacitance by s: its own delay contribution
/// drops (it sees load/s), while its fanin drivers see a heavier load —
/// the classic TILOS trade-off. The optimizer runs a greedy loop:
///
///   while aged critical delay > spec:
///     upsize the gate on the aged critical path with the best
///     delay-improvement-per-area ratio
///
/// and reports the area overhead, comparable against plain guard-banding.
///
/// The inner loop evaluates every candidate move on the aged critical path
/// concurrently (common::parallel_for, each trial writing its own slot) and
/// folds the argmax serially in path order, so results are bit-identical for
/// every SizingParams::n_threads — the same determinism contract as the
/// MC/IVC/Pareto layers.  A resize only changes the delays of the resized
/// gate and of its fanin drivers, so SizedTiming also offers an incremental
/// path that patches just those entries into a cached delay vector instead
/// of rebuilding all num_gates() delays per trial; both paths are verified
/// against a naive reference evaluator by tests/test_differential.cpp.
///
/// Setting SizingParams::slack_window_percent > 0 switches the loop to
/// slack-aware multi-path sizing: each round collects every gate whose
/// output-net slack sits within the window of the aged critical delay,
/// prices each candidate upsize through an sta::IncrementalSta checkpoint
/// (patch the affected delays, re-time the frontier, roll back), and
/// commits the best SizingParams::moves_per_round non-overlapping moves —
/// several near-critical paths tighten per round instead of one move along
/// a single critical path.  The defaults (window 0, one move per round)
/// reproduce the classic loop bit for bit.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "aging/aging.h"

namespace nbtisim::opt {

/// Sizing knobs.
struct SizingParams {
  double spec_margin_percent = 1.0;  ///< allowed aged delay over the fresh
                                     ///< nominal critical delay [%]
  double size_step = 0.25;           ///< multiplicative step added per move
  double max_size = 4.0;             ///< per-gate size cap
  int max_moves = 2000;              ///< greedy iteration cap
  /// Worker threads for the per-move candidate evaluation; 0 = hardware
  /// concurrency.  Results are bit-identical for every value.
  int n_threads = 0;
  /// Use the incremental SizedTiming path (patch only the affected delays
  /// per trial).  false forces the brute-force full-rebuild path; both are
  /// bit-identical — the flag exists for benchmarking and differential
  /// testing, not for accuracy.
  bool incremental = true;
  /// Slack window for multi-path candidate collection, as a percentage of
  /// the aged critical delay.  0 (the default) keeps the classic
  /// single-critical-path greedy loop bit for bit; > 0 considers every
  /// gate whose output-net slack is within the window and prices each
  /// move through an sta::IncrementalSta checkpoint.
  double slack_window_percent = 0.0;
  /// Best non-overlapping moves committed per round in window mode (two
  /// moves overlap when their affected gate sets intersect).  Ignored by
  /// the classic loop, which always commits exactly one move per round.
  int moves_per_round = 1;
};

/// Result of the sizing loop.
struct SizingResult {
  std::vector<double> sizes;      ///< per-gate size factors (>= 1)
  double fresh_delay = 0.0;       ///< nominal all-1x critical delay [s]
  double spec = 0.0;              ///< timing spec the aged circuit must meet [s]
  double aged_before = 0.0;       ///< aged delay at all-1x [s]
  double aged_after = 0.0;        ///< aged delay after sizing [s]
  bool met = false;               ///< spec achieved
  int moves = 0;                  ///< upsizing moves applied
  int rounds = 0;                 ///< outer-loop rounds (== moves when
                                  ///< moves_per_round is 1)

  /// Total area increase, with gate area proportional to size [%].
  double area_overhead_percent() const {
    if (sizes.empty()) return 0.0;
    double sum = 0.0;
    for (double s : sizes) sum += s;
    return 100.0 * (sum / sizes.size() - 1.0);
  }
  /// The guard-band a non-sized design would need instead [%].
  double guard_band_percent() const {
    return fresh_delay > 0.0 ? 100.0 * (aged_before / fresh_delay - 1.0) : 0.0;
  }
};

/// Sized-timing evaluator: per-gate size factors scale drive and input
/// capacitance together, so delay_g = cell_delay(load_g(sizes) / s_g) *
/// aging_factor_g with aging_factor from the per-gate dVth (paper eq. 22).
///
/// Two evaluation paths, bit-identical by construction (both compute each
/// delay entry with the same expression in the same accumulation order):
///   - brute force: aged_delays()/aged_timing() rebuild every gate delay
///     from the given size vector on each call;
///   - incremental: set_sizes() caches the delay vector once, and
///     evaluate_resize()/commit_resize() recompute only the affected gates
///     (the resized gate, whose drive changed, and its fanin drivers, whose
///     load changed).
/// Query methods are const and safe to call concurrently for distinct
/// scratch vectors; commit_resize()/set_sizes() are not.
class SizedTiming {
 public:
  /// \p dvth is the per-gate worst-PMOS threshold shift (one entry per gate,
  /// e.g. AgingAnalyzer::gate_dvth).
  /// \throws std::invalid_argument when dvth size mismatches the netlist
  SizedTiming(const aging::AgingAnalyzer& analyzer,
              const std::vector<double>& dvth);

  // --- brute-force path (the differential-testing baseline) ---

  /// All num_gates() aged delays for the given size factors, rebuilt from
  /// scratch. \throws std::invalid_argument on a size-vector length mismatch
  std::vector<double> aged_delays(const std::vector<double>& sizes) const;

  /// Aged critical delay for the given size factors (full rebuild + STA).
  sta::TimingResult aged_timing(const std::vector<double>& sizes) const;

  // --- incremental path ---

  /// (Re)initializes the cached sizes + delay vector.
  /// \throws std::invalid_argument on a size-vector length mismatch
  void set_sizes(std::vector<double> sizes);

  const std::vector<double>& current_sizes() const { return sizes_; }
  const std::vector<double>& current_delays() const { return delays_; }

  /// STA over the cached delay vector.
  sta::TimingResult analyze_current() const;

  /// Gates whose delay depends on gate \p gate's size factor: the gate
  /// itself plus the drivers of its fanin nets, deduplicated.
  std::span<const int> affected_gates(int gate) const {
    return affected_.at(gate);
  }

  /// Evaluates resizing \p gate to \p new_size without committing: copies
  /// the cached delays into \p scratch, patches the affected entries and
  /// runs STA.  Thread-safe for concurrent calls with distinct scratches.
  sta::TimingResult evaluate_resize(int gate, double new_size,
                                    std::vector<double>& scratch) const;

  /// Applies the resize to the cached sizes + delay vector.
  void commit_resize(int gate, double new_size);

  /// Delay gate \p gi would have under the cached sizes with gate
  /// \p resized overridden to \p resized_size — the per-entry patch the
  /// multi-path loop feeds into IncrementalSta::set_delay for each gate in
  /// affected_gates(resized).  Bitwise the value commit_resize would cache.
  double patched_delay(int gi, int resized, double resized_size) const {
    return gate_delay(sizes_, gi, resized, resized_size);
  }

  const sta::StaEngine& sta() const { return *sta_; }

 private:
  /// Delay of gate \p gi under \p sizes, with gate \p resized (-1 for none)
  /// overridden to \p resized_size.  The single source of truth for every
  /// path above — sharing it is what makes the paths bit-identical.
  double gate_delay(const std::vector<double>& sizes, int gi, int resized,
                    double resized_size) const;

  const sta::StaEngine* sta_;
  const tech::Library* lib_;
  double temp_;
  std::vector<double> aging_factor_;
  std::vector<std::vector<std::pair<int, double>>> sinks_;  // (sink, pin cap)
  std::vector<double> fixed_load_;
  std::vector<std::vector<int>> affected_;
  std::vector<double> sizes_;
  std::vector<double> delays_;
};

/// Sizes \p analyzer's circuit so its aged delay (under \p policy, at the
/// analyzer's horizon) meets fresh_delay * (1 + spec_margin).
/// \throws std::invalid_argument for bad parameters
SizingResult size_for_lifetime(const aging::AgingAnalyzer& analyzer,
                               const aging::StandbyPolicy& policy,
                               const SizingParams& params = {});

}  // namespace nbtisim::opt
