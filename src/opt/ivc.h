/// \file ivc.h
/// \brief Input-vector-control / NBTI co-optimization and the internal-node
///        control potential analysis — paper Sections 4.3.
///
/// The co-optimizer realizes the paper's Fig. 6 platform end-to-end: select
/// an MLV set (leakage within a small window of the minimum), evaluate the
/// NBTI-induced delay degradation of each member by simulating the standby
/// states it implies, and pick the member that minimizes degradation —
/// "MLV that simultaneously achieves the minimum circuit performance
/// degradation and the maximum leakage reduction rate" (Section 4.3.1).
///
/// The internal-node-control (INC) analysis bounds what *any* standby-state
/// technique could achieve: the gap between the all-nodes-stressed worst
/// case and the all-nodes-relaxed best case (Table 4).
#pragma once

#include "aging/aging.h"
#include "leakage/leakage.h"
#include "opt/mlv.h"

namespace nbtisim::opt {

/// One evaluated MLV candidate.
struct IvcCandidate {
  std::vector<bool> vector;
  double leakage = 0.0;             ///< standby leakage [A]
  double degradation_percent = 0.0; ///< 10-year circuit delay degradation [%]
};

/// Result of IVC / NBTI co-optimization for one circuit.
struct IvcResult {
  std::vector<IvcCandidate> candidates;  ///< the evaluated MLV set
  int best_index = 0;                    ///< min-degradation member
  double worst_case_percent = 0.0;       ///< all-internal-nodes-stressed bound
  double best_case_percent = 0.0;        ///< all-internal-nodes-relaxed bound
  double random_vector_percent = 0.0;    ///< mean degradation of random
                                         ///< standby vectors (reference)

  const IvcCandidate& best() const { return candidates.at(best_index); }
  /// Spread of degradation across the MLV set ("MLV diff" of Table 3) [%pt].
  double mlv_spread_percent() const;
};

/// Runs the full IVC co-optimization flow.
///
/// \param analyzer      aging platform (provides SP, STA, conditions)
/// \param standby_leak  leakage analyzer at the *standby* temperature
/// \param mlv_params    Fig. 7 search knobs
/// \param n_random_ref  random standby vectors for the reference average
/// \throws std::invalid_argument when analyzers are bound to different
///         netlists
IvcResult evaluate_ivc(const aging::AgingAnalyzer& analyzer,
                       const leakage::LeakageAnalyzer& standby_leak,
                       const MlvSearchParams& mlv_params = {},
                       int n_random_ref = 8);

/// Result of *alternating* IVC (Abella et al. [23], discussed in the paper's
/// related work): instead of holding one MLV for every idle period, rotate
/// through several — any single vector always degrades the same transistors,
/// so alternating vectors that stress different PMOS reduces the maximum
/// degradation of any device "with practically no cost".
struct AlternatingIvcResult {
  int n_vectors = 0;                 ///< rotation size (the MLV set)
  double static_percent = 0.0;       ///< circuit degradation, best single MLV
  double rotating_percent = 0.0;     ///< circuit degradation, rotation
  double static_max_dvth = 0.0;      ///< max per-gate dVth, best single MLV [V]
  double rotating_max_dvth = 0.0;    ///< max per-gate dVth, rotation [V]
  double mean_rotation_leakage = 0.0;///< average standby leakage across the
                                     ///< rotation [A]
  /// The aggressive variant: rotate the best MLV with its bitwise
  /// complement. MLV-set members tend to be similar (the Fig. 7 search
  /// converges input probabilities), so they stress the same devices; the
  /// complement maximizes diversity at the price of leaking like a
  /// non-optimized vector half the time.
  double complement_percent = 0.0;   ///< circuit degradation, MLV+~MLV
  double complement_max_dvth = 0.0;  ///< max per-gate dVth, MLV+~MLV [V]
  double complement_leakage = 0.0;   ///< mean leakage of {MLV, ~MLV} [A]

  /// Reduction of the worst device degradation achieved by rotating [%].
  double max_dvth_reduction_percent() const {
    return static_max_dvth > 0.0
               ? 100.0 * (static_max_dvth - rotating_max_dvth) /
                     static_max_dvth
               : 0.0;
  }
  double complement_max_dvth_reduction_percent() const {
    return static_max_dvth > 0.0
               ? 100.0 * (static_max_dvth - complement_max_dvth) /
                     static_max_dvth
               : 0.0;
  }
};

/// Evaluates alternating IVC against the best static MLV on one circuit.
/// \throws std::invalid_argument when analyzers are bound to different
///         netlists
AlternatingIvcResult evaluate_alternating_ivc(
    const aging::AgingAnalyzer& analyzer,
    const leakage::LeakageAnalyzer& standby_leak,
    const MlvSearchParams& mlv_params = {});

/// Internal-node-control potential (Table 4).
struct IncPotential {
  double worst_percent = 0.0;  ///< all internal nodes 0 (every PMOS stressed)
  double best_percent = 0.0;   ///< all internal nodes 1 (every PMOS relaxed)

  /// Relative headroom: (worst - best) / worst * 100 [%].
  double potential_percent() const {
    return worst_percent > 0.0
               ? 100.0 * (worst_percent - best_percent) / worst_percent
               : 0.0;
  }
};

/// Bounds the achievable mitigation from controlling internal nodes.
IncPotential internal_node_control_potential(const aging::AgingAnalyzer& analyzer);

}  // namespace nbtisim::opt
