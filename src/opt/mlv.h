/// \file mlv.h
/// \brief Probability-based minimum-leakage-vector (MLV) set search —
///        paper Fig. 7.
///
/// Finding the exact MLV is NP-complete; the paper uses a probability-based
/// heuristic that iteratively reshapes a population of random vectors:
///   0. generate N random vectors;
///   1. keep vectors whose leakage is within a window of the set minimum;
///   2. per primary input, estimate P(input = 1) over the kept set;
///   3. generate new vectors from those probabilities;
///   4. update the kept set;
///   5. halt when every input probability saturates to ~0 or ~1.
/// The surviving set (leakage spread within ~4% of the minimum, Table 3) is
/// then ranked by NBTI impact by the IVC co-optimizer.
#pragma once

#include <cstdint>
#include <vector>

#include "leakage/leakage.h"

namespace nbtisim::opt {

/// Knobs of the Fig. 7 search.
struct MlvSearchParams {
  int population = 64;          ///< vectors generated per round
  double leakage_window = 0.04; ///< keep vectors within (1+w) * set minimum
  int max_rounds = 40;          ///< hard iteration cap
  double convergence_eps = 0.05;///< PI probability saturation threshold
  int max_set_size = 24;        ///< MLV set truncation (lowest leakage kept)
  std::uint64_t seed = 11;
  /// Worker threads for the batched per-round leakage evaluations, and —
  /// via evaluate_ivc / evaluate_alternating_ivc — for the per-candidate
  /// aging analyses; 0 = hardware concurrency.  Vector generation stays a
  /// single sequential RNG stream and candidates are inserted in generation
  /// order, so results are bit-identical for every value.
  int n_threads = 0;
};

/// Result of the MLV search.
struct MlvResult {
  std::vector<std::vector<bool>> vectors;  ///< MLV set, ascending leakage
  std::vector<double> leakages;            ///< matching leakage [A]
  std::vector<double> input_probabilities; ///< final per-PI P(1)
  int rounds = 0;
  bool converged = false;  ///< probabilities saturated before max_rounds

  double min_leakage() const { return leakages.empty() ? 0.0 : leakages.front(); }
};

/// Runs the probability-based MLV set selection of Fig. 7.
/// \throws std::invalid_argument for bad search parameters
MlvResult find_mlv_set(const leakage::LeakageAnalyzer& analyzer,
                       const MlvSearchParams& params = {});

/// Exhaustive MLV search (all 2^n vectors) for small circuits; used as the
/// ground truth in tests and the heuristic-quality ablation.  The 2^n
/// leakage evaluations fan out over \p n_threads (0 = hardware), with the
/// usual bit-identical-for-any-thread-count guarantee.
/// \throws std::invalid_argument when the circuit has more than 20 inputs
MlvResult find_mlv_exhaustive(const leakage::LeakageAnalyzer& analyzer,
                              double leakage_window = 0.04,
                              int max_set_size = 24, int n_threads = 0);

}  // namespace nbtisim::opt
