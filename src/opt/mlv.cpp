#include "opt/mlv.h"

#include <algorithm>
#include <random>
#include <stdexcept>

#include "common/pool.h"

namespace nbtisim::opt {
namespace {

/// Leakage-sorted candidate set with window/size pruning (the "MLV set").
class CandidateSet {
 public:
  CandidateSet(double window, int max_size)
      : window_(window), max_size_(max_size) {}

  void insert(std::vector<bool> v, double leak) {
    for (const std::vector<bool>& existing : vectors_) {
      if (existing == v) return;  // duplicate
    }
    const auto pos = std::upper_bound(leakages_.begin(), leakages_.end(), leak);
    const std::size_t idx = static_cast<std::size_t>(pos - leakages_.begin());
    leakages_.insert(pos, leak);
    vectors_.insert(vectors_.begin() + idx, std::move(v));
    prune();
  }

  const std::vector<std::vector<bool>>& vectors() const { return vectors_; }
  const std::vector<double>& leakages() const { return leakages_; }

  /// P(input i = 1) across the current set (Fig. 7 line 2).
  std::vector<double> input_probabilities(int n_inputs) const {
    std::vector<double> prob(n_inputs, 0.5);
    if (vectors_.empty()) return prob;
    for (int i = 0; i < n_inputs; ++i) {
      int ones = 0;
      for (const std::vector<bool>& v : vectors_) ones += v[i] ? 1 : 0;
      prob[i] = static_cast<double>(ones) / vectors_.size();
    }
    return prob;
  }

 private:
  void prune() {
    const double limit = leakages_.front() * (1.0 + window_);
    while (leakages_.size() > 1 &&
           (leakages_.back() > limit ||
            static_cast<int>(leakages_.size()) > max_size_)) {
      leakages_.pop_back();
      vectors_.pop_back();
    }
  }

  double window_;
  int max_size_;
  std::vector<std::vector<bool>> vectors_;
  std::vector<double> leakages_;
};

bool saturated(const std::vector<double>& prob, double eps) {
  return std::all_of(prob.begin(), prob.end(), [eps](double p) {
    return p <= eps || p >= 1.0 - eps;
  });
}

}  // namespace

MlvResult find_mlv_set(const leakage::LeakageAnalyzer& analyzer,
                       const MlvSearchParams& params) {
  if (params.population < 2 || params.max_rounds < 1 ||
      params.leakage_window < 0.0 || params.max_set_size < 1) {
    throw std::invalid_argument("find_mlv_set: bad parameters");
  }
  const int n_inputs = analyzer.netlist().num_inputs();
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  CandidateSet set(params.leakage_window, params.max_set_size);
  std::vector<double> prob(n_inputs, 0.5);

  MlvResult result;
  std::vector<std::vector<bool>> batch(params.population);
  std::vector<double> batch_leak(params.population);
  for (int round = 0; round < params.max_rounds; ++round) {
    result.rounds = round + 1;
    // Generation stays on the single sequential RNG stream; the leakage
    // evaluations (the round's cost) fan out, and insertion runs in
    // generation order — the set evolves exactly as in the serial run.
    for (int k = 0; k < params.population; ++k) {
      std::vector<bool> v(n_inputs);
      for (int i = 0; i < n_inputs; ++i) v[i] = uni(rng) < prob[i];
      batch[k] = std::move(v);
    }
    common::parallel_for(params.population, params.n_threads, [&](int k) {
      batch_leak[k] = analyzer.circuit_leakage(batch[k]);
    });
    for (int k = 0; k < params.population; ++k) {
      set.insert(std::move(batch[k]), batch_leak[k]);
    }
    prob = set.input_probabilities(n_inputs);
    if (saturated(prob, params.convergence_eps)) {
      result.converged = true;
      break;
    }
  }

  result.vectors = set.vectors();
  result.leakages = set.leakages();
  result.input_probabilities = prob;
  return result;
}

MlvResult find_mlv_exhaustive(const leakage::LeakageAnalyzer& analyzer,
                              double leakage_window, int max_set_size,
                              int n_threads) {
  const int n_inputs = analyzer.netlist().num_inputs();
  if (n_inputs > 20) {
    throw std::invalid_argument(
        "find_mlv_exhaustive: too many inputs for exhaustive search");
  }
  // All 2^n leakages fan out (each vector is rebuilt from its index);
  // insertion then runs in index order, identical to the serial sweep.
  const int n_vectors = 1 << n_inputs;
  std::vector<double> leak(n_vectors);
  common::parallel_for(n_vectors, n_threads, [&](int bits) {
    std::vector<bool> v(n_inputs);
    for (int i = 0; i < n_inputs; ++i) v[i] = (bits >> i) & 1;
    leak[bits] = analyzer.circuit_leakage(v);
  });
  CandidateSet set(leakage_window, max_set_size);
  for (int bits = 0; bits < n_vectors; ++bits) {
    std::vector<bool> v(n_inputs);
    for (int i = 0; i < n_inputs; ++i) v[i] = (bits >> i) & 1;
    set.insert(std::move(v), leak[bits]);
  }
  MlvResult result;
  result.vectors = set.vectors();
  result.leakages = set.leakages();
  result.input_probabilities = set.input_probabilities(n_inputs);
  result.rounds = 1;
  result.converged = true;
  return result;
}

}  // namespace nbtisim::opt
