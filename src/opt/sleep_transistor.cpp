#include "opt/sleep_transistor.h"

#include <cmath>
#include <stdexcept>

namespace nbtisim::opt {

double st_delta_vth(const nbti::RdParams& rd, const nbti::ModeSchedule& schedule,
                    double total_time, const StParams& st) {
  const nbti::DeviceAging model(rd);
  nbti::DeviceStress stress;
  stress.active_stress_prob = 1.0;  // gate held at 0 for the whole active mode
  stress.standby = nbti::StandbyMode::Relaxed;  // gate at 1 to cut the rail
  stress.vgs = st.vdd;
  stress.vth0 = st.vth_st;
  return model.delta_vth(stress, schedule, total_time);
}

StSizing size_sleep_transistor(const nbti::RdParams& rd,
                               const nbti::ModeSchedule& schedule,
                               double total_time, double i_on,
                               const StParams& st) {
  if (i_on <= 0.0) {
    throw std::invalid_argument("size_sleep_transistor: non-positive I_ON");
  }
  if (st.sigma <= 0.0 || st.vdd - st.vth_st <= 0.0 ||
      st.vdd - st.vth_low <= 0.0) {
    throw std::invalid_argument("size_sleep_transistor: no voltage headroom");
  }
  StSizing s;
  // eq. (28) with the alpha-power first-order term restored.
  s.v_st = st.sigma * (st.vdd - st.vth_low) / st.alpha;
  // eq. (30): linear-region current balance through the ST.
  s.wl_base = i_on / (st.mu_cox * (st.vdd - st.vth_st) * s.v_st);
  s.dvth_st = st_delta_vth(rd, schedule, total_time, st);
  if (st.vdd - st.vth_st - s.v_st <= s.dvth_st) {
    throw std::invalid_argument(
        "size_sleep_transistor: ST aging exhausts gate overdrive");
  }
  // eq. (31): upsize so the end-of-life drop still meets V_ST.
  s.wl_nbti_aware =
      (1.0 + s.dvth_st / (st.vdd - st.vth_st - s.v_st)) * s.wl_base;
  return s;
}

namespace {

std::vector<double> log_spaced(double t_min, double t_max, int n_points) {
  if (n_points < 2 || t_min <= 0.0 || t_max <= t_min) {
    throw std::invalid_argument("degradation series: bad sampling spec");
  }
  std::vector<double> t(n_points);
  const double step = std::log(t_max / t_min) / (n_points - 1);
  for (int i = 0; i < n_points; ++i) t[i] = t_min * std::exp(step * i);
  return t;
}

}  // namespace

std::vector<StDegradationPoint> st_circuit_degradation_series(
    const aging::AgingAnalyzer& analyzer, StStyle style, const StParams& st,
    double t_min, double t_max, int n_points) {
  const std::vector<double> times = log_spaced(t_min, t_max, n_points);
  const nbti::ModeSchedule& schedule = analyzer.conditions().schedule;
  const nbti::RdParams& rd = analyzer.conditions().rd;

  // The ST device's stress descriptor is horizon-independent: build the
  // model and context once and only re-evaluate the horizon per point
  // (bitwise what st_delta_vth computes — delta_vth(stress, ...) is
  // make_context + delta_vth(ctx, t)).
  const nbti::DeviceAging st_model(rd);
  nbti::DeviceStress st_stress;
  st_stress.active_stress_prob = 1.0;  // gate held at 0 while active
  st_stress.standby = nbti::StandbyMode::Relaxed;  // gate at 1, rail cut
  st_stress.vgs = st.vdd;
  st_stress.vth0 = st.vth_st;
  const nbti::DeviceAging::StressContext st_ctx =
      st_model.make_context(st_stress, schedule);

  const double sigma0_percent = 100.0 * st.sigma;
  std::vector<StDegradationPoint> series;
  series.reserve(times.size());
  for (double t : times) {
    StDegradationPoint pt;
    pt.time = t;
    // Gated logic: no PMOS is negatively biased in standby -> best case.
    // (arrival-only aged_critical_delay; same value as analyze().percent())
    const double fresh = analyzer.fresh_critical_delay();
    const double aged =
        analyzer.aged_critical_delay(aging::StandbyPolicy::all_relaxed(), t);
    pt.logic_percent = fresh > 0.0 ? 100.0 * (aged - fresh) / fresh : 0.0;

    // ST drop contribution.
    switch (style) {
      case StStyle::Footer:
        // NMOS footer is PBTI-immune in this model: constant penalty.
        pt.st_percent = sigma0_percent;
        break;
      case StStyle::Header: {
        const double dvth = st_model.delta_vth(st_ctx, t);
        const double headroom = st.vdd - st.vth_st;
        pt.st_percent = sigma0_percent * headroom /
                        std::max(1e-9, headroom - dvth);
        break;
      }
      case StStyle::FooterAndHeader: {
        const double dvth = st_model.delta_vth(st_ctx, t);
        const double headroom = st.vdd - st.vth_st;
        pt.st_percent =
            sigma0_percent +
            sigma0_percent * headroom / std::max(1e-9, headroom - dvth);
        break;
      }
    }
    pt.total_percent = pt.logic_percent + pt.st_percent;
    series.push_back(pt);
  }
  return series;
}

std::vector<StDegradationPoint> no_st_degradation_series(
    const aging::AgingAnalyzer& analyzer, double t_min, double t_max,
    int n_points) {
  const std::vector<double> times = log_spaced(t_min, t_max, n_points);
  std::vector<StDegradationPoint> series;
  series.reserve(times.size());
  for (double t : times) {
    StDegradationPoint pt;
    pt.time = t;
    const double fresh = analyzer.fresh_critical_delay();
    const double aged =
        analyzer.aged_critical_delay(aging::StandbyPolicy::all_stressed(), t);
    pt.logic_percent = fresh > 0.0 ? 100.0 * (aged - fresh) / fresh : 0.0;
    pt.st_percent = 0.0;
    pt.total_percent = pt.logic_percent;
    series.push_back(pt);
  }
  return series;
}

}  // namespace nbtisim::opt
