/// \file sleep_transistor.h
/// \brief NBTI-aware sleep-transistor sizing and circuit-level impact of
///        sleep-transistor insertion — paper Section 4.4, eqs. (25)-(31),
///        Figs. 8-11.
///
/// A PMOS header sleep transistor (ST) is ON (gate at 0, i.e. Vgs = -Vdd)
/// exactly while the circuit is *active* — so, unlike the logic it gates,
/// the ST is NBTI-stressed during active time and relaxed during standby.
/// Its threshold degradation raises the virtual-rail drop V_ST, slowing the
/// gated logic over the lifetime.  The paper's sizing rule adds margin:
///
///   V_ST < sigma (Vdd - Vth_low) / alpha                       (27)-(28)
///   (W/L)_ST > I_ON / (mu_p Cox (Vdd - Vth_ST) V_ST)           (29)-(30)
///   (W/L)_NBTI = (1 + dVth_ST / (Vdd - Vth_ST - V_ST)) (W/L)   (31)
///
/// The circuit-level analysis combines the (almost fully relaxed) internal
/// logic aging with the growing ST drop to produce Fig. 11's with/without-ST
/// degradation comparison for footer / header / footer+header styles.
#pragma once

#include <utility>
#include <vector>

#include "aging/aging.h"
#include "nbti/device_aging.h"

namespace nbtisim::opt {

/// Sleep-transistor electrical/sizing knobs.
struct StParams {
  double vth_st = 0.30;   ///< initial |Vth| of the PMOS ST [V]
  double sigma = 0.05;    ///< allowed fractional delay penalty at time 0
  double vth_low = 0.22;  ///< logic threshold (low-Vth module) [V]
  double mu_cox = 1.1e-4; ///< mu_p * Cox for the ST [A/V^2 per W/L]
  double alpha = 1.3;     ///< velocity-saturation index
  double vdd = 1.0;       ///< supply [V]
};

/// dVth of the PMOS ST itself after \p total_time: stressed during active
/// mode (gate at 0), relaxed during standby (gate at 1) — Fig. 8.
double st_delta_vth(const nbti::RdParams& rd, const nbti::ModeSchedule& schedule,
                    double total_time, const StParams& st);

/// Complete sizing computation.
struct StSizing {
  double v_st = 0.0;          ///< allowed virtual-rail drop [V]
  double wl_base = 0.0;       ///< (W/L) from eq. (30)
  double dvth_st = 0.0;       ///< lifetime ST threshold degradation [V]
  double wl_nbti_aware = 0.0; ///< enlarged (W/L) from eq. (31)

  /// Relative area increase required by NBTI awareness [%] — Fig. 9.
  double wl_increase_percent() const {
    return wl_base > 0.0 ? 100.0 * (wl_nbti_aware - wl_base) / wl_base : 0.0;
  }
};

/// Sizes a PMOS ST for peak active current \p i_on [A] with NBTI margin.
/// \throws std::invalid_argument for non-positive current or headroom
StSizing size_sleep_transistor(const nbti::RdParams& rd,
                               const nbti::ModeSchedule& schedule,
                               double total_time, double i_on,
                               const StParams& st);

/// Sleep-transistor insertion style (paper Fig. 10).
enum class StStyle : unsigned char {
  Footer,          ///< NMOS footer: no ST aging; internal nodes float high
  Header,          ///< PMOS header: ST ages; internal nodes float low
  FooterAndHeader, ///< both rails gated: double drop, header still ages
};

/// One sample of the with-ST degradation series.
struct StDegradationPoint {
  double time = 0.0;            ///< [s]
  double logic_percent = 0.0;   ///< internal-logic aging contribution [%]
  double st_percent = 0.0;      ///< ST-drop contribution (sigma(t)) [%]
  double total_percent = 0.0;   ///< total delay vs. fresh no-ST circuit [%]
};

/// Circuit degradation over time with an inserted ST of style \p style and
/// time-0 penalty \p st.sigma (Fig. 11).  The internal logic ages under the
/// all-relaxed policy (ST insertion leaves no PMOS negatively biased); the
/// header's own aging inflates V_ST via the eq. (29) current balance:
///   V_ST(t) = V_ST(0) * (Vdd - Vth_ST) / (Vdd - Vth_ST - dVth_ST(t)).
std::vector<StDegradationPoint> st_circuit_degradation_series(
    const aging::AgingAnalyzer& analyzer, StStyle style, const StParams& st,
    double t_min, double t_max, int n_points);

/// Degradation series *without* ST (worst-case standby states), matching the
/// "w/o ST" curves of Fig. 11.
std::vector<StDegradationPoint> no_st_degradation_series(
    const aging::AgingAnalyzer& analyzer, double t_min, double t_max,
    int n_points);

}  // namespace nbtisim::opt
