#include "opt/dual_vth.h"

#include <algorithm>
#include <stdexcept>

#include "sta/sta.h"

namespace nbtisim::opt {
namespace {

/// Dual-Vth critical delay when every gate with slack above \p threshold is
/// moved to high Vth. Returns the offsets via \p offsets.
double delay_with_threshold(const sta::StaEngine& sta, double temp_k,
                            const std::vector<double>& slack_of_gate,
                            double threshold, double high_offset,
                            std::vector<double>* offsets) {
  const int n = static_cast<int>(slack_of_gate.size());
  offsets->assign(n, 0.0);
  for (int gi = 0; gi < n; ++gi) {
    if (slack_of_gate[gi] > threshold) (*offsets)[gi] = high_offset;
  }
  return sta.analyze(sta.gate_delays(temp_k, {}, *offsets)).max_delay;
}

}  // namespace

DualVthResult assign_dual_vth(const netlist::Netlist& nl,
                              const tech::Library& lib,
                              const aging::AgingConditions& cond,
                              const DualVthParams& params) {
  if (params.high_vth_offset <= 0.0 || params.delay_budget_percent < 0.0) {
    throw std::invalid_argument("assign_dual_vth: bad parameters");
  }
  const sta::StaEngine sta(nl, lib);
  const double temp = cond.sta_temperature;

  // Baseline timing and per-gate slack (slack of a gate = slack of its
  // output net under the all-low-Vth delays).
  const std::vector<double> low_delays = sta.gate_delays(temp);
  const sta::TimingResult low_timing = sta.analyze(low_delays);
  const std::vector<double> node_slack = sta.slacks(low_timing, low_delays);
  std::vector<double> slack_of_gate(nl.num_gates());
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    slack_of_gate[gi] = node_slack[nl.gate(gi).output];
  }

  const double budget =
      low_timing.max_delay * (1.0 + params.delay_budget_percent / 100.0);

  // Binary search the slack threshold: a lower threshold moves more gates
  // to high Vth and (monotonically) slows the circuit.  Unconstrained gates
  // (no path to a PO, slack = kUnconstrainedSlack) exceed every threshold
  // and therefore always go high-Vth — they must not stretch the bracket,
  // or 40 bisections over [0, 1e30] could not resolve nanosecond slacks.
  double lo = 0.0;
  double hi = 0.0;
  for (double s : slack_of_gate) {
    if (s < sta::kUnconstrainedSlack) hi = std::max(hi, s);
  }
  std::vector<double> offsets;
  // Try the all-eligible extreme first: threshold just below 0 moves every
  // positive-slack gate.
  if (delay_with_threshold(sta, temp, slack_of_gate, 0.0,
                           params.high_vth_offset, &offsets) > budget) {
    for (int iter = 0; iter < 40; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (delay_with_threshold(sta, temp, slack_of_gate, mid,
                               params.high_vth_offset, &offsets) > budget) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    // Final (feasible) assignment at the conservative end of the bracket.
    delay_with_threshold(sta, temp, slack_of_gate, hi, params.high_vth_offset,
                         &offsets);
  }

  DualVthResult r;
  r.gate_vth_offsets = offsets;
  for (double o : offsets) r.n_high += o > 0.0 ? 1 : 0;
  r.fresh_delay_low = low_timing.max_delay;
  r.fresh_delay_dual =
      sta.analyze(sta.gate_delays(temp, {}, offsets)).max_delay;

  // Leakage comparison at the standby temperature, all-zero inputs.
  const std::vector<bool> zeros(nl.num_inputs(), false);
  const leakage::LeakageAnalyzer leak_low(nl, lib, params.leakage_temperature);
  const leakage::LeakageAnalyzer leak_dual(nl, lib, params.leakage_temperature,
                                           offsets);
  r.leakage_low = leak_low.circuit_leakage(zeros);
  r.leakage_dual = leak_dual.circuit_leakage(zeros);

  // Aging comparison under the worst-case standby policy.
  aging::AgingConditions cond_low = cond;
  cond_low.gate_vth_offsets.clear();
  aging::AgingConditions cond_dual = cond;
  cond_dual.gate_vth_offsets = offsets;
  const aging::AgingAnalyzer aging_low(nl, lib, cond_low);
  const aging::AgingAnalyzer aging_dual(nl, lib, cond_dual);
  r.aging_low_percent =
      aging_low.analyze(aging::StandbyPolicy::all_stressed()).percent();
  r.aging_dual_percent =
      aging_dual.analyze(aging::StandbyPolicy::all_stressed()).percent();
  return r;
}

}  // namespace nbtisim::opt
