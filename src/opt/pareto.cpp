#include "opt/pareto.h"

#include <algorithm>
#include <random>
#include <stdexcept>
#include <utility>

#include "common/pool.h"

namespace nbtisim::opt {
namespace {

bool dominates(const ParetoPoint& a, const ParetoPoint& b) {
  return a.leakage <= b.leakage &&
         a.degradation_percent <= b.degradation_percent &&
         (a.leakage < b.leakage ||
          a.degradation_percent < b.degradation_percent);
}

/// Maintains the non-dominated set; returns true if \p p was inserted.
bool insert_nondominated(std::vector<ParetoPoint>& front, ParetoPoint p) {
  for (const ParetoPoint& q : front) {
    if (dominates(q, p) || q.vector == p.vector) return false;
  }
  front.erase(std::remove_if(front.begin(), front.end(),
                             [&p](const ParetoPoint& q) {
                               return dominates(p, q);
                             }),
              front.end());
  front.push_back(std::move(p));
  return true;
}

}  // namespace

const ParetoPoint& ParetoResult::pick(double leakage_weight) const {
  if (leakage_weight < 0.0 || leakage_weight > 1.0) {
    throw std::invalid_argument("ParetoResult::pick: weight outside [0,1]");
  }
  if (front.empty()) throw std::logic_error("ParetoResult::pick: empty front");
  double leak_lo = front.front().leakage, leak_hi = leak_lo;
  double deg_lo = front.front().degradation_percent, deg_hi = deg_lo;
  for (const ParetoPoint& p : front) {
    leak_lo = std::min(leak_lo, p.leakage);
    leak_hi = std::max(leak_hi, p.leakage);
    deg_lo = std::min(deg_lo, p.degradation_percent);
    deg_hi = std::max(deg_hi, p.degradation_percent);
  }
  const double leak_span = std::max(leak_hi - leak_lo, 1e-30);
  const double deg_span = std::max(deg_hi - deg_lo, 1e-30);
  const ParetoPoint* best = &front.front();
  double best_cost = 1e30;
  for (const ParetoPoint& p : front) {
    const double cost =
        leakage_weight * (p.leakage - leak_lo) / leak_span +
        (1.0 - leakage_weight) * (p.degradation_percent - deg_lo) / deg_span;
    if (cost < best_cost) {
      best_cost = cost;
      best = &p;
    }
  }
  return *best;
}

ParetoResult pareto_standby_vectors(const aging::AgingAnalyzer& analyzer,
                                    const leakage::LeakageAnalyzer& standby_leak,
                                    const ParetoParams& params) {
  if (&analyzer.sta().netlist() != &standby_leak.netlist()) {
    throw std::invalid_argument(
        "pareto_standby_vectors: analyzers bound to different netlists");
  }
  if (params.random_samples < 2 || params.improve_rounds < 0 ||
      params.flips_per_member < 0) {
    throw std::invalid_argument("pareto_standby_vectors: bad parameters");
  }
  const int n_inputs = standby_leak.netlist().num_inputs();
  std::mt19937_64 rng(params.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  ParetoResult result;
  // Each candidate of a batch is an independent (leakage, aging) evaluation
  // writing its own slot; the non-dominated front is then folded serially in
  // generation order — the exact front evolution (and golden values) of the
  // original serial loop, bit-identical for every n_threads.
  auto evaluate_batch = [&](std::vector<std::vector<bool>> batch) {
    std::vector<ParetoPoint> points(batch.size());
    common::parallel_for(
        static_cast<int>(batch.size()), params.n_threads, [&](int i) {
          ParetoPoint& p = points[i];
          p.leakage = standby_leak.circuit_leakage(batch[i]);
          // aged_critical_delay takes the arrival-only STA path — same
          // percent() value (identical numerator/denominator expressions)
          // without materializing a DegradationReport per candidate.
          const double fresh = analyzer.fresh_critical_delay();
          const double aged = analyzer.aged_critical_delay(
              aging::StandbyPolicy::from_vector(batch[i]));
          p.degradation_percent =
              fresh > 0.0 ? 100.0 * (aged - fresh) / fresh : 0.0;
          p.vector = std::move(batch[i]);
        });
    for (ParetoPoint& p : points) {
      ++result.evaluated;
      insert_nondominated(result.front, std::move(p));
    }
  };

  // Seeds: all-zero, all-one, and random vectors — one batch.
  {
    std::vector<std::vector<bool>> batch;
    batch.reserve(params.random_samples + 2);
    batch.emplace_back(n_inputs, false);
    batch.emplace_back(n_inputs, true);
    for (int k = 0; k < params.random_samples; ++k) {
      std::vector<bool> v(n_inputs);
      for (int i = 0; i < n_inputs; ++i) v[i] = uni(rng) < 0.5;
      batch.push_back(std::move(v));
    }
    evaluate_batch(std::move(batch));
  }

  // Local search: random single-bit flips around front members — one batch
  // per round (flip positions are drawn before the batch runs, preserving
  // the serial implementation's RNG consumption order).
  for (int round = 0; round < params.improve_rounds; ++round) {
    const std::vector<ParetoPoint> snapshot = result.front;
    std::vector<std::vector<bool>> batch;
    batch.reserve(snapshot.size() * params.flips_per_member);
    for (const ParetoPoint& member : snapshot) {
      for (int f = 0; f < params.flips_per_member; ++f) {
        std::vector<bool> v = member.vector;
        const int bit = static_cast<int>(uni(rng) * n_inputs) % n_inputs;
        v[bit] = !v[bit];
        batch.push_back(std::move(v));
      }
    }
    evaluate_batch(std::move(batch));
  }

  std::sort(result.front.begin(), result.front.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              return a.leakage < b.leakage;
            });
  return result;
}

}  // namespace nbtisim::opt
