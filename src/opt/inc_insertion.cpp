#include "opt/inc_insertion.h"

#include <algorithm>
#include <stdexcept>

#include "sim/simulator.h"
#include "sta/sta.h"

namespace nbtisim::opt {

IncInsertionResult insert_control_points(const netlist::Netlist& nl,
                                         const tech::Library& lib,
                                         const aging::AgingConditions& cond,
                                         const IncInsertionParams& params) {
  if (params.max_control_points < 1 || params.driver_delay_penalty < 0.0) {
    throw std::invalid_argument("insert_control_points: bad parameters");
  }

  // Baseline: aging under the all-zero standby vector, unmodified circuit.
  aging::AgingConditions base_cond = cond;
  base_cond.gate_delay_scale.clear();
  const aging::AgingAnalyzer base(nl, lib, base_cond);
  const std::vector<bool> zeros(nl.num_inputs(), false);
  const aging::DegradationReport base_rep =
      base.analyze(aging::StandbyPolicy::from_vector(zeros));

  // Candidate ranking.
  const std::vector<bool> standby_values = sim::Simulator(nl).evaluate(zeros);
  const std::vector<double> fresh_delays =
      base.sta().gate_delays(cond.sta_temperature);
  const sta::TimingResult fresh_timing = base.sta().analyze(fresh_delays);
  const std::vector<double> slack =
      base.sta().slacks(fresh_timing, fresh_delays);
  const double horizon = std::max(fresh_timing.max_delay, 1e-30);

  struct Candidate {
    netlist::NodeId node;
    double score;
  };
  std::vector<Candidate> candidates;
  for (netlist::NodeId n = 0; n < nl.num_nodes(); ++n) {
    if (standby_values[n]) continue;  // already at 1 in standby
    const auto readers = nl.fanout_gates(n);
    if (readers.empty()) continue;
    // Benefit: critical readers relax. Cost: the driver slows; penalize
    // candidates whose driver has little slack to spare.
    double benefit = 0.0;
    for (int gi : readers) {
      const double s = slack[nl.gate(gi).output] / horizon;
      benefit += 1.0 / (1.0 + 50.0 * s);
    }
    const int driver = nl.driver_gate(n);
    if (driver >= 0) {
      const double driver_slack = slack[n];
      const double penalty_time =
          params.driver_delay_penalty * fresh_delays[driver];
      if (driver_slack < penalty_time) continue;  // would hurt timing
    }
    candidates.push_back(Candidate{n, benefit});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score > b.score;
            });

  // Greedy accept-if-improves pass: forcing a net to 1 also flips
  // downstream nets to 0 (an inverter after a forced net becomes MORE
  // stressed), so static ranking is not enough — each candidate must prove
  // itself against the actual degradation. The delay penalty is paid on the
  // modified driver via gate_delay_scale.
  IncInsertionResult result;
  aging::AgingConditions mod_cond = cond;
  mod_cond.gate_delay_scale.assign(nl.num_gates(), 1.0);
  aging::StandbyPolicy policy = aging::StandbyPolicy::from_vector(zeros);

  auto evaluate = [&](const aging::StandbyPolicy& pol,
                      const aging::AgingConditions& c) {
    const aging::AgingAnalyzer an(nl, lib, c);
    return an.analyze(pol);
  };

  double current = base_rep.percent();
  const int pool = std::min<int>(static_cast<int>(candidates.size()),
                                 4 * params.max_control_points);
  for (int k = 0; k < pool; ++k) {
    if (static_cast<int>(result.controlled.size()) >=
        params.max_control_points) {
      break;
    }
    const netlist::NodeId n = candidates[k].node;
    aging::StandbyPolicy trial_policy = policy;
    trial_policy.forces.emplace_back(n, true);
    aging::AgingConditions trial_cond = mod_cond;
    const int driver = nl.driver_gate(n);
    if (driver >= 0) {
      trial_cond.gate_delay_scale[driver] = 1.0 + params.driver_delay_penalty;
    }
    const aging::DegradationReport rep = evaluate(trial_policy, trial_cond);
    if (rep.percent() < current) {
      current = rep.percent();
      policy = std::move(trial_policy);
      mod_cond = std::move(trial_cond);
      result.controlled.push_back(n);
      result.controlled_names.push_back(nl.node_name(n));
    }
  }

  const aging::DegradationReport mod_rep = evaluate(policy, mod_cond);
  result.fresh_before = base_rep.fresh_delay;
  result.fresh_after = mod_rep.fresh_delay;
  result.aging_before = base_rep.percent();
  result.aging_after = mod_rep.percent();
  return result;
}

}  // namespace nbtisim::opt
