/// \file dual_vth.h
/// \brief Slack-based dual-Vth assignment and its leakage/NBTI co-benefit.
///
/// The paper's Section 4.1 observes that a higher Vth simultaneously cuts
/// subthreshold leakage (exponentially) and NBTI degradation (through the
/// oxide-field factor of eq. 23), so "leakage reduction techniques that
/// adjust Vth in the design phase ... may mitigate the circuit performance
/// degradation due to NBTI". This module makes that concrete with the
/// classic design-time technique the paper cites ([30], and the authors'
/// own signal-path dual-Vth tool [44]):
///
///   - every gate starts low-Vth;
///   - gates are moved to the high-Vth variant in increasing order of
///     timing criticality (largest slack first) while the fresh critical
///     path stays within a delay budget (binary search on the slack
///     threshold);
///   - the result is evaluated fresh and aged, low-Vth-only vs dual-Vth.
#pragma once

#include "aging/aging.h"
#include "leakage/leakage.h"

namespace nbtisim::opt {

/// Dual-Vth assignment knobs.
struct DualVthParams {
  double high_vth_offset = 0.10;      ///< Vth increase of the high-Vth cell [V]
  double delay_budget_percent = 2.0;  ///< allowed fresh-delay increase [%]
  double leakage_temperature = 330.0; ///< standby temperature for the
                                      ///< leakage comparison [K]
};

/// Result of the assignment + evaluation.
struct DualVthResult {
  std::vector<double> gate_vth_offsets;  ///< 0 or high_vth_offset, per gate
  int n_high = 0;                        ///< gates moved to high Vth

  double fresh_delay_low = 0.0;   ///< all-low-Vth critical delay [s]
  double fresh_delay_dual = 0.0;  ///< dual-Vth critical delay [s]
  double leakage_low = 0.0;       ///< all-low standby leakage (MLV-free,
                                  ///< all-zero inputs) [A]
  double leakage_dual = 0.0;      ///< dual-Vth standby leakage [A]
  double aging_low_percent = 0.0; ///< worst-case 10-y degradation, all-low
  double aging_dual_percent = 0.0;///< worst-case 10-y degradation, dual

  double high_fraction() const {
    return gate_vth_offsets.empty()
               ? 0.0
               : static_cast<double>(n_high) / gate_vth_offsets.size();
  }
  double leakage_saving_percent() const {
    return leakage_low > 0.0
               ? 100.0 * (leakage_low - leakage_dual) / leakage_low
               : 0.0;
  }
  double aging_saving_percent() const {
    return aging_low_percent > 0.0
               ? 100.0 * (aging_low_percent - aging_dual_percent) /
                     aging_low_percent
               : 0.0;
  }
};

/// Runs the assignment and the before/after evaluation.
///
/// \param cond aging conditions for the NBTI comparison (its
///        gate_vth_offsets member is ignored and replaced)
/// \throws std::invalid_argument for non-positive budgets or offsets
DualVthResult assign_dual_vth(const netlist::Netlist& nl,
                              const tech::Library& lib,
                              const aging::AgingConditions& cond,
                              const DualVthParams& params = {});

}  // namespace nbtisim::opt
