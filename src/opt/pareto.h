/// \file pareto.h
/// \brief True leakage/NBTI co-optimization of standby vectors: the Pareto
///        front of (standby leakage, 10-year delay degradation).
///
/// The paper's Fig. 6 flow picks the least-degrading member of a
/// minimum-leakage set — one point near the leakage-optimal end of the
/// trade-off. This module maps the whole trade-off: a seeded random sample
/// plus bit-flip local search maintains the set of non-dominated standby
/// vectors, from which a designer (or the standby advisor) picks by
/// weighting. At cold standby temperatures the front is nearly flat in the
/// degradation axis — the quantitative form of the paper's "IVC is somehow
/// less effective" conclusion.
#pragma once

#include <cstdint>
#include <vector>

#include "aging/aging.h"
#include "leakage/leakage.h"

namespace nbtisim::opt {

/// Search knobs.
struct ParetoParams {
  int random_samples = 64;   ///< initial random vectors
  int improve_rounds = 3;    ///< bit-flip local-search rounds over the front
  int flips_per_member = 8;  ///< random single-bit flips tried per member
  std::uint64_t seed = 19;
  /// Worker threads for the per-candidate (leakage, degradation)
  /// evaluations; 0 = hardware concurrency.  Candidate generation stays a
  /// single sequential RNG stream and the front is folded in generation
  /// order, so results are bit-identical for every value (same contract as
  /// MlvSearchParams::n_threads).
  int n_threads = 0;
};

/// One evaluated standby vector.
struct ParetoPoint {
  std::vector<bool> vector;
  double leakage = 0.0;              ///< standby leakage [A]
  double degradation_percent = 0.0;  ///< 10-year delay degradation [%]
};

/// The non-dominated set.
struct ParetoResult {
  std::vector<ParetoPoint> front;  ///< ascending leakage, descending
                                   ///< degradation (non-dominated)
  int evaluated = 0;               ///< vectors evaluated in total

  const ParetoPoint& min_leakage() const { return front.front(); }
  const ParetoPoint& min_degradation() const { return front.back(); }

  /// Member minimizing w * normalized leakage + (1-w) * normalized
  /// degradation, w in [0,1].
  /// \throws std::invalid_argument for w outside [0,1]
  const ParetoPoint& pick(double leakage_weight) const;

  /// Trade-off depth: degradation spread across the front [%pt].
  double degradation_range() const {
    return front.front().degradation_percent -
           front.back().degradation_percent;
  }
};

/// Computes the Pareto front for \p analyzer's circuit; leakage evaluated
/// by \p standby_leak (bind it at the standby temperature).
/// \throws std::invalid_argument on mismatched netlists or bad parameters
ParetoResult pareto_standby_vectors(const aging::AgingAnalyzer& analyzer,
                                    const leakage::LeakageAnalyzer& standby_leak,
                                    const ParetoParams& params = {});

}  // namespace nbtisim::opt
