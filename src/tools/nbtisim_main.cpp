/// \file nbtisim_main.cpp
/// \brief The `nbtisim` command-line driver.
///
/// Runs the library's analyses on built-in ISCAS85-class circuits or user
/// .bench / .v files:
///
///   nbtisim info     <circuit>              circuit + timing + leakage stats
///   nbtisim aging    <circuit> [options]    NBTI degradation report
///   nbtisim multi    <circuit> [options]    NBTI + PBTI + HCI combined
///   nbtisim ivc      <circuit> [options]    IVC / NBTI co-optimization
///   nbtisim st       <circuit> [options]    sleep-transistor analysis
///   nbtisim dualvth  <circuit> [options]    dual-Vth assignment co-benefit
///   nbtisim sizing   <circuit> [options]    NBTI-aware gate sizing
///   nbtisim inc      <circuit> [options]    control-point insertion
///   nbtisim mc       <circuit> [options]    variation Monte-Carlo
///   nbtisim lifetime <circuit> [options]    time-to-failure distribution
///   nbtisim thermal  <circuit> [options]    electrothermal operating point
///   nbtisim failure  <circuit> [options]    multi-mechanism failure suite
///
/// Batch campaigns (declarative scenario grids, src/campaign):
///
///   nbtisim campaign run       SPEC.json    execute the grid (skips rows
///                                           already in the result store)
///   nbtisim campaign resume    SPEC.json    continue an interrupted run
///   nbtisim campaign summarize SPEC.json    aggregate the store to a table
///   nbtisim campaign query     SPEC.json    run one query (src/query) over
///                                           the indexed result store
///   nbtisim campaign serve     SPEC.json    answer query lines on stdio or
///                                           TCP (--port)
///
/// Circuit generation (write a generated circuit out as .bench / .v):
///
///   nbtisim generate <spec> [--out PATH] [--format bench|v]
///
/// where <spec> is any netlist spec the campaign grid accepts: a built-in
/// name, "dag:<inputs>x<gates>@<seed>", "mult:<bits>" or "alu:<width>".
///
/// <circuit>: a built-in name (c432, c880, ...), a path to a .bench file
/// (add --cut-dffs for sequential netlists), or a structural .v file.
///
/// Common options:
///   --ras A:S          active:standby ratio        (default 1:9)
///   --t-active K       active temperature          (default 400)
///   --t-standby K      standby temperature         (default 330)
///   --years Y          lifetime horizon            (default 10)
///   --threads N        worker threads, 0=hardware  (default 0)
///   --csv PATH         also write the result table as CSV
///   --cut-dffs         cut DFFs when loading .bench

#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "campaign/engine.h"
#include "query/query.h"
#include "query/serve.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"
#include "netlist/generators.h"
#include "aging/failure.h"
#include "aging/multi.h"
#include "opt/mlv.h"
#include "opt/dual_vth.h"
#include "opt/inc_insertion.h"
#include "opt/ivc.h"
#include "opt/sizing.h"
#include "opt/sleep_transistor.h"
#include "report/derate.h"
#include "report/report.h"
#include "tech/units.h"
#include "thermal/electrothermal.h"
#include "variation/lifetime.h"
#include "variation/variation.h"

using namespace nbtisim;

namespace {

struct CliOptions {
  std::string command;
  std::string circuit;
  double ras_active = 1.0, ras_standby = 9.0;
  double t_active = 400.0, t_standby = 330.0;
  double years = 10.0;
  bool years_set = false;  ///< --years given (the failure window defaults
                           ///< to FailureParams::max_years otherwise)
  double st_sigma = 0.05;
  int mc_samples = 300;
  double spec_margin = 5.0;
  double dynamic_power = 60.0;
  double clock_ghz = 1.0;
  double pbti_ratio = 0.35;
  std::string standby_mode;  ///< per-command default when empty
  double replication = 1e5;
  double runaway_k = 1000.0;
  double fail_dvth = 0.05;
  bool use_dvth_table = false;
  int table_ppd = 16;
  int n_threads = 0;
  std::string csv_path;
  bool cut_dffs = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  // The campaign analysis axis is open (analysis::AnalysisRegistry), so the
  // usage text lists whatever is registered instead of a hard-coded set.
  std::string analyses;
  for (const std::string& name : analysis::AnalysisRegistry::global().names()) {
    analyses += analyses.empty() ? name : " " + name;
  }
  std::fprintf(stderr,
               "usage: nbtisim <command> <circuit> [options]\n"
               "       nbtisim campaign run|resume|summarize SPEC.json\n"
               "                [--out PATH] [--threads N] [--csv PATH]\n"
               "                [--format md|csv]\n"
               "       nbtisim campaign query SPEC.json\n"
               "                [--query JSON | --query-file PATH]\n"
               "                [--out PATH] [--threads N] [--csv PATH]\n"
               "                [--format md|csv|json]\n"
               "       nbtisim campaign serve SPEC.json [--out PATH]\n"
               "                [--threads N] [--port N] [--max-connections N]\n"
               "       nbtisim generate <spec> [--out PATH] [--format bench|v]\n"
               "       nbtisim --version\n"
               "commands: info aging multi ivc st dualvth sizing inc mc\n"
               "          lifetime thermal failure derate campaign generate\n");
  std::fprintf(stderr,
               "campaign analyses: %s\n", analyses.c_str());
  std::fprintf(stderr,
               "  <circuit>: built-in (c432, c499, c880, c1355, c1908, c2670,\n"
               "             c3540, c5315, c6288, c7552), a .bench path, or a\n"
               "             structural .v path\n"
               "  --ras A:S  --t-active K  --t-standby K  --years Y\n"
               "  --sigma F (st)  --samples N (mc/lifetime)\n"
               "  --margin P (lifetime/sizing)  --power W (thermal)\n"
               "  --standby stressed|relaxed|zeros|ones|mlv (multi/failure;\n"
               "            thermal accepts zeros|ones|mlv)\n"
               "  --clock GHZ  --pbti-ratio R (multi/failure)\n"
               "  --replication N  --runaway-k K (thermal)\n"
               "  --fail-dvth V (failure; --years sets its crossing window)\n"
               "  --dvth-table  --table-ppd N (lifetime/failure: sample the\n"
               "              dVth(t) grid from a cached interpolated table)\n"
               "  --threads N (0 = hardware; results are bit-identical for\n"
               "              every N)  --csv PATH  --cut-dffs\n");
  std::exit(2);
}

CliOptions parse_args(int argc, char** argv) {
  if (argc < 3) usage();
  CliOptions o;
  o.command = argv[1];
  o.circuit = argv[2];
  if (!o.circuit.empty() && o.circuit.front() == '-') {
    usage(("expected a circuit before options, got " + o.circuit).c_str());
  }
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--ras") {
      const std::string v = value();
      const std::size_t colon = v.find(':');
      if (colon == std::string::npos) usage("--ras expects A:S");
      o.ras_active = std::atof(v.substr(0, colon).c_str());
      o.ras_standby = std::atof(v.substr(colon + 1).c_str());
      if (o.ras_active <= 0.0 || o.ras_standby < 0.0) usage("bad --ras");
    } else if (arg == "--t-active") {
      o.t_active = std::atof(value().c_str());
    } else if (arg == "--t-standby") {
      o.t_standby = std::atof(value().c_str());
    } else if (arg == "--years") {
      o.years = std::atof(value().c_str());
      o.years_set = true;
      if (o.years <= 0.0) usage("bad --years");
    } else if (arg == "--sigma") {
      o.st_sigma = std::atof(value().c_str());
      if (o.st_sigma <= 0.0 || o.st_sigma > 0.5) usage("bad --sigma");
    } else if (arg == "--samples") {
      o.mc_samples = std::atoi(value().c_str());
      if (o.mc_samples < 2) usage("bad --samples");
    } else if (arg == "--margin") {
      o.spec_margin = std::atof(value().c_str());
      if (o.spec_margin <= 0.0) usage("bad --margin");
    } else if (arg == "--power") {
      o.dynamic_power = std::atof(value().c_str());
      if (o.dynamic_power < 0.0) usage("bad --power");
    } else if (arg == "--clock") {
      o.clock_ghz = std::atof(value().c_str());
      if (o.clock_ghz <= 0.0) usage("bad --clock");
    } else if (arg == "--pbti-ratio") {
      o.pbti_ratio = std::atof(value().c_str());
      if (o.pbti_ratio < 0.0) usage("bad --pbti-ratio");
    } else if (arg == "--standby") {
      o.standby_mode = value();
      if (o.standby_mode != "stressed" && o.standby_mode != "relaxed" &&
          o.standby_mode != "zeros" && o.standby_mode != "ones" &&
          o.standby_mode != "mlv") {
        usage("--standby expects stressed|relaxed|zeros|ones|mlv");
      }
    } else if (arg == "--replication") {
      o.replication = std::atof(value().c_str());
      if (o.replication <= 0.0) usage("bad --replication");
    } else if (arg == "--runaway-k") {
      o.runaway_k = std::atof(value().c_str());
      if (o.runaway_k <= 0.0) usage("bad --runaway-k");
    } else if (arg == "--fail-dvth") {
      o.fail_dvth = std::atof(value().c_str());
      if (o.fail_dvth <= 0.0) usage("bad --fail-dvth");
    } else if (arg == "--dvth-table") {
      o.use_dvth_table = true;
    } else if (arg == "--table-ppd") {
      o.table_ppd = std::atoi(value().c_str());
      if (o.table_ppd < 1) usage("bad --table-ppd");
    } else if (arg == "--threads") {
      o.n_threads = std::atoi(value().c_str());
      if (o.n_threads < 0) usage("bad --threads");
    } else if (arg == "--csv") {
      o.csv_path = value();
    } else if (arg == "--cut-dffs") {
      o.cut_dffs = true;
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  return o;
}

netlist::Netlist load_circuit(const CliOptions& o) {
  if (o.circuit.ends_with(".v")) return netlist::load_verilog(o.circuit);
  const bool is_path = o.circuit.find('/') != std::string::npos ||
                       o.circuit.ends_with(".bench");
  if (is_path) {
    std::ifstream probe(o.circuit);
    if (!probe) throw std::runtime_error("cannot open " + o.circuit);
    std::ostringstream ss;
    ss << probe.rdbuf();
    std::string name = o.circuit;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name.erase(0, slash + 1);
    return netlist::parse_bench(ss.str(), name, {.cut_dffs = o.cut_dffs});
  }
  return netlist::iscas85_like(o.circuit);
}

aging::AgingConditions conditions(const CliOptions& o) {
  aging::AgingConditions cond;
  cond.schedule = nbti::ModeSchedule::from_ras(
      o.ras_active, o.ras_standby, 1000.0, o.t_active, o.t_standby);
  cond.total_time = o.years * kSecondsPerYear;
  cond.n_threads = o.n_threads;
  return cond;
}

void emit(const CliOptions& o, const report::Table& table) {
  std::fputs(report::to_markdown(table).c_str(), stdout);
  if (!o.csv_path.empty()) {
    report::write_file(o.csv_path, report::to_csv(table));
    std::printf("\n(csv written to %s)\n", o.csv_path.c_str());
  }
}

int cmd_info(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const sta::StaEngine sta(nl, lib);
  const leakage::LeakageAnalyzer leak(nl, lib, o.t_standby);
  const std::vector<bool> zeros(nl.num_inputs(), false);

  report::Table t{{"metric", "value"}, {}};
  t.add_row({"circuit", nl.name()});
  t.add_row({"primary inputs", std::to_string(nl.num_inputs())});
  t.add_row({"primary outputs", std::to_string(nl.num_outputs())});
  t.add_row({"gates", std::to_string(nl.num_gates())});
  t.add_row({"logic depth", std::to_string(nl.depth())});
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f ns",
                to_ns(sta.analyze_fresh(o.t_active).max_delay));
  t.add_row({"fresh critical delay", buf});
  std::snprintf(buf, sizeof buf, "%.2f uA @ %g K (inputs all-0)",
                1e6 * leak.circuit_leakage(zeros), o.t_standby);
  t.add_row({"standby leakage", buf});
  emit(o, t);
  return 0;
}

int cmd_aging(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const aging::AgingAnalyzer an(nl, lib, conditions(o));

  const auto worst = an.analyze(aging::StandbyPolicy::all_stressed());
  const auto best = an.analyze(aging::StandbyPolicy::all_relaxed());
  const std::vector<bool> zeros(nl.num_inputs(), false);
  const auto vec = an.analyze(aging::StandbyPolicy::from_vector(zeros));

  report::Table t{{"standby policy", "fresh [ns]", "aged [ns]", "ddelay [%]"},
                  {}};
  auto row = [&](const char* name, const aging::DegradationReport& r) {
    const std::vector<double> vals{to_ns(r.fresh_delay), to_ns(r.aged_delay),
                                   r.percent()};
    t.add_row(name, vals);
  };
  row("all nodes stressed (worst)", worst);
  row("inputs held all-0", vec);
  row("all nodes relaxed (best)", best);
  emit(o, t);
  return 0;
}

int cmd_ivc(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const aging::AgingAnalyzer an(nl, lib, conditions(o));
  const leakage::LeakageAnalyzer leak(nl, lib, o.t_standby);
  const opt::IvcResult r = opt::evaluate_ivc(
      an, leak,
      {.population = 48, .max_rounds = 12, .n_threads = o.n_threads}, 0);
  const opt::AlternatingIvcResult alt = opt::evaluate_alternating_ivc(
      an, leak,
      {.population = 48, .max_rounds = 12, .max_set_size = 8,
       .n_threads = o.n_threads});

  report::Table t{{"quantity", "value"}, {}};
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.3f %%", r.worst_case_percent);
  t.add_row({"worst-case degradation", buf});
  std::snprintf(buf, sizeof buf, "%.3f %% (leakage %.2f uA)",
                r.best().degradation_percent, 1e6 * r.best().leakage);
  t.add_row({"best MLV degradation", buf});
  std::snprintf(buf, sizeof buf, "%.3f %%pt over %zu vectors",
                r.mlv_spread_percent(), r.candidates.size());
  t.add_row({"MLV spread", buf});
  std::snprintf(buf, sizeof buf, "%.3f %%", r.best_case_percent);
  t.add_row({"INC bound (all relaxed)", buf});
  std::snprintf(buf, sizeof buf, "%.2f mV -> %.2f mV (-%.1f%%)",
                to_mV(alt.static_max_dvth), to_mV(alt.rotating_max_dvth),
                alt.max_dvth_reduction_percent());
  t.add_row({"max device dVth, static -> rotating", buf});
  emit(o, t);
  return 0;
}

int cmd_st(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const aging::AgingAnalyzer an(nl, lib, conditions(o));
  opt::StParams st;
  st.sigma = o.st_sigma;
  const double horizon = o.years * kSecondsPerYear;
  const auto with_st = opt::st_circuit_degradation_series(
      an, opt::StStyle::Header, st, horizon, horizon * 1.01, 2);
  const auto without = opt::no_st_degradation_series(an, horizon,
                                                     horizon * 1.01, 2);
  const opt::StSizing sizing = opt::size_sleep_transistor(
      an.conditions().rd, an.conditions().schedule, horizon, 1e-3, st);

  report::Table t{{"quantity", "value"}, {}};
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.3f %%", without.front().total_percent);
  t.add_row({"degradation w/o ST (worst case)", buf});
  std::snprintf(buf, sizeof buf, "%.3f %% (logic %.3f + ST %.3f)",
                with_st.front().total_percent, with_st.front().logic_percent,
                with_st.front().st_percent);
  t.add_row({"total vs fresh, with header ST", buf});
  std::snprintf(buf, sizeof buf, "%.1f -> %.1f (+%.2f%%)", sizing.wl_base,
                sizing.wl_nbti_aware, sizing.wl_increase_percent());
  t.add_row({"NBTI-aware (W/L) @ I_ON=1mA", buf});
  std::snprintf(buf, sizeof buf, "%.2f mV", to_mV(sizing.dvth_st));
  t.add_row({"lifetime ST dVth", buf});
  emit(o, t);
  return 0;
}

int cmd_mc(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const aging::AgingAnalyzer an(nl, lib, conditions(o));
  const variation::MonteCarloAging mc(
      an,
      {.sigma_vth = 0.012, .samples = o.mc_samples, .n_threads = o.n_threads});
  const auto fresh = mc.fresh_distribution();
  const auto aged = mc.aged_distribution(aging::StandbyPolicy::all_stressed(),
                                         o.years * kSecondsPerYear);

  report::Table t{
      {"distribution", "mean [ns]", "sigma [ps]", "-3s [ns]", "+3s [ns]"}, {}};
  auto row = [&](const char* name, const variation::DelayDistribution& d) {
    const std::vector<double> vals{to_ns(d.mean()), to_ps(d.stddev()),
                                   to_ns(d.lower3()), to_ns(d.upper3())};
    t.add_row(name, vals);
  };
  row("fresh", fresh);
  row("aged", aged);
  emit(o, t);
  return 0;
}

// The concrete standby input vector selected by --standby for commands
// that need a leakage/logic state rather than a policy: all-0 (default),
// all-1, or the minimum-leakage vector from the Fig. 7 search.
std::vector<bool> standby_vector(const CliOptions& o,
                                 const netlist::Netlist& nl,
                                 const tech::Library& lib) {
  if (o.standby_mode == "ones") return std::vector<bool>(nl.num_inputs(), true);
  if (o.standby_mode == "mlv") {
    const leakage::LeakageAnalyzer leak(nl, lib, o.t_standby);
    const opt::MlvResult mlv =
        opt::find_mlv_set(leak, {.n_threads = o.n_threads});
    if (mlv.vectors.empty()) {
      throw std::runtime_error("--standby mlv: MLV search returned no vector");
    }
    return mlv.vectors.front();
  }
  return std::vector<bool>(nl.num_inputs(), false);  // "" or "zeros"
}

// The standby policy selected by --standby for the aging-path commands:
// the bounding policies, or a concrete vector via standby_vector().
aging::StandbyPolicy standby_policy(const CliOptions& o,
                                    const netlist::Netlist& nl,
                                    const tech::Library& lib) {
  if (o.standby_mode.empty() || o.standby_mode == "stressed") {
    return aging::StandbyPolicy::all_stressed();
  }
  if (o.standby_mode == "relaxed") return aging::StandbyPolicy::all_relaxed();
  return aging::StandbyPolicy::from_vector(standby_vector(o, nl, lib));
}

int cmd_multi(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const aging::AgingAnalyzer an(nl, lib, conditions(o));
  aging::MultiAgingParams mp;
  mp.clock_hz = o.clock_ghz * 1e9;
  mp.pbti.ratio = o.pbti_ratio;
  const aging::MultiAgingReport rep =
      aging::analyze_multi_mechanism(an, standby_policy(o, nl, lib), mp);

  report::Table t{{"quantity", "value"}, {}};
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.3f ns", to_ns(rep.fresh_delay));
  t.add_row({"fresh delay (slew-aware)", buf});
  std::snprintf(buf, sizeof buf, "%.3f %%", rep.nbti_only_percent());
  t.add_row({"NBTI-only degradation", buf});
  std::snprintf(buf, sizeof buf, "%.3f %%", rep.percent());
  t.add_row({"NBTI + PBTI + HCI degradation", buf});
  double max_n = 0.0, max_p = 0.0;
  for (double d : rep.nmos_dvth) max_n = std::max(max_n, d);
  for (double d : rep.pmos_dvth) max_p = std::max(max_p, d);
  std::snprintf(buf, sizeof buf, "PMOS %.2f mV / NMOS %.2f mV", to_mV(max_p),
                to_mV(max_n));
  t.add_row({"worst device shifts", buf});
  emit(o, t);
  return 0;
}

int cmd_dualvth(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const opt::DualVthResult r = opt::assign_dual_vth(
      nl, lib, conditions(o), {.delay_budget_percent = 2.0,
                               .leakage_temperature = o.t_standby});
  report::Table t{{"quantity", "value"}, {}};
  char buf[96];
  std::snprintf(buf, sizeof buf, "%d of %zu (%.1f%%)", r.n_high,
                r.gate_vth_offsets.size(), 100.0 * r.high_fraction());
  t.add_row({"gates moved to high Vth", buf});
  std::snprintf(buf, sizeof buf, "%.3f -> %.3f ns", to_ns(r.fresh_delay_low),
                to_ns(r.fresh_delay_dual));
  t.add_row({"fresh delay", buf});
  std::snprintf(buf, sizeof buf, "%.2f -> %.2f uA (-%.1f%%)",
                1e6 * r.leakage_low, 1e6 * r.leakage_dual,
                r.leakage_saving_percent());
  t.add_row({"standby leakage", buf});
  std::snprintf(buf, sizeof buf, "%.3f -> %.3f %%", r.aging_low_percent,
                r.aging_dual_percent);
  t.add_row({"10-year degradation", buf});
  emit(o, t);
  return 0;
}

int cmd_sizing(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const aging::AgingAnalyzer an(nl, lib, conditions(o));
  const opt::SizingResult r = opt::size_for_lifetime(
      an, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = o.spec_margin, .size_step = 0.5,
       .max_moves = 600, .n_threads = o.n_threads});
  report::Table t{{"quantity", "value"}, {}};
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.3f ns (+%.1f%% spec)",
                to_ns(r.spec), o.spec_margin);
  t.add_row({"lifetime timing spec", buf});
  std::snprintf(buf, sizeof buf, "%.3f -> %.3f ns", to_ns(r.aged_before),
                to_ns(r.aged_after));
  t.add_row({"aged delay before -> after", buf});
  std::snprintf(buf, sizeof buf, "%.2f %% (vs %.2f%% guard-band)",
                r.area_overhead_percent(), r.guard_band_percent());
  t.add_row({"area overhead", buf});
  t.add_row({"spec met", r.met ? "yes" : "no"});
  emit(o, t);
  return 0;
}

int cmd_inc(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const opt::IncInsertionResult r = opt::insert_control_points(
      nl, lib, conditions(o), {.max_control_points = 30});
  report::Table t{{"quantity", "value"}, {}};
  char buf[96];
  std::snprintf(buf, sizeof buf, "%zu", r.controlled.size());
  t.add_row({"control points inserted", buf});
  std::snprintf(buf, sizeof buf, "%.3f -> %.3f %% (-%.1f%%)", r.aging_before,
                r.aging_after, r.aging_saving_percent());
  t.add_row({"10-year degradation", buf});
  std::snprintf(buf, sizeof buf, "%.2f %%", r.time0_penalty_percent());
  t.add_row({"time-0 delay penalty", buf});
  emit(o, t);
  return 0;
}

int cmd_lifetime(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const aging::AgingAnalyzer an(nl, lib, conditions(o));
  const variation::LifetimeResult r = variation::lifetime_distribution(
      an, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = o.spec_margin, .samples = o.mc_samples,
       .n_threads = o.n_threads, .use_dvth_table = o.use_dvth_table,
       .table_points_per_decade = o.table_ppd});
  report::Table t{{"quantity", "value"}, {}};
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.2f years",
                r.quantile(0.5) / kSecondsPerYear);
  t.add_row({"median lifetime", buf});
  std::snprintf(buf, sizeof buf, "%.2f years",
                r.quantile(0.01) / kSecondsPerYear);
  t.add_row({"1%-ile lifetime", buf});
  std::snprintf(buf, sizeof buf, "%.1f %%",
                100.0 * r.failure_fraction_at(o.years * kSecondsPerYear));
  t.add_row({"failed within the horizon", buf});
  std::snprintf(buf, sizeof buf, "%.1f %%", 100.0 * r.survivor_fraction());
  t.add_row({"survivors at 30 years", buf});
  emit(o, t);
  return 0;
}

int cmd_derate(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const aging::AgingAnalyzer an(nl, lib, conditions(o));
  const report::DerateTable t = report::aging_derate_table(
      an, {1.0, 2.0, 3.0, 5.0, 7.0, o.years}, o.n_threads);
  emit(o, t.to_table());
  return 0;
}

int cmd_thermal(const CliOptions& o) {
  if (o.standby_mode == "stressed" || o.standby_mode == "relaxed") {
    usage("thermal needs a concrete standby vector: zeros|ones|mlv");
  }
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const thermal::RcThermalModel model;
  const thermal::OperatingPoint op = thermal::solve_operating_point(
      nl, lib, model, standby_vector(o, nl, lib),
      {.dynamic_power_w = o.dynamic_power, .replication = o.replication,
       .runaway_temp_k = o.runaway_k});
  report::Table t{{"quantity", "value"}, {}};
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.2f K (%.2f C)", op.temperature_k,
                op.temperature_k - 273.15);
  t.add_row({"operating temperature", buf});
  std::snprintf(buf, sizeof buf, "%.3f W (die of %g blocks)", op.leakage_w,
                o.replication);
  t.add_row({"leakage power", buf});
  std::snprintf(buf, sizeof buf, "%d iterations, %s", op.iterations,
                op.converged ? "converged" : "RUNAWAY");
  t.add_row({"fixpoint", buf});
  emit(o, t);
  return 0;
}

int cmd_failure(const CliOptions& o) {
  const netlist::Netlist nl = load_circuit(o);
  const tech::Library lib;
  const aging::AgingAnalyzer an(nl, lib, conditions(o));
  aging::FailureParams fp;
  fp.multi.clock_hz = o.clock_ghz * 1e9;
  fp.multi.pbti.ratio = o.pbti_ratio;
  fp.fail_dvth = o.fail_dvth;
  if (o.years_set) fp.max_years = o.years;
  fp.n_threads = o.n_threads;
  fp.use_dvth_table = o.use_dvth_table;
  fp.table_points_per_decade = o.table_ppd;
  const aging::FailureReport rep =
      aging::analyze_failure(an, standby_policy(o, nl, lib), fp);

  report::Table t{{"mechanism", "system MTTF [years]", "worst gate [years]"},
                  {}};
  char buf[96];
  auto years = [&](double y) -> const char* {
    if (std::isfinite(y)) {
      std::snprintf(buf, sizeof buf, "%.2f", y);
    } else {
      std::snprintf(buf, sizeof buf, "> %g (window)", fp.max_years);
    }
    return buf;
  };
  for (const aging::MechanismMttf& m : rep.mechanisms) {
    std::vector<std::string> row{m.name};
    row.push_back(years(m.system_mttf));
    double worst = aging::kNeverFails;
    for (double g : m.gate_mttf) worst = std::min(worst, g);
    row.push_back(years(worst));
    t.add_row(row);
  }
  {
    std::vector<std::string> row{"system (all mechanisms)"};
    row.push_back(years(rep.system_mttf));
    row.push_back("");
    t.add_row(row);
  }
  emit(o, t);

  report::Table curve{{"years", "P(system failed)"}, {}};
  for (const auto& [y, p] : rep.failure_curve) {
    std::snprintf(buf, sizeof buf, "%g", y);
    std::string year_s = buf;
    std::snprintf(buf, sizeof buf, "%.4f", p);
    curve.add_row({year_s, buf});
  }
  std::printf("\n");
  emit(o, curve);
  return 0;
}

// Derives the default result-store path from the spec path:
// "specs/grid.json" -> "specs/grid.results.jsonl".
std::string default_store_path(const std::string& spec_path) {
  std::string base = spec_path;
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot != std::string::npos && (slash == std::string::npos || dot > slash)) {
    base.erase(dot);
  }
  return base + ".results.jsonl";
}

int cmd_generate(int argc, char** argv) {
  if (argc < 3) {
    usage("generate expects: <spec> [--out PATH] [--format bench|v]");
  }
  const std::string spec = argv[2];
  std::string out_path;
  std::string format;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = value();
    } else if (arg == "--format") {
      format = value();
      if (format != "bench" && format != "v") {
        usage("--format expects bench|v");
      }
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }
  // Format priority: explicit --format, else the --out extension, else bench.
  if (format.empty()) {
    format = out_path.ends_with(".v") ? "v" : "bench";
  }

  const netlist::Netlist nl = analysis::load_netlist_spec(spec, false);
  const std::string text =
      format == "v" ? netlist::write_verilog(nl) : netlist::write_bench(nl);
  if (out_path.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    std::ofstream f(out_path);
    if (!f) throw std::runtime_error("generate: cannot write " + out_path);
    f << text;
  }
  std::fprintf(stderr,
               "generate %s: %d inputs, %d outputs, %d gates, depth %d -> "
               "%s (%s)\n",
               nl.name().c_str(), nl.num_inputs(),
               static_cast<int>(nl.outputs().size()), nl.num_gates(),
               nl.depth(), out_path.empty() ? "stdout" : out_path.c_str(),
               format.c_str());
  return 0;
}

int cmd_campaign(int argc, char** argv) {
  if (argc < 4) {
    usage("campaign expects: run|resume|summarize|query|serve SPEC.json");
  }
  const std::string action = argv[2];
  const std::string spec_path = argv[3];
  if (action != "run" && action != "resume" && action != "summarize" &&
      action != "query" && action != "serve") {
    usage(("unknown campaign action " + action).c_str());
  }

  std::string store_path = default_store_path(spec_path);
  std::string csv_path;
  std::string format = "md";
  std::string query_text;
  int threads_override = -1;
  int port = -1;
  int max_connections = 0;
  for (int i = 4; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + arg).c_str());
      return argv[++i];
    };
    if (arg == "--out") {
      store_path = value();
    } else if (arg == "--csv") {
      csv_path = value();
    } else if (arg == "--format") {
      format = value();
      const bool json_ok = action == "query" && format == "json";
      if (format != "md" && format != "csv" && !json_ok) {
        usage(action == "query" ? "--format expects md|csv|json"
                                : "--format expects md|csv");
      }
    } else if (arg == "--threads") {
      threads_override = std::atoi(value().c_str());
      if (threads_override < 0) usage("bad --threads");
    } else if (arg == "--query" && action == "query") {
      query_text = value();
    } else if (arg == "--query-file" && action == "query") {
      const std::string path = value();
      std::ifstream f(path);
      if (!f) throw std::runtime_error("campaign query: cannot open " + path);
      std::ostringstream ss;
      ss << f.rdbuf();
      query_text = ss.str();
    } else if (arg == "--port" && action == "serve") {
      port = std::atoi(value().c_str());
      if (port < 0 || port > 65535) usage("bad --port");
    } else if (arg == "--max-connections" && action == "serve") {
      max_connections = std::atoi(value().c_str());
      if (max_connections < 0) usage("bad --max-connections");
    } else {
      usage(("unknown option " + arg).c_str());
    }
  }

  campaign::CampaignSpec spec = campaign::load_spec(spec_path);
  if (threads_override >= 0) spec.n_threads = threads_override;

  if (action == "query") {
    // "{}" — match everything, default columns — when no query was given.
    const query::Query q = query::parse_query(
        common::json::parse(query_text.empty() ? "{}" : query_text));
    const query::StoreView view(store_path);
    const query::QueryResult r = query::run_query(view, q, spec.n_threads);
    if (format == "json") {
      std::fputs(r.to_json().c_str(), stdout);
      std::fputs("\n", stdout);
    } else {
      const report::Table t = r.table();
      std::fputs((format == "csv" ? report::to_csv(t) : report::to_markdown(t))
                     .c_str(),
                 stdout);
    }
    if (!csv_path.empty()) {
      report::write_file(csv_path, report::to_csv(r.table()));
      std::printf("(csv written to %s)\n", csv_path.c_str());
    }
    std::fprintf(stderr,
                 "query: %zu matched, %zu of %zu rows parsed across %d "
                 "file%s\n",
                 r.stats.rows_matched, r.stats.rows_parsed,
                 r.stats.index_entries, r.stats.files,
                 r.stats.files == 1 ? "" : "s");
    return 0;
  }

  if (action == "serve") {
    const query::StoreView view(store_path);
    std::fprintf(stderr, "serve: %zu rows across %zu file%s of %s\n",
                 view.total_rows(), view.files().size(),
                 view.files().size() == 1 ? "" : "s", store_path.c_str());
    if (port >= 0) {
      query::ServeOptions opt;
      opt.port = port;
      opt.n_threads = spec.n_threads;
      opt.max_connections = max_connections;
      query::serve_tcp(view, opt, &std::cerr);
    } else {
      query::serve_session(view, std::cin, std::cout, spec.n_threads);
    }
    return 0;
  }

  if (action == "summarize") {
    campaign::SummaryStats stats;
    const report::Table t = campaign::summarize(spec, store_path, &stats);
    // CSV to stdout pipes straight into plotting scripts next to the
    // BENCH_*.json files; markdown stays the human default.
    std::fputs((format == "csv" ? report::to_csv(t) : report::to_markdown(t))
                   .c_str(),
               stdout);
    if (!csv_path.empty()) {
      report::write_file(csv_path, report::to_csv(t));
      std::printf("\n(csv written to %s)\n", csv_path.c_str());
    }
    if (stats.stale > 0) {
      std::fprintf(stderr,
                   "campaign %s: %d of %d store row%s stale (parameters "
                   "changed since they were written) — not summarized\n",
                   spec.name.c_str(), stats.stale, stats.stored,
                   stats.stored == 1 ? "" : "s");
    }
    return 0;
  }

  if (action == "resume") {
    // Sharded layouts have no file at store_path itself; probe every
    // possible shard plus the legacy base file.
    if (!campaign::ShardedStore::exists(store_path)) {
      throw std::runtime_error("campaign resume: no result store at " +
                               store_path + " (use `campaign run` first)");
    }
  }
  const campaign::RunStats stats =
      campaign::run_campaign(spec, store_path, &std::cerr);
  std::printf(
      "campaign %s: %d tasks (%d skipped, %d executed, %d stale) in %.1f ms "
      "-> %s\n",
      spec.name.c_str(), stats.total, stats.skipped, stats.executed,
      stats.stale, stats.elapsed_ms, store_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc >= 2 && (std::strcmp(argv[1], "--version") == 0 ||
                      std::strcmp(argv[1], "-V") == 0)) {
      std::printf("nbtisim %s\n", NBTISIM_VERSION);
      return 0;
    }
    if (argc >= 2 && std::strcmp(argv[1], "campaign") == 0) {
      return cmd_campaign(argc, argv);
    }
    if (argc >= 2 && std::strcmp(argv[1], "generate") == 0) {
      return cmd_generate(argc, argv);
    }
    const CliOptions o = parse_args(argc, argv);
    if (o.command == "info") return cmd_info(o);
    if (o.command == "aging") return cmd_aging(o);
    if (o.command == "ivc") return cmd_ivc(o);
    if (o.command == "st") return cmd_st(o);
    if (o.command == "mc") return cmd_mc(o);
    if (o.command == "multi") return cmd_multi(o);
    if (o.command == "dualvth") return cmd_dualvth(o);
    if (o.command == "sizing") return cmd_sizing(o);
    if (o.command == "inc") return cmd_inc(o);
    if (o.command == "lifetime") return cmd_lifetime(o);
    if (o.command == "thermal") return cmd_thermal(o);
    if (o.command == "failure") return cmd_failure(o);
    if (o.command == "derate") return cmd_derate(o);
    usage(("unknown command " + o.command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "nbtisim: %s\n", e.what());
    return 1;
  }
}
