#include "leakage/leakage.h"

#include <cmath>
#include <stdexcept>

namespace nbtisim::leakage {

LeakageAnalyzer::LeakageAnalyzer(const netlist::Netlist& nl,
                                 const tech::Library& lib, double temp_k,
                                 std::vector<double> gate_vth_offsets)
    : nl_(&nl), lib_(&lib), table_(lib, temp_k) {
  cells_.reserve(nl.num_gates());
  for (const netlist::Gate& g : nl.gates()) {
    cells_.push_back(lib.id_for(g.fn, static_cast<int>(g.fanins.size())));
  }

  if (!gate_vth_offsets.empty()) {
    if (static_cast<int>(gate_vth_offsets.size()) != nl.num_gates()) {
      throw std::invalid_argument(
          "LeakageAnalyzer: gate_vth_offsets size mismatch");
    }
    table_of_gate_.assign(nl.num_gates(), -1);
    std::vector<double> distinct;
    for (int gi = 0; gi < nl.num_gates(); ++gi) {
      const double off = gate_vth_offsets[gi];
      if (off == 0.0) continue;
      int idx = -1;
      for (std::size_t k = 0; k < distinct.size(); ++k) {
        if (std::abs(distinct[k] - off) < 1e-9) {
          idx = static_cast<int>(k);
          break;
        }
      }
      if (idx < 0) {
        idx = static_cast<int>(distinct.size());
        distinct.push_back(off);
        extra_.emplace_back(lib, temp_k, off);
      }
      table_of_gate_[gi] = idx;
    }
  }
}

const tech::LeakageTable& LeakageAnalyzer::table_for(int gate_idx) const {
  if (table_of_gate_.empty() || table_of_gate_[gate_idx] < 0) return table_;
  return extra_[table_of_gate_[gate_idx]];
}

std::vector<double> LeakageAnalyzer::gate_leakage(
    const std::vector<bool>& pi_values) const {
  sim::Simulator simulator(*nl_);
  const std::vector<bool> value = simulator.evaluate(pi_values);
  std::vector<double> leak(nl_->num_gates());
  for (int gi = 0; gi < nl_->num_gates(); ++gi) {
    const netlist::Gate& g = nl_->gate(gi);
    std::uint32_t bits = 0;
    for (std::size_t pin = 0; pin < g.fanins.size(); ++pin) {
      bits |= value[g.fanins[pin]] ? (1u << pin) : 0u;
    }
    leak[gi] = table_for(gi).leakage(cells_[gi], bits);
  }
  return leak;
}

double LeakageAnalyzer::circuit_leakage(const std::vector<bool>& pi_values) const {
  double total = 0.0;
  for (double l : gate_leakage(pi_values)) total += l;
  return total;
}

double LeakageAnalyzer::expected_leakage(
    std::span<const double> node_sp) const {
  if (static_cast<int>(node_sp.size()) != nl_->num_nodes()) {
    throw std::invalid_argument("expected_leakage: SP size mismatch");
  }
  double total = 0.0;
  std::vector<double> pin_sp;
  for (int gi = 0; gi < nl_->num_gates(); ++gi) {
    const netlist::Gate& g = nl_->gate(gi);
    pin_sp.clear();
    for (netlist::NodeId in : g.fanins) pin_sp.push_back(node_sp[in]);
    total += table_for(gi).expected_leakage(cells_[gi], pin_sp);
  }
  return total;
}

}  // namespace nbtisim::leakage
