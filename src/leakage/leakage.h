/// \file leakage.h
/// \brief Circuit-level standby/active leakage estimation (paper eq. 24).
///
/// Standby leakage under a candidate input vector: simulate the vector,
/// look up every gate's leakage in the per-vector table, sum.  Expected
/// active leakage: weight each gate's per-vector leakage by the joint
/// probability of its fanin states (independence assumption), i.e.
///   I_leakage(v) = sum_IN I_l(v, IN) * Prob(v, IN)      (eq. 24)
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.h"
#include "sim/simulator.h"
#include "tech/library.h"

namespace nbtisim::leakage {

/// Leakage estimator bound to (netlist, library, temperature).
class LeakageAnalyzer {
 public:
  /// \param gate_vth_offsets optional per-gate threshold offsets (dual-Vth
  ///        assignment); one extra lookup table is characterized per
  ///        distinct offset value
  LeakageAnalyzer(const netlist::Netlist& nl, const tech::Library& lib,
                  double temp_k, std::vector<double> gate_vth_offsets = {});

  double temperature() const { return table_.temperature(); }
  const tech::LeakageTable& table() const { return table_; }
  const netlist::Netlist& netlist() const { return *nl_; }
  const tech::Library& library() const { return *lib_; }

  /// Per-gate leakage when the primary inputs hold \p pi_values [A].
  std::vector<double> gate_leakage(const std::vector<bool>& pi_values) const;

  /// Total circuit leakage under a static input vector [A].
  double circuit_leakage(const std::vector<bool>& pi_values) const;

  /// Expected leakage given per-net signal probabilities (eq. 24) [A].
  /// \p node_sp is indexed by NodeId (as produced by estimate_signal_stats).
  double expected_leakage(std::span<const double> node_sp) const;

 private:
  const tech::LeakageTable& table_for(int gate_idx) const;

  const netlist::Netlist* nl_;
  const tech::Library* lib_;
  tech::LeakageTable table_;                 // nominal-Vth table
  std::vector<tech::LeakageTable> extra_;    // one per distinct offset
  std::vector<int> table_of_gate_;           // -1 = nominal, else extra index
  std::vector<tech::CellId> cells_;
};

}  // namespace nbtisim::leakage
