/// \file context.h
/// \brief Shared per-(netlist, condition) evaluation state for analyses.
///
/// Every analysis consumes the same expensive intermediates: the loaded
/// netlist, its signal statistics and stress-descriptor caches (inside the
/// AgingAnalyzer), the STA engine, and the standby-temperature leakage
/// tables. A ContextPool owns them once per campaign, keyed by grid cell;
/// an EvalContext is the cheap per-task handle that lazily resolves them,
/// so tasks sharing a cell pay the build cost once no matter how many
/// analysis kinds run on it.
///
/// Cache fills serialize *per key*, not across keys: the pool mutex only
/// guards the slot map, and each slot's (expensive, deterministic) build
/// runs under its own std::call_once — two tasks needing different
/// analyzers build them concurrently, while two tasks sharing a cell still
/// build once. Inner engines are configured with n_threads = 0, i.e. the
/// shared work pool: executed inside a scheduler worker they run serially
/// (a pool task never spawns a nested team), executed at top level they may
/// fan out. Every inner engine is bit-identical for any thread count
/// anyway, so this is purely a scheduling choice.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "aging/aging.h"
#include "analysis/analysis.h"
#include "leakage/leakage.h"
#include "netlist/netlist.h"
#include "tech/library.h"

namespace nbtisim::analysis {

/// Loads a netlist from a grid netlist-spec string: a built-in ISCAS85
/// name, a .bench / .v path, or a generator form —
/// "dag:<inputs>x<gates>@<seed>", "mult:<bits>", "alu:<width>".
/// \throws std::invalid_argument / std::runtime_error on bad specs or files
netlist::Netlist load_netlist_spec(const std::string& spec, bool cut_dffs);

class EvalContext;

/// Owns the per-campaign caches; hands out EvalContext handles.
class ContextPool {
 public:
  explicit ContextPool(Params params, bool cut_dffs = false)
      : params_(std::move(params)), cut_dffs_(cut_dffs) {}

  /// A handle for one grid cell; resolves lazily against this pool.
  EvalContext context(const std::string& netlist_spec, const Condition& cond);

  const Params& params() const { return params_; }
  const tech::Library& library() const { return lib_; }

 private:
  friend class EvalContext;

  const netlist::Netlist& netlist_for(const std::string& nl_spec);
  const aging::AgingAnalyzer& analyzer_for(const std::string& nl_spec,
                                           const Condition& cond);
  const leakage::LeakageAnalyzer& leakage_for(const std::string& nl_spec,
                                              const Condition& cond);

  /// One cached entry: the build runs under the slot's own once_flag, so
  /// distinct keys never serialize on the pool mutex while building.
  template <typename T>
  struct Slot {
    std::once_flag once;
    std::shared_ptr<T> value;
  };
  template <typename T>
  using SlotMap = std::map<std::string, std::shared_ptr<Slot<T>>>;

  Params params_;
  bool cut_dffs_;
  tech::Library lib_;
  std::mutex mutex_;  ///< guards the slot maps only, never a build
  SlotMap<netlist::Netlist> netlists_;
  SlotMap<aging::AgingAnalyzer> analyzers_;
  SlotMap<leakage::LeakageAnalyzer> leakages_;
};

/// The per-task view an Analysis::run receives: grid coordinates plus lazy
/// accessors into the pool's caches. Cheap to copy; safe to use from the
/// task's worker thread (the pool serializes cache fills internally).
class EvalContext {
 public:
  const Condition& condition() const { return cond_; }
  const Params& params() const { return pool_->params(); }
  const tech::Library& library() const { return pool_->library(); }

  /// The loaded netlist (cached per netlist spec).
  const netlist::Netlist& netlist() { return pool_->netlist_for(spec_); }

  /// The aging analyzer for this cell (cached per netlist × condition):
  /// signal stats, STA engine and per-policy stress descriptors live here.
  const aging::AgingAnalyzer& aging() {
    return pool_->analyzer_for(spec_, cond_);
  }

  /// Leakage analyzer at the condition's standby temperature (cached per
  /// netlist × T_standby).
  const leakage::LeakageAnalyzer& standby_leakage() {
    return pool_->leakage_for(spec_, cond_);
  }

  /// The condition's lifetime horizon [s].
  double horizon() const;

 private:
  friend class ContextPool;
  EvalContext(ContextPool* pool, std::string spec, Condition cond)
      : pool_(pool), spec_(std::move(spec)), cond_(cond) {}

  ContextPool* pool_;
  std::string spec_;
  Condition cond_;
};

}  // namespace nbtisim::analysis
