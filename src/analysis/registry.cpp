#include "analysis/analysis.h"

#include <cstdio>
#include <stdexcept>

namespace nbtisim::analysis {

std::string fmt_g(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string base_fingerprint(const Params& p) {
  return "sp" + std::to_string(p.sp_vectors) + ",seed" + std::to_string(p.seed);
}

std::string Condition::label() const {
  return "ras" + fmt_g(ras_active) + ":" + fmt_g(ras_standby) + ",ta" +
         fmt_g(t_active) + ",ts" + fmt_g(t_standby) + ",y" + fmt_g(years);
}

void AnalysisRegistry::add(std::unique_ptr<Analysis> a) {
  const std::string name(a->name());
  const auto [it, inserted] = by_name_.try_emplace(name, std::move(a));
  if (!inserted) {
    throw std::invalid_argument("AnalysisRegistry: \"" + name +
                                "\" is already registered");
  }
}

const Analysis* AnalysisRegistry::find(std::string_view name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

const Analysis& AnalysisRegistry::at(std::string_view name) const {
  if (const Analysis* a = find(name)) return *a;
  std::string known;
  for (const auto& [n, _] : by_name_) {
    known += known.empty() ? n : "|" + n;
  }
  throw std::invalid_argument("unknown analysis \"" + std::string(name) +
                              "\" (expected " + known + ")");
}

std::vector<std::string> AnalysisRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(by_name_.size());
  for (const auto& [n, _] : by_name_) out.push_back(n);
  return out;  // std::map: already sorted
}

void register_builtin_analyses(AnalysisRegistry& r) {
  r.add(make_aging_analysis());
  r.add(make_ivc_analysis());
  r.add(make_st_analysis());
  r.add(make_lifetime_analysis());
  r.add(make_sizing_analysis());
  r.add(make_derate_analysis());
  r.add(make_pareto_analysis());
  r.add(make_criticality_analysis());
  r.add(make_multi_analysis());
  r.add(make_thermal_analysis());
  r.add(make_failure_analysis());
}

AnalysisRegistry& AnalysisRegistry::global() {
  static AnalysisRegistry* instance = [] {
    auto* r = new AnalysisRegistry();
    register_builtin_analyses(*r);
    return r;
  }();
  return *instance;
}

}  // namespace nbtisim::analysis
