/// \file pareto_analysis.cpp
/// \brief "pareto": the standby-vector leakage/degradation Pareto front as a
///        grid analysis — front extremes, the balanced pick, and the
///        trade-off depth per (netlist, condition), plus the full front as a
///        structured "front" payload for the query layer.

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "opt/pareto.h"

namespace nbtisim::analysis {
namespace {

class ParetoAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "pareto"; }

  std::string fingerprint(const Params& p) const override {
    return base_fingerprint(p) + ",ps" + std::to_string(p.pareto_samples) +
           ",pr" + std::to_string(p.pareto_rounds) + ",pf" +
           std::to_string(p.pareto_flips);
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    opt::ParetoParams pp;
    pp.random_samples = p.pareto_samples;
    pp.improve_rounds = p.pareto_rounds;
    pp.flips_per_member = p.pareto_flips;
    pp.seed = p.seed;
    pp.n_threads = 0;  // shared pool; serial when inside a pool task
    const opt::ParetoResult r =
        opt::pareto_standby_vectors(ctx.aging(), ctx.standby_leakage(), pp);
    const opt::ParetoPoint& balanced = r.pick(0.5);
    // Full front (ascending leakage) as a structured payload; the scalar
    // summaries above it keep the legacy flat contract.
    common::json::Array front;
    front.reserve(r.front.size());
    for (const opt::ParetoPoint& pt : r.front) {
      front.push_back(common::json::Value(common::json::Object{
          {"leak_ua", common::json::Value(1e6 * pt.leakage)},
          {"deg_pct", common::json::Value(pt.degradation_percent)}}));
    }
    return {{"front_size", static_cast<double>(r.front.size())},
            {"evaluated", static_cast<double>(r.evaluated)},
            {"min_leak_ua", 1e6 * r.min_leakage().leakage},
            {"min_leak_deg_pct", r.min_leakage().degradation_percent},
            {"min_deg_pct", r.min_degradation().degradation_percent},
            {"min_deg_leak_ua", 1e6 * r.min_degradation().leakage},
            {"balanced_leak_ua", 1e6 * balanced.leakage},
            {"balanced_deg_pct", balanced.degradation_percent},
            {"deg_range_pct", r.degradation_range()},
            {"front", common::json::Value(std::move(front))}};
  }
};

}  // namespace

std::unique_ptr<Analysis> make_pareto_analysis() {
  return std::make_unique<ParetoAnalysis>();
}

}  // namespace nbtisim::analysis
