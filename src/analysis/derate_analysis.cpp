/// \file derate_analysis.cpp
/// \brief "derate": the signoff derate table as a grid analysis — the
///        aged/fresh circuit delay factor per lifetime under the worst /
///        all-zero / best standby policies, flattened to one metric per
///        (policy, year) cell.

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "report/derate.h"

namespace nbtisim::analysis {
namespace {

class DerateAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "derate"; }

  std::string fingerprint(const Params& p) const override {
    std::string fp = base_fingerprint(p) + ",y[";
    for (std::size_t i = 0; i < p.derate_years.size(); ++i) {
      if (i > 0) fp += ":";
      fp += fmt_g(p.derate_years[i]);
    }
    return fp + "]";
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    // One horizon-batched pass per policy over the cached stress
    // descriptors; serial here — campaign parallelism is across tasks.
    const report::DerateTable t =
        report::aging_derate_table(ctx.aging(), p.derate_years, 1);
    // Short policy tags keep the summarize columns readable:
    // worst_case -> "worst", inputs_all_zero -> "vec0", best_case -> "best".
    static constexpr const char* kTags[] = {"worst", "vec0", "best"};
    Metrics m;
    m.reserve(t.policy_names.size() * t.years.size());
    for (std::size_t pi = 0; pi < t.policy_names.size(); ++pi) {
      const std::string tag =
          pi < 3 ? kTags[pi] : t.policy_names[pi];
      for (std::size_t yi = 0; yi < t.years.size(); ++yi) {
        m.emplace_back(tag + "_y" + fmt_g(t.years[yi]), t.factors[pi][yi]);
      }
    }
    return m;
  }
};

}  // namespace

std::unique_ptr<Analysis> make_derate_analysis() {
  return std::make_unique<DerateAnalysis>();
}

}  // namespace nbtisim::analysis
