/// \file ivc_analysis.cpp
/// \brief "ivc": MLV search + IVC/NBTI co-optimization (Table 3).

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "opt/ivc.h"

namespace nbtisim::analysis {
namespace {

class IvcAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "ivc"; }

  std::string fingerprint(const Params& p) const override {
    return base_fingerprint(p) + ",pop" + std::to_string(p.population) + ",r" +
           std::to_string(p.max_rounds);
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    opt::MlvSearchParams mlv;
    mlv.population = p.population;
    mlv.max_rounds = p.max_rounds;
    mlv.seed = p.seed;
    mlv.n_threads = 0;  // shared pool; serial when inside a pool task
    const opt::IvcResult r =
        opt::evaluate_ivc(ctx.aging(), ctx.standby_leakage(), mlv, 4);
    return {{"worst_pct", r.worst_case_percent},
            {"best_mlv_pct", r.best().degradation_percent},
            {"best_mlv_leak_ua", 1e6 * r.best().leakage},
            {"mlv_spread_pct", r.mlv_spread_percent()},
            {"random_ref_pct", r.random_vector_percent},
            {"inc_bound_pct", r.best_case_percent},
            {"n_mlv", static_cast<double>(r.candidates.size())}};
  }
};

}  // namespace

std::unique_ptr<Analysis> make_ivc_analysis() {
  return std::make_unique<IvcAnalysis>();
}

}  // namespace nbtisim::analysis
