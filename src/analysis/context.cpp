#include "analysis/context.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "netlist/bench_io.h"
#include "netlist/generators.h"
#include "netlist/verilog_io.h"
#include "tech/units.h"

namespace nbtisim::analysis {

netlist::Netlist load_netlist_spec(const std::string& spec, bool cut_dffs) {
  if (spec.starts_with("dag:")) {
    int n_inputs = 0, n_gates = 0;
    long long seed = 0;
    if (std::sscanf(spec.c_str(), "dag:%dx%d@%lld", &n_inputs, &n_gates,
                    &seed) != 3 ||
        n_inputs < 2 || n_gates < 1 || seed < 0) {
      throw std::invalid_argument(
          "campaign: bad generator spec \"" + spec +
          "\" (expected dag:<inputs>x<gates>@<seed>)");
    }
    std::string name = spec;
    for (char& c : name) {
      if (c == ':' || c == '@') c = '_';
    }
    return netlist::make_random_dag(
        name, {.n_inputs = n_inputs, .n_outputs = std::max(2, n_inputs / 2),
               .n_gates = n_gates, .seed = static_cast<std::uint64_t>(seed),
               .locality = 0.75});
  }
  if (spec.ends_with(".v")) return netlist::load_verilog(spec);
  if (spec.find('/') != std::string::npos || spec.ends_with(".bench")) {
    std::ifstream probe(spec);
    if (!probe) throw std::runtime_error("campaign: cannot open " + spec);
    std::ostringstream ss;
    ss << probe.rdbuf();
    std::string name = spec;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name.erase(0, slash + 1);
    return netlist::parse_bench(ss.str(), name, {.cut_dffs = cut_dffs});
  }
  return netlist::iscas85_like(spec);
}

EvalContext ContextPool::context(const std::string& netlist_spec,
                                 const Condition& cond) {
  return EvalContext(this, netlist_spec, cond);
}

const netlist::Netlist& ContextPool::netlist_for(const std::string& nl_spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = netlists_.try_emplace(nl_spec);
  if (inserted) {
    it->second = std::make_shared<netlist::Netlist>(
        load_netlist_spec(nl_spec, cut_dffs_));
  }
  return *it->second;
}

const aging::AgingAnalyzer& ContextPool::analyzer_for(
    const std::string& nl_spec, const Condition& cond) {
  const std::string key = nl_spec + "|" + cond.label();
  const netlist::Netlist& nl = netlist_for(nl_spec);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = analyzers_.try_emplace(key);
  if (inserted) {
    aging::AgingConditions c;
    c.schedule = nbti::ModeSchedule::from_ras(cond.ras_active,
                                              cond.ras_standby, 1000.0,
                                              cond.t_active, cond.t_standby);
    c.total_time = cond.years * kSecondsPerYear;
    c.sp_vectors = params_.sp_vectors;
    c.seed = params_.seed;
    c.n_threads = 1;  // campaign parallelism is across tasks
    it->second = std::make_shared<aging::AgingAnalyzer>(nl, lib_, c);
  }
  return *it->second;
}

const leakage::LeakageAnalyzer& ContextPool::leakage_for(
    const std::string& nl_spec, const Condition& cond) {
  char key[64];
  std::snprintf(key, sizeof key, "|%g", cond.t_standby);
  const netlist::Netlist& nl = netlist_for(nl_spec);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = leakages_.try_emplace(nl_spec + key);
  if (inserted) {
    it->second = std::make_shared<leakage::LeakageAnalyzer>(nl, lib_,
                                                            cond.t_standby);
  }
  return *it->second;
}

double EvalContext::horizon() const { return cond_.years * kSecondsPerYear; }

}  // namespace nbtisim::analysis
