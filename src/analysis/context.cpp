#include "analysis/context.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "netlist/bench_io.h"
#include "netlist/generators.h"
#include "netlist/verilog_io.h"
#include "tech/units.h"

namespace nbtisim::analysis {

netlist::Netlist load_netlist_spec(const std::string& spec, bool cut_dffs) {
  if (spec.starts_with("dag:")) {
    int n_inputs = 0, n_gates = 0;
    long long seed = 0;
    if (std::sscanf(spec.c_str(), "dag:%dx%d@%lld", &n_inputs, &n_gates,
                    &seed) != 3 ||
        n_inputs < 2 || n_gates < 1 || seed < 0) {
      throw std::invalid_argument(
          "campaign: bad generator spec \"" + spec +
          "\" (expected dag:<inputs>x<gates>@<seed>)");
    }
    std::string name = spec;
    for (char& c : name) {
      if (c == ':' || c == '@') c = '_';
    }
    return netlist::make_random_dag(
        name, {.n_inputs = n_inputs, .n_outputs = std::max(2, n_inputs / 2),
               .n_gates = n_gates, .seed = static_cast<std::uint64_t>(seed),
               .locality = 0.75});
  }
  if (spec.starts_with("mult:") || spec.starts_with("alu:")) {
    const bool is_mult = spec.starts_with("mult:");
    int width = 0;
    if (std::sscanf(spec.c_str(), is_mult ? "mult:%d" : "alu:%d", &width) !=
            1 ||
        width < 2) {
      throw std::invalid_argument("campaign: bad generator spec \"" + spec +
                                  "\" (expected " +
                                  (is_mult ? "mult:<bits>" : "alu:<width>") +
                                  " with size >= 2)");
    }
    std::string name = spec;
    for (char& c : name) {
      if (c == ':' || c == '@') c = '_';
    }
    return is_mult ? netlist::make_multiplier(name, width)
                   : netlist::make_alu(name, width);
  }
  if (spec.ends_with(".v")) return netlist::load_verilog(spec);
  if (spec.find('/') != std::string::npos || spec.ends_with(".bench")) {
    std::ifstream probe(spec);
    if (!probe) throw std::runtime_error("campaign: cannot open " + spec);
    std::ostringstream ss;
    ss << probe.rdbuf();
    std::string name = spec;
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name.erase(0, slash + 1);
    return netlist::parse_bench(ss.str(), name, {.cut_dffs = cut_dffs});
  }
  return netlist::iscas85_like(spec);
}

EvalContext ContextPool::context(const std::string& netlist_spec,
                                 const Condition& cond) {
  return EvalContext(this, netlist_spec, cond);
}

namespace {

/// Fetches (or creates) the slot for \p key under \p mutex, then runs
/// \p build under the slot's own once_flag. Distinct keys build
/// concurrently; a throwing build resets the flag so a later caller
/// retries (std::call_once semantics).
template <typename T, typename Map, typename Build>
const T& fill_slot(std::mutex& mutex, Map& map, const std::string& key,
                   Build&& build) {
  std::shared_ptr<typename Map::mapped_type::element_type> slot;
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto [it, inserted] = map.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<typename Map::mapped_type::element_type>();
    }
    slot = it->second;
  }
  std::call_once(slot->once, [&] { slot->value = build(); });
  return *slot->value;
}

}  // namespace

const netlist::Netlist& ContextPool::netlist_for(const std::string& nl_spec) {
  return fill_slot<netlist::Netlist>(mutex_, netlists_, nl_spec, [&] {
    return std::make_shared<netlist::Netlist>(
        load_netlist_spec(nl_spec, cut_dffs_));
  });
}

const aging::AgingAnalyzer& ContextPool::analyzer_for(
    const std::string& nl_spec, const Condition& cond) {
  const std::string key = nl_spec + "|" + cond.label();
  const netlist::Netlist& nl = netlist_for(nl_spec);
  return fill_slot<aging::AgingAnalyzer>(mutex_, analyzers_, key, [&] {
    aging::AgingConditions c;
    c.schedule = nbti::ModeSchedule::from_ras(cond.ras_active,
                                              cond.ras_standby, 1000.0,
                                              cond.t_active, cond.t_standby);
    c.total_time = cond.years * kSecondsPerYear;
    c.sp_vectors = params_.sp_vectors;
    c.seed = params_.seed;
    c.n_threads = 0;  // shared pool; serial when inside a pool task
    return std::make_shared<aging::AgingAnalyzer>(nl, lib_, c);
  });
}

const leakage::LeakageAnalyzer& ContextPool::leakage_for(
    const std::string& nl_spec, const Condition& cond) {
  char key[64];
  std::snprintf(key, sizeof key, "|%g", cond.t_standby);
  const netlist::Netlist& nl = netlist_for(nl_spec);
  return fill_slot<leakage::LeakageAnalyzer>(
      mutex_, leakages_, nl_spec + key, [&] {
        return std::make_shared<leakage::LeakageAnalyzer>(nl, lib_,
                                                          cond.t_standby);
      });
}

double EvalContext::horizon() const { return cond_.years * kSecondsPerYear; }

}  // namespace nbtisim::analysis
