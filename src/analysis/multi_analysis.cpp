/// \file multi_analysis.cpp
/// \brief "multi": the NBTI + PBTI + HCI mechanism comparison as a grid
///        analysis — the registry port of the `nbtisim multi` CLI verb,
///        under the canonical worst-case (all-stressed) standby policy.

#include <algorithm>

#include "aging/multi.h"
#include "analysis/analysis.h"
#include "analysis/context.h"
#include "tech/units.h"

namespace nbtisim::analysis {
namespace {

class MultiAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "multi"; }

  std::string fingerprint(const Params& p) const override {
    return base_fingerprint(p) + ",clk" + fmt_g(p.clock_ghz) + ",pbti" +
           fmt_g(p.pbti_ratio);
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    aging::MultiAgingParams mp;
    mp.clock_hz = p.clock_ghz * 1e9;
    mp.pbti.ratio = p.pbti_ratio;
    const aging::MultiAgingReport r = aging::analyze_multi_mechanism(
        ctx.aging(), aging::StandbyPolicy::all_stressed(), mp);
    double max_p = 0.0, max_n = 0.0;
    for (double d : r.pmos_dvth) max_p = std::max(max_p, d);
    for (double d : r.nmos_dvth) max_n = std::max(max_n, d);
    return {{"fresh_ns", to_ns(r.fresh_delay)},
            {"nbti_pct", r.nbti_only_percent()},
            {"multi_pct", r.percent()},
            {"pmos_mv", to_mV(max_p)},
            {"nmos_mv", to_mV(max_n)}};
  }
};

}  // namespace

std::unique_ptr<Analysis> make_multi_analysis() {
  return std::make_unique<MultiAnalysis>();
}

}  // namespace nbtisim::analysis
