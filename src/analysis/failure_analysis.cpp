/// \file failure_analysis.cpp
/// \brief "failure": the multi-mechanism failure suite as a grid analysis —
///        per-mechanism Weibull-aggregated MTTFs, the all-mechanism system
///        MTTF, and the system failure curve samples, under the canonical
///        worst-case (all-stressed) standby policy.
///
/// MTTF metrics are reported in years and clamped to 10x the crossing
/// window: a mechanism that never fails inside the window would otherwise
/// put +infinity in the store row, which the JSONL/summarize path cannot
/// represent.  The clamp value is recognizable (an exact decade above the
/// window) and sorts correctly against real lifetimes.

#include <algorithm>
#include <cmath>

#include "aging/failure.h"
#include "analysis/analysis.h"
#include "analysis/context.h"

namespace nbtisim::analysis {
namespace {

class FailureAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "failure"; }

  std::string fingerprint(const Params& p) const override {
    std::string fp = base_fingerprint(p) + ",clk" + fmt_g(p.clock_ghz) +
                     ",pbti" + fmt_g(p.pbti_ratio) + ",dvth" +
                     fmt_g(p.fail_dvth) + ",beta" + fmt_g(p.weibull_beta) +
                     ",pts" + std::to_string(p.fail_points) + ",ymax" +
                     fmt_g(p.fail_max_years) + ",curve[";
    for (std::size_t i = 0; i < p.fail_curve_years.size(); ++i) {
      if (i > 0) fp += ":";
      fp += fmt_g(p.fail_curve_years[i]);
    }
    fp += "]";
    // Appended only when enabled so pre-table store rows keep their hashes.
    if (p.use_dvth_table) fp += ",table" + std::to_string(p.table_ppd);
    return fp;
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    aging::FailureParams fp;
    fp.multi.clock_hz = p.clock_ghz * 1e9;
    fp.multi.pbti.ratio = p.pbti_ratio;
    fp.fail_dvth = p.fail_dvth;
    fp.max_years = p.fail_max_years;
    fp.time_points = p.fail_points;
    fp.weibull_beta = p.weibull_beta;
    fp.curve_years = p.fail_curve_years;
    fp.n_threads = 0;  // shared pool; serial when inside a pool task
    fp.use_dvth_table = p.use_dvth_table;
    fp.table_points_per_decade = p.table_ppd;
    const aging::FailureReport r = aging::analyze_failure(
        ctx.aging(), aging::StandbyPolicy::all_stressed(), fp);

    const double cap = 10.0 * p.fail_max_years;
    auto clamp = [cap](double years) {
      return std::isfinite(years) ? std::min(years, cap) : cap;
    };
    Metrics m;
    m.reserve(r.mechanisms.size() + 2 + r.failure_curve.size());
    for (const aging::MechanismMttf& mech : r.mechanisms) {
      m.emplace_back("mttf_" + mech.name + "_years",
                     clamp(mech.system_mttf));
    }
    m.emplace_back("system_mttf_years", clamp(r.system_mttf));
    for (const auto& [years, prob] : r.failure_curve) {
      m.emplace_back("fail_at_y" + fmt_g(years), prob);
    }
    // The sampled system failure curve as a structured payload alongside the
    // per-year scalar samples above.
    common::json::Array curve;
    curve.reserve(r.failure_curve.size());
    for (const auto& [years, prob] : r.failure_curve) {
      curve.push_back(common::json::Value(common::json::Object{
          {"years", common::json::Value(years)},
          {"p", common::json::Value(prob)}}));
    }
    m.emplace_back("curve", common::json::Value(std::move(curve)));
    return m;
  }
};

}  // namespace

std::unique_ptr<Analysis> make_failure_analysis() {
  return std::make_unique<FailureAnalysis>();
}

}  // namespace nbtisim::analysis
