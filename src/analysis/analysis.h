/// \file analysis.h
/// \brief The analysis registry: every paper technique as a uniform,
///        campaign-sweepable grid analysis.
///
/// The paper's evaluation is one big grid — benchmarks × (RAS, T_active,
/// T_standby) × technique — and related mitigation studies (OptGM-style
/// comparisons, multiplier hardening under NBTI + process variation) evaluate
/// techniques side-by-side under identical conditions. This layer gives that
/// grid a single extension point: an `Analysis` maps one `EvalContext`
/// (the shared per-(netlist, condition) cached state) to a flat metric list,
/// and the `AnalysisRegistry` maps canonical names to implementations.
///
/// Adding a technique is one self-registering file: implement `Analysis`,
/// expose a factory, and seed it in register_builtin_analyses() — the
/// campaign grid, task hashing, CLI listing and summarize columns all pick
/// it up without touching the engine.
///
/// Hashing contract: fingerprint() returns exactly the Params fields the
/// analysis consumes, so a campaign store row is invalidated when — and only
/// when — a parameter that could change its result changes. Shared pipeline
/// knobs (sp_vectors, seed) appear in every fingerprint; technique knobs
/// (e.g. sizing_step) appear only in their technique's.
///
/// Determinism contract: run() must be bit-identical for every scheduler
/// thread count. Inner engines are invoked with n_threads = 0 — the shared
/// work pool, which runs them serially when the task already executes on a
/// pool worker (see common/pool.h) — and every inner engine is itself
/// bit-identical for any thread count, so this holds by construction;
/// registry iteration (std::map) and metric order (fixed per analysis) are
/// deterministic too.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json.h"

namespace nbtisim::analysis {

/// One operating scenario: stress schedule + lifetime horizon.
struct Condition {
  double ras_active = 1.0;
  double ras_standby = 9.0;
  double t_active = 400.0;   ///< [K]
  double t_standby = 330.0;  ///< [K]
  double years = 10.0;

  /// Stable human-readable form, e.g. "ras1:9,ta400,ts330,y10" — part of
  /// every task key.
  std::string label() const;
};

/// Engine knobs shared by every task of a campaign. Each analysis hashes
/// only the fields it consumes (see fingerprint()).
struct Params {
  // Shared pipeline knobs — consumed by every analysis through the
  // AgingAnalyzer's signal-statistics pass.
  int sp_vectors = 1024;      ///< active-mode Monte-Carlo vectors
  std::uint64_t seed = 7;
  // lifetime
  int samples = 100;          ///< lifetime Monte-Carlo samples
  double spec_margin = 5.0;   ///< lifetime failure margin [%]
  // ivc
  int population = 32;        ///< MLV search population
  int max_rounds = 8;         ///< MLV search rounds
  // st
  double st_sigma = 0.05;     ///< sleep-transistor time-0 penalty budget
  // sizing
  double sizing_margin = 3.0; ///< aged-delay spec margin over fresh [%]
  double sizing_step = 0.5;   ///< multiplicative step added per move
  double sizing_max_size = 4.0;  ///< per-gate size cap
  int sizing_max_moves = 600;    ///< greedy iteration cap
  /// Slack window for multi-path sizing [% of aged critical delay];
  /// 0 keeps the classic single-critical-path loop.
  double sizing_slack_window = 0.0;
  int sizing_moves_per_round = 1;  ///< committed moves per round (window mode)
  // derate
  std::vector<double> derate_years = {1.0, 2.0, 3.0, 5.0, 7.0, 10.0};
  // pareto
  int pareto_samples = 64;    ///< initial random standby vectors
  int pareto_rounds = 3;      ///< bit-flip local-search rounds
  int pareto_flips = 8;       ///< flips tried per front member
  // criticality
  int crit_samples = 300;     ///< criticality Monte-Carlo samples
  double crit_sigma = 0.015;  ///< per-gate Vth variation [V]
  // multi + failure (shared wear-out knobs)
  double clock_ghz = 1.0;     ///< HCI / EM switching clock [GHz]
  double pbti_ratio = 0.35;   ///< PBTI/NBTI K_v ratio
  // thermal
  double thermal_power = 60.0;        ///< dynamic power [W]
  double thermal_replication = 1e5;   ///< identical blocks on the die
  double thermal_runaway_k = 1000.0;  ///< runaway declaration threshold [K]
  // failure
  double fail_dvth = 0.05;       ///< wear-out failure threshold [V]
  double fail_max_years = 100.0; ///< crossing-search window [years]
  int fail_points = 40;          ///< geometric time-grid points
  double weibull_beta = 2.0;     ///< unit-lifetime Weibull shape
  std::vector<double> fail_curve_years = {1.0, 2.0, 5.0, 10.0, 20.0, 30.0};
  // dvth table (lifetime + failure + criticality interpolation substrate)
  bool use_dvth_table = false;   ///< sample dVth(t) grids from the cached
                                 ///< interpolated table instead of exact
                                 ///< per-point device-model sweeps
  int table_ppd = 16;            ///< table points per decade when enabled
};

/// Ordered metric list — the order is the JSONL member order, so it must be
/// deterministic per analysis kind. Values are JSON nodes: most entries are
/// plain scalars (a double converts implicitly), but an analysis may attach
/// structured payloads — nested arrays/objects such as a full Pareto front,
/// a per-gate criticality vector, or a failure curve — alongside its scalar
/// summary. Scalar entries keep the legacy flat name→double contract;
/// summarize and the store index consider only scalar (number) entries.
using Metrics = std::vector<std::pair<std::string, common::json::Value>>;

class EvalContext;

/// One paper technique, evaluated on one grid cell.
class Analysis {
 public:
  virtual ~Analysis() = default;

  /// Canonical lowercase name — the spec/CLI/store identifier.
  virtual std::string_view name() const = 0;

  /// Canonical key fragment over exactly the Params fields this analysis
  /// consumes, e.g. "sp1024,seed7,mc100,margin5". Part of the task content
  /// hash: changing a consumed field must change it; changing any other
  /// field must not.
  virtual std::string fingerprint(const Params& p) const = 0;

  /// Evaluates the technique on \p ctx. Must be bit-identical for every
  /// campaign thread count (see file comment).
  virtual Metrics run(EvalContext& ctx, const Params& p) const = 0;
};

/// Open name → Analysis map with deterministic (sorted) iteration order.
class AnalysisRegistry {
 public:
  /// The process-wide registry, seeded once with the built-in analyses.
  /// Thread-safe to read; add() further entries only during
  /// single-threaded startup.
  static AnalysisRegistry& global();

  /// \throws std::invalid_argument when the name is already registered
  void add(std::unique_ptr<Analysis> a);

  /// nullptr when unknown.
  const Analysis* find(std::string_view name) const;

  /// \throws std::invalid_argument for unknown names, listing the known ones
  const Analysis& at(std::string_view name) const;

  /// All registered names, sorted.
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::unique_ptr<Analysis>, std::less<>> by_name_;
};

// Built-in analysis factories — one per self-registering file.
std::unique_ptr<Analysis> make_aging_analysis();        // aging_analysis.cpp
std::unique_ptr<Analysis> make_ivc_analysis();          // ivc_analysis.cpp
std::unique_ptr<Analysis> make_st_analysis();           // st_analysis.cpp
std::unique_ptr<Analysis> make_lifetime_analysis();     // lifetime_analysis.cpp
std::unique_ptr<Analysis> make_sizing_analysis();       // sizing_analysis.cpp
std::unique_ptr<Analysis> make_derate_analysis();       // derate_analysis.cpp
std::unique_ptr<Analysis> make_pareto_analysis();       // pareto_analysis.cpp
std::unique_ptr<Analysis> make_criticality_analysis();  // criticality_analysis.cpp
std::unique_ptr<Analysis> make_multi_analysis();        // multi_analysis.cpp
std::unique_ptr<Analysis> make_thermal_analysis();      // thermal_analysis.cpp
std::unique_ptr<Analysis> make_failure_analysis();      // failure_analysis.cpp

/// Seeds \p r with the built-ins (what global() does once).
/// \throws std::invalid_argument when any name is already present
void register_builtin_analyses(AnalysisRegistry& r);

/// %g-formatted double for stable, compact fingerprints ("330", "0.05").
std::string fmt_g(double v);

/// Shared-knob prefix every fingerprint starts with: "sp<N>,seed<S>".
std::string base_fingerprint(const Params& p);

}  // namespace nbtisim::analysis
