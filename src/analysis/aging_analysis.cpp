/// \file aging_analysis.cpp
/// \brief "aging": degradation under the three standby policies + a
///        half-horizon series point (Fig. 5 / Table 1 style).

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "tech/units.h"

namespace nbtisim::analysis {
namespace {

class AgingAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "aging"; }

  std::string fingerprint(const Params& p) const override {
    return base_fingerprint(p);
  }

  Metrics run(EvalContext& ctx, const Params&) const override {
    const aging::AgingAnalyzer& an = ctx.aging();
    const auto worst = an.analyze(aging::StandbyPolicy::all_stressed());
    const auto best = an.analyze(aging::StandbyPolicy::all_relaxed());
    const std::vector<bool> zeros(an.sta().netlist().num_inputs(), false);
    const auto vec = an.analyze(aging::StandbyPolicy::from_vector(zeros));
    // One mid-horizon series point turns the row into a 2-point degradation
    // series (full curves stay the job of bench_fig5 etc.).
    const auto half = an.analyze(aging::StandbyPolicy::all_stressed(),
                                 an.conditions().total_time / 2.0);
    return {{"fresh_ns", to_ns(worst.fresh_delay)},
            {"aged_worst_ns", to_ns(worst.aged_delay)},
            {"worst_pct", worst.percent()},
            {"worst_half_horizon_pct", half.percent()},
            {"vector0_pct", vec.percent()},
            {"best_pct", best.percent()}};
  }
};

}  // namespace

std::unique_ptr<Analysis> make_aging_analysis() {
  return std::make_unique<AgingAnalysis>();
}

}  // namespace nbtisim::analysis
