/// \file lifetime_analysis.cpp
/// \brief "lifetime": Monte-Carlo time-to-failure distribution (Fig. 12
///        inverse).

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "tech/units.h"
#include "variation/lifetime.h"

namespace nbtisim::analysis {
namespace {

class LifetimeAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "lifetime"; }

  std::string fingerprint(const Params& p) const override {
    std::string fp = base_fingerprint(p) + ",mc" + std::to_string(p.samples) +
                     ",margin" + fmt_g(p.spec_margin);
    // Appended only when enabled so pre-table store rows keep their hashes.
    if (p.use_dvth_table) fp += ",table" + std::to_string(p.table_ppd);
    return fp;
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    variation::LifetimeParams lt;
    lt.spec_margin_percent = p.spec_margin;
    lt.samples = p.samples;
    lt.seed = p.seed;
    lt.n_threads = 0;  // shared pool; serial when inside a pool task
    lt.use_dvth_table = p.use_dvth_table;
    lt.table_points_per_decade = p.table_ppd;
    const variation::LifetimeResult r = variation::lifetime_distribution(
        ctx.aging(), aging::StandbyPolicy::all_stressed(), lt);
    return {{"median_years", r.quantile(0.5) / kSecondsPerYear},
            {"p01_years", r.quantile(0.01) / kSecondsPerYear},
            {"fail_at_horizon_pct",
             100.0 * r.failure_fraction_at(ctx.horizon())},
            {"survivor_pct", 100.0 * r.survivor_fraction()}};
  }
};

}  // namespace

std::unique_ptr<Analysis> make_lifetime_analysis() {
  return std::make_unique<LifetimeAnalysis>();
}

}  // namespace nbtisim::analysis
