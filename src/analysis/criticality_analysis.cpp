/// \file criticality_analysis.cpp
/// \brief "criticality": per-gate critical-path probability under process
///        variation of the AGED circuit (worst-case standby policy at the
///        condition's horizon) — how concentrated the timing risk is that
///        the sizing / dual-Vth passes must protect.

#include <algorithm>

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "variation/criticality.h"

namespace nbtisim::analysis {
namespace {

class CriticalityAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "criticality"; }

  std::string fingerprint(const Params& p) const override {
    std::string fp = base_fingerprint(p) + ",cs" +
                     std::to_string(p.crit_samples) + ",csig" +
                     fmt_g(p.crit_sigma);
    // Appended only when enabled so pre-table store rows keep their hashes.
    // The table hit is an exact back-node sample, but the knob still selects
    // a different evaluation path, so it participates in the task hash.
    if (p.use_dvth_table) fp += ",table" + std::to_string(p.table_ppd);
    return fp;
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    variation::CriticalityParams cp;
    cp.sigma_vth = p.crit_sigma;
    cp.samples = p.crit_samples;
    cp.seed = p.seed;
    cp.aged = true;  // criticality of the circuit the condition produces
    cp.total_time = ctx.horizon();
    cp.n_threads = 0;  // shared pool; serial when inside a pool task
    cp.use_dvth_table = p.use_dvth_table;
    cp.table_points_per_decade = p.table_ppd;
    const variation::CriticalityResult r =
        variation::gate_criticality(ctx.aging(), cp);
    const double max_prob =
        r.probability.empty()
            ? 0.0
            : *std::max_element(r.probability.begin(), r.probability.end());
    // Per-gate criticality vector (topological gate order) as a structured
    // payload alongside the scalar summary.
    common::json::Array gate_prob;
    gate_prob.reserve(r.probability.size());
    for (double prob : r.probability) {
      gate_prob.push_back(common::json::Value(prob));
    }
    return {{"distinct_paths", static_cast<double>(r.distinct_paths)},
            {"critical_gates", static_cast<double>(r.critical_set().size())},
            {"max_prob", max_prob},
            {"gate_prob", common::json::Value(std::move(gate_prob))}};
  }
};

}  // namespace

std::unique_ptr<Analysis> make_criticality_analysis() {
  return std::make_unique<CriticalityAnalysis>();
}

}  // namespace nbtisim::analysis
