/// \file st_analysis.cpp
/// \brief "st": sleep-transistor insertion + NBTI-aware sizing (Figs. 9/11).

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "opt/sleep_transistor.h"
#include "tech/units.h"

namespace nbtisim::analysis {
namespace {

class StAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "st"; }

  std::string fingerprint(const Params& p) const override {
    return base_fingerprint(p) + ",sig" + fmt_g(p.st_sigma);
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    const aging::AgingAnalyzer& an = ctx.aging();
    opt::StParams st;
    st.sigma = p.st_sigma;
    const double horizon = an.conditions().total_time;
    const auto with_st = opt::st_circuit_degradation_series(
        an, opt::StStyle::Header, st, horizon, horizon * 1.01, 2);
    const auto without =
        opt::no_st_degradation_series(an, horizon, horizon * 1.01, 2);
    const opt::StSizing sizing = opt::size_sleep_transistor(
        an.conditions().rd, an.conditions().schedule, horizon, 1e-3, st);
    return {{"st_total_pct", with_st.front().total_percent},
            {"st_logic_pct", with_st.front().logic_percent},
            {"st_drop_pct", with_st.front().st_percent},
            {"no_st_pct", without.front().total_percent},
            {"wl_base", sizing.wl_base},
            {"wl_nbti_aware", sizing.wl_nbti_aware},
            {"wl_increase_pct", sizing.wl_increase_percent()},
            {"st_dvth_mv", to_mV(sizing.dvth_st)}};
  }
};

}  // namespace

std::unique_ptr<Analysis> make_st_analysis() {
  return std::make_unique<StAnalysis>();
}

}  // namespace nbtisim::analysis
