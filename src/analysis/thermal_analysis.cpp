/// \file thermal_analysis.cpp
/// \brief "thermal": the electrothermal operating-point solver as a grid
///        analysis — the registry port of the `nbtisim thermal` CLI verb.
///
/// Solves the leakage/temperature fixpoint of a die of
/// Params::thermal_replication copies of the cell's circuit, with the
/// standby inputs held all-0 (the leakage state).  Consumes none of the
/// shared Monte-Carlo knobs — the leakage state is a deterministic logic
/// evaluation — so its fingerprint carries only the thermal fields, and
/// sp_vectors/seed changes leave its store rows valid.

#include <cmath>
#include <vector>

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "thermal/electrothermal.h"

namespace nbtisim::analysis {
namespace {

class ThermalAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "thermal"; }

  std::string fingerprint(const Params& p) const override {
    return "pw" + fmt_g(p.thermal_power) + ",rep" +
           fmt_g(p.thermal_replication) + ",run" + fmt_g(p.thermal_runaway_k);
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    const netlist::Netlist& nl = ctx.netlist();
    thermal::ElectrothermalParams ep;
    ep.dynamic_power_w = p.thermal_power;
    ep.replication = p.thermal_replication;
    ep.runaway_temp_k = p.thermal_runaway_k;
    const thermal::RcThermalModel model;
    const thermal::OperatingPoint op = thermal::solve_operating_point(
        nl, ctx.library(), model, std::vector<bool>(nl.num_inputs(), false),
        ep);
    // A runaway iterate can be +inf; clamp so the store row stays numeric.
    const double temp = std::isfinite(op.temperature_k)
                            ? op.temperature_k
                            : p.thermal_runaway_k;
    return {{"temp_k", temp},
            {"leakage_w", op.leakage_w},
            {"iterations", static_cast<double>(op.iterations)},
            {"converged", op.converged ? 1.0 : 0.0}};
  }
};

}  // namespace

std::unique_ptr<Analysis> make_thermal_analysis() {
  return std::make_unique<ThermalAnalysis>();
}

}  // namespace nbtisim::analysis
