/// \file sizing_analysis.cpp
/// \brief "sizing": NBTI-aware gate sizing to an aged-delay spec (Paul-style
///        baseline), as a sweepable grid analysis — area overhead vs the
///        guard-band alternative per (netlist, condition).

#include "analysis/analysis.h"
#include "analysis/context.h"
#include "opt/sizing.h"
#include "tech/units.h"

namespace nbtisim::analysis {
namespace {

class SizingAnalysis final : public Analysis {
 public:
  std::string_view name() const override { return "sizing"; }

  std::string fingerprint(const Params& p) const override {
    std::string fp = base_fingerprint(p) + ",margin" + fmt_g(p.sizing_margin) +
                     ",step" + fmt_g(p.sizing_step) + ",cap" +
                     fmt_g(p.sizing_max_size) + ",moves" +
                     std::to_string(p.sizing_max_moves);
    // Multi-path knobs appear only when non-default so every pre-existing
    // campaign key (and its cached result) stays addressable.
    if (p.sizing_slack_window != 0.0) {
      fp += ",window" + fmt_g(p.sizing_slack_window);
    }
    if (p.sizing_moves_per_round != 1) {
      fp += ",k" + std::to_string(p.sizing_moves_per_round);
    }
    return fp;
  }

  Metrics run(EvalContext& ctx, const Params& p) const override {
    opt::SizingParams sp;
    sp.spec_margin_percent = p.sizing_margin;
    sp.size_step = p.sizing_step;
    sp.max_size = p.sizing_max_size;
    sp.max_moves = p.sizing_max_moves;
    sp.n_threads = 0;  // shared pool; serial when inside a pool task
    sp.slack_window_percent = p.sizing_slack_window;
    sp.moves_per_round = p.sizing_moves_per_round;
    const opt::SizingResult r = opt::size_for_lifetime(
        ctx.aging(), aging::StandbyPolicy::all_stressed(), sp);
    return {{"spec_ns", to_ns(r.spec)},
            {"aged_before_ns", to_ns(r.aged_before)},
            {"aged_after_ns", to_ns(r.aged_after)},
            {"area_overhead_pct", r.area_overhead_percent()},
            {"guard_band_pct", r.guard_band_percent()},
            {"moves", static_cast<double>(r.moves)},
            {"rounds", static_cast<double>(r.rounds)},
            {"met", r.met ? 1.0 : 0.0}};
  }
};

}  // namespace

std::unique_ptr<Analysis> make_sizing_analysis() {
  return std::make_unique<SizingAnalysis>();
}

}  // namespace nbtisim::analysis
