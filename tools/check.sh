#!/usr/bin/env bash
# Full pre-merge check: build + test every CMake preset that gates a merge.
#
#   tools/check.sh            # default + sanitize + tsan-determinism
#   tools/check.sh --fast     # default preset only (full ctest)
#
# Presets (CMakePresets.json):
#   default           RelWithDebInfo, full ctest suite
#   sanitize          ASan build, `ctest -L determinism` slice
#   tsan-determinism  TSan build, determinism slice via its test preset
#                     (bit-identity across thread counts must hold data-race
#                     clean — the work pool's core contract)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() {
  echo "== $*" >&2
  "$@"
}

run cmake --preset default
run cmake --build --preset default -j "$JOBS"
run ctest --preset default -j "$JOBS"

if [[ "$FAST" == 1 ]]; then
  echo "check.sh: fast mode — skipped sanitize and tsan-determinism presets"
  exit 0
fi

run cmake --preset sanitize
run cmake --build --preset sanitize -j "$JOBS"
run ctest --test-dir build-asan -L determinism -j "$JOBS" --output-on-failure

run cmake --preset tsan-determinism
run cmake --build --preset tsan-determinism -j "$JOBS"
run ctest --preset tsan-determinism -j "$JOBS"

echo "check.sh: all presets green"
