#!/usr/bin/env bash
# Full pre-merge check: build + test every CMake preset that gates a merge.
#
#   tools/check.sh            # default + sanitize + tsan-determinism
#   tools/check.sh --fast     # default preset only (full ctest)
#
# Presets (CMakePresets.json):
#   default           RelWithDebInfo, full ctest suite
#   sanitize          ASan build, `ctest -L determinism` slice
#   tsan-determinism  TSan build, determinism slice via its test preset
#                     (bit-identity across thread counts must hold data-race
#                     clean — the work pool's core contract)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
FAST=0
[[ "${1:-}" == "--fast" ]] && FAST=1

run() {
  echo "== $*" >&2
  "$@"
}

run cmake --preset default
run cmake --build --preset default -j "$JOBS"
run ctest --preset default -j "$JOBS"

# Query/serve smoke: a tiny campaign through the indexed `campaign query`
# path and the stdio server, diffed against golden transcripts (byte
# equality IS the contract — stores and query answers are deterministic).
QSMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$QSMOKE_DIR"' EXIT
NBTISIM=build/src/tools/nbtisim
run "$NBTISIM" campaign run examples/campaign_smoke.json \
  --out "$QSMOKE_DIR/results.jsonl"
"$NBTISIM" campaign query examples/campaign_smoke.json \
  --out "$QSMOKE_DIR/results.jsonl" \
  --query-file examples/campaign_query.json > "$QSMOKE_DIR/query.md"
run diff -u tools/golden/campaign_query.md "$QSMOKE_DIR/query.md"
printf '%s\n%s\n' \
  '{"where":{"analysis":"st"},"select":["netlist","t_standby","st_total_pct"]}' \
  '{"agg":{"op":"count","by":["netlist","analysis"]}}' \
  | "$NBTISIM" campaign serve examples/campaign_smoke.json \
      --out "$QSMOKE_DIR/results.jsonl" 2>/dev/null > "$QSMOKE_DIR/serve.txt"
run diff -u tools/golden/campaign_serve.txt "$QSMOKE_DIR/serve.txt"
echo "check.sh: query/serve smoke matches golden transcripts"

# Aging bench schema smoke: write BENCH_aging.json (timings and all — the
# numbers vary per machine, the key set must not) and diff its sorted JSON
# key set against the expected list.  Catches silently dropped or renamed
# bench cases/fields — e.g. the SoA kernel or ΔVth-table sections going
# missing — without pinning machine-dependent timings.
BENCH_BIN="$PWD/build/bench/bench_perf_micro"
(cd "$QSMOKE_DIR" && run "$BENCH_BIN" --aging-json-only)
grep -o '"[A-Za-z_0-9]*":' "$QSMOKE_DIR/BENCH_aging.json" | sort -u \
  > "$QSMOKE_DIR/bench_aging_keys.txt"
run diff -u tools/golden/bench_aging_keys.txt "$QSMOKE_DIR/bench_aging_keys.txt"
echo "check.sh: BENCH_aging.json key set matches tools/golden/bench_aging_keys.txt"

# Incremental-STA bench smoke: same key-set contract for BENCH_sta.json,
# plus a hard gate on the bit_identical flags — the incremental engine must
# agree with the full forward pass at every scale, every run.
(cd "$QSMOKE_DIR" && run "$BENCH_BIN" --sta-json-only)
grep -o '"[A-Za-z_0-9]*":' "$QSMOKE_DIR/BENCH_sta.json" | sort -u \
  > "$QSMOKE_DIR/bench_sta_keys.txt"
run diff -u tools/golden/bench_sta_keys.txt "$QSMOKE_DIR/bench_sta_keys.txt"
if grep -q '"bit_identical": false' "$QSMOKE_DIR/BENCH_sta.json"; then
  echo "check.sh: BENCH_sta.json reports a full-vs-incremental MISMATCH" >&2
  exit 1
fi
echo "check.sh: BENCH_sta.json key set matches tools/golden/bench_sta_keys.txt"

if [[ "$FAST" == 1 ]]; then
  echo "check.sh: fast mode — skipped sanitize and tsan-determinism presets"
  exit 0
fi

run cmake --preset sanitize
run cmake --build --preset sanitize -j "$JOBS"
run ctest --test-dir build-asan -L determinism -j "$JOBS" --output-on-failure

run cmake --preset tsan-determinism
run cmake --build --preset tsan-determinism -j "$JOBS"
run ctest --preset tsan-determinism -j "$JOBS"
# The differential suite (SoA kernel vs scalar model, ΔVth table vs exact
# recursion) is part of the determinism label above; run it by name too so
# a label regression can't silently drop it from the TSan gate.
run ctest --test-dir build-tsan -R "Differential" -j "$JOBS" --output-on-failure

echo "check.sh: all presets green"
