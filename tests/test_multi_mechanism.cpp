// Unit tests for PBTI/HCI models (src/nbti/other_mechanisms.*) and the
// multi-mechanism circuit analysis (src/aging/multi.*).

#include "aging/multi.h"

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/generators.h"
#include "tech/units.h"

namespace nbtisim {
namespace {

class MechanismTest : public ::testing::Test {
 protected:
  nbti::RdParams rd_;
  nbti::ModeSchedule sched_ =
      nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
};

TEST_F(MechanismTest, PbtiIsAFractionOfNbti) {
  const nbti::PbtiParams pbti{.ratio = 0.35};
  const double p = nbti::pbti_delta_vth(rd_, pbti, 0.5, true, sched_,
                                        kTenYears);
  // The equivalent NBTI device (stress prob 0.5, stressed standby).
  const nbti::DeviceAging model(rd_);
  const nbti::DeviceStress nbti_stress{0.5, nbti::StandbyMode::Stressed, 1.0,
                                       0.22};
  const double n = model.delta_vth(nbti_stress, sched_, kTenYears);
  EXPECT_NEAR(p / n, 0.35, 1e-9);
}

TEST_F(MechanismTest, PbtiStressPolarityIsInverted) {
  const nbti::PbtiParams pbti;
  // Gate mostly HIGH ages the NMOS more than gate mostly LOW.
  const double high = nbti::pbti_delta_vth(rd_, pbti, 0.9, true, sched_, 3e8);
  const double low = nbti::pbti_delta_vth(rd_, pbti, 0.1, false, sched_, 3e8);
  EXPECT_GT(high, low);
}

TEST_F(MechanismTest, PbtiRejectsNegativeRatio) {
  EXPECT_THROW(nbti::pbti_delta_vth(rd_, {.ratio = -1.0}, 0.5, true, sched_,
                                    1e6),
               std::invalid_argument);
}

TEST_F(MechanismTest, HciGrowsWithActivityAndTime) {
  const nbti::HciParams hci;
  const double lo = nbti::hci_delta_vth(hci, 0.1, 1e9, sched_, kTenYears);
  const double hi = nbti::hci_delta_vth(hci, 0.4, 1e9, sched_, kTenYears);
  EXPECT_GT(hi, lo);
  const double later = nbti::hci_delta_vth(hci, 0.1, 1e9, sched_, 4 * kTenYears);
  EXPECT_NEAR(later / lo, 2.0, 1e-9);  // sqrt law
}

TEST_F(MechanismTest, HciMagnitudeBand) {
  // Calibration: ~10 mV-class at 10 years, 1 GHz, typical activity.
  const nbti::HciParams hci;
  const double d = nbti::hci_delta_vth(hci, 0.2, 1e9, sched_, kTenYears);
  EXPECT_GT(to_mV(d), 2.0);
  EXPECT_LT(to_mV(d), 30.0);
}

TEST_F(MechanismTest, HciZeroWithoutSwitching) {
  const nbti::HciParams hci;
  EXPECT_EQ(nbti::hci_delta_vth(hci, 0.0, 1e9, sched_, kTenYears), 0.0);
  EXPECT_EQ(nbti::hci_delta_vth(hci, 0.2, 0.0, sched_, kTenYears), 0.0);
  EXPECT_EQ(nbti::hci_delta_vth(hci, 0.2, 1e9, sched_, 0.0), 0.0);
}

TEST_F(MechanismTest, HciRejectsBadInput) {
  const nbti::HciParams hci;
  EXPECT_THROW(nbti::hci_delta_vth(hci, 1.5, 1e9, sched_, 1e6),
               std::invalid_argument);
  EXPECT_THROW(nbti::hci_delta_vth(hci, 0.5, 1e9, sched_, -1.0),
               std::invalid_argument);
}

TEST_F(MechanismTest, HciColderIsWorse) {
  nbti::HciParams hci;
  const nbti::ModeSchedule cold =
      nbti::ModeSchedule::from_ras(1, 9, 1000.0, 350.0, 330.0);
  const nbti::ModeSchedule hot =
      nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  EXPECT_GT(nbti::hci_delta_vth(hci, 0.2, 1e9, cold, kTenYears),
            nbti::hci_delta_vth(hci, 0.2, 1e9, hot, kTenYears));
}

TEST_F(MechanismTest, TddbCalibratedNearTwentyFiveYearsAtNominal) {
  const nbti::TddbParams tddb;
  const double years = nbti::tddb_mttf(tddb, 1.0, 400.0) / kSecondsPerYear;
  EXPECT_GT(years, 15.0);
  EXPECT_LT(years, 40.0);
}

TEST_F(MechanismTest, TddbAcceleratesWithVoltageAndTemperature) {
  const nbti::TddbParams tddb;
  EXPECT_LT(nbti::tddb_mttf(tddb, 1.2, 400.0),
            nbti::tddb_mttf(tddb, 1.0, 400.0));
  EXPECT_LT(nbti::tddb_mttf(tddb, 1.0, 430.0),
            nbti::tddb_mttf(tddb, 1.0, 400.0));
}

TEST_F(MechanismTest, TddbRejectsBadInput) {
  const nbti::TddbParams tddb;
  EXPECT_THROW(nbti::tddb_mttf(tddb, 0.0, 400.0), std::invalid_argument);
  EXPECT_THROW(nbti::tddb_mttf(tddb, 1.0, -10.0), std::invalid_argument);
  EXPECT_THROW(nbti::tddb_mttf({.scale_s = 0.0}, 1.0, 400.0),
               std::invalid_argument);
}

TEST_F(MechanismTest, EmFollowsBlacksEquation) {
  const nbti::EmParams em;
  // J^-n: doubling the current with n = 2 quarters the MTTF.
  const double base = nbti::em_mttf(em, em.ref_current_a, 400.0);
  const double doubled = nbti::em_mttf(em, 2.0 * em.ref_current_a, 400.0);
  EXPECT_NEAR(base / doubled, 4.0, 1e-9);
  // exp(Ea/kT): the exact Arrhenius ratio between two temperatures.
  const double hot = nbti::em_mttf(em, em.ref_current_a, 430.0);
  const double expected =
      std::exp(em.ea / (kBoltzmannEv * 400.0) - em.ea / (kBoltzmannEv * 430.0));
  EXPECT_NEAR(base / hot, expected, 1e-9 * expected);
}

TEST_F(MechanismTest, EmCalibratedNearTwentyYearsAtReference) {
  const nbti::EmParams em;
  const double years =
      nbti::em_mttf(em, em.ref_current_a, 400.0) / kSecondsPerYear;
  EXPECT_GT(years, 10.0);
  EXPECT_LT(years, 40.0);
}

TEST_F(MechanismTest, EmZeroCurrentNeverFails) {
  const nbti::EmParams em;
  EXPECT_TRUE(std::isinf(nbti::em_mttf(em, 0.0, 400.0)));
}

TEST_F(MechanismTest, EmRejectsBadInput) {
  const nbti::EmParams em;
  EXPECT_THROW(nbti::em_mttf(em, -1e-6, 400.0), std::invalid_argument);
  EXPECT_THROW(nbti::em_mttf(em, 1e-6, 0.0), std::invalid_argument);
  EXPECT_THROW(nbti::em_mttf({.ref_current_a = 0.0}, 1e-6, 400.0),
               std::invalid_argument);
}

class MultiMechanismTest : public ::testing::Test {
 protected:
  MultiMechanismTest() : c432_(netlist::iscas85_like("c432")) {
    cond_.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
    cond_.sp_vectors = 512;
    analyzer_.emplace(c432_, lib_, cond_);
  }

  tech::Library lib_;
  netlist::Netlist c432_;
  aging::AgingConditions cond_;
  std::optional<aging::AgingAnalyzer> analyzer_;
};

TEST_F(MultiMechanismTest, AllMechanismsWorseThanNbtiAlone) {
  const aging::MultiAgingReport rep = aging::analyze_multi_mechanism(
      *analyzer_, aging::StandbyPolicy::all_stressed());
  EXPECT_GT(rep.aged_delay, rep.nbti_only_delay);
  EXPECT_GT(rep.nbti_only_delay, rep.fresh_delay);
  EXPECT_GT(rep.percent(), rep.nbti_only_percent());
}

TEST_F(MultiMechanismTest, DisablingMechanismsRemovesTheirShift) {
  const aging::MultiAgingReport none = aging::analyze_multi_mechanism(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.enable_pbti = false, .enable_hci = false});
  for (double d : none.nmos_dvth) EXPECT_EQ(d, 0.0);
  EXPECT_NEAR(none.aged_delay, none.nbti_only_delay, 1e-18);
}

TEST_F(MultiMechanismTest, PbtiPolarityInvertsStandbyPreference) {
  // All-stressed (nets at 0) is NBTI's worst case but PBTI's best; the
  // PBTI-only NMOS shift must be larger under the all-relaxed policy.
  const aging::MultiAgingParams pbti_only{.enable_pbti = true,
                                          .enable_hci = false};
  const aging::MultiAgingReport worst_nbti = aging::analyze_multi_mechanism(
      *analyzer_, aging::StandbyPolicy::all_stressed(), pbti_only);
  const aging::MultiAgingReport worst_pbti = aging::analyze_multi_mechanism(
      *analyzer_, aging::StandbyPolicy::all_relaxed(), pbti_only);
  double sum_stressed = 0.0, sum_relaxed = 0.0;
  for (double d : worst_nbti.nmos_dvth) sum_stressed += d;
  for (double d : worst_pbti.nmos_dvth) sum_relaxed += d;
  EXPECT_GT(sum_relaxed, sum_stressed);
}

TEST_F(MultiMechanismTest, NmosShiftsInPhysicalBand) {
  const aging::MultiAgingReport rep = aging::analyze_multi_mechanism(
      *analyzer_, aging::StandbyPolicy::all_stressed());
  for (double d : rep.nmos_dvth) {
    EXPECT_GE(d, 0.0);
    EXPECT_LT(to_mV(d), 60.0);
  }
}

TEST_F(MultiMechanismTest, VectorPolicySupported) {
  std::vector<bool> v(c432_.num_inputs(), true);
  const aging::MultiAgingReport rep = aging::analyze_multi_mechanism(
      *analyzer_, aging::StandbyPolicy::from_vector(v));
  EXPECT_GT(rep.percent(), 0.0);
}

TEST_F(MultiMechanismTest, EmptyRotationIsRejectedNotNaN) {
  // Regression: a Rotating policy with no vectors used to divide by the
  // rotation size and poison every standby_stress_fraction with NaN. The
  // rotating() factory already throws, so build the policy by hand.
  aging::StandbyPolicy p;
  p.kind = aging::StandbyPolicy::Kind::Rotating;
  ASSERT_TRUE(p.rotation.empty());
  EXPECT_THROW(aging::build_pbti_stress(*analyzer_, p), std::invalid_argument);
  EXPECT_THROW(aging::analyze_multi_mechanism(*analyzer_, p),
               std::invalid_argument);
}

TEST_F(MultiMechanismTest, PbtiStressSetMatchesReportShift) {
  // The exported stress set, evaluated through DeviceAging directly, must
  // reproduce the PBTI-only NMOS shifts of analyze_multi_mechanism.
  const aging::StandbyPolicy policy = aging::StandbyPolicy::all_relaxed();
  const aging::MultiAgingParams params{.enable_pbti = true,
                                       .enable_hci = false};
  const aging::MultiAgingReport rep =
      aging::analyze_multi_mechanism(*analyzer_, policy, params);
  const aging::PbtiStressSet set = aging::build_pbti_stress(*analyzer_, policy);
  ASSERT_EQ(set.gate_begin.size(), c432_.num_gates() + 1);
  const nbti::DeviceAging model(analyzer_->conditions().rd);
  const double horizon = analyzer_->conditions().total_time;
  for (std::size_t g = 0; g < c432_.num_gates(); ++g) {
    double worst = 0.0;
    for (std::size_t d = set.gate_begin[g]; d < set.gate_begin[g + 1]; ++d) {
      worst = std::max(
          worst, params.pbti.ratio * model.delta_vth(set.devices[d],
                                                     cond_.schedule, horizon));
    }
    EXPECT_DOUBLE_EQ(rep.nmos_dvth[g], worst);
  }
}

TEST_F(MultiMechanismTest, HigherClockAgesFaster) {
  const aging::MultiAgingReport slow = aging::analyze_multi_mechanism(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.enable_pbti = false, .clock_hz = 1e8});
  const aging::MultiAgingReport fast = aging::analyze_multi_mechanism(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.enable_pbti = false, .clock_hz = 4e9});
  EXPECT_GT(fast.aged_delay, slow.aged_delay);
}

}  // namespace
}  // namespace nbtisim
