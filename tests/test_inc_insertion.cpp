// Unit tests for control-point insertion / gate replacement
// (src/opt/inc_insertion.*) and the forced-net simulation it relies on.

#include "opt/inc_insertion.h"

#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "sim/simulator.h"

namespace nbtisim::opt {
namespace {

class IncInsertionTest : public ::testing::Test {
 protected:
  tech::Library lib_;
  netlist::Netlist c432_ = netlist::iscas85_like("c432");

  aging::AgingConditions cond(double t_standby = 400.0) const {
    aging::AgingConditions c;
    c.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, t_standby);
    c.sp_vectors = 512;
    return c;
  }
};

// --- forced-net simulation plumbing ---

TEST_F(IncInsertionTest, ForcedNetOverridesAndPropagates) {
  netlist::Netlist nl("f");
  const auto a = nl.add_input("a");
  const auto b = nl.add_input("b");
  const auto x = nl.add_gate(tech::GateFn::And, {a, b}, "x");
  const auto y = nl.add_gate(tech::GateFn::Not, {x}, "y");
  nl.mark_output(y);
  sim::Simulator sim(nl);
  const std::vector<std::pair<netlist::NodeId, bool>> forces{{x, true}};
  const std::vector<bool> v = sim.evaluate_forced({false, false}, forces);
  EXPECT_TRUE(v[x]);    // forced despite AND(0,0) = 0
  EXPECT_FALSE(v[y]);   // the forced 1 propagated through the inverter
}

TEST_F(IncInsertionTest, ForcedInputOverridesPiValue) {
  netlist::Netlist nl("f");
  const auto a = nl.add_input("a");
  const auto y = nl.add_gate(tech::GateFn::Buf, {a}, "y");
  nl.mark_output(y);
  sim::Simulator sim(nl);
  const std::vector<std::pair<netlist::NodeId, bool>> forces{{a, true}};
  EXPECT_TRUE(sim.evaluate_forced({false}, forces)[y]);
}

TEST_F(IncInsertionTest, ForcedBadNetRejected) {
  sim::Simulator sim(c432_);
  const std::vector<std::pair<netlist::NodeId, bool>> forces{{99999, true}};
  EXPECT_THROW(
      sim.evaluate_forced(std::vector<bool>(c432_.num_inputs(), false), forces),
      std::invalid_argument);
}

TEST_F(IncInsertionTest, DelayScaleSlowsFreshCircuit) {
  aging::AgingConditions scaled = cond();
  scaled.gate_delay_scale.assign(c432_.num_gates(), 1.10);
  const aging::AgingAnalyzer base(c432_, lib_, cond());
  const aging::AgingAnalyzer slow(c432_, lib_, scaled);
  const auto rb = base.analyze(aging::StandbyPolicy::all_stressed());
  const auto rs = slow.analyze(aging::StandbyPolicy::all_stressed());
  EXPECT_NEAR(rs.fresh_delay / rb.fresh_delay, 1.10, 1e-9);
  // Uniform scaling leaves the percentage degradation unchanged.
  EXPECT_NEAR(rs.percent(), rb.percent(), 1e-9);
}

TEST_F(IncInsertionTest, DelayScaleValidation) {
  aging::AgingConditions bad = cond();
  bad.gate_delay_scale.assign(3, 1.0);
  EXPECT_THROW(aging::AgingAnalyzer(c432_, lib_, bad), std::invalid_argument);
  bad.gate_delay_scale.assign(c432_.num_gates(), 0.9);
  EXPECT_THROW(aging::AgingAnalyzer(c432_, lib_, bad), std::invalid_argument);
}

// --- the technique ---

TEST_F(IncInsertionTest, ReducesAgingAtHotStandby) {
  const IncInsertionResult r = insert_control_points(
      c432_, lib_, cond(400.0), {.max_control_points = 30});
  EXPECT_LT(r.aging_after, r.aging_before);
  EXPECT_GT(r.aging_saving_percent(), 0.0);
}

TEST_F(IncInsertionTest, SavingBoundedByIncPotential) {
  // Control points cannot beat the all-relaxed bound of Table 4.
  const aging::AgingAnalyzer an(c432_, lib_, cond(400.0));
  const double best =
      an.analyze(aging::StandbyPolicy::all_relaxed()).percent();
  const IncInsertionResult r = insert_control_points(
      c432_, lib_, cond(400.0), {.max_control_points = 50});
  EXPECT_GE(r.aging_after, best - 1e-9);
}

TEST_F(IncInsertionTest, DelayPenaltyIsBounded) {
  const IncInsertionResult r = insert_control_points(
      c432_, lib_, cond(), {.max_control_points = 10,
                            .driver_delay_penalty = 0.08});
  // Drivers were chosen with enough slack: the critical path should barely
  // move.
  EXPECT_LT(r.time0_penalty_percent(), 8.0);
  EXPECT_GE(r.fresh_after, r.fresh_before - 1e-15);
}

TEST_F(IncInsertionTest, MorePointsAtLeastAsMuchRelief) {
  const IncInsertionResult few = insert_control_points(
      c432_, lib_, cond(400.0), {.max_control_points = 5});
  const IncInsertionResult many = insert_control_points(
      c432_, lib_, cond(400.0), {.max_control_points = 60});
  EXPECT_LE(many.aging_after, few.aging_after + 0.05);
}

TEST_F(IncInsertionTest, ControlledCountRespectsLimit) {
  const IncInsertionResult r = insert_control_points(
      c432_, lib_, cond(), {.max_control_points = 5});
  EXPECT_LE(r.controlled.size(), 5u);
  EXPECT_GE(r.controlled.size(), 1u);
  EXPECT_EQ(r.controlled.size(), r.controlled_names.size());
}

TEST_F(IncInsertionTest, RejectsBadParameters) {
  EXPECT_THROW(insert_control_points(c432_, lib_, cond(),
                                     {.max_control_points = 0}),
               std::invalid_argument);
  EXPECT_THROW(insert_control_points(c432_, lib_, cond(),
                                     {.max_control_points = 5,
                                      .driver_delay_penalty = -0.1}),
               std::invalid_argument);
}

TEST_F(IncInsertionTest, WorksAcrossCircuits) {
  for (const char* name : {"c499", "c880"}) {
    const netlist::Netlist nl = netlist::iscas85_like(name);
    const IncInsertionResult r = insert_control_points(
        nl, lib_, cond(400.0), {.max_control_points = 20});
    EXPECT_LE(r.aging_after, r.aging_before + 1e-9) << name;
  }
}

}  // namespace
}  // namespace nbtisim::opt
