// Edge-case unit tests for the interpolated dVth(t) table (nbti::DvthTable):
// construction validation (NaN/Inf/malformed input), the extrapolation
// policy (t = 0, below the front node, clamped beyond the back node),
// degenerate single-point grids, and the duty-cycle 0 / 1 device curves.

#include "nbti/dvth_table.h"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "nbti/device_aging.h"

namespace nbtisim::nbti {
namespace {

DvthTable simple_table() {
  // Two curves over a 3-point grid.
  return DvthTable({1.0, 10.0, 100.0},
                   {{0.010, 0.100}, {0.020, 0.200}, {0.030, 0.300}});
}

TEST(DvthTableTest, ZeroTimeIsExactlyZero) {
  const DvthTable table = simple_table();
  EXPECT_EQ(table.value(0, 0.0), 0.0);
  EXPECT_EQ(table.value(1, 0.0), 0.0);
  std::vector<double> out(2, -1.0);
  table.values_at(0.0, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 0.0);
}

TEST(DvthTableTest, BelowFrontInterpolatesFromOrigin) {
  // 0 < t < front: linear from the implicit (0, 0) origin — the same
  // convention aging::crossing_time applies before the first sample.
  const DvthTable table = simple_table();
  EXPECT_DOUBLE_EQ(table.value(0, 0.5), 0.005);
  EXPECT_DOUBLE_EQ(table.value(1, 0.25), 0.025);
}

TEST(DvthTableTest, BeyondBackClampsToLastSample) {
  const DvthTable table = simple_table();
  EXPECT_EQ(table.value(0, 100.0), 0.030);   // back node: exact hit
  EXPECT_EQ(table.value(0, 101.0), 0.030);   // just past
  EXPECT_EQ(table.value(1, 1.0e12), 0.300);  // far past
  std::vector<double> out(2);
  table.values_at(5.0e6, out);
  EXPECT_EQ(out[0], 0.030);
  EXPECT_EQ(out[1], 0.300);
}

TEST(DvthTableTest, InteriorNodesAreExactHits) {
  const DvthTable table = simple_table();
  EXPECT_EQ(table.value(0, 10.0), 0.020);
  EXPECT_EQ(table.value(1, 1.0), 0.100);
}

TEST(DvthTableTest, SinglePointGridClampsAboveAndRampsBelow) {
  const DvthTable table({50.0}, {{0.040}});
  EXPECT_EQ(table.num_points(), 1);
  EXPECT_EQ(table.grid_ratio(), 1.0);
  EXPECT_EQ(DvthTable::rel_error_bound(table.grid_ratio()), 0.0);
  EXPECT_EQ(table.value(0, 50.0), 0.040);   // the one node
  EXPECT_EQ(table.value(0, 500.0), 0.040);  // clamp above
  EXPECT_DOUBLE_EQ(table.value(0, 25.0), 0.020);  // origin ramp below
  EXPECT_EQ(table.value(0, 0.0), 0.0);
}

TEST(DvthTableTest, RejectsNonFiniteAndMalformedConstruction) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  // NaN / Inf grid times.
  EXPECT_THROW(DvthTable({1.0, nan}, {{0.1}, {0.2}}), std::invalid_argument);
  EXPECT_THROW(DvthTable({1.0, inf}, {{0.1}, {0.2}}), std::invalid_argument);
  // NaN / Inf / negative sampled values.
  EXPECT_THROW(DvthTable({1.0, 2.0}, {{0.1}, {nan}}), std::invalid_argument);
  EXPECT_THROW(DvthTable({1.0, 2.0}, {{inf}, {0.2}}), std::invalid_argument);
  EXPECT_THROW(DvthTable({1.0, 2.0}, {{0.1}, {-0.2}}), std::invalid_argument);
  // Non-positive or non-increasing grid.
  EXPECT_THROW(DvthTable({0.0, 1.0}, {{0.1}, {0.2}}), std::invalid_argument);
  EXPECT_THROW(DvthTable({-1.0, 1.0}, {{0.1}, {0.2}}), std::invalid_argument);
  EXPECT_THROW(DvthTable({2.0, 1.0}, {{0.1}, {0.2}}), std::invalid_argument);
  EXPECT_THROW(DvthTable({1.0, 1.0}, {{0.1}, {0.2}}), std::invalid_argument);
  // Empty / mismatched shapes.
  EXPECT_THROW(DvthTable({}, {}), std::invalid_argument);
  EXPECT_THROW(DvthTable({1.0, 2.0}, {{0.1}}), std::invalid_argument);
  EXPECT_THROW(DvthTable({1.0, 2.0}, {{0.1}, {0.2, 0.3}}),
               std::invalid_argument);
  EXPECT_THROW(DvthTable({1.0}, {{}}), std::invalid_argument);
}

TEST(DvthTableTest, RejectsBadQueries) {
  const DvthTable table = simple_table();
  EXPECT_THROW(table.value(0, -1.0), std::invalid_argument);
  EXPECT_THROW(table.value(-1, 1.0), std::invalid_argument);
  EXPECT_THROW(table.value(2, 1.0), std::invalid_argument);
  std::vector<double> wrong(3);
  EXPECT_THROW(table.values_at(1.0, wrong), std::invalid_argument);
}

TEST(DvthTableTest, GeometricGridPinsEndpointsAndResolution) {
  const std::vector<double> grid = DvthTable::geometric_grid(1.0e2, 1.0e6, 4);
  ASSERT_GE(grid.size(), 17u);  // 4 decades at 4 points per decade
  EXPECT_EQ(grid.front(), 1.0e2);  // both endpoints are exact nodes
  EXPECT_EQ(grid.back(), 1.0e6);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
  // Degenerate range: a single point.
  const std::vector<double> one = DvthTable::geometric_grid(7.0, 7.0, 16);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front(), 7.0);
  // Validation.
  EXPECT_THROW(DvthTable::geometric_grid(0.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(DvthTable::geometric_grid(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(DvthTable::geometric_grid(1.0, 2.0, 0), std::invalid_argument);
}

TEST(DvthTableTest, DutyZeroCurveStaysExactlyZero) {
  // A device that is never stressed samples to an all-zero row; the table
  // must return exact zero everywhere, not interpolation noise.
  const DeviceAging model;
  const ModeSchedule schedule = ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  DeviceStress off;
  off.active_stress_prob = 0.0;
  off.standby = StandbyMode::Relaxed;
  const DeviceAging::StressContext ctx = model.make_context(off, schedule);

  const std::vector<double> grid = DvthTable::geometric_grid(1.0e4, 1.0e8, 4);
  std::vector<std::vector<double>> rows;
  for (double t : grid) rows.push_back({model.delta_vth(ctx, t)});
  const DvthTable table(grid, rows);
  for (double t : {0.0, 5.0e3, 1.0e4, 3.7e5, 1.0e8, 1.0e10}) {
    EXPECT_EQ(table.value(0, t), 0.0) << "t=" << t;
  }
}

TEST(DvthTableTest, DutyOneCurveWithinPowerLawBound) {
  // Full DC stress is the pure kv * t^(1/4) law — exactly the curve the
  // rel_error_bound derivation assumes, so the bound holds with no margin.
  const DeviceAging model;
  const ModeSchedule schedule = ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  DeviceStress dc;
  dc.active_stress_prob = 1.0;
  dc.standby = StandbyMode::Stressed;
  const DeviceAging::StressContext ctx = model.make_context(dc, schedule);

  const std::vector<double> grid = DvthTable::geometric_grid(1.0e4, 1.0e8, 8);
  std::vector<std::vector<double>> rows;
  for (double t : grid) rows.push_back({model.delta_vth(ctx, t)});
  const DvthTable table(grid, rows);
  const double bound = DvthTable::rel_error_bound(table.grid_ratio());
  ASSERT_GT(bound, 0.0);
  for (std::size_t i = 0; i + 1 < grid.size(); ++i) {
    const double mid = std::sqrt(grid[i] * grid[i + 1]);
    const double exact = model.delta_vth(ctx, mid);
    EXPECT_LE(std::abs(table.value(0, mid) - exact), bound * exact)
        << "segment " << i;
  }
}

}  // namespace
}  // namespace nbtisim::nbti
