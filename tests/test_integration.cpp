// Cross-module integration tests: the full Fig. 6 platform end-to-end,
// thermal -> schedule coupling, and the Table 2 gate-level study.

#include <gtest/gtest.h>

#include "aging/aging.h"
#include "leakage/leakage.h"
#include "netlist/bench_io.h"
#include "netlist/generators.h"
#include "opt/ivc.h"
#include "opt/sleep_transistor.h"
#include "thermal/thermal.h"
#include "tech/units.h"
#include "variation/variation.h"

namespace nbtisim {
namespace {

// The complete co-optimization pipeline on one circuit: thermal model sets
// the mode temperatures, MLV search picks standby vectors, aging analysis
// ranks them, and the result beats the uncontrolled worst case.
TEST(IntegrationTest, FullCoOptimizationPipeline) {
  const netlist::Netlist nl = netlist::iscas85_like("c432");
  const tech::Library lib;

  // Thermal: derive T_active / T_standby from a power envelope.
  const thermal::RcThermalModel thermal_model;
  const auto [t_active, t_standby] =
      thermal::mode_temperatures(thermal_model, 170.0, 2.0);

  aging::AgingConditions cond;
  cond.schedule =
      nbti::ModeSchedule::from_ras(1, 5, 600.0, t_active, t_standby);
  cond.sp_vectors = 1024;
  const aging::AgingAnalyzer analyzer(nl, lib, cond);
  const leakage::LeakageAnalyzer standby_leak(nl, lib, t_standby);

  const opt::IvcResult ivc = opt::evaluate_ivc(
      analyzer, standby_leak, {.population = 48, .max_rounds = 10});

  EXPECT_LT(ivc.best().degradation_percent, ivc.worst_case_percent);
  EXPECT_GE(ivc.best().degradation_percent, ivc.best_case_percent - 1e-9);
  // And the MLV keeps leakage near the heuristic optimum.
  EXPECT_LE(ivc.best().leakage,
            ivc.candidates.front().leakage * (1.0 + 0.04) + 1e-18);
}

// Loading a circuit from .bench text and generating it programmatically
// must give identical analysis results.
TEST(IntegrationTest, BenchRoundTripPreservesAgingAnalysis) {
  const netlist::Netlist gen = netlist::make_ripple_adder("rt", 4);
  const netlist::Netlist reparsed =
      netlist::parse_bench(netlist::write_bench(gen), "rt");
  const tech::Library lib;
  aging::AgingConditions cond;
  cond.sp_vectors = 1024;
  const aging::AgingAnalyzer a(gen, lib, cond);
  const aging::AgingAnalyzer b(reparsed, lib, cond);
  const double pa = a.analyze(aging::StandbyPolicy::all_stressed()).percent();
  const double pb = b.analyze(aging::StandbyPolicy::all_stressed()).percent();
  EXPECT_NEAR(pa, pb, 1e-9);
}

// Table 2 end-to-end: per-gate standby vectors change both leakage and
// NBTI-induced delay degradation, with the family-dependent polarity the
// paper reports.
TEST(IntegrationTest, Table2PolarityForNandVsNor) {
  const tech::Library lib;
  aging::AgingConditions cond;
  cond.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  cond.sp_vectors = 1024;

  auto single_gate_percent = [&](tech::GateFn fn, std::vector<bool> standby) {
    netlist::Netlist nl("g");
    const auto a = nl.add_input("a");
    const auto b = nl.add_input("b");
    const auto x = nl.add_gate(fn, {a, b}, "x");
    nl.mark_output(x);
    const aging::AgingAnalyzer an(nl, lib, cond);
    return an.analyze(aging::StandbyPolicy::from_vector(std::move(standby)))
        .percent();
  };

  // NAND2: min-leakage vector is 00 -> WORST aging (both PMOS stressed).
  const double nand_00 = single_gate_percent(tech::GateFn::Nand, {false, false});
  const double nand_11 = single_gate_percent(tech::GateFn::Nand, {true, true});
  EXPECT_GT(nand_00, nand_11);

  // NOR2: min-leakage vector is 11 -> BEST aging (both PMOS relaxed).
  const double nor_11 = single_gate_percent(tech::GateFn::Nor, {true, true});
  const double nor_00 = single_gate_percent(tech::GateFn::Nor, {false, false});
  EXPECT_LT(nor_11, nor_00);
}

// Sleep transistor insertion vs. IVC on the same circuit: STI approaches
// the internal-node-control best case, IVC generally does not.
TEST(IntegrationTest, StiBeatsIvcOnAging) {
  const netlist::Netlist nl = netlist::iscas85_like("c432");
  const tech::Library lib;
  aging::AgingConditions cond;
  cond.schedule = nbti::ModeSchedule::from_ras(1, 5, 600.0, 400.0, 400.0);
  cond.sp_vectors = 1024;
  const aging::AgingAnalyzer analyzer(nl, lib, cond);
  const leakage::LeakageAnalyzer leak(nl, lib, 400.0);

  const opt::IvcResult ivc =
      opt::evaluate_ivc(analyzer, leak, {.population = 48, .max_rounds = 10});

  opt::StParams st;
  st.sigma = 0.01;
  const auto sti = opt::st_circuit_degradation_series(
      analyzer, opt::StStyle::Footer, st, 3e8, 4e8, 2);

  // Gated logic aging == best case; with a 1% penalty it still beats the
  // IVC result at a hot standby temperature.
  EXPECT_LT(sti.front().total_percent, ivc.best().degradation_percent);
}

// Variation study composes with the standby policy machinery.
TEST(IntegrationTest, VariationRespectsPolicyOrdering) {
  const netlist::Netlist nl = netlist::iscas85_like("c432");
  const tech::Library lib;
  aging::AgingConditions cond;
  cond.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 400.0);
  cond.sp_vectors = 512;
  const aging::AgingAnalyzer analyzer(nl, lib, cond);
  const variation::MonteCarloAging mc(analyzer, {.samples = 80});
  const double worst =
      mc.aged_distribution(aging::StandbyPolicy::all_stressed(), 3e8).mean();
  const double best =
      mc.aged_distribution(aging::StandbyPolicy::all_relaxed(), 3e8).mean();
  EXPECT_GT(worst, best);
}

// The degradation of a composed flow must be stable across repeated
// construction (no hidden global state).
TEST(IntegrationTest, AnalyzerIsReproducible) {
  const netlist::Netlist nl = netlist::iscas85_like("c499");
  const tech::Library lib;
  aging::AgingConditions cond;
  cond.sp_vectors = 512;
  const aging::AgingAnalyzer a(nl, lib, cond);
  const aging::AgingAnalyzer b(nl, lib, cond);
  EXPECT_DOUBLE_EQ(a.analyze(aging::StandbyPolicy::all_stressed()).percent(),
                   b.analyze(aging::StandbyPolicy::all_stressed()).percent());
}

}  // namespace
}  // namespace nbtisim
