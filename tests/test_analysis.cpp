// Tests for the analysis layer (src/analysis/*): registry lookup and error
// behaviour, per-analysis parameter fingerprints (hash sensitivity), the
// ContextPool cache, and the all-analyses campaign determinism contract —
// byte-identical stores for every n_threads, resume after interruption, and
// stale-row accounting instead of silent drops.

#include "analysis/analysis.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/context.h"
#include "campaign/engine.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "report/report.h"

namespace nbtisim::analysis {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(static_cast<bool>(f)) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  f << text;
}

std::string temp_path(const std::string& name) {
  // Process-unique so `ctest -j` sibling test processes don't race on it.
  const std::string path = ::testing::TempDir() + "/" +
                           std::to_string(::getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

// --------------------------------------------------------------------------
// Registry behaviour.

TEST(AnalysisRegistryTest, GlobalListsAllBuiltinsSorted) {
  const std::vector<std::string> names = AnalysisRegistry::global().names();
  const std::vector<std::string> expected{
      "aging",  "criticality", "derate", "failure", "ivc",     "lifetime",
      "multi",  "pareto",      "sizing", "st",      "thermal"};
  EXPECT_EQ(names, expected);
  // Every listed name resolves, and name() round-trips.
  for (const std::string& n : names) {
    EXPECT_EQ(AnalysisRegistry::global().at(n).name(), n);
  }
}

TEST(AnalysisRegistryTest, UnknownNameThrowsListingKnownNames) {
  const AnalysisRegistry& reg = AnalysisRegistry::global();
  EXPECT_EQ(reg.find("frobnicate"), nullptr);
  try {
    reg.at("frobnicate");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("frobnicate"), std::string::npos) << what;
    EXPECT_NE(what.find("aging"), std::string::npos) << what;
    EXPECT_NE(what.find("sizing"), std::string::npos) << what;
  }
}

TEST(AnalysisRegistryTest, DuplicateRegistrationIsRejected) {
  AnalysisRegistry reg;
  reg.add(make_aging_analysis());
  EXPECT_THROW(reg.add(make_aging_analysis()), std::invalid_argument);
  // The first registration survives the failed second one.
  ASSERT_NE(reg.find("aging"), nullptr);
  EXPECT_EQ(reg.names().size(), 1u);
}

// --------------------------------------------------------------------------
// Per-analysis hash sensitivity: a technique knob invalidates that
// technique's rows and nothing else; shared knobs invalidate everything.

std::map<std::string, std::string> all_fingerprints(const Params& p) {
  std::map<std::string, std::string> out;
  const AnalysisRegistry& reg = AnalysisRegistry::global();
  for (const std::string& name : reg.names()) {
    out[name] = reg.at(name).fingerprint(p);
  }
  return out;
}

// Names whose fingerprint changes when `mutate` is applied to default Params.
template <typename Fn>
std::vector<std::string> changed_by(Fn mutate) {
  Params mutated;
  mutate(mutated);
  const auto before = all_fingerprints(Params{});
  const auto after = all_fingerprints(mutated);
  std::vector<std::string> changed;
  for (const auto& [name, fp] : before) {
    if (after.at(name) != fp) changed.push_back(name);
  }
  return changed;
}

TEST(AnalysisFingerprintTest, TechniqueKnobsTouchOnlyTheirOwnHash) {
  using V = std::vector<std::string>;
  EXPECT_EQ(changed_by([](Params& p) { p.sizing_margin = 7.0; }),
            V{"sizing"});
  EXPECT_EQ(changed_by([](Params& p) { p.sizing_max_moves = 99; }),
            V{"sizing"});
  EXPECT_EQ(changed_by([](Params& p) { p.samples = 33; }), V{"lifetime"});
  EXPECT_EQ(changed_by([](Params& p) { p.spec_margin = 8.0; }),
            V{"lifetime"});
  EXPECT_EQ(changed_by([](Params& p) { p.derate_years = {1.0, 4.0}; }),
            V{"derate"});
  EXPECT_EQ(changed_by([](Params& p) { p.pareto_flips = 3; }), V{"pareto"});
  EXPECT_EQ(changed_by([](Params& p) { p.crit_samples = 12; }),
            V{"criticality"});
  EXPECT_EQ(changed_by([](Params& p) { p.st_sigma = 0.07; }), V{"st"});
  EXPECT_EQ(changed_by([](Params& p) { p.population = 16; }), V{"ivc"});
  // clock/pbti knobs feed both wear-out analyses; the rest are exclusive.
  EXPECT_EQ(changed_by([](Params& p) { p.clock_ghz = 2.0; }),
            (V{"failure", "multi"}));
  EXPECT_EQ(changed_by([](Params& p) { p.pbti_ratio = 0.5; }),
            (V{"failure", "multi"}));
  EXPECT_EQ(changed_by([](Params& p) { p.thermal_power = 80.0; }),
            V{"thermal"});
  EXPECT_EQ(changed_by([](Params& p) { p.thermal_replication = 2e5; }),
            V{"thermal"});
  EXPECT_EQ(changed_by([](Params& p) { p.thermal_runaway_k = 900.0; }),
            V{"thermal"});
  EXPECT_EQ(changed_by([](Params& p) { p.fail_dvth = 0.07; }), V{"failure"});
  EXPECT_EQ(changed_by([](Params& p) { p.weibull_beta = 3.0; }),
            V{"failure"});
  EXPECT_EQ(changed_by([](Params& p) { p.fail_points = 16; }), V{"failure"});
  EXPECT_EQ(changed_by([](Params& p) { p.fail_max_years = 50.0; }),
            V{"failure"});
  EXPECT_EQ(changed_by([](Params& p) { p.fail_curve_years = {1.0, 3.0}; }),
            V{"failure"});
}

TEST(AnalysisFingerprintTest, SharedKnobsTouchEveryHashExceptThermal) {
  // The thermal fixpoint consumes no Monte-Carlo state — its standby
  // leakage vector is a deterministic logic evaluation — so sp_vectors and
  // seed changes must leave its store rows valid.
  std::vector<std::string> expected = AnalysisRegistry::global().names();
  std::erase(expected, "thermal");
  EXPECT_EQ(changed_by([](Params& p) { p.sp_vectors = 2048; }), expected);
  EXPECT_EQ(changed_by([](Params& p) { p.seed = 11; }), expected);
}

TEST(AnalysisFingerprintTest, CampaignHashesChangeOnlyForTheAffectedAnalysis) {
  const char* text = R"({
    "name": "hashes",
    "netlists": ["dag:8x40@3"],
    "analyses": ["aging", "sizing", "lifetime", "derate"]
  })";
  campaign::CampaignSpec spec =
      campaign::spec_from_json(common::json::parse(text));
  const std::vector<campaign::Task> before = campaign::expand(spec);
  spec.params.sizing_margin = 9.0;
  const std::vector<campaign::Task> after = campaign::expand(spec);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i].analysis == "sizing") {
      EXPECT_NE(after[i].hash, before[i].hash);
    } else {
      EXPECT_EQ(after[i].hash, before[i].hash) << before[i].analysis;
    }
  }
}

// --------------------------------------------------------------------------
// ContextPool caching: one AgingAnalyzer per (netlist, condition), one
// netlist per spec string, shared across conditions.

TEST(EvalContextTest, PoolCachesPerCellState) {
  Params p;
  p.sp_vectors = 256;
  ContextPool pool(p);
  const Condition cond;
  EvalContext a = pool.context("dag:8x40@3", cond);
  EvalContext b = pool.context("dag:8x40@3", cond);
  EXPECT_EQ(&a.netlist(), &b.netlist());
  EXPECT_EQ(&a.aging(), &b.aging());

  Condition hot = cond;
  hot.t_standby = 400.0;
  EvalContext c = pool.context("dag:8x40@3", hot);
  EXPECT_EQ(&c.netlist(), &a.netlist());  // netlist shared across conditions
  EXPECT_NE(&c.aging(), &a.aging());      // analyzer is per condition
  EXPECT_NE(&c.standby_leakage(), &a.standby_leakage());  // per T_standby
}

// --------------------------------------------------------------------------
// The acceptance campaign: one spec listing all eleven analyses runs,
// resumes after interruption, and its store is byte-identical for every
// n_threads. Kept on one tiny generated netlist so the whole thing stays
// CI-cheap.

constexpr int kAllAnalyses = 11;

campaign::CampaignSpec all_analyses_spec() {
  const char* text = R"({
    "name": "all_analyses",
    "netlists": ["dag:8x40@3"],
    "conditions": [
      {"ras": "1:9", "t_active": 400, "t_standby": 330, "years": 10}
    ],
    "analyses": ["aging", "criticality", "derate", "failure", "ivc",
                 "lifetime", "multi", "pareto", "sizing", "st", "thermal"],
    "params": {"sp_vectors": 256, "samples": 10, "population": 8,
               "max_rounds": 2, "sizing_margin": 3.0, "sizing_max_moves": 40,
               "derate_years": [2, 5], "pareto_samples": 8,
               "pareto_rounds": 1, "pareto_flips": 2, "crit_samples": 30,
               "fail_points": 12, "fail_curve_years": [5, 20]},
    "n_threads": 1,
    "shards": 1
  })";
  return campaign::spec_from_json(common::json::parse(text));
}

TEST(AnalysisCampaignTest, BitIdenticalAcrossThreadCountsForAllAnalyses) {
  campaign::CampaignSpec spec = all_analyses_spec();
  const std::string p1 = temp_path("all_t1.jsonl");
  const campaign::RunStats s1 = campaign::run_campaign(spec, p1);
  ASSERT_EQ(s1.total, kAllAnalyses);
  ASSERT_EQ(s1.executed, kAllAnalyses);

  spec.n_threads = 4;
  const std::string p4 = temp_path("all_t4.jsonl");
  const campaign::RunStats s4 = campaign::run_campaign(spec, p4);
  ASSERT_EQ(s4.executed, kAllAnalyses);

  const std::string bytes = read_file(p1);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(p4));

  // Interrupt: drop the final row (incl. newline); the resumed parallel run
  // re-executes exactly that task and restores the byte-identical file.
  const std::size_t cut = bytes.find_last_of('\n', bytes.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  const std::string pr = temp_path("all_resume.jsonl");
  write_text(pr, bytes.substr(0, cut + 1));
  const campaign::RunStats rs = campaign::run_campaign(spec, pr);
  EXPECT_EQ(rs.skipped, kAllAnalyses - 1);
  EXPECT_EQ(rs.executed, 1);
  EXPECT_EQ(read_file(pr), bytes);

  // Summaries of the serial and parallel stores agree byte for byte, cover
  // every analysis row, and report nothing stale.
  campaign::SummaryStats sum1, sum4;
  const report::Table t1 = campaign::summarize(spec, p1, &sum1);
  const report::Table t4 = campaign::summarize(spec, p4, &sum4);
  EXPECT_EQ(report::to_csv(t1), report::to_csv(t4));
  EXPECT_EQ(t1.rows.size(), static_cast<std::size_t>(kAllAnalyses));
  EXPECT_EQ(sum1.stored, kAllAnalyses);
  EXPECT_EQ(sum1.summarized, kAllAnalyses);
  EXPECT_EQ(sum1.stale, 0);
  EXPECT_EQ(sum4.stale, 0);
}

TEST(AnalysisCampaignTest, BitIdenticalShardedStoresForNewAnalyses) {
  // The ported/new analyses on their own, sharded, at n_threads 1 vs 4:
  // every shard file must agree byte for byte (the acceptance criterion for
  // the failure-suite PR).
  const char* text = R"({
    "name": "new3",
    "netlists": ["dag:8x40@3"],
    "conditions": [
      {"ras": "1:9", "t_active": 400, "t_standby": 330, "years": 10},
      {"ras": "5:5", "t_active": 400, "t_standby": 330, "years": 10}
    ],
    "analyses": ["multi", "thermal", "failure"],
    "params": {"sp_vectors": 256, "fail_points": 12,
               "fail_curve_years": [5, 20]},
    "n_threads": 1,
    "shards": 4
  })";
  campaign::CampaignSpec spec =
      campaign::spec_from_json(common::json::parse(text));
  const std::string p1 = temp_path("new3_t1.jsonl");
  ASSERT_EQ(campaign::run_campaign(spec, p1).executed, 6);
  spec.n_threads = 4;
  const std::string p4 = temp_path("new3_t4.jsonl");
  ASSERT_EQ(campaign::run_campaign(spec, p4).executed, 6);

  // A shard file exists only when a task hash lands in it, so presence
  // itself must match between the two runs.
  int shards_with_rows = 0;
  for (int shard = 0; shard < 4; ++shard) {
    const std::string s1 = campaign::ShardedStore::shard_path(p1, shard);
    const std::string s4 = campaign::ShardedStore::shard_path(p4, shard);
    std::ifstream f1(s1), f4(s4);
    ASSERT_EQ(static_cast<bool>(f1), static_cast<bool>(f4)) << s1;
    if (!f1) continue;
    EXPECT_EQ(read_file(s1), read_file(s4)) << s1;
    ++shards_with_rows;
  }
  EXPECT_GT(shards_with_rows, 0);

  // The summarize table carries the failure curve, not just scalars.
  campaign::SummaryStats sum;
  const report::Table t = campaign::summarize(spec, p1, &sum);
  EXPECT_EQ(sum.summarized, 6);
  const auto& h = t.headers;
  EXPECT_NE(std::find(h.begin(), h.end(), "system_mttf_years"), h.end());
  EXPECT_NE(std::find(h.begin(), h.end(), "fail_at_y5"), h.end());
  EXPECT_NE(std::find(h.begin(), h.end(), "fail_at_y20"), h.end());
  EXPECT_NE(std::find(h.begin(), h.end(), "temp_k"), h.end());
  EXPECT_NE(std::find(h.begin(), h.end(), "multi_pct"), h.end());
}

TEST(AnalysisCampaignTest, BitIdenticalShardedStoresWithDvthTable) {
  // The table-backed evaluation paths (lifetime / failure / criticality with
  // use_dvth_table), sharded, at n_threads 1 vs 4: every shard file must
  // agree byte for byte — the interpolated-table subsystem keeps the
  // campaign determinism contract.
  const char* text = R"({
    "name": "table3",
    "netlists": ["dag:8x40@3"],
    "conditions": [
      {"ras": "1:9", "t_active": 400, "t_standby": 330, "years": 10},
      {"ras": "5:5", "t_active": 390, "t_standby": 340, "years": 10}
    ],
    "analyses": ["criticality", "failure", "lifetime"],
    "params": {"sp_vectors": 256, "samples": 24, "crit_samples": 60,
               "fail_points": 10, "fail_curve_years": [5, 20],
               "use_dvth_table": true, "table_ppd": 12},
    "n_threads": 1,
    "shards": 4
  })";
  campaign::CampaignSpec spec =
      campaign::spec_from_json(common::json::parse(text));
  const std::string p1 = temp_path("table3_t1.jsonl");
  ASSERT_EQ(campaign::run_campaign(spec, p1).executed, 6);
  spec.n_threads = 4;
  const std::string p4 = temp_path("table3_t4.jsonl");
  ASSERT_EQ(campaign::run_campaign(spec, p4).executed, 6);

  int shards_with_rows = 0;
  for (int shard = 0; shard < 4; ++shard) {
    const std::string s1 = campaign::ShardedStore::shard_path(p1, shard);
    const std::string s4 = campaign::ShardedStore::shard_path(p4, shard);
    std::ifstream f1(s1), f4(s4);
    ASSERT_EQ(static_cast<bool>(f1), static_cast<bool>(f4)) << s1;
    if (!f1) continue;
    EXPECT_EQ(read_file(s1), read_file(s4)) << s1;
    ++shards_with_rows;
  }
  EXPECT_GT(shards_with_rows, 0);

  // The table knob participates in the task hash only when enabled, so
  // pre-table store rows keep their fingerprints.
  const Analysis& lt = AnalysisRegistry::global().at("lifetime");
  EXPECT_NE(lt.fingerprint(spec.params).find(",table12"), std::string::npos);
  Params off = spec.params;
  off.use_dvth_table = false;
  EXPECT_EQ(off.table_ppd, 12);
  EXPECT_EQ(lt.fingerprint(off).find(",table"), std::string::npos);
}

TEST(AnalysisCampaignTest, StaleRowsAreCountedNotSilentlyDropped) {
  const char* text = R"({
    "name": "stale",
    "netlists": ["dag:8x40@3"],
    "analyses": ["aging"],
    "params": {"sp_vectors": 256},
    "n_threads": 1,
    "shards": 1
  })";
  campaign::CampaignSpec spec =
      campaign::spec_from_json(common::json::parse(text));
  const std::string path = temp_path("stale.jsonl");
  ASSERT_EQ(campaign::run_campaign(spec, path).executed, 1);

  // A shared-knob change invalidates the stored row: the re-run reports it
  // stale (and re-executes the task), and summarize accounts for it.
  spec.params.sp_vectors = 320;
  std::ostringstream progress;
  const campaign::RunStats stats =
      campaign::run_campaign(spec, path, &progress);
  EXPECT_EQ(stats.executed, 1);
  EXPECT_EQ(stats.stale, 1);
  EXPECT_NE(progress.str().find("1 stale store row"), std::string::npos)
      << progress.str();

  campaign::SummaryStats sum;
  const report::Table t = campaign::summarize(spec, path, &sum);
  EXPECT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(sum.stored, 2);
  EXPECT_EQ(sum.summarized, 1);
  EXPECT_EQ(sum.stale, 1);
}

}  // namespace
}  // namespace nbtisim::analysis
