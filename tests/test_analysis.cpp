// Tests for the analysis layer (src/analysis/*): registry lookup and error
// behaviour, per-analysis parameter fingerprints (hash sensitivity), the
// ContextPool cache, and the all-analyses campaign determinism contract —
// byte-identical stores for every n_threads, resume after interruption, and
// stale-row accounting instead of silent drops.

#include "analysis/analysis.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "analysis/context.h"
#include "campaign/engine.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "report/report.h"

namespace nbtisim::analysis {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(static_cast<bool>(f)) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  f << text;
}

std::string temp_path(const std::string& name) {
  // Process-unique so `ctest -j` sibling test processes don't race on it.
  const std::string path = ::testing::TempDir() + "/" +
                           std::to_string(::getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

// --------------------------------------------------------------------------
// Registry behaviour.

TEST(AnalysisRegistryTest, GlobalListsAllBuiltinsSorted) {
  const std::vector<std::string> names = AnalysisRegistry::global().names();
  const std::vector<std::string> expected{"aging",  "criticality", "derate",
                                          "ivc",    "lifetime",    "pareto",
                                          "sizing", "st"};
  EXPECT_EQ(names, expected);
  // Every listed name resolves, and name() round-trips.
  for (const std::string& n : names) {
    EXPECT_EQ(AnalysisRegistry::global().at(n).name(), n);
  }
}

TEST(AnalysisRegistryTest, UnknownNameThrowsListingKnownNames) {
  const AnalysisRegistry& reg = AnalysisRegistry::global();
  EXPECT_EQ(reg.find("frobnicate"), nullptr);
  try {
    reg.at("frobnicate");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("frobnicate"), std::string::npos) << what;
    EXPECT_NE(what.find("aging"), std::string::npos) << what;
    EXPECT_NE(what.find("sizing"), std::string::npos) << what;
  }
}

TEST(AnalysisRegistryTest, DuplicateRegistrationIsRejected) {
  AnalysisRegistry reg;
  reg.add(make_aging_analysis());
  EXPECT_THROW(reg.add(make_aging_analysis()), std::invalid_argument);
  // The first registration survives the failed second one.
  ASSERT_NE(reg.find("aging"), nullptr);
  EXPECT_EQ(reg.names().size(), 1u);
}

// --------------------------------------------------------------------------
// Per-analysis hash sensitivity: a technique knob invalidates that
// technique's rows and nothing else; shared knobs invalidate everything.

std::map<std::string, std::string> all_fingerprints(const Params& p) {
  std::map<std::string, std::string> out;
  const AnalysisRegistry& reg = AnalysisRegistry::global();
  for (const std::string& name : reg.names()) {
    out[name] = reg.at(name).fingerprint(p);
  }
  return out;
}

// Names whose fingerprint changes when `mutate` is applied to default Params.
template <typename Fn>
std::vector<std::string> changed_by(Fn mutate) {
  Params mutated;
  mutate(mutated);
  const auto before = all_fingerprints(Params{});
  const auto after = all_fingerprints(mutated);
  std::vector<std::string> changed;
  for (const auto& [name, fp] : before) {
    if (after.at(name) != fp) changed.push_back(name);
  }
  return changed;
}

TEST(AnalysisFingerprintTest, TechniqueKnobsTouchOnlyTheirOwnHash) {
  using V = std::vector<std::string>;
  EXPECT_EQ(changed_by([](Params& p) { p.sizing_margin = 7.0; }),
            V{"sizing"});
  EXPECT_EQ(changed_by([](Params& p) { p.sizing_max_moves = 99; }),
            V{"sizing"});
  EXPECT_EQ(changed_by([](Params& p) { p.samples = 33; }), V{"lifetime"});
  EXPECT_EQ(changed_by([](Params& p) { p.spec_margin = 8.0; }),
            V{"lifetime"});
  EXPECT_EQ(changed_by([](Params& p) { p.derate_years = {1.0, 4.0}; }),
            V{"derate"});
  EXPECT_EQ(changed_by([](Params& p) { p.pareto_flips = 3; }), V{"pareto"});
  EXPECT_EQ(changed_by([](Params& p) { p.crit_samples = 12; }),
            V{"criticality"});
  EXPECT_EQ(changed_by([](Params& p) { p.st_sigma = 0.07; }), V{"st"});
  EXPECT_EQ(changed_by([](Params& p) { p.population = 16; }), V{"ivc"});
}

TEST(AnalysisFingerprintTest, SharedKnobsTouchEveryHash) {
  const std::vector<std::string> all = AnalysisRegistry::global().names();
  EXPECT_EQ(changed_by([](Params& p) { p.sp_vectors = 2048; }), all);
  EXPECT_EQ(changed_by([](Params& p) { p.seed = 11; }), all);
}

TEST(AnalysisFingerprintTest, CampaignHashesChangeOnlyForTheAffectedAnalysis) {
  const char* text = R"({
    "name": "hashes",
    "netlists": ["dag:8x40@3"],
    "analyses": ["aging", "sizing", "lifetime", "derate"]
  })";
  campaign::CampaignSpec spec =
      campaign::spec_from_json(common::json::parse(text));
  const std::vector<campaign::Task> before = campaign::expand(spec);
  spec.params.sizing_margin = 9.0;
  const std::vector<campaign::Task> after = campaign::expand(spec);
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i].analysis == "sizing") {
      EXPECT_NE(after[i].hash, before[i].hash);
    } else {
      EXPECT_EQ(after[i].hash, before[i].hash) << before[i].analysis;
    }
  }
}

// --------------------------------------------------------------------------
// ContextPool caching: one AgingAnalyzer per (netlist, condition), one
// netlist per spec string, shared across conditions.

TEST(EvalContextTest, PoolCachesPerCellState) {
  Params p;
  p.sp_vectors = 256;
  ContextPool pool(p);
  const Condition cond;
  EvalContext a = pool.context("dag:8x40@3", cond);
  EvalContext b = pool.context("dag:8x40@3", cond);
  EXPECT_EQ(&a.netlist(), &b.netlist());
  EXPECT_EQ(&a.aging(), &b.aging());

  Condition hot = cond;
  hot.t_standby = 400.0;
  EvalContext c = pool.context("dag:8x40@3", hot);
  EXPECT_EQ(&c.netlist(), &a.netlist());  // netlist shared across conditions
  EXPECT_NE(&c.aging(), &a.aging());      // analyzer is per condition
  EXPECT_NE(&c.standby_leakage(), &a.standby_leakage());  // per T_standby
}

// --------------------------------------------------------------------------
// The acceptance campaign: one spec listing all eight analyses runs,
// resumes after interruption, and its store is byte-identical for every
// n_threads. Kept on one tiny generated netlist so the whole thing stays
// CI-cheap.

campaign::CampaignSpec all_analyses_spec() {
  const char* text = R"({
    "name": "all8",
    "netlists": ["dag:8x40@3"],
    "conditions": [
      {"ras": "1:9", "t_active": 400, "t_standby": 330, "years": 10}
    ],
    "analyses": ["aging", "criticality", "derate", "ivc", "lifetime",
                 "pareto", "sizing", "st"],
    "params": {"sp_vectors": 256, "samples": 10, "population": 8,
               "max_rounds": 2, "sizing_margin": 3.0, "sizing_max_moves": 40,
               "derate_years": [2, 5], "pareto_samples": 8,
               "pareto_rounds": 1, "pareto_flips": 2, "crit_samples": 30},
    "n_threads": 1,
    "shards": 1
  })";
  return campaign::spec_from_json(common::json::parse(text));
}

TEST(AnalysisCampaignTest, BitIdenticalAcrossThreadCountsForAllAnalyses) {
  campaign::CampaignSpec spec = all_analyses_spec();
  const std::string p1 = temp_path("all8_t1.jsonl");
  const campaign::RunStats s1 = campaign::run_campaign(spec, p1);
  ASSERT_EQ(s1.total, 8);
  ASSERT_EQ(s1.executed, 8);

  spec.n_threads = 4;
  const std::string p4 = temp_path("all8_t4.jsonl");
  const campaign::RunStats s4 = campaign::run_campaign(spec, p4);
  ASSERT_EQ(s4.executed, 8);

  const std::string bytes = read_file(p1);
  ASSERT_FALSE(bytes.empty());
  EXPECT_EQ(bytes, read_file(p4));

  // Interrupt: drop the final row (incl. newline); the resumed parallel run
  // re-executes exactly that task and restores the byte-identical file.
  const std::size_t cut = bytes.find_last_of('\n', bytes.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  const std::string pr = temp_path("all8_resume.jsonl");
  write_text(pr, bytes.substr(0, cut + 1));
  const campaign::RunStats rs = campaign::run_campaign(spec, pr);
  EXPECT_EQ(rs.skipped, 7);
  EXPECT_EQ(rs.executed, 1);
  EXPECT_EQ(read_file(pr), bytes);

  // Summaries of the serial and parallel stores agree byte for byte, cover
  // all eight rows, and report nothing stale.
  campaign::SummaryStats sum1, sum4;
  const report::Table t1 = campaign::summarize(spec, p1, &sum1);
  const report::Table t4 = campaign::summarize(spec, p4, &sum4);
  EXPECT_EQ(report::to_csv(t1), report::to_csv(t4));
  EXPECT_EQ(t1.rows.size(), 8u);
  EXPECT_EQ(sum1.stored, 8);
  EXPECT_EQ(sum1.summarized, 8);
  EXPECT_EQ(sum1.stale, 0);
  EXPECT_EQ(sum4.stale, 0);
}

TEST(AnalysisCampaignTest, StaleRowsAreCountedNotSilentlyDropped) {
  const char* text = R"({
    "name": "stale",
    "netlists": ["dag:8x40@3"],
    "analyses": ["aging"],
    "params": {"sp_vectors": 256},
    "n_threads": 1,
    "shards": 1
  })";
  campaign::CampaignSpec spec =
      campaign::spec_from_json(common::json::parse(text));
  const std::string path = temp_path("stale.jsonl");
  ASSERT_EQ(campaign::run_campaign(spec, path).executed, 1);

  // A shared-knob change invalidates the stored row: the re-run reports it
  // stale (and re-executes the task), and summarize accounts for it.
  spec.params.sp_vectors = 320;
  std::ostringstream progress;
  const campaign::RunStats stats =
      campaign::run_campaign(spec, path, &progress);
  EXPECT_EQ(stats.executed, 1);
  EXPECT_EQ(stats.stale, 1);
  EXPECT_NE(progress.str().find("1 stale store row"), std::string::npos)
      << progress.str();

  campaign::SummaryStats sum;
  const report::Table t = campaign::summarize(spec, path, &sum);
  EXPECT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(sum.stored, 2);
  EXPECT_EQ(sum.summarized, 1);
  EXPECT_EQ(sum.stale, 1);
}

}  // namespace
}  // namespace nbtisim::analysis
