// Unit tests for the probability-based MLV search (src/opt/mlv.*).

#include "opt/mlv.h"

#include <gtest/gtest.h>

#include <random>

#include "netlist/generators.h"

namespace nbtisim::opt {
namespace {

using leakage::LeakageAnalyzer;

class MlvTest : public ::testing::Test {
 protected:
  tech::Library lib_;
};

TEST_F(MlvTest, FindsSomethingOnSmallCircuit) {
  const netlist::Netlist nl = netlist::make_ripple_adder("add4", 4);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  const MlvResult r = find_mlv_set(an);
  ASSERT_FALSE(r.vectors.empty());
  EXPECT_EQ(r.vectors.size(), r.leakages.size());
  EXPECT_GT(r.min_leakage(), 0.0);
  // Set is sorted ascending by leakage.
  for (std::size_t i = 1; i < r.leakages.size(); ++i) {
    EXPECT_GE(r.leakages[i], r.leakages[i - 1]);
  }
}

TEST_F(MlvTest, SetRespectsLeakageWindow) {
  const netlist::Netlist nl = netlist::make_alu("alu", 4);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  MlvSearchParams p;
  p.leakage_window = 0.04;
  const MlvResult r = find_mlv_set(an, p);
  for (double l : r.leakages) {
    EXPECT_LE(l, r.min_leakage() * 1.04 + 1e-18);
  }
}

TEST_F(MlvTest, LeakagesMatchIndependentEvaluation) {
  const netlist::Netlist nl = netlist::make_parity_tree("p", 6);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  const MlvResult r = find_mlv_set(an);
  for (std::size_t i = 0; i < r.vectors.size(); ++i) {
    EXPECT_NEAR(an.circuit_leakage(r.vectors[i]), r.leakages[i], 1e-18);
  }
}

TEST_F(MlvTest, HeuristicApproachesExhaustiveOptimum) {
  // 8-input adder: 2^9 = 512 vectors, exhaustive is cheap.
  const netlist::Netlist nl = netlist::make_ripple_adder("add4", 4);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  const MlvResult heur = find_mlv_set(an, {.population = 128, .max_rounds = 30});
  const MlvResult exact = find_mlv_exhaustive(an);
  // Paper's heuristic claim: within a few percent of the optimum.
  EXPECT_LE(heur.min_leakage(), exact.min_leakage() * 1.10);
  EXPECT_GE(heur.min_leakage(), exact.min_leakage() * (1.0 - 1e-12));
}

TEST_F(MlvTest, MlvBeatsAverageRandomVector) {
  const netlist::Netlist nl = netlist::iscas85_like("c432");
  const LeakageAnalyzer an(nl, lib_, 330.0);
  const MlvResult r = find_mlv_set(an);
  std::mt19937_64 rng(21);
  double sum = 0.0;
  const int kTrials = 64;
  for (int k = 0; k < kTrials; ++k) {
    std::vector<bool> v(nl.num_inputs());
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = (rng() & 1) != 0;
    sum += an.circuit_leakage(v);
  }
  EXPECT_LT(r.min_leakage(), sum / kTrials);
}

TEST_F(MlvTest, DeterministicForFixedSeed) {
  const netlist::Netlist nl = netlist::make_alu("alu", 4);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  const MlvResult a = find_mlv_set(an);
  const MlvResult b = find_mlv_set(an);
  EXPECT_EQ(a.vectors, b.vectors);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST_F(MlvTest, BitIdenticalAcrossThreadCounts) {
  // Vector generation stays a single sequential stream; only the leakage
  // evaluations fan out, and insertion runs in generation order — so the
  // search is bit-identical for any thread count.
  const netlist::Netlist nl = netlist::make_alu("alu", 4);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  MlvSearchParams p;
  p.n_threads = 1;
  const MlvResult serial = find_mlv_set(an, p);
  const MlvResult serial_ex = find_mlv_exhaustive(an, 0.04, 24, 1);
  for (int n : {2, 8}) {
    p.n_threads = n;
    const MlvResult r = find_mlv_set(an, p);
    EXPECT_EQ(r.vectors, serial.vectors) << n;
    EXPECT_EQ(r.leakages, serial.leakages) << n;
    EXPECT_EQ(r.rounds, serial.rounds) << n;
    EXPECT_EQ(r.converged, serial.converged) << n;
    const MlvResult ex = find_mlv_exhaustive(an, 0.04, 24, n);
    EXPECT_EQ(ex.vectors, serial_ex.vectors) << n;
    EXPECT_EQ(ex.leakages, serial_ex.leakages) << n;
  }
}

TEST_F(MlvTest, InputProbabilitiesAreWellFormed) {
  const netlist::Netlist nl = netlist::make_alu("alu", 4);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  const MlvResult r = find_mlv_set(an);
  ASSERT_EQ(r.input_probabilities.size(),
            static_cast<std::size_t>(nl.num_inputs()));
  for (double p : r.input_probabilities) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_F(MlvTest, RejectsBadParams) {
  const netlist::Netlist nl = netlist::make_parity_tree("p", 4);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  EXPECT_THROW(find_mlv_set(an, {.population = 1}), std::invalid_argument);
  EXPECT_THROW(find_mlv_set(an, {.max_rounds = 0}), std::invalid_argument);
  EXPECT_THROW(find_mlv_set(an, {.leakage_window = -0.1}),
               std::invalid_argument);
}

TEST_F(MlvTest, ExhaustiveRejectsWideCircuits) {
  const netlist::Netlist nl = netlist::iscas85_like("c432");  // 36 inputs
  const LeakageAnalyzer an(nl, lib_, 330.0);
  EXPECT_THROW(find_mlv_exhaustive(an), std::invalid_argument);
}

TEST_F(MlvTest, ExhaustiveFindsTheTrueMinimumOnTinyCircuit) {
  const netlist::Netlist nl = netlist::make_parity_tree("p", 5);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  const MlvResult r = find_mlv_exhaustive(an);
  // Brute-force check.
  double best = 1e9;
  for (std::uint32_t bits = 0; bits < 32; ++bits) {
    std::vector<bool> v(5);
    for (int i = 0; i < 5; ++i) v[i] = (bits >> i) & 1u;
    best = std::min(best, an.circuit_leakage(v));
  }
  EXPECT_NEAR(r.min_leakage(), best, 1e-18);
}

// MLV quality must hold across standby temperatures.
class MlvTempSweep : public ::testing::TestWithParam<double> {};

TEST_P(MlvTempSweep, MinimumWithinWindowOfExhaustive) {
  const tech::Library lib;
  const netlist::Netlist nl = netlist::make_ripple_adder("a", 3);
  const LeakageAnalyzer an(nl, lib, GetParam());
  const MlvResult heur = find_mlv_set(an, {.population = 96});
  const MlvResult exact = find_mlv_exhaustive(an);
  EXPECT_LE(heur.min_leakage(), exact.min_leakage() * 1.10);
}

INSTANTIATE_TEST_SUITE_P(Temps, MlvTempSweep,
                         ::testing::Values(300.0, 330.0, 370.0, 400.0));

}  // namespace
}  // namespace nbtisim::opt
