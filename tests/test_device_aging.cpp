// Unit tests for the temperature-aware device evaluator
// (src/nbti/device_aging.*) — reproduces the paper's Table 1 / Fig. 3 / Fig. 4
// qualitative structure at device level.

#include "nbti/device_aging.h"

#include <gtest/gtest.h>

#include "tech/units.h"

namespace nbtisim::nbti {
namespace {

class DeviceAgingTest : public ::testing::Test {
 protected:
  DeviceAging model_;
  DeviceStress worst_{0.5, StandbyMode::Stressed, 1.0, 0.22};

  ModeSchedule ras(double standby_parts, double t_standby) const {
    return ModeSchedule::from_ras(1, standby_parts, 1000.0, 400.0, t_standby);
  }
};

TEST_F(DeviceAgingTest, ZeroAtZeroTime) {
  EXPECT_EQ(model_.delta_vth(worst_, ras(9, 330.0), 0.0), 0.0);
}

TEST_F(DeviceAgingTest, RejectsNegativeTime) {
  EXPECT_THROW(model_.delta_vth(worst_, ras(9, 330.0), -5.0),
               std::invalid_argument);
}

TEST_F(DeviceAgingTest, MonotoneInTime) {
  double prev = 0.0;
  for (double t : {1e5, 1e6, 1e7, 1e8, 3e8}) {
    const double d = model_.delta_vth(worst_, ras(9, 330.0), t);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST_F(DeviceAgingTest, MonotoneInStandbyTemperature) {
  // Fig. 4: hotter standby -> larger shift (standby-stressed device).
  double prev = 0.0;
  for (double ts : {330.0, 350.0, 370.0, 390.0, 400.0}) {
    const double d = model_.delta_vth(worst_, ras(5, ts), kTenYears);
    EXPECT_GT(d, prev) << "T_standby=" << ts;
    prev = d;
  }
}

TEST_F(DeviceAgingTest, Table1HotStandbyGrowsWithStandbyShare) {
  // T_standby = T_active = 400 K: more standby = more stress time.
  double prev = 0.0;
  for (double parts : {1.0, 3.0, 5.0, 7.0, 9.0}) {
    const double d = model_.delta_vth(worst_, ras(parts, 400.0), kTenYears);
    EXPECT_GT(d, prev) << "RAS=1:" << parts;
    prev = d;
  }
}

TEST_F(DeviceAgingTest, Table1ColdStandbyShrinksWithStandbyShare) {
  // T_standby = 330 K: more standby = more slow-diffusion time.
  double prev = 1.0;
  for (double parts : {1.0, 3.0, 5.0, 7.0, 9.0}) {
    const double d = model_.delta_vth(worst_, ras(parts, 330.0), kTenYears);
    EXPECT_LT(d, prev) << "RAS=1:" << parts;
    prev = d;
  }
}

TEST_F(DeviceAgingTest, Table1CrossoverTemperatureIsFlat) {
  // Near T_standby ~= 370 K the paper observes RAS-insensitivity.
  const double d1 = model_.delta_vth(worst_, ras(1, 370.0), kTenYears);
  const double d9 = model_.delta_vth(worst_, ras(9, 370.0), kTenYears);
  EXPECT_NEAR(d1 / d9, 1.0, 0.05);
}

TEST_F(DeviceAgingTest, Table1MagnitudeBand) {
  // Worst cell of Table 1 (RAS = 1:9, both modes at 400 K): tens of mV.
  const double d = model_.delta_vth(worst_, ras(9, 400.0), kTenYears);
  EXPECT_GT(to_mV(d), 30.0);
  EXPECT_LT(to_mV(d), 60.0);
}

TEST_F(DeviceAgingTest, WorstCaseTempAssumptionIsPessimistic) {
  const ModeSchedule s = ras(9, 330.0);
  const double aware = model_.delta_vth(worst_, s, kTenYears);
  const double pessimistic = model_.delta_vth_worst_case_temp(worst_, s, kTenYears);
  EXPECT_GT(pessimistic, aware);
  // And it matches the explicit hot-standby schedule.
  EXPECT_NEAR(pessimistic, model_.delta_vth(worst_, ras(9, 400.0), kTenYears),
              1e-15);
}

TEST_F(DeviceAgingTest, RelaxedStandbyAgesLessThanStressedStandby) {
  DeviceStress relaxed = worst_;
  relaxed.standby = StandbyMode::Relaxed;
  const ModeSchedule s = ras(9, 330.0);
  EXPECT_LT(model_.delta_vth(relaxed, s, kTenYears),
            model_.delta_vth(worst_, s, kTenYears));
}

TEST_F(DeviceAgingTest, StandbyTemperatureIrrelevantWhenRelaxed) {
  // Table 4's observation: "the temperature has negligible effect on [the]
  // NBTI relaxation phase" — by construction, exact here.
  DeviceStress relaxed = worst_;
  relaxed.standby = StandbyMode::Relaxed;
  const double cold = model_.delta_vth(relaxed, ras(9, 330.0), kTenYears);
  const double hot = model_.delta_vth(relaxed, ras(9, 400.0), kTenYears);
  EXPECT_NEAR(cold, hot, 1e-15);
}

TEST_F(DeviceAgingTest, NeverStressedDeviceDoesNotAge) {
  DeviceStress idle{0.0, StandbyMode::Relaxed, 1.0, 0.22};
  EXPECT_EQ(model_.delta_vth(idle, ras(9, 330.0), kTenYears), 0.0);
}

TEST_F(DeviceAgingTest, SeriesMatchesPointEvaluations) {
  const ModeSchedule s = ras(5, 330.0);
  const auto series = model_.delta_vth_series(worst_, s, 1e6, 1e8, 5);
  ASSERT_EQ(series.size(), 5u);
  for (const auto& [t, d] : series) {
    EXPECT_NEAR(d, model_.delta_vth(worst_, s, t), 1e-15);
  }
}

TEST_F(DeviceAgingTest, HigherInitialVthAgesLess) {
  DeviceStress low = worst_, high = worst_;
  low.vth0 = 0.20;
  high.vth0 = 0.40;
  const ModeSchedule s = ras(1, 330.0);
  EXPECT_GT(model_.delta_vth(low, s, kTenYears),
            model_.delta_vth(high, s, kTenYears));
}

TEST_F(DeviceAgingTest, StressContextIsBitIdenticalToDirectEval) {
  // The precomputed-context fast path must not change a single bit: the
  // circuit pipeline caches contexts and the determinism guarantee depends
  // on both paths producing the same doubles.
  const std::vector<DeviceStress> stresses = {
      worst_,
      {0.23, StandbyMode::Relaxed, 1.0, 0.22},
      {0.0, StandbyMode::Relaxed, 1.0, 0.25},   // never stressed
      {1.0, StandbyMode::Stressed, 1.1, 0.20},  // DC limit
      {0.6, StandbyMode::Stressed, 1.0, 0.22, 0.25},
  };
  for (double parts : {1.0, 9.0}) {
    const ModeSchedule s = ras(parts, 330.0);
    for (const DeviceStress& stress : stresses) {
      const DeviceAging::StressContext ctx = model_.make_context(stress, s);
      for (double t : {1.0, 500.0, 1e4, 1e6, 3e8}) {
        EXPECT_EQ(model_.delta_vth(ctx, t), model_.delta_vth(stress, s, t))
            << "RAS=1:" << parts << " t=" << t;
      }
      EXPECT_EQ(model_.delta_vth(ctx, 0.0), 0.0);
      EXPECT_THROW(model_.delta_vth(ctx, -1.0), std::invalid_argument);
    }
  }
}

TEST_F(DeviceAgingTest, StressContextMatchesExactRecursionToo) {
  const DeviceAging exact({}, AcEvalMethod::ExactRecursion);
  const ModeSchedule s = ras(9, 330.0);
  const DeviceAging::StressContext ctx = exact.make_context(worst_, s);
  for (double t : {1e5, 1e6, 1e7}) {
    EXPECT_EQ(exact.delta_vth(ctx, t), exact.delta_vth(worst_, s, t));
  }
}

TEST_F(DeviceAgingTest, ExactRecursionMatchesClosedForm) {
  const DeviceAging exact({}, AcEvalMethod::ExactRecursion);
  const ModeSchedule s = ras(9, 330.0);
  // Moderate horizon keeps the exact recursion cheap (3e5 cycles).
  const double a = model_.delta_vth(worst_, s, 1e7);
  const double b = exact.delta_vth(worst_, s, 1e7);
  EXPECT_NEAR(a / b, 1.0, 2e-3);
}

// Full RAS x T_standby sweep: degradation is monotone in standby
// temperature for every RAS split (the structure behind Table 1).
class RasTempSweep : public ::testing::TestWithParam<double> {};

TEST_P(RasTempSweep, MonotoneInStandbyTemperature) {
  const DeviceAging model;
  const DeviceStress stress{0.5, StandbyMode::Stressed, 1.0, 0.22};
  const double parts = GetParam();
  double prev = 0.0;
  for (double ts = 330.0; ts <= 400.0; ts += 10.0) {
    const ModeSchedule s = ModeSchedule::from_ras(1, parts, 1000.0, 400.0, ts);
    const double d = model.delta_vth(stress, s, kTenYears);
    EXPECT_GT(d, prev) << "RAS=1:" << parts << " Ts=" << ts;
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(RasSplits, RasTempSweep,
                         ::testing::Values(1.0, 3.0, 5.0, 7.0, 9.0));

}  // namespace
}  // namespace nbtisim::nbti
