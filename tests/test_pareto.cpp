// Unit tests for Pareto co-optimization of standby vectors (src/opt/pareto.*)
// and statistical gate criticality (src/variation/criticality.*).

#include "opt/pareto.h"

#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "variation/criticality.h"

namespace nbtisim {
namespace {

class ParetoTest : public ::testing::Test {
 protected:
  ParetoTest() : c432_(netlist::iscas85_like("c432")) {
    cond_.schedule = nbti::ModeSchedule::from_ras(1, 5, 600.0, 400.0, 400.0);
    cond_.sp_vectors = 512;
    analyzer_.emplace(c432_, lib_, cond_);
    leak_.emplace(c432_, lib_, 330.0);
  }

  opt::ParetoResult run(opt::ParetoParams p = {.random_samples = 24,
                                               .improve_rounds = 2,
                                               .flips_per_member = 4}) {
    return opt::pareto_standby_vectors(*analyzer_, *leak_, p);
  }

  tech::Library lib_;
  netlist::Netlist c432_;
  aging::AgingConditions cond_;
  std::optional<aging::AgingAnalyzer> analyzer_;
  std::optional<leakage::LeakageAnalyzer> leak_;
};

TEST_F(ParetoTest, FrontIsNonDominatedAndSorted) {
  const opt::ParetoResult r = run();
  ASSERT_GE(r.front.size(), 1u);
  for (std::size_t i = 1; i < r.front.size(); ++i) {
    EXPECT_GT(r.front[i].leakage, r.front[i - 1].leakage);
    // Ascending leakage must mean descending degradation on a clean front.
    EXPECT_LT(r.front[i].degradation_percent,
              r.front[i - 1].degradation_percent);
  }
  EXPECT_GT(r.evaluated, 20);
}

TEST_F(ParetoTest, EndpointsAreConsistent) {
  const opt::ParetoResult r = run();
  EXPECT_LE(r.min_leakage().leakage, r.min_degradation().leakage);
  EXPECT_GE(r.min_leakage().degradation_percent,
            r.min_degradation().degradation_percent);
}

TEST_F(ParetoTest, PointsMatchIndependentEvaluation) {
  const opt::ParetoResult r = run();
  const opt::ParetoPoint& p = r.front.front();
  EXPECT_NEAR(leak_->circuit_leakage(p.vector), p.leakage, 1e-18);
  EXPECT_NEAR(
      analyzer_->analyze(aging::StandbyPolicy::from_vector(p.vector)).percent(),
      p.degradation_percent, 1e-9);
}

TEST_F(ParetoTest, PickInterpolatesTheTradeoff) {
  const opt::ParetoResult r = run();
  const opt::ParetoPoint& leaky = r.pick(1.0);
  const opt::ParetoPoint& agey = r.pick(0.0);
  EXPECT_DOUBLE_EQ(leaky.leakage, r.min_leakage().leakage);
  EXPECT_DOUBLE_EQ(agey.degradation_percent,
                   r.min_degradation().degradation_percent);
  EXPECT_THROW(r.pick(1.5), std::invalid_argument);
}

TEST_F(ParetoTest, HotStandbyWidensTheFront) {
  // At 400 K standby, the degradation axis is meaningful (the paper's IVC
  // conclusion inverts at hot standby).
  const opt::ParetoResult r = run();
  EXPECT_GT(r.degradation_range(), 0.05);
}

TEST_F(ParetoTest, DeterministicPerSeed) {
  const opt::ParetoResult a = run();
  const opt::ParetoResult b = run();
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(a.front[i].vector, b.front[i].vector);
  }
}

TEST_F(ParetoTest, RejectsBadInputs) {
  EXPECT_THROW(run({.random_samples = 1}), std::invalid_argument);
  const netlist::Netlist other = netlist::make_parity_tree("p", 4);
  const leakage::LeakageAnalyzer other_leak(other, lib_, 330.0);
  EXPECT_THROW(opt::pareto_standby_vectors(*analyzer_, other_leak, {}),
               std::invalid_argument);
}

class CriticalityTest : public ::testing::Test {
 protected:
  CriticalityTest() : c880_(netlist::iscas85_like("c880")) {
    cond_.sp_vectors = 512;
    analyzer_.emplace(c880_, lib_, cond_);
  }

  tech::Library lib_;
  netlist::Netlist c880_;
  aging::AgingConditions cond_;
  std::optional<aging::AgingAnalyzer> analyzer_;
};

TEST_F(CriticalityTest, ProbabilitiesAreWellFormed) {
  const variation::CriticalityResult r =
      variation::gate_criticality(*analyzer_, {.samples = 100});
  ASSERT_EQ(r.probability.size(), static_cast<std::size_t>(c880_.num_gates()));
  double total = 0.0;
  for (double p : r.probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    total += p;
  }
  // Each sample contributes a whole path of gates.
  EXPECT_GT(total, 1.0);
  EXPECT_GE(r.distinct_paths, 1);
}

TEST_F(CriticalityTest, NominalCriticalPathGatesAreLikelyCritical) {
  const variation::CriticalityResult r =
      variation::gate_criticality(*analyzer_, {.samples = 150});
  const sta::TimingResult nominal = analyzer_->sta().analyze_fresh(400.0);
  double nominal_path_mass = 0.0;
  int nominal_gates = 0;
  for (netlist::NodeId n : nominal.critical_path) {
    const int gi = c880_.driver_gate(n);
    if (gi >= 0) {
      nominal_path_mass += r.probability[gi];
      ++nominal_gates;
    }
  }
  ASSERT_GT(nominal_gates, 0);
  EXPECT_GT(nominal_path_mass / nominal_gates, 0.2);
}

TEST_F(CriticalityTest, VariationSpreadsCriticality) {
  const variation::CriticalityResult tight =
      variation::gate_criticality(*analyzer_, {.sigma_vth = 0.002,
                                               .samples = 100});
  const variation::CriticalityResult wide =
      variation::gate_criticality(*analyzer_, {.sigma_vth = 0.04,
                                               .samples = 100});
  // More variation -> more gates carry non-trivial criticality.
  EXPECT_GE(wide.critical_set(0.02).size(), tight.critical_set(0.02).size());
}

TEST_F(CriticalityTest, AgedCriticalitySupported) {
  const variation::CriticalityResult r = variation::gate_criticality(
      *analyzer_, {.samples = 60, .aged = true});
  EXPECT_FALSE(r.critical_set(0.05).empty());
}

TEST_F(CriticalityTest, CriticalSetSortedByProbability) {
  const variation::CriticalityResult r =
      variation::gate_criticality(*analyzer_, {.samples = 80});
  const std::vector<int> set = r.critical_set(0.01);
  for (std::size_t i = 1; i < set.size(); ++i) {
    EXPECT_GE(r.probability[set[i - 1]], r.probability[set[i]]);
  }
}

TEST_F(CriticalityTest, BitIdenticalAcrossThreadCounts) {
  // Samples store their critical paths in disjoint slots and the hit-count
  // reduction runs serially in sample order.
  variation::CriticalityParams p{.samples = 80, .seed = 3};
  p.n_threads = 1;
  const variation::CriticalityResult serial =
      variation::gate_criticality(*analyzer_, p);
  for (int n : {2, 8}) {
    p.n_threads = n;
    const variation::CriticalityResult r =
        variation::gate_criticality(*analyzer_, p);
    EXPECT_EQ(r.probability, serial.probability) << n;
    EXPECT_EQ(r.distinct_paths, serial.distinct_paths) << n;
  }
}

TEST_F(CriticalityTest, RejectsBadParameters) {
  EXPECT_THROW(variation::gate_criticality(*analyzer_, {.samples = 1}),
               std::invalid_argument);
  EXPECT_THROW(
      variation::gate_criticality(*analyzer_, {.sigma_vth = -0.1}),
      std::invalid_argument);
}

}  // namespace
}  // namespace nbtisim
