/// \file reference.h
/// \brief Deliberately naive reference evaluators for the differential tests.
///
/// Each function here recomputes a result the slow, obvious way — full delay
/// rebuild + full STA per sizing trial, a fresh analyze() per derate cell, a
/// serial loop per electrothermal sweep — and serves as the oracle that
/// tests/test_differential.cpp property-tests the optimized engines against
/// across random netlists, seeds, thread counts and horizons.  Keep them
/// boring: no caching, no incremental updates, no parallelism.  The one
/// deliberate sophistication is FP discipline — every accumulation mirrors
/// the production expression order, so the comparisons can demand bitwise
/// equality instead of tolerances.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "aging/aging.h"
#include "opt/sizing.h"
#include "report/derate.h"
#include "tech/units.h"
#include "thermal/electrothermal.h"

namespace nbtisim::testsupport {

/// All aged gate delays for the given per-gate size factors, rebuilt from
/// nothing: rediscovers the fanout structure on every call.
inline std::vector<double> reference_aged_delays(
    const aging::AgingAnalyzer& analyzer, const std::vector<double>& dvth,
    const std::vector<double>& sizes) {
  const sta::StaEngine& sta = analyzer.sta();
  const tech::Library& lib = sta.library();
  const netlist::Netlist& nl = sta.netlist();
  const double temp = analyzer.conditions().sta_temperature;
  const double alpha = lib.params().pmos.alpha;
  const double vdd = lib.params().vdd;
  const double vth0 = lib.params().pmos.vth0;
  const double wire = lib.params().wire_cap_per_fanout;
  const double po_load = lib.input_cap(lib.find("BUF"), 0) + wire;

  std::vector<double> delays(nl.num_gates());
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    const netlist::NodeId out = nl.gate(gi).output;
    // Size-independent load first, then the sized sink pins — the same
    // two-phase accumulation SizedTiming uses.
    double fixed = 0.0;
    std::vector<std::pair<int, double>> sink_caps;
    for (int sink : nl.fanout_gates(out)) {
      const netlist::Gate& sg = nl.gate(sink);
      for (std::size_t pin = 0; pin < sg.fanins.size(); ++pin) {
        if (sg.fanins[pin] == out) {
          sink_caps.emplace_back(
              sink, lib.input_cap(sta.gate_cell(sink), static_cast<int>(pin)));
          fixed += wire;
        }
      }
    }
    if (std::find(nl.outputs().begin(), nl.outputs().end(), out) !=
        nl.outputs().end()) {
      fixed += po_load;
    }
    double load = fixed;
    for (const auto& [sink, cap] : sink_caps) load += cap * sizes[sink];
    delays[gi] = lib.cell_delay(sta.gate_cell(gi), load / sizes[gi], temp) *
                 (1.0 + alpha * dvth[gi] / (vdd - vth0));
  }
  return delays;
}

/// Full-rebuild STA for the given size factors.
inline sta::TimingResult reference_aged_timing(
    const aging::AgingAnalyzer& analyzer, const std::vector<double>& dvth,
    const std::vector<double>& sizes) {
  return analyzer.sta().analyze(reference_aged_delays(analyzer, dvth, sizes));
}

/// The pre-optimization sizing loop: serial, full delay rebuild + full STA
/// per candidate trial, and a redundant full re-evaluation after every
/// accepted move.
inline opt::SizingResult reference_size_for_lifetime(
    const aging::AgingAnalyzer& analyzer, const aging::StandbyPolicy& policy,
    const opt::SizingParams& params = {}) {
  const netlist::Netlist& nl = analyzer.sta().netlist();
  const std::vector<double> dvth = analyzer.gate_dvth(policy);

  opt::SizingResult r;
  r.sizes.assign(nl.num_gates(), 1.0);
  r.fresh_delay = analyzer.sta()
                      .analyze(analyzer.sta().gate_delays(
                          analyzer.conditions().sta_temperature))
                      .max_delay;
  r.spec = r.fresh_delay * (1.0 + params.spec_margin_percent / 100.0);

  sta::TimingResult aged = reference_aged_timing(analyzer, dvth, r.sizes);
  r.aged_before = aged.max_delay;

  while (aged.max_delay > r.spec && r.moves < params.max_moves) {
    int best_gate = -1;
    double best_ratio = 0.0;
    for (netlist::NodeId node : aged.critical_path) {
      const int gi = nl.driver_gate(node);
      if (gi < 0) continue;
      if (r.sizes[gi] + params.size_step > params.max_size) continue;
      std::vector<double> trial = r.sizes;
      trial[gi] += params.size_step;
      const double d = reference_aged_timing(analyzer, dvth, trial).max_delay;
      const double gain = aged.max_delay - d;
      if (gain > 0.0 && gain / params.size_step > best_ratio) {
        best_ratio = gain / params.size_step;
        best_gate = gi;
      }
    }
    if (best_gate < 0) break;
    r.sizes[best_gate] += params.size_step;
    ++r.moves;
    aged = reference_aged_timing(analyzer, dvth, r.sizes);
  }

  r.aged_after = aged.max_delay;
  r.met = aged.max_delay <= r.spec;
  return r;
}

/// Per-cell derate table: a fresh full analyze() for every (policy, year).
inline report::DerateTable reference_derate_table(
    const aging::AgingAnalyzer& analyzer, std::vector<double> years) {
  const netlist::Netlist& nl = analyzer.sta().netlist();
  report::DerateTable table;
  table.years = std::move(years);
  table.policy_names = {"worst_case", "inputs_all_zero", "best_case"};
  const std::vector<aging::StandbyPolicy> policies{
      aging::StandbyPolicy::all_stressed(),
      aging::StandbyPolicy::from_vector(
          std::vector<bool>(nl.num_inputs(), false)),
      aging::StandbyPolicy::all_relaxed(),
  };
  for (const aging::StandbyPolicy& policy : policies) {
    std::vector<double> col;
    for (double y : table.years) {
      const aging::DegradationReport rep =
          analyzer.analyze(policy, y * kSecondsPerYear);
      col.push_back(rep.aged_delay / rep.fresh_delay);
    }
    table.factors.push_back(std::move(col));
  }
  return table;
}

/// Serial electrothermal sweep: one solve_operating_point per power.
inline std::vector<thermal::OperatingPoint> reference_operating_points(
    const netlist::Netlist& nl, const tech::Library& lib,
    const thermal::RcThermalModel& model,
    const std::vector<bool>& standby_vector,
    const std::vector<double>& dynamic_powers,
    const thermal::ElectrothermalParams& params = {}) {
  std::vector<thermal::OperatingPoint> points;
  points.reserve(dynamic_powers.size());
  for (double p : dynamic_powers) {
    thermal::ElectrothermalParams cell = params;
    cell.dynamic_power_w = p;
    points.push_back(
        thermal::solve_operating_point(nl, lib, model, standby_vector, cell));
  }
  return points;
}

}  // namespace nbtisim::testsupport
