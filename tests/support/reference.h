/// \file reference.h
/// \brief Deliberately naive reference evaluators for the differential tests.
///
/// Each function here recomputes a result the slow, obvious way — full delay
/// rebuild + full STA per sizing trial, a fresh analyze() per derate cell, a
/// serial loop per electrothermal sweep — and serves as the oracle that
/// tests/test_differential.cpp property-tests the optimized engines against
/// across random netlists, seeds, thread counts and horizons.  Keep them
/// boring: no caching, no incremental updates, no parallelism.  The one
/// deliberate sophistication is FP discipline — every accumulation mirrors
/// the production expression order, so the comparisons can demand bitwise
/// equality instead of tolerances.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "aging/aging.h"
#include "aging/failure.h"
#include "campaign/store.h"
#include "common/json.h"
#include "opt/sizing.h"
#include "report/derate.h"
#include "report/report.h"
#include "tech/units.h"
#include "thermal/electrothermal.h"

namespace nbtisim::testsupport {

/// All aged gate delays for the given per-gate size factors, rebuilt from
/// nothing: rediscovers the fanout structure on every call.
inline std::vector<double> reference_aged_delays(
    const aging::AgingAnalyzer& analyzer, const std::vector<double>& dvth,
    const std::vector<double>& sizes) {
  const sta::StaEngine& sta = analyzer.sta();
  const tech::Library& lib = sta.library();
  const netlist::Netlist& nl = sta.netlist();
  const double temp = analyzer.conditions().sta_temperature;
  const double alpha = lib.params().pmos.alpha;
  const double vdd = lib.params().vdd;
  const double vth0 = lib.params().pmos.vth0;
  const double wire = lib.params().wire_cap_per_fanout;
  const double po_load = lib.input_cap(lib.find("BUF"), 0) + wire;

  std::vector<double> delays(nl.num_gates());
  for (int gi = 0; gi < nl.num_gates(); ++gi) {
    const netlist::NodeId out = nl.gate(gi).output;
    // Size-independent load first, then the sized sink pins — the same
    // two-phase accumulation SizedTiming uses.
    double fixed = 0.0;
    std::vector<std::pair<int, double>> sink_caps;
    for (int sink : nl.fanout_gates(out)) {
      const netlist::Gate& sg = nl.gate(sink);
      for (std::size_t pin = 0; pin < sg.fanins.size(); ++pin) {
        if (sg.fanins[pin] == out) {
          sink_caps.emplace_back(
              sink, lib.input_cap(sta.gate_cell(sink), static_cast<int>(pin)));
          fixed += wire;
        }
      }
    }
    if (std::find(nl.outputs().begin(), nl.outputs().end(), out) !=
        nl.outputs().end()) {
      fixed += po_load;
    }
    double load = fixed;
    for (const auto& [sink, cap] : sink_caps) load += cap * sizes[sink];
    delays[gi] = lib.cell_delay(sta.gate_cell(gi), load / sizes[gi], temp) *
                 (1.0 + alpha * dvth[gi] / (vdd - vth0));
  }
  return delays;
}

/// Full-rebuild STA for the given size factors.
inline sta::TimingResult reference_aged_timing(
    const aging::AgingAnalyzer& analyzer, const std::vector<double>& dvth,
    const std::vector<double>& sizes) {
  return analyzer.sta().analyze(reference_aged_delays(analyzer, dvth, sizes));
}

/// The pre-optimization sizing loop: serial, full delay rebuild + full STA
/// per candidate trial, and a redundant full re-evaluation after every
/// accepted move.
inline opt::SizingResult reference_size_for_lifetime(
    const aging::AgingAnalyzer& analyzer, const aging::StandbyPolicy& policy,
    const opt::SizingParams& params = {}) {
  const netlist::Netlist& nl = analyzer.sta().netlist();
  const std::vector<double> dvth = analyzer.gate_dvth(policy);

  opt::SizingResult r;
  r.sizes.assign(nl.num_gates(), 1.0);
  r.fresh_delay = analyzer.sta()
                      .analyze(analyzer.sta().gate_delays(
                          analyzer.conditions().sta_temperature))
                      .max_delay;
  r.spec = r.fresh_delay * (1.0 + params.spec_margin_percent / 100.0);

  sta::TimingResult aged = reference_aged_timing(analyzer, dvth, r.sizes);
  r.aged_before = aged.max_delay;

  while (aged.max_delay > r.spec && r.moves < params.max_moves) {
    int best_gate = -1;
    double best_ratio = 0.0;
    for (netlist::NodeId node : aged.critical_path) {
      const int gi = nl.driver_gate(node);
      if (gi < 0) continue;
      if (r.sizes[gi] + params.size_step > params.max_size) continue;
      std::vector<double> trial = r.sizes;
      trial[gi] += params.size_step;
      const double d = reference_aged_timing(analyzer, dvth, trial).max_delay;
      const double gain = aged.max_delay - d;
      if (gain > 0.0 && gain / params.size_step > best_ratio) {
        best_ratio = gain / params.size_step;
        best_gate = gi;
      }
    }
    if (best_gate < 0) break;
    r.sizes[best_gate] += params.size_step;
    ++r.moves;
    aged = reference_aged_timing(analyzer, dvth, r.sizes);
  }

  r.aged_after = aged.max_delay;
  r.met = aged.max_delay <= r.spec;
  return r;
}

/// Per-cell derate table: a fresh full analyze() for every (policy, year).
inline report::DerateTable reference_derate_table(
    const aging::AgingAnalyzer& analyzer, std::vector<double> years) {
  const netlist::Netlist& nl = analyzer.sta().netlist();
  report::DerateTable table;
  table.years = std::move(years);
  table.policy_names = {"worst_case", "inputs_all_zero", "best_case"};
  const std::vector<aging::StandbyPolicy> policies{
      aging::StandbyPolicy::all_stressed(),
      aging::StandbyPolicy::from_vector(
          std::vector<bool>(nl.num_inputs(), false)),
      aging::StandbyPolicy::all_relaxed(),
  };
  for (const aging::StandbyPolicy& policy : policies) {
    std::vector<double> col;
    for (double y : table.years) {
      const aging::DegradationReport rep =
          analyzer.analyze(policy, y * kSecondsPerYear);
      col.push_back(rep.aged_delay / rep.fresh_delay);
    }
    table.factors.push_back(std::move(col));
  }
  return table;
}

/// Serial failure suite: plain per-device delta_vth calls (no stress
/// contexts), serial per-gate loops, and its own inline crossing /
/// Weibull arithmetic — mirroring the production expression order so the
/// differential test can demand bitwise equality.
inline aging::FailureReport reference_failure_report(
    const aging::AgingAnalyzer& analyzer, const aging::StandbyPolicy& policy,
    const aging::FailureParams& params = {}) {
  const netlist::Netlist& nl = analyzer.sta().netlist();
  const tech::Library& lib = analyzer.sta().library();
  const aging::AgingConditions& cond = analyzer.conditions();
  const sim::SignalStats& stats = analyzer.signal_stats();
  const int n_gates = nl.num_gates();
  const double vdd = lib.params().vdd;
  const double period = cond.schedule.period();
  const double active_fraction =
      period > 0.0 ? cond.schedule.t_active / period : 0.0;

  // The same geometric grid as the production suite.
  const double t_max = params.max_years * kSecondsPerYear;
  const double t_min = t_max / 1.0e3;
  const double ratio =
      std::pow(t_max / t_min, 1.0 / static_cast<double>(params.time_points - 1));
  std::vector<double> t_sec(params.time_points);
  for (int i = 0; i < params.time_points; ++i) {
    t_sec[i] = t_min * std::pow(ratio, static_cast<double>(i));
  }
  t_sec.back() = t_max;
  const int n_points = static_cast<int>(t_sec.size());

  const auto naive_crossing = [&](const std::vector<double>& v) {
    double t_prev = 0.0;
    double v_prev = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (v[i] >= params.fail_dvth) {
        if (v[i] <= v_prev) return t_sec[i];
        return t_prev + (t_sec[i] - t_prev) * (params.fail_dvth - v_prev) /
                            (v[i] - v_prev);
      }
      t_prev = t_sec[i];
      v_prev = v[i];
    }
    return aging::kNeverFails;
  };

  aging::FailureReport rep;
  rep.weibull_beta = params.weibull_beta;

  if (params.enable_nbti) {
    std::vector<std::vector<double>> series(n_points);
    for (int i = 0; i < n_points; ++i) {
      series[i] = analyzer.gate_dvth(policy, t_sec[i]);
    }
    aging::MechanismMttf m;
    m.name = "nbti";
    m.gate_mttf.assign(n_gates, aging::kNeverFails);
    for (int gi = 0; gi < n_gates; ++gi) {
      std::vector<double> v(n_points);
      for (int i = 0; i < n_points; ++i) v[i] = series[i][gi];
      m.gate_mttf[gi] = naive_crossing(v) / kSecondsPerYear;
    }
    rep.mechanisms.push_back(std::move(m));
  }

  if (params.multi.enable_pbti) {
    const aging::PbtiStressSet pbti = aging::build_pbti_stress(analyzer,
                                                               policy);
    const nbti::DeviceAging model(cond.rd, cond.method);
    aging::MechanismMttf m;
    m.name = "pbti";
    m.gate_mttf.assign(n_gates, aging::kNeverFails);
    for (int gi = 0; gi < n_gates; ++gi) {
      std::vector<double> worst(n_points, 0.0);
      for (int di = pbti.gate_begin[gi]; di < pbti.gate_begin[gi + 1]; ++di) {
        for (int i = 0; i < n_points; ++i) {
          // The one-shot overload — no StressContext — which the device
          // model documents as bit-identical to the cached path.
          worst[i] = std::max(
              worst[i], params.multi.pbti.ratio *
                            model.delta_vth(pbti.devices[di], cond.schedule,
                                            t_sec[i]));
        }
      }
      m.gate_mttf[gi] = naive_crossing(worst) / kSecondsPerYear;
    }
    rep.mechanisms.push_back(std::move(m));
  }

  if (params.multi.enable_hci) {
    aging::MechanismMttf m;
    m.name = "hci";
    m.gate_mttf.assign(n_gates, aging::kNeverFails);
    for (int gi = 0; gi < n_gates; ++gi) {
      const double activity = stats.activity[nl.gate(gi).output];
      std::vector<double> v(n_points);
      for (int i = 0; i < n_points; ++i) {
        v[i] = nbti::hci_delta_vth(params.multi.hci, activity,
                                   params.multi.clock_hz, cond.schedule,
                                   t_sec[i]);
      }
      m.gate_mttf[gi] = naive_crossing(v) / kSecondsPerYear;
    }
    rep.mechanisms.push_back(std::move(m));
  }

  if (params.enable_tddb) {
    double rate = 0.0;
    if (active_fraction > 0.0) {
      rate += active_fraction /
              nbti::tddb_mttf(params.tddb, vdd, cond.schedule.temp_active);
    }
    if (active_fraction < 1.0) {
      rate += (1.0 - active_fraction) /
              nbti::tddb_mttf(params.tddb, vdd, cond.schedule.temp_standby);
    }
    const double mttf =
        rate > 0.0 ? 1.0 / rate / kSecondsPerYear : aging::kNeverFails;
    aging::MechanismMttf m;
    m.name = "tddb";
    m.gate_mttf.assign(n_gates, mttf);
    rep.mechanisms.push_back(std::move(m));
  }

  if (params.enable_em) {
    const sta::StaEngine& sta = analyzer.sta();
    const double wire = lib.params().wire_cap_per_fanout;
    const double po_load = lib.input_cap(lib.find("BUF"), 0) + wire;
    aging::MechanismMttf m;
    m.name = "em";
    m.gate_mttf.assign(n_gates, aging::kNeverFails);
    for (int gi = 0; gi < n_gates; ++gi) {
      const netlist::NodeId out = nl.gate(gi).output;
      double load = 0.0;
      for (int sink : nl.fanout_gates(out)) {
        const netlist::Gate& sg = nl.gate(sink);
        for (std::size_t pin = 0; pin < sg.fanins.size(); ++pin) {
          if (sg.fanins[pin] == out) {
            load += wire +
                    lib.input_cap(sta.gate_cell(sink), static_cast<int>(pin));
          }
        }
      }
      if (std::find(nl.outputs().begin(), nl.outputs().end(), out) !=
          nl.outputs().end()) {
        load += po_load;
      }
      const double current =
          stats.activity[out] * params.multi.clock_hz * load * vdd;
      if (active_fraction <= 0.0) continue;
      m.gate_mttf[gi] =
          nbti::em_mttf(params.em, current, cond.schedule.temp_active) /
          active_fraction / kSecondsPerYear;
    }
    rep.mechanisms.push_back(std::move(m));
  }

  const double gamma = std::tgamma(1.0 + 1.0 / params.weibull_beta);
  rep.lambda = 0.0;
  for (aging::MechanismMttf& m : rep.mechanisms) {
    double lm = 0.0;
    for (double mttf : m.gate_mttf) {
      if (std::isfinite(mttf) && mttf > 0.0) {
        lm += std::pow(gamma / mttf, params.weibull_beta);
      }
    }
    m.system_mttf = lm > 0.0 ? std::pow(lm, -1.0 / params.weibull_beta) * gamma
                             : aging::kNeverFails;
    rep.lambda += lm;
  }
  rep.system_mttf = rep.lambda > 0.0
                        ? std::pow(rep.lambda, -1.0 / params.weibull_beta) *
                              gamma
                        : aging::kNeverFails;
  rep.failure_curve.reserve(params.curve_years.size());
  for (double y : params.curve_years) {
    rep.failure_curve.emplace_back(
        y, 1.0 - std::exp(-std::pow(y, params.weibull_beta) * rep.lambda));
  }
  return rep;
}

/// Serial electrothermal sweep: one solve_operating_point per power.
inline std::vector<thermal::OperatingPoint> reference_operating_points(
    const netlist::Netlist& nl, const tech::Library& lib,
    const thermal::RcThermalModel& model,
    const std::vector<bool>& standby_vector,
    const std::vector<double>& dynamic_powers,
    const thermal::ElectrothermalParams& params = {}) {
  std::vector<thermal::OperatingPoint> points;
  points.reserve(dynamic_powers.size());
  for (double p : dynamic_powers) {
    thermal::ElectrothermalParams cell = params;
    cell.dynamic_power_w = p;
    points.push_back(
        thermal::solve_operating_point(nl, lib, model, standby_vector, cell));
  }
  return points;
}

// ---------------------------------------------------------------------------
// Naive campaign-store query: full rescan, no index, no parallelism.

namespace refquery_detail {

using common::json::Value;

inline bool is_coord(std::string_view key) {
  return key == "netlist" || key == "ras" || key == "analysis" ||
         key == "hash" || key == "t_active" || key == "t_standby" ||
         key == "years";
}

/// The queryable member of a row: one of the seven coordinates at top
/// level, otherwise a metric. nullptr when absent.
inline const Value* row_member(const Value& row, const std::string& key) {
  if (is_coord(key)) return row.find(key);
  if (const Value* metrics = row.find("metrics")) return metrics->find(key);
  return nullptr;
}

inline bool predicate_holds(const Value& pred, const Value& v) {
  if (pred.is_string() || pred.is_number()) return v == pred;
  if (pred.is_array()) {
    for (const Value& cand : pred.as_array()) {
      if (v == cand) return true;
    }
    return false;
  }
  // {"min":..,"max":..}
  if (!v.is_number() || std::isnan(v.as_number())) return false;
  const double d = v.as_number();
  if (const Value* lo = pred.find("min")) {
    if (d < lo->as_number()) return false;
  }
  if (const Value* hi = pred.find("max")) {
    if (d > hi->as_number()) return false;
  }
  return true;
}

/// Canonical order key of one row, computed from the row itself.
inline bool row_less(const Value& a, const Value& b) {
  const auto str = [](const Value& row, const char* key) {
    const Value* v = row.find(key);
    return v != nullptr && v->is_string() ? v->as_string() : std::string();
  };
  const auto num = [](const Value& row, const char* key) {
    const Value* v = row.find(key);
    return v != nullptr && v->is_number()
               ? v->as_number()
               : std::numeric_limits<double>::quiet_NaN();
  };
  const auto cmp_num = [](double x, double y) {
    const bool nx = std::isnan(x), ny = std::isnan(y);
    if (nx || ny) return nx == ny ? 0 : (nx ? -1 : 1);
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  };
  for (const char* key : {"netlist", "ras"}) {
    if (int c = str(a, key).compare(str(b, key))) return c < 0;
  }
  for (const char* key : {"t_active", "t_standby", "years"}) {
    if (int c = cmp_num(num(a, key), num(b, key))) return c < 0;
  }
  if (int c = str(a, "analysis").compare(str(b, "analysis"))) return c < 0;
  return str(a, "hash") < str(b, "hash");
}

inline std::string render_cell(const Value* v) {
  if (v == nullptr || v->is_null()) return std::string();
  if (v->is_string()) return v->as_string();
  if (v->is_number()) return common::json::format_number(v->as_number());
  return common::json::dump(*v);
}

}  // namespace refquery_detail

/// Evaluates one query document against the store at \p store_path the
/// obvious way: loads *every* row through ShardedStore (any layout), parses
/// and filters them all, sorts canonically, and renders the same table the
/// optimized indexed path must produce.
inline report::Table reference_query(const std::string& store_path,
                                     const common::json::Value& qdoc) {
  namespace d = refquery_detail;
  using common::json::Value;

  campaign::ShardedStore store(store_path, 1);
  std::vector<const Value*> matched;
  for (const Value* row : store.all_rows()) {
    bool ok = true;
    if (const Value* where = qdoc.find("where")) {
      for (const auto& [key, pred] : where->as_object()) {
        const Value* v = d::row_member(*row, key);
        // Metric predicates apply to scalar metrics only — a structured
        // payload (or an absent member) never matches.
        if (!d::is_coord(key) && v != nullptr && !v->is_number()) v = nullptr;
        if (v == nullptr || !d::predicate_holds(pred, *v)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) matched.push_back(row);
  }
  std::sort(matched.begin(), matched.end(),
            [](const Value* a, const Value* b) { return d::row_less(*a, *b); });

  // Scalar metric names, first appearance in canonical row order.
  std::vector<std::string> metric_names;
  for (const Value* row : matched) {
    if (const Value* metrics = row->find("metrics")) {
      for (const auto& [name, v] : metrics->as_object()) {
        if (v.is_number() && std::find(metric_names.begin(),
                                       metric_names.end(),
                                       name) == metric_names.end()) {
          metric_names.push_back(name);
        }
      }
    }
  }

  report::Table table;
  const Value* agg = qdoc.find("agg");
  if (agg == nullptr) {
    std::vector<std::string> columns;
    if (const Value* select = qdoc.find("select")) {
      for (const Value& c : select->as_array()) columns.push_back(c.as_string());
    } else {
      columns = {"netlist", "ras",   "t_active",
                 "t_standby", "years", "analysis"};
      columns.insert(columns.end(), metric_names.begin(), metric_names.end());
    }
    table.headers = columns;
    for (const Value* row : matched) {
      std::vector<std::string> cells;
      for (const std::string& col : columns) {
        cells.push_back(d::render_cell(d::row_member(*row, col)));
      }
      table.add_row(std::move(cells));
    }
  } else {
    const std::string op = agg->at("op").as_string();
    std::vector<std::string> by;
    if (const Value* b = agg->find("by")) {
      for (const Value& c : b->as_array()) by.push_back(c.as_string());
    }
    std::vector<std::string> agg_metrics;
    if (op != "count") {
      if (const Value* ms = agg->find("metrics")) {
        for (const Value& m : ms->as_array()) {
          agg_metrics.push_back(m.as_string());
        }
      } else {
        agg_metrics = metric_names;
      }
    }
    table.headers = by;
    table.headers.push_back("count");
    for (const std::string& m : agg_metrics) table.headers.push_back(op + "_" + m);

    // Group in canonical row order, key = rendered by-tuple.
    std::vector<std::pair<std::vector<std::string>,
                          std::vector<const Value*>>> groups;
    for (const Value* row : matched) {
      std::vector<std::string> key;
      for (const std::string& col : by) {
        key.push_back(d::render_cell(d::row_member(*row, col)));
      }
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto& g) { return g.first == key; });
      if (it == groups.end()) {
        groups.emplace_back(std::move(key), std::vector<const Value*>{});
        it = std::prev(groups.end());
      }
      it->second.push_back(row);
    }
    for (auto& [key, rows] : groups) {
      std::vector<std::string> cells = key;
      cells.push_back(common::json::format_number(
          static_cast<double>(rows.size())));
      for (const std::string& mname : agg_metrics) {
        std::vector<double> values;
        for (const Value* row : rows) {
          const Value* v = d::row_member(*row, mname);
          if (v != nullptr && v->is_number() &&
              std::isfinite(v->as_number())) {
            values.push_back(v->as_number());
          }
        }
        if (values.empty()) {
          cells.emplace_back();
          continue;
        }
        double r = 0.0;
        if (op == "min") {
          r = *std::min_element(values.begin(), values.end());
        } else if (op == "max") {
          r = *std::max_element(values.begin(), values.end());
        } else if (op == "sum" || op == "mean") {
          for (double v : values) r += v;
          if (op == "mean") r /= static_cast<double>(values.size());
        } else {  // quantile
          std::sort(values.begin(), values.end());
          const double q = agg->number_or("q", 0.5);
          const double h = q * static_cast<double>(values.size() - 1);
          const std::size_t lo = static_cast<std::size_t>(h);
          const std::size_t hi = std::min(lo + 1, values.size() - 1);
          r = values[lo] +
              (h - static_cast<double>(lo)) * (values[hi] - values[lo]);
        }
        cells.push_back(common::json::format_number(r));
      }
      table.add_row(std::move(cells));
    }
  }
  if (const Value* limit = qdoc.find("limit")) {
    const auto n = static_cast<std::size_t>(limit->as_number());
    if (table.rows.size() > n) table.rows.resize(n);
  }
  return table;
}

}  // namespace nbtisim::testsupport
