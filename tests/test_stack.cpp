// Unit tests for the series-stack leakage solver (src/tech/stack.*) —
// the physical engine behind the input-vector dependence of leakage.

#include "tech/stack.h"

#include <gtest/gtest.h>

namespace nbtisim::tech {
namespace {

class StackTest : public ::testing::Test {
 protected:
  DeviceParams nmos_ = default_device(Channel::Nmos);
  static constexpr double kW = 360e-9;
  static constexpr double kVdd = 1.0;
  static constexpr double kT = 400.0;

  StackSolution solve(std::vector<StackDevice> devs) {
    return solve_stack(nmos_, devs, kVdd, kVdd, kT);
  }
};

TEST_F(StackTest, SingleOffDeviceMatchesSubthresholdFormula) {
  const StackSolution s = solve({{kW, false, 0.0}});
  const double direct = subthreshold_current(nmos_, kW, 0.0, kVdd, 0.0, kT);
  EXPECT_NEAR(s.current, direct, 1e-6 * direct);
  EXPECT_TRUE(s.node_voltages.empty());
}

TEST_F(StackTest, TwoOffDevicesShowStackingEffect) {
  const double one = solve({{kW, false, 0.0}}).current;
  const double two = solve({{kW, false, 0.0}, {kW, false, 0.0}}).current;
  // The classic stacking effect: an order-of-magnitude-ish suppression.
  EXPECT_LT(two, one / 3.0);
  EXPECT_GT(two, one / 100.0);
}

TEST_F(StackTest, DeeperStacksLeakMonotonicallyLess) {
  double prev = solve({{kW, false, 0.0}}).current;
  for (int depth = 2; depth <= 4; ++depth) {
    std::vector<StackDevice> devs(depth, StackDevice{kW, false, 0.0});
    const double cur = solve(devs).current;
    EXPECT_LT(cur, prev) << "depth=" << depth;
    prev = cur;
  }
}

TEST_F(StackTest, IntermediateNodeVoltageIsBetweenRails) {
  const StackSolution s = solve({{kW, false, 0.0}, {kW, false, 0.0}});
  ASSERT_EQ(s.node_voltages.size(), 1u);
  EXPECT_GT(s.node_voltages[0], 0.0);
  EXPECT_LT(s.node_voltages[0], kVdd);
  // The internal node of a 2-stack settles near the bottom rail
  // (tens of millivolts), enough to shut off the top device.
  EXPECT_LT(s.node_voltages[0], 0.3);
}

TEST_F(StackTest, OnDeviceInStackIsTransparent) {
  // OFF-ON stack should leak like the single OFF device (on collapses).
  const double mixed =
      solve({{kW, false, 0.0}, {kW, true, 0.0}}).current;
  const double single = solve({{kW, false, 0.0}}).current;
  EXPECT_NEAR(mixed, single, 1e-6 * single);
}

TEST_F(StackTest, FullyConductingStackReportsZeroLeakage) {
  const StackSolution s = solve({{kW, true, 0.0}, {kW, true, 0.0}});
  EXPECT_EQ(s.current, 0.0);
}

TEST_F(StackTest, AgedDeviceLeaksLess) {
  const double fresh = solve({{kW, false, 0.0}}).current;
  const double aged = solve({{kW, false, 0.040}}).current;
  EXPECT_LT(aged, fresh);
}

TEST_F(StackTest, RejectsEmptyStack) {
  EXPECT_THROW(solve_stack(nmos_, {}, kVdd, kVdd, kT), std::invalid_argument);
}

TEST_F(StackTest, RejectsNegativeVoltage) {
  EXPECT_THROW(solve_stack(nmos_, {{kW, false, 0.0}}, -0.1, kVdd, kT),
               std::invalid_argument);
}

TEST_F(StackTest, ParallelOffLeakageScalesWithCount) {
  const double one = parallel_off_leakage(nmos_, kW, 1, kVdd, kT);
  const double three = parallel_off_leakage(nmos_, kW, 3, kVdd, kT);
  EXPECT_NEAR(three / one, 3.0, 1e-9);
  EXPECT_EQ(parallel_off_leakage(nmos_, kW, 0, kVdd, kT), 0.0);
}

// Current continuity: the solved internal node must carry equal currents
// through both devices.
TEST_F(StackTest, CurrentContinuityAtInternalNode) {
  const StackSolution s = solve({{kW, false, 0.0}, {kW, false, 0.0}});
  ASSERT_EQ(s.node_voltages.size(), 1u);
  const double vm = s.node_voltages[0];
  const double i_bottom = subthreshold_current(nmos_, kW, 0.0, vm, 0.0, kT);
  const double i_top =
      subthreshold_current(nmos_, kW, -vm, kVdd - vm, vm, kT);
  EXPECT_NEAR(i_bottom, i_top, 1e-3 * i_bottom);
  EXPECT_NEAR(s.current, i_bottom, 1e-3 * i_bottom);
}

// Stack leakage must be monotone in temperature regardless of depth.
class StackTempSweep
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(StackTempSweep, LeakageIncreasesWithTemperature) {
  const auto [depth, t_lo, t_hi] = GetParam();
  const DeviceParams p = default_device(Channel::Nmos);
  std::vector<StackDevice> devs(depth, StackDevice{360e-9, false, 0.0});
  const double lo = solve_stack(p, devs, 1.0, 1.0, t_lo).current;
  const double hi = solve_stack(p, devs, 1.0, 1.0, t_hi).current;
  EXPECT_GT(hi, lo);
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndTemps, StackTempSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(300.0, 330.0),
                       ::testing::Values(370.0, 400.0)));

}  // namespace
}  // namespace nbtisim::tech
