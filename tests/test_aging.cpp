// Unit tests for the circuit-level aging platform (src/aging/*).

#include "aging/aging.h"

#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "tech/units.h"
#include "variation/lifetime.h"

namespace nbtisim::aging {
namespace {

class AgingTest : public ::testing::Test {
 protected:
  tech::Library lib_;
  netlist::Netlist c432_ = netlist::iscas85_like("c432");

  AgingConditions cond(double standby_parts, double t_standby) const {
    AgingConditions c;
    c.schedule =
        nbti::ModeSchedule::from_ras(1, standby_parts, 1000.0, 400.0, t_standby);
    c.sp_vectors = 1024;
    return c;
  }
};

TEST_F(AgingTest, WorstCaseDominatesBestCase) {
  const AgingAnalyzer an(c432_, lib_, cond(9, 330.0));
  const DegradationReport worst = an.analyze(StandbyPolicy::all_stressed());
  const DegradationReport best = an.analyze(StandbyPolicy::all_relaxed());
  EXPECT_GT(worst.percent(), best.percent());
  EXPECT_GT(best.percent(), 0.0);
}

TEST_F(AgingTest, Table4MagnitudeBandsAt330K) {
  // Paper Table 4 at T_standby = 330 K: worst ~4%, best ~3.3%,
  // potential ~18% — our substrate should land in the same bands.
  const AgingAnalyzer an(c432_, lib_, cond(9, 330.0));
  const double worst = an.analyze(StandbyPolicy::all_stressed()).percent();
  const double best = an.analyze(StandbyPolicy::all_relaxed()).percent();
  EXPECT_GT(worst, 2.5);
  EXPECT_LT(worst, 7.0);
  EXPECT_GT(best, 2.0);
  EXPECT_LT(best, 6.0);
  const double potential = 100.0 * (worst - best) / worst;
  EXPECT_GT(potential, 8.0);
  EXPECT_LT(potential, 35.0);
}

TEST_F(AgingTest, Table4MagnitudeBandsAt400K) {
  const AgingAnalyzer an(c432_, lib_, cond(9, 400.0));
  const double worst = an.analyze(StandbyPolicy::all_stressed()).percent();
  const double best = an.analyze(StandbyPolicy::all_relaxed()).percent();
  EXPECT_GT(worst, 5.0);
  EXPECT_LT(worst, 12.0);
  const double potential = 100.0 * (worst - best) / worst;
  EXPECT_GT(potential, 35.0);  // paper: 54.9%
  EXPECT_LT(potential, 75.0);
}

TEST_F(AgingTest, BestCaseInsensitiveToStandbyTemperature) {
  // Table 4: best-case delay ~constant across standby temperatures.
  const AgingAnalyzer cold(c432_, lib_, cond(9, 330.0));
  const AgingAnalyzer hot(c432_, lib_, cond(9, 400.0));
  EXPECT_NEAR(cold.analyze(StandbyPolicy::all_relaxed()).percent(),
              hot.analyze(StandbyPolicy::all_relaxed()).percent(), 1e-9);
}

TEST_F(AgingTest, WorstCaseGrowsWithStandbyTemperature) {
  double prev = 0.0;
  for (double ts : {330.0, 350.0, 370.0, 400.0}) {
    const AgingAnalyzer an(c432_, lib_, cond(9, ts));
    const double w = an.analyze(StandbyPolicy::all_stressed()).percent();
    EXPECT_GT(w, prev) << "Ts=" << ts;
    prev = w;
  }
}

TEST_F(AgingTest, VectorPolicyLiesBetweenBounds) {
  const AgingAnalyzer an(c432_, lib_, cond(9, 330.0));
  const double worst = an.analyze(StandbyPolicy::all_stressed()).percent();
  const double best = an.analyze(StandbyPolicy::all_relaxed()).percent();
  std::vector<bool> v(c432_.num_inputs());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = (i % 3) == 0;
  const double vec = an.analyze(StandbyPolicy::from_vector(v)).percent();
  EXPECT_GE(vec, best - 1e-9);
  EXPECT_LE(vec, worst + 1e-9);
}

TEST_F(AgingTest, VectorPolicyRejectsWrongWidth) {
  const AgingAnalyzer an(c432_, lib_, cond(9, 330.0));
  EXPECT_THROW(an.analyze(StandbyPolicy::from_vector(std::vector<bool>(3))),
               std::invalid_argument);
}

TEST_F(AgingTest, GateDvthInPhysicalBand) {
  const AgingAnalyzer an(c432_, lib_, cond(9, 400.0));
  const std::vector<double> dvth = an.gate_dvth(StandbyPolicy::all_stressed());
  ASSERT_EQ(dvth.size(), static_cast<std::size_t>(c432_.num_gates()));
  for (double d : dvth) {
    EXPECT_GT(to_mV(d), 5.0);
    EXPECT_LT(to_mV(d), 60.0);
  }
}

TEST_F(AgingTest, DegradationGrowsOverTime) {
  const AgingAnalyzer an(c432_, lib_, cond(9, 330.0));
  const auto series =
      an.degradation_series(StandbyPolicy::all_stressed(), 1e6, 3e8, 6);
  ASSERT_EQ(series.size(), 6u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].second, series[i - 1].second);
  }
}

TEST_F(AgingTest, CircuitDegradationIsMilderThanDevice) {
  // Fig. 5's message: % delay shift << % Vth shift.
  const AgingAnalyzer an(c432_, lib_, cond(9, 400.0));
  const DegradationReport rep = an.analyze(StandbyPolicy::all_stressed());
  double max_dvth = 0.0;
  for (double d : rep.gate_dvth) max_dvth = std::max(max_dvth, d);
  const double device_percent = 100.0 * max_dvth / lib_.params().pmos.vth0;
  EXPECT_LT(rep.percent(), 0.6 * device_percent);
}

TEST_F(AgingTest, TaylorBoundsExactRiseOnlyModel) {
  AgingConditions taylor = cond(9, 400.0);
  AgingConditions exact = cond(9, 400.0);
  exact.taylor_delay = false;
  const AgingAnalyzer at(c432_, lib_, taylor);
  const AgingAnalyzer ax(c432_, lib_, exact);
  const double pt = at.analyze(StandbyPolicy::all_stressed()).percent();
  const double px = ax.analyze(StandbyPolicy::all_stressed()).percent();
  // The paper's Taylor form (eq. 22) treats the whole gate delay as governed
  // by the degraded device; the exact re-evaluation slows only the pull-up
  // transition, so Taylor sits a factor ~2 above it. Both must agree on the
  // direction and order of magnitude; the ablation bench quantifies this.
  EXPECT_GT(px, 0.0);
  EXPECT_GT(pt, px);
  EXPECT_LT(pt, 2.6 * px);
}

TEST_F(AgingTest, WorstCaseTempPessimismQuantified) {
  // The paper's motivating claim: assuming T_standby = T_active
  // overestimates degradation when the real standby is cold.
  AgingConditions aware = cond(9, 330.0);
  AgingConditions pessimistic = cond(9, 400.0);
  const AgingAnalyzer aa(c432_, lib_, aware);
  const AgingAnalyzer ap(c432_, lib_, pessimistic);
  const double d_aware = aa.analyze(StandbyPolicy::all_stressed()).percent();
  const double d_pess = ap.analyze(StandbyPolicy::all_stressed()).percent();
  EXPECT_GT(d_pess, 1.3 * d_aware);
}

TEST_F(AgingTest, AgedGateDelaysRejectSizeMismatch) {
  const AgingAnalyzer an(c432_, lib_, cond(9, 330.0));
  EXPECT_THROW(an.aged_gate_delays(std::vector<double>(3, 0.0)),
               std::invalid_argument);
}

TEST_F(AgingTest, ReportAccessorsConsistent) {
  const AgingAnalyzer an(c432_, lib_, cond(5, 330.0));
  const DegradationReport rep = an.analyze(StandbyPolicy::all_stressed());
  EXPECT_NEAR(rep.delta_delay(), rep.aged_delay - rep.fresh_delay, 1e-18);
  EXPECT_NEAR(rep.percent(), 100.0 * rep.delta_delay() / rep.fresh_delay,
              1e-9);
}

TEST_F(AgingTest, StressDescriptorsBuildOncePerPolicy) {
  // The per-policy descriptor cache contract: horizon sweeps, Monte-Carlo
  // lifetime sampling and table builds over one policy are exactly one
  // stress-descriptor build (stress_build_count is the regression counter).
  const AgingAnalyzer an(c432_, lib_, cond(9, 330.0));
  EXPECT_EQ(an.stress_build_count(), 0u);

  const auto series =
      an.degradation_series(StandbyPolicy::all_stressed(), 1.0e6, 3.0e8, 8);
  ASSERT_EQ(series.size(), 8u);
  EXPECT_EQ(an.stress_build_count(), 1u);

  variation::LifetimeParams lt;
  lt.samples = 8;
  lt.n_threads = 1;
  const variation::LifetimeResult mc =
      variation::lifetime_distribution(an, StandbyPolicy::all_stressed(), lt);
  ASSERT_EQ(mc.lifetimes.size(), 8u);
  EXPECT_EQ(an.stress_build_count(), 1u);

  const auto table =
      an.dvth_table(StandbyPolicy::all_stressed(), 1.0e6, 3.0e8, 8);
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(an.stress_build_count(), 1u);

  // A different policy is a second build — and only one, even when repeated.
  an.gate_dvth(StandbyPolicy::all_relaxed(), 3.0e8);
  EXPECT_EQ(an.stress_build_count(), 2u);
  an.gate_dvth(StandbyPolicy::all_relaxed());
  EXPECT_EQ(an.stress_build_count(), 2u);

  // Invalidation restarts the count on next use.
  an.invalidate_stress_cache();
  an.gate_dvth(StandbyPolicy::all_stressed());
  EXPECT_EQ(an.stress_build_count(), 3u);
}

// Worst >= vector >= best must hold for every circuit.
class AgingBoundsSweep : public ::testing::TestWithParam<std::string_view> {};

TEST_P(AgingBoundsSweep, PolicyOrderingHolds) {
  const tech::Library lib;
  const netlist::Netlist nl = netlist::iscas85_like(std::string(GetParam()));
  AgingConditions c;
  c.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  c.sp_vectors = 512;
  const AgingAnalyzer an(nl, lib, c);
  const double worst = an.analyze(StandbyPolicy::all_stressed()).percent();
  const double best = an.analyze(StandbyPolicy::all_relaxed()).percent();
  std::vector<bool> zeros(nl.num_inputs(), false);
  const double vec = an.analyze(StandbyPolicy::from_vector(zeros)).percent();
  EXPECT_GT(worst, best) << GetParam();
  EXPECT_GE(vec, best - 1e-9) << GetParam();
  EXPECT_LE(vec, worst + 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Circuits, AgingBoundsSweep,
                         ::testing::Values("c432", "c499", "c880"),
                         [](const auto& suite_info) {
                           return std::string(suite_info.param);
                         });

}  // namespace
}  // namespace nbtisim::aging
