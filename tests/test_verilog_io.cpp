// Unit tests for the structural Verilog reader/writer
// (src/netlist/verilog_io.*).

#include "netlist/verilog_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <random>

#include "netlist/bench_io.h"
#include "netlist/generators.h"
#include "sim/simulator.h"

namespace nbtisim::netlist {
namespace {

constexpr const char* kC17 = R"(
// ISCAS85 c17 in structural verilog
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;
  nand g0 (N10, N1, N3);
  nand g1 (N11, N3, N6);
  nand g2 (N16, N2, N11);
  nand g3 (N19, N11, N7);
  nand g4 (N22, N10, N16);
  nand g5 (N23, N16, N19);
endmodule
)";

TEST(VerilogIoTest, ParsesC17) {
  const Netlist nl = parse_verilog(kC17);
  EXPECT_EQ(nl.name(), "c17");
  EXPECT_EQ(nl.num_inputs(), 5);
  EXPECT_EQ(nl.num_outputs(), 2);
  EXPECT_EQ(nl.num_gates(), 6);
  EXPECT_NO_THROW(nl.validate());
}

TEST(VerilogIoTest, C17FunctionIsCorrect) {
  const Netlist nl = parse_verilog(kC17);
  sim::Simulator sim(nl);
  // N22 = !(N10 & N16); with all inputs 0: N10=1, N11=1, N16=1 -> N22=0.
  const std::vector<bool> all0(5, false);
  const std::vector<bool> v = sim.evaluate(all0);
  EXPECT_FALSE(v[nl.find_node("N22")]);
  // All inputs 1: N10=0, N11=0, N16=1, N19=1 -> N22=NAND(0,1)=1,
  // N23=NAND(1,1)=0.
  const std::vector<bool> all1(5, true);
  const std::vector<bool> w = sim.evaluate(all1);
  EXPECT_TRUE(w[nl.find_node("N22")]);
  EXPECT_FALSE(w[nl.find_node("N23")]);
}

TEST(VerilogIoTest, VectorDeclarationsExpand) {
  constexpr const char* kVec = R"(
module vec (a, y);
  input [3:0] a;
  output y;
  wire n0, n1;
  and g0 (n0, a[0], a[1]);
  and g1 (n1, a[2], a[3]);
  or  g2 (y, n0, n1);
endmodule
)";
  const Netlist nl = parse_verilog(kVec);
  EXPECT_EQ(nl.num_inputs(), 4);
  EXPECT_TRUE(nl.has_node("a[0]"));
  EXPECT_TRUE(nl.has_node("a[3]"));
  sim::Simulator sim(nl);
  // PI order follows declaration expansion (a[0]..a[3]).
  EXPECT_TRUE(sim.outputs({true, true, false, false})[0]);
  EXPECT_FALSE(sim.outputs({true, false, false, true})[0]);
}

TEST(VerilogIoTest, InstanceNameIsOptional) {
  const Netlist nl = parse_verilog(
      "module m (a, y);\n input a;\n output y;\n not (y, a);\nendmodule\n");
  EXPECT_EQ(nl.num_gates(), 1);
  EXPECT_EQ(nl.gates()[0].fn, tech::GateFn::Not);
}

TEST(VerilogIoTest, BlockCommentsStripped) {
  const Netlist nl = parse_verilog(
      "module m (a, y); /* ports */ input a; output y;\n"
      "buf g /* inline */ (y, a); endmodule");
  EXPECT_EQ(nl.num_gates(), 1);
}

TEST(VerilogIoTest, OutOfOrderDefinitionsAccepted) {
  const Netlist nl = parse_verilog(
      "module m (a, y);\n input a;\n output y;\n wire n;\n"
      " not g1 (y, n);\n not g0 (n, a);\nendmodule\n");
  EXPECT_EQ(nl.num_gates(), 2);
  EXPECT_NO_THROW(nl.validate());
}

TEST(VerilogIoTest, WideGatesDecompose) {
  std::string src = "module m (y";
  for (int i = 0; i < 6; ++i) src += ", i" + std::to_string(i);
  src += ");\n output y;\n";
  for (int i = 0; i < 6; ++i) src += " input i" + std::to_string(i) + ";\n";
  src += " nand g (y, i0, i1, i2, i3, i4, i5);\nendmodule\n";
  const Netlist nl = parse_verilog(src);
  for (const Gate& g : nl.gates()) EXPECT_LE(g.fanins.size(), 4u);
  EXPECT_NO_THROW(nl.validate());
}

TEST(VerilogIoTest, RejectsBadInput) {
  EXPECT_THROW(parse_verilog("not (y, a);"), std::invalid_argument);  // no module
  EXPECT_THROW(parse_verilog("module m (y); output y; frob (y); endmodule"),
               std::invalid_argument);
  EXPECT_THROW(parse_verilog("module m (a); input a; assign b = a; endmodule"),
               std::invalid_argument);
  EXPECT_THROW(parse_verilog("module m (a, y); input a; output y;\n"
                             "not (y, ghost); endmodule"),
               std::invalid_argument);
  EXPECT_THROW(parse_verilog("module a (x); module b (y); endmodule endmodule"),
               std::invalid_argument);
  EXPECT_THROW(parse_verilog("/* unterminated\nmodule m (); endmodule"),
               std::invalid_argument);
  EXPECT_THROW(parse_verilog("module m (a, y); input a; output y;\n"
                             "not g (y); endmodule"),
               std::invalid_argument);
}

TEST(VerilogIoTest, RoundTripPreservesSemantics) {
  const Netlist orig = make_alu("alu", 4);
  const Netlist back = parse_verilog(write_verilog(orig));
  EXPECT_EQ(back.name(), "alu");
  ASSERT_EQ(orig.num_inputs(), back.num_inputs());
  ASSERT_EQ(orig.num_outputs(), back.num_outputs());
  sim::Simulator so(orig), sb(back);
  std::mt19937_64 rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<bool> pi(orig.num_inputs());
    for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = (rng() & 1) != 0;
    EXPECT_EQ(so.outputs(pi), sb.outputs(pi)) << "trial " << trial;
  }
}

TEST(VerilogIoTest, BenchAndVerilogAgree) {
  // The same circuit through both formats must be identical in function.
  const Netlist gen = make_ripple_adder("add", 3);
  const Netlist via_v = parse_verilog(write_verilog(gen));
  const Netlist via_b = parse_bench(write_bench(gen), "add");
  sim::Simulator sv(via_v), sb(via_b);
  for (std::uint32_t bits = 0; bits < 128; ++bits) {
    std::vector<bool> pi(7);
    for (int i = 0; i < 7; ++i) pi[i] = (bits >> i) & 1u;
    EXPECT_EQ(sv.outputs(pi), sb.outputs(pi));
  }
}

// Round-trip property sweep: generated circuits of every family survive
// write -> parse in both formats across seeds, preserving the interface
// (PI/PO counts), the topology depth and the Boolean function.
TEST(VerilogIoTest, GeneratedCircuitsRoundTripAcrossSeeds) {
  std::mt19937_64 rng(99);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Netlist orig = make_random_dag(
        "rt" + std::to_string(seed),
        {.n_inputs = 6 + static_cast<int>(seed),
         .n_outputs = 4,
         .n_gates = 50 + 25 * static_cast<int>(seed),
         .seed = seed});
    const Netlist via_v = parse_verilog(write_verilog(orig));
    const Netlist via_b = parse_bench(write_bench(orig), orig.name());
    for (const Netlist* back : {&via_v, &via_b}) {
      SCOPED_TRACE("seed " + std::to_string(seed));
      ASSERT_EQ(back->num_inputs(), orig.num_inputs());
      ASSERT_EQ(back->num_outputs(), orig.num_outputs());
      ASSERT_EQ(back->num_gates(), orig.num_gates());
      EXPECT_EQ(back->depth(), orig.depth());
    }
    sim::Simulator so(orig), sv(via_v), sb(via_b);
    for (int trial = 0; trial < 16; ++trial) {
      std::vector<bool> pi(orig.num_inputs());
      for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = (rng() & 1) != 0;
      const std::vector<bool> want = so.outputs(pi);
      EXPECT_EQ(sv.outputs(pi), want) << "verilog seed " << seed;
      EXPECT_EQ(sb.outputs(pi), want) << "bench seed " << seed;
    }
  }
}

TEST(VerilogIoTest, LoadVerilogMissingFileThrows) {
  EXPECT_THROW(load_verilog("/nonexistent/x.v"), std::runtime_error);
}

TEST(VerilogIoTest, LoadVerilogFromDisk) {
  const std::string path = ::testing::TempDir() + "/nbtisim_test.v";
  {
    std::ofstream f(path);
    f << kC17;
  }
  const Netlist nl = load_verilog(path);
  EXPECT_EQ(nl.num_gates(), 6);
}

}  // namespace
}  // namespace nbtisim::netlist
