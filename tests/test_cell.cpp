// Unit tests for the multi-stage static CMOS cell model (src/tech/cell.*).

#include "tech/cell.h"

#include <gtest/gtest.h>

#include <cmath>

namespace nbtisim::tech {
namespace {

constexpr double kWn = 360e-9;
constexpr double kWp = 720e-9;

// Reference truth functions for every library cell builder.
bool ref_eval(const std::string& name, std::uint32_t v, int pins) {
  auto bit = [v](int i) { return ((v >> i) & 1u) != 0; };
  if (name == "INV") return !bit(0);
  if (name == "BUF") return bit(0);
  bool all = true, any = false, par = false;
  for (int i = 0; i < pins; ++i) {
    all = all && bit(i);
    any = any || bit(i);
    par = par != bit(i);
  }
  if (name.starts_with("NAND")) return !all;
  if (name.starts_with("AND")) return all;
  if (name.starts_with("NOR")) return !any;
  if (name.starts_with("OR")) return any;
  if (name == "XOR2") return par;
  if (name == "XNOR2") return !par;
  throw std::logic_error("ref_eval: unknown " + name);
}

Cell build(const std::string& name) {
  if (name == "INV") return make_inverter(kWn, kWp);
  if (name == "BUF") return make_buffer(kWn, kWp);
  if (name == "XOR2") return make_xor2(kWn, kWp);
  if (name == "XNOR2") return make_xnor2(kWn, kWp);
  const int fanin = name.back() - '0';
  if (name.starts_with("NAND")) return make_nand(fanin, kWn, kWp);
  if (name.starts_with("NOR")) return make_nor(fanin, kWn, kWp);
  if (name.starts_with("AND")) return make_and(fanin, kWn, kWp);
  if (name.starts_with("OR")) return make_or(fanin, kWn, kWp);
  throw std::logic_error("build: unknown " + name);
}

class CellTruthTable : public ::testing::TestWithParam<std::string> {};

TEST_P(CellTruthTable, MatchesReferenceFunctionOnAllVectors) {
  const Cell cell = build(GetParam());
  for (std::uint32_t v = 0; v < (1u << cell.num_pins()); ++v) {
    EXPECT_EQ(cell.evaluate(v), ref_eval(GetParam(), v, cell.num_pins()))
        << GetParam() << " vector " << v;
  }
}

TEST_P(CellTruthTable, SignalProbabilityMatchesTruthTableAverage) {
  const Cell cell = build(GetParam());
  // With all pins at SP 0.5, the output SP equals ones-count / 2^n.
  std::vector<double> pin_sp(cell.num_pins(), 0.5);
  const double sp_out = cell.signal_probabilities(pin_sp).back();
  int ones = 0;
  for (std::uint32_t v = 0; v < (1u << cell.num_pins()); ++v) {
    ones += cell.evaluate(v) ? 1 : 0;
  }
  // XOR-style reconvergence inside a cell violates exact independence, but
  // the builders' stage networks keep the error at zero for these cells
  // except the NAND-XOR network; allow a small tolerance.
  const double expected =
      static_cast<double>(ones) / (1u << cell.num_pins());
  EXPECT_NEAR(sp_out, expected, 0.15) << GetParam();
}

TEST_P(CellTruthTable, ProbabilityOfCertainVectorsIsExact) {
  const Cell cell = build(GetParam());
  // Degenerate probabilities 0/1 must reproduce the logic value exactly.
  for (std::uint32_t v = 0; v < (1u << cell.num_pins()); ++v) {
    std::vector<double> pin_sp(cell.num_pins());
    for (int i = 0; i < cell.num_pins(); ++i) pin_sp[i] = (v >> i) & 1u;
    const double sp_out = cell.signal_probabilities(pin_sp).back();
    EXPECT_NEAR(sp_out, cell.evaluate(v) ? 1.0 : 0.0, 1e-12)
        << GetParam() << " vector " << v;
  }
}

TEST_P(CellTruthTable, OnePmosPerStageInput) {
  const Cell cell = build(GetParam());
  std::size_t stage_inputs = 0;
  for (const Stage& st : cell.stages()) stage_inputs += st.inputs.size();
  EXPECT_EQ(cell.pmos_devices().size(), stage_inputs);
}

TEST_P(CellTruthTable, SignalValuesAreConsistentWithEvaluate) {
  const Cell cell = build(GetParam());
  for (std::uint32_t v = 0; v < (1u << cell.num_pins()); ++v) {
    const std::vector<bool> sigs = cell.signal_values(v);
    EXPECT_EQ(static_cast<int>(sigs.size()), cell.num_signals());
    EXPECT_EQ(sigs.back(), cell.evaluate(v));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CellTruthTable,
    ::testing::Values("INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3",
                      "NOR4", "AND2", "AND3", "AND4", "OR2", "OR3", "OR4",
                      "XOR2", "XNOR2"),
    [](const auto& suite_info) { return suite_info.param; });

TEST(CellTest, InverterHasSingleStageAndPmos) {
  const Cell inv = make_inverter(kWn, kWp);
  EXPECT_EQ(inv.num_stages(), 1);
  EXPECT_EQ(inv.depth(), 1);
  ASSERT_EQ(inv.pmos_devices().size(), 1u);
  EXPECT_EQ(inv.pmos_devices()[0].gate_signal, 0);
  EXPECT_DOUBLE_EQ(inv.pmos_devices()[0].width, kWp);
}

TEST(CellTest, NandSeriesNmosIsUpsized) {
  const Cell nand3 = make_nand(3, kWn, kWp);
  EXPECT_DOUBLE_EQ(nand3.stages()[0].nmos_width, 3.0 * kWn);
  EXPECT_DOUBLE_EQ(nand3.stages()[0].pmos_width, kWp);
}

TEST(CellTest, NorSeriesPmosIsUpsized) {
  const Cell nor4 = make_nor(4, kWn, kWp);
  EXPECT_DOUBLE_EQ(nor4.stages()[0].pmos_width, 4.0 * kWp);
  EXPECT_DOUBLE_EQ(nor4.stages()[0].nmos_width, kWn);
}

TEST(CellTest, Xor2HasFourNandStages) {
  const Cell x = make_xor2(kWn, kWp);
  EXPECT_EQ(x.num_stages(), 4);
  EXPECT_EQ(x.depth(), 3);  // a/b -> s0 -> s1/s2 -> out
}

TEST(CellTest, AndIsNandPlusInverter) {
  const Cell a = make_and(2, kWn, kWp);
  EXPECT_EQ(a.num_stages(), 2);
  EXPECT_EQ(a.stages()[0].kind, StageKind::Nand);
  EXPECT_EQ(a.stages()[1].kind, StageKind::Inv);
}

TEST(CellTest, RejectsBadConstruction) {
  EXPECT_THROW(Cell("BAD", 0, {}), std::invalid_argument);
  EXPECT_THROW(Cell("BAD", 1, {}), std::invalid_argument);
  // Stage input referencing a not-yet-defined signal.
  EXPECT_THROW(Cell("BAD", 1, {Stage{StageKind::Inv, {5}, kWn, kWp}}),
               std::invalid_argument);
  // Inv with wrong arity.
  EXPECT_THROW(Cell("BAD", 2, {Stage{StageKind::Inv, {0, 1}, kWn, kWp}}),
               std::invalid_argument);
  // Non-positive widths.
  EXPECT_THROW(Cell("BAD", 1, {Stage{StageKind::Inv, {0}, 0.0, kWp}}),
               std::invalid_argument);
  EXPECT_THROW(make_nand(5, kWn, kWp), std::invalid_argument);
  EXPECT_THROW(make_nor(1, kWn, kWp), std::invalid_argument);
}

TEST(CellTest, SignalProbabilityRejectsSizeMismatch) {
  const Cell nand2 = make_nand(2, kWn, kWp);
  std::vector<double> wrong(3, 0.5);
  EXPECT_THROW(nand2.signal_probabilities(wrong), std::invalid_argument);
}

// The NBTI-relevant invariant: a PMOS is stressed when its gate signal is 0.
// For a NAND2 with inputs 00, both PMOS gates are low (stressed); with 11,
// both are high (relaxed).
TEST(CellTest, PmosStressStatesFollowSignals) {
  const Cell nand2 = make_nand(2, kWn, kWp);
  const std::vector<bool> low = nand2.signal_values(0b00);
  const std::vector<bool> high = nand2.signal_values(0b11);
  for (const PmosDevice& pm : nand2.pmos_devices()) {
    EXPECT_FALSE(low[pm.gate_signal]);   // stressed
    EXPECT_TRUE(high[pm.gate_signal]);   // relaxed
  }
}

// Composite cells expose the inverting structure: an AND2 driven by 11
// still stresses its second-stage inverter PMOS (the NAND output is 0).
TEST(CellTest, And2InternalStageStressedAtAllOnes) {
  const Cell and2 = make_and(2, kWn, kWp);
  const std::vector<bool> sigs = and2.signal_values(0b11);
  const Stage& inv = and2.stages()[1];
  EXPECT_FALSE(sigs[inv.inputs[0]]);  // NAND output low -> INV PMOS stressed
}

}  // namespace
}  // namespace nbtisim::tech
