// Unit tests for variation-aware aging Monte-Carlo (src/variation/*).

#include "variation/variation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/generators.h"
#include "tech/units.h"

namespace nbtisim::variation {
namespace {

class VariationTest : public ::testing::Test {
 protected:
  VariationTest() : c880_(netlist::iscas85_like("c880")) {
    cond_.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
    cond_.sp_vectors = 512;
    analyzer_.emplace(c880_, lib_, cond_);
  }

  tech::Library lib_;
  netlist::Netlist c880_;
  aging::AgingConditions cond_;
  std::optional<aging::AgingAnalyzer> analyzer_;
};

TEST_F(VariationTest, DistributionStatsBasics) {
  DelayDistribution d;
  d.delays = {1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(d.mean(), 2.5, 1e-12);
  EXPECT_NEAR(d.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(d.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(d.quantile(1.0), 4.0, 1e-12);
  EXPECT_NEAR(d.quantile(0.5), 2.5, 1e-12);
  EXPECT_THROW(d.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(DelayDistribution{}.quantile(0.5), std::logic_error);
}

TEST_F(VariationTest, QuantileSingleElement) {
  DelayDistribution d;
  d.delays = {2.5};
  EXPECT_NEAR(d.quantile(0.0), 2.5, 1e-15);
  EXPECT_NEAR(d.quantile(0.5), 2.5, 1e-15);
  EXPECT_NEAR(d.quantile(1.0), 2.5, 1e-15);
}

TEST_F(VariationTest, QuantileMidBucketInterpolation) {
  DelayDistribution d;
  d.delays = {8.0, 1.0, 4.0, 2.0};  // sorted: 1 2 4 8
  // q = 0.25 lands at index 0.75: 0.25 * 1 + 0.75 * 2.
  EXPECT_NEAR(d.quantile(0.25), 1.75, 1e-12);
  // q = 0.5 lands at index 1.5: halfway between 2 and 4.
  EXPECT_NEAR(d.quantile(0.5), 3.0, 1e-12);
  EXPECT_NEAR(d.quantile(1.0), 8.0, 1e-12);
}

TEST_F(VariationTest, BitIdenticalAcrossThreadCounts) {
  // The parallel fan-out is purely a speed knob: per-sample SplitMix64
  // streams land in disjoint slots, so any n_threads gives the serial bits.
  VariationParams p{.sigma_vth = 0.012, .samples = 60, .seed = 5};
  p.n_threads = 1;
  const MonteCarloAging serial(*analyzer_, p);
  const DelayDistribution fresh1 = serial.fresh_distribution();
  const DelayDistribution aged1 =
      serial.aged_distribution(aging::StandbyPolicy::all_stressed(), 1e8);
  for (int n : {2, 8}) {
    p.n_threads = n;
    const MonteCarloAging mc(*analyzer_, p);
    EXPECT_EQ(mc.fresh_distribution().delays, fresh1.delays) << n;
    EXPECT_EQ(
        mc.aged_distribution(aging::StandbyPolicy::all_stressed(), 1e8).delays,
        aged1.delays)
        << n;
  }
}

TEST_F(VariationTest, RejectsBadParams) {
  EXPECT_THROW(MonteCarloAging(*analyzer_, {.samples = 1}),
               std::invalid_argument);
  EXPECT_THROW(MonteCarloAging(*analyzer_, {.sigma_vth = -0.01}),
               std::invalid_argument);
}

TEST_F(VariationTest, FreshDistributionCentersOnNominal) {
  const MonteCarloAging mc(*analyzer_, {.sigma_vth = 0.015, .samples = 200});
  const DelayDistribution fresh = mc.fresh_distribution();
  const double nominal = analyzer_->sta().analyze_fresh(400.0).max_delay;
  EXPECT_NEAR(fresh.mean() / nominal, 1.0, 0.05);
  EXPECT_GT(fresh.stddev(), 0.0);
}

TEST_F(VariationTest, AgedDistributionShiftsUp) {
  // Fig. 12: the aged distribution moves right relative to fresh.
  const MonteCarloAging mc(*analyzer_, {.sigma_vth = 0.015, .samples = 150});
  const DelayDistribution fresh = mc.fresh_distribution();
  const DelayDistribution aged =
      mc.aged_distribution(aging::StandbyPolicy::all_stressed(), 3e8);
  EXPECT_GT(aged.mean(), fresh.mean());
}

TEST_F(VariationTest, Fig12SeparationAfterThreeYears) {
  // Paper: the -3sigma bound at 3 years exceeds the +3sigma bound at t = 0.
  const MonteCarloAging mc(*analyzer_, {.sigma_vth = 0.012, .samples = 200});
  const DelayDistribution fresh = mc.fresh_distribution();
  const DelayDistribution aged3y =
      mc.aged_distribution(aging::StandbyPolicy::all_stressed(),
                           3.0 * kSecondsPerYear);
  EXPECT_GT(aged3y.lower3(), fresh.upper3());
}

TEST_F(VariationTest, AgingCompensatesVariation) {
  // [51]: variance under aging stays at or below the fresh variance,
  // because low-Vth (fast) gates age harder.
  const MonteCarloAging mc(*analyzer_, {.sigma_vth = 0.02, .samples = 200});
  const DelayDistribution fresh = mc.fresh_distribution();
  const DelayDistribution aged =
      mc.aged_distribution(aging::StandbyPolicy::all_stressed(), 3e8);
  const double fresh_cv = fresh.stddev() / fresh.mean();
  const double aged_cv = aged.stddev() / aged.mean();
  EXPECT_LE(aged_cv, fresh_cv * 1.02);
}

TEST_F(VariationTest, DeterministicPerSeed) {
  const MonteCarloAging a(*analyzer_, {.samples = 50, .seed = 9});
  const MonteCarloAging b(*analyzer_, {.samples = 50, .seed = 9});
  EXPECT_EQ(a.fresh_distribution().delays, b.fresh_distribution().delays);
}

TEST_F(VariationTest, MoreVariationMeansWiderDistribution) {
  const MonteCarloAging narrow(*analyzer_, {.sigma_vth = 0.005, .samples = 150});
  const MonteCarloAging wide(*analyzer_, {.sigma_vth = 0.03, .samples = 150});
  EXPECT_GT(wide.fresh_distribution().stddev(),
            narrow.fresh_distribution().stddev());
}

TEST_F(VariationTest, LongerAgingShiftsFurther) {
  const MonteCarloAging mc(*analyzer_, {.samples = 100});
  const double m1 =
      mc.aged_distribution(aging::StandbyPolicy::all_stressed(), 1e7).mean();
  const double m2 =
      mc.aged_distribution(aging::StandbyPolicy::all_stressed(), 3e8).mean();
  EXPECT_GT(m2, m1);
}

}  // namespace
}  // namespace nbtisim::variation
