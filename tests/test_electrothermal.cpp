// Unit tests for the electrothermal fixpoint solver
// (src/thermal/electrothermal.*).

#include "thermal/electrothermal.h"

#include <gtest/gtest.h>

#include "netlist/generators.h"

namespace nbtisim::thermal {
namespace {

class ElectrothermalTest : public ::testing::Test {
 protected:
  tech::Library lib_;
  netlist::Netlist c432_ = netlist::iscas85_like("c432");
  RcThermalModel model_;
  std::vector<bool> zeros_ = std::vector<bool>(36, false);
};

TEST_F(ElectrothermalTest, ConvergesAtModerateDynamicPower) {
  const OperatingPoint op = solve_operating_point(
      c432_, lib_, model_, zeros_,
      {.dynamic_power_w = 60.0, .replication = 1e5});
  EXPECT_TRUE(op.converged);
  // Leakage heating pushes the die above the leakage-free steady state.
  EXPECT_GT(op.temperature_k, model_.steady_state(60.0));
  EXPECT_GT(op.leakage_w, 0.0);
  EXPECT_LT(op.iterations, 40);
}

TEST_F(ElectrothermalTest, MoreDynamicPowerMeansHotterPoint) {
  const OperatingPoint low = solve_operating_point(
      c432_, lib_, model_, zeros_,
      {.dynamic_power_w = 20.0, .replication = 1e5});
  const OperatingPoint high = solve_operating_point(
      c432_, lib_, model_, zeros_,
      {.dynamic_power_w = 100.0, .replication = 1e5});
  ASSERT_TRUE(low.converged);
  ASSERT_TRUE(high.converged);
  EXPECT_GT(high.temperature_k, low.temperature_k);
  // Superlinear leakage: the hot point leaks disproportionately more.
  EXPECT_GT(high.leakage_w / low.leakage_w, 1.5);
}

TEST_F(ElectrothermalTest, NegligibleReplicationMatchesPlainSteadyState) {
  const OperatingPoint op = solve_operating_point(
      c432_, lib_, model_, zeros_,
      {.dynamic_power_w = 60.0, .replication = 1.0});
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.temperature_k, model_.steady_state(60.0), 0.1);
}

TEST_F(ElectrothermalTest, ExtremeReplicationTriggersRunaway) {
  const OperatingPoint op = solve_operating_point(
      c432_, lib_, model_, zeros_,
      {.dynamic_power_w = 120.0, .replication = 3e8, .max_iterations = 60});
  EXPECT_FALSE(op.converged);
}

TEST_F(ElectrothermalTest, LeakageStateMatters) {
  // A high-leakage standby vector yields a (slightly) hotter fixpoint.
  std::vector<bool> ones(c432_.num_inputs(), true);
  const leakage::LeakageAnalyzer leak(c432_, lib_, 380.0);
  const double l0 = leak.circuit_leakage(zeros_);
  const double l1 = leak.circuit_leakage(ones);
  const OperatingPoint op0 = solve_operating_point(
      c432_, lib_, model_, zeros_,
      {.dynamic_power_w = 60.0, .replication = 3e5});
  const OperatingPoint op1 = solve_operating_point(
      c432_, lib_, model_, ones,
      {.dynamic_power_w = 60.0, .replication = 3e5});
  ASSERT_TRUE(op0.converged);
  ASSERT_TRUE(op1.converged);
  if (l1 > l0) {
    EXPECT_GE(op1.temperature_k, op0.temperature_k);
  } else {
    EXPECT_LE(op1.temperature_k, op0.temperature_k);
  }
}

TEST_F(ElectrothermalTest, SweepMatchesCellwiseSolvesBitIdentically) {
  const std::vector<double> powers = {20.0, 60.0, 100.0};
  const ElectrothermalParams params{.replication = 1e5};
  std::vector<OperatingPoint> want;
  for (double p : powers) {
    ElectrothermalParams cell = params;
    cell.dynamic_power_w = p;
    want.push_back(solve_operating_point(c432_, lib_, model_, zeros_, cell));
  }
  for (int n_threads : {1, 2, 8}) {
    const std::vector<OperatingPoint> sweep = solve_operating_points(
        c432_, lib_, model_, zeros_, powers, params, n_threads);
    ASSERT_EQ(sweep.size(), powers.size());
    for (std::size_t i = 0; i < powers.size(); ++i) {
      EXPECT_EQ(sweep[i].temperature_k, want[i].temperature_k);
      EXPECT_EQ(sweep[i].leakage_w, want[i].leakage_w);
      EXPECT_EQ(sweep[i].iterations, want[i].iterations);
      EXPECT_EQ(sweep[i].converged, want[i].converged);
    }
  }
}

TEST_F(ElectrothermalTest, ZeroDynamicPowerStillConvergesAboveAmbient) {
  // Leakage alone heats the die: the fixpoint sits above ambient but well
  // below the moderate-power point.
  const OperatingPoint op = solve_operating_point(
      c432_, lib_, model_, zeros_,
      {.dynamic_power_w = 0.0, .replication = 1e5});
  ASSERT_TRUE(op.converged);
  EXPECT_GT(op.temperature_k, model_.steady_state(0.0));
  EXPECT_GT(op.leakage_w, 0.0);
  const OperatingPoint busy = solve_operating_point(
      c432_, lib_, model_, zeros_,
      {.dynamic_power_w = 60.0, .replication = 1e5});
  EXPECT_LT(op.temperature_k, busy.temperature_k);
}

TEST_F(ElectrothermalTest, LoweredRunawayThresholdForcesRunaway) {
  // The same benign configuration that converges with the default 1000 K
  // ceiling is declared runaway when the ceiling sits below its fixpoint.
  const ElectrothermalParams base{.dynamic_power_w = 60.0,
                                  .replication = 1e5};
  const OperatingPoint ok =
      solve_operating_point(c432_, lib_, model_, zeros_, base);
  ASSERT_TRUE(ok.converged);
  ElectrothermalParams strict = base;
  strict.runaway_temp_k = ok.temperature_k - 1.0;
  const OperatingPoint hot =
      solve_operating_point(c432_, lib_, model_, zeros_, strict);
  EXPECT_FALSE(hot.converged);
}

TEST_F(ElectrothermalTest, UnreachableToleranceExitsAtMaxIterations) {
  const OperatingPoint op = solve_operating_point(
      c432_, lib_, model_, zeros_,
      {.dynamic_power_w = 60.0, .replication = 1e5, .tolerance_k = 1e-12,
       .max_iterations = 5});
  EXPECT_FALSE(op.converged);
  EXPECT_EQ(op.iterations, 5);
  // The reported point is still self-consistent data, not garbage.
  EXPECT_GT(op.temperature_k, model_.steady_state(60.0));
  EXPECT_GT(op.leakage_w, 0.0);
}

TEST_F(ElectrothermalTest, ConvergedLeakageMatchesReportedTemperature) {
  // The returned leakage must be the one that produced the converged
  // temperature: T == steady_state(P_dyn + P_leak) within tolerance.
  const ElectrothermalParams params{.dynamic_power_w = 60.0,
                                    .replication = 1e5};
  const OperatingPoint op =
      solve_operating_point(c432_, lib_, model_, zeros_, params);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(op.temperature_k,
              model_.steady_state(params.dynamic_power_w + op.leakage_w),
              params.tolerance_k);
}

TEST_F(ElectrothermalTest, EmptySweepYieldsNoPoints) {
  const std::vector<double> none;
  EXPECT_TRUE(solve_operating_points(c432_, lib_, model_, zeros_, none,
                                     {.replication = 1e5})
                  .empty());
}

TEST_F(ElectrothermalTest, RejectsBadParameters) {
  EXPECT_THROW(solve_operating_point(c432_, lib_, model_, zeros_,
                                     {.replication = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(solve_operating_point(c432_, lib_, model_, zeros_,
                                     {.supply_v = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(solve_operating_point(c432_, lib_, model_, zeros_,
                                     {.max_iterations = 0}),
               std::invalid_argument);
  EXPECT_THROW(solve_operating_point(c432_, lib_, model_, zeros_,
                                     {.runaway_temp_k = 0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nbtisim::thermal
