// Tests for the results-serving subsystem: the sidecar store index
// (src/campaign/index.*), the query engine and StoreView (src/query/query.*),
// and the line-protocol server (src/query/serve.*). The determinism-labeled
// cases prove the three contracts the subsystem ships with: query output is
// byte-identical across shard layouts, byte-identical across thread counts,
// and exactly equal to the naive full-rescan reference.

#include "query/query.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "campaign/index.h"
#include "campaign/store.h"
#include "query/serve.h"
#include "support/reference.h"

namespace nbtisim::query {
namespace {

using campaign::IndexEntry;
using campaign::ResultStore;
using campaign::ShardedStore;
using common::json::Value;

std::string temp_path(const std::string& name) {
  // Process-unique: gtest_discover_tests runs each TEST as its own process
  // and ctest -j runs them concurrently.
  const std::string path = ::testing::TempDir() + "/" +
                           std::to_string(::getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

void remove_store(const std::string& path) {
  std::remove(path.c_str());
  std::remove(campaign::index_path(path).c_str());
  for (int h = 0; h < ShardedStore::kMaxShards; ++h) {
    const std::string sp = ShardedStore::shard_path(path, h);
    std::remove(sp.c_str());
    std::remove(campaign::index_path(sp).c_str());
  }
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(f)) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// A deterministic synthetic campaign row: hashes cover every hex prefix so
// all 16 shards participate, coordinates form a small grid, and metric
// values are reproducible functions of the index. Every third row carries a
// structured payload next to its scalars, and a few metric values are
// non-finite to exercise the aggregation skip rule.
Value synthetic_row(int i) {
  static const char* kNetlists[] = {"c432", "c880", "dag:8x40@3"};
  static const char* kAnalyses[] = {"aging", "st", "failure"};
  char hash[32];
  std::snprintf(hash, sizeof hash, "%016x", 0x10000000u * (i % 16) + i);
  Value row;
  row.set("hash", std::string(hash));
  row.set("campaign", "synthetic");
  row.set("netlist", kNetlists[i % 3]);
  row.set("netlist_spec", kNetlists[i % 3]);
  row.set("ras", i % 2 == 0 ? "1:9" : "5:5");
  row.set("t_active", 400.0);
  row.set("t_standby", i % 4 < 2 ? 330.0 : 400.0);
  row.set("years", 10.0);
  row.set("analysis", kAnalyses[i % 3]);
  Value metrics;
  metrics.set("worst_pct", 4.0 + 0.125 * (i % 37));
  metrics.set("fresh_ns", 3.0 + 0.0625 * (i % 17));
  if (i % 11 == 0) {
    metrics.set("odd_metric",
                i % 22 == 0 ? std::numeric_limits<double>::infinity()
                            : 1.5 * i);
  }
  if (i % 3 == 0) {
    common::json::Array curve;
    for (int k = 0; k < 3; ++k) {
      Value pt;
      pt.set("years", static_cast<double>(k + 1));
      pt.set("p", 0.01 * ((i + k) % 90));
      curve.push_back(pt);
    }
    metrics.set("curve", Value(std::move(curve)));
  }
  row.set("metrics", std::move(metrics));
  return row;
}

/// Writes \p n synthetic rows through a ShardedStore with \p shards shards
/// (in batches, like the engine) and returns the store path.
std::string build_store(const std::string& name, int n, int shards) {
  const std::string path = temp_path(name);
  remove_store(path);
  ShardedStore store(path, shards);
  std::vector<Value> batch;
  for (int i = 0; i < n; ++i) {
    batch.push_back(synthetic_row(i));
    if (batch.size() == 32) {
      store.append(batch);
      batch.clear();
    }
  }
  store.append(batch);
  return path;
}

// The fixed query set the differential and bit-identity tests all run.
const char* kQueries[] = {
    R"({})",
    R"({"where":{"netlist":"c432"}})",
    R"({"where":{"analysis":["aging","st"],"t_standby":400}})",
    R"({"where":{"worst_pct":{"min":5.0,"max":7.5}}})",
    R"({"where":{"ras":"5:5","worst_pct":{"max":6}},"select":["netlist","ras","analysis","worst_pct"]})",
    R"({"select":["hash","netlist","curve"],"where":{"netlist":"dag:8x40@3"},"limit":7})",
    R"({"agg":{"op":"count","by":["netlist","analysis"]}})",
    R"({"agg":{"op":"mean","by":["netlist"],"metrics":["worst_pct","fresh_ns"]}})",
    R"({"where":{"t_standby":{"min":350}},"agg":{"op":"max","by":["ras"]}})",
    R"({"agg":{"op":"quantile","q":0.25,"by":["analysis"],"metrics":["worst_pct"]}})",
    R"({"agg":{"op":"sum"}})",
    R"({"where":{"odd_metric":{"min":0}},"agg":{"op":"min","by":["netlist"],"metrics":["odd_metric"]}})",
    R"({"where":{"hash":"0000000000000000"}})",
    R"({"where":{"netlist":"nonexistent"},"agg":{"op":"count"}})",
};

// --------------------------------------------------------------------------
// The sidecar index.

TEST(IndexTest, IndexPathInsertsBeforeExtension) {
  EXPECT_EQ(campaign::index_path("store.jsonl"), "store.index.jsonl");
  EXPECT_EQ(campaign::index_path("a/b.c/store.3.jsonl"),
            "a/b.c/store.3.index.jsonl");
  EXPECT_EQ(campaign::index_path("noext"), "noext.index");
}

TEST(IndexTest, AppendBuildsEntriesIncrementally) {
  const std::string path = temp_path("idx_inc.jsonl");
  remove_store(path);
  {
    ResultStore store(path);
    std::vector<Value> rows{synthetic_row(0), synthetic_row(1)};
    store.append(rows);
    std::vector<Value> more{synthetic_row(2)};
    store.append(more);
  }
  const campaign::StoreIndex idx = campaign::load_index(path);
  EXPECT_FALSE(idx.rebuilt);
  EXPECT_FALSE(idx.caught_up);
  ASSERT_EQ(idx.entries.size(), 3u);
  EXPECT_EQ(idx.entries[0].offset, 0u);
  EXPECT_EQ(idx.entries[0].netlist, "c432");
  EXPECT_EQ(idx.entries[0].analysis, "aging");
  EXPECT_DOUBLE_EQ(idx.entries[1].t_standby, 330.0);
  // Scalar metric names only: row 0 also carries the structured "curve",
  // which must not be listed (predicates on it require a parse).
  EXPECT_EQ(idx.entries[0].metrics,
            (std::vector<std::string>{"worst_pct", "fresh_ns", "odd_metric"}));
  EXPECT_EQ(idx.entries[1].metrics,
            (std::vector<std::string>{"worst_pct", "fresh_ns"}));
  // Extents tile the file: entry k+1 starts right after entry k's newline.
  EXPECT_EQ(idx.entries[1].offset, idx.entries[0].offset +
                                       idx.entries[0].length + 1);
}

TEST(IndexTest, IncrementalSidecarMatchesRebuiltSidecar) {
  const std::string path = temp_path("idx_equal.jsonl");
  remove_store(path);
  {
    ResultStore store(path);
    std::vector<Value> rows;
    for (int i = 0; i < 9; ++i) rows.push_back(synthetic_row(i));
    store.append(rows);
  }
  const std::string incremental = read_file(campaign::index_path(path));
  std::remove(campaign::index_path(path).c_str());
  // A missing sidecar is an empty-but-valid one: the loader catches up from
  // byte 0 and persists, reproducing the incremental sidecar byte for byte.
  const campaign::StoreIndex idx = campaign::load_index(path);
  EXPECT_TRUE(idx.caught_up);
  EXPECT_EQ(read_file(campaign::index_path(path)), incremental);
}

TEST(IndexTest, MissingSidecarRegenerates) {
  const std::string path = temp_path("idx_regen.jsonl");
  remove_store(path);
  {
    ResultStore store(path);
    std::vector<Value> rows{synthetic_row(0), synthetic_row(5)};
    store.append(rows);
  }
  std::remove(campaign::index_path(path).c_str());
  const campaign::StoreIndex idx = campaign::load_index(path);
  EXPECT_TRUE(idx.caught_up);
  ASSERT_EQ(idx.entries.size(), 2u);
  EXPECT_EQ(idx.entries[1].ras, "5:5");
}

TEST(IndexTest, StaleSidecarRebuilds) {
  const std::string path = temp_path("idx_stale.jsonl");
  remove_store(path);
  {
    ResultStore store(path);
    std::vector<Value> rows{synthetic_row(0), synthetic_row(1)};
    store.append(rows);
  }
  // Clobber the sidecar with entries whose extents cannot match the file.
  {
    std::ofstream side(campaign::index_path(path), std::ios::trunc);
    side << R"({"h":"bogus","o":4,"l":999999})" << "\n";
  }
  const campaign::StoreIndex idx = campaign::load_index(path);
  EXPECT_TRUE(idx.rebuilt);
  ASSERT_EQ(idx.entries.size(), 2u);
  EXPECT_EQ(idx.entries[0].hash, synthetic_row(0).at("hash").as_string());
}

TEST(IndexTest, GapBetweenEntriesTriggersRebuild) {
  const std::string path = temp_path("idx_gap.jsonl");
  remove_store(path);
  {
    ResultStore store(path);
    std::vector<Value> rows;
    for (int i = 0; i < 3; ++i) rows.push_back(synthetic_row(i));
    store.append(rows);
  }
  // Drop the middle sidecar line: its row now hides in the "gap", which the
  // whitespace check must catch (a naive extent check would not).
  const campaign::StoreIndex before = campaign::load_index(path);
  ASSERT_EQ(before.entries.size(), 3u);
  {
    std::ofstream side(campaign::index_path(path), std::ios::trunc);
    side << campaign::dump_entry(before.entries[0]) << "\n"
         << campaign::dump_entry(before.entries[2]) << "\n";
  }
  const campaign::StoreIndex idx = campaign::load_index(path);
  EXPECT_TRUE(idx.rebuilt);
  ASSERT_EQ(idx.entries.size(), 3u);
}

TEST(IndexTest, CatchUpIndexesRowsAppendedWithoutSidecar) {
  const std::string path = temp_path("idx_catchup.jsonl");
  remove_store(path);
  {
    ResultStore store(path);
    std::vector<Value> rows{synthetic_row(0)};
    store.append(rows);
  }
  // Simulate an older binary appending a row without a sidecar entry.
  {
    std::ofstream f(path, std::ios::app);
    f << common::json::dump(synthetic_row(1)) << "\n";
  }
  const campaign::StoreIndex idx = campaign::load_index(path);
  EXPECT_FALSE(idx.rebuilt);
  EXPECT_TRUE(idx.caught_up);
  ASSERT_EQ(idx.entries.size(), 2u);
  // The catch-up was persisted: a second load is clean.
  const campaign::StoreIndex again = campaign::load_index(path);
  EXPECT_FALSE(again.rebuilt);
  EXPECT_FALSE(again.caught_up);
  ASSERT_EQ(again.entries.size(), 2u);
}

TEST(IndexTest, TruncatedStoreTailStaysUnindexed) {
  const std::string path = temp_path("idx_tail.jsonl");
  remove_store(path);
  {
    std::ofstream f(path);
    f << common::json::dump(synthetic_row(0)) << "\n"
      << R"({"hash":"deadbeef","netli)";  // killed mid-append
  }
  const campaign::StoreIndex idx = campaign::load_index(path);
  ASSERT_EQ(idx.entries.size(), 1u);
  EXPECT_EQ(idx.entries[0].hash, synthetic_row(0).at("hash").as_string());
}

// --------------------------------------------------------------------------
// ResultStore truncated-tail warning (regression: used to be silent).

TEST(ResultStoreTest, WarnsOnTruncatedTailWithPathAndOffset) {
  const std::string path = temp_path("warn_tail.jsonl");
  remove_store(path);
  const std::string good = common::json::dump(synthetic_row(0)) + "\n";
  {
    std::ofstream f(path);
    f << good << R"({"hash":"deadbeef","netli)";
  }
  std::ostringstream warnings;
  ResultStore store(path, &warnings);
  EXPECT_EQ(store.size(), 1u);
  const std::string msg = warnings.str();
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("byte " + std::to_string(good.size())),
            std::string::npos)
      << msg;
  // A clean store stays quiet.
  std::ostringstream quiet;
  ResultStore reloaded(path, &quiet);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_TRUE(quiet.str().empty()) << quiet.str();
}

// --------------------------------------------------------------------------
// Query parsing.

TEST(QueryParseTest, RejectsMalformedQueries) {
  const auto parse = [](const char* text) {
    return parse_query(common::json::parse(text));
  };
  EXPECT_THROW(parse(R"([1,2])"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"frobnicate":1})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"where":{"x":{"between":[1,2]}}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"where":{"x":{}}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"where":{"x":[]}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"where":{"x":true}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"agg":{"op":"median"}})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"agg":{"op":"quantile","q":1.5}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"agg":{"op":"count","by":["worst_pct"]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"limit":-1})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"limit":2.5})"), std::invalid_argument);
  EXPECT_THROW(parse(R"({"select":[]})"), std::invalid_argument);
}

TEST(QueryParseTest, AcceptsTheDocumentedForms) {
  const Query q = parse_query(common::json::parse(
      R"({"where":{"netlist":["c432","c880"],"worst_pct":{"min":1},
          "t_standby":330},
          "select":["netlist","worst_pct"],
          "agg":{"op":"quantile","q":0.9,"by":["netlist"]},
          "limit":10})"));
  EXPECT_EQ(q.where.size(), 3u);
  EXPECT_EQ(q.where[0].second.any_of.size(), 2u);
  EXPECT_TRUE(q.where[1].second.has_range);
  EXPECT_TRUE(q.has_agg);
  EXPECT_EQ(q.agg.op, "quantile");
  EXPECT_EQ(q.limit, 10);
}

// --------------------------------------------------------------------------
// Differential: indexed query vs naive full rescan, exact table equality.

TEST(QueryDifferentialTest, MatchesNaiveRescanOnShardedStore) {
  const std::string path = build_store("qdiff16.jsonl", 211, 16);
  const StoreView view(path);
  for (const char* text : kQueries) {
    const common::json::Value qdoc = common::json::parse(text);
    const QueryResult r = run_query(view, parse_query(qdoc), 1);
    const report::Table expect = testsupport::reference_query(path, qdoc);
    EXPECT_EQ(report::to_csv(r.table()), report::to_csv(expect)) << text;
  }
  remove_store(path);
}

TEST(QueryDifferentialTest, MatchesNaiveRescanOnLegacySingleFile) {
  const std::string path = build_store("qdiff1.jsonl", 97, 1);
  const StoreView view(path);
  for (const char* text : kQueries) {
    const common::json::Value qdoc = common::json::parse(text);
    const QueryResult r = run_query(view, parse_query(qdoc), 2);
    const report::Table expect = testsupport::reference_query(path, qdoc);
    EXPECT_EQ(report::to_csv(r.table()), report::to_csv(expect)) << text;
  }
  remove_store(path);
}

// --------------------------------------------------------------------------
// Bit-identity across shard layouts and thread counts.

TEST(QueryTest, BitIdenticalAcrossShardLayouts) {
  const int kRows = 173;
  const std::string p1 = build_store("qlay1.jsonl", kRows, 1);
  const std::string p4 = build_store("qlay4.jsonl", kRows, 4);
  const std::string p16 = build_store("qlay16.jsonl", kRows, 16);
  const StoreView v1(p1), v4(p4), v16(p16);
  ASSERT_EQ(v1.total_rows(), static_cast<std::size_t>(kRows));
  ASSERT_EQ(v16.total_rows(), static_cast<std::size_t>(kRows));
  for (const char* text : kQueries) {
    const Query q = parse_query(common::json::parse(text));
    const QueryResult r1 = run_query(v1, q, 1);
    const QueryResult r4 = run_query(v4, q, 2);
    const QueryResult r16 = run_query(v16, q, 4);
    EXPECT_EQ(r1.to_json(), r4.to_json()) << text;
    EXPECT_EQ(r1.to_json(), r16.to_json()) << text;
    EXPECT_EQ(report::to_markdown(r1.table()),
              report::to_markdown(r16.table()))
        << text;
    EXPECT_EQ(r1.stats.rows_matched, r16.stats.rows_matched) << text;
  }
  remove_store(p1);
  remove_store(p4);
  remove_store(p16);
}

TEST(QueryTest, BitIdenticalAcrossThreadCounts) {
  const std::string path = build_store("qthreads.jsonl", 149, 8);
  const StoreView view(path);
  for (const char* text : kQueries) {
    const Query q = parse_query(common::json::parse(text));
    const std::string baseline = run_query(view, q, 1).to_json();
    for (int threads : {2, 4, 8}) {
      EXPECT_EQ(run_query(view, q, threads).to_json(), baseline)
          << text << " threads=" << threads;
    }
  }
  remove_store(path);
}

// --------------------------------------------------------------------------
// Query semantics spot checks (the differential suite proves equivalence;
// these pin down absolute behaviour).

TEST(QueryTest, CountAggregationNeverParsesRows) {
  const std::string path = build_store("qcount.jsonl", 101, 4);
  const StoreView view(path);
  const QueryResult r = run_query(
      view,
      parse_query(common::json::parse(
          R"({"where":{"netlist":"c432"},"agg":{"op":"count","by":["analysis"]}})")),
      2);
  EXPECT_EQ(r.stats.rows_parsed, 0u);
  EXPECT_GT(r.stats.rows_matched, 0u);
  remove_store(path);
}

TEST(QueryTest, MetricPredicateParsesOnlyRowsListingTheMetric) {
  const std::string path = build_store("qprune.jsonl", 110, 4);
  const StoreView view(path);
  // "odd_metric" exists on every 11th row only; the index prunes the rest.
  const QueryResult r = run_query(
      view,
      parse_query(common::json::parse(R"({"where":{"odd_metric":{"min":0}}})")),
      1);
  EXPECT_EQ(r.stats.rows_parsed, 10u);  // rows 0, 11, ..., 99
  // Infinity satisfies the range (non-finite is skipped only by reducers).
  EXPECT_EQ(r.stats.rows_matched, r.stats.rows_parsed);
  remove_store(path);
}

TEST(QueryTest, StructuredPayloadSelectsAsJson) {
  const std::string path = build_store("qcurve.jsonl", 30, 2);
  const StoreView view(path);
  const QueryResult r = run_query(
      view,
      parse_query(common::json::parse(
          R"({"where":{"hash":"0000000000000000"},"select":["curve"]})")),
      1);
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_TRUE(r.rows[0][0].is_array());
  EXPECT_EQ(r.rows[0][0].as_array().size(), 3u);
  // And the table cell renders it as compact JSON.
  const report::Table t = r.table();
  EXPECT_EQ(t.rows[0][0].front(), '[');
  remove_store(path);
}

TEST(QueryTest, EmptyStoreYieldsEmptyResult) {
  const std::string path = temp_path("qempty.jsonl");
  remove_store(path);
  const StoreView view(path);
  EXPECT_EQ(view.total_rows(), 0u);
  const QueryResult r =
      run_query(view, parse_query(common::json::parse("{}")), 4);
  EXPECT_TRUE(r.rows.empty());
  EXPECT_EQ(r.to_json(),
            R"({"columns":["netlist","ras","t_active","t_standby","years","analysis"],"rows":[]})");
}

// --------------------------------------------------------------------------
// Serving.

TEST(ServeTest, HandleQueryWrapsResultsAndErrors) {
  const std::string path = build_store("serve_h.jsonl", 40, 4);
  const StoreView view(path);
  const std::string ok = handle_query(
      view, R"({"agg":{"op":"count","by":["netlist"]}})", 1);
  EXPECT_EQ(ok.find(R"({"ok":true,"columns":["netlist","count"],)"), 0u) << ok;
  EXPECT_NE(ok.find(R"("matched":40)"), std::string::npos) << ok;
  const std::string err = handle_query(view, R"({"bogus":1})", 1);
  EXPECT_EQ(err.find(R"({"ok":false,"error":)"), 0u) << err;
  const std::string garbage = handle_query(view, "not json at all", 1);
  EXPECT_EQ(garbage.find(R"({"ok":false)"), 0u) << garbage;
  remove_store(path);
}

TEST(ServeTest, SessionAnswersLineByLine) {
  const std::string path = build_store("serve_s.jsonl", 25, 2);
  const StoreView view(path);
  std::istringstream in(
      "{\"agg\":{\"op\":\"count\"}}\n"
      "\n"
      "{\"where\":{\"netlist\":\"c432\"},\"agg\":{\"op\":\"count\"}}\n");
  std::ostringstream out;
  serve_session(view, in, out, 1);
  std::istringstream lines(out.str());
  std::string line;
  int responses = 0;
  while (std::getline(lines, line)) {
    EXPECT_EQ(line.find(R"({"ok":true)"), 0u) << line;
    ++responses;
  }
  EXPECT_EQ(responses, 2);  // the blank request line produced no response
  remove_store(path);
}

TEST(ServeTest, BitIdenticalResponsesAcrossConcurrentSessions) {
  const std::string path = build_store("serve_c.jsonl", 131, 8);
  const StoreView view(path);  // one shared view, many sessions
  std::string request_block;
  for (const char* text : kQueries) {
    request_block += text;
    request_block += '\n';
  }
  const int kSessions = 8;
  std::vector<std::string> outputs(kSessions);
  std::vector<std::thread> sessions;
  sessions.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    sessions.emplace_back([&, s] {
      std::istringstream in(request_block);
      std::ostringstream out;
      serve_session(view, in, out, 1 + s % 4);
      outputs[static_cast<std::size_t>(s)] = out.str();
    });
  }
  for (std::thread& t : sessions) t.join();
  for (int s = 1; s < kSessions; ++s) {
    EXPECT_EQ(outputs[static_cast<std::size_t>(s)], outputs[0])
        << "session " << s;
  }
  remove_store(path);
}

// Plain socket round-trip (deliberately outside the determinism label: the
// protocol logic above already runs under TSan; this checks the TCP plumbing).
TEST(ServeTcpTest, AnswersOverLoopback) {
  const std::string path = build_store("serve_tcp.jsonl", 20, 2);
  const StoreView view(path);
  std::atomic<int> port{0};
  ServeOptions opt;
  opt.port = 0;
  opt.n_threads = 1;
  opt.max_connections = 1;
  opt.bound_port = &port;
  std::thread server([&] { serve_tcp(view, opt, nullptr); });
  while (port.load(std::memory_order_acquire) == 0) {
    std::this_thread::yield();
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port.load()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof addr),
            0);
  const std::string request = "{\"agg\":{\"op\":\"count\"}}\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[1024];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0);
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  server.join();
  EXPECT_EQ(response.find(R"({"ok":true)"), 0u) << response;
  EXPECT_NE(response.find(R"("matched":20)"), std::string::npos) << response;
  remove_store(path);
}

}  // namespace
}  // namespace nbtisim::query
