// Unit tests for the circuit generators (src/netlist/generators.*),
// including functional checks of the structural circuits.

#include "netlist/generators.h"

#include <gtest/gtest.h>

#include <random>

#include "sim/simulator.h"

namespace nbtisim::netlist {
namespace {

std::vector<bool> bits_of(std::uint64_t value, int n) {
  std::vector<bool> v(n);
  for (int i = 0; i < n; ++i) v[i] = (value >> i) & 1ull;
  return v;
}

std::uint64_t value_of(const std::vector<bool>& bits) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) v |= 1ull << i;
  }
  return v;
}

TEST(MultiplierTest, FourByFourIsExact) {
  const Netlist nl = make_multiplier("m4", 4);
  EXPECT_EQ(nl.num_inputs(), 8);
  EXPECT_EQ(nl.num_outputs(), 8);
  EXPECT_NO_THROW(nl.validate());
  sim::Simulator sim(nl);
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      std::vector<bool> pi = bits_of(a, 4);
      const std::vector<bool> bb = bits_of(b, 4);
      pi.insert(pi.end(), bb.begin(), bb.end());
      EXPECT_EQ(value_of(sim.outputs(pi)), a * b) << a << "*" << b;
    }
  }
}

TEST(MultiplierTest, SixteenBitSpotChecks) {
  const Netlist nl = make_multiplier("m16", 16);
  EXPECT_EQ(nl.num_inputs(), 32);
  EXPECT_EQ(nl.num_outputs(), 32);
  sim::Simulator sim(nl);
  for (auto [a, b] : {std::pair<std::uint64_t, std::uint64_t>{0, 0},
                      {65535, 65535},
                      {12345, 54321},
                      {40000, 3},
                      {1, 65535}}) {
    std::vector<bool> pi = bits_of(a, 16);
    const std::vector<bool> bb = bits_of(b, 16);
    pi.insert(pi.end(), bb.begin(), bb.end());
    EXPECT_EQ(value_of(sim.outputs(pi)), a * b) << a << "*" << b;
  }
}

TEST(MultiplierTest, RejectsBadWidth) {
  EXPECT_THROW(make_multiplier("m", 1), std::invalid_argument);
  EXPECT_THROW(make_multiplier("m", 40), std::invalid_argument);
}

TEST(RippleAdderTest, AddsExactly) {
  const Netlist nl = make_ripple_adder("add8", 8);
  sim::Simulator sim(nl);
  for (auto [a, b, c] : {std::tuple<int, int, int>{0, 0, 0},
                         {255, 1, 0},
                         {100, 57, 1},
                         {255, 255, 1}}) {
    std::vector<bool> pi = bits_of(a, 8);
    const std::vector<bool> bb = bits_of(b, 8);
    pi.insert(pi.end(), bb.begin(), bb.end());
    pi.push_back(c != 0);
    EXPECT_EQ(value_of(sim.outputs(pi)),
              static_cast<std::uint64_t>(a + b + c))
        << a << "+" << b << "+" << c;
  }
}

TEST(AluTest, AddAndLogicOpsCorrect) {
  const Netlist nl = make_alu("alu4", 4);
  EXPECT_NO_THROW(nl.validate());
  sim::Simulator sim(nl);
  // PI order: a[4], b[4], cin, op0, op1, sub. Outputs: result[4], carry,
  // zero, parity.
  auto run = [&](int a, int b, int cin, int op0, int op1, int sub) {
    std::vector<bool> pi = bits_of(a, 4);
    const std::vector<bool> bb = bits_of(b, 4);
    pi.insert(pi.end(), bb.begin(), bb.end());
    pi.push_back(cin != 0);
    pi.push_back(op0 != 0);
    pi.push_back(op1 != 0);
    pi.push_back(sub != 0);
    const std::vector<bool> out = sim.outputs(pi);
    return static_cast<int>(value_of({out.begin(), out.begin() + 4}));
  };
  EXPECT_EQ(run(5, 6, 0, 0, 0, 0), (5 + 6) & 0xF);       // add
  EXPECT_EQ(run(9, 3, 0, 0, 0, 1), (9 - 3) & 0xF);       // sub
  EXPECT_EQ(run(0b1100, 0b1010, 0, 1, 0, 0), 0b1000);    // and
  EXPECT_EQ(run(0b1100, 0b1010, 0, 0, 1, 0), 0b1110);    // or
  EXPECT_EQ(run(0b1100, 0b1010, 0, 1, 1, 0), 0b0110);    // xor
}

TEST(PriorityControllerTest, GrantsHighestPriorityUnmaskedRequest) {
  const Netlist nl = make_priority_controller("pc", 8, 4);
  EXPECT_NO_THROW(nl.validate());
  sim::Simulator sim(nl);
  // PI order: req0..req7, mask0..mask3 (2 channels per mask group).
  auto run = [&](std::uint32_t reqs, std::uint32_t masks) {
    std::vector<bool> pi = bits_of(reqs, 8);
    const std::vector<bool> mb = bits_of(masks, 4);
    pi.insert(pi.end(), mb.begin(), mb.end());
    // Outputs: enc0..enc2, valid, parity.
    const std::vector<bool> out = sim.outputs(pi);
    const int enc = static_cast<int>(value_of({out.begin(), out.begin() + 3}));
    const bool valid = out[3];
    return std::pair<int, bool>{enc, valid};
  };
  EXPECT_EQ(run(0b00000100, 0).first, 2);   // lowest set index wins
  EXPECT_TRUE(run(0b00000100, 0).second);
  EXPECT_EQ(run(0b10000000, 0).first, 7);
  EXPECT_FALSE(run(0, 0).second);           // nothing requested
  // Masking group 1 (channels 2-3) suppresses request 2; request 5 wins.
  EXPECT_EQ(run(0b00100100, 0b0010).first, 5);
}

TEST(EccTest, CorrectsNothingWhenSyndromeSilent) {
  const Netlist nl = make_ecc("ecc", 8, 4, false);
  EXPECT_NO_THROW(nl.validate());
  sim::Simulator sim(nl);
  // With data d, check bits equal to the data parity subsets, en = 1, the
  // syndrome is zero and outputs equal the data. Compute check bits by
  // simulating with en = 0 first (outputs = data when no full match...).
  // Simpler invariant: en = 0 forces outputs == data for any inputs.
  std::vector<bool> pi(nl.num_inputs(), false);
  pi[0] = pi[3] = pi[5] = true;  // arbitrary data
  pi[nl.num_inputs() - 1] = false;  // en = 0
  const std::vector<bool> out = sim.outputs(pi);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], pi[i]) << i;
}

TEST(EccTest, ExpandedXorVariantIsFunctionallyIdentical) {
  const Netlist plain = make_ecc("e1", 8, 4, false);
  const Netlist expanded = make_ecc("e2", 8, 4, true);
  EXPECT_GT(expanded.num_gates(), plain.num_gates());
  sim::Simulator sp(plain), se(expanded);
  std::mt19937_64 rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<bool> pi(plain.num_inputs());
    for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = (rng() & 1) != 0;
    EXPECT_EQ(sp.outputs(pi), se.outputs(pi)) << "trial " << trial;
  }
}

TEST(ParityTreeTest, ComputesParity) {
  const Netlist nl = make_parity_tree("p", 9);
  sim::Simulator sim(nl);
  std::mt19937_64 rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<bool> pi(9);
    bool expect = false;
    for (int i = 0; i < 9; ++i) {
      pi[i] = (rng() & 1) != 0;
      expect = expect != pi[i];
    }
    EXPECT_EQ(sim.outputs(pi)[0], expect);
  }
}

TEST(RandomDagTest, DeterministicForFixedSeed) {
  const RandomDagSpec spec{.n_inputs = 20, .n_outputs = 8, .n_gates = 200,
                           .seed = 99};
  const Netlist a = make_random_dag("r", spec);
  const Netlist b = make_random_dag("r", spec);
  ASSERT_EQ(a.num_gates(), b.num_gates());
  for (int i = 0; i < a.num_gates(); ++i) {
    EXPECT_EQ(a.gate(i).fn, b.gate(i).fn);
    EXPECT_EQ(a.gate(i).fanins, b.gate(i).fanins);
  }
}

TEST(RandomDagTest, MatchesSpecAndValidates) {
  const RandomDagSpec spec{.n_inputs = 33, .n_outputs = 25, .n_gates = 880,
                           .seed = 1908};
  const Netlist nl = make_random_dag("r", spec);
  EXPECT_EQ(nl.num_inputs(), 33);
  EXPECT_EQ(nl.num_gates(), 880);
  // Output count approximates the target (dangling-net policy).
  EXPECT_GT(nl.num_outputs(), 5);
  EXPECT_LT(nl.num_outputs(), 120);
  EXPECT_NO_THROW(nl.validate());
}

TEST(RandomDagTest, RejectsBadSpec) {
  EXPECT_THROW(make_random_dag("r", {.n_inputs = 1}), std::invalid_argument);
}

class Iscas85Sweep : public ::testing::TestWithParam<std::string_view> {};

TEST_P(Iscas85Sweep, BuildsValidatesAndMatchesName) {
  const Netlist nl = iscas85_like(std::string(GetParam()));
  EXPECT_EQ(nl.name(), GetParam());
  EXPECT_NO_THROW(nl.validate());
  EXPECT_GT(nl.num_gates(), 100);
  EXPECT_GT(nl.depth(), 5);
}

INSTANTIATE_TEST_SUITE_P(AllCircuits, Iscas85Sweep,
                         ::testing::ValuesIn(iscas85_names()),
                         [](const auto& suite_info) {
                           return std::string(suite_info.param);
                         });

TEST(Iscas85Test, UnknownNameThrows) {
  EXPECT_THROW(iscas85_like("c9999"), std::invalid_argument);
}

TEST(Iscas85Test, C6288IsTheMultiplier) {
  const Netlist nl = iscas85_like("c6288");
  EXPECT_EQ(nl.num_inputs(), 32);
  EXPECT_EQ(nl.num_outputs(), 32);
}

TEST(Iscas85Test, C1355ExpandsC499) {
  EXPECT_GT(iscas85_like("c1355").num_gates(), iscas85_like("c499").num_gates());
}

}  // namespace
}  // namespace nbtisim::netlist
