// Unit tests for the mode schedule and equivalent-time transform
// (src/nbti/schedule.*) — the paper's eqs. (17)-(19).

#include "nbti/schedule.h"

#include <gtest/gtest.h>

namespace nbtisim::nbti {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  RdParams p_;
  DeviceStress stress_{0.5, StandbyMode::Stressed, 1.0, 0.22};
};

TEST_F(ScheduleTest, FromRasSplitsPeriod) {
  const ModeSchedule s = ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  EXPECT_NEAR(s.t_active, 100.0, 1e-9);
  EXPECT_NEAR(s.t_standby, 900.0, 1e-9);
  EXPECT_NEAR(s.period(), 1000.0, 1e-9);
  EXPECT_EQ(s.temp_active, 400.0);
  EXPECT_EQ(s.temp_standby, 330.0);
}

TEST_F(ScheduleTest, FromRasRejectsBadRatios) {
  EXPECT_THROW(ModeSchedule::from_ras(0, 0, 1000.0, 400.0, 330.0),
               std::invalid_argument);
  EXPECT_THROW(ModeSchedule::from_ras(-1, 9, 1000.0, 400.0, 330.0),
               std::invalid_argument);
  EXPECT_THROW(ModeSchedule::from_ras(1, 9, 0.0, 400.0, 330.0),
               std::invalid_argument);
}

TEST_F(ScheduleTest, EqualTemperaturesGiveWallClockTimes) {
  const ModeSchedule s = ModeSchedule::from_ras(1, 1, 200.0, 400.0, 400.0);
  const EquivalentCycle eq = equivalent_cycle(p_, stress_, s);
  // active: 100 s at duty 0.5 -> 50 stress / 50 recovery; standby 100 s
  // stressed at the same temperature -> full 100 s of stress.
  EXPECT_NEAR(eq.stress_time, 150.0, 1e-9);
  EXPECT_NEAR(eq.recovery_time, 50.0, 1e-9);
  EXPECT_NEAR(eq.duty(), 0.75, 1e-12);
  EXPECT_NEAR(eq.period(), 200.0, 1e-9);
}

TEST_F(ScheduleTest, ColdStandbyShrinksEquivalentStressTime) {
  const ModeSchedule warm = ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 400.0);
  const ModeSchedule cold = ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  const double warm_stress = equivalent_cycle(p_, stress_, warm).stress_time;
  const double cold_stress = equivalent_cycle(p_, stress_, cold).stress_time;
  EXPECT_LT(cold_stress, warm_stress);
  // Exactly eq. (17): c*t_a + t_s * D_s/D_a.
  const double d_ratio = diffusion_ratio(p_, 330.0, 400.0);
  EXPECT_NEAR(cold_stress, 0.5 * 100.0 + 900.0 * d_ratio, 1e-9);
}

TEST_F(ScheduleTest, RelaxedStandbyBecomesRecoveryTime) {
  DeviceStress relaxed = stress_;
  relaxed.standby = StandbyMode::Relaxed;
  const ModeSchedule s = ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  const EquivalentCycle eq = equivalent_cycle(p_, relaxed, s);
  EXPECT_NEAR(eq.stress_time, 50.0, 1e-9);
  // Paper: relaxation is temperature-insensitive -> wall-clock standby time.
  EXPECT_NEAR(eq.recovery_time, 50.0 + 900.0, 1e-9);
}

TEST_F(ScheduleTest, RecoveryScalingFlagShrinksRecovery) {
  DeviceStress relaxed = stress_;
  relaxed.standby = StandbyMode::Relaxed;
  const ModeSchedule s = ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  const EquivalentCycle plain = equivalent_cycle(p_, relaxed, s, false);
  const EquivalentCycle scaled = equivalent_cycle(p_, relaxed, s, true);
  EXPECT_LT(scaled.recovery_time, plain.recovery_time);
  EXPECT_DOUBLE_EQ(scaled.stress_time, plain.stress_time);
}

TEST_F(ScheduleTest, ZeroActiveStressProbMeansNoActiveStress) {
  DeviceStress never{0.0, StandbyMode::Relaxed, 1.0, 0.22};
  const ModeSchedule s = ModeSchedule::from_ras(1, 1, 100.0, 400.0, 330.0);
  const EquivalentCycle eq = equivalent_cycle(p_, never, s);
  EXPECT_EQ(eq.stress_time, 0.0);
  EXPECT_NEAR(eq.recovery_time, 100.0, 1e-9);
}

TEST_F(ScheduleTest, RejectsBadStressProbability) {
  DeviceStress bad = stress_;
  bad.active_stress_prob = 1.5;
  const ModeSchedule s = ModeSchedule::from_ras(1, 1, 100.0, 400.0, 330.0);
  EXPECT_THROW(equivalent_cycle(p_, bad, s), std::invalid_argument);
}

// Sweep: equivalent duty is monotone in the standby temperature when the
// device stays stressed in standby.
class EqDutyTempSweep : public ::testing::TestWithParam<double> {};

TEST_P(EqDutyTempSweep, DutyGrowsWithStandbyTemperature) {
  const RdParams p;
  const DeviceStress st{0.5, StandbyMode::Stressed, 1.0, 0.22};
  const double t1 = GetParam();
  const double t2 = t1 + 20.0;
  const ModeSchedule s1 = ModeSchedule::from_ras(1, 5, 600.0, 400.0, t1);
  const ModeSchedule s2 = ModeSchedule::from_ras(1, 5, 600.0, 400.0, t2);
  EXPECT_LT(equivalent_cycle(p, st, s1).duty(),
            equivalent_cycle(p, st, s2).duty());
}

INSTANTIATE_TEST_SUITE_P(StandbyTemps, EqDutyTempSweep,
                         ::testing::Values(310.0, 330.0, 350.0, 370.0));

}  // namespace
}  // namespace nbtisim::nbti
