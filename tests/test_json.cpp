// Unit tests for the dependency-free JSON reader/writer (src/common/json.*).

#include "common/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>

namespace nbtisim::common::json {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": "x"})");
  ASSERT_TRUE(v.is_object());
  const Array& a = v.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].as_number(), 2.0);
  EXPECT_TRUE(a[2].at("b").as_bool());
  EXPECT_EQ(v.at("c").as_string(), "x");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const Object& o = v.as_object();
  ASSERT_EQ(o.size(), 3u);
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
  EXPECT_EQ(dump(v), R"({"z":1,"a":2,"m":3})");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse("tru"), std::runtime_error);
  EXPECT_THROW(parse("1 2"), std::runtime_error);        // trailing garbage
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse(R"({"a":1,"a":2})"), std::runtime_error);  // dup key
}

TEST(JsonTest, StringEscapesRoundTrip) {
  const std::string text = R"("line\nbreak \"quoted\" tab\t back\\slash")";
  const Value v = parse(text);
  EXPECT_EQ(v.as_string(), "line\nbreak \"quoted\" tab\t back\\slash");
  EXPECT_EQ(parse(dump(v)).as_string(), v.as_string());
}

TEST(JsonTest, UnicodeEscapes) {
  EXPECT_EQ(parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(parse(R"("\u00e9")").as_string(), "\xc3\xa9");      // e-acute
  EXPECT_EQ(parse(R"("\u20ac")").as_string(), "\xe2\x82\xac");  // euro sign
  EXPECT_EQ(parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");  // U+1F600 via surrogate pair
  EXPECT_THROW(parse(R"("\ud83d")"), std::runtime_error);  // lone surrogate
  EXPECT_THROW(parse(R"("\u12g4")"), std::runtime_error);  // bad hex digit
}

TEST(JsonTest, NumberRoundTripIsExact) {
  for (double d : {0.1, 1.0 / 3.0, 6.02214076e23, -1.5e-300, 12345.678,
                   9007199254740993.0, 1e-12}) {
    const std::string text = dump(Value(d));
    EXPECT_EQ(parse(text).as_number(), d) << text;
  }
}

TEST(JsonTest, IntegralNumbersPrintWithoutFraction) {
  EXPECT_EQ(dump(Value(42.0)), "42");
  EXPECT_EQ(dump(Value(-7.0)), "-7");
  EXPECT_EQ(dump(Value(0.5)), "0.5");
}

// The documented non-finite policy (json.h file comment): Infinity /
// -Infinity / NaN literals out, the same three literals accepted back in.
TEST(JsonTest, SpecialFloatsRoundTrip) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(dump(Value(inf)), "Infinity");
  EXPECT_EQ(dump(Value(-inf)), "-Infinity");
  EXPECT_EQ(dump(Value(std::nan(""))), "NaN");

  EXPECT_DOUBLE_EQ(parse("Infinity").as_number(), inf);
  EXPECT_DOUBLE_EQ(parse("-Infinity").as_number(), -inf);
  EXPECT_TRUE(std::isnan(parse("NaN").as_number()));

  const Value v = parse(R"({"hi": Infinity, "lo": -Infinity, "bad": NaN})");
  EXPECT_EQ(dump(v), R"({"hi":Infinity,"lo":-Infinity,"bad":NaN})");
  EXPECT_TRUE(std::isnan(parse(dump(v)).at("bad").as_number()));
}

TEST(JsonTest, RejectsLowercaseNonFiniteLiterals) {
  EXPECT_THROW(parse("nan"), std::runtime_error);
  EXPECT_THROW(parse("infinity"), std::runtime_error);
}

// The strict-interchange policy: NonFinite::Null encodes every non-finite
// number as null, producing RFC 8259 output for external consumers (the
// query/serve layer). Finite numbers are untouched.
TEST(JsonTest, NonFiniteNullPolicyEmitsStrictJson) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(dump(Value(inf), -1, NonFinite::Null), "null");
  EXPECT_EQ(dump(Value(-inf), -1, NonFinite::Null), "null");
  EXPECT_EQ(dump(Value(std::nan("")), -1, NonFinite::Null), "null");
  EXPECT_EQ(dump(Value(2.5), -1, NonFinite::Null), "2.5");

  EXPECT_EQ(format_number(inf, NonFinite::Null), "null");
  EXPECT_EQ(format_number(std::nan(""), NonFinite::Null), "null");
  EXPECT_EQ(format_number(inf), "Infinity");  // default stays the literal

  // Nested occurrences are replaced wherever they sit, and the result
  // reparses with plain nulls in their place.
  const Value v = parse(R"({"a":[1,NaN,{"b":-Infinity}],"c":Infinity})");
  const std::string strict = dump(v, -1, NonFinite::Null);
  EXPECT_EQ(strict, R"({"a":[1,null,{"b":null}],"c":null})");
  const Value back = parse(strict);
  EXPECT_TRUE(back.at("c").is_null());

  // Pretty-printing composes with the policy.
  EXPECT_EQ(dump(parse("[NaN]"), 1, NonFinite::Null), "[\n null\n]");
}

TEST(JsonTest, ParseDumpParseIsIdentity) {
  const std::string text =
      R"({"name":"x","vals":[1,2.5,null,true],"nested":{"k":"v"},"empty":[],"eo":{}})";
  const Value v = parse(text);
  EXPECT_EQ(dump(v), text);
  EXPECT_EQ(parse(dump(v)), v);
}

TEST(JsonTest, PrettyPrintIsReparseable) {
  const Value v = parse(R"({"a":[1,2],"b":{"c":true}})");
  const std::string pretty = dump(v, 2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), v);
}

TEST(JsonTest, CheckedAccessorsThrowOnKindMismatch) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_string(), std::runtime_error);
  EXPECT_THROW(v.at("k"), std::runtime_error);
  EXPECT_EQ(v.find("k"), nullptr);
  const Value obj = parse(R"({"a":1})");
  EXPECT_THROW(obj.at("missing"), std::runtime_error);
  EXPECT_DOUBLE_EQ(obj.number_or("a", 7.0), 1.0);
  EXPECT_DOUBLE_EQ(obj.number_or("b", 7.0), 7.0);
  EXPECT_THROW(obj.at("a").as_string(), std::runtime_error);
}

TEST(JsonTest, SetInsertsAndReplaces) {
  Value v;  // null -> becomes an object on first set
  v.set("a", 1.0);
  v.set("b", "x");
  v.set("a", 2.0);
  EXPECT_EQ(dump(v), R"({"a":2,"b":"x"})");
}

TEST(JsonTest, LoadFileReportsPathOnErrors) {
  EXPECT_THROW(load_file("/nonexistent/x.json"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/nbtisim_json_test.json";
  {
    std::ofstream f(path);
    f << R"({"ok": [1, 2, 3]})";
  }
  EXPECT_EQ(load_file(path).at("ok").as_array().size(), 3u);
  {
    std::ofstream f(path);
    f << "{broken";
  }
  try {
    load_file(path);
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

}  // namespace
}  // namespace nbtisim::common::json
