// Unit tests for the rise/fall, slew-aware STA (src/sta/slew_sta.* and
// Library::cell_arc).

#include "sta/slew_sta.h"

#include <gtest/gtest.h>

#include "aging/aging.h"
#include "netlist/generators.h"
#include "tech/units.h"

namespace nbtisim::sta {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using tech::GateFn;
using Edge = tech::Library::Edge;

class CellArcTest : public ::testing::Test {
 protected:
  tech::Library lib_;
  static constexpr double kLoad = 2e-15;
  static constexpr double kSlew = 2e-11;
  static constexpr double kT = 400.0;
};

TEST_F(CellArcTest, DelayGrowsWithLoadAndSlew) {
  const tech::CellId inv = lib_.find("INV");
  const auto base = lib_.cell_arc(inv, Edge::Rise, kLoad, kSlew, kT);
  const auto heavy = lib_.cell_arc(inv, Edge::Rise, 5 * kLoad, kSlew, kT);
  const auto slow_in = lib_.cell_arc(inv, Edge::Rise, kLoad, 5 * kSlew, kT);
  EXPECT_GT(heavy.delay, base.delay);
  EXPECT_GT(heavy.out_slew, base.out_slew);
  EXPECT_GT(slow_in.delay, base.delay);
}

TEST_F(CellArcTest, RiseSlowerThanFallForInverter) {
  // PMOS drive is weaker at equal width ratio 2:1 (mobility ~2.2x).
  const tech::CellId inv = lib_.find("INV");
  const auto rise = lib_.cell_arc(inv, Edge::Rise, kLoad, kSlew, kT);
  const auto fall = lib_.cell_arc(inv, Edge::Fall, kLoad, kSlew, kT);
  EXPECT_GT(rise.delay, fall.delay * 0.95);
}

TEST_F(CellArcTest, NbtiSlowsOnlyPullupArcs) {
  const tech::CellId inv = lib_.find("INV");
  const auto rise0 = lib_.cell_arc(inv, Edge::Rise, kLoad, kSlew, kT, 0.0);
  const auto rise1 = lib_.cell_arc(inv, Edge::Rise, kLoad, kSlew, kT, 0.047);
  const auto fall0 = lib_.cell_arc(inv, Edge::Fall, kLoad, kSlew, kT, 0.0);
  const auto fall1 = lib_.cell_arc(inv, Edge::Fall, kLoad, kSlew, kT, 0.047);
  EXPECT_GT(rise1.delay, rise0.delay);
  EXPECT_DOUBLE_EQ(fall1.delay, fall0.delay);  // pull-down untouched
}

TEST_F(CellArcTest, MultiStageCellAlternatesEdges) {
  // BUF output rise goes through INV fall then INV rise: dVth slows it,
  // but BUF output fall also contains one internal rise -> also slowed.
  const tech::CellId buf = lib_.find("BUF");
  const auto rise0 = lib_.cell_arc(buf, Edge::Rise, kLoad, kSlew, kT, 0.0);
  const auto rise1 = lib_.cell_arc(buf, Edge::Rise, kLoad, kSlew, kT, 0.047);
  const auto fall0 = lib_.cell_arc(buf, Edge::Fall, kLoad, kSlew, kT, 0.0);
  const auto fall1 = lib_.cell_arc(buf, Edge::Fall, kLoad, kSlew, kT, 0.047);
  EXPECT_GT(rise1.delay, rise0.delay);
  EXPECT_GT(fall1.delay, fall0.delay);
  // The rise arc ends on the degraded pull-up of the larger second stage;
  // both arcs age, the composite cell by less than 2x the single-arc shift.
  EXPECT_GT(rise1.delay - rise0.delay, 0.0);
}

TEST_F(CellArcTest, VthOffsetSlowsBothEdges) {
  const tech::CellId nand2 = lib_.find("NAND2");
  const auto r0 = lib_.cell_arc(nand2, Edge::Rise, kLoad, kSlew, kT, 0, 0);
  const auto r1 = lib_.cell_arc(nand2, Edge::Rise, kLoad, kSlew, kT, 0, 0.1);
  const auto f0 = lib_.cell_arc(nand2, Edge::Fall, kLoad, kSlew, kT, 0, 0);
  const auto f1 = lib_.cell_arc(nand2, Edge::Fall, kLoad, kSlew, kT, 0, 0.1);
  EXPECT_GT(r1.delay, r0.delay);
  EXPECT_GT(f1.delay, f0.delay);
}

TEST_F(CellArcTest, RejectsBadInputs) {
  const tech::CellId inv = lib_.find("INV");
  EXPECT_THROW(lib_.cell_arc(inv, Edge::Rise, -1e-15, kSlew, kT),
               std::invalid_argument);
  EXPECT_THROW(lib_.cell_arc(inv, Edge::Rise, kLoad, -1e-12, kT),
               std::invalid_argument);
}

TEST_F(CellArcTest, UnatenessClassification) {
  using U = tech::Library::Unateness;
  EXPECT_EQ(lib_.unateness(lib_.find("INV")), U::Negative);
  EXPECT_EQ(lib_.unateness(lib_.find("NAND3")), U::Negative);
  EXPECT_EQ(lib_.unateness(lib_.find("NOR2")), U::Negative);
  EXPECT_EQ(lib_.unateness(lib_.find("AND2")), U::Positive);
  EXPECT_EQ(lib_.unateness(lib_.find("BUF")), U::Positive);
  EXPECT_EQ(lib_.unateness(lib_.find("XOR2")), U::Binate);
}

class SlewStaTest : public ::testing::Test {
 protected:
  tech::Library lib_;
};

TEST_F(SlewStaTest, InverterChainAlternatesEdges) {
  // In a 4-inverter chain, the output rise of stage k is caused by the
  // rise/fall alternation back to the input; arrivals must be strictly
  // increasing along the chain for both edges.
  Netlist nl("chain");
  NodeId prev = nl.add_input("a");
  std::vector<NodeId> nodes{prev};
  for (int i = 0; i < 4; ++i) {
    prev = nl.add_gate(GateFn::Not, {prev}, "n" + std::to_string(i));
    nodes.push_back(prev);
  }
  nl.mark_output(prev);
  const SlewStaEngine sta(nl, lib_);
  const SlewTimingResult r = sta.analyze(400.0);
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_GT(r.arrival_rise[nodes[i]], r.arrival_rise[nodes[i - 1]]);
    EXPECT_GT(r.arrival_fall[nodes[i]], r.arrival_fall[nodes[i - 1]]);
  }
}

TEST_F(SlewStaTest, MaxDelayComparableToScalarEngine) {
  const Netlist nl = netlist::iscas85_like("c880");
  const SlewStaEngine slew(nl, lib_);
  const StaEngine scalar(nl, lib_);
  const double d_slew = slew.analyze(400.0).max_delay;
  const double d_scalar = scalar.analyze_fresh(400.0).max_delay;
  // Same physics, different formulation: within ~2x of each other.
  EXPECT_GT(d_slew / d_scalar, 0.5);
  EXPECT_LT(d_slew / d_scalar, 2.0);
}

TEST_F(SlewStaTest, AgedRiseArcsOnly) {
  const Netlist nl = netlist::iscas85_like("c432");
  const SlewStaEngine sta(nl, lib_);
  const std::vector<double> dvth(nl.num_gates(), 0.047);
  const SlewTimingResult fresh = sta.analyze(400.0);
  const SlewTimingResult aged = sta.analyze(400.0, dvth);
  EXPECT_GT(aged.max_delay, fresh.max_delay);
  // Rise arrivals shift; fall arrivals of a single-stage-only path would
  // not — but every long path mixes edges, so both grow overall. Check the
  // asymmetry on a single inverter's output instead.
  Netlist one("one");
  const NodeId a = one.add_input("a");
  const NodeId y = one.add_gate(GateFn::Not, {a}, "y");
  one.mark_output(y);
  const SlewStaEngine s1(one, lib_);
  const std::vector<double> dv{0.047};
  const SlewTimingResult f1 = s1.analyze(400.0);
  const SlewTimingResult a1 = s1.analyze(400.0, dv);
  EXPECT_GT(a1.arrival_rise[y], f1.arrival_rise[y]);
  EXPECT_DOUBLE_EQ(a1.arrival_fall[y], f1.arrival_fall[y]);
}

TEST_F(SlewStaTest, SlewsArePositiveEverywhere) {
  const Netlist nl = netlist::iscas85_like("c499");
  const SlewStaEngine sta(nl, lib_);
  const SlewTimingResult r = sta.analyze(400.0);
  for (int n = 0; n < nl.num_nodes(); ++n) {
    EXPECT_GT(r.slew_rise[n], 0.0);
    EXPECT_GT(r.slew_fall[n], 0.0);
  }
}

TEST_F(SlewStaTest, CriticalOutputIsAPrimaryOutput) {
  const Netlist nl = netlist::iscas85_like("c432");
  const SlewStaEngine sta(nl, lib_);
  const SlewTimingResult r = sta.analyze(400.0);
  ASSERT_GE(r.critical_output, 0);
  bool is_po = false;
  for (NodeId po : nl.outputs()) is_po = is_po || po == r.critical_output;
  EXPECT_TRUE(is_po);
}

TEST_F(SlewStaTest, RejectsBadArguments) {
  const Netlist nl = netlist::make_parity_tree("p", 4);
  EXPECT_THROW(SlewStaEngine(nl, lib_, 0.0), std::invalid_argument);
  const SlewStaEngine sta(nl, lib_);
  EXPECT_THROW(sta.analyze(400.0, std::vector<double>(2)),
               std::invalid_argument);
}

TEST_F(SlewStaTest, SlewAwareAgingHalvesThePaperEstimate) {
  // The headline physics check: rise-only aging is roughly half the
  // both-edges Taylor estimate.
  const Netlist nl = netlist::iscas85_like("c432");
  aging::AgingConditions cond;
  cond.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 400.0);
  cond.sp_vectors = 512;
  const aging::AgingAnalyzer an(nl, lib_, cond);
  const double paper =
      an.analyze(aging::StandbyPolicy::all_stressed()).percent();
  const double slew_aware =
      an.analyze_slew_aware(aging::StandbyPolicy::all_stressed()).percent();
  EXPECT_GT(slew_aware, 0.2 * paper);
  EXPECT_LT(slew_aware, 0.9 * paper);
}

TEST_F(SlewStaTest, SlewAwarePolicyOrderingHolds) {
  const Netlist nl = netlist::iscas85_like("c432");
  aging::AgingConditions cond;
  cond.sp_vectors = 512;
  const aging::AgingAnalyzer an(nl, lib_, cond);
  EXPECT_GT(an.analyze_slew_aware(aging::StandbyPolicy::all_stressed()).percent(),
            an.analyze_slew_aware(aging::StandbyPolicy::all_relaxed()).percent());
}

}  // namespace
}  // namespace nbtisim::sta
