// Unit tests for static timing analysis (src/sta/*).

#include "sta/sta.h"

#include <gtest/gtest.h>

#include <random>

#include "netlist/generators.h"
#include "tech/units.h"

namespace nbtisim::sta {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using tech::GateFn;

// Diamond: a -> x, y -> z with an extra inverter on one branch.
Netlist diamond() {
  Netlist nl("diamond");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId x = nl.add_gate(GateFn::Nand, {a, b}, "x");
  const NodeId y = nl.add_gate(GateFn::Not, {x}, "y");
  const NodeId z = nl.add_gate(GateFn::And, {x, y}, "z");
  nl.mark_output(z);
  return nl;
}

class StaTest : public ::testing::Test {
 protected:
  tech::Library lib_;
};

TEST_F(StaTest, ArrivalTimesWithUnitDelays) {
  const Netlist nl = diamond();
  const StaEngine sta(nl, lib_);
  const std::vector<double> unit(nl.num_gates(), 1.0);
  const TimingResult r = sta.analyze(unit);
  EXPECT_DOUBLE_EQ(r.arrival[nl.find_node("a")], 0.0);
  EXPECT_DOUBLE_EQ(r.arrival[nl.find_node("x")], 1.0);
  EXPECT_DOUBLE_EQ(r.arrival[nl.find_node("y")], 2.0);
  EXPECT_DOUBLE_EQ(r.arrival[nl.find_node("z")], 3.0);
  EXPECT_DOUBLE_EQ(r.max_delay, 3.0);
}

TEST_F(StaTest, CriticalPathRunsInputToOutput) {
  const Netlist nl = diamond();
  const StaEngine sta(nl, lib_);
  const TimingResult r = sta.analyze(std::vector<double>(nl.num_gates(), 1.0));
  ASSERT_GE(r.critical_path.size(), 2u);
  EXPECT_TRUE(nl.is_input(r.critical_path.front()));
  EXPECT_EQ(r.critical_path.back(), nl.find_node("z"));
  // Path a -> x -> y -> z.
  EXPECT_EQ(r.critical_path.size(), 4u);
}

TEST_F(StaTest, SlacksAreNonNegativeAndZeroOnCriticalPath) {
  const Netlist nl = netlist::make_alu("alu", 8);
  const StaEngine sta(nl, lib_);
  const std::vector<double> delays = sta.gate_delays(400.0);
  const TimingResult r = sta.analyze(delays);
  const std::vector<double> slack = sta.slacks(r, delays);
  for (double s : slack) EXPECT_GE(s, -1e-15);
  for (NodeId n : r.critical_path) {
    EXPECT_NEAR(slack[n], 0.0, 1e-15) << nl.node_name(n);
  }
}

TEST_F(StaTest, DanglingGateReportsUnconstrainedSlack) {
  // A gate with no path to any primary output used to get slack 0.0 —
  // indistinguishable from critical. It must report the sentinel instead.
  Netlist nl("dangle");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId x = nl.add_gate(GateFn::Nand, {a, b}, "x");
  const NodeId dead = nl.add_gate(GateFn::Not, {x}, "dead");
  const NodeId y = nl.add_gate(GateFn::Not, {x}, "y");
  const NodeId z = nl.add_gate(GateFn::And, {x, y}, "z");
  nl.mark_output(z);

  const StaEngine sta(nl, lib_);
  const std::vector<double> unit(nl.num_gates(), 1.0);
  const TimingResult r = sta.analyze(unit);
  const std::vector<double> slack = sta.slacks(r, unit);

  EXPECT_EQ(slack[dead], kUnconstrainedSlack);
  // Constrained nets keep exact finite slacks: the critical path stays at
  // zero and never aliases with the sentinel.
  EXPECT_LT(slack[x], kUnconstrainedSlack);
  EXPECT_NEAR(slack[x], 0.0, 1e-15);
  EXPECT_NEAR(slack[y], 0.0, 1e-15);
  EXPECT_NEAR(slack[z], 0.0, 1e-15);
}

TEST_F(StaTest, ZeroFaninGateRejectedAtConstruction) {
  // analyze() reads fanins[0]-style worst-arrival logic; fanin-less gates
  // are rejected up front so the engines never see one.
  Netlist nl("zf");
  nl.add_input("a");
  EXPECT_THROW(nl.add_gate(GateFn::And, {}, "g"), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateFn::Not, {}, "g"), std::invalid_argument);
  EXPECT_THROW(nl.add_gate(GateFn::Xor, {}, "g"), std::invalid_argument);
}

TEST_F(StaTest, DelaySizeMismatchRejected) {
  const Netlist nl = diamond();
  const StaEngine sta(nl, lib_);
  EXPECT_THROW(sta.analyze(std::vector<double>(2, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(sta.gate_delays(400.0, std::vector<double>(2, 0.0)),
               std::invalid_argument);
}

TEST_F(StaTest, LoadsGrowWithFanout) {
  Netlist nl("fan");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId x = nl.add_gate(GateFn::And, {a, b}, "x");   // fanout 3
  const NodeId y = nl.add_gate(GateFn::Or, {a, b}, "y");    // fanout 1
  const NodeId o1 = nl.add_gate(GateFn::Not, {x}, "o1");
  const NodeId o2 = nl.add_gate(GateFn::Not, {x}, "o2");
  const NodeId o3 = nl.add_gate(GateFn::Nand, {x, y}, "o3");
  nl.mark_output(o1);
  nl.mark_output(o2);
  nl.mark_output(o3);
  const StaEngine sta(nl, lib_);
  EXPECT_GT(sta.gate_load(nl.driver_gate(x)), sta.gate_load(nl.driver_gate(y)));
}

TEST_F(StaTest, AgedDelaysAreSlower) {
  const Netlist nl = netlist::iscas85_like("c432");
  const StaEngine sta(nl, lib_);
  const std::vector<double> fresh = sta.gate_delays(400.0);
  const std::vector<double> dvth(nl.num_gates(), 0.047);
  const std::vector<double> aged = sta.gate_delays(400.0, dvth);
  for (int g = 0; g < nl.num_gates(); ++g) {
    EXPECT_GT(aged[g], fresh[g]) << "gate " << g;
  }
  EXPECT_GT(sta.analyze(aged).max_delay, sta.analyze(fresh).max_delay);
}

TEST_F(StaTest, MaxDelayIsMonotoneInAnySingleGateDelay) {
  const Netlist nl = diamond();
  const StaEngine sta(nl, lib_);
  std::vector<double> delays(nl.num_gates(), 1.0);
  const double base = sta.analyze(delays).max_delay;
  for (int g = 0; g < nl.num_gates(); ++g) {
    std::vector<double> bumped = delays;
    bumped[g] += 0.5;
    EXPECT_GE(sta.analyze(bumped).max_delay, base) << "gate " << g;
  }
}

TEST_F(StaTest, C880FreshDelayMatchesCalibration) {
  // DESIGN.md anchor: the c880-class ALU lands near the paper's ~3.55 ns.
  const Netlist nl = netlist::iscas85_like("c880");
  const StaEngine sta(nl, lib_);
  const double d = sta.analyze_fresh(400.0).max_delay;
  EXPECT_GT(to_ns(d), 2.5);
  EXPECT_LT(to_ns(d), 4.5);
}

TEST_F(StaTest, HotterCircuitIsSlowerUnderThisModel) {
  // Mobility loss dominates the Vth drop at these voltages.
  const Netlist nl = netlist::iscas85_like("c432");
  const StaEngine sta(nl, lib_);
  EXPECT_GT(sta.analyze_fresh(400.0).max_delay,
            sta.analyze_fresh(330.0).max_delay);
}

// Arrival at every node must be >= each fanin arrival plus its gate delay
// (DAG longest-path correctness on a random circuit).
TEST_F(StaTest, ArrivalRespectsAllEdgesOnRandomDag) {
  const Netlist nl = netlist::make_random_dag(
      "r", {.n_inputs = 24, .n_outputs = 12, .n_gates = 300, .seed = 5});
  const StaEngine sta(nl, lib_);
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> uni(0.5, 2.0);
  std::vector<double> delays(nl.num_gates());
  for (double& d : delays) d = uni(rng);
  const TimingResult r = sta.analyze(delays);
  for (int g = 0; g < nl.num_gates(); ++g) {
    const netlist::Gate& gate = nl.gate(g);
    double worst = 0.0;
    for (NodeId in : gate.fanins) worst = std::max(worst, r.arrival[in]);
    EXPECT_NEAR(r.arrival[gate.output], worst + delays[g], 1e-12);
  }
}

class StaCircuitSweep : public ::testing::TestWithParam<std::string_view> {};

TEST_P(StaCircuitSweep, FreshAnalysisProducesSaneNumbers) {
  const tech::Library lib;
  const Netlist nl = netlist::iscas85_like(std::string(GetParam()));
  const StaEngine sta(nl, lib);
  const TimingResult r = sta.analyze_fresh(400.0);
  EXPECT_GT(to_ns(r.max_delay), 0.1) << GetParam();
  EXPECT_LT(to_ns(r.max_delay), 100.0) << GetParam();
  ASSERT_FALSE(r.critical_path.empty());
  EXPECT_TRUE(nl.is_input(r.critical_path.front()));
}

INSTANTIATE_TEST_SUITE_P(Circuits, StaCircuitSweep,
                         ::testing::Values("c432", "c499", "c880", "c1355",
                                           "c1908", "c6288"),
                         [](const auto& suite_info) {
                           return std::string(suite_info.param);
                         });

}  // namespace
}  // namespace nbtisim::sta
