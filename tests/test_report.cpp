// Unit tests for the report writers (src/report/*).

#include "report/report.h"

#include <gtest/gtest.h>

#include <fstream>

namespace nbtisim::report {
namespace {

TEST(ReportTest, CsvBasicTable) {
  Table t{{"a", "b"}, {}};
  t.add_row({"1", "2"});
  t.add_row({"x", "y"});
  EXPECT_EQ(to_csv(t), "a,b\n1,2\nx,y\n");
}

TEST(ReportTest, CsvEscapesSpecials) {
  Table t{{"name", "value"}, {}};
  t.add_row({"with,comma", "with\"quote"});
  EXPECT_EQ(to_csv(t), "name,value\n\"with,comma\",\"with\"\"quote\"\n");
}

TEST(ReportTest, CsvEscapesNewlinesInsideCells) {
  Table t{{"name", "note"}, {}};
  t.add_row({"multi\nline", "plain"});
  // RFC 4180: a cell containing a line break is quoted, break kept verbatim.
  EXPECT_EQ(to_csv(t), "name,note\n\"multi\nline\",plain\n");
}

TEST(ReportTest, CsvEmptyCellsStayUnquoted) {
  Table t{{"a", "b", "c"}, {}};
  t.add_row({"", "x", ""});
  t.add_row({"", "", ""});
  EXPECT_EQ(to_csv(t), "a,b,c\n,x,\n,,\n");
}

TEST(ReportTest, CsvQuoteOnlyCellDoubled) {
  Table t{{"v"}, {}};
  t.add_row({"\""});
  t.add_row({"\"\""});
  EXPECT_EQ(to_csv(t), "v\n\"\"\"\"\n\"\"\"\"\"\"\n");
}

TEST(ReportTest, CsvHeadersAreEscapedToo) {
  Table t{{"plain", "with,comma"}, {}};
  EXPECT_EQ(to_csv(t), "plain,\"with,comma\"\n");
}

TEST(ReportTest, AddRowWidthChecked) {
  Table t{{"a", "b"}, {}};
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(ReportTest, DoubleRowFormatting) {
  Table t{{"label", "v1", "v2"}, {}};
  const std::vector<double> vals{1.5, 2.25};
  t.add_row("row", vals, 3);
  ASSERT_EQ(t.rows.size(), 1u);
  EXPECT_EQ(t.rows[0][0], "row");
  EXPECT_EQ(t.rows[0][1], "1.5");
  EXPECT_EQ(t.rows[0][2], "2.25");
}

TEST(ReportTest, MarkdownShape) {
  Table t{{"h1", "h2"}, {}};
  t.add_row({"a", "b"});
  const std::string md = to_markdown(t);
  EXPECT_NE(md.find("| h1 | h2 |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
}

TEST(ReportTest, SeriesCsv) {
  const std::vector<std::pair<double, double>> series{{1.0, 2.0}, {3.0, 4.0}};
  const std::string csv = series_csv(series, "t", "y");
  EXPECT_EQ(csv, "t,y\n1,2\n3,4\n");
}

TEST(ReportTest, WriteFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/nbtisim_report_test.csv";
  write_file(path, "a,b\n1,2\n");
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
}

TEST(ReportTest, WriteFileFailureThrows) {
  EXPECT_THROW(write_file("/nonexistent-dir/x.csv", "data"),
               std::runtime_error);
}


}  // namespace
}  // namespace nbtisim::report

#include "report/derate.h"

#include "netlist/generators.h"

namespace nbtisim::report {
namespace {

class DerateTest : public ::testing::Test {
 protected:
  DerateTest() : c432_(netlist::iscas85_like("c432")) {
    cond_.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 400.0);
    cond_.sp_vectors = 512;
    analyzer_.emplace(c432_, lib_, cond_);
  }

  tech::Library lib_;
  netlist::Netlist c432_;
  aging::AgingConditions cond_;
  std::optional<aging::AgingAnalyzer> analyzer_;
};

TEST_F(DerateTest, FactorsAreMonotoneInLifetime) {
  const DerateTable t = aging_derate_table(*analyzer_, {1.0, 3.0, 10.0});
  ASSERT_EQ(t.factors.size(), 3u);
  for (const std::vector<double>& col : t.factors) {
    ASSERT_EQ(col.size(), 3u);
    EXPECT_GT(col[0], 1.0);
    EXPECT_LT(col[0], col[1]);
    EXPECT_LT(col[1], col[2]);
  }
}

TEST_F(DerateTest, WorstCaseDominatesBestCase) {
  const DerateTable t = aging_derate_table(*analyzer_, {10.0});
  EXPECT_GT(t.factors[0][0], t.factors[2][0]);       // worst > best
  EXPECT_GE(t.factors[1][0], t.factors[2][0] - 1e-12); // vector >= best
  EXPECT_LE(t.factors[1][0], t.factors[0][0] + 1e-12); // vector <= worst
}

TEST_F(DerateTest, FactorsInPhysicalBand) {
  const DerateTable t = aging_derate_table(*analyzer_, {10.0});
  for (const std::vector<double>& col : t.factors) {
    EXPECT_GT(col[0], 1.01);
    EXPECT_LT(col[0], 1.15);
  }
}

TEST_F(DerateTest, RendersAsTable) {
  const DerateTable t = aging_derate_table(*analyzer_, {1.0, 10.0});
  const Table rendered = t.to_table();
  EXPECT_EQ(rendered.headers.size(), 4u);  // years + 3 policies
  EXPECT_EQ(rendered.rows.size(), 2u);
  const std::string csv = to_csv(rendered);
  EXPECT_NE(csv.find("worst_case"), std::string::npos);
}

TEST_F(DerateTest, SingleYearTableHasOneRow) {
  const DerateTable t = aging_derate_table(*analyzer_, {10.0});
  EXPECT_EQ(t.years, std::vector<double>{10.0});
  ASSERT_EQ(t.factors.size(), 3u);
  for (const std::vector<double>& col : t.factors) {
    ASSERT_EQ(col.size(), 1u);
    EXPECT_GT(col[0], 1.0);
  }
  const Table rendered = t.to_table();
  EXPECT_EQ(rendered.headers.size(), 4u);
  ASSERT_EQ(rendered.rows.size(), 1u);
  EXPECT_EQ(rendered.rows[0][0], "10");
}

TEST_F(DerateTest, UnsortedAndDuplicateYearsKeepCallerOrder) {
  // The year list is a caller-facing axis, not a set: order is preserved,
  // duplicates are evaluated (to identical factors), nothing is sorted.
  const DerateTable t =
      aging_derate_table(*analyzer_, {7.0, 1.0, 3.0, 3.0, 10.0});
  EXPECT_EQ(t.years, (std::vector<double>{7.0, 1.0, 3.0, 3.0, 10.0}));
  for (const std::vector<double>& col : t.factors) {
    ASSERT_EQ(col.size(), 5u);
    EXPECT_EQ(col[2], col[3]);   // duplicate years: identical cells
    EXPECT_LT(col[1], col[2]);   // 1y < 3y
    EXPECT_LT(col[3], col[0]);   // 3y < 7y
    EXPECT_LT(col[0], col[4]);   // 7y < 10y
  }
}

TEST(DerateTableTest, ToTableAlignsHeadersAndCells) {
  // Struct-level rendering check: headers follow policy order, each row is
  // one year, and cell (row y, column p) must be factors[p][y] — this is
  // what catches an accidental [y][p] transposition.
  DerateTable d;
  d.years = {1.0, 2.0};
  d.policy_names = {"p", "q"};
  d.factors = {{1.5, 2.5}, {3.5, 4.5}};  // [policy][year]
  const Table t = d.to_table();
  ASSERT_EQ(t.headers, (std::vector<std::string>{"years", "p", "q"}));
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0], (std::vector<std::string>{"1", "1.5", "3.5"}));
  EXPECT_EQ(t.rows[1], (std::vector<std::string>{"2", "2.5", "4.5"}));
}

TEST_F(DerateTest, GoldenTenYearIscasRow) {
  // The 10-year c432 derate row under the fixture's conditions, pinned
  // against current output.  A tight tolerance (not exact equality) keeps
  // the pin robust to sanitizer/optimization build flags while still
  // flagging any real modeling change.
  const DerateTable t = aging_derate_table(*analyzer_, {10.0});
  EXPECT_NEAR(t.factors[0][0], 1.0814776701030913, 1e-9);  // worst_case
  EXPECT_NEAR(t.factors[1][0], 1.0783156343396023, 1e-9);  // inputs_all_zero
  EXPECT_NEAR(t.factors[2][0], 1.0391448438934840, 1e-9);  // best_case
}

TEST_F(DerateTest, RejectsBadLifetimes) {
  EXPECT_THROW(aging_derate_table(*analyzer_, {}), std::invalid_argument);
  EXPECT_THROW(aging_derate_table(*analyzer_, {1.0, -2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nbtisim::report

