// Unit tests for IVC co-optimization and internal-node-control analysis
// (src/opt/ivc.*).

#include "opt/ivc.h"

#include <gtest/gtest.h>

#include "netlist/generators.h"

namespace nbtisim::opt {
namespace {

class IvcTest : public ::testing::Test {
 protected:
  tech::Library lib_;
  netlist::Netlist c432_ = netlist::iscas85_like("c432");

  aging::AgingConditions cond(double t_standby) const {
    aging::AgingConditions c;
    c.schedule = nbti::ModeSchedule::from_ras(1, 5, 600.0, 400.0, t_standby);
    c.sp_vectors = 512;
    return c;
  }
};

TEST_F(IvcTest, ProducesConsistentResult) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  const leakage::LeakageAnalyzer leak(c432_, lib_, 330.0);
  const IvcResult r = evaluate_ivc(an, leak, {.population = 48, .max_rounds = 12});
  ASSERT_FALSE(r.candidates.empty());
  // Chosen member achieves the set's minimum degradation.
  for (const IvcCandidate& c : r.candidates) {
    EXPECT_GE(c.degradation_percent, r.best().degradation_percent - 1e-12);
  }
  // Candidate degradations lie between the bounding policies.
  for (const IvcCandidate& c : r.candidates) {
    EXPECT_GE(c.degradation_percent, r.best_case_percent - 1e-9);
    EXPECT_LE(c.degradation_percent, r.worst_case_percent + 1e-9);
  }
}

TEST_F(IvcTest, MlvBeatsWorstCaseDegradation) {
  // Paper Section 4.3.2: "MLVs not only reduce the leakage of the circuit,
  // but also show lower temporal degradation compared to the worst case".
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  const leakage::LeakageAnalyzer leak(c432_, lib_, 330.0);
  const IvcResult r = evaluate_ivc(an, leak, {.population = 48, .max_rounds = 12});
  EXPECT_LT(r.best().degradation_percent, r.worst_case_percent);
}

TEST_F(IvcTest, MlvSpreadIsSmallAtColdStandby) {
  // Paper Table 3: the "MLV diff" column is small because T_standby is low.
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  const leakage::LeakageAnalyzer leak(c432_, lib_, 330.0);
  const IvcResult r = evaluate_ivc(an, leak, {.population = 48, .max_rounds = 12});
  EXPECT_LT(r.mlv_spread_percent(), 1.0);  // percentage points
}

TEST_F(IvcTest, SpreadGrowsWithHotterStandby) {
  const leakage::LeakageAnalyzer leak(c432_, lib_, 330.0);
  const MlvSearchParams mlv{.population = 48, .max_rounds = 12};
  const aging::AgingAnalyzer cold(c432_, lib_, cond(330.0));
  const aging::AgingAnalyzer hot(c432_, lib_, cond(400.0));
  const IvcResult rc = evaluate_ivc(cold, leak, mlv, 0);
  const IvcResult rh = evaluate_ivc(hot, leak, mlv, 0);
  EXPECT_GE(rh.mlv_spread_percent(), rc.mlv_spread_percent() - 1e-9);
}

TEST_F(IvcTest, RejectsMismatchedNetlists) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  const netlist::Netlist other = netlist::make_parity_tree("p", 4);
  const leakage::LeakageAnalyzer leak(other, lib_, 330.0);
  EXPECT_THROW(evaluate_ivc(an, leak), std::invalid_argument);
}

TEST_F(IvcTest, IncPotentialPositiveAndBounded) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  const IncPotential p = internal_node_control_potential(an);
  EXPECT_GT(p.worst_percent, p.best_percent);
  EXPECT_GT(p.potential_percent(), 0.0);
  EXPECT_LT(p.potential_percent(), 100.0);
}

TEST_F(IvcTest, IncPotentialGrowsWithStandbyTemperature) {
  // Table 4's headline: potential 18.1% at 330 K -> 54.9% at 400 K.
  double prev = 0.0;
  for (double ts : {330.0, 370.0, 400.0}) {
    aging::AgingConditions c;
    c.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, ts);
    c.sp_vectors = 512;
    const aging::AgingAnalyzer an(c432_, lib_, c);
    const double pot = internal_node_control_potential(an).potential_percent();
    EXPECT_GT(pot, prev) << "Ts=" << ts;
    prev = pot;
  }
  EXPECT_GT(prev, 35.0);  // at 400 K, in the paper's half-ish band
}

TEST_F(IvcTest, RotatingPolicyLiesBetweenMembersAndBest) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(400.0));
  std::vector<bool> zeros(c432_.num_inputs(), false);
  std::vector<bool> ones(c432_.num_inputs(), true);
  const double p0 =
      an.analyze(aging::StandbyPolicy::from_vector(zeros)).percent();
  const double p1 =
      an.analyze(aging::StandbyPolicy::from_vector(ones)).percent();
  const double rot =
      an.analyze(aging::StandbyPolicy::rotating({zeros, ones})).percent();
  EXPECT_LE(rot, std::max(p0, p1) + 1e-9);
  EXPECT_GE(rot, std::min(p0, p1) * 0.5);
}

TEST_F(IvcTest, RotatingSingleVectorEqualsStatic) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  std::vector<bool> v(c432_.num_inputs());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = (i & 1) != 0;
  const double stat = an.analyze(aging::StandbyPolicy::from_vector(v)).percent();
  const double rot = an.analyze(aging::StandbyPolicy::rotating({v})).percent();
  EXPECT_NEAR(stat, rot, 1e-12);
}

TEST_F(IvcTest, RotatingPolicyValidation) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  EXPECT_THROW(aging::StandbyPolicy::rotating({}), std::invalid_argument);
  EXPECT_THROW(
      an.analyze(aging::StandbyPolicy::rotating({std::vector<bool>(3)})),
      std::invalid_argument);
}

TEST_F(IvcTest, AlternatingIvcReducesMaxDeviceDegradation) {
  // Penelope's claim [23]: rotating vectors that stress different PMOS
  // reduces the maximum degradation of any device.
  const aging::AgingAnalyzer an(c432_, lib_, cond(400.0));
  const leakage::LeakageAnalyzer leak(c432_, lib_, 330.0);
  const AlternatingIvcResult r = evaluate_alternating_ivc(
      an, leak, {.population = 48, .max_rounds = 12, .max_set_size = 8});
  EXPECT_GE(r.n_vectors, 1);
  EXPECT_GT(r.static_max_dvth, 0.0);
  if (r.n_vectors > 1) {
    EXPECT_LE(r.rotating_max_dvth, r.static_max_dvth + 1e-15);
    EXPECT_GE(r.max_dvth_reduction_percent(), 0.0);
  }
  EXPECT_GT(r.mean_rotation_leakage, 0.0);
}

TEST_F(IvcTest, ComplementRotationDiversifiesStress) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(400.0));
  const leakage::LeakageAnalyzer leak(c432_, lib_, 330.0);
  const AlternatingIvcResult r = evaluate_alternating_ivc(
      an, leak, {.population = 48, .max_rounds = 12, .max_set_size = 8});
  // Rotating a vector with its complement cannot stress any device harder
  // than holding the worse of the two constantly; the max device dVth must
  // not exceed the static one by more than numerical noise, and it costs
  // leakage (the complement is not an MLV).
  EXPECT_LE(r.complement_max_dvth, r.static_max_dvth + 1e-12);
  EXPECT_GT(r.complement_max_dvth_reduction_percent(), -1e-9);
  EXPECT_GE(r.complement_leakage, r.mean_rotation_leakage * 0.5);
  EXPECT_GT(r.complement_percent, 0.0);
}

TEST_F(IvcTest, AlternatingIvcRejectsMismatchedNetlists) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  const netlist::Netlist other = netlist::make_parity_tree("p", 4);
  const leakage::LeakageAnalyzer leak(other, lib_, 330.0);
  EXPECT_THROW(evaluate_alternating_ivc(an, leak), std::invalid_argument);
}

TEST_F(IvcTest, EvaluateIvcBitIdenticalAcrossThreadCounts) {
  // Candidate and random-reference evaluations fan out over parallel_for
  // with per-index slots; the result must match the serial run exactly.
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  const leakage::LeakageAnalyzer leak(c432_, lib_, 330.0);
  MlvSearchParams p{.population = 32, .max_rounds = 8};
  p.n_threads = 1;
  const IvcResult serial = evaluate_ivc(an, leak, p, 8);
  for (int n : {2, 8}) {
    p.n_threads = n;
    const IvcResult r = evaluate_ivc(an, leak, p, 8);
    ASSERT_EQ(r.candidates.size(), serial.candidates.size()) << n;
    EXPECT_EQ(r.best_index, serial.best_index) << n;
    EXPECT_EQ(r.random_vector_percent, serial.random_vector_percent) << n;
    EXPECT_EQ(r.worst_case_percent, serial.worst_case_percent) << n;
    for (std::size_t i = 0; i < serial.candidates.size(); ++i) {
      EXPECT_EQ(r.candidates[i].vector, serial.candidates[i].vector) << n;
      EXPECT_EQ(r.candidates[i].leakage, serial.candidates[i].leakage) << n;
      EXPECT_EQ(r.candidates[i].degradation_percent,
                serial.candidates[i].degradation_percent)
          << n;
    }
  }
}

TEST_F(IvcTest, AlternatingIvcBitIdenticalAcrossThreadCounts) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(400.0));
  const leakage::LeakageAnalyzer leak(c432_, lib_, 330.0);
  MlvSearchParams p{.population = 32, .max_rounds = 8, .max_set_size = 6};
  p.n_threads = 1;
  const AlternatingIvcResult serial = evaluate_alternating_ivc(an, leak, p);
  for (int n : {2, 8}) {
    p.n_threads = n;
    const AlternatingIvcResult r = evaluate_alternating_ivc(an, leak, p);
    EXPECT_EQ(r.n_vectors, serial.n_vectors) << n;
    EXPECT_EQ(r.static_percent, serial.static_percent) << n;
    EXPECT_EQ(r.static_max_dvth, serial.static_max_dvth) << n;
    EXPECT_EQ(r.rotating_percent, serial.rotating_percent) << n;
    EXPECT_EQ(r.complement_percent, serial.complement_percent) << n;
  }
}

TEST_F(IvcTest, RandomReferenceBetweenBounds) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(330.0));
  const leakage::LeakageAnalyzer leak(c432_, lib_, 330.0);
  const IvcResult r =
      evaluate_ivc(an, leak, {.population = 32, .max_rounds = 8}, 4);
  EXPECT_GE(r.random_vector_percent, r.best_case_percent - 1e-9);
  EXPECT_LE(r.random_vector_percent, r.worst_case_percent + 1e-9);
}

}  // namespace
}  // namespace nbtisim::opt
