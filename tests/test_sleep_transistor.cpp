// Unit tests for NBTI-aware sleep-transistor sizing and circuit analysis
// (src/opt/sleep_transistor.*).

#include "opt/sleep_transistor.h"

#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "tech/units.h"

namespace nbtisim::opt {
namespace {

class SleepTransistorTest : public ::testing::Test {
 protected:
  nbti::RdParams rd_;
  nbti::ModeSchedule sched_ =
      nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  StParams st_;
};

TEST_F(SleepTransistorTest, StAgesMoreWithMoreActiveTime) {
  // Fig. 8: dVth grows with RAS (the ST is stressed while ACTIVE).
  double prev = 0.0;
  for (double active_parts : {1.0, 3.0, 9.0}) {
    const nbti::ModeSchedule s =
        nbti::ModeSchedule::from_ras(active_parts, 1, 1000.0, 400.0, 330.0);
    const double d = st_delta_vth(rd_, s, kTenYears, st_);
    EXPECT_GT(d, prev) << "RAS=" << active_parts << ":1";
    prev = d;
  }
}

TEST_F(SleepTransistorTest, StAgesLessWithHigherInitialVth) {
  // Fig. 8: initial Vth 0.20 V ages most, 0.40 V least.
  StParams lo = st_, hi = st_;
  lo.vth_st = 0.20;
  hi.vth_st = 0.40;
  EXPECT_GT(st_delta_vth(rd_, sched_, kTenYears, lo),
            st_delta_vth(rd_, sched_, kTenYears, hi));
}

TEST_F(SleepTransistorTest, StDvthMagnitudeBand) {
  // Fig. 8 extremes: ~30 mV (Vth 0.20, RAS 9:1) down to ~7 mV (0.40, 1:9).
  StParams lo = st_;
  lo.vth_st = 0.20;
  const nbti::ModeSchedule mostly_active =
      nbti::ModeSchedule::from_ras(9, 1, 1000.0, 400.0, 330.0);
  const double worst = st_delta_vth(rd_, mostly_active, kTenYears, lo);
  EXPECT_GT(to_mV(worst), 15.0);
  EXPECT_LT(to_mV(worst), 60.0);

  StParams hi = st_;
  hi.vth_st = 0.40;
  const double best = st_delta_vth(rd_, sched_, kTenYears, hi);
  EXPECT_GT(to_mV(best), 2.0);
  EXPECT_LT(to_mV(best), 20.0);
  EXPECT_GT(worst, 2.0 * best);
}

TEST_F(SleepTransistorTest, StandbyTemperatureDoesNotAffectSt) {
  // "the threshold degradation is not influenced by the standby temperature
  // variations" — the ST is relaxed in standby.
  const nbti::ModeSchedule cold =
      nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
  const nbti::ModeSchedule hot =
      nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 400.0);
  EXPECT_NEAR(st_delta_vth(rd_, cold, kTenYears, st_),
              st_delta_vth(rd_, hot, kTenYears, st_), 1e-15);
}

TEST_F(SleepTransistorTest, SizingProducesPositiveGeometry) {
  const StSizing s = size_sleep_transistor(rd_, sched_, kTenYears, 1e-3, st_);
  EXPECT_GT(s.v_st, 0.0);
  EXPECT_LT(s.v_st, 0.1);
  EXPECT_GT(s.wl_base, 0.0);
  EXPECT_GT(s.wl_nbti_aware, s.wl_base);
}

TEST_F(SleepTransistorTest, Fig9UpsizePercentBand) {
  // Fig. 9: Delta(W/L) between ~1% and ~4% over the sweep.
  for (double vth_st : {0.20, 0.30, 0.40}) {
    for (double active_parts : {1.0, 9.0}) {
      StParams p = st_;
      p.vth_st = vth_st;
      const nbti::ModeSchedule s =
          nbti::ModeSchedule::from_ras(active_parts, 10.0 - active_parts,
                                       1000.0, 400.0, 330.0);
      const StSizing sz = size_sleep_transistor(rd_, s, kTenYears, 1e-3, p);
      EXPECT_GT(sz.wl_increase_percent(), 0.3)
          << "vth=" << vth_st << " act=" << active_parts;
      EXPECT_LT(sz.wl_increase_percent(), 12.0)
          << "vth=" << vth_st << " act=" << active_parts;
    }
  }
}

TEST_F(SleepTransistorTest, LargerCurrentNeedsWiderSt) {
  const StSizing a = size_sleep_transistor(rd_, sched_, kTenYears, 1e-3, st_);
  const StSizing b = size_sleep_transistor(rd_, sched_, kTenYears, 2e-3, st_);
  EXPECT_NEAR(b.wl_base / a.wl_base, 2.0, 1e-9);
}

TEST_F(SleepTransistorTest, TighterSigmaNeedsWiderSt) {
  StParams tight = st_;
  tight.sigma = 0.01;
  const StSizing loose = size_sleep_transistor(rd_, sched_, kTenYears, 1e-3, st_);
  const StSizing strict =
      size_sleep_transistor(rd_, sched_, kTenYears, 1e-3, tight);
  EXPECT_GT(strict.wl_base, loose.wl_base);
}

TEST_F(SleepTransistorTest, SizingRejectsBadInputs) {
  EXPECT_THROW(size_sleep_transistor(rd_, sched_, kTenYears, 0.0, st_),
               std::invalid_argument);
  StParams bad = st_;
  bad.sigma = 0.0;
  EXPECT_THROW(size_sleep_transistor(rd_, sched_, kTenYears, 1e-3, bad),
               std::invalid_argument);
  bad = st_;
  bad.vth_st = 1.1;
  EXPECT_THROW(size_sleep_transistor(rd_, sched_, kTenYears, 1e-3, bad),
               std::invalid_argument);
}

class StCircuitTest : public ::testing::Test {
 protected:
  StCircuitTest() : c432_(netlist::iscas85_like("c432")) {
    cond_.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
    cond_.sp_vectors = 512;
    analyzer_.emplace(c432_, lib_, cond_);
  }

  tech::Library lib_;
  netlist::Netlist c432_;
  aging::AgingConditions cond_;
  std::optional<aging::AgingAnalyzer> analyzer_;
  StParams st_;
};

TEST_F(StCircuitTest, FooterPenaltyIsConstant) {
  const auto series = st_circuit_degradation_series(*analyzer_, StStyle::Footer,
                                                    st_, 1e6, 3e8, 5);
  for (const StDegradationPoint& pt : series) {
    EXPECT_NEAR(pt.st_percent, 100.0 * st_.sigma, 1e-9);
    EXPECT_NEAR(pt.total_percent, pt.logic_percent + pt.st_percent, 1e-9);
  }
}

TEST_F(StCircuitTest, SeriesReusesOneStressBuildAcrossPoints) {
  // Regression for the per-point descriptor rebuild: every point of the
  // with-ST series shares one all-relaxed stress build, and the ST device's
  // own stress context is hoisted out of the loop.
  EXPECT_EQ(analyzer_->stress_build_count(), 0u);
  const auto series = st_circuit_degradation_series(
      *analyzer_, StStyle::FooterAndHeader, st_, 1e6, 3e8, 12);
  ASSERT_EQ(series.size(), 12u);
  EXPECT_EQ(analyzer_->stress_build_count(), 1u);
}

TEST_F(StCircuitTest, HeaderPenaltyGrowsOverTime) {
  const auto series = st_circuit_degradation_series(*analyzer_, StStyle::Header,
                                                    st_, 1e6, 3e8, 5);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].st_percent, series[i - 1].st_percent);
  }
  EXPECT_GT(series.front().st_percent, 100.0 * st_.sigma - 1e-9);
}

TEST_F(StCircuitTest, BothRailsCostTwiceTheFooterAtTimeZeroish) {
  const auto footer = st_circuit_degradation_series(
      *analyzer_, StStyle::Footer, st_, 1e4, 1e5, 2);
  const auto both = st_circuit_degradation_series(
      *analyzer_, StStyle::FooterAndHeader, st_, 1e4, 1e5, 2);
  EXPECT_GT(both.front().st_percent, 1.9 * footer.front().st_percent);
}

TEST_F(StCircuitTest, Fig11StInsertionWinsEventually) {
  // The paper's Fig. 11 claim: there exist sigma values for which the gated
  // circuit is FASTER at 10 years than the ungated worst case, despite the
  // time-0 penalty.
  StParams small = st_;
  small.sigma = 0.01;
  const auto with_st = st_circuit_degradation_series(
      *analyzer_, StStyle::Footer, small, 3e8, 4e8, 2);
  const auto without = no_st_degradation_series(*analyzer_, 3e8, 4e8, 2);
  // At T_standby = 400 K the gap is larger; test at 330 K with 1%: the
  // relaxed logic + 1% penalty must beat the all-stressed logic by 10 years.
  aging::AgingConditions hot = cond_;
  hot.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 400.0);
  const aging::AgingAnalyzer hot_an(c432_, lib_, hot);
  const auto with_hot = st_circuit_degradation_series(
      hot_an, StStyle::Footer, small, 3e8, 4e8, 2);
  const auto without_hot = no_st_degradation_series(hot_an, 3e8, 4e8, 2);
  EXPECT_LT(with_hot.front().total_percent, without_hot.front().total_percent);
  (void)with_st;
  (void)without;
}

TEST_F(StCircuitTest, GatedLogicAgesLikeBestCase) {
  const auto series = st_circuit_degradation_series(*analyzer_, StStyle::Footer,
                                                    st_, 3e8, 4e8, 2);
  const double best =
      analyzer_->analyze(aging::StandbyPolicy::all_relaxed(), 3e8).percent();
  EXPECT_NEAR(series.front().logic_percent, best, 1e-9);
}

TEST_F(StCircuitTest, BadSamplingSpecRejected) {
  EXPECT_THROW(st_circuit_degradation_series(*analyzer_, StStyle::Footer, st_,
                                             1e6, 1e5, 5),
               std::invalid_argument);
  EXPECT_THROW(no_st_degradation_series(*analyzer_, 1e6, 3e8, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace nbtisim::opt
