// Unit tests for circuit leakage analysis (src/leakage/*).

#include "leakage/leakage.h"

#include <gtest/gtest.h>

#include <random>

#include "netlist/generators.h"
#include "sim/simulator.h"

namespace nbtisim::leakage {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using tech::GateFn;

class LeakageTest : public ::testing::Test {
 protected:
  tech::Library lib_;
};

TEST_F(LeakageTest, SingleGateMatchesTable) {
  Netlist nl("one");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId x = nl.add_gate(GateFn::Nand, {a, b}, "x");
  nl.mark_output(x);
  const LeakageAnalyzer an(nl, lib_, 400.0);
  const tech::CellId nand2 = lib_.find("NAND2");
  for (std::uint32_t v = 0; v < 4; ++v) {
    const std::vector<bool> pi{(v & 1) != 0, (v & 2) != 0};
    EXPECT_DOUBLE_EQ(an.circuit_leakage(pi), an.table().leakage(nand2, v));
  }
}

TEST_F(LeakageTest, GateLeakageVectorHasOneEntryPerGate) {
  const Netlist nl = netlist::make_alu("alu", 4);
  const LeakageAnalyzer an(nl, lib_, 330.0);
  const std::vector<bool> pi(nl.num_inputs(), false);
  EXPECT_EQ(an.gate_leakage(pi).size(), static_cast<std::size_t>(nl.num_gates()));
}

TEST_F(LeakageTest, CircuitLeakageIsSumOfGateLeakages) {
  const Netlist nl = netlist::iscas85_like("c432");
  const LeakageAnalyzer an(nl, lib_, 400.0);
  const std::vector<bool> pi(nl.num_inputs(), true);
  const std::vector<double> per_gate = an.gate_leakage(pi);
  double sum = 0.0;
  for (double l : per_gate) sum += l;
  EXPECT_NEAR(an.circuit_leakage(pi), sum, 1e-15);
}

TEST_F(LeakageTest, LeakageDependsOnInputVector) {
  const Netlist nl = netlist::iscas85_like("c432");
  const LeakageAnalyzer an(nl, lib_, 400.0);
  std::mt19937_64 rng(7);
  double lo = 1e9, hi = 0.0;
  for (int k = 0; k < 32; ++k) {
    std::vector<bool> pi(nl.num_inputs());
    for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = (rng() & 1) != 0;
    const double l = an.circuit_leakage(pi);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
  }
  // The whole point of IVC: a meaningful spread across vectors.
  EXPECT_GT(hi / lo, 1.02);
}

TEST_F(LeakageTest, HotterCircuitLeaksMore) {
  const Netlist nl = netlist::iscas85_like("c880");
  const LeakageAnalyzer cold(nl, lib_, 330.0);
  const LeakageAnalyzer hot(nl, lib_, 400.0);
  const std::vector<bool> pi(nl.num_inputs(), false);
  EXPECT_GT(hot.circuit_leakage(pi), 2.0 * cold.circuit_leakage(pi));
}

TEST_F(LeakageTest, ExpectedLeakageLiesWithinObservedRange) {
  const Netlist nl = netlist::make_priority_controller("pc", 9, 3);
  const LeakageAnalyzer an(nl, lib_, 400.0);
  const sim::SignalStats stats = sim::estimate_signal_stats(
      nl, std::vector<double>(nl.num_inputs(), 0.5), 4096, 3);
  const double expected = an.expected_leakage(stats.probability);

  std::mt19937_64 rng(11);
  double lo = 1e9, hi = 0.0, sum = 0.0;
  const int kTrials = 200;
  for (int k = 0; k < kTrials; ++k) {
    std::vector<bool> pi(nl.num_inputs());
    for (std::size_t i = 0; i < pi.size(); ++i) pi[i] = (rng() & 1) != 0;
    const double l = an.circuit_leakage(pi);
    lo = std::min(lo, l);
    hi = std::max(hi, l);
    sum += l;
  }
  EXPECT_GT(expected, 0.8 * lo);
  EXPECT_LT(expected, 1.2 * hi);
  // Independence approximation should track the Monte-Carlo mean closely.
  EXPECT_NEAR(expected / (sum / kTrials), 1.0, 0.1);
}

TEST_F(LeakageTest, ExpectedLeakageRejectsSizeMismatch) {
  const Netlist nl = netlist::make_parity_tree("p", 4);
  const LeakageAnalyzer an(nl, lib_, 400.0);
  EXPECT_THROW(an.expected_leakage(std::vector<double>(2, 0.5)),
               std::invalid_argument);
}

TEST_F(LeakageTest, WrongPiCountRejected) {
  const Netlist nl = netlist::make_parity_tree("p", 4);
  const LeakageAnalyzer an(nl, lib_, 400.0);
  EXPECT_THROW(an.circuit_leakage(std::vector<bool>(5)), std::invalid_argument);
}

}  // namespace
}  // namespace nbtisim::leakage
