// Cross-layer consistency and fuzz properties:
//   - the netlist-level gate semantics (sim::eval_gate) must agree with the
//     transistor-level cell stage networks (tech::Cell::evaluate) for every
//     library cell and every input vector;
//   - format round-trips (bench/verilog) preserve function on random DAGs;
//   - scalar and slew-aware STA agree on ordering relations;
//   - the leakage table matches direct evaluation across temperatures.

#include <gtest/gtest.h>

#include <random>

#include "netlist/bench_io.h"
#include "netlist/generators.h"
#include "netlist/verilog_io.h"
#include "sim/simulator.h"
#include "sta/slew_sta.h"
#include "sta/sta.h"
#include "tech/library.h"

namespace nbtisim {
namespace {

// --- gate semantics vs cell networks ---

class GateCellAgreement
    : public ::testing::TestWithParam<std::pair<tech::GateFn, int>> {};

TEST_P(GateCellAgreement, SimulatorAndCellAgreeOnAllVectors) {
  const auto [fn, fanin] = GetParam();
  const tech::Library lib;
  const tech::CellId id = lib.id_for(fn, fanin);
  const tech::Cell& cell = lib.cell(id);
  for (std::uint32_t v = 0; v < (1u << fanin); ++v) {
    std::vector<bool> ins(fanin);
    for (int i = 0; i < fanin; ++i) ins[i] = (v >> i) & 1u;
    EXPECT_EQ(sim::eval_gate(fn, ins), cell.evaluate(v))
        << tech::gate_fn_name(fn) << fanin << " vector " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFunctions, GateCellAgreement,
    ::testing::Values(std::pair{tech::GateFn::Not, 1},
                      std::pair{tech::GateFn::Buf, 1},
                      std::pair{tech::GateFn::And, 2},
                      std::pair{tech::GateFn::And, 4},
                      std::pair{tech::GateFn::Nand, 2},
                      std::pair{tech::GateFn::Nand, 3},
                      std::pair{tech::GateFn::Nand, 4},
                      std::pair{tech::GateFn::Or, 3},
                      std::pair{tech::GateFn::Nor, 2},
                      std::pair{tech::GateFn::Nor, 4},
                      std::pair{tech::GateFn::Xor, 2},
                      std::pair{tech::GateFn::Xnor, 2}));

// --- format round-trip fuzz ---

class FormatFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FormatFuzz, BenchRoundTripPreservesFunction) {
  const netlist::Netlist orig = netlist::make_random_dag(
      "fz", {.n_inputs = 12, .n_outputs = 6, .n_gates = 120,
             .seed = GetParam()});
  const netlist::Netlist back =
      netlist::parse_bench(netlist::write_bench(orig), "fz");
  const sim::Simulator so(orig), sb(back);
  std::mt19937_64 rng(GetParam() * 7 + 1);
  std::vector<std::uint64_t> words(orig.num_inputs());
  for (auto& w : words) w = rng();
  const auto vo = so.evaluate_words(words);
  const auto vb = sb.evaluate_words(words);
  for (netlist::NodeId po : orig.outputs()) {
    EXPECT_EQ(vo[po], vb[back.find_node(orig.node_name(po))]);
  }
}

TEST_P(FormatFuzz, VerilogRoundTripPreservesFunction) {
  const netlist::Netlist orig = netlist::make_random_dag(
      "fz", {.n_inputs = 10, .n_outputs = 5, .n_gates = 80,
             .seed = GetParam() + 100});
  const netlist::Netlist back =
      netlist::parse_verilog(netlist::write_verilog(orig));
  const sim::Simulator so(orig), sb(back);
  std::mt19937_64 rng(GetParam() * 13 + 2);
  std::vector<std::uint64_t> words(orig.num_inputs());
  for (auto& w : words) w = rng();
  const auto vo = so.evaluate_words(words);
  const auto vb = sb.evaluate_words(words);
  for (netlist::NodeId po : orig.outputs()) {
    EXPECT_EQ(vo[po], vb[back.find_node(orig.node_name(po))]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- scalar vs slew STA ordering relations ---

class StaAgreement : public ::testing::TestWithParam<std::string_view> {};

TEST_P(StaAgreement, AgingSlowsBothEngines) {
  const tech::Library lib;
  const netlist::Netlist nl = netlist::iscas85_like(std::string(GetParam()));
  const sta::StaEngine scalar(nl, lib);
  const sta::SlewStaEngine slew(nl, lib);
  const std::vector<double> dvth(nl.num_gates(), 0.047);

  const double s0 = scalar.analyze(scalar.gate_delays(400.0)).max_delay;
  const double s1 = scalar.analyze(scalar.gate_delays(400.0, dvth)).max_delay;
  const double w0 = slew.analyze(400.0).max_delay;
  const double w1 = slew.analyze(400.0, dvth).max_delay;
  EXPECT_GT(s1, s0);
  EXPECT_GT(w1, w0);
  // Both engines age the PMOS path only (the scalar engine averages the
  // rise/fall currents; the slew engine takes the worst edge, so its aged
  // shift can exceed the scalar's when the critical path turns
  // rise-dominated). Both must stay below the full Taylor sensitivity
  // alpha * dVth / (Vdd - Vth0) that attributes everything to the PMOS.
  const double taylor = lib.params().pmos.alpha * 0.047 /
                        (lib.params().vdd - lib.params().pmos.vth0);
  const double scalar_shift = (s1 - s0) / s0;
  const double slew_shift = (w1 - w0) / w0;
  EXPECT_LT(scalar_shift, taylor);
  EXPECT_LT(slew_shift, taylor);
  EXPECT_GT(scalar_shift, 0.2 * taylor);
  EXPECT_GT(slew_shift, 0.2 * taylor);
  // And they agree within a factor of two.
  EXPECT_LT(slew_shift / scalar_shift, 2.0);
  EXPECT_GT(slew_shift / scalar_shift, 0.5);
}

INSTANTIATE_TEST_SUITE_P(Circuits, StaAgreement,
                         ::testing::Values("c432", "c499", "c880", "c1355"),
                         [](const auto& suite_info) {
                           return std::string(suite_info.param);
                         });

// --- leakage table vs direct evaluation across temperatures ---

class LeakageTableSweep : public ::testing::TestWithParam<double> {};

TEST_P(LeakageTableSweep, TableMatchesDirectForEveryCellAndVector) {
  const tech::Library lib;
  const double temp = GetParam();
  const tech::LeakageTable table(lib, temp);
  for (tech::CellId id = 0; id < lib.num_cells(); ++id) {
    const int pins = lib.cell(id).num_pins();
    for (std::uint32_t v = 0; v < (1u << pins); ++v) {
      EXPECT_DOUBLE_EQ(table.leakage(id, v), lib.cell_leakage(id, v, temp))
          << lib.cell(id).name() << " v=" << v << " T=" << temp;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Temps, LeakageTableSweep,
                         ::testing::Values(300.0, 330.0, 370.0, 400.0));

// --- simulator scalar vs word-parallel on every builtin circuit ---

class SimAgreement : public ::testing::TestWithParam<std::string_view> {};

TEST_P(SimAgreement, WordAndScalarSimulationsMatch) {
  const netlist::Netlist nl = netlist::iscas85_like(std::string(GetParam()));
  const sim::Simulator sim(nl);
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> words(nl.num_inputs());
  for (auto& w : words) w = rng();
  const auto wv = sim.evaluate_words(words);
  for (int bit = 0; bit < 64; bit += 13) {
    std::vector<bool> pi(nl.num_inputs());
    for (int i = 0; i < nl.num_inputs(); ++i) pi[i] = (words[i] >> bit) & 1ull;
    const auto sv = sim.evaluate(pi);
    for (netlist::NodeId po : nl.outputs()) {
      EXPECT_EQ(((wv[po] >> bit) & 1ull) != 0, sv[po] != false)
          << GetParam() << " bit " << bit;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Circuits, SimAgreement,
                         ::testing::Values("c432", "c499", "c880", "c1355",
                                           "c1908", "c6288"),
                         [](const auto& suite_info) {
                           return std::string(suite_info.param);
                         });

}  // namespace
}  // namespace nbtisim
