// Differential tests: the optimized evaluation paths (incremental
// SizedTiming, parallel sizing argmax, horizon-batched derate, batched
// electrothermal sweeps) property-tested against the deliberately naive
// reference evaluators of support/reference.h across random dag: netlists,
// seeds, thread counts and horizons.  Comparisons are exact (double ==):
// the optimized paths are bit-identical to brute force by construction,
// and these tests are what enforce that contract.

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "netlist/generators.h"
#include "opt/sizing.h"
#include "report/derate.h"
#include "support/reference.h"
#include "tech/units.h"
#include "thermal/electrothermal.h"

namespace nbtisim {
namespace {

aging::AgingConditions fast_conditions() {
  aging::AgingConditions cond;
  cond.sp_vectors = 256;  // small Monte-Carlo pass; exactness is what is
                          // under test, not the statistics
  return cond;
}

netlist::Netlist random_dag(int n_inputs, int n_gates, std::uint64_t seed) {
  netlist::RandomDagSpec spec;
  spec.n_inputs = n_inputs;
  spec.n_outputs = n_inputs > 4 ? n_inputs / 2 : 2;
  spec.n_gates = n_gates;
  spec.seed = seed;
  return netlist::make_random_dag("dag", spec);
}

TEST(DifferentialTest, IncrementalSizedTimingMatchesBruteForceRebuild) {
  struct Case {
    int inputs;
    int gates;
    std::uint64_t netlist_seed;
    std::uint64_t step_seed;
    double years;
  };
  const std::vector<Case> cases = {
      {8, 40, 1, 11, 10.0},  {8, 40, 2, 12, 3.0},   {8, 60, 3, 13, 10.0},
      {10, 60, 4, 14, 1.0},  {10, 80, 5, 15, 10.0}, {12, 80, 6, 16, 5.0},
      {12, 100, 7, 17, 2.0}, {16, 100, 8, 18, 10.0}, {16, 120, 9, 19, 7.0},
      {6, 30, 10, 20, 10.0}, {20, 150, 11, 21, 4.0}, {14, 90, 12, 22, 10.0},
  };

  const tech::Library lib;
  int checked = 0;
  for (const Case& c : cases) {
    SCOPED_TRACE(::testing::Message() << "dag:" << c.inputs << "x" << c.gates
                                      << "@" << c.netlist_seed << " years="
                                      << c.years);
    const netlist::Netlist nl =
        random_dag(c.inputs, c.gates, c.netlist_seed);
    const aging::AgingAnalyzer an(nl, lib, fast_conditions());
    const std::vector<double> dvth = an.gate_dvth(
        aging::StandbyPolicy::all_stressed(), c.years * kSecondsPerYear);

    opt::SizedTiming timing(an, dvth);
    std::vector<double> sizes(nl.num_gates(), 1.0);
    timing.set_sizes(sizes);

    std::mt19937_64 rng(c.step_seed);
    std::vector<double> scratch;
    for (int step = 0; step < 10; ++step) {
      const int gate = static_cast<int>(
          rng() % static_cast<std::uint64_t>(nl.num_gates()));
      const double new_size =
          1.0 + 0.25 * static_cast<double>(1 + rng() % 12);  // (1, 4]

      // Trial evaluation vs a from-scratch rebuild with the trial sizes.
      const sta::TimingResult got =
          timing.evaluate_resize(gate, new_size, scratch);
      std::vector<double> trial_sizes = sizes;
      trial_sizes[gate] = new_size;
      const std::vector<double> want_delays =
          testsupport::reference_aged_delays(an, dvth, trial_sizes);
      ASSERT_EQ(scratch.size(), want_delays.size());
      for (std::size_t gi = 0; gi < want_delays.size(); ++gi) {
        ASSERT_EQ(scratch[gi], want_delays[gi]) << "gate " << gi;
      }
      const sta::TimingResult want = an.sta().analyze(want_delays);
      EXPECT_EQ(got.max_delay, want.max_delay);
      EXPECT_EQ(got.critical_path, want.critical_path);
      ++checked;

      // Commit roughly every other step and re-check the cached vector.
      if (rng() & 1) {
        timing.commit_resize(gate, new_size);
        sizes[gate] = new_size;
        const std::vector<double> want_cached =
            testsupport::reference_aged_delays(an, dvth, sizes);
        for (std::size_t gi = 0; gi < want_cached.size(); ++gi) {
          ASSERT_EQ(timing.current_delays()[gi], want_cached[gi])
              << "gate " << gi;
        }
        EXPECT_EQ(timing.analyze_current().max_delay,
                  an.sta().analyze(want_cached).max_delay);
        ++checked;
      }
    }
  }
  // The acceptance bar for this suite: at least 100 randomized differential
  // comparisons of the incremental path against the brute-force rebuild.
  EXPECT_GE(checked, 100);
}

TEST(DifferentialTest, SizeForLifetimeMatchesReferenceAcrossThreadCounts) {
  const std::vector<std::uint64_t> seeds = {3, 7, 21, 42};
  const tech::Library lib;
  for (std::uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message() << "dag seed " << seed);
    const netlist::Netlist nl = random_dag(12, 80, seed);
    const aging::AgingAnalyzer an(nl, lib, fast_conditions());
    const aging::StandbyPolicy policy = aging::StandbyPolicy::all_stressed();
    const opt::SizingParams base{.spec_margin_percent = 1.0, .size_step = 0.5,
                                 .max_moves = 30};

    const opt::SizingResult want =
        testsupport::reference_size_for_lifetime(an, policy, base);
    EXPECT_GT(want.moves, 0);  // the comparison must exercise the loop
    for (int n_threads : {1, 2, 8}) {
      for (bool incremental : {true, false}) {
        SCOPED_TRACE(::testing::Message() << "n_threads=" << n_threads
                                          << " incremental=" << incremental);
        opt::SizingParams params = base;
        params.n_threads = n_threads;
        params.incremental = incremental;
        const opt::SizingResult got =
            opt::size_for_lifetime(an, policy, params);
        EXPECT_EQ(got.sizes, want.sizes);
        EXPECT_EQ(got.moves, want.moves);
        EXPECT_EQ(got.met, want.met);
        EXPECT_EQ(got.fresh_delay, want.fresh_delay);
        EXPECT_EQ(got.spec, want.spec);
        EXPECT_EQ(got.aged_before, want.aged_before);
        EXPECT_EQ(got.aged_after, want.aged_after);
      }
    }
  }
}

TEST(DifferentialTest, DerateTableMatchesPerCellReference) {
  const tech::Library lib;
  for (std::uint64_t seed : {5ULL, 9ULL}) {
    SCOPED_TRACE(::testing::Message() << "dag seed " << seed);
    const netlist::Netlist nl = random_dag(10, 60, seed);
    const aging::AgingAnalyzer an(nl, lib, fast_conditions());
    // Unsorted with a duplicate: order must be preserved, not normalized.
    const std::vector<double> years = {7.0, 1.0, 3.0, 3.0, 10.0};

    const report::DerateTable want =
        testsupport::reference_derate_table(an, years);
    for (int n_threads : {1, 2, 8}) {
      SCOPED_TRACE(::testing::Message() << "n_threads=" << n_threads);
      const report::DerateTable got =
          report::aging_derate_table(an, years, n_threads);
      EXPECT_EQ(got.years, want.years);
      EXPECT_EQ(got.policy_names, want.policy_names);
      ASSERT_EQ(got.factors.size(), want.factors.size());
      for (std::size_t p = 0; p < want.factors.size(); ++p) {
        EXPECT_EQ(got.factors[p], want.factors[p]) << "policy " << p;
      }
    }
  }
}

TEST(DifferentialTest, ElectrothermalSweepMatchesSerialReference) {
  const tech::Library lib;
  const netlist::Netlist nl = random_dag(10, 60, 13);
  const thermal::RcThermalModel model;
  const std::vector<bool> zeros(nl.num_inputs(), false);
  const std::vector<double> powers = {5.0, 20.0, 60.0, 100.0, 130.0};
  const thermal::ElectrothermalParams params{.replication = 1e5};

  const std::vector<thermal::OperatingPoint> want =
      testsupport::reference_operating_points(nl, lib, model, zeros, powers,
                                              params);
  for (int n_threads : {1, 2, 8}) {
    SCOPED_TRACE(::testing::Message() << "n_threads=" << n_threads);
    const std::vector<thermal::OperatingPoint> got =
        thermal::solve_operating_points(nl, lib, model, zeros, powers, params,
                                        n_threads);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "power " << powers[i]);
      EXPECT_EQ(got[i].temperature_k, want[i].temperature_k);
      EXPECT_EQ(got[i].leakage_w, want[i].leakage_w);
      EXPECT_EQ(got[i].iterations, want[i].iterations);
      EXPECT_EQ(got[i].converged, want[i].converged);
    }
  }
}

}  // namespace
}  // namespace nbtisim
