// Differential tests: the optimized evaluation paths (incremental
// SizedTiming, parallel sizing argmax, horizon-batched derate, batched
// electrothermal sweeps, the SoA degradation kernel and the interpolated
// dVth(t) tables) property-tested against the deliberately naive reference
// evaluators — support/reference.h and the per-device scalar model — across
// random dag: netlists, seeds, temperatures, duty cycles, thread counts and
// horizons.  Kernel comparisons are exact (double ==): the optimized paths
// are bit-identical to brute force by construction, and these tests are what
// enforce that contract.  Table comparisons are bounded by the documented
// interpolation tolerance (see nbti/dvth_table.h).

#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "aging/failure.h"
#include "nbti/dvth_table.h"
#include "nbti/rd_kernel.h"
#include "netlist/generators.h"
#include "opt/sizing.h"
#include "report/derate.h"
#include "support/reference.h"
#include "tech/units.h"
#include "thermal/electrothermal.h"

namespace nbtisim {
namespace {

aging::AgingConditions fast_conditions() {
  aging::AgingConditions cond;
  cond.sp_vectors = 256;  // small Monte-Carlo pass; exactness is what is
                          // under test, not the statistics
  return cond;
}

netlist::Netlist random_dag(int n_inputs, int n_gates, std::uint64_t seed) {
  netlist::RandomDagSpec spec;
  spec.n_inputs = n_inputs;
  spec.n_outputs = n_inputs > 4 ? n_inputs / 2 : 2;
  spec.n_gates = n_gates;
  spec.seed = seed;
  return netlist::make_random_dag("dag", spec);
}

TEST(DifferentialTest, IncrementalSizedTimingMatchesBruteForceRebuild) {
  struct Case {
    int inputs;
    int gates;
    std::uint64_t netlist_seed;
    std::uint64_t step_seed;
    double years;
  };
  const std::vector<Case> cases = {
      {8, 40, 1, 11, 10.0},  {8, 40, 2, 12, 3.0},   {8, 60, 3, 13, 10.0},
      {10, 60, 4, 14, 1.0},  {10, 80, 5, 15, 10.0}, {12, 80, 6, 16, 5.0},
      {12, 100, 7, 17, 2.0}, {16, 100, 8, 18, 10.0}, {16, 120, 9, 19, 7.0},
      {6, 30, 10, 20, 10.0}, {20, 150, 11, 21, 4.0}, {14, 90, 12, 22, 10.0},
  };

  const tech::Library lib;
  int checked = 0;
  for (const Case& c : cases) {
    SCOPED_TRACE(::testing::Message() << "dag:" << c.inputs << "x" << c.gates
                                      << "@" << c.netlist_seed << " years="
                                      << c.years);
    const netlist::Netlist nl =
        random_dag(c.inputs, c.gates, c.netlist_seed);
    const aging::AgingAnalyzer an(nl, lib, fast_conditions());
    const std::vector<double> dvth = an.gate_dvth(
        aging::StandbyPolicy::all_stressed(), c.years * kSecondsPerYear);

    opt::SizedTiming timing(an, dvth);
    std::vector<double> sizes(nl.num_gates(), 1.0);
    timing.set_sizes(sizes);

    std::mt19937_64 rng(c.step_seed);
    std::vector<double> scratch;
    for (int step = 0; step < 10; ++step) {
      const int gate = static_cast<int>(
          rng() % static_cast<std::uint64_t>(nl.num_gates()));
      const double new_size =
          1.0 + 0.25 * static_cast<double>(1 + rng() % 12);  // (1, 4]

      // Trial evaluation vs a from-scratch rebuild with the trial sizes.
      const sta::TimingResult got =
          timing.evaluate_resize(gate, new_size, scratch);
      std::vector<double> trial_sizes = sizes;
      trial_sizes[gate] = new_size;
      const std::vector<double> want_delays =
          testsupport::reference_aged_delays(an, dvth, trial_sizes);
      ASSERT_EQ(scratch.size(), want_delays.size());
      for (std::size_t gi = 0; gi < want_delays.size(); ++gi) {
        ASSERT_EQ(scratch[gi], want_delays[gi]) << "gate " << gi;
      }
      const sta::TimingResult want = an.sta().analyze(want_delays);
      EXPECT_EQ(got.max_delay, want.max_delay);
      EXPECT_EQ(got.critical_path, want.critical_path);
      ++checked;

      // Commit roughly every other step and re-check the cached vector.
      if (rng() & 1) {
        timing.commit_resize(gate, new_size);
        sizes[gate] = new_size;
        const std::vector<double> want_cached =
            testsupport::reference_aged_delays(an, dvth, sizes);
        for (std::size_t gi = 0; gi < want_cached.size(); ++gi) {
          ASSERT_EQ(timing.current_delays()[gi], want_cached[gi])
              << "gate " << gi;
        }
        EXPECT_EQ(timing.analyze_current().max_delay,
                  an.sta().analyze(want_cached).max_delay);
        ++checked;
      }
    }
  }
  // The acceptance bar for this suite: at least 100 randomized differential
  // comparisons of the incremental path against the brute-force rebuild.
  EXPECT_GE(checked, 100);
}

TEST(DifferentialTest, SizeForLifetimeMatchesReferenceAcrossThreadCounts) {
  const std::vector<std::uint64_t> seeds = {3, 7, 21, 42};
  const tech::Library lib;
  for (std::uint64_t seed : seeds) {
    SCOPED_TRACE(::testing::Message() << "dag seed " << seed);
    const netlist::Netlist nl = random_dag(12, 80, seed);
    const aging::AgingAnalyzer an(nl, lib, fast_conditions());
    const aging::StandbyPolicy policy = aging::StandbyPolicy::all_stressed();
    const opt::SizingParams base{.spec_margin_percent = 1.0, .size_step = 0.5,
                                 .max_moves = 30};

    const opt::SizingResult want =
        testsupport::reference_size_for_lifetime(an, policy, base);
    EXPECT_GT(want.moves, 0);  // the comparison must exercise the loop
    for (int n_threads : {1, 2, 8}) {
      for (bool incremental : {true, false}) {
        SCOPED_TRACE(::testing::Message() << "n_threads=" << n_threads
                                          << " incremental=" << incremental);
        opt::SizingParams params = base;
        params.n_threads = n_threads;
        params.incremental = incremental;
        const opt::SizingResult got =
            opt::size_for_lifetime(an, policy, params);
        EXPECT_EQ(got.sizes, want.sizes);
        EXPECT_EQ(got.moves, want.moves);
        EXPECT_EQ(got.met, want.met);
        EXPECT_EQ(got.fresh_delay, want.fresh_delay);
        EXPECT_EQ(got.spec, want.spec);
        EXPECT_EQ(got.aged_before, want.aged_before);
        EXPECT_EQ(got.aged_after, want.aged_after);
      }
    }
  }
}

TEST(DifferentialTest, DerateTableMatchesPerCellReference) {
  const tech::Library lib;
  for (std::uint64_t seed : {5ULL, 9ULL}) {
    SCOPED_TRACE(::testing::Message() << "dag seed " << seed);
    const netlist::Netlist nl = random_dag(10, 60, seed);
    const aging::AgingAnalyzer an(nl, lib, fast_conditions());
    // Unsorted with a duplicate: order must be preserved, not normalized.
    const std::vector<double> years = {7.0, 1.0, 3.0, 3.0, 10.0};

    const report::DerateTable want =
        testsupport::reference_derate_table(an, years);
    for (int n_threads : {1, 2, 8}) {
      SCOPED_TRACE(::testing::Message() << "n_threads=" << n_threads);
      const report::DerateTable got =
          report::aging_derate_table(an, years, n_threads);
      EXPECT_EQ(got.years, want.years);
      EXPECT_EQ(got.policy_names, want.policy_names);
      ASSERT_EQ(got.factors.size(), want.factors.size());
      for (std::size_t p = 0; p < want.factors.size(); ++p) {
        EXPECT_EQ(got.factors[p], want.factors[p]) << "policy " << p;
      }
    }
  }
}

TEST(DifferentialTest, ElectrothermalSweepMatchesSerialReference) {
  const tech::Library lib;
  const netlist::Netlist nl = random_dag(10, 60, 13);
  const thermal::RcThermalModel model;
  const std::vector<bool> zeros(nl.num_inputs(), false);
  const std::vector<double> powers = {5.0, 20.0, 60.0, 100.0, 130.0};
  const thermal::ElectrothermalParams params{.replication = 1e5};

  const std::vector<thermal::OperatingPoint> want =
      testsupport::reference_operating_points(nl, lib, model, zeros, powers,
                                              params);
  for (int n_threads : {1, 2, 8}) {
    SCOPED_TRACE(::testing::Message() << "n_threads=" << n_threads);
    const std::vector<thermal::OperatingPoint> got =
        thermal::solve_operating_points(nl, lib, model, zeros, powers, params,
                                        n_threads);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "power " << powers[i]);
      EXPECT_EQ(got[i].temperature_k, want[i].temperature_k);
      EXPECT_EQ(got[i].leakage_w, want[i].leakage_w);
      EXPECT_EQ(got[i].iterations, want[i].iterations);
      EXPECT_EQ(got[i].converged, want[i].converged);
    }
  }
}

// --- SoA kernel vs scalar device model ------------------------------------

TEST(DifferentialTest, SoaKernelGateDvthMatchesScalarAcrossRandomCases) {
  const tech::Library lib;
  std::mt19937_64 rng(2026);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  int checked = 0;
  for (int rep = 0; rep < 10; ++rep) {
    const int n_inputs = 6 + 2 * (rep % 5);
    const int n_gates = 30 + 6 * rep;
    const netlist::Netlist nl =
        random_dag(n_inputs, n_gates, 100 + static_cast<std::uint64_t>(rep));

    aging::AgingConditions cond = fast_conditions();
    cond.schedule = nbti::ModeSchedule::from_ras(
        1.0 + 9.0 * u(rng), 9.0 * u(rng), 1000.0, 360.0 + 60.0 * u(rng),
        300.0 + 60.0 * u(rng));
    // Random PI probabilities with pinned 0/1 entries: the per-PMOS duty
    // cycles then span the whole range, including the exact DC (duty 1) and
    // never-stressed (duty 0) lanes the kernel treats specially.
    cond.input_sp.resize(nl.num_inputs());
    for (double& sp : cond.input_sp) {
      const double r = u(rng);
      sp = r < 0.15 ? 0.0 : (r > 0.85 ? 1.0 : u(rng));
    }
    // Every third case runs the exact per-cycle recursion: the kernel's
    // vector formula does not apply, so every non-DC lane must take the
    // scalar fixup path and still match bitwise.
    const bool exact = rep % 3 == 2;
    if (exact) cond.method = nbti::AcEvalMethod::ExactRecursion;
    aging::AgingConditions scalar_cond = cond;
    cond.use_soa_kernel = true;
    scalar_cond.use_soa_kernel = false;
    const aging::AgingAnalyzer soa(nl, lib, cond);
    const aging::AgingAnalyzer ref(nl, lib, scalar_cond);

    std::vector<bool> standby_vec(nl.num_inputs());
    for (std::size_t i = 0; i < standby_vec.size(); ++i) {
      standby_vec[i] = u(rng) < 0.5;
    }
    const std::vector<aging::StandbyPolicy> policies = {
        aging::StandbyPolicy::all_stressed(),
        aging::StandbyPolicy::all_relaxed(),
        aging::StandbyPolicy::from_vector(standby_vec)};

    // Horizons span t = 0, the exact-recursion head (small cycle counts) and
    // the telescoped tail; recursion cases stay below 1e7 s to keep the
    // per-cycle reference affordable.
    std::vector<double> horizons = {0.0};
    const double t_max_exp = exact ? 7.0 : 9.5;
    for (int h = 0; h < 3; ++h) {
      horizons.push_back(std::pow(10.0, 3.0 + (t_max_exp - 3.0) * u(rng)));
    }

    for (std::size_t p = 0; p < policies.size(); ++p) {
      for (double t : horizons) {
        SCOPED_TRACE(::testing::Message()
                     << "rep=" << rep << " policy=" << p << " t=" << t
                     << (exact ? " exact" : " closed"));
        const std::vector<double> got = soa.gate_dvth(policies[p], t);
        const std::vector<double> want = ref.gate_dvth(policies[p], t);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t g = 0; g < want.size(); ++g) {
          ASSERT_EQ(got[g], want[g]) << "gate " << g;
        }
        ++checked;
      }
    }
  }
  // The acceptance bar: at least 100 randomized kernel-vs-scalar sweeps,
  // every one an exact (bitwise) whole-circuit comparison.
  EXPECT_GE(checked, 100);
}

TEST(DifferentialTest, RdKernelMatchesScalarDeviceModelAcrossRandomContexts) {
  std::mt19937_64 rng(4242);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  int checked = 0;
  for (int rep = 0; rep < 6; ++rep) {
    const nbti::ModeSchedule schedule = nbti::ModeSchedule::from_ras(
        1.0 + 4.0 * u(rng), 9.0 * u(rng), 500.0 + 1000.0 * u(rng),
        360.0 + 60.0 * u(rng), 300.0 + 60.0 * u(rng));
    const nbti::AcEvalMethod method = rep % 2 == 0
                                          ? nbti::AcEvalMethod::ClosedForm
                                          : nbti::AcEvalMethod::ExactRecursion;
    const nbti::DeviceAging model(nbti::RdParams{}, method);

    std::vector<nbti::DeviceAging::StressContext> ctxs;
    // Handcrafted edge lanes first: full DC stress (duty 1), never stressed
    // (duty 0 / always_zero), and standby-only stress.
    nbti::DeviceStress dc;
    dc.active_stress_prob = 1.0;
    dc.standby = nbti::StandbyMode::Stressed;
    ctxs.push_back(model.make_context(dc, schedule));
    nbti::DeviceStress off;
    off.active_stress_prob = 0.0;
    off.standby = nbti::StandbyMode::Relaxed;
    ctxs.push_back(model.make_context(off, schedule));
    nbti::DeviceStress standby_only;
    standby_only.active_stress_prob = 0.0;
    standby_only.standby = nbti::StandbyMode::Stressed;
    ctxs.push_back(model.make_context(standby_only, schedule));
    for (int d = 0; d < 37; ++d) {
      nbti::DeviceStress s;
      const double r = u(rng);
      s.active_stress_prob = r < 0.1 ? 0.0 : (r > 0.9 ? 1.0 : u(rng));
      s.standby = u(rng) < 0.5 ? nbti::StandbyMode::Stressed
                               : nbti::StandbyMode::Relaxed;
      if (u(rng) < 0.25) s.standby_stress_fraction = u(rng);
      s.vgs = 0.9 + 0.3 * u(rng);
      s.vth0 = 0.18 + 0.08 * u(rng);
      ctxs.push_back(model.make_context(s, schedule));
    }
    const nbti::RdKernel kernel(model, ctxs);
    ASSERT_EQ(kernel.num_devices(), static_cast<int>(ctxs.size()));

    std::vector<double> out(ctxs.size());
    for (double t : {0.0, 3.0e3, 8.5e5, 4.0e7, 1.9e9}) {
      if (method == nbti::AcEvalMethod::ExactRecursion && t > 1.0e8) continue;
      SCOPED_TRACE(::testing::Message() << "rep=" << rep << " t=" << t);
      kernel.delta_vth(t, out);
      for (std::size_t i = 0; i < ctxs.size(); ++i) {
        ASSERT_EQ(out[i], model.delta_vth(ctxs[i], t)) << "device " << i;
        ++checked;
      }
    }
    // Sub-range evaluation addresses the same slots.
    std::vector<double> part(10);
    kernel.delta_vth(1.3e8, 7, 17, part);
    for (std::size_t i = 0; i < part.size(); ++i) {
      ASSERT_EQ(part[i], model.delta_vth(ctxs[7 + i], 1.3e8));
    }
  }
  EXPECT_GE(checked, 100);
}

// --- Interpolated dVth(t) tables vs exact sweeps ---------------------------

TEST(DifferentialTest, DvthTableMatchesExactSweepWithinDocumentedBound) {
  const tech::Library lib;
  std::mt19937_64 rng(99);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  int checked = 0;
  for (std::uint64_t seed : {21ULL, 22ULL, 23ULL}) {
    SCOPED_TRACE(::testing::Message() << "dag seed " << seed);
    const netlist::Netlist nl = random_dag(8, 50, seed);
    const aging::AgingAnalyzer an(nl, lib, fast_conditions());
    const aging::StandbyPolicy policy = aging::StandbyPolicy::all_stressed();
    for (int ppd : {6, 16}) {
      SCOPED_TRACE(::testing::Message() << "ppd=" << ppd);
      const std::shared_ptr<const nbti::DvthTable> table =
          an.dvth_table(policy, 1.0e5, 3.0e8, ppd);
      // 2x the single-curve bound: per-gate curves are maxima over several
      // device curves and may kink between nodes (see nbti/dvth_table.h).
      const double tol =
          2.0 * nbti::DvthTable::rel_error_bound(table->grid_ratio());
      std::vector<double> got(nl.num_gates());

      // Grid nodes are exact sample hits: bitwise equal to the sweep.
      for (double t : {table->front_time(), table->back_time()}) {
        table->values_at(t, got);
        const std::vector<double> want = an.gate_dvth(policy, t);
        for (std::size_t g = 0; g < want.size(); ++g) {
          ASSERT_EQ(got[g], want[g]) << "node t=" << t << " gate " << g;
        }
        ++checked;
      }
      // Random interior queries stay within the documented relative bound.
      for (int q = 0; q < 8; ++q) {
        const double t = 1.0e5 * std::pow(3.0e3, u(rng));
        SCOPED_TRACE(::testing::Message() << "t=" << t);
        table->values_at(t, got);
        const std::vector<double> want = an.gate_dvth(policy, t);
        for (std::size_t g = 0; g < want.size(); ++g) {
          ASSERT_LE(std::abs(got[g] - want[g]), tol * want[g] + 1e-15)
              << "gate " << g << " exact " << want[g] << " table " << got[g];
        }
        ++checked;
      }
    }
  }
  EXPECT_GE(checked, 50);
}

TEST(DifferentialTest, TableBackedFailureKeepsMttfDecisions) {
  const tech::Library lib;
  const netlist::Netlist nl = random_dag(10, 60, 5);
  const aging::AgingAnalyzer an(nl, lib, fast_conditions());
  const aging::StandbyPolicy policy = aging::StandbyPolicy::all_stressed();
  aging::FailureParams fp;
  fp.time_points = 16;
  fp.n_threads = 1;
  const aging::FailureReport want = aging::analyze_failure(an, policy, fp);

  fp.use_dvth_table = true;
  for (int ppd : {8, 16}) {
    SCOPED_TRACE(::testing::Message() << "ppd=" << ppd);
    fp.table_points_per_decade = ppd;
    const aging::FailureReport got = aging::analyze_failure(an, policy, fp);
    ASSERT_EQ(got.mechanisms.size(), want.mechanisms.size());
    for (std::size_t i = 0; i < want.mechanisms.size(); ++i) {
      const aging::MechanismMttf& g = got.mechanisms[i];
      const aging::MechanismMttf& w = want.mechanisms[i];
      ASSERT_EQ(g.name, w.name);
      if (g.name == "nbti") {
        // The table only feeds the NBTI series: its crossing times drift by
        // at most the interpolation tolerance, and no gate may flip between
        // failing and never-failing.
        ASSERT_EQ(g.gate_mttf.size(), w.gate_mttf.size());
        for (std::size_t gi = 0; gi < w.gate_mttf.size(); ++gi) {
          ASSERT_EQ(g.gate_mttf[gi] >= aging::kNeverFails,
                    w.gate_mttf[gi] >= aging::kNeverFails)
              << "gate " << gi;
          if (w.gate_mttf[gi] < aging::kNeverFails) {
            EXPECT_NEAR(g.gate_mttf[gi], w.gate_mttf[gi],
                        0.01 * w.gate_mttf[gi])
                << "gate " << gi;
          }
        }
        EXPECT_NEAR(g.system_mttf, w.system_mttf, 0.01 * w.system_mttf);
      } else {
        // Every other mechanism's evaluation is untouched by the knob.
        EXPECT_EQ(g.gate_mttf, w.gate_mttf);
        EXPECT_EQ(g.system_mttf, w.system_mttf);
      }
    }
    EXPECT_NEAR(got.system_mttf, want.system_mttf, 0.01 * want.system_mttf);
    ASSERT_EQ(got.failure_curve.size(), want.failure_curve.size());
    for (std::size_t i = 0; i < want.failure_curve.size(); ++i) {
      EXPECT_EQ(got.failure_curve[i].first, want.failure_curve[i].first);
      EXPECT_NEAR(got.failure_curve[i].second, want.failure_curve[i].second,
                  1e-3);
    }
  }
}

}  // namespace
}  // namespace nbtisim
