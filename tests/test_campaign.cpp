// Tests for the campaign engine (src/campaign/*): spec parsing, grid
// expansion and hashing, the resumable JSONL result store, parallel
// execution bit-identity, kill-resume behaviour, and summarize.

#include "campaign/engine.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "campaign/spec.h"
#include "campaign/store.h"
#include "report/report.h"

namespace nbtisim::campaign {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(static_cast<bool>(f)) << path;
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream f(path);
  f << text;
}

std::string temp_path(const std::string& name) {
  // gtest_discover_tests runs every TEST_F as its own process, and each
  // process's SetUpTestSuite rebuilds the fixture store — so under
  // `ctest -j` sibling processes would race on a shared filename unless
  // the path is process-unique.
  const std::string path = ::testing::TempDir() + "/" +
                           std::to_string(::getpid()) + "_" + name;
  std::remove(path.c_str());
  return path;
}

// A 2 netlists x 2 conditions x 2 analyses grid on tiny generated circuits:
// 8 tasks, every analysis kind cheap enough for CI.
CampaignSpec tiny_spec() {
  const char* text = R"({
    "name": "tiny",
    "netlists": ["dag:8x40@3", "dag:10x60@5"],
    "conditions": [
      {"ras": "1:9", "t_active": 400, "t_standby": 330, "years": 10},
      {"ras": "1:9", "t_active": 400, "t_standby": 400, "years": 10}
    ],
    "analyses": ["aging", "lifetime"],
    "params": {"sp_vectors": 256, "samples": 20, "seed": 7},
    "n_threads": 1,
    "shards": 1
  })";
  return spec_from_json(common::json::parse(text));
}

// --------------------------------------------------------------------------
// Spec parsing and expansion.

TEST(CampaignSpecTest, ParsesFullSpec) {
  const CampaignSpec spec = tiny_spec();
  EXPECT_EQ(spec.name, "tiny");
  ASSERT_EQ(spec.netlists.size(), 2u);
  ASSERT_EQ(spec.conditions.size(), 2u);
  ASSERT_EQ(spec.analyses.size(), 2u);
  EXPECT_EQ(spec.params.sp_vectors, 256);
  EXPECT_EQ(spec.params.samples, 20);
  EXPECT_DOUBLE_EQ(spec.conditions[1].t_standby, 400.0);
  EXPECT_EQ(spec.analyses[0], "aging");
}

TEST(CampaignSpecTest, DefaultsApply) {
  const CampaignSpec spec = spec_from_json(common::json::parse(
      R"({"netlists": ["c432"], "analyses": ["aging"]})"));
  EXPECT_EQ(spec.name, "campaign");
  ASSERT_EQ(spec.conditions.size(), 1u);  // default 1:9 @ 400/330 K, 10 y
  EXPECT_DOUBLE_EQ(spec.conditions[0].ras_standby, 9.0);
  EXPECT_EQ(spec.params.sp_vectors, 1024);
}

TEST(CampaignSpecTest, RejectsBadSpecs) {
  using common::json::parse;
  EXPECT_THROW(spec_from_json(parse(R"({"analyses": ["aging"]})")),
               std::runtime_error);  // missing netlists
  EXPECT_THROW(spec_from_json(parse(
                   R"({"netlists": ["c432"], "analyses": ["frobnicate"]})")),
               std::invalid_argument);  // unknown analysis
  EXPECT_THROW(spec_from_json(parse(
                   R"({"netlists": [], "analyses": ["aging"]})")),
               std::invalid_argument);  // empty axis
  EXPECT_THROW(
      spec_from_json(parse(
          R"({"netlists": ["c432"], "analyses": ["aging"],
              "conditions": [{"ras": "ten-to-one"}]})")),
      std::invalid_argument);  // bad ras
  EXPECT_THROW(
      spec_from_json(parse(
          R"({"netlists": ["c432"], "analyses": ["aging"],
              "params": {"sp_vectors": 1}})")),
      std::invalid_argument);  // out-of-range param
}

TEST(CampaignSpecTest, ExpandBuildsTheFullGridWithStableHashes) {
  const CampaignSpec spec = tiny_spec();
  const std::vector<Task> grid = expand(spec);
  ASSERT_EQ(grid.size(), 8u);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(grid[i].index, static_cast<int>(i));
    EXPECT_EQ(grid[i].hash.size(), 16u);
    for (std::size_t j = i + 1; j < grid.size(); ++j) {
      EXPECT_NE(grid[i].hash, grid[j].hash) << i << " vs " << j;
    }
  }
  // Hashes are content hashes: same spec -> same hashes...
  EXPECT_EQ(expand(tiny_spec())[0].hash, grid[0].hash);
  // ...and a shared engine parameter (sp_vectors feeds every analysis's
  // signal stats) changes every hash. Per-analysis knobs touch only their
  // own analysis's hashes — see test_analysis.cpp.
  CampaignSpec changed = tiny_spec();
  changed.params.sp_vectors = 512;
  const std::vector<Task> other = expand(changed);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NE(other[i].hash, grid[i].hash);
  }
}

TEST(CampaignSpecTest, NetlistSpecForms) {
  EXPECT_EQ(load_campaign_netlist("c432", false).name(), "c432");
  const netlist::Netlist dag = load_campaign_netlist("dag:8x40@3", false);
  EXPECT_EQ(dag.num_inputs(), 8);
  EXPECT_EQ(dag.name(), "dag_8x40_3");
  EXPECT_THROW(load_campaign_netlist("dag:8x40", false),
               std::invalid_argument);
  EXPECT_THROW(load_campaign_netlist("/no/such/file.bench", false),
               std::runtime_error);
}

// --------------------------------------------------------------------------
// Result store.

TEST(ResultStoreTest, LoadsAppendsAndDetectsDuplicates) {
  const std::string path = temp_path("store_basic.jsonl");
  {
    ResultStore store(path);
    EXPECT_EQ(store.size(), 0u);
    std::vector<common::json::Value> rows(1);
    rows[0].set("hash", "abc");
    rows[0].set("x", 1.0);
    store.append(rows);
    EXPECT_TRUE(store.contains("abc"));
    EXPECT_THROW(store.append(rows), std::invalid_argument);
  }
  ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_TRUE(reloaded.contains("abc"));
  EXPECT_FALSE(reloaded.contains("def"));
}

TEST(ResultStoreTest, DiscardsTruncatedFinalLine) {
  const std::string path = temp_path("store_truncated.jsonl");
  write_text(path,
             "{\"hash\":\"aaa\",\"x\":1}\n"
             "{\"hash\":\"bbb\",\"x\":2}\n"
             "{\"hash\":\"ccc\",\"x\"");  // killed mid-append
  const ResultStore store(path);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.contains("bbb"));
  EXPECT_FALSE(store.contains("ccc"));
}

TEST(ResultStoreTest, ThrowsOnNonTrailingCorruption) {
  const std::string path = temp_path("store_corrupt.jsonl");
  write_text(path,
             "{\"hash\":\"aaa\"}\n"
             "not json at all\n"
             "{\"hash\":\"bbb\"}\n");
  EXPECT_THROW(ResultStore{path}, std::runtime_error);
}

// Regression: append used to insert the row hashes into the in-memory index
// *before* attempting the disk write, so a failed write (ENOSPC, unwritable
// path) poisoned the store — retrying the very same rows then threw a
// spurious "duplicate row hash". The index must only change after the flush
// succeeds.
TEST(ResultStoreTest, FailedAppendLeavesStoreRetryable) {
  const std::string dir = temp_path("store_retry_dir");
  const std::string path = dir + "/store.jsonl";
  ResultStore store(path);  // missing file: empty store, nothing created yet

  std::vector<common::json::Value> rows(2);
  rows[0].set("hash", "aaa");
  rows[0].set("x", 1.0);
  rows[1].set("hash", "bbb");
  rows[1].set("x", 2.0);

  // The parent directory does not exist, so the write itself must fail...
  EXPECT_THROW(store.append(rows), std::runtime_error);
  // ...and must not have half-committed anything in memory.
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.contains("aaa"));

  // After the fault clears, the *same* batch goes through.
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  store.append(rows);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.contains("aaa"));
  EXPECT_TRUE(store.contains("bbb"));

  const ResultStore reloaded(path);
  EXPECT_EQ(reloaded.size(), 2u);
}

// --------------------------------------------------------------------------
// Sharded store.

common::json::Value row_with_hash(const std::string& hash) {
  common::json::Value row;
  row.set("hash", hash);
  row.set("x", 1.0);
  return row;
}

TEST(ShardedStoreTest, RoutesRowsByHashPrefix) {
  const std::string path = temp_path("sharded.jsonl");
  ShardedStore store(path, 16);
  EXPECT_EQ(store.shard_of("0abc"), 0);
  EXPECT_EQ(store.shard_of("fabc"), 15);
  EXPECT_EQ(store.shard_of("7abc"), 7);

  std::vector<common::json::Value> rows;
  rows.push_back(row_with_hash("0aaaaaaaaaaaaaaa"));
  rows.push_back(row_with_hash("0bbbbbbbbbbbbbbb"));
  rows.push_back(row_with_hash("faaaaaaaaaaaaaaa"));
  store.append(rows);
  EXPECT_EQ(store.size(), 3u);

  // Rows landed in their prefix shards; nothing at the base path.
  EXPECT_EQ(ShardedStore::shard_path("out/store.jsonl", 0),
            "out/store.0.jsonl");
  EXPECT_EQ(ShardedStore::shard_path("store", 15), "store.f");
  std::ifstream base(path);
  EXPECT_FALSE(static_cast<bool>(base));
  const ResultStore shard0(ShardedStore::shard_path(path, 0));
  EXPECT_EQ(shard0.size(), 2u);
  const ResultStore shard15(ShardedStore::shard_path(path, 15));
  EXPECT_EQ(shard15.size(), 1u);

  // A reopened store sees the union and rejects duplicates anywhere.
  ShardedStore reloaded(path, 16);
  EXPECT_EQ(reloaded.size(), 3u);
  EXPECT_TRUE(reloaded.contains("0bbbbbbbbbbbbbbb"));
  std::vector<common::json::Value> dup;
  dup.push_back(row_with_hash("faaaaaaaaaaaaaaa"));
  EXPECT_THROW(reloaded.append(dup), std::invalid_argument);
}

TEST(ShardedStoreTest, SingleShardIsTheLegacyLayout) {
  const std::string path = temp_path("sharded_legacy.jsonl");
  ShardedStore store(path, 1);
  std::vector<common::json::Value> rows;
  rows.push_back(row_with_hash("0aaaaaaaaaaaaaaa"));
  rows.push_back(row_with_hash("faaaaaaaaaaaaaaa"));
  store.append(rows);
  const ResultStore legacy(path);  // everything is in the base file itself
  EXPECT_EQ(legacy.size(), 2u);
}

TEST(ShardedStoreTest, MergesAcrossLayoutChanges) {
  const std::string path = temp_path("sharded_merge.jsonl");
  {
    ShardedStore wide(path, 16);
    std::vector<common::json::Value> rows;
    rows.push_back(row_with_hash("1aaaaaaaaaaaaaaa"));
    rows.push_back(row_with_hash("eaaaaaaaaaaaaaaa"));
    wide.append(rows);
  }
  {
    // Reopened with 1 shard: both rows from the 16-shard layout are seen,
    // new rows go to the base file.
    ShardedStore narrow(path, 1);
    EXPECT_EQ(narrow.size(), 2u);
    EXPECT_TRUE(narrow.contains("eaaaaaaaaaaaaaaa"));
    std::vector<common::json::Value> rows;
    rows.push_back(row_with_hash("2aaaaaaaaaaaaaaa"));
    narrow.append(rows);
  }
  // And back to 16 shards: base + shard files all merge.
  const ShardedStore again(path, 16);
  EXPECT_EQ(again.size(), 3u);
  EXPECT_TRUE(again.contains("1aaaaaaaaaaaaaaa"));
  EXPECT_TRUE(again.contains("2aaaaaaaaaaaaaaa"));
  EXPECT_TRUE(again.contains("eaaaaaaaaaaaaaaa"));
  EXPECT_TRUE(ShardedStore::exists(path));
}

TEST(ShardedStoreTest, ThrowsOnNonTrailingShardCorruption) {
  const std::string path = temp_path("sharded_corrupt.jsonl");
  {
    ShardedStore store(path, 16);
    std::vector<common::json::Value> rows;
    rows.push_back(row_with_hash("3aaaaaaaaaaaaaaa"));
    rows.push_back(row_with_hash("3bbbbbbbbbbbbbbb"));
    store.append(rows);
  }
  const std::string shard3 = ShardedStore::shard_path(path, 3);
  write_text(shard3,
             "{\"hash\":\"3aaaaaaaaaaaaaaa\",\"x\":1}\n"
             "garbage\n"
             "{\"hash\":\"3bbbbbbbbbbbbbbb\",\"x\":1}\n");
  EXPECT_THROW((ShardedStore{path, 16}), std::runtime_error);
}

TEST(ShardedStoreTest, RejectsBadShardCounts) {
  const std::string path = temp_path("sharded_bad.jsonl");
  EXPECT_THROW((ShardedStore{path, 0}), std::invalid_argument);
  EXPECT_THROW((ShardedStore{path, 3}), std::invalid_argument);
  EXPECT_THROW((ShardedStore{path, 32}), std::invalid_argument);
  EXPECT_FALSE(ShardedStore::exists(path));
}

// --------------------------------------------------------------------------
// End-to-end runs. One fixture runs the tiny campaign once serially and
// shares the file with the assertions below (runs cost a few seconds).

class CampaignRunTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new CampaignSpec(tiny_spec());
    path_serial_ = temp_path("campaign_serial.jsonl");
    const RunStats stats = run_campaign(*spec_, path_serial_);
    ASSERT_EQ(stats.total, 8);
    ASSERT_EQ(stats.skipped, 0);
    ASSERT_EQ(stats.executed, 8);
  }

  static void TearDownTestSuite() {
    delete spec_;
    spec_ = nullptr;
  }

  static CampaignSpec* spec_;
  static std::string path_serial_;
};

CampaignSpec* CampaignRunTest::spec_ = nullptr;
std::string CampaignRunTest::path_serial_;

TEST_F(CampaignRunTest, StoreHasOneRowPerTaskInGridOrder) {
  const ResultStore store(path_serial_);
  const std::vector<Task> grid = expand(*spec_);
  ASSERT_EQ(store.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(store.rows()[i].at("hash").as_string(), grid[i].hash);
    EXPECT_EQ(store.rows()[i].at("analysis").as_string(), grid[i].analysis);
  }
}

TEST_F(CampaignRunTest, BitIdenticalAcrossThreadCounts) {
  CampaignSpec parallel = *spec_;
  parallel.n_threads = 8;
  const std::string path = temp_path("campaign_parallel.jsonl");
  const RunStats stats = run_campaign(parallel, path);
  EXPECT_EQ(stats.executed, 8);
  EXPECT_EQ(read_file(path), read_file(path_serial_));
}

TEST_F(CampaignRunTest, RerunSkipsEverythingAndLeavesFileUntouched) {
  const std::string before = read_file(path_serial_);
  const RunStats stats = run_campaign(*spec_, path_serial_);
  EXPECT_EQ(stats.total, 8);
  EXPECT_EQ(stats.skipped, 8);
  EXPECT_EQ(stats.executed, 0);
  EXPECT_EQ(read_file(path_serial_), before);
}

TEST_F(CampaignRunTest, ResumeAfterDeletedLastLineReExecutesOnlyThatTask) {
  const std::string full = read_file(path_serial_);
  // Simulate a killed run: drop the final row (incl. its newline).
  const std::size_t cut = full.find_last_of('\n', full.size() - 2);
  ASSERT_NE(cut, std::string::npos);
  const std::string path = temp_path("campaign_resume.jsonl");
  write_text(path, full.substr(0, cut + 1));

  const RunStats stats = run_campaign(*spec_, path);
  EXPECT_EQ(stats.skipped, 7);
  EXPECT_EQ(stats.executed, 1);
  // The missing row is re-appended at the end — which is also its grid
  // position, so the file is byte-identical to the uninterrupted run.
  EXPECT_EQ(read_file(path), full);
}

TEST_F(CampaignRunTest, ResumeAfterTruncatedLastLineRecovers) {
  const std::string full = read_file(path_serial_);
  const std::string path = temp_path("campaign_killed.jsonl");
  write_text(path, full.substr(0, full.size() - 10));  // mid-row kill

  const RunStats stats = run_campaign(*spec_, path);
  EXPECT_EQ(stats.skipped, 7);
  EXPECT_EQ(stats.executed, 1);
  EXPECT_EQ(read_file(path), full);
}

TEST_F(CampaignRunTest, SummarizeBuildsOneRowPerTask) {
  const report::Table t = summarize(*spec_, path_serial_);
  ASSERT_EQ(t.rows.size(), 8u);
  // Grid coordinates + union of aging and lifetime metric names.
  ASSERT_GE(t.headers.size(), 6u);
  EXPECT_EQ(t.headers[0], "netlist");
  EXPECT_EQ(t.headers[5], "analysis");
  const auto has = [&](const std::string& h) {
    return std::find(t.headers.begin(), t.headers.end(), h) != t.headers.end();
  };
  EXPECT_TRUE(has("worst_pct"));
  EXPECT_TRUE(has("median_years"));
  // Aging rows have no lifetime metrics: those cells are empty.
  EXPECT_EQ(t.rows[0][5], "aging");
  bool found_empty = false;
  for (const std::string& cell : t.rows[0]) found_empty |= cell.empty();
  EXPECT_TRUE(found_empty);
  // The table serializes cleanly.
  EXPECT_FALSE(report::to_csv(t).empty());
}

TEST_F(CampaignRunTest, SummarizeOfPartialStoreCoversStoredTasksOnly) {
  const std::string full = read_file(path_serial_);
  const std::size_t cut = full.find_last_of('\n', full.size() - 2);
  const std::string path = temp_path("campaign_partial_sum.jsonl");
  write_text(path, full.substr(0, cut + 1));
  const report::Table t = summarize(*spec_, path);
  EXPECT_EQ(t.rows.size(), 7u);
}

// The IVC and ST kinds run through the same machinery; cover them on one
// small cell so every Analysis enumerator executes in CI.
TEST(CampaignAnalysisTest, IvcAndStKindsExecute) {
  const char* text = R"({
    "name": "kinds",
    "netlists": ["dag:8x40@3"],
    "analyses": ["ivc", "st"],
    "params": {"sp_vectors": 256, "population": 8, "max_rounds": 3},
    "n_threads": 1,
    "shards": 1
  })";
  const CampaignSpec spec = spec_from_json(common::json::parse(text));
  const std::string path = temp_path("campaign_kinds.jsonl");
  const RunStats stats = run_campaign(spec, path);
  EXPECT_EQ(stats.executed, 2);
  const ResultStore store(path);
  ASSERT_EQ(store.size(), 2u);
  const common::json::Value& ivc = store.rows()[0];
  EXPECT_EQ(ivc.at("analysis").as_string(), "ivc");
  EXPECT_GT(ivc.at("metrics").at("worst_pct").as_number(), 0.0);
  EXPECT_GT(ivc.at("metrics").at("n_mlv").as_number(), 0.0);
  const common::json::Value& st = store.rows()[1];
  EXPECT_GT(st.at("metrics").at("wl_nbti_aware").as_number(),
            st.at("metrics").at("wl_base").as_number());
}

// --------------------------------------------------------------------------
// Sharded end-to-end runs. One fixture runs the tiny campaign once with the
// 16-shard layout serially; the assertions compare against it.

class ShardedCampaignTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    spec_ = new CampaignSpec(tiny_spec());
    spec_->shards = 16;
    path_ = temp_path("sharded_campaign.jsonl");
    const RunStats stats = run_campaign(*spec_, path_);
    ASSERT_EQ(stats.executed, 8);
  }

  static void TearDownTestSuite() {
    delete spec_;
    spec_ = nullptr;
  }

  // The shard files actually written by the fixture run (8 distinct task
  // hashes rarely cover all 16 nibbles).
  static std::vector<std::string> shard_files() {
    std::vector<std::string> out;
    for (int h = 0; h < ShardedStore::kMaxShards; ++h) {
      const std::string sp = ShardedStore::shard_path(path_, h);
      if (std::ifstream(sp)) out.push_back(sp);
    }
    return out;
  }

  static CampaignSpec* spec_;
  static std::string path_;
};

CampaignSpec* ShardedCampaignTest::spec_ = nullptr;
std::string ShardedCampaignTest::path_;

TEST_F(ShardedCampaignTest, ShardFilesBitIdenticalAcrossThreadCounts) {
  CampaignSpec parallel = *spec_;
  parallel.n_threads = 4;
  const std::string path = temp_path("sharded_campaign_par.jsonl");
  const RunStats stats = run_campaign(parallel, path);
  EXPECT_EQ(stats.executed, 8);

  const std::vector<std::string> serial_shards = shard_files();
  ASSERT_FALSE(serial_shards.empty());
  int compared = 0;
  for (int h = 0; h < ShardedStore::kMaxShards; ++h) {
    const std::string a = ShardedStore::shard_path(path_, h);
    const std::string b = ShardedStore::shard_path(path, h);
    const bool have_a = static_cast<bool>(std::ifstream(a));
    ASSERT_EQ(have_a, static_cast<bool>(std::ifstream(b))) << h;
    if (!have_a) continue;
    EXPECT_EQ(read_file(b), read_file(a)) << "shard " << h;
    ++compared;
  }
  EXPECT_EQ(compared, static_cast<int>(serial_shards.size()));
}

TEST_F(ShardedCampaignTest, ResumeAfterTruncatedShardReExecutesOnlyItsTask) {
  // Copy the fixture's shards, then kill the last row of one shard mid-line.
  const std::string path = temp_path("sharded_campaign_resume.jsonl");
  int victim = -1;
  for (int h = 0; h < ShardedStore::kMaxShards; ++h) {
    const std::string src = ShardedStore::shard_path(path_, h);
    if (!std::ifstream(src)) continue;
    write_text(ShardedStore::shard_path(path, h), read_file(src));
    if (victim < 0) victim = h;
  }
  ASSERT_GE(victim, 0);
  const std::string victim_path = ShardedStore::shard_path(path, victim);
  const std::string victim_full = read_file(victim_path);
  write_text(victim_path, victim_full.substr(0, victim_full.size() - 7));

  const RunStats stats = run_campaign(*spec_, path);
  // Only the task whose row was cut re-runs; it re-appends at the victim
  // shard's tail — its original position.
  EXPECT_EQ(stats.executed, 1);
  EXPECT_EQ(stats.skipped, 7);
  // Every shard file ends up byte-identical to the uninterrupted run.
  for (int h = 0; h < ShardedStore::kMaxShards; ++h) {
    const std::string src = ShardedStore::shard_path(path_, h);
    if (std::ifstream(src)) {
      EXPECT_EQ(read_file(ShardedStore::shard_path(path, h)), read_file(src))
          << "shard " << h;
    }
  }
}

TEST_F(ShardedCampaignTest, SummarizeMatchesSingleFileLayout) {
  // The same campaign through the legacy layout must summarize to the same
  // table, row for row.
  CampaignSpec legacy = *spec_;
  legacy.shards = 1;
  const std::string path = temp_path("sharded_campaign_legacy.jsonl");
  run_campaign(legacy, path);

  SummaryStats sharded_stats, legacy_stats;
  const report::Table sharded = summarize(*spec_, path_, &sharded_stats);
  const report::Table single = summarize(legacy, path, &legacy_stats);
  EXPECT_EQ(report::to_csv(sharded), report::to_csv(single));
  EXPECT_EQ(sharded_stats.summarized, 8);
  EXPECT_EQ(legacy_stats.summarized, 8);
  EXPECT_EQ(sharded_stats.stale, 0);
}

TEST_F(ShardedCampaignTest, ResumesAcrossShardLayoutChange) {
  // Rows written under the 16-shard layout are found when the spec later
  // says 4 shards: nothing re-executes, and summarize still sees all rows.
  CampaignSpec narrower = *spec_;
  narrower.shards = 4;
  const std::string path = temp_path("sharded_campaign_relayout.jsonl");
  for (int h = 0; h < ShardedStore::kMaxShards; ++h) {
    const std::string src = ShardedStore::shard_path(path_, h);
    if (std::ifstream(src)) {
      write_text(ShardedStore::shard_path(path, h), read_file(src));
    }
  }
  const RunStats stats = run_campaign(narrower, path);
  EXPECT_EQ(stats.executed, 0);
  EXPECT_EQ(stats.skipped, 8);
  const report::Table t = summarize(narrower, path);
  EXPECT_EQ(t.rows.size(), 8u);
}

// Two campaigns running at once share the process-wide pool; each must
// still produce the same bytes as its own serial run.
TEST_F(ShardedCampaignTest, ConcurrentCampaignsStayBitIdentical) {
  CampaignSpec a = *spec_;
  a.n_threads = 4;
  CampaignSpec b = tiny_spec();  // legacy layout, different store
  b.n_threads = 4;
  const std::string path_a = temp_path("sharded_campaign_conc_a.jsonl");
  const std::string path_b = temp_path("sharded_campaign_conc_b.jsonl");

  RunStats stats_a, stats_b;
  std::thread ta([&] { stats_a = run_campaign(a, path_a); });
  std::thread tb([&] { stats_b = run_campaign(b, path_b); });
  ta.join();
  tb.join();
  EXPECT_EQ(stats_a.executed, 8);
  EXPECT_EQ(stats_b.executed, 8);

  // Campaign A against the sharded fixture...
  for (int h = 0; h < ShardedStore::kMaxShards; ++h) {
    const std::string src = ShardedStore::shard_path(path_, h);
    if (std::ifstream(src)) {
      EXPECT_EQ(read_file(ShardedStore::shard_path(path_a, h)),
                read_file(src))
          << "shard " << h;
    }
  }
  // ...campaign B against a fresh serial single-file run.
  CampaignSpec b_serial = tiny_spec();
  const std::string path_ref = temp_path("sharded_campaign_conc_ref.jsonl");
  run_campaign(b_serial, path_ref);
  EXPECT_EQ(read_file(path_b), read_file(path_ref));
}

}  // namespace
}  // namespace nbtisim::campaign
