// Tests for the parallel aging/simulation pipeline (src/common/pool.h and
// the n_threads knobs): the shared work pool (index coverage, nested-serial
// rule, exception propagation, concurrent loops), determinism across thread
// counts, the honored vector count of estimate_signal_stats, and the
// AgingConditions::input_sp override.

#include "common/pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <thread>

#include "aging/aging.h"
#include "netlist/generators.h"
#include "sim/simulator.h"

namespace nbtisim {
namespace {

using netlist::Netlist;
using netlist::NodeId;
using tech::GateFn;

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int n_threads : {1, 2, 8}) {
    std::vector<int> hits(1000, 0);
    common::parallel_for(1000, n_threads,
                         [&](int i) { ++hits[i]; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000)
        << n_threads;
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelForTest, HandlesEmptyAndTinyRanges) {
  std::atomic<int> count{0};
  common::parallel_for(0, 8, [&](int) { ++count; });
  EXPECT_EQ(count.load(), 0);
  common::parallel_for(1, 8, [&](int) { ++count; });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, PropagatesFirstException) {
  for (int n_threads : {1, 4}) {
    EXPECT_THROW(
        common::parallel_for(100, n_threads,
                             [&](int i) {
                               if (i == 37) throw std::runtime_error("boom");
                             }),
        std::runtime_error)
        << n_threads;
  }
}

TEST(ParallelForTest, ResolveThreadsHonorsExplicitCounts) {
  EXPECT_EQ(common::resolve_threads(3), 3);
  EXPECT_GE(common::resolve_threads(0), 1);
  EXPECT_GE(common::resolve_threads(-1), 1);
}

TEST(ParallelForTest, GrainCoversEveryIndexExactlyOnce) {
  for (int grain : {1, 7, 64, 1000}) {
    std::vector<int> hits(1000, 0);
    common::parallel_for_grain(1000, 4, grain, [&](int i) { ++hits[i]; });
    for (int h : hits) EXPECT_EQ(h, 1) << "grain " << grain;
  }
}

TEST(ParallelForTest, GrainPropagatesExceptions) {
  EXPECT_THROW(common::parallel_for_grain(
                   256, 4, 16,
                   [&](int i) {
                     if (i == 200) throw std::logic_error("boom");
                   }),
               std::logic_error);
}

// --------------------------------------------------------------------------
// The shared work pool itself.

TEST(WorkPoolTest, NestedParallelForRunsSerialOnTheIssuingWorker) {
  ASSERT_FALSE(common::WorkPool::inside_task());
  std::array<std::atomic<int>, 4> inner_hits{};
  std::array<bool, 4> saw_inside{};
  std::array<bool, 4> inner_stayed_on_thread{};
  common::parallel_for(4, 4, [&](int outer) {
    saw_inside[outer] = common::WorkPool::inside_task();
    const std::thread::id me = std::this_thread::get_id();
    bool same_thread = true;
    common::parallel_for(100, 8, [&](int) {
      same_thread &= std::this_thread::get_id() == me;
      ++inner_hits[outer];
    });
    inner_stayed_on_thread[outer] = same_thread;
  });
  EXPECT_FALSE(common::WorkPool::inside_task());
  for (int i = 0; i < 4; ++i) {
    // Each outer body ran as a pool task (or on the participating caller,
    // which counts the same) and its inner loop ran serially on it.
    EXPECT_TRUE(saw_inside[i]) << i;
    EXPECT_TRUE(inner_stayed_on_thread[i]) << i;
    EXPECT_EQ(inner_hits[i].load(), 100) << i;
  }
}

TEST(WorkPoolTest, WorkersGrowOnDemandAndAreReused) {
  common::parallel_for(64, 4, [](int) {});
  const int after_four = common::WorkPool::global().workers();
  EXPECT_GE(after_four, 3);  // caller participates; k-1 workers suffice
  common::parallel_for(64, 2, [](int) {});
  EXPECT_EQ(common::WorkPool::global().workers(), after_four);  // no shrink
  common::parallel_for(64, 6, [](int) {});
  EXPECT_GE(common::WorkPool::global().workers(), 5);
}

// Two loops submitted from two threads share the pool's workers yet stay
// independent: every index of each loop runs exactly once and each loop's
// per-index results are what a serial run produces.
TEST(WorkPoolTest, ConcurrentLoopsAreDeterministic) {
  constexpr int kN = 4000;
  std::vector<double> serial(kN);
  for (int i = 0; i < kN; ++i) serial[i] = std::sqrt(i) * 3.25;

  std::vector<double> a(kN, -1.0), b(kN, -1.0);
  std::thread ta([&] {
    common::parallel_for(kN, 4, [&](int i) { a[i] = std::sqrt(i) * 3.25; });
  });
  std::thread tb([&] {
    common::parallel_for(kN, 4, [&](int i) { b[i] = std::sqrt(i) * 3.25; });
  });
  ta.join();
  tb.join();
  EXPECT_EQ(a, serial);
  EXPECT_EQ(b, serial);
}

TEST(WorkPoolTest, ExceptionInOneLoopLeavesPoolUsable) {
  EXPECT_THROW(common::parallel_for(
                   100, 4,
                   [&](int i) {
                     if (i == 0) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  std::vector<int> hits(100, 0);
  common::parallel_for(100, 4, [&](int i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(SignalStatsParallelTest, BitIdenticalAcrossThreadCounts) {
  const Netlist nl = netlist::iscas85_like("c432");
  const std::vector<double> sp(nl.num_inputs(), 0.5);
  const sim::SignalStats serial =
      sim::estimate_signal_stats(nl, sp, 4096, 7, 1);
  for (int n_threads : {2, 8, 0}) {
    const sim::SignalStats par =
        sim::estimate_signal_stats(nl, sp, 4096, 7, n_threads);
    EXPECT_EQ(serial.probability, par.probability) << n_threads;
    EXPECT_EQ(serial.activity, par.activity) << n_threads;
    EXPECT_EQ(serial.n_vectors, par.n_vectors) << n_threads;
  }
}

TEST(SignalStatsParallelTest, BitIdenticalForPartialWordCounts) {
  const Netlist nl = netlist::make_alu("alu", 4);
  const std::vector<double> sp(nl.num_inputs(), 0.3);
  for (int n_vectors : {100, 1000}) {
    const sim::SignalStats serial =
        sim::estimate_signal_stats(nl, sp, n_vectors, 11, 1);
    for (int n_threads : {2, 8}) {
      const sim::SignalStats par =
          sim::estimate_signal_stats(nl, sp, n_vectors, 11, n_threads);
      EXPECT_EQ(serial.probability, par.probability)
          << n_vectors << "/" << n_threads;
      EXPECT_EQ(serial.activity, par.activity)
          << n_vectors << "/" << n_threads;
    }
  }
}

// Regression for the padding bug: n_vectors used to be silently rounded up
// to a multiple of 64, with probabilities/activities computed over the
// padded count.
TEST(SignalStatsParallelTest, HonorsVectorCountNotDivisibleBy64) {
  Netlist nl("t");
  const NodeId a = nl.add_input("a");
  const NodeId b = nl.add_input("b");
  const NodeId zero = nl.add_gate(GateFn::Xor, {a, a}, "zero");
  const NodeId one = nl.add_gate(GateFn::Xnor, {b, b}, "one");
  nl.mark_output(zero);
  nl.mark_output(one);

  const std::vector<double> sp{0.5, 0.5};
  const sim::SignalStats st = sim::estimate_signal_stats(nl, sp, 100, 3);
  EXPECT_EQ(st.n_vectors, 100);
  EXPECT_DOUBLE_EQ(st.probability[zero], 0.0);
  EXPECT_DOUBLE_EQ(st.probability[one], 1.0);
  EXPECT_DOUBLE_EQ(st.activity[zero], 0.0);
  EXPECT_DOUBLE_EQ(st.activity[one], 0.0);

  // Every probability must be an exact multiple of 1/100 — the denominator
  // is the requested count, not the padded word count.
  for (int n = 0; n < nl.num_nodes(); ++n) {
    const double scaled = st.probability[n] * 100.0;
    EXPECT_NEAR(scaled, std::round(scaled), 1e-9) << n;
  }
}

TEST(SignalStatsParallelTest, SingleVectorHasZeroActivity) {
  const Netlist nl = netlist::make_parity_tree("p", 4);
  const sim::SignalStats st =
      sim::estimate_signal_stats(nl, std::vector<double>(4, 0.5), 1, 1);
  EXPECT_EQ(st.n_vectors, 1);
  for (int n = 0; n < nl.num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(st.activity[n], 0.0);
    EXPECT_TRUE(st.probability[n] == 0.0 || st.probability[n] == 1.0);
  }
}

class AgingParallelTest : public ::testing::Test {
 protected:
  tech::Library lib_;
  netlist::Netlist c432_ = netlist::iscas85_like("c432");

  aging::AgingConditions cond(int n_threads) const {
    aging::AgingConditions c;
    c.sp_vectors = 1024;
    c.n_threads = n_threads;
    return c;
  }
};

TEST_F(AgingParallelTest, GateDvthBitIdenticalAcrossThreadCounts) {
  const aging::AgingAnalyzer serial(c432_, lib_, cond(1));
  std::vector<bool> v(c432_.num_inputs());
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = (i % 2) == 0;
  for (const auto& policy :
       {aging::StandbyPolicy::all_stressed(),
        aging::StandbyPolicy::from_vector(v)}) {
    const std::vector<double> ref = serial.gate_dvth(policy);
    for (int n_threads : {2, 8}) {
      const aging::AgingAnalyzer par(c432_, lib_, cond(n_threads));
      EXPECT_EQ(ref, par.gate_dvth(policy)) << n_threads;
    }
  }
}

TEST_F(AgingParallelTest, DegradationSeriesMatchesAnalyzePerPoint) {
  // The cached-descriptor fast path must agree with point-by-point analyze().
  const aging::AgingAnalyzer an(c432_, lib_, cond(8));
  const auto policy = aging::StandbyPolicy::all_stressed();
  const auto series = an.degradation_series(policy, 1e6, 3e8, 5);
  ASSERT_EQ(series.size(), 5u);
  for (const auto& [t, pct] : series) {
    EXPECT_DOUBLE_EQ(pct, an.analyze(policy, t).percent()) << t;
  }
}

TEST_F(AgingParallelTest, CacheInvalidationKeepsResults) {
  const aging::AgingAnalyzer an(c432_, lib_, cond(2));
  const auto policy = aging::StandbyPolicy::all_relaxed();
  const std::vector<double> before = an.gate_dvth(policy);
  an.invalidate_stress_cache();
  EXPECT_EQ(before, an.gate_dvth(policy));
}

TEST_F(AgingParallelTest, InputSpOverrideChangesStress) {
  aging::AgingConditions uniform = cond(1);
  aging::AgingConditions skewed = cond(1);
  skewed.input_sp.assign(c432_.num_inputs(), 0.95);
  const aging::AgingAnalyzer an_u(c432_, lib_, uniform);
  const aging::AgingAnalyzer an_s(c432_, lib_, skewed);
  // PIs held at 1 with 95% probability relax the PMOS devices they drive;
  // total circuit stress under the active-phase component must differ.
  EXPECT_NE(an_u.gate_dvth(aging::StandbyPolicy::all_relaxed()),
            an_s.gate_dvth(aging::StandbyPolicy::all_relaxed()));
}

TEST_F(AgingParallelTest, ExplicitHalfInputSpMatchesDefault) {
  aging::AgingConditions explicit_half = cond(1);
  explicit_half.input_sp.assign(c432_.num_inputs(), 0.5);
  const aging::AgingAnalyzer a(c432_, lib_, cond(1));
  const aging::AgingAnalyzer b(c432_, lib_, explicit_half);
  EXPECT_EQ(a.signal_stats().probability, b.signal_stats().probability);
}

TEST_F(AgingParallelTest, InputSpSizeMismatchThrows) {
  aging::AgingConditions bad = cond(1);
  bad.input_sp.assign(3, 0.5);
  EXPECT_THROW(aging::AgingAnalyzer(c432_, lib_, bad), std::invalid_argument);
}

TEST_F(AgingParallelTest, InputSpRangeIsValidated) {
  aging::AgingConditions bad = cond(1);
  bad.input_sp.assign(c432_.num_inputs(), 1.5);
  EXPECT_THROW(aging::AgingAnalyzer(c432_, lib_, bad), std::invalid_argument);
}

}  // namespace
}  // namespace nbtisim
