// Unit tests for the characterized standard-cell library (src/tech/library.*),
// including the paper's Table 2 qualitative findings.

#include "tech/library.h"

#include <gtest/gtest.h>

#include "tech/units.h"

namespace nbtisim::tech {
namespace {

class LibraryTest : public ::testing::Test {
 protected:
  Library lib_;
};

TEST_F(LibraryTest, ContainsTheFullCellSet) {
  for (const char* name :
       {"INV", "BUF", "NAND2", "NAND3", "NAND4", "NOR2", "NOR3", "NOR4",
        "AND2", "AND3", "AND4", "OR2", "OR3", "OR4", "XOR2", "XNOR2"}) {
    EXPECT_NO_THROW(lib_.find(name)) << name;
  }
  EXPECT_EQ(lib_.num_cells(), 16);
}

TEST_F(LibraryTest, FindRejectsUnknownCell) {
  EXPECT_THROW(lib_.find("NAND8"), std::out_of_range);
}

TEST_F(LibraryTest, IdForMapsFunctions) {
  EXPECT_EQ(lib_.id_for(GateFn::Not, 1), lib_.find("INV"));
  EXPECT_EQ(lib_.id_for(GateFn::Nand, 3), lib_.find("NAND3"));
  EXPECT_EQ(lib_.id_for(GateFn::Xor, 2), lib_.find("XOR2"));
  EXPECT_THROW(lib_.id_for(GateFn::Nand, 5), std::out_of_range);
}

TEST_F(LibraryTest, FnOfRoundTrips) {
  EXPECT_EQ(lib_.fn_of(lib_.find("NOR3")), GateFn::Nor);
  EXPECT_EQ(lib_.fn_of(lib_.find("XNOR2")), GateFn::Xnor);
  EXPECT_EQ(lib_.fn_of(lib_.find("OR4")), GateFn::Or);
  EXPECT_EQ(lib_.fn_of(lib_.find("BUF")), GateFn::Buf);
}

TEST_F(LibraryTest, InputCapPositiveAndBoundsChecked) {
  const CellId nand2 = lib_.find("NAND2");
  EXPECT_GT(lib_.input_cap(nand2, 0), 0.0);
  EXPECT_GT(lib_.input_cap(nand2, 1), 0.0);
  EXPECT_THROW(lib_.input_cap(nand2, 2), std::out_of_range);
}

TEST_F(LibraryTest, LeakageVariesWithInputVector) {
  const CellId nand2 = lib_.find("NAND2");
  const double l00 = lib_.cell_leakage(nand2, 0b00, 400.0);
  const double l11 = lib_.cell_leakage(nand2, 0b11, 400.0);
  // Stacking effect: 00 state leaks several times less than 11.
  EXPECT_LT(l00 * 3.0, l11);
}

TEST_F(LibraryTest, LeakageRejectsOutOfRangeVector) {
  EXPECT_THROW(lib_.cell_leakage(lib_.find("INV"), 4, 400.0),
               std::out_of_range);
}

// Table 2 structure: MLV of each family, and its NBTI polarity.
TEST_F(LibraryTest, Table2MinLeakageVectors) {
  const LeakageTable t(lib_, 400.0);
  // NAND/AND: all-zero input minimizes leakage (NMOS stack off).
  EXPECT_EQ(t.min_leakage_vector(lib_.find("NAND2")), 0u);
  EXPECT_EQ(t.min_leakage_vector(lib_.find("NAND3")), 0u);
  EXPECT_EQ(t.min_leakage_vector(lib_.find("AND2")), 0u);
  // NOR/OR: all-one input minimizes leakage (PMOS stack off).
  EXPECT_EQ(t.min_leakage_vector(lib_.find("NOR2")), 0b11u);
  EXPECT_EQ(t.min_leakage_vector(lib_.find("NOR3")), 0b111u);
  EXPECT_EQ(t.min_leakage_vector(lib_.find("OR2")), 0b11u);
  // INV: input 0 leaves the (narrower) NMOS leaking -> lower leakage.
  EXPECT_EQ(t.min_leakage_vector(lib_.find("INV")), 0u);
}

TEST_F(LibraryTest, LeakageTableMatchesDirectComputation) {
  const LeakageTable t(lib_, 330.0);
  const CellId nor3 = lib_.find("NOR3");
  for (std::uint32_t v = 0; v < 8; ++v) {
    EXPECT_DOUBLE_EQ(t.leakage(nor3, v), lib_.cell_leakage(nor3, v, 330.0));
  }
}

TEST_F(LibraryTest, ExpectedLeakageIsProbabilityWeightedAverage) {
  const LeakageTable t(lib_, 400.0);
  const CellId inv = lib_.find("INV");
  const double l0 = t.leakage(inv, 0);
  const double l1 = t.leakage(inv, 1);
  const std::vector<double> sp{0.25};
  EXPECT_NEAR(t.expected_leakage(inv, sp), 0.75 * l0 + 0.25 * l1, 1e-18);
}

TEST_F(LibraryTest, ExpectedLeakageBoundedByExtremes) {
  const LeakageTable t(lib_, 400.0);
  const CellId nand3 = lib_.find("NAND3");
  double lo = 1e9, hi = 0.0;
  for (std::uint32_t v = 0; v < 8; ++v) {
    lo = std::min(lo, t.leakage(nand3, v));
    hi = std::max(hi, t.leakage(nand3, v));
  }
  const std::vector<double> sp{0.3, 0.6, 0.9};
  const double e = t.expected_leakage(nand3, sp);
  EXPECT_GE(e, lo);
  EXPECT_LE(e, hi);
}

TEST_F(LibraryTest, ExpectedLeakageRejectsPinMismatch) {
  const LeakageTable t(lib_, 400.0);
  const std::vector<double> sp{0.5};
  EXPECT_THROW(t.expected_leakage(lib_.find("NAND2"), sp),
               std::invalid_argument);
}

TEST_F(LibraryTest, DelayIncreasesWithLoad) {
  const CellId inv = lib_.find("INV");
  const double d1 = lib_.cell_delay(inv, 1e-15, 400.0);
  const double d2 = lib_.cell_delay(inv, 10e-15, 400.0);
  EXPECT_GT(d2, d1);
}

TEST_F(LibraryTest, DelayIncreasesWithNbtiShift) {
  const CellId nor2 = lib_.find("NOR2");
  const double fresh = lib_.cell_delay(nor2, 2e-15, 400.0, 0.0);
  const double aged = lib_.cell_delay(nor2, 2e-15, 400.0, 0.047);
  EXPECT_GT(aged, fresh);
  // ~47 mV on a 780 mV overdrive with alpha 1.3: below 20% delay growth.
  EXPECT_LT(aged / fresh, 1.2);
}

TEST_F(LibraryTest, DelayThrowsWhenDvthKillsTheDevice) {
  const CellId inv = lib_.find("INV");
  EXPECT_THROW(lib_.cell_delay(inv, 1e-15, 300.0, 0.9), std::domain_error);
}

TEST_F(LibraryTest, CompositeCellsAreSlowerThanTheirCore) {
  const double d_nand = lib_.cell_delay(lib_.find("NAND2"), 2e-15, 400.0);
  const double d_and = lib_.cell_delay(lib_.find("AND2"), 2e-15, 400.0);
  EXPECT_GT(d_and, d_nand);
}

TEST_F(LibraryTest, TypicalGateDelayInPicosecondBand) {
  const double d = lib_.cell_delay(lib_.find("NAND2"), 2e-15, 400.0);
  EXPECT_GT(to_ps(d), 1.0);
  EXPECT_LT(to_ps(d), 500.0);
}

// Leakage must increase with temperature for every cell and every vector.
class LibraryLeakageSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(LibraryLeakageSweep, LeakageMonotoneInTemperature) {
  const Library lib;
  const CellId id = lib.find(GetParam());
  const int pins = lib.cell(id).num_pins();
  for (std::uint32_t v = 0; v < (1u << pins); ++v) {
    const double cold = lib.cell_leakage(id, v, 330.0);
    const double hot = lib.cell_leakage(id, v, 400.0);
    EXPECT_GT(hot, cold) << GetParam() << " vector " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Cells, LibraryLeakageSweep,
                         ::testing::Values("INV", "NAND2", "NAND4", "NOR2",
                                           "NOR4", "AND3", "OR3", "XOR2",
                                           "XNOR2", "BUF"));

}  // namespace
}  // namespace nbtisim::tech
