// Unit tests for the multi-mechanism failure suite (src/aging/failure.*):
// threshold-crossing interpolation, per-mechanism MTTFs, Weibull system
// aggregation, thread-count bit-identity and the differential check against
// the naive reference evaluator.

#include "aging/failure.h"

#include <gtest/gtest.h>

#include <cmath>

#include "netlist/generators.h"
#include "support/reference.h"
#include "tech/units.h"

namespace nbtisim {
namespace {

// ---------------------------------------------------------------------------
// crossing_time

TEST(CrossingTime, InterpolatesFromImplicitOrigin) {
  // Single sample: the segment (0,0) -> (10, 1.0) crosses 0.5 at t = 5.
  const std::vector<double> t{10.0};
  const std::vector<double> v{1.0};
  EXPECT_DOUBLE_EQ(aging::crossing_time(t, v, 0.5), 5.0);
}

TEST(CrossingTime, InterpolatesInsideTheCrossingSegment) {
  const std::vector<double> t{1.0, 2.0, 4.0};
  const std::vector<double> v{0.1, 0.2, 0.6};
  // Crosses 0.4 on the (2, 0.2) -> (4, 0.6) segment: 2 + 2 * 0.2/0.4 = 3.
  EXPECT_DOUBLE_EQ(aging::crossing_time(t, v, 0.4), 3.0);
}

TEST(CrossingTime, ExactSampleHitReturnsThatTime) {
  const std::vector<double> t{1.0, 2.0, 3.0};
  const std::vector<double> v{0.1, 0.5, 0.9};
  EXPECT_DOUBLE_EQ(aging::crossing_time(t, v, 0.5), 2.0);
}

TEST(CrossingTime, NeverCrossingReturnsNeverFails) {
  const std::vector<double> t{1.0, 2.0, 3.0};
  const std::vector<double> v{0.1, 0.2, 0.3};
  EXPECT_EQ(aging::crossing_time(t, v, 0.5), aging::kNeverFails);
  EXPECT_TRUE(std::isinf(aging::kNeverFails));
}

TEST(CrossingTime, RejectsBadInput) {
  const std::vector<double> t{1.0, 2.0};
  const std::vector<double> v{0.1, 0.2};
  const std::vector<double> empty;
  EXPECT_THROW(aging::crossing_time(t, v, 0.0), std::invalid_argument);
  EXPECT_THROW(aging::crossing_time(empty, empty, 0.5), std::invalid_argument);
  EXPECT_THROW(aging::crossing_time(t, empty, 0.5), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// analyze_failure

class FailureSuiteTest : public ::testing::Test {
 protected:
  FailureSuiteTest() : c432_(netlist::iscas85_like("c432")) {
    cond_.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 330.0);
    cond_.sp_vectors = 512;
    analyzer_.emplace(c432_, lib_, cond_);
    params_.time_points = 16;
  }

  tech::Library lib_;
  netlist::Netlist c432_;
  aging::AgingConditions cond_;
  std::optional<aging::AgingAnalyzer> analyzer_;
  aging::FailureParams params_;
};

TEST_F(FailureSuiteTest, ReportsAllFiveMechanismsInOrder) {
  const aging::FailureReport rep = aging::analyze_failure(
      *analyzer_, aging::StandbyPolicy::all_stressed(), params_);
  ASSERT_EQ(rep.mechanisms.size(), 5u);
  EXPECT_EQ(rep.mechanisms[0].name, "nbti");
  EXPECT_EQ(rep.mechanisms[1].name, "pbti");
  EXPECT_EQ(rep.mechanisms[2].name, "hci");
  EXPECT_EQ(rep.mechanisms[3].name, "tddb");
  EXPECT_EQ(rep.mechanisms[4].name, "em");
  for (const aging::MechanismMttf& m : rep.mechanisms) {
    EXPECT_EQ(m.gate_mttf.size(),
              static_cast<std::size_t>(c432_.num_gates()));
    for (double mttf : m.gate_mttf) EXPECT_GT(mttf, 0.0);
  }
}

TEST_F(FailureSuiteTest, EnableFlagsSelectMechanisms) {
  aging::FailureParams p = params_;
  p.enable_nbti = false;
  p.enable_em = false;
  p.multi.enable_pbti = false;
  const aging::FailureReport rep = aging::analyze_failure(
      *analyzer_, aging::StandbyPolicy::all_stressed(), p);
  ASSERT_EQ(rep.mechanisms.size(), 2u);
  EXPECT_EQ(rep.mechanisms[0].name, "hci");
  EXPECT_EQ(rep.mechanisms[1].name, "tddb");
}

TEST_F(FailureSuiteTest, SystemMttfBelowEveryMechanism) {
  // Failure rates add: the series system dies before any single mechanism
  // alone would kill it.
  const aging::FailureReport rep = aging::analyze_failure(
      *analyzer_, aging::StandbyPolicy::all_stressed(), params_);
  EXPECT_GT(rep.lambda, 0.0);
  EXPECT_GT(rep.system_mttf, 0.0);
  for (const aging::MechanismMttf& m : rep.mechanisms) {
    EXPECT_LE(rep.system_mttf, m.system_mttf);
  }
}

TEST_F(FailureSuiteTest, LambdaIsTheSumOfMechanismLambdas) {
  const aging::FailureReport rep = aging::analyze_failure(
      *analyzer_, aging::StandbyPolicy::all_stressed(), params_);
  const double gamma = std::tgamma(1.0 + 1.0 / rep.weibull_beta);
  double sum = 0.0;
  for (const aging::MechanismMttf& m : rep.mechanisms) {
    if (std::isfinite(m.system_mttf)) {
      sum += std::pow(gamma / m.system_mttf, rep.weibull_beta);
    }
  }
  EXPECT_NEAR(rep.lambda, sum, 1e-9 * sum);
}

TEST_F(FailureSuiteTest, FailureCurveIsAMonotoneCdf) {
  const aging::FailureReport rep = aging::analyze_failure(
      *analyzer_, aging::StandbyPolicy::all_stressed(), params_);
  ASSERT_EQ(rep.failure_curve.size(), params_.curve_years.size());
  double prev = 0.0;
  for (const auto& [year, prob] : rep.failure_curve) {
    EXPECT_GE(prob, prev);
    EXPECT_GE(prob, 0.0);
    EXPECT_LE(prob, 1.0);
    EXPECT_DOUBLE_EQ(prob, rep.system_failure_at(year));
    prev = prob;
  }
  // F(MTTF) for a Weibull sits strictly between 0 and 1.
  const double at_mttf = rep.system_failure_at(rep.system_mttf);
  EXPECT_GT(at_mttf, 0.3);
  EXPECT_LT(at_mttf, 0.9);
  EXPECT_EQ(rep.system_failure_at(0.0), 0.0);
}

TEST_F(FailureSuiteTest, TighterThresholdFailsSooner) {
  aging::FailureParams loose = params_;
  loose.fail_dvth = 0.08;
  aging::FailureParams tight = params_;
  tight.fail_dvth = 0.03;
  const aging::FailureReport l = aging::analyze_failure(
      *analyzer_, aging::StandbyPolicy::all_stressed(), loose);
  const aging::FailureReport t = aging::analyze_failure(
      *analyzer_, aging::StandbyPolicy::all_stressed(), tight);
  EXPECT_LT(t.system_mttf, l.system_mttf);
}

TEST_F(FailureSuiteTest, RejectsBadParameters) {
  const aging::StandbyPolicy policy = aging::StandbyPolicy::all_stressed();
  aging::FailureParams p = params_;
  p.fail_dvth = 0.0;
  EXPECT_THROW(aging::analyze_failure(*analyzer_, policy, p),
               std::invalid_argument);
  p = params_;
  p.max_years = -1.0;
  EXPECT_THROW(aging::analyze_failure(*analyzer_, policy, p),
               std::invalid_argument);
  p = params_;
  p.weibull_beta = 0.0;
  EXPECT_THROW(aging::analyze_failure(*analyzer_, policy, p),
               std::invalid_argument);
  p = params_;
  p.time_points = 1;
  EXPECT_THROW(aging::analyze_failure(*analyzer_, policy, p),
               std::invalid_argument);
  aging::StandbyPolicy empty_rotation;
  empty_rotation.kind = aging::StandbyPolicy::Kind::Rotating;
  EXPECT_THROW(aging::analyze_failure(*analyzer_, empty_rotation, params_),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Determinism contract (picked up by the ctest "determinism" label).

TEST_F(FailureSuiteTest, BitIdenticalAcrossThreadCounts) {
  aging::FailureParams base = params_;
  base.n_threads = 1;
  const aging::FailureReport want = aging::analyze_failure(
      *analyzer_, aging::StandbyPolicy::all_stressed(), base);
  for (int n_threads : {2, 4, 8}) {
    aging::FailureParams p = params_;
    p.n_threads = n_threads;
    const aging::FailureReport got = aging::analyze_failure(
        *analyzer_, aging::StandbyPolicy::all_stressed(), p);
    ASSERT_EQ(got.mechanisms.size(), want.mechanisms.size());
    for (std::size_t mi = 0; mi < want.mechanisms.size(); ++mi) {
      EXPECT_EQ(got.mechanisms[mi].name, want.mechanisms[mi].name);
      EXPECT_EQ(got.mechanisms[mi].gate_mttf, want.mechanisms[mi].gate_mttf);
      EXPECT_EQ(got.mechanisms[mi].system_mttf,
                want.mechanisms[mi].system_mttf);
    }
    EXPECT_EQ(got.lambda, want.lambda);
    EXPECT_EQ(got.system_mttf, want.system_mttf);
    EXPECT_EQ(got.failure_curve, want.failure_curve);
  }
}

TEST_F(FailureSuiteTest, MatchesNaiveReferenceDifferentially) {
  // The optimized suite (stress contexts, parallel gate loops) must agree
  // bitwise with the context-free serial reference evaluator.
  for (const aging::StandbyPolicy& policy :
       {aging::StandbyPolicy::all_stressed(),
        aging::StandbyPolicy::all_relaxed()}) {
    const aging::FailureReport got =
        aging::analyze_failure(*analyzer_, policy, params_);
    const aging::FailureReport want =
        testsupport::reference_failure_report(*analyzer_, policy, params_);
    ASSERT_EQ(got.mechanisms.size(), want.mechanisms.size());
    for (std::size_t mi = 0; mi < want.mechanisms.size(); ++mi) {
      EXPECT_EQ(got.mechanisms[mi].name, want.mechanisms[mi].name);
      EXPECT_EQ(got.mechanisms[mi].gate_mttf, want.mechanisms[mi].gate_mttf);
      EXPECT_EQ(got.mechanisms[mi].system_mttf,
                want.mechanisms[mi].system_mttf);
    }
    EXPECT_EQ(got.lambda, want.lambda);
    EXPECT_EQ(got.system_mttf, want.system_mttf);
    EXPECT_EQ(got.failure_curve, want.failure_curve);
  }
}

}  // namespace
}  // namespace nbtisim
