// Unit tests for the multicycle AC-stress model (src/nbti/ac_model.*).

#include "nbti/ac_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tech/units.h"

namespace nbtisim::nbti {
namespace {

class AcModelTest : public ::testing::Test {
 protected:
  RdParams p_;
  static constexpr double kVgs = 1.0;
  static constexpr double kVth = 0.22;
};

TEST_F(AcModelTest, BetaMatchesDefinition) {
  EXPECT_DOUBLE_EQ(ac_beta(1.0), 0.0);
  EXPECT_NEAR(ac_beta(0.5), std::sqrt(0.25), 1e-12);
  EXPECT_NEAR(ac_beta(0.0), std::sqrt(0.5), 1e-12);
  EXPECT_THROW(ac_beta(1.5), std::invalid_argument);
  EXPECT_THROW(ac_beta(-0.1), std::invalid_argument);
}

TEST_F(AcModelTest, SnFirstCycleMatchesEq9) {
  const double c = 0.4;
  EXPECT_NEAR(sn_exact(c, 1), std::pow(c, 0.25) / (1.0 + ac_beta(c)), 1e-12);
  EXPECT_NEAR(sn_closed(c, 1.0), sn_exact(c, 1), 1e-12);
}

TEST_F(AcModelTest, SnIsIncreasingInCycleCount) {
  double prev = sn_exact(0.5, 1);
  for (std::int64_t n : {2, 5, 10, 100, 1000}) {
    const double s = sn_exact(0.5, n);
    EXPECT_GT(s, prev);
    prev = s;
  }
}

TEST_F(AcModelTest, SnIsIncreasingInDuty) {
  for (std::int64_t n : {10, 1000}) {
    double prev = 0.0;
    for (double c : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
      const double s = sn_exact(c, n);
      EXPECT_GT(s, prev) << "c=" << c << " n=" << n;
      prev = s;
    }
  }
}

TEST_F(AcModelTest, ClosedFormTracksExactRecursion) {
  // The hybrid form is bit-exact below 1024 cycles and within 0.2% beyond.
  for (double c : {0.1, 0.5, 0.9}) {
    for (std::int64_t n : {10, 100, 1000, 100000}) {
      const double exact = sn_exact(c, n);
      const double closed = sn_closed(c, static_cast<double>(n));
      const double tol = n <= 1024 ? 1e-12 : 2e-3;
      EXPECT_NEAR(closed / exact, 1.0, tol) << "c=" << c << " n=" << n;
    }
  }
}

TEST_F(AcModelTest, DcAsymptoteIsQuarterPowerOfN) {
  // With c = 1 the recursion must reproduce S_n ~ n^(1/4).
  const double s = sn_exact(1.0, 100000);
  EXPECT_NEAR(s / std::pow(100000.0, 0.25), 1.0, 1e-2);
}

TEST_F(AcModelTest, ZeroDutyGivesZeroShift) {
  EXPECT_EQ(ac_delta_vth(p_, 400.0, {0.0, 10.0}, 1e8, kVgs, kVth), 0.0);
}

TEST_F(AcModelTest, FullDutyEqualsDcLaw) {
  const double ac = ac_delta_vth(p_, 400.0, {1.0, 10.0}, 1e8, kVgs, kVth);
  const double dc = dc_delta_vth(p_, 400.0, 1e8, kVgs, kVth);
  EXPECT_NEAR(ac, dc, 1e-12);
}

TEST_F(AcModelTest, AcIsAlwaysBelowDc) {
  // Fig. 1's message: recovery makes AC degradation milder than DC.
  const double dc = dc_delta_vth(p_, 400.0, 3e8, kVgs, kVth);
  for (double c : {0.1, 0.5, 0.9}) {
    EXPECT_LT(ac_delta_vth(p_, 400.0, {c, 100.0}, 3e8, kVgs, kVth), dc);
  }
}

TEST_F(AcModelTest, PeriodInsensitivityForLargeN) {
  // The product S_n tau^(1/4) converges; chopping the same total time into
  // different cycle periods must give nearly identical shifts.
  const double a = ac_delta_vth(p_, 400.0, {0.5, 10.0}, 3e8, kVgs, kVth);
  const double b = ac_delta_vth(p_, 400.0, {0.5, 10000.0}, 3e8, kVgs, kVth);
  EXPECT_NEAR(a / b, 1.0, 5e-3);
}

TEST_F(AcModelTest, ExactAndClosedAgreeOnDeltaVth) {
  const AcStress s{0.5, 1000.0};
  const double closed =
      ac_delta_vth(p_, 400.0, s, 1e7, kVgs, kVth, AcEvalMethod::ClosedForm);
  const double exact =
      ac_delta_vth(p_, 400.0, s, 1e7, kVgs, kVth, AcEvalMethod::ExactRecursion);
  EXPECT_NEAR(closed / exact, 1.0, 2e-3);
}

TEST_F(AcModelTest, RejectsBadArguments) {
  EXPECT_THROW(ac_delta_vth(p_, 400.0, {0.5, 0.0}, 1e6, kVgs, kVth),
               std::invalid_argument);
  EXPECT_THROW(ac_delta_vth(p_, 400.0, {0.5, 1.0}, -1.0, kVgs, kVth),
               std::invalid_argument);
  EXPECT_THROW(sn_exact(0.5, 0), std::invalid_argument);
  EXPECT_THROW(sn_closed(0.5, 0.5), std::invalid_argument);
}

TEST_F(AcModelTest, CycleSimulatorTracksAnalyticalModelShape) {
  // The literal stress/recovery alternation is an independent reference:
  // both models must agree within a modest band over a long run.
  const AcStress s{0.5, 1000.0};
  const double analytical =
      ac_delta_vth(p_, 400.0, s, 1e6, kVgs, kVth, AcEvalMethod::ClosedForm);
  const double simulated = simulate_cycles(p_, 400.0, s, 1000, kVgs, kVth);
  EXPECT_GT(simulated, 0.3 * analytical);
  EXPECT_LT(simulated, 3.0 * analytical);
}

TEST_F(AcModelTest, CycleSimulatorMonotoneInDuty) {
  const double lo = simulate_cycles(p_, 400.0, {0.2, 100.0}, 500, kVgs, kVth);
  const double hi = simulate_cycles(p_, 400.0, {0.8, 100.0}, 500, kVgs, kVth);
  EXPECT_LT(lo, hi);
}

TEST_F(AcModelTest, SeriesIsMonotoneAndGeometricallySpaced) {
  const auto series =
      ac_delta_vth_series(p_, 400.0, {0.5, 1000.0}, 1e4, 3e8, 20, kVgs, kVth);
  ASSERT_EQ(series.size(), 20u);
  EXPECT_NEAR(series.front().first, 1e4, 1.0);
  EXPECT_NEAR(series.back().first, 3e8, 3e4);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GT(series[i].second, series[i - 1].second);
    EXPECT_GT(series[i].first, series[i - 1].first);
  }
}

// Property sweep: dVth(t) follows the t^(1/4) envelope for any duty: the
// ratio dVth(100 t) / dVth(t) must approach 100^(1/4) ~ 3.16 for large t.
class QuarterPowerSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuarterPowerSweep, LongRunQuarterPowerScaling) {
  const RdParams p;
  const double c = GetParam();
  const AcStress s{c, 100.0};
  const double d1 = ac_delta_vth(p, 400.0, s, 1e6, 1.0, 0.22);
  const double d2 = ac_delta_vth(p, 400.0, s, 1e8, 1.0, 0.22);
  EXPECT_NEAR(d2 / d1, std::pow(100.0, 0.25), 0.05) << "duty=" << c;
}

INSTANTIATE_TEST_SUITE_P(Duties, QuarterPowerSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8, 0.95, 1.0));

}  // namespace
}  // namespace nbtisim::nbti
