// Unit tests for NBTI-aware gate sizing (src/opt/sizing.*).

#include "opt/sizing.h"

#include <gtest/gtest.h>

#include "netlist/generators.h"

namespace nbtisim::opt {
namespace {

class SizingTest : public ::testing::Test {
 protected:
  SizingTest() : c432_(netlist::iscas85_like("c432")) {
    cond_.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 400.0);
    cond_.sp_vectors = 512;
    analyzer_.emplace(c432_, lib_, cond_);
  }

  tech::Library lib_;
  netlist::Netlist c432_;
  aging::AgingConditions cond_;
  std::optional<aging::AgingAnalyzer> analyzer_;
};

TEST_F(SizingTest, MeetsSpecWithModestArea) {
  const SizingResult r = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 3.0, .size_step = 0.5, .max_moves = 400});
  EXPECT_TRUE(r.met);
  EXPECT_LE(r.aged_after, r.spec * (1.0 + 1e-12));
  EXPECT_GT(r.moves, 0);
  // Guard-banding would need ~8% slack; sizing should cost far less area
  // than that percentage (only critical-path gates are touched).
  EXPECT_LT(r.area_overhead_percent(), r.guard_band_percent());
}

TEST_F(SizingTest, AgedDelayImprovesMonotonically) {
  const SizingResult r = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 5.0, .size_step = 0.5, .max_moves = 200});
  EXPECT_LT(r.aged_after, r.aged_before);
}

TEST_F(SizingTest, AlreadyMeetingSpecNeedsNoMoves) {
  // With a margin above the aged degradation, no sizing is necessary.
  const SizingResult r = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 50.0});
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.moves, 0);
  EXPECT_DOUBLE_EQ(r.area_overhead_percent(), 0.0);
}

TEST_F(SizingTest, TighterSpecCostsMoreArea) {
  const SizingResult loose = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 6.0, .size_step = 0.5, .max_moves = 400});
  const SizingResult tight = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 3.0, .size_step = 0.5, .max_moves = 400});
  EXPECT_GE(tight.area_overhead_percent(), loose.area_overhead_percent());
}

TEST_F(SizingTest, SizesStayWithinBounds) {
  const SizingResult r = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 2.0, .size_step = 0.5, .max_size = 2.0,
       .max_moves = 300});
  for (double s : r.sizes) {
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 2.0 + 1e-12);
  }
}

TEST_F(SizingTest, RelaxedPolicyNeedsLessWork) {
  const SizingResult worst = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 4.0, .size_step = 0.5, .max_moves = 300});
  const SizingResult best = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_relaxed(),
      {.spec_margin_percent = 4.0, .size_step = 0.5, .max_moves = 300});
  EXPECT_LE(best.moves, worst.moves);
  EXPECT_LE(best.aged_before, worst.aged_before);
}

TEST_F(SizingTest, RejectsBadParameters) {
  EXPECT_THROW(size_for_lifetime(*analyzer_,
                                 aging::StandbyPolicy::all_stressed(),
                                 {.spec_margin_percent = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(size_for_lifetime(*analyzer_,
                                 aging::StandbyPolicy::all_stressed(),
                                 {.size_step = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(size_for_lifetime(*analyzer_,
                                 aging::StandbyPolicy::all_stressed(),
                                 {.max_size = 0.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nbtisim::opt
