// Unit tests for NBTI-aware gate sizing (src/opt/sizing.*).

#include "opt/sizing.h"

#include <gtest/gtest.h>

#include "netlist/generators.h"

namespace nbtisim::opt {
namespace {

class SizingTest : public ::testing::Test {
 protected:
  SizingTest() : c432_(netlist::iscas85_like("c432")) {
    cond_.schedule = nbti::ModeSchedule::from_ras(1, 9, 1000.0, 400.0, 400.0);
    cond_.sp_vectors = 512;
    analyzer_.emplace(c432_, lib_, cond_);
  }

  tech::Library lib_;
  netlist::Netlist c432_;
  aging::AgingConditions cond_;
  std::optional<aging::AgingAnalyzer> analyzer_;
};

TEST_F(SizingTest, MeetsSpecWithModestArea) {
  const SizingResult r = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 3.0, .size_step = 0.5, .max_moves = 400});
  EXPECT_TRUE(r.met);
  EXPECT_LE(r.aged_after, r.spec * (1.0 + 1e-12));
  EXPECT_GT(r.moves, 0);
  // Guard-banding would need ~8% slack; sizing should cost far less area
  // than that percentage (only critical-path gates are touched).
  EXPECT_LT(r.area_overhead_percent(), r.guard_band_percent());
}

TEST_F(SizingTest, AgedDelayImprovesMonotonically) {
  const SizingResult r = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 5.0, .size_step = 0.5, .max_moves = 200});
  EXPECT_LT(r.aged_after, r.aged_before);
}

TEST_F(SizingTest, AlreadyMeetingSpecNeedsNoMoves) {
  // With a margin above the aged degradation, no sizing is necessary.
  const SizingResult r = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 50.0});
  EXPECT_TRUE(r.met);
  EXPECT_EQ(r.moves, 0);
  EXPECT_DOUBLE_EQ(r.area_overhead_percent(), 0.0);
}

TEST_F(SizingTest, TighterSpecCostsMoreArea) {
  const SizingResult loose = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 6.0, .size_step = 0.5, .max_moves = 400});
  const SizingResult tight = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 3.0, .size_step = 0.5, .max_moves = 400});
  EXPECT_GE(tight.area_overhead_percent(), loose.area_overhead_percent());
}

TEST_F(SizingTest, SizesStayWithinBounds) {
  const SizingResult r = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 2.0, .size_step = 0.5, .max_size = 2.0,
       .max_moves = 300});
  for (double s : r.sizes) {
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 2.0 + 1e-12);
  }
}

TEST_F(SizingTest, RelaxedPolicyNeedsLessWork) {
  const SizingResult worst = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(),
      {.spec_margin_percent = 4.0, .size_step = 0.5, .max_moves = 300});
  const SizingResult best = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_relaxed(),
      {.spec_margin_percent = 4.0, .size_step = 0.5, .max_moves = 300});
  EXPECT_LE(best.moves, worst.moves);
  EXPECT_LE(best.aged_before, worst.aged_before);
}

TEST_F(SizingTest, BitIdenticalAcrossThreadCountsAndEvalPaths) {
  const SizingParams base{.spec_margin_percent = 4.0, .size_step = 0.5,
                          .max_moves = 150, .n_threads = 1};
  const SizingResult want = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(), base);
  EXPECT_GT(want.moves, 0);
  for (int n_threads : {2, 8}) {
    for (bool incremental : {true, false}) {
      SizingParams params = base;
      params.n_threads = n_threads;
      params.incremental = incremental;
      const SizingResult got = size_for_lifetime(
          *analyzer_, aging::StandbyPolicy::all_stressed(), params);
      EXPECT_EQ(got.sizes, want.sizes)
          << "n_threads=" << n_threads << " incremental=" << incremental;
      EXPECT_EQ(got.moves, want.moves);
      EXPECT_EQ(got.aged_after, want.aged_after);
      EXPECT_EQ(got.met, want.met);
    }
  }
}

TEST_F(SizingTest, IncrementalMatchesFullRebuild) {
  const SizingParams full{.spec_margin_percent = 3.0, .size_step = 0.5,
                          .max_moves = 200, .n_threads = 1,
                          .incremental = false};
  SizingParams inc = full;
  inc.incremental = true;
  const SizingResult a = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(), full);
  const SizingResult b = size_for_lifetime(
      *analyzer_, aging::StandbyPolicy::all_stressed(), inc);
  EXPECT_EQ(a.sizes, b.sizes);
  EXPECT_EQ(a.moves, b.moves);
  EXPECT_EQ(a.aged_after, b.aged_after);
}

// Two-component netlist engineered for an *exact* gain tie.  Component A
// (slower) holds the critical path; component B is one dummy sink lighter,
// so it is slightly faster.  Chain gates #2 and #4 of A carry heavy dummy
// fanout: upsizing either drops A's arrival below B's, and the post-move
// max delay becomes B's *untouched* arrival — bitwise the same double for
// both moves — so their gain/area ratios tie exactly, with no dependence
// on floating-point accumulation order.
netlist::Netlist tie_break_netlist() {
  netlist::Netlist nl("tie");
  const netlist::NodeId a = nl.add_input("a");
  const netlist::NodeId b = nl.add_input("b");
  const auto add_component = [&nl](const std::string& prefix,
                                   netlist::NodeId pi, int extra) {
    netlist::NodeId prev = pi;
    std::vector<netlist::NodeId> chain;
    for (int i = 0; i < 6; ++i) {
      prev = nl.add_gate(tech::GateFn::Not, {prev},
                         prefix + "n" + std::to_string(i));
      chain.push_back(prev);
    }
    nl.mark_output(prev);
    for (int pos : {2, 4}) {
      for (int d = 0; d < extra; ++d) {
        nl.mark_output(nl.add_gate(
            tech::GateFn::Not, {chain[pos]},
            prefix + "d" + std::to_string(pos) + "_" + std::to_string(d)));
      }
    }
    return chain;
  };
  add_component("A", a, 4);
  add_component("B", b, 3);
  return nl;
}

TEST(SizingTieBreakTest, IdenticalGainRatiosPickSameGateAtEveryThreadCount) {
  const netlist::Netlist nl = tie_break_netlist();
  const tech::Library lib;
  aging::AgingConditions cond;
  cond.sp_vectors = 256;
  // Constant inputs make every signal probability exact (0 or 1), so the
  // two components age identically to the last bit.
  cond.input_sp = {1.0, 1.0};
  const aging::AgingAnalyzer an(nl, lib, cond);
  const aging::StandbyPolicy policy = aging::StandbyPolicy::all_stressed();

  // Verify the tie premise: moves on A-chain gates 2 and 4 yield bitwise
  // the same trial delay (B's arrival), hence identical gain/area ratios,
  // and they beat the head gate's un-clipped gain.
  const std::vector<double> dvth = an.gate_dvth(policy);
  SizedTiming timing(an, dvth);
  const sta::TimingResult base = timing.analyze_current();
  std::vector<double> scratch;
  const double trial2 = timing.evaluate_resize(2, 1.5, scratch).max_delay;
  const double trial4 = timing.evaluate_resize(4, 1.5, scratch).max_delay;
  ASSERT_EQ(trial2, trial4);
  ASSERT_LT(trial2, base.max_delay);
  const double trial0 = timing.evaluate_resize(0, 1.5, scratch).max_delay;
  ASSERT_GT(trial0, trial2);

  // The fold breaks the tie serially in path order, so every thread count
  // and both evaluation paths must pick gate 2, never gate 4.
  for (int n_threads : {1, 2, 8}) {
    for (bool incremental : {true, false}) {
      const SizingResult r = size_for_lifetime(
          an, policy,
          {.spec_margin_percent = 0.5, .size_step = 0.5, .max_moves = 1,
           .n_threads = n_threads, .incremental = incremental});
      SCOPED_TRACE(::testing::Message() << "n_threads=" << n_threads
                                        << " incremental=" << incremental);
      ASSERT_EQ(r.moves, 1);
      EXPECT_EQ(r.sizes[2], 1.5);
      EXPECT_EQ(r.sizes[4], 1.0);
      for (std::size_t gi = 0; gi < r.sizes.size(); ++gi) {
        if (gi != 2) EXPECT_EQ(r.sizes[gi], 1.0) << "gate " << gi;
      }
    }
  }
}

TEST_F(SizingTest, RejectsBadParameters) {
  EXPECT_THROW(size_for_lifetime(*analyzer_,
                                 aging::StandbyPolicy::all_stressed(),
                                 {.spec_margin_percent = -1.0}),
               std::invalid_argument);
  EXPECT_THROW(size_for_lifetime(*analyzer_,
                                 aging::StandbyPolicy::all_stressed(),
                                 {.size_step = 0.0}),
               std::invalid_argument);
  EXPECT_THROW(size_for_lifetime(*analyzer_,
                                 aging::StandbyPolicy::all_stressed(),
                                 {.max_size = 0.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace nbtisim::opt
